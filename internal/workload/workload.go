// Package workload generates the problem instances used in the paper's
// experiments and proofs: Poisson flow arrivals on a uniform switch
// (Section 5.2.1), the online lower-bound gadgets of Figure 4, the
// Restricted Timetable reduction of Theorem 2, and auxiliary traffic
// patterns (permutation, hotspot) for extended experiments.
package workload

import (
	"math"
	"math/rand"

	"flowsched/internal/switchnet"
)

// Poisson draws a Poisson(lambda) variate using Knuth's product method,
// splitting large lambda into chunks to avoid underflow.
func Poisson(rng *rand.Rand, lambda float64) int {
	total := 0
	for lambda > 0 {
		chunk := lambda
		if chunk > 30 {
			chunk = 30
		}
		lambda -= chunk
		l := math.Exp(-chunk)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				break
			}
			k++
		}
		total += k
	}
	return total
}

// PoissonConfig describes the experiment methodology of Section 5.2.1: an
// m x m switch with unit capacities, and for each round t in [0, T) a
// Poisson(M)-distributed number of unit flows with uniformly random input
// and output ports released at t.
type PoissonConfig struct {
	// M is the mean number of flows released per round.
	M float64
	// T is the number of rounds during which flows are generated.
	T int
	// Ports is the number of input (and output) ports (150 in the paper).
	Ports int
	// Cap is the per-port capacity (1 in the paper).
	Cap int
	// MaxDemand, when > 1, draws demands uniformly from [1, MaxDemand]
	// (the paper uses unit demands; this exercises the general-demand
	// code paths).
	MaxDemand int
}

// Generate draws an instance from the configuration using rng.
func (c PoissonConfig) Generate(rng *rand.Rand) *switchnet.Instance {
	cap := c.Cap
	if cap == 0 {
		cap = 1
	}
	maxD := c.MaxDemand
	if maxD < 1 {
		maxD = 1
	}
	if maxD > cap {
		maxD = cap
	}
	inst := &switchnet.Instance{Switch: switchnet.NewSwitch(c.Ports, c.Ports, cap)}
	for t := 0; t < c.T; t++ {
		k := Poisson(rng, c.M)
		for i := 0; i < k; i++ {
			d := 1
			if maxD > 1 {
				d = 1 + rng.Intn(maxD)
			}
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In:      rng.Intn(c.Ports),
				Out:     rng.Intn(c.Ports),
				Demand:  d,
				Release: t,
			})
		}
	}
	return inst
}

// Fig4a builds the Lemma 5.1 lower-bound instance (Figure 4a): two solid
// flows (1,2) and (1,3) arrive every round in [0, T), and a dashed flow
// (4,3) arrives every round in [T, M). Any online algorithm accumulates a
// backlog at port 2 or 3 that the dashed stream then starves.
// Ports: inputs {0:"1", 1:"4"}, outputs {0:"2", 1:"3"}.
func Fig4a(T, M int) *switchnet.Instance {
	inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(2)}
	for t := 0; t < T; t++ {
		inst.Flows = append(inst.Flows,
			switchnet.Flow{In: 0, Out: 0, Demand: 1, Release: t},
			switchnet.Flow{In: 0, Out: 1, Demand: 1, Release: t},
		)
	}
	for t := T; t < M; t++ {
		inst.Flows = append(inst.Flows,
			switchnet.Flow{In: 1, Out: 1, Demand: 1, Release: t},
		)
	}
	return inst
}

// Fig4b builds the Lemma 5.2 lower-bound instance (Figure 4b): solid flows
// (1,2),(1,3),(4,5),(4,6) arrive in round 0 and dashed flows (7,3),(7,5)
// in round 1. The optimum has maximum response time 2, but any online
// algorithm is forced to 3 on some extension.
// Ports: inputs {0:"1", 1:"4", 2:"7"}, outputs {0:"2", 1:"3", 2:"5", 3:"6"}.
func Fig4b() *switchnet.Instance {
	return &switchnet.Instance{
		Switch: switchnet.NewSwitch(3, 4, 1),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 0, Out: 1, Demand: 1, Release: 0},
			{In: 1, Out: 2, Demand: 1, Release: 0},
			{In: 1, Out: 3, Demand: 1, Release: 0},
			{In: 2, Out: 1, Demand: 1, Release: 1},
			{In: 2, Out: 2, Demand: 1, Release: 1},
		},
	}
}

// Permutation builds a permutation-traffic instance: in each of T rounds, a
// random perfect matching of the m ports arrives (every port sees exactly
// one new flow per round). This is the classic stress pattern for crossbar
// scheduling, complementing the paper's uniform traffic.
func Permutation(rng *rand.Rand, m, T int) *switchnet.Instance {
	inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(m)}
	perm := make([]int, m)
	for t := 0; t < T; t++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(m, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for i := 0; i < m; i++ {
			inst.Flows = append(inst.Flows, switchnet.Flow{In: i, Out: perm[i], Demand: 1, Release: t})
		}
	}
	return inst
}

// Hotspot builds a skewed-traffic instance: a fraction hot of all flows
// target output port 0; the rest are uniform. Models the incast patterns
// that motivate response-time objectives in datacenters.
func Hotspot(rng *rand.Rand, m int, lambda float64, T int, hot float64) *switchnet.Instance {
	inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(m)}
	for t := 0; t < T; t++ {
		k := Poisson(rng, lambda)
		for i := 0; i < k; i++ {
			out := rng.Intn(m)
			if rng.Float64() < hot {
				out = 0
			}
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In:      rng.Intn(m),
				Out:     out,
				Demand:  1,
				Release: t,
			})
		}
	}
	return inst
}
