package workload

import (
	"testing"

	"flowsched/internal/switchnet"
)

// fixedSource replays a slice (test double for a recorded stream).
type fixedSource struct {
	flows []switchnet.Flow
	at    int
}

func (s *fixedSource) Next() (switchnet.Flow, bool) {
	if s.at >= len(s.flows) {
		return switchnet.Flow{}, false
	}
	f := s.flows[s.at]
	s.at++
	return f, true
}

func (s *fixedSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	for n := 0; n < max && s.at < len(s.flows) && s.flows[s.at].Release <= round; n++ {
		dst = append(dst, s.flows[s.at])
		s.at++
	}
	return dst
}

func (s *fixedSource) Err() error { return nil }

func seqFlows(n, startRel int) []switchnet.Flow {
	out := make([]switchnet.Flow, n)
	for i := range out {
		out[i] = switchnet.Flow{In: i % 3, Out: (i + 1) % 3, Demand: 1, Release: startRel + i}
	}
	return out
}

// TestCheckpointSourceReplaysPrefixThenTail pins the restore stream
// order through both read paths.
func TestCheckpointSourceReplaysPrefixThenTail(t *testing.T) {
	prefix := seqFlows(3, 0)
	tail := seqFlows(4, 10)
	t.Run("Next", func(t *testing.T) {
		src := NewCheckpointSource(prefix, &fixedSource{flows: tail})
		var got []switchnet.Flow
		for {
			f, ok := src.Next()
			if !ok {
				break
			}
			got = append(got, f)
		}
		want := append(append([]switchnet.Flow(nil), prefix...), tail...)
		if len(got) != len(want) {
			t.Fatalf("got %d flows, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("flow %d: got %+v want %+v", i, got[i], want[i])
			}
		}
		if err := src.Err(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("PullBatch", func(t *testing.T) {
		src := NewCheckpointSource(prefix, &fixedSource{flows: tail})
		if src.Remaining() != 3 {
			t.Fatalf("Remaining = %d, want 3", src.Remaining())
		}
		// Round 1 releases only the first two prefix flows.
		got := src.PullBatch(nil, 1, 100)
		if len(got) != 2 {
			t.Fatalf("round-1 batch drained %d flows, want 2", len(got))
		}
		// Round 20 releases everything: remaining prefix, then the tail in
		// the same call.
		got = src.PullBatch(got[:0], 20, 100)
		if len(got) != 1+4 {
			t.Fatalf("round-20 batch drained %d flows, want 5", len(got))
		}
		if got[0] != prefix[2] || got[1] != tail[0] {
			t.Fatalf("batch order wrong: %+v", got)
		}
		if src.Remaining() != 0 {
			t.Fatalf("Remaining = %d after drain", src.Remaining())
		}
	})
	t.Run("batch respects max across the seam", func(t *testing.T) {
		src := NewCheckpointSource(prefix, &fixedSource{flows: tail})
		got := src.PullBatch(nil, 20, 4)
		if len(got) != 4 {
			t.Fatalf("max=4 batch drained %d", len(got))
		}
	})
}

// TestCheckpointSourceLiveTail pins the LiveFeeder/Parker passthrough
// over a ChanSource tail: the wrapper stays live, prefix flows answer a
// park immediately, and a drained prefix forwards the park (wake
// included).
func TestCheckpointSourceLiveTail(t *testing.T) {
	ch := NewChanSource(4)
	src := NewCheckpointSource(seqFlows(1, 0), ch)
	if !src.LiveFeed() {
		t.Fatal("live tail not reported live")
	}
	wake := make(chan struct{}, 1)
	f, ok, woke := src.Park(wake)
	if !ok || woke || f.Release != 0 {
		t.Fatalf("prefix park = %+v %v %v", f, ok, woke)
	}
	// Prefix drained: a wake now interrupts the forwarded park.
	wake <- struct{}{}
	if _, ok, woke := src.Park(wake); ok || !woke {
		t.Fatalf("forwarded park ignored the wake: ok=%v woke=%v", ok, woke)
	}
	// And a pushed flow unparks it with a stamped release.
	ch.Push(switchnet.Flow{In: 2, Out: 0, Demand: 1})
	if f, ok, _ := src.Park(wake); !ok || f.In != 2 {
		t.Fatalf("forwarded park missed the pushed flow: %+v %v", f, ok)
	}
	// An offline tail reports not-live.
	if NewCheckpointSource(nil, &fixedSource{}).LiveFeed() {
		t.Fatal("offline tail reported live")
	}
}

// TestSkipSource pins the resume-offset wrapper.
func TestSkipSource(t *testing.T) {
	flows := seqFlows(10, 0)
	t.Run("Next", func(t *testing.T) {
		s := Skip(&fixedSource{flows: flows}, 4)
		f, ok := s.Next()
		if !ok || f != flows[4] {
			t.Fatalf("first post-skip flow: %+v %v", f, ok)
		}
	})
	t.Run("PullBatch", func(t *testing.T) {
		s := Skip(&fixedSource{flows: flows}, 4)
		got := s.PullBatch(nil, 100, 3)
		if len(got) != 3 || got[0] != flows[4] {
			t.Fatalf("post-skip batch: %+v", got)
		}
	})
	t.Run("skip respects release gating", func(t *testing.T) {
		// Skipping 4 flows whose releases are 0..3: at round 1 only two can
		// be discarded, so nothing is available yet; at round 10 the skip
		// completes and flow 4 is yielded.
		s := Skip(&fixedSource{flows: flows}, 4)
		if got := s.PullBatch(nil, 1, 5); len(got) != 0 {
			t.Fatalf("round-1 batch yielded %+v before the skip completed", got)
		}
		got := s.PullBatch(nil, 10, 5)
		if len(got) != 5 || got[0] != flows[4] {
			t.Fatalf("round-10 batch: %+v", got)
		}
	})
	t.Run("skip beyond end", func(t *testing.T) {
		s := Skip(&fixedSource{flows: flows}, 99)
		if f, ok := s.Next(); ok {
			t.Fatalf("over-skip yielded %+v", f)
		}
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("zero and negative skip", func(t *testing.T) {
		for _, n := range []int{0, -3} {
			s := Skip(&fixedSource{flows: flows}, n)
			if f, ok := s.Next(); !ok || f != flows[0] {
				t.Fatalf("skip %d first flow: %+v %v", n, f, ok)
			}
		}
	})
}
