package workload

import (
	"math/rand"
	"testing"
)

// TestChurnSourceContract pins the churn source's stream contract:
// deterministic given the seed, unit demands valid for its switch,
// non-decreasing releases with exactly PerRound+HotOuts flows per round,
// and the hot outputs backlogged every round.
func TestChurnSourceContract(t *testing.T) {
	cfg := ChurnConfig{Ins: 3, Outs: 6, PerRound: 4, HotOuts: 2, MaxFlows: 200}
	a := NewChurnSource(cfg, rand.New(rand.NewSource(9)))
	b := NewChurnSource(cfg, rand.New(rand.NewSource(9)))
	sw := a.Switch()
	perRound := make(map[int]int)
	hotSeen := make(map[int]map[int]bool)
	n := 0
	lastRel := 0
	for {
		f, ok := a.Next()
		g, okB := b.Next()
		if ok != okB || f != g {
			t.Fatalf("same seed diverged at flow %d: %+v vs %+v", n, f, g)
		}
		if !ok {
			break
		}
		if err := sw.ValidateFlow(f); err != nil {
			t.Fatalf("flow %d invalid for the source's switch: %v", n, err)
		}
		if f.Release < lastRel {
			t.Fatalf("flow %d: release %d after %d", n, f.Release, lastRel)
		}
		lastRel = f.Release
		perRound[f.Release]++
		if f.Out < cfg.HotOuts && f.In == 0 {
			if hotSeen[f.Release] == nil {
				hotSeen[f.Release] = make(map[int]bool)
			}
			hotSeen[f.Release][f.Out] = true
		}
		n++
	}
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
	if int64(n) != cfg.MaxFlows {
		t.Fatalf("emitted %d of %d flows", n, cfg.MaxFlows)
	}
	for r := 0; r < lastRel; r++ { // the final round may be cut by MaxFlows
		if perRound[r] != cfg.PerRound+cfg.HotOuts {
			t.Fatalf("round %d saw %d flows, want %d", r, perRound[r], cfg.PerRound+cfg.HotOuts)
		}
		for h := 0; h < cfg.HotOuts; h++ {
			if !hotSeen[r][h] {
				t.Fatalf("hot output %d saw no arrival in round %d", h, r)
			}
		}
	}
}

// TestChurnSourcePullBatchMatchesNext: batch draining must yield exactly
// the Next sequence, respecting the round horizon.
func TestChurnSourcePullBatchMatchesNext(t *testing.T) {
	cfg := ChurnConfig{Outs: 5, PerRound: 3, MaxFlows: 120}
	byNext := NewChurnSource(cfg, rand.New(rand.NewSource(4)))
	byBatch := NewChurnSource(cfg, rand.New(rand.NewSource(4)))
	round := 0
	for {
		batch := byBatch.PullBatch(nil, round, 7)
		for _, f := range batch {
			if f.Release > round {
				t.Fatalf("PullBatch(round=%d) yielded future release %d", round, f.Release)
			}
			g, ok := byNext.Next()
			if !ok || f != g {
				t.Fatalf("batch flow %+v != next flow %+v (ok=%v)", f, g, ok)
			}
		}
		if len(batch) < 7 {
			round++
		}
		if round > 60 {
			break
		}
	}
	if _, ok := byNext.Next(); ok {
		t.Fatal("batch drain ended before the Next sequence")
	}
}

// TestChurnSourceRejectsBadConfig: invalid shapes fail fast through Err.
func TestChurnSourceRejectsBadConfig(t *testing.T) {
	for _, cfg := range []ChurnConfig{
		{Outs: 0},
		{Outs: 2, HotOuts: 3},
	} {
		s := NewChurnSource(cfg, rand.New(rand.NewSource(1)))
		if _, ok := s.Next(); ok {
			t.Fatalf("%+v: bad config yielded a flow", cfg)
		}
		if s.Err() == nil {
			t.Fatalf("%+v: bad config reported no error", cfg)
		}
	}
}
