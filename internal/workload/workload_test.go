package workload

import (
	"math"
	"math/rand"
	"testing"

	"flowsched/internal/switchnet"
)

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lambda := range []float64{0.5, 3, 30, 150, 600} {
		n := 4000
		sum := 0
		for i := 0; i < n; i++ {
			sum += Poisson(rng, lambda)
		}
		mean := float64(sum) / float64(n)
		// Mean of Poisson(lambda) within 5 sigma of lambda.
		tol := 5 * math.Sqrt(lambda/float64(n))
		if math.Abs(mean-lambda) > tol*lambda+0.5 {
			t.Fatalf("lambda=%v: sample mean %v too far", lambda, mean)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if got := Poisson(rng, 0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
}

func TestPoissonConfigGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := PoissonConfig{M: 10, T: 5, Ports: 8}
	inst := cfg.Generate(rng)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if !inst.UnitDemands() {
		t.Fatal("default config must produce unit demands")
	}
	if inst.Switch.NumIn() != 8 || inst.Switch.Cap(0) != 1 {
		t.Fatal("switch shape wrong")
	}
	if inst.MaxRelease() >= 5 {
		t.Fatalf("release %d outside [0,5)", inst.MaxRelease())
	}
	// Roughly M*T flows.
	if inst.N() < 20 || inst.N() > 90 {
		t.Fatalf("flow count %d implausible for M=10,T=5", inst.N())
	}
}

func TestPoissonConfigDemands(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := PoissonConfig{M: 20, T: 3, Ports: 4, Cap: 5, MaxDemand: 3}
	inst := cfg.Generate(rng)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, e := range inst.Flows {
		seen[e.Demand] = true
		if e.Demand < 1 || e.Demand > 3 {
			t.Fatalf("demand %d outside [1,3]", e.Demand)
		}
	}
	if len(seen) < 2 {
		t.Fatal("expected varied demands")
	}
}

func TestFig4aShape(t *testing.T) {
	inst := Fig4a(5, 12)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.N() != 2*5+(12-5) {
		t.Fatalf("n = %d", inst.N())
	}
	// Port 1 (input 0) saturated: two flows per round in [0,5).
	solid := 0
	for _, e := range inst.Flows {
		if e.In == 0 {
			solid++
			if e.Release >= 5 {
				t.Fatal("solid flow released late")
			}
		} else if e.In != 1 || e.Out != 1 {
			t.Fatalf("unexpected dashed flow %+v", e)
		}
	}
	if solid != 10 {
		t.Fatalf("solid = %d", solid)
	}
}

func TestFig4bShape(t *testing.T) {
	inst := Fig4b()
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.N() != 6 {
		t.Fatalf("n = %d", inst.N())
	}
	if inst.Switch.NumIn() != 3 || inst.Switch.NumOut() != 4 {
		t.Fatal("switch shape wrong")
	}
}

func TestPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := Permutation(rng, 6, 4)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.N() != 24 {
		t.Fatalf("n = %d", inst.N())
	}
	// Each round is a perfect matching: per-round port loads all 1.
	perRound := map[int][]switchnet.Flow{}
	for _, e := range inst.Flows {
		perRound[e.Release] = append(perRound[e.Release], e)
	}
	for r, flows := range perRound {
		seenIn := map[int]bool{}
		seenOut := map[int]bool{}
		for _, e := range flows {
			if seenIn[e.In] || seenOut[e.Out] {
				t.Fatalf("round %d not a matching", r)
			}
			seenIn[e.In] = true
			seenOut[e.Out] = true
		}
	}
}

func TestHotspot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst := Hotspot(rng, 8, 20, 5, 0.7)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, e := range inst.Flows {
		if e.Out == 0 {
			hot++
		}
	}
	if frac := float64(hot) / float64(inst.N()); frac < 0.5 {
		t.Fatalf("hot fraction %v too low", frac)
	}
}

func TestRandomRTTValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		r := RandomRTT(rng, 1+rng.Intn(3), 3+rng.Intn(3))
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRTTValidateRejects(t *testing.T) {
	bad := &RTT{M: 1, MPrime: 2, T: [][]int{{1}}, G: [][]int{{0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("tiny T accepted")
	}
	bad2 := &RTT{M: 1, MPrime: 2, T: [][]int{{1, 2}}, G: [][]int{{0, 5}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("class out of range accepted")
	}
	bad3 := &RTT{M: 1, MPrime: 2, T: [][]int{{1, 2}}, G: [][]int{{0}}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestRTTSatisfiableKnown(t *testing.T) {
	// One teacher, hours {1,2}, classes {0,1}: trivially satisfiable.
	r := &RTT{M: 1, MPrime: 2, T: [][]int{{1, 2}}, G: [][]int{{0, 1}}}
	if !r.Satisfiable() {
		t.Fatal("trivial instance unsatisfiable")
	}
	// Three teachers all needing class 0 in hours {1,2} — some teacher
	// cannot place both classes.
	r2 := &RTT{
		M: 3, MPrime: 2,
		T: [][]int{{1, 2}, {1, 2}, {1, 2}},
		G: [][]int{{0, 1}, {0, 1}, {0, 1}},
	}
	if r2.Satisfiable() {
		t.Fatal("overloaded instance satisfiable")
	}
}

func TestReduceRTTStructure(t *testing.T) {
	r := &RTT{M: 2, MPrime: 2, T: [][]int{{1, 3}, {2, 3}}, G: [][]int{{0, 1}, {0, 1}}}
	inst, rho := ReduceRTT(r)
	if rho != 3 {
		t.Fatalf("rho = %d", rho)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Teaching flows: 2 per teacher; q_j blockers: 3 per class; one
	// gadget (teacher 0 has {1,3}): 1 dashed + 3 dotted.
	want := 4 + 6 + 4
	if inst.N() != want {
		t.Fatalf("n = %d, want %d", inst.N(), want)
	}
}
