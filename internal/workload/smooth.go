package workload

import (
	"math/rand"

	"flowsched/internal/switchnet"
)

// SmoothSequence generates the instance family behind the open problem of
// Section 6: a sequence of unit-flow requests on an m x m unit-capacity
// switch such that for every port v and every round interval I, the total
// number of flows released in I and incident on v is at most |I| + 1.
// (Fractionally such sequences are schedulable with response 1 under a +1
// augmentation; the open question is whether a constant response is always
// achievable integrally without augmentation.)
//
// Edges are sampled greedily: each round draws candidate flows and keeps
// those that preserve the interval-degree condition.
func SmoothSequence(rng *rand.Rand, m, T int) *switchnet.Instance {
	inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(m)}
	// released[v][t] = number of flows released at t incident on port v
	// (global port index).
	released := make([][]int, 2*m)
	for v := range released {
		released[v] = make([]int, T)
	}
	// okToAdd reports whether adding a flow at (v, t) keeps all interval
	// sums over [a, b] containing t within (b - a + 1) + 1.
	okToAdd := func(v, t int) bool {
		for a := 0; a <= t; a++ {
			sum := 0
			for b := a; b < T; b++ {
				sum += released[v][b]
				if b >= t {
					if sum+1 > (b-a+1)+1 {
						return false
					}
				}
			}
		}
		return true
	}
	for t := 0; t < T; t++ {
		attempts := 2 * m
		for i := 0; i < attempts; i++ {
			in := rng.Intn(m)
			out := rng.Intn(m)
			vIn := in
			vOut := m + out
			if okToAdd(vIn, t) && okToAdd(vOut, t) {
				released[vIn][t]++
				released[vOut][t]++
				inst.Flows = append(inst.Flows, switchnet.Flow{
					In: in, Out: out, Demand: 1, Release: t,
				})
			}
		}
	}
	return inst
}

// CheckSmooth verifies the interval-degree condition of SmoothSequence on
// an arbitrary unit-demand instance; it returns the worst violation
// (0 means the condition holds).
func CheckSmooth(inst *switchnet.Instance) int {
	T := inst.MaxRelease() + 1
	numPorts := inst.Switch.NumPorts()
	released := make([][]int, numPorts)
	for v := range released {
		released[v] = make([]int, T)
	}
	for _, e := range inst.Flows {
		released[inst.Switch.PortIndex(switchnet.In, e.In)][e.Release]++
		released[inst.Switch.PortIndex(switchnet.Out, e.Out)][e.Release]++
	}
	worst := 0
	for v := 0; v < numPorts; v++ {
		for a := 0; a < T; a++ {
			sum := 0
			for b := a; b < T; b++ {
				sum += released[v][b]
				if over := sum - ((b - a + 1) + 1); over > worst {
					worst = over
				}
			}
		}
	}
	return worst
}
