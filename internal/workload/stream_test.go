package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"flowsched/internal/switchnet"
)

func TestArrivalSourceBasics(t *testing.T) {
	const n = 5000
	src := NewArrivalSource(ArrivalConfig{
		Ports: 8, Cap: 4, M: 3, MaxFlows: n, Alpha: 1.2, MinDemand: 1, MaxDemand: 4,
	}, rand.New(rand.NewSource(1)))
	lastRel := 0
	count := 0
	for {
		f, ok := src.Next()
		if !ok {
			break
		}
		count++
		if f.Release < lastRel {
			t.Fatalf("release %d after %d", f.Release, lastRel)
		}
		lastRel = f.Release
		if f.In < 0 || f.In >= 8 || f.Out < 0 || f.Out >= 8 {
			t.Fatalf("port out of range: %+v", f)
		}
		if f.Demand < 1 || f.Demand > 4 {
			t.Fatalf("demand %d outside [1,4]", f.Demand)
		}
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
	if count != n {
		t.Fatalf("yielded %d flows, want %d", count, n)
	}
}

// TestPullBatchMatchesNext: draining a source round by round through
// PullBatch must yield exactly the flow sequence Next yields, for every
// source kind — the batch path is an amortization, not a different
// stream. Also pins the horizon contract: a batch never contains a flow
// released after the requested round.
func TestPullBatchMatchesNext(t *testing.T) {
	mk := func() []BatchFlowSource {
		inst := PoissonConfig{M: 4, T: 9, Ports: 5}.Generate(rand.New(rand.NewSource(8)))
		trace := "release,in,out,demand\n0,0,1,1\n0,2,3,1\n1,1,1,1\n4,3,0,1\n4,4,4,1\n9,0,0,1\n"
		return []BatchFlowSource{
			NewArrivalSource(ArrivalConfig{Ports: 6, M: 2.5, MaxFlows: 400}, rand.New(rand.NewSource(3))),
			NewTraceSource(strings.NewReader(trace), switchnet.UnitSwitch(5)),
			NewInstanceSource(inst),
		}
	}
	ref := mk()
	alt := mk()
	for i := range ref {
		var want []switchnet.Flow
		for {
			f, ok := ref[i].Next()
			if !ok {
				break
			}
			want = append(want, f)
		}
		if err := ref[i].Err(); err != nil {
			t.Fatal(err)
		}
		var got []switchnet.Flow
		var buf []switchnet.Flow
		for round := 0; len(got) < len(want); round++ {
			buf = alt[i].PullBatch(buf[:0], round, len(want)+1)
			for _, f := range buf {
				if f.Release > round {
					t.Fatalf("source %d: batch at round %d leaked release %d", i, round, f.Release)
				}
			}
			got = append(got, buf...)
			if round > 1000 {
				t.Fatalf("source %d: batches stalled with %d of %d flows", i, len(got), len(want))
			}
		}
		if err := alt[i].Err(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("source %d: batched %d flows, want %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("source %d flow %d: batch %+v != next %+v", i, k, got[k], want[k])
			}
		}
		if _, ok := alt[i].Next(); ok {
			t.Fatalf("source %d: flows left after full batch drain", i)
		}
	}
}

// TestPullBatchHonorsMaxAndPeek: max caps a batch, and a record read past
// the round horizon is not lost — it surfaces on the next call (the
// TraceSource peek path, and buffered rounds elsewhere).
func TestPullBatchHonorsMaxAndPeek(t *testing.T) {
	trace := "0,0,1,1\n0,1,2,1\n0,2,3,1\n3,3,3,1\n"
	src := NewTraceSource(strings.NewReader(trace), switchnet.UnitSwitch(5))
	if got := len(src.PullBatch(nil, 0, 2)); got != 2 {
		t.Fatalf("max=2 batch returned %d flows", got)
	}
	// The rest of round 0, then the horizon stops short of release 3.
	if got := len(src.PullBatch(nil, 2, 10)); got != 1 {
		t.Fatalf("horizon batch returned %d flows, want 1", got)
	}
	if got := len(src.PullBatch(nil, 2, 10)); got != 0 {
		t.Fatalf("exhausted horizon returned %d flows, want 0", got)
	}
	// The peeked release-3 record must still arrive intact via Next.
	f, ok := src.Next()
	if !ok || f.Release != 3 || f.In != 3 {
		t.Fatalf("peeked record lost: %+v ok=%v", f, ok)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("trace yielded past its end")
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
}

func TestArrivalSourceRejectsBadConfig(t *testing.T) {
	src := NewArrivalSource(ArrivalConfig{Ports: 0, M: 1}, rand.New(rand.NewSource(1)))
	if _, ok := src.Next(); ok {
		t.Fatal("bad config yielded a flow")
	}
	if src.Err() == nil {
		t.Fatal("bad config reported no error")
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		v := BoundedPareto(rng, 1.5, 2, 64)
		if v < 2 || v > 64 {
			t.Fatalf("sample %d outside [2,64]", v)
		}
	}
	if v := BoundedPareto(rng, 1.5, 5, 5); v != 5 {
		t.Fatalf("degenerate range returned %d", v)
	}
	if v := BoundedPareto(rng, 1.5, 5, 3); v != 5 {
		t.Fatalf("inverted range returned %d", v)
	}
}

// TestBoundedParetoTail: a heavier tail (smaller alpha) must raise the
// sample mean.
func TestBoundedParetoTail(t *testing.T) {
	mean := func(alpha float64) float64 {
		rng := rand.New(rand.NewSource(3))
		s := 0
		for i := 0; i < 20000; i++ {
			s += BoundedPareto(rng, alpha, 1, 1<<16)
		}
		return float64(s) / 20000
	}
	light, heavy := mean(3), mean(0.8)
	if heavy <= light {
		t.Fatalf("alpha=0.8 mean %.2f not heavier than alpha=3 mean %.2f", heavy, light)
	}
}

func TestParetoConfigGenerate(t *testing.T) {
	cfg := ParetoConfig{M: 4, T: 6, Ports: 5, Alpha: 1.1, MinDemand: 1, MaxDemand: 8}
	inst := cfg.Generate(rand.New(rand.NewSource(4)))
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Switch.InCaps[0] < 8 {
		t.Fatalf("capacity %d below max demand 8", inst.Switch.InCaps[0])
	}
	varied := false
	for _, f := range inst.Flows {
		if f.Demand > 1 {
			varied = true
		}
	}
	if !varied && inst.N() > 20 {
		t.Fatal("pareto demands all unit")
	}
}

// TestTraceSourceMatchesReadTrace: streaming a sorted trace must yield
// exactly what the batch reader loads.
func TestTraceSourceMatchesReadTrace(t *testing.T) {
	cfg := PoissonConfig{M: 5, T: 6, Ports: 4}
	inst := cfg.Generate(rand.New(rand.NewSource(5))) // release-sorted by construction
	var buf bytes.Buffer
	if err := WriteTrace(&buf, inst); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	batch, err := ReadTrace(bytes.NewReader(data), inst.Switch)
	if err != nil {
		t.Fatal(err)
	}
	src := NewTraceSource(bytes.NewReader(data), inst.Switch)
	var streamed []switchnet.Flow
	for {
		f, ok := src.Next()
		if !ok {
			break
		}
		streamed = append(streamed, f)
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
	if len(streamed) != batch.N() {
		t.Fatalf("streamed %d flows, batch read %d", len(streamed), batch.N())
	}
	for i, f := range streamed {
		if f != batch.Flows[i] {
			t.Fatalf("flow %d: streamed %+v, batch %+v", i, f, batch.Flows[i])
		}
	}
}

func TestTraceSourceRejects(t *testing.T) {
	cases := []struct{ name, trace string }{
		{"unsorted", "release,in,out,demand\n3,0,0,1\n1,0,1,1\n"},
		{"bad port", "0,9,0,1\n"},
		{"bad demand", "0,0,0,7\n"},
		{"bad field", "0,0,zero,1\n"},
		{"wrong arity", "0,0,1\n"},
	}
	for _, tc := range cases {
		src := NewTraceSource(strings.NewReader(tc.trace), switchnet.UnitSwitch(2))
		for {
			if _, ok := src.Next(); !ok {
				break
			}
		}
		if src.Err() == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestInstanceSourceOrder(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 4},
			{In: 1, Out: 1, Demand: 1, Release: 0},
			{In: 0, Out: 1, Demand: 1, Release: 4},
		},
	}
	src := NewInstanceSource(inst)
	want := []int{1, 0, 2} // sorted by (release, index)
	for k, idx := range src.Order() {
		if idx != want[k] {
			t.Fatalf("order[%d] = %d, want %d", k, idx, want[k])
		}
	}
	lastRel := 0
	n := 0
	for {
		f, ok := src.Next()
		if !ok {
			break
		}
		if f.Release < lastRel {
			t.Fatalf("release %d after %d", f.Release, lastRel)
		}
		lastRel = f.Release
		n++
	}
	if n != inst.N() {
		t.Fatalf("yielded %d flows, want %d", n, inst.N())
	}
}
