package workload

import (
	"bytes"
	"strings"
	"testing"

	"flowsched/internal/switchnet"
)

// FuzzReadTrace fuzzes the CSV trace parser — one of the two surfaces that
// accept external input. ReadTrace must never panic, and any trace it
// accepts must survive a WriteTrace/ReadTrace round trip unchanged.
func FuzzReadTrace(f *testing.F) {
	f.Add("release,in,out,demand\n0,0,0,1\n1,1,2,1\n")
	f.Add("0,0,0,1\n2,3,3,1")
	f.Add("release,in,out,demand\n")
	f.Add("")
	f.Add("a,b,c,d\n")
	f.Add("0,0,0,1,5\n")
	f.Add("-1,0,0,1\n")
	f.Add("0,0,0,0\n")
	f.Add("9999999999999999999,0,0,1\n")
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			return
		}
		sw := switchnet.NewSwitch(4, 4, 2)
		inst, err := ReadTrace(strings.NewReader(data), sw)
		if err != nil {
			return
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("ReadTrace accepted an invalid instance: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, inst); err != nil {
			t.Fatalf("WriteTrace failed on accepted trace: %v", err)
		}
		back, err := ReadTrace(bytes.NewReader(buf.Bytes()), sw)
		if err != nil {
			t.Fatalf("round trip rejected: %v\ntrace:\n%s", err, buf.String())
		}
		if len(back.Flows) != len(inst.Flows) {
			t.Fatalf("round trip changed flow count: %d -> %d", len(inst.Flows), len(back.Flows))
		}
		for i := range inst.Flows {
			if inst.Flows[i] != back.Flows[i] {
				t.Fatalf("round trip changed flow %d: %+v -> %+v", i, inst.Flows[i], back.Flows[i])
			}
		}
	})
}
