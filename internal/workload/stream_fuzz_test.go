package workload

import (
	"strings"
	"testing"

	"flowsched/internal/switchnet"
)

// FuzzTraceSource fuzzes the streaming arrival-trace reader. It must never
// panic, must surface an Err whenever it stops before end of input, and is
// held differentially against the batch reader: any trace the streaming
// reader fully accepts must also be accepted by ReadTrace with the same
// flows in the same order, and the streamed releases must be
// non-decreasing (the streaming contract ReadTrace does not require).
func FuzzTraceSource(f *testing.F) {
	f.Add("release,in,out,demand\n0,0,0,1\n1,1,2,1\n")
	f.Add("0,0,0,1\n2,3,3,1")
	f.Add("3,0,0,1\n1,0,0,1\n") // sorted for ReadTrace, not for streaming
	f.Add("release,in,out,demand\n")
	f.Add("")
	f.Add("0,0,0,2\n")
	f.Add("0,0,0,1,5\n")
	f.Add("-1,0,0,1\n")
	f.Add("release\n")
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			return
		}
		sw := switchnet.NewSwitch(4, 4, 2)
		src := NewTraceSource(strings.NewReader(data), sw)
		var flows []switchnet.Flow
		lastRel := 0
		for {
			fl, ok := src.Next()
			if !ok {
				break
			}
			if fl.Release < lastRel {
				t.Fatalf("streamed release %d after %d", fl.Release, lastRel)
			}
			lastRel = fl.Release
			flows = append(flows, fl)
			if len(flows) > 1<<16 {
				t.Fatal("unbounded flows from bounded input")
			}
		}
		if _, ok := src.Next(); ok {
			t.Fatal("Next yielded after reporting exhaustion")
		}
		if src.Err() != nil {
			return
		}
		inst, err := ReadTrace(strings.NewReader(data), sw)
		if err != nil {
			t.Fatalf("streaming accepted what batch reader rejects: %v", err)
		}
		if len(inst.Flows) != len(flows) {
			t.Fatalf("streaming yielded %d flows, batch %d", len(flows), len(inst.Flows))
		}
		for i := range flows {
			if flows[i] != inst.Flows[i] {
				t.Fatalf("flow %d: streamed %+v, batch %+v", i, flows[i], inst.Flows[i])
			}
		}
	})
}
