package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"flowsched/internal/switchnet"
)

// Trace I/O: a minimal CSV flow-trace format ("release,in,out,demand" per
// line, with an optional header) so real datacenter traces — the paper
// cites pFabric/VL2-style workloads as motivation — can be replayed
// through the simulator and the offline algorithms. Port capacities are
// supplied separately since traces carry only flows.

// traceReader returns a CSV reader configured for the trace format.
func traceReader(r io.Reader) *csv.Reader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	cr.TrimLeadingSpace = true
	return cr
}

// parseTraceRecord decodes one CSV record (release,in,out,demand) into a
// flow; line is 1-based for error messages. Both the batch and the
// streaming trace readers go through here so the format cannot diverge.
func parseTraceRecord(rec []string, line int) (switchnet.Flow, error) {
	var vals [4]int
	for i, s := range rec {
		v, err := strconv.Atoi(s)
		if err != nil {
			return switchnet.Flow{}, fmt.Errorf("workload: trace line %d field %d: %w", line, i+1, err)
		}
		vals[i] = v
	}
	return switchnet.Flow{Release: vals[0], In: vals[1], Out: vals[2], Demand: vals[3]}, nil
}

// ReadTrace parses a CSV flow trace onto the given switch and validates
// the resulting instance.
func ReadTrace(r io.Reader, sw switchnet.Switch) (*switchnet.Instance, error) {
	cr := traceReader(r)
	inst := &switchnet.Instance{Switch: sw}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line+1, err)
		}
		line++
		if line == 1 && rec[0] == "release" {
			continue // header
		}
		f, err := parseTraceRecord(rec, line)
		if err != nil {
			return nil, err
		}
		inst.Flows = append(inst.Flows, f)
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("workload: invalid trace: %w", err)
	}
	return inst, nil
}

// WriteTrace emits the instance's flows as a CSV trace with header.
func WriteTrace(w io.Writer, inst *switchnet.Instance) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"release", "in", "out", "demand"}); err != nil {
		return err
	}
	for _, e := range inst.Flows {
		rec := []string{
			strconv.Itoa(e.Release),
			strconv.Itoa(e.In),
			strconv.Itoa(e.Out),
			strconv.Itoa(e.Demand),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
