package workload

import (
	"sync"

	"flowsched/internal/switchnet"
)

// ChanSource adapts a concurrently-fed channel of flows into a streaming
// source: producers Push flows from any number of goroutines (a network
// ingest path, typically) while a single consumer — the runtime — drains
// them. It implements the stream runtime's LiveFeeder contract: PullBatch
// never blocks, Next blocks until a flow arrives or the source is closed,
// and LiveFeed reports true so the runtime parks on Next only when idle.
//
// Release rounds are assigned by the source, not the producers: scheduler
// time is virtual (rounds advance as fast as the round loop spins, and
// freeze while it is parked), so a producer cannot know the current
// round. Each drained flow is stamped with the latest round the runtime
// has announced through PullBatch, clamped to keep releases
// non-decreasing; any Release a producer set is overwritten.
type ChanSource struct {
	ch   chan switchnet.Flow
	done chan struct{}
	once sync.Once

	// Consumer-side state, touched only by the runtime's goroutine.
	lastRound int
	lastRel   int
}

// NewChanSource returns a live source whose feed buffers up to buf pushed
// flows (minimum 1).
func NewChanSource(buf int) *ChanSource {
	if buf < 1 {
		buf = 1
	}
	return &ChanSource{
		ch:   make(chan switchnet.Flow, buf),
		done: make(chan struct{}),
	}
}

// Push feeds one flow, blocking while the buffer is full. It returns
// false — without delivering — once the source is closed. Safe for
// concurrent use.
func (s *ChanSource) Push(f switchnet.Flow) bool {
	select {
	case <-s.done:
		return false
	default:
	}
	select {
	case s.ch <- f:
		return true
	case <-s.done:
		return false
	}
}

// Close ends the feed: pending buffered flows are still drained, then the
// stream reports a clean end. Idempotent and safe to call concurrently
// with Push.
func (s *ChanSource) Close() { s.once.Do(func() { close(s.done) }) }

// Next implements FlowSource: it blocks until a flow is pushed or the
// source is closed and drained.
func (s *ChanSource) Next() (switchnet.Flow, bool) {
	select {
	case f := <-s.ch:
		return s.stamp(f), true
	default:
	}
	select {
	case f := <-s.ch:
		return s.stamp(f), true
	case <-s.done:
		// Closed: drain anything that raced in before the close.
		select {
		case f := <-s.ch:
			return s.stamp(f), true
		default:
			return switchnet.Flow{}, false
		}
	}
}

// PullBatch implements BatchFlowSource without ever blocking: it drains
// at most max immediately-available flows, stamped with the given round.
func (s *ChanSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	if round > s.lastRound {
		s.lastRound = round
	}
	for n := 0; n < max; n++ {
		select {
		case f := <-s.ch:
			dst = append(dst, s.stamp(f))
		default:
			return dst
		}
	}
	return dst
}

// Park implements the stream runtime's Parker contract: it blocks like
// Next but is additionally interrupted by wake, so an idle runtime can
// be unparked to service control requests (pending snapshots,
// checkpoints, reloads, stop) while the feed is quiet. woke=true means
// no flow was consumed.
func (s *ChanSource) Park(wake <-chan struct{}) (f switchnet.Flow, ok, woke bool) {
	select {
	case f := <-s.ch:
		return s.stamp(f), true, false
	default:
	}
	select {
	case f := <-s.ch:
		return s.stamp(f), true, false
	case <-wake:
		return switchnet.Flow{}, false, true
	case <-s.done:
		// Closed: drain anything that raced in before the close.
		select {
		case f := <-s.ch:
			return s.stamp(f), true, false
		default:
			return switchnet.Flow{}, false, false
		}
	}
}

// Err implements FlowSource: a closed feed is always a clean end.
func (s *ChanSource) Err() error { return nil }

// LiveFeed marks the source as concurrently fed (stream.LiveFeeder).
func (s *ChanSource) LiveFeed() bool { return true }

// stamp assigns the flow's release round: the latest round announced via
// PullBatch, clamped non-decreasing.
func (s *ChanSource) stamp(f switchnet.Flow) switchnet.Flow {
	rel := s.lastRound
	if rel < s.lastRel {
		rel = s.lastRel
	}
	s.lastRel = rel
	f.Release = rel
	return f
}
