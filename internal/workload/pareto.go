package workload

import (
	"math"
	"math/rand"

	"flowsched/internal/switchnet"
)

// Heavy-tailed flow sizes. Datacenter flow-size distributions are famously
// heavy-tailed (most flows are mice, most bytes live in elephants), so the
// extended experiments and the streaming sources share one bounded-Pareto
// size model: offline sweeps draw whole instances from ParetoConfig, and
// the arrival sources draw per-flow demands from the same sampler.

// BoundedPareto draws an integer from the bounded Pareto(alpha)
// distribution on [lo, hi] by inverse-CDF sampling. alpha <= 0 is treated
// as 1; hi <= lo collapses to the point mass at lo.
func BoundedPareto(rng *rand.Rand, alpha float64, lo, hi int) int {
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		return lo
	}
	if alpha <= 0 {
		alpha = 1
	}
	// Sample the continuous bounded Pareto on [lo, hi+1) and floor, so every
	// integer in [lo, hi] has positive mass.
	l, h := float64(lo), float64(hi)+1
	u := rng.Float64()
	x := l / math.Pow(1-u*(1-math.Pow(l/h, alpha)), 1/alpha)
	v := int(x)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// ParetoConfig is the heavy-tailed counterpart of PoissonConfig: Poisson(M)
// arrivals per round for T rounds on a Ports x Ports switch, with demands
// drawn from a bounded Pareto(Alpha) on [MinDemand, MaxDemand]. Port
// capacities are max(Cap, MaxDemand) so every flow satisfies the standing
// assumption d_e <= kappa_e.
type ParetoConfig struct {
	// M is the mean number of flows released per round; T the number of
	// arrival rounds; Ports the switch size.
	M     float64
	T     int
	Ports int
	// Cap is the per-port capacity (raised to MaxDemand if smaller).
	Cap int
	// Alpha is the Pareto tail index; smaller is heavier (<= 0 means 1).
	Alpha float64
	// MinDemand and MaxDemand bound the flow sizes (clamped to >= 1).
	MinDemand, MaxDemand int
}

// Generate draws an instance from the configuration using rng.
func (c ParetoConfig) Generate(rng *rand.Rand) *switchnet.Instance {
	minD := c.MinDemand
	if minD < 1 {
		minD = 1
	}
	maxD := c.MaxDemand
	if maxD < minD {
		maxD = minD
	}
	cap := c.Cap
	if cap < maxD {
		cap = maxD
	}
	inst := &switchnet.Instance{Switch: switchnet.NewSwitch(c.Ports, c.Ports, cap)}
	for t := 0; t < c.T; t++ {
		k := Poisson(rng, c.M)
		for i := 0; i < k; i++ {
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In:      rng.Intn(c.Ports),
				Out:     rng.Intn(c.Ports),
				Demand:  BoundedPareto(rng, c.Alpha, minD, maxD),
				Release: t,
			})
		}
	}
	return inst
}
