package workload

import (
	"sync"
	"testing"

	"flowsched/internal/switchnet"
)

func TestChanSourceStampAndDrain(t *testing.T) {
	s := NewChanSource(8)
	for i := 0; i < 3; i++ {
		if !s.Push(switchnet.Flow{In: i, Out: i, Demand: 1, Release: 99}) {
			t.Fatalf("push %d rejected before close", i)
		}
	}
	got := s.PullBatch(nil, 5, 10)
	if len(got) != 3 {
		t.Fatalf("PullBatch drained %d flows, want 3", len(got))
	}
	for i, f := range got {
		if f.Release != 5 {
			t.Fatalf("flow %d stamped release %d, want round 5 (producer value must be overwritten)", i, f.Release)
		}
	}
	// A later batch at an earlier round must not regress releases.
	s.Push(switchnet.Flow{In: 0, Out: 1, Demand: 1})
	got = s.PullBatch(nil, 2, 10)
	if len(got) != 1 || got[0].Release != 5 {
		t.Fatalf("got %+v, want one flow clamped to release 5", got)
	}
	// Empty feed: PullBatch never blocks.
	if got := s.PullBatch(nil, 6, 10); len(got) != 0 {
		t.Fatalf("empty feed yielded %d flows", len(got))
	}
}

func TestChanSourceCloseSemantics(t *testing.T) {
	s := NewChanSource(4)
	s.Push(switchnet.Flow{In: 1, Out: 2, Demand: 1})
	s.Close()
	s.Close() // idempotent
	if s.Push(switchnet.Flow{In: 0, Out: 0, Demand: 1}) {
		t.Fatal("push accepted after close")
	}
	// The buffered flow survives the close.
	f, ok := s.Next()
	if !ok || f.In != 1 || f.Out != 2 {
		t.Fatalf("Next after close = %+v, %v; want the buffered flow", f, ok)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next yielded a flow from a closed, drained feed")
	}
	if err := s.Err(); err != nil {
		t.Fatalf("closed feed reports error %v", err)
	}
}

func TestChanSourceNextBlocksUntilPushOrClose(t *testing.T) {
	s := NewChanSource(1)
	done := make(chan switchnet.Flow, 1)
	go func() {
		f, ok := s.Next()
		if !ok {
			f = switchnet.Flow{In: -1}
		}
		done <- f
	}()
	s.Push(switchnet.Flow{In: 7, Out: 3, Demand: 2})
	if f := <-done; f.In != 7 {
		t.Fatalf("parked Next returned %+v, want the pushed flow", f)
	}

	ended := make(chan bool, 1)
	go func() {
		_, ok := s.Next()
		ended <- ok
	}()
	s.Close()
	if ok := <-ended; ok {
		t.Fatal("parked Next did not end after close")
	}
}

func TestChanSourceConcurrentProducers(t *testing.T) {
	s := NewChanSource(16)
	const producers, each = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Push(switchnet.Flow{In: p, Out: p, Demand: 1})
			}
		}(p)
	}
	go func() {
		wg.Wait()
		s.Close()
	}()
	n, lastRel, round := 0, 0, 0
	for {
		batch := s.PullBatch(nil, round, 64)
		for _, f := range batch {
			if f.Release < lastRel {
				t.Fatalf("release %d after %d", f.Release, lastRel)
			}
			lastRel = f.Release
			n++
		}
		round++
		if len(batch) == 0 {
			// Park like the runtime does when idle.
			if _, ok := s.Next(); !ok {
				break
			}
			n++
		}
	}
	if n != producers*each {
		t.Fatalf("drained %d flows, want %d", n, producers*each)
	}
}

func TestLimitCapsStream(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.NewSwitch(4, 4, 1),
	}
	for i := 0; i < 10; i++ {
		inst.Flows = append(inst.Flows, switchnet.Flow{In: i % 4, Out: i % 4, Demand: 1, Release: 0})
	}
	lim := NewLimit(NewInstanceSource(inst), 6)
	got := lim.PullBatch(nil, 0, 4)
	if len(got) != 4 {
		t.Fatalf("first batch %d flows, want 4", len(got))
	}
	if f, ok := lim.Next(); !ok || f.Demand != 1 {
		t.Fatalf("Next after batch = %+v, %v", f, ok)
	}
	got = lim.PullBatch(nil, 0, 4)
	if len(got) != 1 {
		t.Fatalf("capped batch %d flows, want 1 (6-flow limit)", len(got))
	}
	if _, ok := lim.Next(); ok {
		t.Fatal("Next yielded past the cap")
	}
	if err := lim.Err(); err != nil {
		t.Fatalf("clean capped stream reports %v", err)
	}
}
