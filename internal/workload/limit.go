package workload

import "flowsched/internal/switchnet"

// Limit caps a batch source at a fixed number of flows: after Max flows
// have been yielded the stream reports a clean end, regardless of what
// the wrapped source still holds. flowsim uses it to honor -flows as a
// drain cap on trace replays.
type Limit struct {
	src       BatchFlowSource
	remaining int64
}

// NewLimit wraps src so at most max flows are yielded (max <= 0 yields
// none).
func NewLimit(src BatchFlowSource, max int64) *Limit {
	if max < 0 {
		max = 0
	}
	return &Limit{src: src, remaining: max}
}

// Next implements FlowSource.
func (s *Limit) Next() (switchnet.Flow, bool) {
	if s.remaining <= 0 {
		return switchnet.Flow{}, false
	}
	f, ok := s.src.Next()
	if ok {
		s.remaining--
	}
	return f, ok
}

// PullBatch implements BatchFlowSource.
func (s *Limit) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	if s.remaining <= 0 {
		return dst
	}
	if int64(max) > s.remaining {
		max = int(s.remaining)
	}
	before := len(dst)
	dst = s.src.PullBatch(dst, round, max)
	s.remaining -= int64(len(dst) - before)
	return dst
}

// Err implements FlowSource, surfacing the wrapped source's error: a
// capped-off stream still reports how its underlying reader failed.
func (s *Limit) Err() error { return s.src.Err() }
