package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"flowsched/internal/switchnet"
)

// Arrival-stream sources for the streaming scheduler runtime
// (internal/stream): instead of materializing a finite instance up front,
// a source yields flows one at a time in non-decreasing release order, so
// the runtime can schedule unbounded arrival processes in bounded memory.
// All sources here satisfy internal/stream.Source structurally; the
// interface is restated as FlowSource to keep this package free of a
// dependency on the runtime.

// FlowSource yields flows in non-decreasing release order. Next returns
// the next flow, or ok=false when the stream is exhausted or failed; Err
// reports the failure (nil for a clean end of stream).
type FlowSource interface {
	Next() (f switchnet.Flow, ok bool)
	Err() error
}

// BatchFlowSource is a FlowSource that can also drain flows in batches:
// PullBatch appends to dst up to max flows whose Release is <= round and
// returns the extended slice, never consuming a flow released later. A
// short batch (fewer than max) means no further flow with Release <= round
// is currently available — the stream is exhausted, failed (see Err), or
// its next flow releases later. The streaming runtime uses it to amortize
// one interface call over a whole round of arrivals instead of paying one
// per flow; all sources in this package implement it.
type BatchFlowSource interface {
	FlowSource
	PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow
}

// The package's sources must all support batch draining.
var (
	_ BatchFlowSource = (*ArrivalSource)(nil)
	_ BatchFlowSource = (*TraceSource)(nil)
	_ BatchFlowSource = (*InstanceSource)(nil)
	_ BatchFlowSource = (*ChurnSource)(nil)
	_ BatchFlowSource = (*ChanSource)(nil)
	_ BatchFlowSource = (*Limit)(nil)
)

// ArrivalConfig describes a generator-driven arrival process: Poisson(M)
// flows per round on a Ports x Ports switch with uniformly random
// endpoints, and demands drawn either unit, uniform, or bounded-Pareto.
type ArrivalConfig struct {
	// Ports is the switch size; Cap the per-port capacity (default 1).
	// Demands are clamped to Cap so d_e <= kappa_e always holds.
	Ports int
	Cap   int
	// M > 0 is the mean number of arrivals per round.
	M float64
	// MaxFlows ends the stream after that many flows (0 = unbounded).
	MaxFlows int64
	// Alpha > 0 selects bounded-Pareto demands on [MinDemand, MaxDemand];
	// Alpha == 0 with MaxDemand > 1 selects uniform demands on
	// [1, MaxDemand]; otherwise demands are unit.
	Alpha                float64
	MinDemand, MaxDemand int
}

// ArrivalSource streams flows drawn round by round from an ArrivalConfig.
type ArrivalSource struct {
	cfg        ArrivalConfig
	rng        *rand.Rand
	cap        int
	minD, maxD int
	round      int
	buf        []switchnet.Flow
	pos        int
	emitted    int64
	err        error
	done       bool
}

// NewArrivalSource returns a source drawing from cfg with rng. It fails
// fast (first Next returns ok=false with an Err) on a non-positive arrival
// rate or switch size.
func NewArrivalSource(cfg ArrivalConfig, rng *rand.Rand) *ArrivalSource {
	s := &ArrivalSource{cfg: cfg, rng: rng}
	if cfg.Ports <= 0 || cfg.M <= 0 {
		s.err = fmt.Errorf("workload: arrival source needs Ports > 0 and M > 0 (got %d, %g)", cfg.Ports, cfg.M)
		s.done = true
		return s
	}
	s.cap = cfg.Cap
	if s.cap < 1 {
		s.cap = 1
	}
	s.maxD = cfg.MaxDemand
	if s.maxD < 1 {
		s.maxD = 1
	}
	if s.maxD > s.cap {
		s.maxD = s.cap
	}
	s.minD = cfg.MinDemand
	if s.minD < 1 {
		s.minD = 1
	}
	if s.minD > s.maxD {
		s.minD = s.maxD
	}
	return s
}

// Switch returns the switch the source's flows are drawn for.
func (s *ArrivalSource) Switch() switchnet.Switch {
	return switchnet.NewSwitch(s.cfg.Ports, s.cfg.Ports, s.cap)
}

// Next implements FlowSource.
func (s *ArrivalSource) Next() (switchnet.Flow, bool) {
	if s.done {
		return switchnet.Flow{}, false
	}
	if s.cfg.MaxFlows > 0 && s.emitted >= s.cfg.MaxFlows {
		s.done = true
		return switchnet.Flow{}, false
	}
	for s.pos >= len(s.buf) {
		s.fillRound()
	}
	f := s.buf[s.pos]
	s.pos++
	s.emitted++
	return f, true
}

// Err implements FlowSource.
func (s *ArrivalSource) Err() error { return s.err }

// PullBatch implements BatchFlowSource. Generated rounds beyond round stay
// buffered for later Next/PullBatch calls.
func (s *ArrivalSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	for n := 0; n < max; n++ {
		if s.done || (s.cfg.MaxFlows > 0 && s.emitted >= s.cfg.MaxFlows) {
			break
		}
		for s.pos >= len(s.buf) && s.round <= round {
			s.fillRound()
		}
		if s.pos >= len(s.buf) || s.buf[s.pos].Release > round {
			break
		}
		dst = append(dst, s.buf[s.pos])
		s.pos++
		s.emitted++
	}
	return dst
}

// fillRound draws the next round's arrivals (possibly none).
func (s *ArrivalSource) fillRound() {
	s.buf = s.buf[:0]
	s.pos = 0
	k := Poisson(s.rng, s.cfg.M)
	for i := 0; i < k; i++ {
		d := 1
		switch {
		case s.cfg.Alpha > 0:
			d = BoundedPareto(s.rng, s.cfg.Alpha, s.minD, s.maxD)
		case s.maxD > 1:
			d = 1 + s.rng.Intn(s.maxD)
		}
		s.buf = append(s.buf, switchnet.Flow{
			In:      s.rng.Intn(s.cfg.Ports),
			Out:     s.rng.Intn(s.cfg.Ports),
			Demand:  d,
			Release: s.round,
		})
	}
	s.round++
}

// TraceSource streams the repository's CSV flow-trace format
// ("release,in,out,demand" per line, optional header) without loading the
// whole trace into memory. Flows are validated against the switch as they
// are read, and the trace must be sorted by release round — the streaming
// contract — or Next fails with an Err.
type TraceSource struct {
	cr      *csv.Reader
	sw      switchnet.Switch
	line    int
	lastRel int
	err     error
	done    bool

	// peek holds a record read past a PullBatch round horizon, yielded by
	// the next Next or PullBatch call.
	peek     switchnet.Flow
	havePeek bool
}

// NewTraceSource returns a streaming reader of the CSV trace r whose flows
// run on switch sw.
func NewTraceSource(r io.Reader, sw switchnet.Switch) *TraceSource {
	return &TraceSource{cr: traceReader(r), sw: sw}
}

// Next implements FlowSource.
func (s *TraceSource) Next() (switchnet.Flow, bool) {
	if s.havePeek {
		s.havePeek = false
		return s.peek, true
	}
	return s.read()
}

// PullBatch implements BatchFlowSource.
func (s *TraceSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	for n := 0; n < max; n++ {
		var f switchnet.Flow
		var ok bool
		if s.havePeek {
			f, ok = s.peek, true
			s.havePeek = false
		} else {
			f, ok = s.read()
		}
		if !ok {
			break
		}
		if f.Release > round {
			s.peek, s.havePeek = f, true
			break
		}
		dst = append(dst, f)
	}
	return dst
}

// read parses, validates, and returns the next trace record.
func (s *TraceSource) read() (switchnet.Flow, bool) {
	if s.done {
		return switchnet.Flow{}, false
	}
	for {
		rec, err := s.cr.Read()
		if err == io.EOF {
			s.done = true
			return switchnet.Flow{}, false
		}
		if err != nil {
			return s.fail(fmt.Errorf("workload: trace line %d: %w", s.line+1, err))
		}
		s.line++
		if s.line == 1 && rec[0] == "release" {
			continue // header
		}
		f, err := parseTraceRecord(rec, s.line)
		if err != nil {
			return s.fail(err)
		}
		if f.Release < s.lastRel {
			return s.fail(fmt.Errorf("workload: trace line %d: release %d after %d (stream must be sorted by release)",
				s.line, f.Release, s.lastRel))
		}
		if err := s.sw.ValidateFlow(f); err != nil {
			return s.fail(fmt.Errorf("workload: trace line %d: %w", s.line, err))
		}
		s.lastRel = f.Release
		return f, true
	}
}

// fail records err and ends the stream.
func (s *TraceSource) fail(err error) (switchnet.Flow, bool) {
	s.err = err
	s.done = true
	return switchnet.Flow{}, false
}

// Err implements FlowSource.
func (s *TraceSource) Err() error { return s.err }

// InstanceSource replays a finite instance as an arrival stream, yielding
// its flows sorted by (release, index) — the same order internal/sim.Run
// admits them, so a streamed run of a finite instance is comparable
// flow-for-flow with the batch simulator.
type InstanceSource struct {
	inst  *switchnet.Instance
	order []int
	pos   int
}

// NewInstanceSource returns a source over inst's flows.
func NewInstanceSource(inst *switchnet.Instance) *InstanceSource {
	order := make([]int, inst.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return inst.Flows[order[a]].Release < inst.Flows[order[b]].Release
	})
	return &InstanceSource{inst: inst, order: order}
}

// Next implements FlowSource.
func (s *InstanceSource) Next() (switchnet.Flow, bool) {
	if s.pos >= len(s.order) {
		return switchnet.Flow{}, false
	}
	f := s.inst.Flows[s.order[s.pos]]
	s.pos++
	return f, true
}

// PullBatch implements BatchFlowSource.
func (s *InstanceSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	for n := 0; n < max && s.pos < len(s.order); n++ {
		f := s.inst.Flows[s.order[s.pos]]
		if f.Release > round {
			break
		}
		dst = append(dst, f)
		s.pos++
	}
	return dst
}

// Err implements FlowSource.
func (s *InstanceSource) Err() error { return nil }

// Order returns the flow indices in emission order: the k-th flow yielded
// by Next is s.Order()[k] in the original instance.
func (s *InstanceSource) Order() []int { return s.order }
