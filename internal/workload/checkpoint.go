package workload

import (
	"flowsched/internal/switchnet"
)

// CheckpointSource replays a checkpointed flow prefix — the pending set
// (plus lookahead) a stream.CheckpointState captured, with original
// releases intact — and then hands over to an underlying source for the
// rest of the stream. It is the restore half of checkpoint/restore: the
// runtime re-admits the prefix as its first arrivals (Config.Resume
// keeps them from being re-counted), and the tail continues the feed.
//
// The prefix must be in the checkpoint's order (admission order, so
// releases are non-decreasing along it) and the tail must resume past
// the checkpoint's consumed point — Skip wraps a deterministic source
// that replays from the beginning, and a live ChanSource simply starts
// empty. Every tail release must be >= the last prefix release, or the
// runtime rejects the stream (releases non-decreasing); a live tail
// satisfies this automatically because it stamps releases at the
// current round, which a restored runtime opens at the resume round.
//
// The wrapper is transparent to the runtime's source probing: it always
// batches, reports the tail's LiveFeed, and forwards Park when the
// prefix is drained (so a restored daemon still parks interruptibly on
// its ingest queue).
type CheckpointSource struct {
	prefix []switchnet.Flow
	at     int
	tail   FlowSource

	tailBatch BatchFlowSource
	tailLive  bool
	tailPark  interface {
		Park(wake <-chan struct{}) (f switchnet.Flow, ok, woke bool)
	}
}

// NewCheckpointSource returns a source that yields prefix (unmodified,
// in order) and then everything tail yields. The prefix slice is
// retained, not copied.
func NewCheckpointSource(prefix []switchnet.Flow, tail FlowSource) *CheckpointSource {
	s := &CheckpointSource{prefix: prefix, tail: tail}
	s.tailBatch, _ = tail.(BatchFlowSource)
	if lf, ok := tail.(interface{ LiveFeed() bool }); ok {
		s.tailLive = lf.LiveFeed()
	}
	s.tailPark, _ = tail.(interface {
		Park(wake <-chan struct{}) (f switchnet.Flow, ok, woke bool)
	})
	return s
}

// Remaining reports how many prefix flows have not been replayed yet.
func (s *CheckpointSource) Remaining() int { return len(s.prefix) - s.at }

// Next implements FlowSource: prefix first, then the tail.
func (s *CheckpointSource) Next() (switchnet.Flow, bool) {
	if s.at < len(s.prefix) {
		f := s.prefix[s.at]
		s.at++
		return f, true
	}
	return s.tail.Next()
}

// PullBatch implements BatchFlowSource: it drains prefix flows released
// at or before round, then delegates leftover capacity to the tail. A
// tail without batching contributes nothing here (the runtime then pulls
// it flow by flow through Next), and it never blocks on a live tail.
func (s *CheckpointSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	n := 0
	for s.at < len(s.prefix) && n < max && s.prefix[s.at].Release <= round {
		dst = append(dst, s.prefix[s.at])
		s.at++
		n++
	}
	if s.at == len(s.prefix) && n < max && s.tailBatch != nil {
		dst = s.tailBatch.PullBatch(dst, round, max-n)
	}
	return dst
}

// Err reports the tail's failure; the prefix itself cannot fail.
func (s *CheckpointSource) Err() error { return s.tail.Err() }

// LiveFeed reports whether the tail is concurrently fed
// (stream.LiveFeeder); the prefix is always immediately available either
// way.
func (s *CheckpointSource) LiveFeed() bool { return s.tailLive }

// Park implements the stream runtime's Parker contract over the tail: an
// unreplayed prefix flow is returned immediately, otherwise the park is
// forwarded. A tail without Park blocks in its Next — the wake interrupt
// is then unavailable, exactly as if the tail were used bare.
func (s *CheckpointSource) Park(wake <-chan struct{}) (f switchnet.Flow, ok, woke bool) {
	if s.at < len(s.prefix) {
		f := s.prefix[s.at]
		s.at++
		return f, true, false
	}
	if s.tailPark != nil {
		return s.tailPark.Park(wake)
	}
	f, ok = s.tail.Next()
	return f, ok, false
}

// SkipSource discards the first n flows of an underlying source and then
// yields the rest. It resumes a deterministic, from-the-beginning source
// (ArrivalSource, TraceSource, InstanceSource) past a checkpoint's
// consumed point: stream.CheckpointState.SourceFlows says how many to
// skip.
type SkipSource struct {
	src     FlowSource
	batch   BatchFlowSource
	left    int
	scratch []switchnet.Flow
}

// Skip returns src with its first n flows discarded (lazily, on first
// read).
func Skip(src FlowSource, n int) *SkipSource {
	if n < 0 {
		n = 0
	}
	s := &SkipSource{src: src, left: n}
	s.batch, _ = src.(BatchFlowSource)
	return s
}

// discard burns through the remaining skip count.
func (s *SkipSource) discard() {
	for s.left > 0 {
		if _, ok := s.src.Next(); !ok {
			s.left = 0
			return
		}
		s.left--
	}
}

// Next implements FlowSource.
func (s *SkipSource) Next() (switchnet.Flow, bool) {
	s.discard()
	return s.src.Next()
}

// PullBatch implements BatchFlowSource when the underlying source does.
// The skipped flows are discarded through the same batch path, so a
// skipped source stays non-blocking if the underlying one is. Over a
// source without batching it reports nothing available and the caller
// falls back to Next.
func (s *SkipSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	if s.batch == nil {
		return dst
	}
	for s.left > 0 {
		want := s.left
		if want > 512 {
			want = 512
		}
		s.scratch = s.batch.PullBatch(s.scratch[:0], round, want)
		s.left -= len(s.scratch)
		if len(s.scratch) < want {
			// The source has nothing more released at this round; the
			// remaining skip happens on a later call.
			return dst
		}
	}
	return s.batch.PullBatch(dst, round, max)
}

// Err reports the underlying source's failure.
func (s *SkipSource) Err() error { return s.src.Err() }
