package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"flowsched/internal/switchnet"
)

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := PoissonConfig{M: 8, T: 4, Ports: 4}.Generate(rng)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, inst); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf, inst.Switch)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != inst.N() {
		t.Fatalf("n = %d, want %d", got.N(), inst.N())
	}
	for i := range inst.Flows {
		if got.Flows[i] != inst.Flows[i] {
			t.Fatalf("flow %d mismatch: %+v vs %+v", i, got.Flows[i], inst.Flows[i])
		}
	}
}

func TestReadTraceWithoutHeader(t *testing.T) {
	trace := "0,0,1,1\n2,1,0,1\n"
	inst, err := ReadTrace(strings.NewReader(trace), switchnet.UnitSwitch(2))
	if err != nil {
		t.Fatal(err)
	}
	if inst.N() != 2 || inst.Flows[1].Release != 2 {
		t.Fatalf("parsed %+v", inst.Flows)
	}
}

func TestReadTraceErrors(t *testing.T) {
	sw := switchnet.UnitSwitch(2)
	cases := []string{
		"release,in,out,demand\n0,9,0,1\n", // port out of range
		"0,0,1\n",                          // wrong field count
		"a,0,1,1\n",                        // non-integer
		"0,0,1,5\n",                        // demand over capacity
	}
	for i, trace := range cases {
		if _, err := ReadTrace(strings.NewReader(trace), sw); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestWriteTraceHeader(t *testing.T) {
	inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(1),
		Flows: []switchnet.Flow{{In: 0, Out: 0, Demand: 1, Release: 3}}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, inst); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "release,in,out,demand" || lines[1] != "3,0,0,1" {
		t.Fatalf("trace = %q", buf.String())
	}
}
