package workload

import (
	"fmt"
	"math/rand"

	"flowsched/internal/switchnet"
)

// RTT is an instance of the Restricted Timetable problem (Definition 4.1,
// after Even, Itai and Shamir): m teachers, mPrime classes, hours {1,2,3}.
// Teacher i is available in hours T[i] (|T[i]| >= 2) and must teach each
// class in G[i] for one hour, with |G[i]| = |T[i]|; no teacher teaches two
// classes in one hour and no class is taught by two teachers in one hour.
// Deciding satisfiability is NP-hard, which Theorem 2 transfers to FS-MRT.
type RTT struct {
	M      int
	MPrime int
	T      [][]int // subsets of {1,2,3}, size 2 or 3
	G      [][]int // subsets of [0, MPrime), |G[i]| == |T[i]|
}

// Validate checks the structural side conditions of Definition 4.1.
func (r *RTT) Validate() error {
	if len(r.T) != r.M || len(r.G) != r.M {
		return fmt.Errorf("workload: T/G length mismatch with M=%d", r.M)
	}
	for i := 0; i < r.M; i++ {
		if len(r.T[i]) < 2 || len(r.T[i]) > 3 {
			return fmt.Errorf("workload: |T[%d]| = %d outside {2,3}", i, len(r.T[i]))
		}
		seen := map[int]bool{}
		for _, h := range r.T[i] {
			if h < 1 || h > 3 || seen[h] {
				return fmt.Errorf("workload: T[%d] contains invalid/duplicate hour %d", i, h)
			}
			seen[h] = true
		}
		if len(r.G[i]) != len(r.T[i]) {
			return fmt.Errorf("workload: |G[%d]| = %d != |T[%d]| = %d", i, len(r.G[i]), i, len(r.T[i]))
		}
		seenJ := map[int]bool{}
		for _, j := range r.G[i] {
			if j < 0 || j >= r.MPrime || seenJ[j] {
				return fmt.Errorf("workload: G[%d] contains invalid/duplicate class %d", i, j)
			}
			seenJ[j] = true
		}
	}
	return nil
}

// RandomRTT draws a random valid RTT instance.
func RandomRTT(rng *rand.Rand, m, mPrime int) *RTT {
	r := &RTT{M: m, MPrime: mPrime}
	hours := []int{1, 2, 3}
	for i := 0; i < m; i++ {
		size := 2 + rng.Intn(2)
		if mPrime < size {
			size = mPrime
		}
		if size < 2 {
			size = 2
		}
		hs := append([]int(nil), hours...)
		rng.Shuffle(3, func(a, b int) { hs[a], hs[b] = hs[b], hs[a] })
		r.T = append(r.T, append([]int(nil), hs[:size]...))
		js := rng.Perm(mPrime)[:size]
		r.G = append(r.G, js)
	}
	return r
}

// Satisfiable decides the RTT instance by backtracking over the bijections
// from T[i] to G[i] (teacher i must use each available hour exactly once
// since |G[i]| = |T[i]|). Exponential; intended for reduction validation on
// small instances.
func (r *RTT) Satisfiable() bool {
	// busy[j][h] marks class j taught in hour h.
	busy := make([][4]bool, r.MPrime)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == r.M {
			return true
		}
		hs := r.T[i]
		js := r.G[i]
		perm := make([]int, len(js))
		for k := range perm {
			perm[k] = k
		}
		var tryPerm func(k int) bool
		tryPerm = func(k int) bool {
			if k == len(hs) {
				return rec(i + 1)
			}
			for l := k; l < len(perm); l++ {
				perm[k], perm[l] = perm[l], perm[k]
				j := js[perm[k]]
				h := hs[k]
				if !busy[j][h] {
					busy[j][h] = true
					if tryPerm(k + 1) {
						return true
					}
					busy[j][h] = false
				}
				perm[k], perm[l] = perm[l], perm[k]
			}
			return false
		}
		return tryPerm(0)
	}
	return rec(0)
}

// ReduceRTT builds the FS-MRT instance of Theorem 2's reduction: the RTT
// instance is satisfiable iff the returned switch instance admits a
// schedule with maximum response time at most the returned rho (= 3).
// Rounds are 0-indexed (the paper's round h is round h-1 here).
func ReduceRTT(r *RTT) (*switchnet.Instance, int) {
	inst := &switchnet.Instance{}
	// Input ports: p_i first, then blocker inputs appended as created.
	// Output ports: q_j first, then q*_i blocker outputs.
	numIn := r.M
	numOut := r.MPrime
	newIn := func() int { v := numIn; numIn++; return v }
	newOut := func() int { v := numOut; numOut++; return v }

	// Steps 1-2: teaching flows released at min(T_i) - 1.
	for i := 0; i < r.M; i++ {
		minH := 4
		for _, h := range r.T[i] {
			if h < minH {
				minH = h
			}
		}
		for _, j := range r.G[i] {
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In: i, Out: j, Demand: 1, Release: minH - 1,
			})
		}
	}
	// Step 3: three blocker flows into every q_j, released at round 3
	// (paper round 4), occupying q_j in rounds 3,4,5.
	for j := 0; j < r.MPrime; j++ {
		for k := 0; k < 3; k++ {
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In: newIn(), Out: j, Demand: 1, Release: 3,
			})
		}
	}
	// Steps 4-5: per-teacher gadgets for |T_i| = 2 that pin p_i's free
	// hour. For T_i = {1,3} the dashed flow is released at round 1 and
	// must run there; for T_i = {1,2} it is released at round 2.
	for i := 0; i < r.M; i++ {
		if len(r.T[i]) != 2 {
			continue
		}
		has := map[int]bool{}
		for _, h := range r.T[i] {
			has[h] = true
		}
		var dashRelease int
		switch {
		case has[1] && has[3]:
			dashRelease = 1 // blocks paper-round 2
		case has[1] && has[2]:
			dashRelease = 2 // blocks paper-round 3
		default: // {2,3}: release time alone blocks paper-round 1
			continue
		}
		qStar := newOut()
		inst.Flows = append(inst.Flows, switchnet.Flow{
			In: i, Out: qStar, Demand: 1, Release: dashRelease,
		})
		for k := 0; k < 3; k++ {
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In: newIn(), Out: qStar, Demand: 1, Release: dashRelease + 1,
			})
		}
	}
	inst.Switch = switchnet.NewSwitch(numIn, numOut, 1)
	return inst, 3
}
