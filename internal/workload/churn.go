package workload

import (
	"fmt"
	"math/rand"

	"flowsched/internal/switchnet"
)

// ChurnConfig describes the adversarial VOQ-churn arrival process used by
// the fairness regression tests: every round a fixed number of unit flows
// arrives on random (input, output) pairs of an Ins x Outs switch, so
// virtual output queues constantly drain and refill — the access pattern
// that swap-delete-reorders the runtime's active-VOQ lists and stresses
// rotation-pointer and age-weighted fairness state. Optionally the first
// HotOuts outputs also receive one flow from input 0 every round: a
// persistently backlogged VOQ a fair policy must keep serving while the
// rest of the port space churns (the starvation probe).
type ChurnConfig struct {
	// Ins and Outs are the switch dimensions (Ins defaults to 1: the
	// single-input shape fairness invariants are easiest to replay).
	Ins, Outs int
	// PerRound is how many churn flows arrive each round (default 2).
	PerRound int
	// HotOuts pins outputs 0..HotOuts-1 hot: each receives one extra
	// flow from input 0 every round (0 = no hot outputs).
	HotOuts int
	// MaxFlows ends the stream after that many flows (0 = unbounded).
	MaxFlows int64
}

// ChurnSource streams the churn process. It is deterministic given the
// rng seed, so a test can replay the exact flow sequence from a second
// instance.
type ChurnSource struct {
	cfg     ChurnConfig
	rng     *rand.Rand
	round   int
	buf     []switchnet.Flow
	pos     int
	emitted int64
	err     error
	done    bool
}

// NewChurnSource returns a source drawing from cfg with rng. With Ins ==
// 1 the input draw is skipped, so the output sequence depends only on the
// seed and PerRound.
func NewChurnSource(cfg ChurnConfig, rng *rand.Rand) *ChurnSource {
	if cfg.Ins <= 0 {
		cfg.Ins = 1
	}
	if cfg.PerRound <= 0 {
		cfg.PerRound = 2
	}
	s := &ChurnSource{cfg: cfg, rng: rng}
	if cfg.Outs <= 0 || cfg.HotOuts > cfg.Outs {
		s.err = fmt.Errorf("workload: churn source needs Outs > 0 and HotOuts <= Outs (got %d, %d)", cfg.Outs, cfg.HotOuts)
		s.done = true
	}
	return s
}

// Switch returns the unit-capacity switch the source's flows are drawn
// for.
func (s *ChurnSource) Switch() switchnet.Switch {
	return switchnet.NewSwitch(s.cfg.Ins, s.cfg.Outs, 1)
}

// Next implements FlowSource.
func (s *ChurnSource) Next() (switchnet.Flow, bool) {
	if s.done {
		return switchnet.Flow{}, false
	}
	if s.cfg.MaxFlows > 0 && s.emitted >= s.cfg.MaxFlows {
		s.done = true
		return switchnet.Flow{}, false
	}
	for s.pos >= len(s.buf) {
		s.fillRound()
	}
	f := s.buf[s.pos]
	s.pos++
	s.emitted++
	return f, true
}

// Err implements FlowSource.
func (s *ChurnSource) Err() error { return s.err }

// PullBatch implements BatchFlowSource. Generated rounds beyond round
// stay buffered for later calls.
func (s *ChurnSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	for n := 0; n < max; n++ {
		if s.done || (s.cfg.MaxFlows > 0 && s.emitted >= s.cfg.MaxFlows) {
			break
		}
		for s.pos >= len(s.buf) && s.round <= round {
			s.fillRound()
		}
		if s.pos >= len(s.buf) || s.buf[s.pos].Release > round {
			break
		}
		dst = append(dst, s.buf[s.pos])
		s.pos++
		s.emitted++
	}
	return dst
}

// fillRound draws the next round's arrivals: the hot flows first, then
// the churn draws.
func (s *ChurnSource) fillRound() {
	s.buf = s.buf[:0]
	s.pos = 0
	for h := 0; h < s.cfg.HotOuts; h++ {
		s.buf = append(s.buf, switchnet.Flow{In: 0, Out: h, Demand: 1, Release: s.round})
	}
	for i := 0; i < s.cfg.PerRound; i++ {
		in := 0
		if s.cfg.Ins > 1 {
			in = s.rng.Intn(s.cfg.Ins)
		}
		s.buf = append(s.buf, switchnet.Flow{
			In:      in,
			Out:     s.rng.Intn(s.cfg.Outs),
			Demand:  1,
			Release: s.round,
		})
	}
	s.round++
}
