package stream

import "flowsched/internal/switchnet"

// View is a Policy's window onto the runtime's incremental per-port state.
// It is valid only inside Pick: the pending set, the admission order, and
// the VOQ indexes are frozen for the duration (Take marks flows but
// departures apply after Pick returns), so iteration is always safe.
type View struct {
	rt *Runtime
}

// Round returns the current round t.
func (v *View) Round() int { return v.rt.round }

// Switch describes port counts and capacities.
func (v *View) Switch() switchnet.Switch { return v.rt.sw }

// NumPending returns the resident pending-set size.
func (v *View) NumPending() int { return v.rt.count }

// Each calls fn for every pending flow in admission order (oldest first)
// until fn returns false. seq is the flow's global admission sequence
// number; id its (reusable) pending identifier.
func (v *View) Each(fn func(id ID, seq int64, f switchnet.Flow) bool) {
	for id := v.rt.head; id != noID; id = v.rt.slots[id].next {
		s := &v.rt.slots[id]
		if !fn(ID(id), s.seq, s.flow) {
			return
		}
	}
}

// Flow returns the flow data of a pending id.
func (v *View) Flow(id ID) switchnet.Flow { return v.rt.slots[id].flow }

// QueueIn returns the number of pending flows at input port i (the queue
// depth the MaxWeight heuristic weighs by); QueueOut likewise for output
// port j.
func (v *View) QueueIn(i int) int  { return v.rt.queueIn[i] }
func (v *View) QueueOut(j int) int { return v.rt.queueOut[j] }

// InputFree returns input port i's remaining capacity this round;
// OutputFree likewise for output port j.
func (v *View) InputFree(i int) int  { return v.rt.sw.InCaps[i] - v.rt.loadIn[i] }
func (v *View) OutputFree(j int) int { return v.rt.sw.OutCaps[j] - v.rt.loadOut[j] }

// NumActiveInputs returns how many input ports have pending flows;
// ActiveInput returns the k-th of them. The order is arbitrary but fixed
// during Pick.
func (v *View) NumActiveInputs() int  { return len(v.rt.activeIn) }
func (v *View) ActiveInput(k int) int { return int(v.rt.activeIn[k]) }

// NumActiveVOQs returns how many output ports have a non-empty virtual
// output queue at input in; ActiveVOQ returns the k-th such output port.
func (v *View) NumActiveVOQs(in int) int { return len(v.rt.activeOut[in]) }
func (v *View) ActiveVOQ(in, k int) int  { return int(v.rt.activeOut[in][k]) }

// VOQHead returns the oldest pending flow on the (in, out) virtual output
// queue, or NoID if it is empty; VOQNext walks the queue toward younger
// flows.
func (v *View) VOQHead(in, out int) ID {
	return ID(v.rt.voqHead[v.rt.voq(in, out)])
}
func (v *View) VOQNext(id ID) ID { return ID(v.rt.slots[id].vnext) }

// Taken reports whether id was already selected this round.
func (v *View) Taken(id ID) bool { return v.rt.slots[id].taken }

// Take schedules pending flow id in the current round if both its ports
// have remaining capacity, and reports whether it did. Taking an id twice
// is a no-op returning false; taking a dead id fails the run.
func (v *View) Take(id ID) bool {
	rt := v.rt
	if id < 0 || id >= len(rt.slots) || !rt.slots[id].live {
		rt.fail("stream: policy %q took invalid pending id %d", rt.cfg.Policy.Name(), id)
		return false
	}
	s := &rt.slots[id]
	if s.taken {
		return false
	}
	f := s.flow
	if rt.loadIn[f.In]+f.Demand > rt.sw.InCaps[f.In] || rt.loadOut[f.Out]+f.Demand > rt.sw.OutCaps[f.Out] {
		return false
	}
	if rt.loadIn[f.In] == 0 {
		rt.touchIn = append(rt.touchIn, int32(f.In))
	}
	if rt.loadOut[f.Out] == 0 {
		rt.touchOut = append(rt.touchOut, int32(f.Out))
	}
	rt.loadIn[f.In] += f.Demand
	rt.loadOut[f.Out] += f.Demand
	s.taken = true
	rt.takes = append(rt.takes, int32(id))
	return true
}

// Fail aborts the run with a policy-contract error (e.g. a bridged
// sim.Policy returned an infeasible or duplicate pick).
func (v *View) Fail(format string, args ...any) {
	v.rt.fail(format, args...)
}
