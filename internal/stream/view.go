package stream

import "flowsched/internal/switchnet"

// View is a Policy's window onto one shard's slice of the runtime's
// incremental per-port state (the whole runtime when Config.Shards == 1;
// see the package docs for the shard-scoped contract). It is valid only
// inside Pick: the pending set, the admission order, and the VOQ indexes
// are frozen for the duration (Take marks flows but departures apply after
// the round's picks complete), so iteration is always safe.
type View struct {
	sh *shard
}

// Round returns the current round t.
func (v *View) Round() int { return v.sh.rt.round }

// Switch describes port counts and capacities.
func (v *View) Switch() switchnet.Switch { return v.sh.rt.sw }

// NumPending returns the shard's resident pending-set size.
func (v *View) NumPending() int { return v.sh.count }

// Each calls fn for every pending flow on the shard in admission order
// (oldest first) until fn returns false. seq is the flow's global
// admission sequence number; id its (reusable, shard-local) pending
// identifier.
func (v *View) Each(fn func(id ID, seq int64, f switchnet.Flow) bool) {
	a := &v.sh.ar
	for id := v.sh.head; id != noID; id = a.rec[id].next {
		if !fn(ID(id), a.seq[id], a.flow(id)) {
			return
		}
	}
}

// Flow returns the flow data of a pending id.
func (v *View) Flow(id ID) switchnet.Flow { return v.sh.ar.flow(int32(id)) }

// Demand returns just the demand of a pending id — the one field a
// feasibility check needs, read from the hot record without gathering the
// full flow across the arena's columns.
func (v *View) Demand(id ID) int { return int(v.sh.ar.rec[id].dem) }

// Release returns the release round of a pending id. Like Demand it is a
// hot-record read — the age-aware policies (OldestFirst, WeightedISLIP)
// order VOQ heads by it every round, so it shares the cache line a
// feasibility check already pulled.
func (v *View) Release(id ID) int64 { return v.sh.ar.rec[id].rel }

// Seq returns the global admission sequence number of a pending id — the
// deterministic tie-breaker between flows released in the same round. It
// is a cold-column read; policies should consult it once per considered
// head (e.g. when enqueueing a heap entry), not per comparison.
func (v *View) Seq(id ID) int64 { return v.sh.ar.seq[id] }

// QueueIn returns the number of the shard's pending flows at input port i
// (the queue depth the MaxWeight heuristic weighs by); QueueOut likewise
// for output port j. With a single shard these are the global depths.
func (v *View) QueueIn(i int) int  { return v.sh.queueIn[i] }
func (v *View) QueueOut(j int) int { return v.sh.queueOut[j] }

// InputFree returns input port i's remaining capacity this round; it is
// exact, because every input belongs to exactly one shard.
func (v *View) InputFree(i int) int { return v.sh.inCaps[i] - v.sh.loadIn[i] }

// OutputFree returns output port j's remaining capacity as visible to the
// shard this pass: its remaining carved budget during the propose phase,
// the global reconciled leftover during the reconcile phase (and simply
// the port's remaining capacity when Config.Shards == 1).
func (v *View) OutputFree(j int) int {
	sh := v.sh
	if sh.nsh == 1 {
		return sh.outCaps[j] - sh.loadOut[j]
	}
	if sh.phase == pickShared {
		return sh.rt.leftover[j]
	}
	return sh.budget(j) - sh.loadOut[j]
}

// NumActiveInputs returns how many of the shard's input ports have pending
// flows; ActiveInput returns the k-th of them. The order is arbitrary but
// fixed during Pick.
func (v *View) NumActiveInputs() int  { return len(v.sh.activeIn) }
func (v *View) ActiveInput(k int) int { return int(v.sh.activeIn[k]) }

// NumActiveVOQs returns how many output ports have a non-empty virtual
// output queue at input in; ActiveVOQ returns the k-th such output port.
// in must be one of the shard's inputs (any input when Shards == 1).
func (v *View) NumActiveVOQs(in int) int { return len(v.sh.activeOut[v.sh.liTab[in]]) }
func (v *View) ActiveVOQ(in, k int) int  { return int(v.sh.activeOut[v.sh.liTab[in]][k]) }

// NextActiveVOQ returns the output port of the next non-empty VOQ at input
// in, at or after port from (0 <= from < NumOut) in circular port order,
// or -1 if the input has none. It is the O(1)-probe primitive behind
// port-order rotation policies. in must be one of the shard's inputs.
func (v *View) NextActiveVOQ(in, from int) int { return v.sh.nextActive(in, from) }

// voqWords and headRow are the in-package fast path behind NextActiveVOQ
// and VOQHeadRecord: input in's active-VOQ bitmap words and its
// out-indexed row of head-age records, handed out as slices so a policy
// sweeping every active VOQ pays plain array reads instead of a call and
// an index recomputation per VOQ. Both are read-only for policies.
func (v *View) voqWords(in int) []uint64 {
	base := int(v.sh.bitBase[in])
	return v.sh.actBits[base : base+v.sh.nw]
}

func (v *View) headRow(in int) []voqHead {
	base := int(v.sh.voqBase[in])
	return v.sh.heads[base : base+v.sh.mOut]
}

// VOQHead returns the oldest pending flow on the (in, out) virtual output
// queue, or NoID if it is empty; VOQNext walks the queue toward younger
// flows. in must be one of the shard's inputs.
func (v *View) VOQHead(in, out int) ID {
	return ID(v.sh.voqFirst(v.sh.voq(in, out)))
}

// VOQHeadRecord reads the (in, out) queue's mirrored head-age record:
// the release round, admission sequence number, and demand of its oldest
// flow, without touching the queue's ring blocks or the flow's arena
// record. This is the primitive the age-aware policies sweep every round
// — a dense array indexed in port order, maintained by the runtime at
// admission and retirement. The values are meaningful only for a
// non-empty VOQ, and describe the queue as of the last retirement: a
// flow taken earlier in the same round still owns the record until it
// departs (check Taken on the id if the distinction matters). in must be
// one of the shard's inputs.
func (v *View) VOQHeadRecord(in, out int) (rel, seq int64, demand int) {
	h := &v.sh.heads[v.sh.voq(in, out)]
	return h.rel, h.seq, int(h.dem)
}
func (v *View) VOQNext(id ID) ID {
	r := &v.sh.ar.rec[id]
	return ID(v.sh.voqNext(v.sh.voq(int(r.in), int(r.out)), int32(id)))
}

// EachVOQ calls fn for every pending flow on the (in, out) virtual output
// queue, oldest first, until fn returns false. It is the fast path for
// policies that sweep whole queues: iteration runs on a block cursor —
// one VOQ-state load, then sequential reads through the pooled ring
// blocks — instead of re-deriving the queue position of every id the way
// chained VOQNext calls must. in must be one of the shard's inputs.
func (v *View) EachVOQ(in, out int, fn func(id ID) bool) {
	sh := v.sh
	q := &sh.vqs[sh.voq(in, out)]
	if q.live == 0 {
		return
	}
	b, o := q.head, q.headOff
	for {
		if b == q.tail && o >= q.tailOff {
			return
		}
		if o == blockLen {
			b, o = sh.pool.blocks[b].next, 0
			continue
		}
		if id := sh.pool.blocks[b].ids[o]; id != noID {
			if !fn(ID(id)) {
				return
			}
		}
		o++
	}
}

// Taken reports whether id was already selected this round.
func (v *View) Taken(id ID) bool { return v.sh.ar.taken(int32(id)) }

// Take schedules pending flow id in the current round if its input port
// and the visible output capacity (see OutputFree) both have room, and
// reports whether it did. Taking an id twice is a no-op returning false;
// taking a dead id fails the run.
//
//flowsched:hotpath
func (v *View) Take(id ID) bool {
	sh := v.sh
	a := &sh.ar
	if id < 0 || id >= a.len() || !a.live(int32(id)) {
		sh.fail("stream: policy %q took invalid pending id %d", sh.pol.Name(), id) //flowsched:allow alloc: cold contract-violation path: records the first policy error and stops the shard
		return false
	}
	if a.taken(int32(id)) {
		return false
	}
	rc := &a.rec[id]
	in, out, d := int(rc.in), int(rc.out), int(rc.dem)
	if sh.loadIn[in]+d > sh.inCaps[in] || v.OutputFree(out) < d {
		return false
	}
	if sh.loadIn[in] == 0 {
		sh.touchIn = append(sh.touchIn, int32(in)) //flowsched:allow alloc: touched-input scratch is length-reset on apply and grows to the port count
	}
	sh.loadIn[in] += d
	if sh.nsh > 1 && sh.phase == pickShared {
		sh.rt.leftover[out] -= d
	} else {
		if sh.loadOut[out] == 0 {
			sh.touchOut = append(sh.touchOut, int32(out)) //flowsched:allow alloc: touched-output scratch is length-reset on apply and grows to the port count
		}
		sh.loadOut[out] += d
	}
	rc.state |= stTaken
	sh.takes = append(sh.takes, int32(id)) //flowsched:allow alloc: takes buffer is length-reset on apply and grows to the per-round take high-water mark
	return true
}

// Fail aborts the run with a policy-contract error (e.g. a bridged
// sim.Policy returned an infeasible or duplicate pick).
func (v *View) Fail(format string, args ...any) {
	v.sh.fail(format, args...)
}
