package stream

import (
	"strings"
	"testing"
	"unsafe"

	"flowsched/internal/switchnet"
)

// TestArenaRecordLayout pins the arena's cache-budget claims: the hot
// record — now carrying the release round for the age-aware policies —
// must stay exactly 32 bytes (two flows per cache line), and the cold
// column is a bare sequence number.
func TestArenaRecordLayout(t *testing.T) {
	if s := unsafe.Sizeof(flowRec{}); s != 32 {
		t.Fatalf("flowRec is %d bytes, want exactly 32", s)
	}
	var a arena
	id := a.alloc()
	a.rec[id].rel = 1 << 40 // releases larger than int32 must survive
	if got := a.flow(id).Release; got != 1<<40 {
		t.Fatalf("release round-trips as %d, want %d", got, 1<<40)
	}
}

// TestISLIPCircDist pins the rotation tie-breaker: distance 0 is the
// pointer's successor, n-1 the pointer itself, and the -1 never-pointed
// state degrades to plain port order.
func TestISLIPCircDist(t *testing.T) {
	cases := []struct{ x, ptr, n, want int }{
		{0, -1, 4, 0}, {3, -1, 4, 3},
		{2, 1, 4, 0}, {1, 1, 4, 3}, {0, 1, 4, 2},
		{0, 3, 4, 0}, {3, 3, 4, 3},
	}
	for _, c := range cases {
		if got := circDist(c.x, c.ptr, c.n); got != c.want {
			t.Fatalf("circDist(%d, %d, %d) = %d, want %d", c.x, c.ptr, c.n, got, c.want)
		}
	}
	// wins: older release beats any distance; equal releases fall to the
	// pointer order.
	if !wins(1, 3, 2, 0, -1, 4) {
		t.Fatal("older release lost")
	}
	if wins(2, 0, 1, 3, -1, 4) {
		t.Fatal("younger release won")
	}
	if !wins(5, 2, 5, 0, 1, 4) {
		t.Fatal("pointer successor lost an equal-release tie")
	}
}

// emptySource yields nothing; for runtimes driven by hand in white-box
// tests.
type emptySource struct{}

func (emptySource) Next() (switchnet.Flow, bool) { return switchnet.Flow{}, false }
func (emptySource) Err() error                   { return nil }

// TestFlushWindowLabelsTrueRounds pins the verification-failure label to
// the true min/max buffered rounds. The old label was [vstart, vstart+w)
// with a vstart that went stale when an idle jump crossed several window
// boundaries before the flush; deriving it from the buffered rounds cannot
// drift. An infeasible buffer can only be injected white-box — View.Take
// never produces one — so this test writes the shard buffers directly.
func TestFlushWindowLabelsTrueRounds(t *testing.T) {
	rt, err := New(emptySource{}, Config{
		Switch:      switchnet.UnitSwitch(2),
		Policy:      FIFO{},
		VerifyEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := rt.shards[0]
	// A feasible flow at round 5, then two unit flows on the same port
	// pair in round 9: load 2 on a unit-capacity port, infeasible.
	sh.vflows = append(sh.vflows,
		switchnet.Flow{In: 1, Out: 1, Demand: 1},
		switchnet.Flow{In: 0, Out: 0, Demand: 1},
		switchnet.Flow{In: 0, Out: 0, Demand: 1},
	)
	sh.vrounds = append(sh.vrounds, 5, 9, 9)

	// flushWindow launches the oracle check asynchronously; the verdict
	// surfaces at the join.
	err = rt.flushWindow()
	if err == nil {
		err = rt.joinVerify()
	}
	if err == nil {
		t.Fatal("infeasible window passed verification")
	}
	if !strings.Contains(err.Error(), "[5, 9]") {
		t.Fatalf("window label does not cover the true buffered rounds [5, 9]: %v", err)
	}
}

// TestNextActiveVOQWordBoundaries probes the active-VOQ bitmap across
// 64-bit word edges: with NumOut > 64 the per-input bitmap spans several
// words, and the ports 63/64 and 127/128 sit on opposite sides of word
// boundaries. Activation, circular probing (including wrap-around through
// a zero upper word), and drain-time bit clearing exactly at a word edge
// must all agree with the active lists.
func TestNextActiveVOQWordBoundaries(t *testing.T) {
	rt, err := New(emptySource{}, Config{
		Switch: switchnet.NewSwitch(1, 130, 1),
		Policy: &RoundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := rt.shards[0]
	seq := int64(0)
	add := func(out int) {
		sh.admit(arrival{flow: switchnet.Flow{In: 0, Out: out, Demand: 1}, seq: seq})
		seq++
	}
	drain := func(out int) {
		id := sh.voqFirst(sh.voq(0, out))
		if id == noID {
			t.Fatalf("VOQ (0, %d) empty before drain", out)
		}
		sh.depart(id)
	}
	probe := func(from, want int) {
		t.Helper()
		if got := sh.nextActive(0, from); got != want {
			t.Fatalf("nextActive(0, %d) = %d, want %d", from, got, want)
		}
	}

	for _, out := range []int{63, 64, 127, 128} {
		add(out)
	}
	probe(0, 63)    // word 0 interior -> last bit of word 0
	probe(63, 63)   // from == the set bit
	probe(64, 64)   // first bit of word 1
	probe(65, 127)  // word 1 interior -> last bit of word 1
	probe(127, 127) // last bit of word 1
	probe(128, 128) // first bit of word 2
	probe(129, 63)  // wrap: word 2 tail is empty, circle back to word 0

	drain(63) // clears the last bit of word 0
	probe(0, 64)
	probe(63, 64)
	drain(128) // clears the first bit of word 2
	probe(128, 64)
	drain(64) // clears the first bit of word 1
	probe(64, 127)
	probe(0, 127)
	drain(127) // clears the last live bit anywhere
	probe(0, -1)
	probe(129, -1)
	for i, w := range sh.actBits {
		if w != 0 {
			t.Fatalf("bitmap word %d left set after full drain: %x", i, w)
		}
	}

	// NumOut == 64: the single-word edge case, wrap from bit 63 to bit 0.
	rt64, err := New(emptySource{}, Config{
		Switch: switchnet.NewSwitch(1, 64, 1),
		Policy: &RoundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	sh = rt64.shards[0]
	add(0)
	add(63)
	probe(1, 63)
	probe(63, 63)
	drain(63)
	probe(63, 0) // bit 63 cleared at the word edge; wrap finds bit 0
	probe(0, 0)
}

// TestVOQTombstonesAndCompaction drives the pooled ring-buffer VOQ storage
// through its out-of-FIFO-order removal path directly: tombstoned
// mid-queue entries must stay invisible to head/next iteration, compaction
// must trigger once tombstones outnumber live entries by more than a
// block, and a drained VOQ must return its whole chain to the pool for
// reuse (no unbounded block growth across refill cycles).
func TestVOQTombstonesAndCompaction(t *testing.T) {
	rt, err := New(emptySource{}, Config{
		Switch: switchnet.NewSwitch(1, 2, 1),
		Policy: &RoundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := rt.shards[0]
	vi := sh.voq(0, 0)

	const n = 4 * blockLen
	ids := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		sh.admit(arrival{flow: switchnet.Flow{In: 0, Out: 0, Demand: 1, Release: i}, seq: int64(i)})
		ids = append(ids, sh.tail)
	}
	// Remove every younger flow (tail side), oldest-first survivor: each is
	// a mid-queue removal, so tombstones accumulate until compaction.
	for i := n - 1; i >= 1; i-- {
		sh.depart(ids[i])
		if head := sh.voqFirst(vi); head != ids[0] {
			t.Fatalf("after %d removals, VOQ head = %d, want oldest %d", n-i, head, ids[0])
		}
		if nxt := sh.voqNext(vi, ids[0]); i > 1 {
			if nxt != ids[1] {
				t.Fatalf("voqNext skipped to %d, want next-oldest %d", nxt, ids[1])
			}
		} else if nxt != noID {
			t.Fatalf("voqNext past the only live entry = %d, want noID", nxt)
		}
		if sh.vqs[vi].dead > sh.vqs[vi].live+blockLen {
			t.Fatalf("tombstones escaped the compaction bound: %d dead, %d live", sh.vqs[vi].dead, sh.vqs[vi].live)
		}
	}
	sh.depart(ids[0])
	if sh.vqs[vi].live != 0 || sh.vqs[vi].head != noID {
		t.Fatal("drained VOQ did not release its chain")
	}

	// Refill/drain cycles must recycle pooled blocks, not grow the pool.
	grown := len(sh.pool.blocks)
	for cycle := 0; cycle < 8; cycle++ {
		var cids []int32
		for i := 0; i < n; i++ {
			sh.admit(arrival{flow: switchnet.Flow{In: 0, Out: 0, Demand: 1, Release: n + cycle}, seq: int64(n*cycle + i)})
			cids = append(cids, sh.tail)
		}
		for _, id := range cids {
			sh.depart(id)
		}
	}
	if len(sh.pool.blocks) > grown {
		t.Fatalf("block pool grew from %d to %d across refill cycles", grown, len(sh.pool.blocks))
	}
}

// TestShardBudgetsPartitionCapacity: for every round offset the per-shard
// carves of an output's capacity must sum to exactly the capacity, so
// propose-phase picks can never overload a port and reconcile redistributes
// precisely what was left.
func TestShardBudgetsPartitionCapacity(t *testing.T) {
	for _, caps := range []int{1, 2, 3, 5, 8} {
		for _, k := range []int{1, 2, 3, 4} {
			rt, err := New(emptySource{}, Config{
				Switch: switchnet.NewSwitch(4, 4, caps),
				Policy: &RoundRobin{},
				Shards: k,
			})
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 6; round++ {
				rt.round = round
				for j := 0; j < 4; j++ {
					sum := 0
					for _, sh := range rt.shards {
						b := sh.budget(j)
						if b < 0 {
							t.Fatalf("caps=%d k=%d round=%d out=%d shard=%d: negative budget %d", caps, k, round, j, sh.idx, b)
						}
						sum += b
					}
					if sum != caps {
						t.Fatalf("caps=%d k=%d round=%d out=%d: budgets sum to %d", caps, k, round, j, sum)
					}
				}
			}
		}
	}
}
