package stream

import (
	"strings"
	"testing"

	"flowsched/internal/switchnet"
)

// emptySource yields nothing; for runtimes driven by hand in white-box
// tests.
type emptySource struct{}

func (emptySource) Next() (switchnet.Flow, bool) { return switchnet.Flow{}, false }
func (emptySource) Err() error                   { return nil }

// TestFlushWindowLabelsTrueRounds pins the verification-failure label to
// the true min/max buffered rounds. The old label was [vstart, vstart+w)
// with a vstart that went stale when an idle jump crossed several window
// boundaries before the flush; deriving it from the buffered rounds cannot
// drift. An infeasible buffer can only be injected white-box — View.Take
// never produces one — so this test writes the shard buffers directly.
func TestFlushWindowLabelsTrueRounds(t *testing.T) {
	rt, err := New(emptySource{}, Config{
		Switch:      switchnet.UnitSwitch(2),
		Policy:      FIFO{},
		VerifyEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := rt.shards[0]
	// A feasible flow at round 5, then two unit flows on the same port
	// pair in round 9: load 2 on a unit-capacity port, infeasible.
	sh.vflows = append(sh.vflows,
		switchnet.Flow{In: 1, Out: 1, Demand: 1},
		switchnet.Flow{In: 0, Out: 0, Demand: 1},
		switchnet.Flow{In: 0, Out: 0, Demand: 1},
	)
	sh.vrounds = append(sh.vrounds, 5, 9, 9)

	err = rt.flushWindow()
	if err == nil {
		t.Fatal("infeasible window passed verification")
	}
	if !strings.Contains(err.Error(), "[5, 9]") {
		t.Fatalf("window label does not cover the true buffered rounds [5, 9]: %v", err)
	}
}

// TestShardBudgetsPartitionCapacity: for every round offset the per-shard
// carves of an output's capacity must sum to exactly the capacity, so
// propose-phase picks can never overload a port and reconcile redistributes
// precisely what was left.
func TestShardBudgetsPartitionCapacity(t *testing.T) {
	for _, caps := range []int{1, 2, 3, 5, 8} {
		for _, k := range []int{1, 2, 3, 4} {
			rt, err := New(emptySource{}, Config{
				Switch: switchnet.NewSwitch(4, 4, caps),
				Policy: &RoundRobin{},
				Shards: k,
			})
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 6; round++ {
				rt.round = round
				for j := 0; j < 4; j++ {
					sum := 0
					for _, sh := range rt.shards {
						b := sh.budget(j)
						if b < 0 {
							t.Fatalf("caps=%d k=%d round=%d out=%d shard=%d: negative budget %d", caps, k, round, j, sh.idx, b)
						}
						sum += b
					}
					if sum != caps {
						t.Fatalf("caps=%d k=%d round=%d out=%d: budgets sum to %d", caps, k, round, j, sum)
					}
				}
			}
		}
	}
}
