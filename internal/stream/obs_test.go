package stream_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"flowsched/internal/obs"
	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

// TestStreamFlightRecorderTrace replays a finite workload with a flight
// recorder large enough to hold the whole run and checks the trace's
// accounting against the final summary: rounds strictly increasing, the
// per-round Arrived/Scheduled/Dropped/Expired columns summing to the
// cumulative counters, and the final record's pending count at zero.
func TestStreamFlightRecorderTrace(t *testing.T) {
	inst := workload.PoissonConfig{M: 6, T: 40, Ports: 6}.Generate(rand.New(rand.NewSource(11)))
	for _, shards := range []int{1, 2} {
		rec := obs.NewFlightRecorder(1 << 14)
		src := workload.NewInstanceSource(inst)
		rt, err := stream.New(src, stream.Config{
			Switch:      inst.Switch,
			Policy:      stream.ByName("RoundRobin"),
			Shards:      shards,
			Recorder:    rec,
			VerifyEvery: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		recs := rec.Last(nil, rec.Cap())
		if int64(len(recs)) != sum.Rounds {
			t.Fatalf("K=%d: trace has %d records, summary counted %d scheduling rounds", shards, len(recs), sum.Rounds)
		}
		var arrived, scheduled, dropped, expired int64
		for i, r := range recs {
			if i > 0 && r.Round <= recs[i-1].Round {
				t.Fatalf("K=%d: trace rounds not strictly increasing: %d after %d", shards, r.Round, recs[i-1].Round)
			}
			arrived += r.Arrived
			scheduled += r.Scheduled
			dropped += r.Dropped
			expired += r.Expired
			if r.ProposeNS < 0 || r.ReconcileNS < 0 || r.ApplyNS < 0 || r.VerifyNS < 0 {
				t.Fatalf("K=%d: negative phase time in %+v", shards, r)
			}
		}
		if arrived != sum.Admitted {
			t.Fatalf("K=%d: trace arrivals %d != admitted %d", shards, arrived, sum.Admitted)
		}
		if scheduled != sum.Completed {
			t.Fatalf("K=%d: trace schedules %d != completed %d", shards, scheduled, sum.Completed)
		}
		if dropped != 0 || expired != 0 {
			t.Fatalf("K=%d: lossless run traced %d drops, %d expiries", shards, dropped, expired)
		}
		if last := recs[len(recs)-1]; last.Pending != 0 {
			t.Fatalf("K=%d: drained run's final record still shows %d pending", shards, last.Pending)
		}
	}
}

// TestStreamSlowResponses cross-checks Summary.SlowResponses against an
// independent per-completion count reconstructed through OnSchedule.
func TestStreamSlowResponses(t *testing.T) {
	inst := workload.PoissonConfig{M: 8, T: 30, Ports: 4}.Generate(rand.New(rand.NewSource(7)))
	const bound = 2
	var want int64
	src := workload.NewInstanceSource(inst)
	rt, err := stream.New(src, stream.Config{
		Switch:        inst.Switch,
		Policy:        stream.ByName("RoundRobin"),
		Shards:        1,
		ResponseBound: bound,
		OnSchedule: func(seq int64, f switchnet.Flow, round int) {
			if round+1-f.Release > bound {
				want++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.SlowResponses != want {
		t.Fatalf("SlowResponses %d, independent count %d", sum.SlowResponses, want)
	}
	if want == 0 {
		t.Fatal("workload produced no slow completions; the bound is not binding")
	}
	if sum.SlowResponses >= sum.Completed {
		t.Fatalf("every completion slow (%d of %d): bound not meaningful", sum.SlowResponses, sum.Completed)
	}
}

// TestPendingFlowsSnapshot exercises both service paths of PendingFlows:
// mid-run requests answered by the coordinator between rounds, and the
// direct read of quiescent state after Run returns (which must be empty
// for a drained run).
func TestPendingFlowsSnapshot(t *testing.T) {
	inst := workload.PoissonConfig{M: 10, T: 200, Ports: 6}.Generate(rand.New(rand.NewSource(3)))
	src := workload.NewInstanceSource(inst)
	rt, err := stream.New(src, stream.Config{
		Switch: inst.Switch,
		Policy: stream.ByName("RoundRobin"),
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	probed := make(chan struct{})
	go func() {
		defer close(probed)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		var buf []switchnet.Flow
		for i := 0; i < 50; i++ {
			flows, round, err := rt.PendingFlows(ctx, buf)
			if err != nil {
				t.Errorf("mid-run PendingFlows: %v", err)
				return
			}
			buf = flows
			for _, f := range flows {
				if f.Release > round {
					t.Errorf("pending snapshot at round %d contains unreleased flow %+v", round, f)
					return
				}
				if err := inst.Switch.ValidateFlow(f); err != nil {
					t.Errorf("pending snapshot contains invalid flow: %v", err)
					return
				}
			}
		}
	}()
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	<-probed
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	flows, round, err := rt.PendingFlows(ctx, nil)
	if err != nil {
		t.Fatalf("post-run PendingFlows: %v", err)
	}
	if len(flows) != 0 {
		t.Fatalf("drained run reports %d pending flows", len(flows))
	}
	if round != sum.Round {
		t.Fatalf("post-run snapshot round %d != summary round %d", round, sum.Round)
	}
}
