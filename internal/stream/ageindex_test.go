package stream

import (
	"fmt"
	"sort"
	"testing"

	"flowsched/internal/switchnet"
)

// churnSource feeds a deterministic high-churn arrival pattern: bursty
// per-round batches over cycling port pairs with mixed demands, so VOQs
// activate, drain, and re-activate constantly — the regime where an
// incremental index earns its keep and where a maintenance bug (a missed
// journal touch, a stale entry surviving a merge, a generation mix-up)
// shows up as an order divergence.
type churnSource struct {
	ports, rounds int
	r, i          int
}

func (s *churnSource) Next() (switchnet.Flow, bool) {
	for s.r < s.rounds {
		per := 3 + (s.r*7)%9 // burst size varies 3..11 per round
		if s.i >= per {
			s.r++
			s.i = 0
			continue
		}
		k := s.r*31 + s.i*13
		f := switchnet.Flow{
			In:      k % s.ports,
			Out:     (k*5 + s.i) % s.ports,
			Demand:  1 + k%3,
			Release: s.r,
		}
		s.i++
		return f, true
	}
	return switchnet.Flow{}, false
}

func (s *churnSource) Err() error { return nil }

// scanLive walks the index's merged (main, overlay) candidate order,
// skipping tombstones, and returns the live entries in scan order —
// exactly the sequence a policy's merged pass visits. It also
// cross-checks the pos encoding: every live entry must be findable from
// its VOQ at its exact resident position.
func scanLive(t *testing.T, ai *ageIndex, round int) []aiEntry {
	t.Helper()
	var out []aiEntry
	mi, oi := 0, 0
	for {
		for mi < len(ai.main) && ai.main[mi].key == aiTomb {
			mi++
		}
		for oi < len(ai.ovr) && ai.ovr[oi].key == aiTomb {
			oi++
		}
		switch {
		case mi < len(ai.main) && (oi >= len(ai.ovr) || ai.main[mi].key < ai.ovr[oi].key):
			e := ai.main[mi]
			if got := ai.pos[e.vi()]; got != int32(mi) {
				t.Fatalf("round %d shard %d: pos[%d] = %d, entry sits in main at %d", round, ai.idx, e.vi(), got, mi)
			}
			out = append(out, e)
			mi++
		case oi < len(ai.ovr):
			e := ai.ovr[oi]
			if got := ai.pos[e.vi()]; got != int32(-2-oi) {
				t.Fatalf("round %d shard %d: pos[%d] = %d, entry sits in overlay at %d", round, ai.idx, e.vi(), got, oi)
			}
			out = append(out, e)
			oi++
		default:
			return out
		}
	}
}

// checkIndex compares the shard's incremental index against a
// from-scratch reference built by sweeping every VOQ: same candidate
// set, same (release, VOQ) order, same per-entry ports and release, and
// consistent live/per-output counts. Any journal left by an
// out-of-phase retirement (applyPending on the drain path) is folded
// first — exactly what the next fused phase would do before its Pick —
// so the invariant under test is the one every policy scan sees.
func checkIndex(t *testing.T, sh *shard, round int) {
	t.Helper()
	ai := sh.ai
	ai.applyJournal()

	var want []aiEntry
	for vi := range sh.vqs {
		if sh.vqs[vi].live > 0 {
			want = append(want, aiEntry{key: aiKey(sh.heads[vi].rel, int32(vi)), dem: sh.heads[vi].dem})
		}
	}
	sort.Slice(want, func(a, b int) bool { return want[a].key < want[b].key })

	got := scanLive(t, ai, round)
	if len(got) != len(want) {
		t.Fatalf("round %d shard %d: index scans %d live candidates, VOQ sweep finds %d", round, sh.idx, len(got), len(want))
	}
	if ai.live() != len(want) {
		t.Fatalf("round %d shard %d: live() %d, want %d", round, sh.idx, ai.live(), len(want))
	}
	outCand := make([]int32, ai.mOut)
	for i, e := range got {
		w := want[i]
		if e.key != w.key {
			t.Fatalf("round %d shard %d: scan position %d is (rel %d, vi %d), rebuild says (rel %d, vi %d)",
				round, sh.idx, i, e.rel(), e.vi(), w.rel(), w.vi())
		}
		if e.dem != w.dem {
			t.Fatalf("round %d shard %d: entry vi %d caches demand %d, head record says %d",
				round, sh.idx, e.vi(), e.dem, w.dem)
		}
		vi := int(e.vi())
		li, out := vi/ai.mOut, vi%ai.mOut
		if int(e.out) != out || int(e.in) != li*ai.nsh+ai.idx {
			t.Fatalf("round %d shard %d: entry vi %d carries ports (%d, %d), want (%d, %d)",
				round, sh.idx, vi, e.in, e.out, li*ai.nsh+ai.idx, out)
		}
		outCand[out]++
	}
	for out, n := range outCand {
		if ai.outCand[out] != n {
			t.Fatalf("round %d shard %d: outCand[%d] = %d, scan counts %d", round, sh.idx, out, ai.outCand[out], n)
		}
	}
}

// TestAgeIndexMatchesRebuildEveryRound is the churn property test pinning
// the tentpole invariant: after every fused round, for both indexed
// policies at one and several shards, the incrementally maintained
// candidate order must equal the order a from-scratch rebuild over the
// live VOQs would produce. Deadline expiry is on so the journal sees all
// three head-change sources — activation, head departure, and expiry.
func TestAgeIndexMatchesRebuildEveryRound(t *testing.T) {
	const ports, rounds = 7, 160
	for _, pol := range []string{"OldestFirst", "WeightedISLIP"} {
		for _, shards := range []int{2, 3} {
			t.Run(fmt.Sprintf("%s/K%d", pol, shards), func(t *testing.T) {
				rt, err := New(&churnSource{ports: ports, rounds: rounds}, Config{
					Switch: switchnet.NewSwitch(ports, ports, 3),
					Policy: ByName(pol), Shards: shards,
					MaxPending: 48, Admit: AdmitDeadline, Deadline: 24,
				})
				if err != nil {
					t.Fatal(err)
				}
				rt.startWorkers()
				defer rt.stopWorkers()
				steps := 0
				for {
					done, err := rt.step()
					if err != nil {
						t.Fatal(err)
					}
					for _, sh := range rt.shards {
						if sh.ai == nil {
							t.Fatal("indexed policy runs without an index")
						}
						checkIndex(t, sh, rt.round)
					}
					if done {
						break
					}
					if steps++; steps > 1<<20 {
						t.Fatal("runaway stream")
					}
				}
				if sum := rt.Snapshot(); sum.Completed+sum.Expired == 0 {
					t.Fatalf("churn run moved nothing: %+v", sum)
				}
			})
		}
	}
}
