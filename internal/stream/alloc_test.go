package stream

import (
	"fmt"
	"testing"

	"flowsched/internal/obs"
	"flowsched/internal/switchnet"
)

// patternSource emits a fixed, deterministic arrival pattern forever: per
// unit flows per round with endpoints cycling over the switch. Determinism
// matters for the allocation assertions — after warm-up every scratch
// buffer, arena column, and VOQ block chain has reached its high-water
// mark, so a measured round can only allocate if the hot path itself does.
type patternSource struct {
	ports, per int
	round, i   int
}

func (s *patternSource) gen() switchnet.Flow {
	k := s.i*7 + s.round*3
	f := switchnet.Flow{
		In:      k % s.ports,
		Out:     (k / s.ports) % s.ports,
		Demand:  1,
		Release: s.round,
	}
	s.i++
	if s.i%s.per == 0 {
		s.round++
	}
	return f
}

func (s *patternSource) Next() (switchnet.Flow, bool) { return s.gen(), true }

func (s *patternSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	for n := 0; n < max && s.round <= round; n++ {
		dst = append(dst, s.gen())
	}
	return dst
}

func (s *patternSource) Err() error { return nil }

// testSteadyStateZeroAlloc pins the tentpole property: once the pending
// set and every internal buffer have warmed to their high-water marks, a
// scheduling round performs zero heap allocations — arena slots and VOQ
// blocks recycle through their free lists, the admission batch, takes,
// and policy scratch buffers (RoundRobin's pointers, OldestFirst's heap,
// WeightedISLIP's request/grant arrays) length-reset, and the metric path
// (atomic counters plus the preallocated epoch window) never touches the
// allocator.
func testSteadyStateZeroAlloc(t *testing.T, shards int, pol Policy, admit AdmitMode, deadline int, rec *obs.FlightRecorder, mut ...func(*Config)) {
	t.Helper()
	src := &patternSource{ports: 8, per: 12}
	cfg := Config{
		Switch:     switchnet.UnitSwitch(8),
		Policy:     pol,
		Shards:     shards,
		MaxPending: 512,
		Admit:      admit,
		Deadline:   deadline,
		Recorder:   rec,
	}
	for _, m := range mut {
		m(&cfg)
	}
	rt, err := New(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.startWorkers()
	defer rt.stopWorkers()
	// Overloaded pattern (12 arrivals vs <= 8 services per round): the
	// pending set pins at MaxPending well inside the warm-up.
	for i := 0; i < 4096; i++ {
		done, err := rt.step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatal("unbounded source drained during warm-up")
		}
	}
	if admit != AdmitDeadline && rt.peak != 512 {
		t.Fatalf("pending set never reached the admission limit: peak %d", rt.peak)
	}
	switch admit {
	case AdmitDrop:
		if rt.mDropped.Load() == 0 {
			t.Fatal("overloaded drop-mode warm-up shed nothing")
		}
	case AdmitDeadline:
		var expired int64
		for _, sh := range rt.shards {
			expired += sh.expired.Load()
		}
		if expired == 0 {
			t.Fatal("overloaded deadline-mode warm-up expired nothing")
		}
	}
	allocs := testing.AllocsPerRun(512, func() {
		if _, err := rt.step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("%s K=%d steady-state round performed %v allocs, want 0", pol.Name(), shards, allocs)
	}
}

// TestSteadyStateZeroAlloc covers every incremental native policy at
// K in {1, 2}. StreamFIFO is excluded by design: it is the O(pending)
// baseline, documented as non-incremental.
func TestSteadyStateZeroAlloc(t *testing.T) {
	for _, name := range []string{"RoundRobin", "OldestFirst", "WeightedISLIP"} {
		for _, shards := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/K%d", name, shards), func(t *testing.T) {
				testSteadyStateZeroAlloc(t, shards, ByName(name), AdmitLossless, 0, nil)
			})
		}
	}
}

// TestSteadyStateZeroAllocAdmissionModes extends the allocation gate to
// the shedding admission modes: a steady-state round that drops the
// released backlog (AdmitDrop) or expires aged pending flows
// (AdmitDeadline) must stay off the allocator exactly like the lossless
// path.
func TestSteadyStateZeroAllocAdmissionModes(t *testing.T) {
	for _, tc := range []struct {
		admit    AdmitMode
		deadline int
	}{
		{AdmitDrop, 0},
		{AdmitDeadline, 8},
	} {
		for _, shards := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/K%d", tc.admit, shards), func(t *testing.T) {
				testSteadyStateZeroAlloc(t, shards, ByName("RoundRobin"), tc.admit, tc.deadline, nil)
			})
		}
	}
}

// TestSteadyStateZeroAllocCheckpoint extends the allocation gate to a
// checkpoint-enabled configuration: with a round-cadence periodic
// checkpoint firing inside the measured window, a steady-state round
// still performs zero heap allocations — the trigger is an integer
// compare, and the capture reuses the runtime-owned flow buffer, state
// struct, and snapshot scratch, all warmed to their high-water marks
// during warm-up.
func TestSteadyStateZeroAllocCheckpoint(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("K%d", shards), func(t *testing.T) {
			captures := 0
			var lastRound int
			testSteadyStateZeroAlloc(t, shards, ByName("RoundRobin"), AdmitLossless, 0, nil, func(cfg *Config) {
				cfg.CheckpointEveryRounds = 64
				cfg.OnCheckpoint = func(st *CheckpointState) {
					captures++
					lastRound = st.Round
					if st.Pending != int(st.Summary.Admitted-st.Summary.Completed-st.Summary.Dropped-st.Summary.Expired) {
						t.Errorf("capture at round %d: pending %d does not match summary %+v", st.Round, st.Pending, st.Summary)
					}
				}
			})
			// 4096 warm-up steps + 512 measured at a 64-round cadence: the
			// measured window itself must have fired captures, or the gate
			// proved nothing about the checkpoint path.
			if captures < (4096+512)/64 {
				t.Fatalf("only %d captures fired (last at round %d); the measured window missed the checkpoint path", captures, lastRound)
			}
		})
	}
}

// TestSteadyStateZeroAllocRecorded extends the allocation gate to the
// instrumented path: with a flight recorder attached, a steady-state
// round still performs zero heap allocations — Record stores into the
// preallocated atomic ring and the timing hooks read the monotonic clock
// without touching the allocator. The ring is smaller than the measured
// iteration count, so wrap-around is exercised inside the gate too.
func TestSteadyStateZeroAllocRecorded(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("K%d", shards), func(t *testing.T) {
			rec := obs.NewFlightRecorder(256)
			testSteadyStateZeroAlloc(t, shards, ByName("RoundRobin"), AdmitLossless, 0, rec)
			if rec.Written() == 0 {
				t.Fatal("recorder saw no rounds")
			}
			last := rec.Last(nil, 1)
			if len(last) != 1 || last[0].Scheduled == 0 {
				t.Fatalf("steady-state record looks wrong: %+v", last)
			}
		})
	}
}
