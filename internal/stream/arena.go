package stream

import "flowsched/internal/switchnet"

// The pending-set storage of a shard: a struct-of-arrays arena addressed
// by flow ID, plus pooled ring-buffer blocks holding the virtual output
// queues. Both structures recycle through free lists, so a shard at
// steady state — pending count fluctuating below its high-water mark —
// performs zero heap allocations per round: slot IDs come off the arena
// free list, VOQ storage comes off the block pool, and every per-round
// scratch slice is length-reset, never reallocated.
//
// The arena's columns are grouped by access affinity, not one array per
// scalar field: a feasibility or age check (Take, serveVOQ, the age-aware
// policies' head ordering) reads exactly one 32-byte hot record, an
// admission-order unlink touches only the packed link pairs, and the cold
// sequence number stays out of the pick-path cache footprint. A pending
// flow costs 40 bytes across the columns versus a 56-byte AoS slot, and
// the field a hot path does not need is never pulled into cache.

// flowRec is the hot per-flow record: release round (the age-aware
// policies order VOQ heads by it every round, so it rides in the hot
// line), admission-order links, the flow's position inside its VOQ block
// chain, demand, ports, and the live/taken state bits — everything the
// pick and depart paths read or write, packed into exactly 32 bytes so
// two flows share a cache line and a feasibility-plus-age check
// (Taken+Demand+Release+Take) costs a single line per flow. Ports are
// int16 (the switch is capped at 1<<15 ports a side at construction);
// the VOQ index is no longer cached — it is two array reads away via
// shard.voq(in, out), which is cheaper than the four bytes it occupied.
type flowRec struct {
	rel        int64 // release round
	prev, next int32 // admission-order links; noID terminates
	blk        int32 // VOQ ring-block position (see blockPool)
	dem        int32
	in, out    int16
	off        int16 // offset inside blk; < blockLen
	state      uint16
}

// arena state bits.
const (
	stLive  = 1 << iota // resident ID
	stTaken             // selected this round
)

// arena holds one shard's pending flows as two parallel columns indexed
// by flow ID — the 32-byte hot record and the 8-byte cold admission
// sequence number (read at retirement, at Bridge materialization, and
// when an age-aware policy breaks a release-round tie). There is no
// per-flow heap object: a flow is a row across the columns, reconstructed
// into a switchnet.Flow only at the API boundary (View.Flow, verification
// buffering, OnSchedule).
type arena struct {
	rec []flowRec
	seq []int64
	// freed is the ID free list (LIFO, so hot IDs recycle first).
	freed []int32
}

// alloc returns a free ID, growing every column in step only when the
// free list is empty (i.e. the pending set reaches a new high-water mark).
//
//flowsched:hotpath
func (a *arena) alloc() int32 {
	if n := len(a.freed); n > 0 {
		id := a.freed[n-1]
		a.freed = a.freed[:n-1]
		return id
	}
	a.rec = append(a.rec, flowRec{blk: noID, prev: noID, next: noID}) //flowsched:allow alloc: arena rows grow to the live-flow high-water mark, then recycle through freed
	a.seq = append(a.seq, 0)                                          //flowsched:allow alloc: grows in lockstep with rec to the same high-water mark
	return int32(len(a.rec) - 1)
}

// free recycles id onto the free list.
//
//flowsched:hotpath
func (a *arena) free(id int32) {
	a.rec[id].state = 0
	a.freed = append(a.freed, id) //flowsched:allow alloc: free list grows to the arena high-water mark, then stabilizes
}

// len reports the arena's column length (IDs ever allocated).
func (a *arena) len() int { return len(a.rec) }

// live and taken test the state bits of id.
func (a *arena) live(id int32) bool  { return a.rec[id].state&stLive != 0 }
func (a *arena) taken(id int32) bool { return a.rec[id].state&stTaken != 0 }

// flow reconstructs the switchnet.Flow stored at id.
func (a *arena) flow(id int32) switchnet.Flow {
	r := &a.rec[id]
	return switchnet.Flow{
		In:      int(r.in),
		Out:     int(r.out),
		Demand:  int(r.dem),
		Release: int(r.rel),
	}
}

// blockLen is the number of flow IDs per VOQ ring block, sized so a block
// is exactly one 64-byte cache line: sparse VOQs (a handful of pending
// flows) stay one-line dense, deep VOQs chain lines.
const blockLen = 15

// voqBlock is one pooled segment of a VOQ FIFO: a fixed array of flow IDs
// written append-only at the tail, with next chaining toward younger
// blocks. Entries removed out of FIFO order are tombstoned (noID) and
// skipped; a block whose entries are all consumed returns to the pool, and
// a fully drained VOQ releases its whole chain at once.
type voqBlock struct {
	next int32
	ids  [blockLen]int32
}

// blockPool owns a shard's VOQ blocks, recycled through a free list.
type blockPool struct {
	blocks []voqBlock
	free   []int32
}

// voqState is one VOQ's packed cursor record — head/tail block chain
// position plus live and tombstone tallies — sized so a queue probe
// touches one cache line of VOQ state instead of one per parallel array.
type voqState struct {
	head, tail       int32
	headOff, tailOff int16
	live, dead       int32
}

// voqHead is the per-VOQ head-age record: the release round, admission
// sequence number, and demand of the queue's oldest flow, mirrored out of
// the arena whenever the head changes (first push into an empty queue,
// head departure — appends behind a non-empty head cannot change it).
// The age-aware policies order and filter VOQ heads every round; reading
// this dense vi-indexed array costs one sequential cache line per 2-3
// VOQs instead of chasing queue state -> ring block -> flow record for
// every head. Entries are only meaningful while the VOQ is non-empty,
// and during a pick pass they describe the queue as of the last
// retirement — a head taken earlier in the same round still owns the
// entry until it departs (policies see takes via View.Taken).
type voqHead struct {
	rel, seq int64
	dem      int32
	_        int32
}

// get returns a fresh (unlinked) block index.
func (p *blockPool) get() int32 {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		p.blocks[b].next = noID
		return b
	}
	p.blocks = append(p.blocks, voqBlock{next: noID}) //flowsched:allow alloc: block pool grows to the VOQ-block high-water mark, then recycles
	return int32(len(p.blocks) - 1)
}

// put recycles block b.
func (p *blockPool) put(b int32) {
	p.free = append(p.free, b) //flowsched:allow alloc: pool free list grows to the block high-water mark
}

// voqPush appends id to VOQ vi's tail, growing the chain by a pooled
// block when the tail block is full.
//
//flowsched:hotpath
func (sh *shard) voqPush(vi int, id int32) {
	q := &sh.vqs[vi]
	switch {
	case q.tail == noID:
		b := sh.pool.get()
		q.head, q.headOff = b, 0
		q.tail, q.tailOff = b, 0
	case q.tailOff == blockLen:
		b := sh.pool.get()
		sh.pool.blocks[q.tail].next = b
		q.tail, q.tailOff = b, 0
	}
	o := q.tailOff
	sh.pool.blocks[q.tail].ids[o] = id
	r := &sh.ar.rec[id]
	r.blk, r.off = q.tail, o
	q.tailOff = o + 1
	if q.live++; q.live == 1 {
		// First flow of an empty queue is its head; refresh the head-age
		// record. (Compaction re-pushes through here too: its first push
		// is the surviving head, so the record stays exact.)
		sh.heads[vi] = voqHead{rel: r.rel, seq: sh.ar.seq[id], dem: r.dem}
		if sh.ai != nil {
			sh.ai.touch(vi)
		}
	}
}

// voqRemove unthreads id from VOQ vi and reports whether the VOQ drained.
// A head removal advances the head past any tombstones (recycling spent
// blocks); a mid-queue removal tombstones in place, with compaction once
// tombstones outnumber live entries by more than a block — so the chain
// never holds more than O(live + blockLen) entries and every entry is
// visited O(1) times amortized.
//
//flowsched:hotpath
func (sh *shard) voqRemove(vi int, id int32) (drained bool) {
	q := &sh.vqs[vi]
	r := &sh.ar.rec[id]
	if sh.ai != nil && r.blk == q.head && r.off == q.headOff {
		// Only a head removal changes the queue's candidate entry (a
		// drained queue's sole flow is its head, so that case is covered
		// too); mid-queue removals leave the head — and the index — alone.
		sh.ai.touch(vi)
	}
	sh.pool.blocks[r.blk].ids[r.off] = noID
	q.live--
	if q.live == 0 {
		for b := q.head; b != noID; {
			nb := sh.pool.blocks[b].next
			sh.pool.put(b)
			b = nb
		}
		*q = voqState{head: noID, tail: noID}
		return true
	}
	q.dead++
	sh.voqAdvanceHead(q)
	if q.dead > q.live+blockLen {
		sh.voqCompact(vi)
	}
	// Refresh the head-age record: a head removal surfaced its successor
	// (a mid-queue removal rewrites the same values — cheaper than
	// distinguishing the cases).
	h := sh.voqFirst(vi)
	hr := &sh.ar.rec[h]
	sh.heads[vi] = voqHead{rel: hr.rel, seq: sh.ar.seq[h], dem: hr.dem}
	return false
}

// voqAdvanceHead moves q's head cursor to its oldest live entry,
// consuming tombstones and recycling blocks the head walks off of. With
// live > 0 the cursor always lands on a live ID, so voqFirst is O(1).
func (sh *shard) voqAdvanceHead(q *voqState) {
	b, o := q.head, q.headOff
	for {
		if b == q.tail && o == q.tailOff {
			break
		}
		if o == blockLen {
			nb := sh.pool.blocks[b].next
			sh.pool.put(b)
			b, o = nb, 0
			continue
		}
		if sh.pool.blocks[b].ids[o] != noID {
			break
		}
		o++
		q.dead--
	}
	q.head, q.headOff = b, o
}

// voqFirst returns VOQ vi's oldest live ID, or noID if it is empty.
func (sh *shard) voqFirst(vi int) int32 {
	q := &sh.vqs[vi]
	if q.live == 0 {
		return noID
	}
	return sh.pool.blocks[q.head].ids[q.headOff]
}

// voqNext returns the next live ID after id in VOQ vi (toward younger
// flows), or noID at the tail. Tombstone runs it skips are bounded by the
// compaction threshold.
func (sh *shard) voqNext(vi int, id int32) int32 {
	q := &sh.vqs[vi]
	r := &sh.ar.rec[id]
	b, o := r.blk, r.off+1
	for {
		if b == q.tail && o >= q.tailOff {
			return noID
		}
		if o == blockLen {
			b, o = sh.pool.blocks[b].next, 0
			continue
		}
		if nid := sh.pool.blocks[b].ids[o]; nid != noID {
			return nid
		}
		o++
	}
}

// voqCompact rewrites VOQ vi's live entries into a fresh chain, dropping
// every tombstone and returning the old blocks to the pool.
func (sh *shard) voqCompact(vi int) {
	q := &sh.vqs[vi]
	sh.cscratch = sh.cscratch[:0]
	for id := sh.voqFirst(vi); id != noID; id = sh.voqNext(vi, id) {
		sh.cscratch = append(sh.cscratch, id) //flowsched:allow alloc: compaction scratch is length-reset and grows to the longest VOQ
	}
	for b := q.head; b != noID; {
		nb := sh.pool.blocks[b].next
		sh.pool.put(b)
		b = nb
	}
	*q = voqState{head: noID, tail: noID}
	for _, id := range sh.cscratch {
		sh.voqPush(vi, id)
	}
}
