package stream

import "flowsched/internal/switchnet"

// The pending-set storage of a shard: a struct-of-arrays arena addressed
// by flow ID, plus pooled ring-buffer blocks holding the virtual output
// queues. Both structures recycle through free lists, so a shard at
// steady state — pending count fluctuating below its high-water mark —
// performs zero heap allocations per round: slot IDs come off the arena
// free list, VOQ storage comes off the block pool, and every per-round
// scratch slice is length-reset, never reallocated.
//
// The arena's columns are grouped by access affinity, not one array per
// scalar field: a feasibility check (Take, serveVOQ) reads exactly one
// 16-byte descriptor, an admission-order unlink touches only the packed
// link pairs, and the cold retirement fields (release, seq) stay out of
// the pick-path cache footprint entirely. A pending flow costs 49 bytes
// across the columns versus a 56-byte AoS slot, and the field a hot path
// does not need is never pulled into cache.

// flowRec is the hot per-flow record: ports, demand, the cached VOQ index
// (so unlink/iterate paths never recompute the in/shards division), the
// live/taken state bits, the flow's position inside its VOQ block chain,
// and the admission-order links — everything the pick and depart paths
// read or write, packed into exactly 32 bytes so two flows share a cache
// line and a feasibility check (Taken+Demand+Take) costs a single line
// per flow. Ports are int16 (the switch is capped at 1<<15 ports a side
// at construction).
type flowRec struct {
	in, out    int16
	dem        int32
	vi         int32
	state      uint32
	blk, off   int32 // VOQ ring-block position (see blockPool)
	prev, next int32 // admission-order links; noID terminates
}

// flowWhen holds the cold retirement-path fields: release round and
// global admission sequence number. They stay out of the pick-path cache
// footprint.
type flowWhen struct {
	rel, seq int64
}

// arena state bits.
const (
	stLive  = 1 << iota // resident ID
	stTaken             // selected this round
)

// arena holds one shard's pending flows as two parallel columns indexed
// by flow ID — the 32-byte hot record and the 16-byte cold timing record.
// There is no per-flow heap object: a flow is a row across the columns,
// reconstructed into a switchnet.Flow only at the API boundary
// (View.Flow, verification buffering, OnSchedule).
type arena struct {
	rec  []flowRec
	when []flowWhen
	// freed is the ID free list (LIFO, so hot IDs recycle first).
	freed []int32
}

// alloc returns a free ID, growing every column in step only when the
// free list is empty (i.e. the pending set reaches a new high-water mark).
func (a *arena) alloc() int32 {
	if n := len(a.freed); n > 0 {
		id := a.freed[n-1]
		a.freed = a.freed[:n-1]
		return id
	}
	a.rec = append(a.rec, flowRec{blk: noID, prev: noID, next: noID})
	a.when = append(a.when, flowWhen{})
	return int32(len(a.rec) - 1)
}

// free recycles id onto the free list.
func (a *arena) free(id int32) {
	a.rec[id].state = 0
	a.freed = append(a.freed, id)
}

// len reports the arena's column length (IDs ever allocated).
func (a *arena) len() int { return len(a.rec) }

// live and taken test the state bits of id.
func (a *arena) live(id int32) bool  { return a.rec[id].state&stLive != 0 }
func (a *arena) taken(id int32) bool { return a.rec[id].state&stTaken != 0 }

// flow reconstructs the switchnet.Flow stored at id.
func (a *arena) flow(id int32) switchnet.Flow {
	r := &a.rec[id]
	return switchnet.Flow{
		In:      int(r.in),
		Out:     int(r.out),
		Demand:  int(r.dem),
		Release: int(a.when[id].rel),
	}
}

// blockLen is the number of flow IDs per VOQ ring block, sized so a block
// is exactly one 64-byte cache line: sparse VOQs (a handful of pending
// flows) stay one-line dense, deep VOQs chain lines.
const blockLen = 15

// voqBlock is one pooled segment of a VOQ FIFO: a fixed array of flow IDs
// written append-only at the tail, with next chaining toward younger
// blocks. Entries removed out of FIFO order are tombstoned (noID) and
// skipped; a block whose entries are all consumed returns to the pool, and
// a fully drained VOQ releases its whole chain at once.
type voqBlock struct {
	next int32
	ids  [blockLen]int32
}

// blockPool owns a shard's VOQ blocks, recycled through a free list.
type blockPool struct {
	blocks []voqBlock
	free   []int32
}

// voqState is one VOQ's packed cursor record — head/tail block chain
// position plus live and tombstone tallies — sized so a queue probe
// touches one cache line of VOQ state instead of one per parallel array.
type voqState struct {
	head, tail       int32
	headOff, tailOff int16
	live, dead       int32
}

// get returns a fresh (unlinked) block index.
func (p *blockPool) get() int32 {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		p.blocks[b].next = noID
		return b
	}
	p.blocks = append(p.blocks, voqBlock{next: noID})
	return int32(len(p.blocks) - 1)
}

// put recycles block b.
func (p *blockPool) put(b int32) {
	p.free = append(p.free, b)
}

// voqPush appends id to VOQ vi's tail, growing the chain by a pooled
// block when the tail block is full.
func (sh *shard) voqPush(vi int, id int32) {
	q := &sh.vqs[vi]
	switch {
	case q.tail == noID:
		b := sh.pool.get()
		q.head, q.headOff = b, 0
		q.tail, q.tailOff = b, 0
	case q.tailOff == blockLen:
		b := sh.pool.get()
		sh.pool.blocks[q.tail].next = b
		q.tail, q.tailOff = b, 0
	}
	o := q.tailOff
	sh.pool.blocks[q.tail].ids[o] = id
	r := &sh.ar.rec[id]
	r.blk, r.off = q.tail, int32(o)
	q.tailOff = o + 1
	q.live++
}

// voqRemove unthreads id from VOQ vi and reports whether the VOQ drained.
// A head removal advances the head past any tombstones (recycling spent
// blocks); a mid-queue removal tombstones in place, with compaction once
// tombstones outnumber live entries by more than a block — so the chain
// never holds more than O(live + blockLen) entries and every entry is
// visited O(1) times amortized.
func (sh *shard) voqRemove(vi int, id int32) (drained bool) {
	q := &sh.vqs[vi]
	r := &sh.ar.rec[id]
	sh.pool.blocks[r.blk].ids[r.off] = noID
	q.live--
	if q.live == 0 {
		for b := q.head; b != noID; {
			nb := sh.pool.blocks[b].next
			sh.pool.put(b)
			b = nb
		}
		*q = voqState{head: noID, tail: noID}
		return true
	}
	q.dead++
	sh.voqAdvanceHead(q)
	if q.dead > q.live+blockLen {
		sh.voqCompact(vi)
	}
	return false
}

// voqAdvanceHead moves q's head cursor to its oldest live entry,
// consuming tombstones and recycling blocks the head walks off of. With
// live > 0 the cursor always lands on a live ID, so voqFirst is O(1).
func (sh *shard) voqAdvanceHead(q *voqState) {
	b, o := q.head, q.headOff
	for {
		if b == q.tail && o == q.tailOff {
			break
		}
		if o == blockLen {
			nb := sh.pool.blocks[b].next
			sh.pool.put(b)
			b, o = nb, 0
			continue
		}
		if sh.pool.blocks[b].ids[o] != noID {
			break
		}
		o++
		q.dead--
	}
	q.head, q.headOff = b, o
}

// voqFirst returns VOQ vi's oldest live ID, or noID if it is empty.
func (sh *shard) voqFirst(vi int) int32 {
	q := &sh.vqs[vi]
	if q.live == 0 {
		return noID
	}
	return sh.pool.blocks[q.head].ids[q.headOff]
}

// voqNext returns the next live ID after id in VOQ vi (toward younger
// flows), or noID at the tail. Tombstone runs it skips are bounded by the
// compaction threshold.
func (sh *shard) voqNext(vi int, id int32) int32 {
	q := &sh.vqs[vi]
	r := &sh.ar.rec[id]
	b, o := r.blk, int16(r.off)+1
	for {
		if b == q.tail && o >= q.tailOff {
			return noID
		}
		if o == blockLen {
			b, o = sh.pool.blocks[b].next, 0
			continue
		}
		if nid := sh.pool.blocks[b].ids[o]; nid != noID {
			return nid
		}
		o++
	}
}

// voqCompact rewrites VOQ vi's live entries into a fresh chain, dropping
// every tombstone and returning the old blocks to the pool.
func (sh *shard) voqCompact(vi int) {
	q := &sh.vqs[vi]
	sh.cscratch = sh.cscratch[:0]
	for id := sh.voqFirst(vi); id != noID; id = sh.voqNext(vi, id) {
		sh.cscratch = append(sh.cscratch, id)
	}
	for b := q.head; b != noID; {
		nb := sh.pool.blocks[b].next
		sh.pool.put(b)
		b = nb
	}
	*q = voqState{head: noID, tail: noID}
	for _, id := range sh.cscratch {
		sh.voqPush(vi, id)
	}
}
