package stream

import "math"

// ageIndex is the incremental cross-round candidate index behind the
// age-aware policies (OldestFirst, WeightedISLIP) on sharded runtimes: a
// persistent release-sorted view of the shard's active VOQ heads,
// maintained from an activation journal instead of rebuilt by a full
// sweep every round. Head activations and head departures are journaled
// at voqPush/voqRemove; applyJournal folds the O(changed VOQs) batch
// into the standing order, so the index stays current without ever
// re-reading every active head record.
//
// The index earns its round-over-round maintenance in the reconcile
// pass, which is why it exists exactly when the runtime is sharded
// (newShard skips it at one shard, where there is no reconcile pass and
// a propose-phase sweep-and-count rebuild is cheaper than any
// maintenance): it tells OldestFirst how many candidates the
// still-free inputs hold (the sparse-mode trigger, scanLen), it hands
// Runtime.reconcile each shard's oldest live head (oldestRel) for the
// oldest-head-first shard ordering, and its rebuild method restores the
// exact candidate order from the resident pending set after a
// checkpoint restore or a policy-swapping reload.
//
// # Two-level order, tombstones in place
//
// The live candidate order is the merge of two key-sorted arrays: main,
// the compacted bulk, and ovr, a small overlay the per-round journal
// batches merge into. pos[vi] maps a VOQ to its entry's exact position
// (encoded: >= 0 main, <= -2 overlay, -1 none), so a journaled head
// change tombstones the old entry in place — key set to aiTomb — in
// O(1). A scan over the index therefore never validates an entry
// against out-of-band state: a visit is a sequential array read, a
// tombstone skip is a sequential word test, and there is no random
// generation lookup anywhere in the loop.
//
// # Packed keys
//
// An entry's sort key packs (release, VOQ index) into one uint64 —
// release in the high 40 bits, vi in the low aiViBits — so every order
// decision in the sort, the merges, and the policies' scans is a single
// integer compare, and a tombstone is the all-ones key (never a valid
// packed value; it also sorts last, so a tombstoned suffix cannot mask a
// live entry behind it). Within a shard, packed-key order equals the
// policies' (release, input, output) order — vi = local(in)*mOut + out is
// monotone in (in, out) over the shard's inputs — so the merged walk
// visits candidates in exactly the order the full-sweep implementations
// produced. The packing bounds are enforced at the edges: New (and a
// policy-swapping reload) rejects an indexed-policy configuration whose
// per-shard VOQ table exceeds the vi field, and checkFlow rejects
// releases at or beyond aiMaxRel (a 2^40-round horizon) while an index
// is live, before they enter the arena.
//
// Per-round maintenance is O(batch + overlay): the sorted batch merges
// into the overlay (dropping the overlay's tombstones, which never
// survive a rebuild), and main's tombstones accumulate until compact
// folds both levels into a fresh main — amortized O(live) per compact,
// triggered only after a comparable volume of churn. All storage is
// swap-recycled scratch that grows to its high-water mark, so
// steady-state rounds allocate nothing (pinned by
// TestSteadyStateZeroAlloc over the indexed policies).
//
// # Cached demand
//
// Entries cache the head's demand. That is sound because demand can only
// change when the head itself changes, and every head change is
// journaled: a live entry and its head-age record agree on (rel, dem) by
// construction, including during a reconcile pass (records update at
// retirement, which lands in the journal before the next apply). Nothing
// here is checkpointed — the candidate order is a pure function of the
// pending set, and a restore rebuilds it deterministically as the
// re-admitted flows journal through voqPush (see stream/doc.go,
// "Durability and reload").
type ageIndex struct {
	sh   *shard
	mOut int
	nsh  int
	idx  int

	// pos[vi] encodes VOQ vi's entry position: p >= 0 is main[p], p <= -2
	// is ovr[-2-p], -1 is no live entry. outCand[out] counts live entries
	// per output port (the eligible-output census the policies' early
	// exits need).
	pos     []int32
	outCand []int32

	// main and ovr are the two key-sorted levels, holding live entries
	// and in-place tombstones (key == aiTomb). mainLo/ovrLo are monotone
	// tombstone-prefix cursors (sound because a tombstone never
	// revalidates), reset when the level is rebuilt. mainScratch and
	// ovrScratch are the swap buffers compaction and overlay rebuilds
	// build into.
	main, ovr               []aiEntry
	mainLo, ovrLo           int
	mainScratch, ovrScratch []aiEntry

	// liveCnt counts live entries (== active VOQs once the journal is
	// applied); mainTomb counts tombstones resident in main (overlay
	// tombstones die at the next rebuild). mainTomb drives compaction.
	liveCnt, mainTomb int

	// dirty is the activation journal: VOQ indexes whose head changed
	// since the last applyJournal, deduped by epoch marks (mark[vi]
	// holds the epoch that last recorded vi). epoch is uint64 so a mark
	// can never alias a reused epoch value.
	dirty []int32
	mark  []uint64
	epoch uint64

	// batch is the per-apply scratch the journal's surviving candidates
	// are sorted in before merging into the overlay.
	batch []aiEntry
}

const (
	// aiViBits is the width of the VOQ-index field in a packed entry key;
	// an indexed policy requires the per-shard VOQ table to fit it
	// (enforced in New and applyReload).
	aiViBits = 24
	aiViMask = 1<<aiViBits - 1

	// aiMaxRel bounds release rounds on indexed runs so a packed key can
	// neither overflow nor collide with aiTomb (which needs every rel and
	// vi bit set). Enforced in checkFlow while an index is live and in
	// applyReload when a swap introduces one.
	aiMaxRel = 1<<40 - 1

	// aiTomb marks an in-place tombstone: the all-ones key, which no live
	// entry can carry and which sorts after every live key.
	aiTomb = ^uint64(0)
)

// aiEntry is one indexed candidate: an active VOQ keyed by its head's
// packed (release, vi) key. The ports and the head's demand ride along
// so a scan filters on capacity with sequential reads only; 16 bytes
// total, so a full-level walk streams four entries per cache line.
type aiEntry struct {
	key     uint64
	dem     int32
	in, out int16
}

// aiKey packs (release round, VOQ index) into the single-compare sort
// key.
func aiKey(rel int64, vi int32) uint64 {
	return uint64(rel)<<aiViBits | uint64(uint32(vi))
}

func (e aiEntry) rel() int64 { return int64(e.key >> aiViBits) }
func (e aiEntry) vi() int32  { return int32(e.key & aiViMask) }

// ageIndexUser marks native policies that use the incremental age
// index; newShard builds a per-shard index exactly when the shard's
// policy implements it and the runtime is sharded (and applyReload
// rebuilds or drops it on a policy swap).
type ageIndexUser interface {
	usesAgeIndex()
}

// newAgeIndex builds an empty index sized to sh's VOQ table.
func newAgeIndex(sh *shard) *ageIndex {
	n := len(sh.vqs)
	ai := &ageIndex{
		sh:      sh,
		mOut:    sh.mOut,
		nsh:     sh.nsh,
		idx:     sh.idx,
		pos:     make([]int32, n),
		outCand: make([]int32, sh.mOut),
		mark:    make([]uint64, n),
		epoch:   1,
	}
	for i := range ai.pos {
		ai.pos[i] = -1
	}
	return ai
}

// live is the number of live candidates (== active VOQs once the journal
// is applied).
func (ai *ageIndex) live() int { return ai.liveCnt }

// touch journals a head change at VOQ vi (activation, head departure, or
// drain), deduped per apply interval. Called from the voqPush/voqRemove
// hot paths; one array compare when already journaled.
//
//flowsched:hotpath
func (ai *ageIndex) touch(vi int) {
	if ai.mark[vi] == ai.epoch {
		return
	}
	ai.mark[vi] = ai.epoch
	ai.dirty = append(ai.dirty, int32(vi)) //flowsched:allow alloc: journal is length-reset per apply and grows to the per-round head-churn high-water mark
}

// applyJournal folds the journaled head changes into the index: each
// dirty VOQ's old entry is tombstoned in place through pos and, if the
// queue is still non-empty, its current head is re-recorded. The batch
// of new candidates is sorted and merged into the overlay, and the
// levels are compacted once main's tombstones or the overlay outgrow
// the live set. The coordinator-facing call site is shard.do, after
// retirement/admission/expiry and before Pick, so every pick pass scans
// a fully current index.
//
//flowsched:hotpath
func (ai *ageIndex) applyJournal() {
	if len(ai.dirty) == 0 {
		return
	}
	sh := ai.sh
	ai.batch = ai.batch[:0]
	changed := false
	for _, v := range ai.dirty {
		vi := int(v)
		out := vi % ai.mOut
		if p := ai.pos[vi]; p != -1 {
			if p >= 0 {
				ai.main[p].key = aiTomb
				ai.mainTomb++
			} else {
				ai.ovr[-2-p].key = aiTomb
			}
			ai.pos[vi] = -1
			ai.outCand[out]--
			ai.liveCnt--
			changed = true
		}
		if sh.vqs[vi].live > 0 {
			li := vi / ai.mOut
			h := &sh.heads[vi]
			ai.batch = append(ai.batch, aiEntry{ //flowsched:allow alloc: apply batch is length-reset per apply and grows to the journal high-water mark
				key: aiKey(h.rel, v), dem: h.dem,
				in: int16(li*ai.nsh + ai.idx), out: int16(out),
			})
			ai.outCand[out]++
			ai.liveCnt++
			changed = true
		}
	}
	ai.dirty = ai.dirty[:0]
	ai.epoch++
	if !changed {
		return
	}
	sortAIEntries(ai.batch)
	ai.mergeBatch()
	if ai.mainTomb > max(64, ai.liveCnt) || len(ai.ovr) > max(64, ai.liveCnt/2) {
		ai.compact()
	}
}

// mergeBatch merges the sorted apply batch into the overlay, dropping
// the overlay's tombstones on the way through and re-encoding pos for
// every entry that moves. The merge builds into the swap scratch, so the
// overlay's backing arrays recycle instead of reallocating.
func (ai *ageIndex) mergeBatch() {
	dst := ai.ovrScratch[:0]
	j := 0
	for i := 0; i < len(ai.ovr); i++ {
		e := ai.ovr[i]
		if e.key == aiTomb {
			continue
		}
		for j < len(ai.batch) && ai.batch[j].key < e.key {
			b := ai.batch[j]
			ai.pos[b.key&aiViMask] = int32(-2 - len(dst))
			dst = append(dst, b) //flowsched:allow alloc: overlay swap scratch grows to the overlay high-water mark, then recycles
			j++
		}
		ai.pos[e.key&aiViMask] = int32(-2 - len(dst))
		dst = append(dst, e) //flowsched:allow alloc: overlay swap scratch grows to the overlay high-water mark, then recycles
	}
	for ; j < len(ai.batch); j++ {
		b := ai.batch[j]
		ai.pos[b.key&aiViMask] = int32(-2 - len(dst))
		dst = append(dst, b) //flowsched:allow alloc: overlay swap scratch grows to the overlay high-water mark, then recycles
	}
	ai.ovrScratch = ai.ovr[:0]
	ai.ovr = dst
	ai.ovrLo = 0
}

// compact folds main and the overlay into a fresh main holding exactly
// the live entries, in order, re-encoding pos; the overlay empties, the
// cursors reset, and the tombstone debt clears. Amortized O(live) per
// comparable volume of churn.
func (ai *ageIndex) compact() {
	dst := ai.mainScratch[:0]
	i, j := 0, 0
	for i < len(ai.main) || j < len(ai.ovr) {
		var e aiEntry
		if i < len(ai.main) {
			e = ai.main[i]
			if e.key == aiTomb {
				i++
				continue
			}
			if j < len(ai.ovr) {
				o := ai.ovr[j]
				if o.key == aiTomb {
					j++
					continue
				}
				if o.key < e.key {
					e = o
					j++
				} else {
					i++
				}
			} else {
				i++
			}
		} else {
			e = ai.ovr[j]
			j++
			if e.key == aiTomb {
				continue
			}
		}
		ai.pos[e.key&aiViMask] = int32(len(dst))
		dst = append(dst, e) //flowsched:allow alloc: main swap scratch grows to the live-entry high-water mark, then recycles
	}
	ai.mainScratch = ai.main[:0]
	ai.main = dst
	ai.ovr = ai.ovr[:0]
	ai.mainLo, ai.ovrLo = 0, 0
	ai.mainTomb = 0
}

// trim advances the tombstone-prefix cursors. Monotone and permanent: a
// tombstone never revalidates, so skipping it once is skipping it
// forever.
func (ai *ageIndex) trim() {
	for ai.mainLo < len(ai.main) && ai.main[ai.mainLo].key == aiTomb {
		ai.mainLo++
	}
	for ai.ovrLo < len(ai.ovr) && ai.ovr[ai.ovrLo].key == aiTomb {
		ai.ovrLo++
	}
}

// scanLen is the number of resident entries (live plus unskipped
// tombstones) a full merged scan would visit — the cost side policies
// weigh a dense index walk against a sparse free-input sweep with.
func (ai *ageIndex) scanLen() int {
	return len(ai.main) - ai.mainLo + len(ai.ovr) - ai.ovrLo
}

// oldestRel returns the release round of the shard's oldest live
// candidate (math.MaxInt64 when the index is empty) — the key the
// reconcile pass orders shards by so cross-shard service is globally
// oldest-head-first.
func (ai *ageIndex) oldestRel() int64 {
	ai.trim()
	k := uint64(aiTomb)
	if ai.mainLo < len(ai.main) {
		k = ai.main[ai.mainLo].key
	}
	if ai.ovrLo < len(ai.ovr) && ai.ovr[ai.ovrLo].key < k {
		k = ai.ovr[ai.ovrLo].key
	}
	if k == aiTomb {
		return math.MaxInt64
	}
	return int64(k >> aiViBits)
}

// rebuild resets the index and re-records every currently non-empty VOQ
// — the live-reload path (applyReload) for a policy swap onto an indexed
// policy at a quiescent point. Deterministic: the rebuilt candidate set
// and order depend only on the pending set.
func (ai *ageIndex) rebuild() {
	for i := range ai.pos {
		ai.pos[i] = -1
	}
	for i := range ai.mark {
		ai.mark[i] = 0
	}
	for i := range ai.outCand {
		ai.outCand[i] = 0
	}
	ai.main, ai.ovr = ai.main[:0], ai.ovr[:0]
	ai.mainLo, ai.ovrLo = 0, 0
	ai.dirty = ai.dirty[:0]
	ai.liveCnt, ai.mainTomb = 0, 0
	ai.epoch = 1
	for vi := range ai.sh.vqs {
		if ai.sh.vqs[vi].live > 0 {
			ai.touch(vi)
		}
	}
	ai.applyJournal()
}

// sortAIEntries sorts a journal batch by packed key without allocating:
// insertion sort for short runs, quicksort (middle pivot) above. Keys
// are unique — the journal holds at most one record per VOQ — so the
// order is total and the merged scan deterministic.
func sortAIEntries(s []aiEntry) {
	for len(s) > 12 {
		pivot := s[len(s)/2].key
		lo, hi := 0, len(s)-1
		for lo <= hi {
			for s[lo].key < pivot {
				lo++
			}
			for pivot < s[hi].key {
				hi--
			}
			if lo <= hi {
				s[lo], s[hi] = s[hi], s[lo]
				lo++
				hi--
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if hi < len(s)-lo {
			sortAIEntries(s[:hi+1])
			s = s[lo:]
		} else {
			sortAIEntries(s[lo:])
			s = s[:hi+1]
		}
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].key < s[j-1].key; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
