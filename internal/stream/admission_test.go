package stream_test

import (
	"fmt"
	"testing"

	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
)

// diagonalFlows builds a deterministic overload on the diagonal port
// pairs of a unit switch: every round releases perPort flows on each
// (i, i), cycling port by port so any admitted prefix stays evenly
// distributed. Diagonal traffic decouples the ports — every input has
// exactly one VOQ and no two VOQs share an output — so any
// work-conserving policy serves each active VOQ's head every round and
// the schedule (hence every drop and expiry decision) is independent of
// the shard count.
func diagonalFlows(ports, perPort, rounds int) []switchnet.Flow {
	var fs []switchnet.Flow
	for r := 0; r < rounds; r++ {
		for g := 0; g < perPort; g++ {
			for p := 0; p < ports; p++ {
				fs = append(fs, switchnet.Flow{In: p, Out: p, Demand: 1, Release: r})
			}
		}
	}
	return fs
}

// replayDiagonal is the arithmetic reference for diagonal traffic: per
// round, consume every released flow (dropping on a full pending set when
// maxPending binds), expire queue heads past the deadline, then serve one
// flow per non-empty port queue. It mirrors the runtime's per-round order
// — admission sees the previous round's departures, expiry runs before
// the pick — without any of its machinery.
func replayDiagonal(flows []switchnet.Flow, ports, maxPending, deadline int) (completed, dropped, expired, maxResp int) {
	queues := make([][]int, ports)
	count, i := 0, 0
	for r := 0; ; r++ {
		for i < len(flows) && flows[i].Release <= r {
			f := flows[i]
			i++
			if maxPending > 0 && count >= maxPending {
				dropped++
				continue
			}
			queues[f.In] = append(queues[f.In], f.Release)
			count++
		}
		if deadline > 0 {
			for p := range queues {
				for len(queues[p]) > 0 && queues[p][0] < r+1-deadline {
					queues[p] = queues[p][1:]
					expired++
					count--
				}
			}
		}
		for p := range queues {
			if len(queues[p]) > 0 {
				if resp := r + 1 - queues[p][0]; resp > maxResp {
					maxResp = resp
				}
				queues[p] = queues[p][1:]
				completed++
				count--
			}
		}
		if i >= len(flows) && count == 0 {
			return
		}
	}
}

// runPinned drives flows through the runtime at shard count K and returns
// the summary plus the (seq, round) schedule trace.
func runPinned(t *testing.T, flows []switchnet.Flow, ports, K int, pol stream.Policy, cfg stream.Config) (*stream.Summary, [][2]int64) {
	t.Helper()
	var trace [][2]int64
	cfg.Switch = switchnet.UnitSwitch(ports)
	cfg.Policy = pol
	cfg.Shards = K
	cfg.OnSchedule = func(seq int64, _ switchnet.Flow, round int) {
		trace = append(trace, [2]int64{seq, int64(round)})
	}
	rt, err := stream.New(&sliceSource{flows: flows}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sum, trace
}

// TestAdmitDropPinnedCrossK pins AdmitDrop's shed counts against the
// arithmetic reference on a deterministic diagonal overload, at K in
// {1, 2}, verifier-clean, with bit-identical schedules across repeat runs.
func TestAdmitDropPinnedCrossK(t *testing.T) {
	const ports, perPort, rounds, maxPending = 4, 2, 20, 8
	flows := diagonalFlows(ports, perPort, rounds)
	wantC, wantD, _, _ := replayDiagonal(flows, ports, maxPending, 0)
	if wantD == 0 {
		t.Fatal("reference replay saw no drops — the workload is not overloaded")
	}
	for _, name := range []string{"RoundRobin", "OldestFirst"} {
		for _, K := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/K%d", name, K), func(t *testing.T) {
				cfg := stream.Config{MaxPending: maxPending, Admit: stream.AdmitDrop, VerifyEvery: 4}
				sum, trace := runPinned(t, flows, ports, K, stream.ByName(name), cfg)
				if sum.Admitted != int64(len(flows)) {
					t.Fatalf("admitted %d, want every consumed flow (%d)", sum.Admitted, len(flows))
				}
				if sum.Dropped != int64(wantD) || sum.Completed != int64(wantC) {
					t.Fatalf("dropped %d / completed %d, reference pins %d / %d",
						sum.Dropped, sum.Completed, wantD, wantC)
				}
				if sum.Pending != 0 || sum.Expired != 0 {
					t.Fatalf("drained drop-mode run left pending %d, expired %d", sum.Pending, sum.Expired)
				}
				if sum.Admitted != sum.Completed+int64(sum.Pending)+sum.Dropped+sum.Expired {
					t.Fatalf("accounting unbalanced: %+v", sum)
				}
				if sum.PeakPending > maxPending {
					t.Fatalf("peak pending %d exceeds the admission limit %d", sum.PeakPending, maxPending)
				}
				if sum.WindowsVerified == 0 {
					t.Fatal("no verification windows ran")
				}
				_, again := runPinned(t, flows, ports, K, stream.ByName(name), cfg)
				if len(trace) != len(again) {
					t.Fatalf("nondeterministic: %d then %d scheduled flows", len(trace), len(again))
				}
				for i := range trace {
					if trace[i] != again[i] {
						t.Fatalf("nondeterministic at serve %d: %v then %v", i, trace[i], again[i])
					}
				}
			})
		}
	}
}

// TestAdmitDeadlinePinnedCrossK pins AdmitDeadline's expiry counts against
// the arithmetic reference: flows that cannot complete within the deadline
// leave unscheduled, every completed flow's response stays within it, and
// the counts are identical at K in {1, 2} and across repeat runs.
func TestAdmitDeadlinePinnedCrossK(t *testing.T) {
	const ports, perPort, rounds, deadline = 4, 2, 20, 3
	flows := diagonalFlows(ports, perPort, rounds)
	wantC, _, wantE, wantMax := replayDiagonal(flows, ports, 0, deadline)
	if wantE == 0 {
		t.Fatal("reference replay saw no expiries — the workload is not overloaded")
	}
	if wantMax > deadline {
		t.Fatalf("reference violates its own deadline: max response %d > %d", wantMax, deadline)
	}
	for _, name := range []string{"RoundRobin", "OldestFirst"} {
		for _, K := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/K%d", name, K), func(t *testing.T) {
				cfg := stream.Config{Admit: stream.AdmitDeadline, Deadline: deadline, VerifyEvery: 4}
				sum, trace := runPinned(t, flows, ports, K, stream.ByName(name), cfg)
				if sum.Admitted != int64(len(flows)) {
					t.Fatalf("admitted %d, want %d", sum.Admitted, len(flows))
				}
				if sum.Expired != int64(wantE) || sum.Completed != int64(wantC) {
					t.Fatalf("expired %d / completed %d, reference pins %d / %d",
						sum.Expired, sum.Completed, wantE, wantC)
				}
				if sum.Pending != 0 || sum.Dropped != 0 {
					t.Fatalf("drained deadline-mode run left pending %d, dropped %d", sum.Pending, sum.Dropped)
				}
				if sum.Admitted != sum.Completed+int64(sum.Pending)+sum.Dropped+sum.Expired {
					t.Fatalf("accounting unbalanced: %+v", sum)
				}
				if sum.MaxResponse > deadline {
					t.Fatalf("completed flow exceeded the deadline: max response %d > %d", sum.MaxResponse, deadline)
				}
				if sum.MaxResponse != wantMax {
					t.Fatalf("max response %d, reference pins %d", sum.MaxResponse, wantMax)
				}
				if sum.WindowsVerified == 0 {
					t.Fatal("no verification windows ran")
				}
				_, again := runPinned(t, flows, ports, K, stream.ByName(name), cfg)
				if len(trace) != len(again) {
					t.Fatalf("nondeterministic: %d then %d scheduled flows", len(trace), len(again))
				}
				for i := range trace {
					if trace[i] != again[i] {
						t.Fatalf("nondeterministic at serve %d: %v then %v", i, trace[i], again[i])
					}
				}
			})
		}
	}
}
