package stream

import (
	"flowsched/internal/sim"
	"flowsched/internal/switchnet"
)

// FIFO takes pending flows oldest-first (admission order), first-fit. A
// round costs O(pending) — bounded by Config.MaxPending — so it is the
// streaming analogue of the heuristics package's FIFO baseline, not an
// incremental policy; prefer RoundRobin when the pending set is large.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "StreamFIFO" }

// Pick implements Policy.
func (FIFO) Pick(v *View) {
	v.Each(func(id ID, _ int64, _ switchnet.Flow) bool {
		v.Take(id)
		return true
	})
}

// RoundRobin is the runtime's native incremental policy: per-(input,
// output) virtual output queues served oldest-first, with a rotating
// per-input pointer over the input's active VOQs (iSLIP-style
// desynchronization). Within a VOQ a blocked head blocks the queue —
// strict FIFO, so no flow is ever overtaken by a younger flow on the same
// port pair. A round costs O(active ports + scheduled), independent of how
// many flows are pending or were ever seen.
type RoundRobin struct {
	rr []int
}

// Name implements Policy.
func (*RoundRobin) Name() string { return "RoundRobin" }

// Reset implements Resetter.
func (p *RoundRobin) Reset(sw switchnet.Switch) { p.rr = make([]int, sw.NumIn()) }

// Pick implements Policy.
func (p *RoundRobin) Pick(v *View) {
	for a := 0; a < v.NumActiveInputs(); a++ {
		in := v.ActiveInput(a)
		free := v.InputFree(in)
		k := v.NumActiveVOQs(in)
		if k == 0 || free <= 0 {
			continue
		}
		start := p.rr[in] % k
		for j := 0; j < k && free > 0; j++ {
			pos := (start + j) % k
			out := v.ActiveVOQ(in, pos)
			for id := v.VOQHead(in, out); id != NoID && free > 0; id = v.VOQNext(id) {
				f := v.Flow(id)
				if f.Demand > free || v.OutputFree(out) < f.Demand {
					break // FIFO within the VOQ: a blocked head blocks the queue
				}
				if !v.Take(id) {
					break
				}
				free -= f.Demand
				p.rr[in] = pos + 1
			}
		}
	}
}

// Bridge adapts a sim.Policy — the paper's MaxCard / MinRTime / MaxWeight
// heuristics and the ablation baselines — to the streaming runtime by
// materializing the bounded pending set as a sim.State each round. The
// materialization costs O(pending) per round (bounded by
// Config.MaxPending) on top of the policy's own matching cost; the
// pending list is presented in admission order with seq as the flow
// identifier, which reproduces internal/sim.Run's ordering exactly on a
// replayed finite instance.
type Bridge struct {
	// P is the simulator policy to run on the stream.
	P sim.Policy

	st  sim.State
	ids []ID
}

// Name implements Policy.
func (b *Bridge) Name() string { return b.P.Name() }

// Pick implements Policy.
func (b *Bridge) Pick(v *View) {
	b.st.Round = v.Round()
	b.st.Switch = v.Switch()
	b.st.QueueIn = v.rt.queueIn
	b.st.QueueOut = v.rt.queueOut
	b.st.Pending = b.st.Pending[:0]
	b.ids = b.ids[:0]
	v.Each(func(id ID, seq int64, f switchnet.Flow) bool {
		b.st.Pending = append(b.st.Pending, sim.Pending{
			Flow: int(seq), In: f.In, Out: f.Out, Demand: f.Demand, Release: f.Release,
		})
		b.ids = append(b.ids, id)
		return true
	})
	for _, pi := range b.P.Pick(&b.st) {
		if pi < 0 || pi >= len(b.ids) {
			v.Fail("stream: policy %q picked out-of-range index %d", b.P.Name(), pi)
			return
		}
		if !v.Take(b.ids[pi]) {
			v.Fail("stream: policy %q picked an infeasible or duplicate flow (pending index %d) in round %d",
				b.P.Name(), pi, b.st.Round)
			return
		}
	}
}

// ByName resolves the native streaming policies ("RoundRobin",
// "StreamFIFO"); nil if unknown. Simulator policies run on streams via
// Bridge.
func ByName(name string) Policy {
	switch name {
	case "RoundRobin":
		return &RoundRobin{}
	case "StreamFIFO":
		return FIFO{}
	}
	return nil
}
