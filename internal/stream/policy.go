package stream

import (
	"fmt"

	"flowsched/internal/sim"
	"flowsched/internal/switchnet"
)

// scratchPolicy is implemented by native policies whose schedule depends
// on per-run scratch state beyond the pending set — rotation pointers
// that survive between rounds. A checkpoint captures the scratch per
// shard (exportScratch appends onto dst, reusing its capacity) and a
// restore replays it after Reset (importScratch, offered only when the
// restored runtime runs the same policy at the same shard count), which
// is what makes the stateful policies restore-exact: a kill -9/restore
// continues the exact schedule the uninterrupted run would have
// produced. Policies without the interface are memoryless — their
// schedule is a pure function of the pending set — and need nothing
// carried. The incremental age index is deliberately not part of the
// scratch: its candidate order is itself a pure function of the pending
// set, so restore re-admission rebuilds it (journal cursor included)
// deterministically through the voqPush journaling hooks.
type scratchPolicy interface {
	exportScratch(dst []int64) []int64
	importScratch(src []int64) error
}

// FIFO takes pending flows oldest-first (admission order), first-fit. A
// round costs O(pending) — bounded by Config.MaxPending — so it is the
// streaming analogue of the heuristics package's FIFO baseline, not an
// incremental policy; prefer RoundRobin when the pending set is large. It
// is shardable: each shard serves its own flows oldest-first.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "StreamFIFO" }

// NewShard implements Shardable.
func (FIFO) NewShard() Policy { return FIFO{} }

// Pick implements Policy.
//
//flowsched:hotpath
func (FIFO) Pick(v *View) {
	v.Each(func(id ID, _ int64, _ switchnet.Flow) bool { //flowsched:allow alloc: non-escaping iterator closure; zero-alloc steady state pinned by TestSteadyStateAllocs
		v.Take(id)
		return true
	})
}

// RoundRobin is the runtime's native incremental policy: per-(input,
// output) virtual output queues served oldest-first, with a rotating
// per-input pointer over the input's VOQs in output-port order
// (iSLIP-style desynchronization: the pointer records the last output
// port served and the next pass resumes at its successor, so every
// persistently-active VOQ at an input is served within one full rotation
// of the port space). Within a VOQ a blocked head blocks the queue —
// strict FIFO, so no flow is ever overtaken by a younger flow on the same
// port pair. A round costs O(active ports + scheduled) bitmap-word probes
// (View.NextActiveVOQ), independent of how many flows are pending or were
// ever seen.
type RoundRobin struct {
	// rr[in] is the last output port served at input in (-1 before any);
	// a pass over in's VOQs starts at its successor in port order.
	rr []int
}

// Name implements Policy.
func (*RoundRobin) Name() string { return "RoundRobin" }

// NewShard implements Shardable: per-input pointers carry no cross-input
// state, so a fresh instance per shard preserves the rotation semantics.
func (*RoundRobin) NewShard() Policy { return &RoundRobin{} }

// Reset implements Resetter.
func (p *RoundRobin) Reset(sw switchnet.Switch) {
	p.rr = make([]int, sw.NumIn())
	for i := range p.rr {
		p.rr[i] = -1
	}
}

// exportScratch implements scratchPolicy: the per-input rotation
// pointers, in input-port order.
func (p *RoundRobin) exportScratch(dst []int64) []int64 {
	for _, r := range p.rr {
		dst = append(dst, int64(r))
	}
	return dst
}

// importScratch implements scratchPolicy; it runs after Reset, against a
// same-geometry switch (the runtime checks policy name and shard count
// before offering a snapshot).
func (p *RoundRobin) importScratch(src []int64) error {
	if len(src) != len(p.rr) {
		return fmt.Errorf("RoundRobin scratch: got %d values, want %d", len(src), len(p.rr))
	}
	for i, v := range src {
		p.rr[i] = int(v)
	}
	return nil
}

// Pick implements Policy.
//
//flowsched:hotpath
func (p *RoundRobin) Pick(v *View) {
	m := v.Switch().NumOut()
	for a := 0; a < v.NumActiveInputs(); a++ {
		in := v.ActiveInput(a)
		free := v.InputFree(in)
		if free <= 0 {
			continue
		}
		start := (p.rr[in] + 1 + m) % m
		// One circular sweep over the input's active VOQs in port order,
		// starting at the pointer's successor: NextActiveVOQ probes are
		// O(1) bitmap word operations, and strictly increasing circular
		// distance detects the wrap-around.
		cur, prev := start, -1
		for free > 0 {
			out := v.NextActiveVOQ(in, cur)
			if out < 0 {
				break
			}
			d := (out - start + m) % m
			if d <= prev {
				break // wrapped: every active VOQ has been visited
			}
			prev = d
			free = p.serveVOQ(v, in, out, free)
			if cur = out + 1; cur == m {
				cur = 0
			}
		}
	}
}

// serveVOQ drains (in, out) oldest-first while capacity lasts and returns
// the input's remaining free capacity. The rotation pointer advances once
// per VOQ served, however many flows drained, and records the output
// *port* — immune to the active list's swap-delete reordering.
func (p *RoundRobin) serveVOQ(v *View, in, out, free int) int {
	free, served := drainVOQ(v, in, out, free)
	if served {
		p.rr[in] = out
	}
	return free
}

// drainVOQ drains the (in, out) virtual output queue oldest-first while
// free input capacity and the visible output capacity last, skipping
// flows already taken this round (a pick of the propose pass is not a
// blocked head, so the reconcile pass may drain past it). It returns the
// input's remaining free capacity and whether anything was served. The
// sweep runs on View.EachVOQ's block cursor, so each queue entry costs
// one sequential block read plus the flow's own descriptor line; an
// untaken head that does not fit stops the sweep — FIFO within the VOQ,
// a blocked head blocks the queue.
func drainVOQ(v *View, in, out, free int) (int, bool) {
	served := false
	v.EachVOQ(in, out, func(id ID) bool { //flowsched:allow alloc: non-escaping iterator closure; zero-alloc steady state pinned by TestSteadyStateAllocs
		if v.Taken(id) {
			return true
		}
		d := v.Demand(id)
		if d > free || v.OutputFree(out) < d {
			return false
		}
		if !v.Take(id) {
			return false
		}
		free -= d
		served = true
		return free > 0
	})
	return free, served
}

// Bridge adapts a sim.Policy — the paper's MaxCard / MinRTime / MaxWeight
// heuristics and the ablation baselines — to the streaming runtime by
// materializing the bounded pending set as a sim.State each round. The
// materialization costs O(pending + ports) per round (bounded by
// Config.MaxPending) on top of the policy's own matching cost; the
// pending list is presented in admission order with seq as the flow
// identifier, which reproduces internal/sim.Run's ordering exactly on a
// replayed finite instance. Simulator matchings need the whole pending
// set, so Bridge is not Shardable and pins the runtime to Shards == 1.
type Bridge struct {
	// P is the simulator policy to run on the stream.
	P sim.Policy

	st  sim.State
	ids []ID
	// qin/qout are Bridge-owned copies of the runtime's per-port queue
	// depths (reused across rounds): sim policies receive them in
	// sim.State and are free to scribble on them, which must never reach
	// the runtime's live counters.
	qin, qout []int
}

// Name implements Policy.
func (b *Bridge) Name() string { return b.P.Name() }

// Pick implements Policy.
func (b *Bridge) Pick(v *View) {
	sw := v.Switch()
	b.st.Round = v.Round()
	b.st.Switch = sw
	if cap(b.qin) < sw.NumIn() {
		b.qin = make([]int, sw.NumIn())
	}
	if cap(b.qout) < sw.NumOut() {
		b.qout = make([]int, sw.NumOut())
	}
	b.qin = b.qin[:sw.NumIn()]
	b.qout = b.qout[:sw.NumOut()]
	for i := range b.qin {
		b.qin[i] = v.QueueIn(i)
	}
	for j := range b.qout {
		b.qout[j] = v.QueueOut(j)
	}
	b.st.QueueIn = b.qin
	b.st.QueueOut = b.qout
	b.st.Pending = b.st.Pending[:0]
	b.ids = b.ids[:0]
	v.Each(func(id ID, seq int64, f switchnet.Flow) bool {
		b.st.Pending = append(b.st.Pending, sim.Pending{
			Flow: int(seq), In: f.In, Out: f.Out, Demand: f.Demand, Release: f.Release,
		})
		b.ids = append(b.ids, id)
		return true
	})
	for _, pi := range b.P.Pick(&b.st) {
		if pi < 0 || pi >= len(b.ids) {
			v.Fail("stream: policy %q picked out-of-range index %d", b.P.Name(), pi)
			return
		}
		if !v.Take(b.ids[pi]) {
			v.Fail("stream: policy %q picked an infeasible or duplicate flow (pending index %d) in round %d",
				b.P.Name(), pi, b.st.Round)
			return
		}
	}
}

// natives is the registry of native streaming policies, in presentation
// order. Every entry's constructor returns a fresh instance, so resolved
// policies never share rotation or scratch state between runtimes.
var natives = []struct {
	name string
	mk   func() Policy
}{
	{"RoundRobin", func() Policy { return &RoundRobin{} }},
	{"OldestFirst", func() Policy { return &OldestFirst{} }},
	{"WeightedISLIP", func() Policy { return &WeightedISLIP{} }},
	{"StreamFIFO", func() Policy { return FIFO{} }},
}

// Names returns the native streaming policy names in presentation order —
// the strings ByName resolves (and flowsim -policy accepts without
// bridging).
func Names() []string {
	names := make([]string, len(natives))
	for i, n := range natives {
		names[i] = n.name
	}
	return names
}

// ByName resolves a native streaming policy by name (a fresh instance per
// call); nil if unknown. Simulator policies run on streams via Bridge.
func ByName(name string) Policy {
	for _, n := range natives {
		if n.name == name {
			return n.mk()
		}
	}
	return nil
}
