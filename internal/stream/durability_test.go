package stream

import (
	"context"
	"testing"
	"time"

	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

// sliceSource replays a fixed flow slice (FlowSource + BatchFlowSource),
// standing in for a checkpoint prefix or a finite recorded stream.
type sliceSource struct {
	flows []switchnet.Flow
	at    int
}

func (s *sliceSource) Next() (switchnet.Flow, bool) {
	if s.at >= len(s.flows) {
		return switchnet.Flow{}, false
	}
	f := s.flows[s.at]
	s.at++
	return f, true
}

func (s *sliceSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	for n := 0; n < max && s.at < len(s.flows) && s.flows[s.at].Release <= round; n++ {
		dst = append(dst, s.flows[s.at])
		s.at++
	}
	return dst
}

func (s *sliceSource) Err() error { return nil }

// genFlows builds a deterministic finite workload: per flows per round
// over rounds rounds on a ports-port unit switch, endpoints cycling so
// several VOQs stay busy.
func genFlows(ports, rounds, per int) []switchnet.Flow {
	var out []switchnet.Flow
	for r := 0; r < rounds; r++ {
		for i := 0; i < per; i++ {
			k := r*per + i
			out = append(out, switchnet.Flow{
				In:      k % ports,
				Out:     (k*3 + 1) % ports,
				Demand:  1,
				Release: r,
			})
		}
	}
	return out
}

// flowResp is a completion record for multiset comparison.
type flowResp struct {
	f     switchnet.Flow
	round int
}

// unshardablePolicy is a minimal Policy without Shardable, for reload
// rejection tests on sharded runtimes.
type unshardablePolicy struct{}

func (unshardablePolicy) Name() string { return "unshardable-test" }
func (unshardablePolicy) Pick(v *View) {}

// TestResumeValidation pins the construction-time rejection of resumes
// that cannot be restored faithfully.
func TestResumeValidation(t *testing.T) {
	sw := switchnet.UnitSwitch(4)
	base := func() Config {
		return Config{Switch: sw, Policy: ByName("StreamFIFO"), Shards: 1, MaxPending: 8}
	}
	ok := ResumeCounters{Admitted: 10, Completed: 7, Dropped: 0, Expired: 0}
	for _, tc := range []struct {
		name string
		r    Resume
	}{
		{"negative round", Resume{Round: -1, Pending: 3, Counters: ok}},
		{"negative pending", Resume{Round: 5, Pending: -1, Counters: ok}},
		{"pending over MaxPending", Resume{Round: 5, Pending: 9, Counters: ResumeCounters{Admitted: 9, Completed: 0}}},
		{"unbalanced counters", Resume{Round: 5, Pending: 3, Counters: ResumeCounters{Admitted: 11, Completed: 7}}},
		{"negative counter", Resume{Round: 5, Pending: 3, Counters: ResumeCounters{Admitted: 10, Completed: 7, TotalResponse: -1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			cfg.Resume = &tc.r
			if _, err := New(&sliceSource{}, cfg); err == nil {
				t.Fatalf("New accepted resume %+v", tc.r)
			}
		})
	}
	// The balanced case constructs and reports the baselines verbatim.
	cfg := base()
	cfg.Resume = &Resume{Round: 5, Pending: 3, Counters: ResumeCounters{
		Admitted: 10, Completed: 7, TotalResponse: 21, MaxResponse: 6, Rounds: 5, PeakPending: 4,
	}}
	rt, err := New(&sliceSource{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rt.Snapshot()
	if s.Round != 5 || s.Rounds != 5 || s.Completed != 7 || s.TotalResponse != 21 || s.MaxResponse != 6 || s.PeakPending != 4 {
		t.Fatalf("restored baselines not visible in snapshot: %+v", s)
	}
	if s.Pending != 3-3 {
		// Admitted baseline is short by Pending until the re-admissions
		// arrive, so a pre-Run snapshot reports zero pending.
		t.Fatalf("pre-run snapshot pending = %d, want 0", s.Pending)
	}
}

// TestCheckpointConfigValidation pins the trigger's construction checks.
func TestCheckpointConfigValidation(t *testing.T) {
	sw := switchnet.UnitSwitch(4)
	cfg := Config{Switch: sw, Policy: ByName("StreamFIFO"), Shards: 1, CheckpointEveryRounds: -1}
	if _, err := New(&sliceSource{}, cfg); err == nil {
		t.Fatal("New accepted a negative CheckpointEveryRounds")
	}
	cfg.CheckpointEveryRounds = 8
	if _, err := New(&sliceSource{}, cfg); err == nil {
		t.Fatal("New accepted CheckpointEveryRounds without OnCheckpoint")
	}
}

// TestCheckpointRestoreContinuity is the core restore property at the
// stream layer: checkpoint an uninterrupted drain mid-run, restore a
// fresh runtime from that state (checkpoint prefix + skipped source
// tail), drain it, and the restored run's final summary and completion
// multiset must match the uninterrupted run exactly — same flows, same
// rounds, same response accounting charged from original releases.
func TestCheckpointRestoreContinuity(t *testing.T) {
	const ports, rounds, per = 6, 40, 9
	flows := genFlows(ports, rounds, per)
	sw := switchnet.UnitSwitch(ports)
	for _, pol := range []string{"StreamFIFO", "OldestFirst"} {
		t.Run(pol, func(t *testing.T) {
			// Uninterrupted reference drain.
			var ref []flowResp
			rtB, err := New(&sliceSource{flows: flows}, Config{
				Switch: sw, Policy: ByName(pol), Shards: 1, MaxPending: 24,
				OnSchedule: func(seq int64, f switchnet.Flow, round int) {
					ref = append(ref, flowResp{f, round})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			want, err := rtB.Run()
			if err != nil {
				t.Fatal(err)
			}

			// Checkpointed run: capture at the first cadence firing, then
			// stop. Completions recorded strictly before the capture round
			// belong to the checkpoint's past (the capture settles owed
			// picks first).
			var st CheckpointState
			var pre []flowResp
			captured := false
			var rtA *Runtime
			rtA, err = New(&sliceSource{flows: flows}, Config{
				Switch: sw, Policy: ByName(pol), Shards: 1, MaxPending: 24,
				CheckpointEveryRounds: 13,
				OnCheckpoint: func(s *CheckpointState) {
					if !captured {
						captured = true
						st = *s
						st.Flows = append([]switchnet.Flow(nil), s.Flows...)
					}
					rtA.Stop()
				},
				OnSchedule: func(seq int64, f switchnet.Flow, round int) {
					pre = append(pre, flowResp{f, round})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rtA.Run(); err != nil {
				t.Fatal(err)
			}
			if !captured {
				t.Fatal("cadence never fired")
			}
			kept := pre[:0]
			for _, c := range pre {
				if c.round < st.Round {
					kept = append(kept, c)
				}
			}
			pre = kept

			// Restored drain: checkpoint prefix, then the recorded stream
			// past the consumed point.
			var post []flowResp
			tail := workload.Skip(&sliceSource{flows: flows}, int(st.SourceFlows()))
			rtC, err := New(workload.NewCheckpointSource(st.Flows, tail), Config{
				Switch: sw, Policy: ByName(pol), Shards: 1, MaxPending: 24,
				Resume: st.Resume(),
				OnSchedule: func(seq int64, f switchnet.Flow, round int) {
					post = append(post, flowResp{f, round})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := rtC.Run()
			if err != nil {
				t.Fatal(err)
			}

			if got.Admitted != want.Admitted || got.Completed != want.Completed ||
				got.TotalResponse != want.TotalResponse || got.MaxResponse != want.MaxResponse ||
				got.Backpressured != want.Backpressured || got.Round != want.Round ||
				got.Rounds != want.Rounds || got.Pending != 0 {
				t.Fatalf("restored summary diverged:\n got %+v\nwant %+v\n(checkpoint at round %d, %d pending)", got, want, st.Round, st.Pending)
			}
			all := append(append([]flowResp(nil), pre...), post...)
			if len(all) != len(ref) {
				t.Fatalf("completion counts differ: %d split vs %d uninterrupted", len(all), len(ref))
			}
			count := func(rs []flowResp) map[flowResp]int {
				m := make(map[flowResp]int, len(rs))
				for _, r := range rs {
					m[r]++
				}
				return m
			}
			cm, rm := count(all), count(ref)
			for k, n := range rm {
				if cm[k] != n {
					t.Fatalf("completion multiset differs at %+v: split %d, uninterrupted %d", k, cm[k], n)
				}
			}
		})
	}
}

// TestCheckpointStateWhileParkedIdle pins the Parker wake path: a live
// runtime parked on an idle ChanSource must still answer checkpoint and
// pending-set requests (the request nudges the park awake), and Stop
// must interrupt the park without closing the source.
func TestCheckpointStateWhileParkedIdle(t *testing.T) {
	src := workload.NewChanSource(16)
	rt, err := New(src, Config{Switch: switchnet.UnitSwitch(4), Policy: ByName("StreamFIFO"), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() {
		_, err := rt.Run()
		runDone <- err
	}()
	// Feed a couple of flows and let the runtime drain them and park.
	src.Push(switchnet.Flow{In: 0, Out: 1, Demand: 1})
	src.Push(switchnet.Flow{In: 1, Out: 2, Demand: 1})
	deadline := time.Now().Add(5 * time.Second)
	for rt.Snapshot().Completed < 2 {
		if time.Now().After(deadline) {
			t.Fatal("runtime never drained the pushed flows")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := rt.CheckpointState(ctx, nil)
	if err != nil {
		t.Fatalf("CheckpointState on a parked runtime: %v", err)
	}
	if st.Pending != 0 || st.Summary.Completed != 2 || st.Summary.Admitted != 2 {
		t.Fatalf("parked capture wrong: %+v", st)
	}
	if _, _, err := rt.PendingFlows(ctx, nil); err != nil {
		t.Fatalf("PendingFlows on a parked runtime: %v", err)
	}
	// Stop alone must now end a parked run — no source close needed.
	rt.Stop()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not interrupt the idle park")
	}
}

// TestReloadSwapsPolicyMidRun pins live reload: the policy and admission
// settings swap between rounds without dropping the pending set, invalid
// configurations are rejected without effect, and a finished runtime
// refuses to reload.
func TestReloadSwapsPolicyMidRun(t *testing.T) {
	src := workload.NewChanSource(64)
	rt, err := New(src, Config{Switch: switchnet.UnitSwitch(4), Policy: ByName("RoundRobin"), Shards: 2, MaxPending: 32})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() {
		_, err := rt.Run()
		runDone <- err
	}()
	for i := 0; i < 8; i++ {
		src.Push(switchnet.Flow{In: i % 4, Out: (i + 1) % 4, Demand: 1})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Invalid reloads are rejected and change nothing.
	if err := rt.Reload(ctx, ReloadConfig{Policy: nil, MaxPending: 16}); err == nil {
		t.Fatal("reload accepted a nil policy")
	}
	if err := rt.Reload(ctx, ReloadConfig{Policy: ByName("RoundRobin"), MaxPending: 0}); err == nil {
		t.Fatal("reload accepted MaxPending 0")
	}
	if err := rt.Reload(ctx, ReloadConfig{Policy: unshardablePolicy{}, MaxPending: 16}); err == nil {
		t.Fatal("reload accepted an unshardable policy on a sharded runtime")
	}
	if err := rt.Reload(ctx, ReloadConfig{Policy: ByName("RoundRobin"), MaxPending: 16, Admit: AdmitLossless, Deadline: 4}); err == nil {
		t.Fatal("reload accepted a deadline under AdmitLossless")
	}

	// A valid swap applies and the runtime keeps scheduling under it.
	if err := rt.Reload(ctx, ReloadConfig{Policy: ByName("OldestFirst"), MaxPending: 16, Admit: AdmitDeadline, Deadline: 64}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		src.Push(switchnet.Flow{In: i % 4, Out: (i + 2) % 4, Demand: 1})
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.Snapshot().Completed < 16 {
		if time.Now().After(deadline) {
			t.Fatalf("post-reload runtime stopped completing: %+v", rt.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	src.Close()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	if err := rt.Reload(context.Background(), ReloadConfig{Policy: ByName("RoundRobin"), MaxPending: 16}); err == nil {
		t.Fatal("reload succeeded after the run finished")
	}
}

// TestRestorePreservesBackpressureSemantics pins that re-admitted
// checkpoint flows (whose releases predate the resume round by
// construction) are not re-counted as backpressured or admitted.
func TestRestorePreservesBackpressureSemantics(t *testing.T) {
	sw := switchnet.UnitSwitch(4)
	pending := []switchnet.Flow{
		{In: 0, Out: 1, Demand: 1, Release: 3},
		{In: 1, Out: 2, Demand: 1, Release: 4},
		{In: 2, Out: 3, Demand: 1, Release: 5},
	}
	res := &Resume{Round: 9, Pending: len(pending), Counters: ResumeCounters{
		Admitted: 10, Completed: 7, TotalResponse: 30, Rounds: 9, MaxResponse: 5, PeakPending: 5, Backpressured: 2,
	}}
	rt, err := New(workload.NewCheckpointSource(pending, &sliceSource{}), Config{
		Switch: sw, Policy: ByName("StreamFIFO"), Shards: 1, MaxPending: 8, Resume: res,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Admitted != 10 || sum.Completed != 10 || sum.Backpressured != 2 || sum.Pending != 0 {
		t.Fatalf("restored drain accounting wrong: %+v", sum)
	}
	// Responses stay charged from original releases: completions happen at
	// rounds >= 9, so flow released at 3 contributes >= 7.
	if sum.MaxResponse < 9+1-3 {
		t.Fatalf("restored MaxResponse %d too small for a release-3 flow completing at round >= 9", sum.MaxResponse)
	}
}
