// Package stream is the event-driven streaming scheduler runtime: the
// unbounded-arrival counterpart of internal/sim. A Source yields flows in
// non-decreasing release order (generator-driven or trace replay, see
// internal/workload); the Runtime admits them into a bounded pending set,
// asks a Policy for a capacity-feasible selection each round, and retires
// scheduled flows into streaming metrics — running totals plus
// sliding-window response-time quantiles — without ever holding more than
// the admission limit of flows in memory.
//
// Incrementality is the point: the runtime maintains per-port pending
// state — virtual output queues (one FIFO per (input, output) pair) with
// active-port indexes, per-port queue depths, and per-round load tallies
// reset via touched lists — updated in O(1) per arrival and departure. A
// round therefore costs O(arrived + scheduled + policy), never a rescan of
// every flow seen so far; with the native RoundRobin policy the policy
// term is O(active ports + scheduled) bitmap-word probes per round,
// independent of the pending count.
//
// # Sharding
//
// Config.Shards > 1 partitions the input ports across K shards: input i
// belongs to shard i mod K. Each shard exclusively owns the pending slots
// of flows arriving at its inputs — their admission-order sublist, their
// virtual output queues and active-port indexes, their load tallies — plus
// its own policy instance (Shardable.NewShard), its own sliding-window
// metric sketches, and its own verification buffer. Input-queued-switch
// state decomposes cleanly along this axis because every structure the
// scheduler mutates per round is keyed by input port; only output capacity
// couples the shards, and it is settled by a deterministic two-phase
// protocol each round:
//
//  1. Propose (parallel). Every shard admits the arrivals the coordinator
//     routed to it and runs its policy against a carved output budget:
//     output j's capacity splits into floor(OutCaps[j]/K) units per shard,
//     with the OutCaps[j] mod K spare units rotating across shards by
//     round so no shard permanently owns them. Shards touch disjoint
//     state, so the phase runs on all cores and its outcome is
//     independent of goroutine interleaving.
//  2. Reconcile (sequential in shard order). The coordinator computes
//     each output's unused budget — OutCaps[j] minus the total phase-1
//     usage — and offers every shard, in shard index order, a second Pick
//     against that shared leftover pool. Any capacity one shard could not
//     use is therefore visible to all shards, so sharding never idles a
//     port that an unsharded run would have filled.
//
// Retirement then runs parallel again: each shard unthreads its departures,
// updates its metric sketches, and buffers its scheduled flows for
// verification; the coordinator merges the buffers at window flushes and
// merges the metric sketches at Snapshot. For a fixed K the schedule is a
// pure function of the source — replaying the same stream at the same
// shard count reproduces it bit for bit.
//
// # Shard-scoped View contract
//
// Inside Pick a View exposes only the calling shard's slice of the
// runtime. Each and NumPending cover the shard's pending flows (oldest
// first in global admission order); QueueIn and QueueOut count the shard's
// flows per port; NumActiveInputs, ActiveInput, NumActiveVOQs, ActiveVOQ,
// and VOQHead are defined over the shard's own inputs; IDs are shard-local
// and must not cross Views. InputFree is always exact, because inputs are
// owned. OutputFree reports the shard's remaining carved budget during the
// propose phase and the global leftover pool during the reconcile phase.
// With Shards == 1 there is a single shard owning everything, OutputFree
// is always exact, and the View is exactly the pre-sharding contract —
// which is why bridged simulator policies (see Bridge), whose matchings
// need the full pending set, require Shards == 1.
//
// Config.OnSchedule is always invoked from the coordinator goroutine, in
// shard index order within a round, so callbacks need no locking.
//
// # Backpressure
//
// When the pending set reaches Config.MaxPending the runtime stops
// draining the source, so arrivals wait inside the source until a
// departure frees a slot. Admission is lossless and order-preserving, and
// response times are always charged from the flow's original release
// round, so queueing delay under overload is visible in the metrics rather
// than hidden by the admission control.
//
// # Verification
//
// With Config.VerifyEvery > 0 the runtime feeds each completed window of
// rounds — every flow scheduled in those rounds, with original releases,
// merged across shards — through the internal/verify oracle, aborting the
// run on the first infeasible window. Spot-checking costs O(flows per
// window) and keeps the unbounded run honest without retaining history.
package stream
