// Package stream is the event-driven streaming scheduler runtime: the
// unbounded-arrival counterpart of internal/sim. A Source yields flows in
// non-decreasing release order (generator-driven or trace replay, see
// internal/workload); the Runtime admits them into a bounded pending set,
// asks a Policy for a capacity-feasible selection each round, and retires
// scheduled flows into streaming metrics — running totals plus
// sliding-window response-time quantiles — without ever holding more than
// the admission limit of flows in memory.
//
// Incrementality is the point: the runtime maintains per-port pending
// state — virtual output queues (one FIFO per (input, output) pair) with
// active-port indexes, per-VOQ head-age records, per-port queue depths,
// and per-round load tallies reset via touched lists — updated in O(1)
// per arrival and departure. A round therefore costs
// O(arrived + scheduled + policy), never a rescan of every flow seen so
// far; with the native RoundRobin policy the policy term is
// O(active ports + scheduled) bitmap-word probes per round, independent
// of the pending count.
//
// # Policy selection
//
// Four native policies run at incremental cost and shard (ByName/Names
// resolve them; flowsim selects them with -policy):
//
//   - RoundRobin: per-input rotation over VOQs in output-port order
//     (iSLIP-style desynchronization). O(active ports + scheduled)
//     bitmap probes per round — the cheapest native policy, touching
//     only what it serves. Fairness guarantee: port-order rotation, no
//     VOQ overtaken within one rotation of the port space; no age
//     awareness, so no response-time guarantee from the paper.
//   - OldestFirst: serves VOQ heads globally oldest-first (release
//     round, ties in port order) — the paper's MinRTime service
//     discipline (SPAA 2020, Section 5.2: age-priority greedy maximal
//     selection, the GreedyAge ablation's rule) on the fast path. On
//     unit-demand workloads each round's selection is round-for-round
//     identical to bridging that simulator policy (property tested),
//     for O(input ports + active VOQs + release span) per round instead
//     of an O(pending log pending) rescan. Best for maximum response
//     time;
//     no flow ever starves (a waiting head only gets older until
//     nothing outranks it).
//   - WeightedISLIP: iterative request/grant/accept matching weighted
//     by head-of-queue age with per-port rotation pointers as
//     tie-breakers — the queue-age-weighted crossbar matchings of
//     Liang & Modiano's input-queued-switch analysis. O(Iters * active
//     VOQs + scheduled) per round. Like OldestFirst it serves the
//     oldest head where conflicts allow, but resolves port contention
//     by local arbitration instead of a global order — cheaper
//     coordination, the same starvation-freedom (age eventually
//     dominates every tie).
//   - StreamFIFO: admission-order first-fit. O(pending) per round — the
//     non-incremental baseline, kept for ablations.
//
// Cost model: RoundRobin touches only served VOQs; OldestFirst and
// WeightedISLIP read every active VOQ's head-age record every round
// (that is what an age-aware selection has to look at), so their cost
// grows with the resident backlog's active-VOQ count while RoundRobin's
// does not — see BenchmarkStreamRuntimePolicies for the measured ratios.
// Simulator policies (MaxCard, MinRTime's exact matching, MaxWeight, …)
// run through Bridge at a full per-round rescan of the pending set.
//
// Sharding caveat: every native policy is Shardable, but a shard only
// sees its own inputs, so cross-input guarantees weaken at K > 1 —
// OldestFirst is oldest-first per shard (ages still bound waiting within
// a shard), WeightedISLIP arbitrates output grants per shard against
// carved budgets, and Bridge (needing the global pending set) refuses to
// shard at all. Schedules remain bit-deterministic for a fixed K
// (property tested across K in {1, 2, 4}).
//
// # Sharding
//
// Config.Shards > 1 partitions the input ports across K shards: input i
// belongs to shard i mod K. Each shard exclusively owns the pending slots
// of flows arriving at its inputs — their admission-order sublist, their
// virtual output queues and active-port indexes, their load tallies — plus
// its own policy instance (Shardable.NewShard), its own sliding-window
// metric sketches, and its own verification buffer. Input-queued-switch
// state decomposes cleanly along this axis because every structure the
// scheduler mutates per round is keyed by input port; only output capacity
// couples the shards, and it is settled by a deterministic two-phase
// protocol each round:
//
//  1. Propose (parallel, fused with retirement). Every shard first
//     retires the previous round's settled picks (departures, metrics,
//     verification buffering), then admits the arrivals the coordinator
//     routed to it, then runs its policy against a carved output budget:
//     output j's capacity splits into floor(OutCaps[j]/K) units per
//     shard, with the OutCaps[j] mod K spare units rotating across
//     shards by round so no shard permanently owns them. Shards touch
//     disjoint state, so the phase runs on all cores and its outcome is
//     independent of goroutine interleaving.
//  2. Reconcile (sequential in shard order). The coordinator computes
//     each output's unused budget — OutCaps[j] minus the total phase-1
//     usage — and offers every shard, in shard index order, a second Pick
//     against that shared leftover pool. Any capacity one shard could not
//     use is therefore visible to all shards, so sharding never idles a
//     port that an unsharded run would have filled.
//
// Retirement of round r's picks is deferred into round r+1's fused phase
// — "apply folds into the next propose" — so the protocol has exactly one
// synchronization point per round (the fused-phase barrier) instead of
// separate propose and apply barriers, and shard A can be proposing round
// r+1 while shard B is still retiring round r. Before a verification
// window flushes, before an idle jump, and at the end of the run the
// coordinator forces the owed retirement so observed state is settled.
// For a fixed K the schedule is a pure function of the source — replaying
// the same stream at the same shard count reproduces it bit for bit.
//
// # Shard-scoped View contract
//
// Inside Pick a View exposes only the calling shard's slice of the
// runtime. Each and NumPending cover the shard's pending flows (oldest
// first in global admission order); QueueIn and QueueOut count the shard's
// flows per port; NumActiveInputs, ActiveInput, NumActiveVOQs, ActiveVOQ,
// and VOQHead are defined over the shard's own inputs; IDs are shard-local
// and must not cross Views. InputFree is always exact, because inputs are
// owned. OutputFree reports the shard's remaining carved budget during the
// propose phase and the global leftover pool during the reconcile phase.
// With Shards == 1 there is a single shard owning everything, OutputFree
// is always exact, and the View is exactly the pre-sharding contract —
// which is why bridged simulator policies (see Bridge), whose matchings
// need the full pending set, require Shards == 1.
//
// Config.OnSchedule is always invoked from the coordinator goroutine, in
// shard index order within a round, so callbacks need no locking.
//
// # Admission modes
//
// Config.Admit selects what happens when the pending set reaches
// Config.MaxPending; the accounting invariant
//
//	Admitted == Completed + Pending + Dropped + Expired
//
// holds in every mode, at every Snapshot, so no flow is ever silently
// lost:
//
//   - AdmitLossless (default): the runtime stops draining the source, so
//     arrivals wait inside the source until a departure frees a slot.
//     Admission is lossless and order-preserving, and response times are
//     always charged from the flow's original release round, so queueing
//     delay under overload is visible in the metrics rather than hidden
//     by the admission control. Backpressured counts the late admissions.
//   - AdmitDrop: arrivals that find the pending set full are validated,
//     counted in Admitted and Dropped, and shed without ever entering a
//     queue. The source is always drained at release time — overload
//     costs flows, never feed stalls — which is the right contract for a
//     live network feed that cannot be paused.
//   - AdmitDeadline: admission stays lossless, but each round every shard
//     expires the pending flows whose age exceeds Config.Deadline rounds
//     (head-walks of the admission-order sublists — O(expired) per round,
//     exploiting non-decreasing releases), counted in Expired. Completed
//     flows therefore always have MaxResponse <= Deadline: the runtime
//     trades completions for a hard response-time bound.
//
// Drop and expiry decisions are part of the deterministic round protocol
// (drops on the coordinator's admission path, expiry inside the fused
// phase before the policy proposes), so for a fixed K the counts replay
// bit for bit and verification windows stay oracle-clean in every mode.
//
// # Live sources
//
// A Source additionally implementing LiveFeeder (LiveFeed() == true, e.g.
// workload.ChanSource feeding the flowschedd daemon) is fed concurrently
// with the run, so "the source has nothing" no longer means "the stream
// ended". The runtime then admits exclusively through non-blocking
// PullBatch calls and parks in a blocking Next only when the pending set
// is empty — under lossless admission a full pending set simply stops
// pulling (the feed buffers), and shutting down requires closing the
// source (Runtime.Stop cannot interrupt a parked Next). Rounds are
// virtual time: the clock advances per scheduling round and jumps on
// idle gaps, so releases are stamped by the source at pull time, not by
// the producer.
//
// # Verification
//
// With Config.VerifyEvery > 0 the runtime feeds each completed window of
// rounds — every flow scheduled in those rounds, with original releases,
// merged across shards — through the internal/verify oracle, aborting the
// run on the first infeasible window. Spot-checking costs O(flows per
// window) and keeps the unbounded run honest without retaining history.
// The oracle runs on its own goroutine, overlapped with the next window's
// rounds and joined at the next flush, so on spare cores verification is
// off the round loop's critical path; a failure surfaces one window late,
// but the schedule itself never depends on the verdict.
//
// # Observability
//
// Config.Recorder attaches an obs.FlightRecorder to the round loop: the
// coordinator writes one RoundRecord per scheduling round — admission,
// scheduling, shedding, and backlog counts plus per-phase wall time —
// into the recorder's fixed ring with zero allocations (the same
// single-writer word-atomic discipline as the stats.EpochWindow
// sketches), and readers drain the last N rounds concurrently without
// ever stalling the writer. The contract:
//
//   - No recorder, no cost. Every clock read is gated on the recorder's
//     presence; an uninstrumented runtime takes zero time.Now calls per
//     round, and the instrumented path is benchmarked against the plain
//     one (BenchmarkStreamRuntimeRecorded) and gated by cmd/benchgate.
//   - Phase semantics. ProposeNS times the fused barrier phase (retire,
//     admit, propose), ReconcileNS the serial leftover-capacity pass,
//     ApplyNS any out-of-cadence forced retirement (verification
//     flushes, idle jumps), and VerifyNS only the blocking join on the
//     verify oracle — overlap with the next window's rounds is the
//     oracle's normal, invisible case. Work landing between scheduling
//     rounds is charged to the next emitted record.
//   - Only scheduling rounds emit, so the recorded round numbers are
//     strictly increasing — idle jumps leave gaps, never duplicates.
//   - Record emission precedes the round-counter publish, so a record
//     for round r is visible no later than a Snapshot that includes r.
//
// Config.ResponseBound > 0 additionally counts completions slower than
// the bound (Summary.SlowResponses, exact, not sketch-resolution) — the
// error term of the daemon's response-time SLO.
//
// # Durability and reload
//
// Everything the runtime can change about itself mid-run rides one
// mechanism: a one-slot control mailbox the coordinator polls with a
// single non-blocking select at the top of each step, after forcing any
// owed retirement. That point is quiescent — every pick settled, every
// inbox empty, the summary balanced — so the three control operations
// are serviced with no locks on the round path and no flow ever observed
// in two states:
//
//   - Runtime.CheckpointState captures a CheckpointState: the pending set
//     in global admission order (a K-way merge of the shards'
//     admission-order sublists by sequence number, so releases are
//     non-decreasing along it and a restore can replay it as a source),
//     original releases preserved, plus the coordinator's un-admitted
//     lookahead flow if one exists, the round, and an exact Summary.
//     Config.CheckpointEveryRounds > 0 instead fires OnCheckpoint
//     periodically from the coordinator itself — the cadence check is two
//     integer compares per round, capture reuses runtime-owned buffers,
//     and the steady-state loop stays allocation-free (covered by
//     TestSteadyStateZeroAllocCheckpoint). internal/chkpt serializes the
//     state to atomic, CRC-sealed files.
//
//   - Config.Resume restarts from a checkpoint: the clock opens at the
//     checkpointed round, the first Resume.Pending source flows (fed by
//     workload.NewCheckpointSource: checkpoint prefix, then the normal
//     tail) are re-admissions — not re-counted as admissions or
//     backpressure, thanks to a counter baseline started exactly Pending
//     short — and the cumulative counters continue from the checkpointed
//     values. Response times stay charged from original releases, and
//     Admitted == Completed + Pending + Dropped + Expired holds across
//     the restart as if it never happened. A checkpoint also carries the
//     policy's schedule-affecting scratch (CheckpointState.Scratch,
//     chkpt format v2) and the window quantile sketches
//     (CheckpointState.Windows, via stats.EpochWindow Export/Import), so
//     a kill -9/restore cycle is schedule-exact for every native policy
//     and window metrics continue instead of restarting empty:
//
//   - StreamFIFO: restore-exact; selection is memoryless given the
//     restored pending order.
//
//   - RoundRobin: restore-exact; the per-input rotation pointers are
//     checkpointed and re-imported (restarting them fresh used to
//     silently change post-restore tie-breaking).
//
//   - OldestFirst: restore-exact; selection is memoryless, and on
//     sharded runtimes the incremental age index is rebuilt from the
//     restored pending set (the candidate order is a pure function
//     of it).
//
//   - WeightedISLIP: restore-exact; the grant and accept rotation
//     pointers are checkpointed and re-imported.
//
//     The crash-equivalence suite in internal/faultinject pins all four
//     policies at one and several shards. A v1 checkpoint file (no
//     scratch, no windows) still restores — scratch-carrying policies
//     then restart their pointers fresh, the pre-v2 behavior.
//
//   - Runtime.Reload swaps the policy and the admission settings
//     (MaxPending, Admit, Deadline) between rounds without dropping the
//     pending set; per-shard policy instances are rebuilt and Reset, and
//     the next round schedules under the new configuration. Shrinking
//     MaxPending below the resident count sheds nothing — admission just
//     stays closed until the backlog drains.
//
// A live runtime parked on an idle Parker source (workload.ChanSource)
// is woken by a lossy one-slot nudge channel to service these requests —
// and Stop — while the feed is quiet; see Parker. The failure modes are
// exercised by internal/faultinject's deterministic chaos harness, whose
// differential test pins crash equivalence: kill at a checkpoint, restore,
// drain, and the summary and completion multiset match the uninterrupted
// run's.
//
// Runtime.PendingFlows snapshots the resident pending set off the hot
// path: the request parks in a one-slot mailbox the coordinator services
// at the top of its next step, after forcing any owed retirement, so the
// copy observes quiescent per-shard state mid-run without a lock on the
// round path. After Run returns the runtime answers directly. Callers
// bound the wait with the context: a live-fed runtime parked on an empty
// pending set answers nothing until work arrives (its pending set is
// empty then anyway), and a run that aborted mid-round may leave the
// mailbox unserviced. The internal/pilot optimality estimator is the
// canonical consumer.
//
// # Performance model
//
// The round loop is allocation-free at steady state and its memory
// traffic is budgeted per flow, not per data structure:
//
//   - Arena layout. A shard stores pending flows in a struct-of-arrays
//     arena indexed by flow ID: a 32-byte hot record (ports, demand,
//     cached VOQ index, state bits, VOQ block position, admission-order
//     links — everything the pick and depart paths touch, two flows per
//     cache line) and a 16-byte cold record (release, sequence number)
//     read only at retirement. IDs recycle through a LIFO free list, so
//     the arena stops growing once the pending set reaches its high-water
//     mark and there are no per-flow heap objects, ever.
//   - VOQ storage. Virtual output queues are chains of pooled ring-buffer
//     blocks (15 flow IDs plus a link — one cache line per block) with a
//     packed per-VOQ cursor record. Pushes append at the tail;
//     out-of-FIFO-order departures tombstone in place and compact once
//     tombstones outnumber live entries by more than a block; a drained
//     VOQ returns its whole chain to the pool. Policies sweep queues
//     through View.EachVOQ's block cursor: sequential block reads plus
//     one hot-record line per flow. Blocks recycle through the pool free
//     list, so steady-state queue churn never allocates.
//   - Barrier schedule. One coordinator/shard synchronization point per
//     round: the fused phase (retire round r-1, admit, propose round r)
//     runs behind a single barrier, and OnSchedule callbacks read the
//     still-live taken slots before they retire in the next fused phase.
//     The reconcile pass (sharded runtimes only) is a pipelined
//     shard-to-shard token chain in a deterministic order — oldest live
//     head first for the age-aware policies, shard index order
//     otherwise — so the second picks overlap their dispatch and cache
//     traffic across workers instead of running coordinator-serial.
//   - Age index. On sharded runtimes the age-aware policies keep an
//     incremental cross-round candidate index per shard (see ageIndex):
//     head activations and departures journaled at voqPush/voqRemove,
//     folded in O(changed VOQs) per round into a persistent
//     release-sorted two-level order with in-place tombstones. It feeds
//     the reconcile pass — sparse picks over the still-free inputs'
//     candidates and the oldest-head-first shard ordering — and rebuilds
//     from the pending set on restore or reload. Capacity-rich propose
//     passes instead rebuild their candidate order per round with a
//     bitmap sweep and a counting sort: at a deep resident backlog the
//     sweep's sequential record reads beat any random-access index
//     maintenance, which is also why one-shard runtimes (no reconcile
//     pass) skip the index entirely.
//   - Admission. Sources implementing BatchSource deliver each round's
//     released arrivals in one PullBatch call into a reused buffer —
//     interface-call overhead is paid per round, not per flow.
//   - Snapshot epochs. Scalar metrics are atomics written once per
//     applied round; window quantiles live in stats.EpochWindow, a
//     seqlock ring of preallocated log-histogram shards. Snapshot readers
//     merge with atomic loads and retry on epoch change, so metrics reads
//     never stall the round loop, and the record path (Begin/Observe/End)
//     neither locks nor allocates.
//
// # Static invariants
//
// The contracts above are compile-time-checked by flowschedvet
// (internal/analysis), the repo's own go vet suite, driven by source
// annotations:
//
//   - //flowsched:hotpath on a function's doc comment requires it — and
//     everything it reaches through static calls — to be free of
//     heap-allocating constructs. The fused round phase (shard.do,
//     apply, pickShared), View.Take, the arena and VOQ block operations,
//     every native policy's Pick, stats.EpochWindow's record path, and
//     obs.FlightRecorder.Record are all roots.
//   - //flowsched:clockgated (this package's mark, below) requires every
//     time.Now/Since/Until to be dominated by a recorder nil check —
//     the "zero clock reads uninstrumented" contract.
//   - //flowsched:deterministic forbids unordered map iteration, global
//     math/rand, and wall-clock input — the cross-K bit-reproducibility
//     contract. internal/sim, internal/core, internal/lp and
//     internal/matching carry the same mark.
//   - Deliberate exceptions carry //flowsched:allow <check>: <why> on
//     the offending line (or a function's doc comment); an allow without
//     a justification is itself a finding.
//
// Run it locally with `go run ./cmd/flowschedvet ./...` or through
// `go vet -vettool`; CI fails on any unannotated finding, and
// TestRepoClean enforces the same as part of go test ./....
//
//flowsched:clockgated
//flowsched:deterministic
package stream
