package stream

import (
	"math"
	"math/bits"

	"flowsched/internal/switchnet"
)

// OldestFirst is the age-aware native policy: every round it serves VOQ
// heads globally oldest-first — the streaming analogue of the paper's
// MinRTime heuristic (greedy age-ordered maximal selection over the
// pending graph) at incremental cost. Heads are ordered by release
// round; heads released in the same round tie-break in port order
// (input, then output), and strict VOQ FIFO settles the rest, so the
// service order is the total order (release, input, output, admission
// seq) and the schedule is a pure function of the stream.
//
// A capacity-rich pass (the propose phase) builds the round's candidate
// set by sweeping the head-age records: inputs in ascending port order,
// each input's active VOQs in ascending port order off the bitmap words,
// so candidates are emitted pre-sorted by (input, output) and the record
// reads are plain sequential array traffic. The port-order tie-break is
// what makes ordering sort-free: one stable counting pass over the
// release span — head ages are small integers around the current round —
// yields the exact global order in O(inputs + active VOQs + span), with
// no comparison sort and no log factor. (A release span degenerately
// wider than the candidate count — idle-jump shaped streams — falls back
// to one comparison sort.) The scan then serves candidates in order: an
// entry whose ports lack capacity is skipped in O(1) array reads, and a
// served head's successor re-enters through a small auxiliary heap (at
// most one entry per flow served), keeping the merged order exact. The
// scan exits as soon as the shard's input capacity is exhausted.
//
// A capacity-poor pass — the reconcile pass at several shards, where the
// propose phase already saturated most inputs — switches to a sparse
// gather instead: the still-free inputs' candidates that fit both
// remaining capacities go straight into the heap (skipping the full
// sweep and the counting sort), and the heap drains in the same global
// order with the same at-serve capacity recheck. Capacity only decreases
// during a pass, so a head not servable at pass start can never serve,
// and the drain takes exactly the serves the full scan would — same
// selection, a fraction of the visits. The mode choice compares the free
// inputs' candidate count against the shard's incremental age index
// (see ageIndex) scan length; both sides are pure functions of quiescent
// shard state, so the choice cannot perturb the schedule. The index is
// built only when the runtime is sharded — the single-shard fused phase
// is always capacity-rich, and skipping the index there keeps its
// journal maintenance off the one-shard hot path entirely.
//
// Within a VOQ the policy is strict FIFO: a head whose demand does not
// fit the remaining port capacity blocks its queue for the round (the
// queue is abandoned, not probed deeper), so no flow is ever overtaken
// by a younger flow on the same port pair. On unit-demand workloads the
// abandonment is exact — every flow behind a blocked head shares its
// ports and demand, so a first-fit pass over all pending flows in the
// same (release, input, output) order would reject them identically, and
// the round's selection matches that bridged MinRTime-style policy flow
// for flow (property tested). With general demands abandonment is the
// head-of-line trade-off: a smaller younger flow that a full first-fit
// pass would slip past a blocked head stays queued here.
//
// All scratch (entry, bucket, and heap slices) is length-reset and grows
// only to its high-water mark, so steady-state rounds allocate nothing.
//
// OldestFirst is Shardable: each shard serves its own inputs' heads
// oldest-first, and the reconcile pass orders shards oldest-head-first
// (see Runtime.reconcile, fed by the age index fronts) so service
// against the shared leftover pool is globally, not per-shard,
// oldest-first. The head-age records during that pass may still carry a
// propose-pass pick (they update at retirement), in which case the entry
// stands for the taken head's oldest untaken successor — deterministic,
// just ordered and prechecked by the record rather than the successor's
// own key.
type OldestFirst struct {
	ent []ofEntry // sweep scratch: one entry per candidate VOQ
	ord []ofEntry // the entries in global order
	cnt []int32   // calendar buckets: per-release counts, then offsets
	h   []ofEntry // auxiliary min-heap: successors, sparse-mode candidates
	// inFree/outFree mirror the ports' remaining capacity during the
	// scan (seeded from the View, decremented alongside every take), so
	// a skipped entry costs local array reads, not View calls.
	inFree, outFree []int32
}

// Reset implements Resetter: it sizes the capacity mirrors to the switch
// so Pick never allocates.
func (p *OldestFirst) Reset(sw switchnet.Switch) {
	p.inFree = make([]int32, sw.NumIn())
	p.outFree = make([]int32, sw.NumOut())
}

// ofEntry is one candidate: an active VOQ identified by its port pair,
// keyed and prechecked by its head-age record, packed into 16 bytes (a
// round's candidate set streams through cache three times — sweep,
// scatter, scan — so entry size is bandwidth). Entries order by
// (rel, in, out); at most one candidate per VOQ is live at a time —
// the sweep emits one entry per queue, the sparse gather one per queue,
// and a successor enters only after its predecessor was consumed — so
// the key is unique, the order total, and the scan sequence
// deterministic.
type ofEntry struct {
	rel     int64
	dem     int32
	in, out int16
}

func (e ofEntry) before(o ofEntry) bool {
	if e.rel != o.rel {
		return e.rel < o.rel
	}
	if e.in != o.in {
		return e.in < o.in
	}
	return e.out < o.out
}

// Name implements Policy.
func (*OldestFirst) Name() string { return "OldestFirst" }

// NewShard implements Shardable: all state is per-Pick scratch, so a
// fresh instance per shard shares nothing.
func (*OldestFirst) NewShard() Policy { return &OldestFirst{} }

// usesAgeIndex marks the policy as a consumer of the shard's incremental
// age index; newShard builds one exactly when this is implemented and
// the runtime is sharded.
func (*OldestFirst) usesAgeIndex() {}

// Pick implements Policy.
//
//flowsched:hotpath
func (p *OldestFirst) Pick(v *View) {
	sw := v.Switch()
	mIn, mOut := sw.NumIn(), sw.NumOut()
	p.h = p.h[:0]
	for j := 0; j < mOut; j++ {
		p.outFree[j] = int32(v.OutputFree(j))
	}
	// Seed the input capacity mirror and count the free inputs'
	// candidates; every candidate lives on an active input, so the count
	// is exact for the mode choice below.
	sumFree, freeCand := 0, 0
	for a := 0; a < v.NumActiveInputs(); a++ {
		in := v.ActiveInput(a)
		free := v.InputFree(in)
		p.inFree[in] = int32(free)
		if free > 0 {
			sumFree += free
			freeCand += v.NumActiveVOQs(in)
		}
	}
	if sumFree == 0 {
		return
	}
	if ai := v.sh.ai; ai != nil {
		ai.trim()
		// Sparse mode: when the inputs with capacity left hold far fewer
		// candidates than the index holds live entries — the reconcile
		// pass after a near-maximal propose — gathering those candidates
		// directly beats the full sweep and sort. Both modes take
		// identical serves, so the choice cannot perturb the schedule.
		if freeCand*4 < ai.scanLen() {
			p.pickSparse(v, freeCand)
			return
		}
	}
	p.ent = p.ent[:0]
	minRel, maxRel := int64(math.MaxInt64), int64(math.MinInt64)
	// Sweep inputs in ascending port order and each input's active VOQs
	// in ascending port order off the bitmap words, so candidates are
	// emitted pre-sorted by (input, output) and the head-age records are
	// read in ascending vi order — plain sequential array traffic, no
	// per-VOQ calls.
	for in := 0; in < mIn; in++ {
		if v.QueueIn(in) == 0 || p.inFree[in] <= 0 {
			continue
		}
		row := v.headRow(in)
		for wi, w := range v.voqWords(in) {
			for w != 0 {
				out := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				h := &row[out]
				if h.rel < minRel {
					minRel = h.rel
				}
				if h.rel > maxRel {
					maxRel = h.rel
				}
				p.ent = append(p.ent, ofEntry{ //flowsched:allow alloc: entry scratch is length-reset per round and grows to the pending high-water mark
					rel: h.rel, dem: h.dem,
					in: int16(in), out: int16(out),
				})
			}
		}
	}
	if len(p.ent) == 0 {
		return
	}
	p.order(minRel, maxRel)

	i := 0
	for (i < len(p.ord) || len(p.h) > 0) && sumFree > 0 {
		var e ofEntry
		if i < len(p.ord) && (len(p.h) == 0 || p.ord[i].before(p.h[0])) {
			e = p.ord[i]
			i++
		} else {
			e = p.pop()
		}
		d := p.take(v, e)
		if d == 0 {
			continue
		}
		sumFree -= int(d)
	}
}

// pickSparse is the low-capacity mode: gather every candidate of the
// still-free inputs that fits both remaining capacities into the heap,
// then drain it in (release, input, output) order with the same at-serve
// capacity recheck the dense scan applies. cap reserves the heap once
// for the gather's upper bound.
func (p *OldestFirst) pickSparse(v *View, freeCand int) {
	if cap(p.h) < freeCand {
		p.h = make([]ofEntry, 0, freeCand) //flowsched:allow alloc: heap scratch grows to the free-input candidate high-water mark, then recycles
	}
	for a := 0; a < v.NumActiveInputs(); a++ {
		in := v.ActiveInput(a)
		free := p.inFree[in]
		if free <= 0 {
			continue
		}
		for k, n := 0, v.NumActiveVOQs(in); k < n; k++ {
			out := v.ActiveVOQ(in, k)
			of := p.outFree[out]
			if of <= 0 {
				continue
			}
			rel, _, demand := v.VOQHeadRecord(in, out)
			dem := int32(demand)
			if dem > free || of < dem {
				continue
			}
			p.heapPush(ofEntry{rel: rel, dem: dem, in: int16(in), out: int16(out)})
		}
	}
	for len(p.h) > 0 {
		p.take(v, p.pop())
	}
}

// take serves entry e if its head still fits both remaining capacities:
// it walks past already-taken flows to the queue's current head, takes
// it, updates the capacity mirrors, and offers the served head's
// successor to the heap. Returns the served demand, 0 when nothing was
// taken — a blocked head blocks its whole queue for the round (strict
// FIFO; two local array reads, the queue itself is never touched).
func (p *OldestFirst) take(v *View, e ofEntry) int32 {
	free := p.inFree[e.in]
	if free <= 0 || e.dem > free || p.outFree[e.out] < e.dem {
		return 0
	}
	in := int(e.in)
	id := v.VOQHead(in, int(e.out))
	for id != NoID && v.Taken(id) {
		id = v.VOQNext(id)
	}
	if id == NoID || !v.Take(id) {
		return 0 // reconcile-pass successor differs from the record
	}
	d := int32(v.Demand(id))
	p.inFree[e.in] -= d
	p.outFree[e.out] -= d
	if p.inFree[e.in] > 0 {
		// A successor can only serve while its input has capacity left;
		// on unit-capacity inputs this never pushes, and the heap costs
		// nothing.
		p.push(v, v.VOQNext(id))
	}
	return d
}

// order arranges p.ent into p.ord in global (rel, in, out) order. The
// sweep emitted entries (in, out)-sorted, so one stable counting pass by
// release — O(active VOQs + span) — finishes the job without comparing
// anything. A release span far wider than the entry count (idle-jump
// shaped streams) falls back to one comparison sort of everything.
func (p *OldestFirst) order(minRel, maxRel int64) {
	span := maxRel - minRel + 1
	if span > int64(4*len(p.ent)+64) {
		p.ord = append(p.ord[:0], p.ent...) //flowsched:allow alloc: ord scratch reuses capacity, growing to the ent high-water mark
		sortEntries(p.ord)
		return
	}
	n := int(span)
	if cap(p.cnt) < n {
		p.cnt = make([]int32, n) //flowsched:allow alloc: counting-sort scratch regrows only when the release span exceeds its high-water mark
	}
	p.cnt = p.cnt[:n]
	for i := range p.cnt {
		p.cnt[i] = 0
	}
	for i := range p.ent {
		p.cnt[p.ent[i].rel-minRel]++
	}
	sum := int32(0)
	for i, c := range p.cnt {
		p.cnt[i] = sum
		sum += c
	}
	if cap(p.ord) < len(p.ent) {
		p.ord = make([]ofEntry, len(p.ent)) //flowsched:allow alloc: ord regrows only past its high-water mark
	}
	p.ord = p.ord[:len(p.ent)]
	for i := range p.ent {
		b := p.ent[i].rel - minRel
		p.ord[p.cnt[b]] = p.ent[i]
		p.cnt[b]++
	}
}

// sortEntries sorts by the full entry order without allocating:
// insertion sort for short runs, quicksort (middle pivot) above. Keys
// are unique, so the order — and with it the schedule — is
// deterministic.
func sortEntries(s []ofEntry) {
	for len(s) > 12 {
		pivot := s[len(s)/2]
		lo, hi := 0, len(s)-1
		for lo <= hi {
			for s[lo].before(pivot) {
				lo++
			}
			for pivot.before(s[hi]) {
				hi--
			}
			if lo <= hi {
				s[lo], s[hi] = s[hi], s[lo]
				lo++
				hi--
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if hi < len(s)-lo {
			sortEntries(s[:hi+1])
			s = s[lo:]
		} else {
			sortEntries(s[lo:])
			s = s[:hi+1]
		}
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].before(s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// push offers the first untaken flow at or after id in its VOQ to the
// successor heap, keyed by its own record — a served head's successor
// sorts strictly after every entry scanned so far (same ports, same or
// later release, later seq), so the merged scan order stays globally
// sorted.
func (p *OldestFirst) push(v *View, id ID) {
	for id != NoID && v.Taken(id) {
		id = v.VOQNext(id)
	}
	if id == NoID {
		return
	}
	f := v.Flow(id)
	p.heapPush(ofEntry{
		rel: v.Release(id), dem: int32(f.Demand),
		in: int16(f.In), out: int16(f.Out),
	})
}

// heapPush sifts e up into the min-heap.
func (p *OldestFirst) heapPush(e ofEntry) {
	p.h = append(p.h, e) //flowsched:allow alloc: heap scratch is length-reset per round and grows to the pending high-water mark
	i := len(p.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !p.h[i].before(p.h[parent]) {
			break
		}
		p.h[i], p.h[parent] = p.h[parent], p.h[i]
		i = parent
	}
}

// pop removes and returns the successor heap's minimum entry.
func (p *OldestFirst) pop() ofEntry {
	e := p.h[0]
	last := len(p.h) - 1
	p.h[0] = p.h[last]
	p.h = p.h[:last]
	n := last
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			return e
		}
		min := l
		if r := l + 1; r < n && p.h[r].before(p.h[l]) {
			min = r
		}
		if !p.h[min].before(p.h[i]) {
			return e
		}
		p.h[i], p.h[min] = p.h[min], p.h[i]
		i = min
	}
}
