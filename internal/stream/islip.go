package stream

import (
	"fmt"
	"math/bits"

	"flowsched/internal/switchnet"
)

// DefaultISLIPIters is the request/grant/accept iteration count a zero
// WeightedISLIP.Iters selects. Two iterations resolve the vast majority
// of port conflicts on practical switch sizes (classic iSLIP converges
// in O(log N) iterations; its hardware deployments ran 1-4), and each
// extra iteration re-sweeps the unmatched inputs' head records — raise
// Iters when match completeness matters more than round cost.
const DefaultISLIPIters = 2

// WeightedISLIP is the native queue-age-weighted iSLIP scheduler:
// iterative request/grant/accept matching where the weight of a request
// is the age of the VOQ's head flow, following the queue-age-weighted
// matchings that achieve optimal delay scaling in the input-queued-switch
// model (Liang & Modiano, Coflow Scheduling in Input-Queued Switches).
// Each iteration:
//
//  1. Request. Every input with free capacity offers each of its active
//     VOQs whose head (per the runtime's head-age record) currently
//     fits the remaining port capacity.
//  2. Grant. Every requested output grants its oldest-head request —
//     smallest release round, ties broken in favor of the input closest
//     after the output's grant pointer in circular port order (the
//     iSLIP desynchronization device, demoted to a tie-breaker because
//     ages, unlike classic iSLIP's unweighted requests, already
//     guarantee a starved VOQ eventually outbids every rival).
//  3. Accept. Every input granted to accepts its oldest grant — same
//     ordering, with the input's accept pointer breaking ties — and the
//     accepted VOQ drains oldest-first while port capacity lasts
//     (strict FIFO; a blocked head blocks its queue). Both rotation
//     pointers then advance to the accepted pair.
//
// Iterations repeat until one serves nothing (or Iters is reached), so a
// round always makes progress when any head fits. Weight comparisons form
// a total order — age first, pointer distance second, and distances are
// unique per port — so the outcome is independent of iteration order over
// the active lists: same stream, same shard count, bit-identical
// schedules.
//
// A round costs O(Iters * active VOQs + scheduled) hot-record reads —
// the request sweep skips a saturated input in O(1), so a reconcile pass
// re-sweeps only the capacity that is genuinely left — with all scratch
// preallocated at Reset, so steady-state rounds allocate nothing.
// WeightedISLIP is Shardable: each shard matches its own inputs against
// its carved (then reconciled) output budgets with its own pointer
// state, which is exactly the per-input decomposition the
// request/grant/accept structure already has. As an age-aware policy it
// keeps the shard's incremental age index (see ageIndex) when the
// runtime is sharded; the index is not consulted by the sweep — it feeds
// the reconcile pass's oldest-head-first shard ordering and the
// checkpoint-restore rebuild.
type WeightedISLIP struct {
	// Iters caps the request/grant/accept iterations per pick pass;
	// <= 0 selects DefaultISLIPIters.
	Iters int

	// Rotation pointers: grant[j] is the input whose grant output j last
	// had accepted, accept[i] the output input i last accepted (-1 before
	// any). Ties resolve to the port closest after the pointer.
	grant  []int32
	accept []int32

	// Per-iteration scratch, preallocated at Reset and reset via the
	// touched lists: the strongest request per output and the strongest
	// grant per input, as (port, release) pairs, plus a snapshot of the
	// outputs' visible free capacity (constant within an iteration: the
	// request sweep completes before any drain) so the request filter
	// costs local array reads.
	reqIn         []int32
	reqRel        []int64
	reqOuts       []int32
	accOut        []int32
	accRel        []int64
	accIns        []int32
	outFree       []int32
	numIn, numOut int
}

// Name implements Policy.
func (*WeightedISLIP) Name() string { return "WeightedISLIP" }

// NewShard implements Shardable: pointer and scratch state is per-shard
// (the runtime calls Reset on every shard instance at construction).
func (p *WeightedISLIP) NewShard() Policy { return &WeightedISLIP{Iters: p.Iters} }

// Reset implements Resetter: it sizes the pointer and scratch arrays to
// the switch so Pick never allocates.
func (p *WeightedISLIP) Reset(sw switchnet.Switch) {
	p.numIn, p.numOut = sw.NumIn(), sw.NumOut()
	p.grant = newIDs(p.numOut)
	p.accept = newIDs(p.numIn)
	p.reqIn = newIDs(p.numOut)
	p.reqRel = make([]int64, p.numOut)
	p.reqOuts = make([]int32, 0, p.numOut)
	p.accOut = newIDs(p.numIn)
	p.accRel = make([]int64, p.numIn)
	p.accIns = make([]int32, 0, p.numIn)
	p.outFree = make([]int32, p.numOut)
}

// usesAgeIndex marks the policy as a consumer of the shard's incremental
// age index; newShard builds one exactly when this is implemented and
// the runtime is sharded.
func (*WeightedISLIP) usesAgeIndex() {}

// exportScratch implements scratchPolicy: the grant rotation pointers in
// output-port order, then the accept pointers in input-port order — the
// full schedule-affecting state a checkpoint must carry for a restore to
// be tie-break exact.
func (p *WeightedISLIP) exportScratch(dst []int64) []int64 {
	for _, g := range p.grant {
		dst = append(dst, int64(g))
	}
	for _, a := range p.accept {
		dst = append(dst, int64(a))
	}
	return dst
}

// importScratch implements scratchPolicy; it runs after Reset, against a
// same-geometry switch (the runtime checks policy name and shard count
// before offering a snapshot).
func (p *WeightedISLIP) importScratch(src []int64) error {
	if len(src) != p.numOut+p.numIn {
		return fmt.Errorf("WeightedISLIP scratch: got %d values, want %d", len(src), p.numOut+p.numIn)
	}
	for j := 0; j < p.numOut; j++ {
		p.grant[j] = int32(src[j])
	}
	for i := 0; i < p.numIn; i++ {
		p.accept[i] = int32(src[p.numOut+i])
	}
	return nil
}

// newIDs returns a fresh length-n slice of noID.
func newIDs(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = noID
	}
	return s
}

// Pick implements Policy.
//
//flowsched:hotpath
func (p *WeightedISLIP) Pick(v *View) {
	iters := p.Iters
	if iters <= 0 {
		iters = DefaultISLIPIters
	}
	// Snapshot the outputs' visible free capacity once per pass; drains
	// keep it current between iterations.
	for j := 0; j < p.numOut; j++ {
		p.outFree[j] = int32(v.OutputFree(j))
	}
	for it := 0; it < iters; it++ {
		if p.iterate(v) == 0 {
			return
		}
	}
}

// iterate runs one request/grant/accept pass and returns how many VOQs it
// served.
func (p *WeightedISLIP) iterate(v *View) int {
	// Request + grant: sweep the shard's active VOQs once in ascending
	// port order off the bitmap words, reading each queue's head-age
	// record (one dense array read per VOQ, no queue-block chasing and
	// no per-VOQ calls); each output retains only its strongest request,
	// so the grant decision falls out of the sweep without materializing
	// request lists.
	for a := 0; a < v.NumActiveInputs(); a++ {
		in := v.ActiveInput(a)
		free := int32(v.InputFree(in))
		if free <= 0 {
			continue
		}
		row := v.headRow(in)
		for wi, w := range v.voqWords(in) {
			for w != 0 {
				out := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				h := &row[out]
				if h.dem > free || p.outFree[out] < h.dem {
					continue
				}
				if cur := p.reqIn[out]; cur == noID {
					p.reqOuts = append(p.reqOuts, int32(out)) //flowsched:allow alloc: request list is length-reset per iteration and grows to mOut
				} else if !wins(h.rel, in, p.reqRel[out], int(cur), int(p.grant[out]), p.numIn) {
					continue
				}
				p.reqIn[out], p.reqRel[out] = int32(in), h.rel
			}
		}
	}

	// Accept: each granted output's offer lands at its input, which
	// retains only its strongest grant.
	for _, o := range p.reqOuts {
		out := int(o)
		in := int(p.reqIn[out])
		if cur := p.accOut[in]; cur == noID {
			p.accIns = append(p.accIns, int32(in)) //flowsched:allow alloc: accept list is length-reset per iteration and grows to owned inputs
		} else if !wins(p.reqRel[out], out, p.accRel[in], int(cur), int(p.accept[in]), p.numOut) {
			continue
		}
		p.accOut[in], p.accRel[in] = int32(out), p.reqRel[out]
	}

	// Serve the accepted matches and advance the rotation pointers.
	// Accepted pairs touch pairwise-distinct inputs and outputs (one
	// grant per output, one accept per input), so the drains cannot
	// interfere; at round start every accepted head serves. (During a
	// reconcile pass the head-age record can still describe a
	// propose-pass pick — the drain skips it, and a queue left with
	// nothing servable simply wastes its grant for the iteration.)
	matched := 0
	for _, i := range p.accIns {
		in := int(i)
		out := int(p.accOut[in])
		before := v.InputFree(in)
		if after, served := drainVOQ(v, in, out, before); served {
			p.outFree[out] -= int32(before - after)
			p.grant[out] = int32(in)
			p.accept[in] = int32(out)
			matched++
		}
	}

	for _, o := range p.reqOuts {
		p.reqIn[o] = noID
	}
	p.reqOuts = p.reqOuts[:0]
	for _, i := range p.accIns {
		p.accOut[i] = noID
	}
	p.accIns = p.accIns[:0]
	return matched
}

// wins reports whether the candidate (relA, portA) beats the incumbent
// (relB, portB): older release first, then the port closer after ptr in
// circular order. Port distances are unique, so the order is total.
func wins(relA int64, portA int, relB int64, portB, ptr, n int) bool {
	if relA != relB {
		return relA < relB
	}
	return circDist(portA, ptr, n) < circDist(portB, ptr, n)
}

// circDist is the circular distance from ptr's successor to port x: 0 for
// the port right after the pointer, n-1 for the pointer itself (-1, the
// never-pointed state, makes it plain port order).
func circDist(x, ptr, n int) int {
	d := x - ptr - 1
	if d < 0 {
		d += n
	}
	return d
}
