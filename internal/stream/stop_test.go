package stream

import (
	"context"
	"testing"
	"time"

	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

// awaitProgress polls Snapshot until cond holds or the deadline passes.
func awaitProgress(t *testing.T, rt *Runtime, cond func(Summary) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(rt.Snapshot()) {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for runtime progress")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestStopMidRunSettlesOwedPicks is the headline-bugfix property: stopping
// an unbounded overloaded run mid-flight returns a final Summary with
// every owed pick retired (no flow counted scheduled but not completed),
// the verify goroutine joined, and the accounting balanced — at K = 1 and
// on the sharded worker pool.
func TestStopMidRunSettlesOwedPicks(t *testing.T) {
	for _, shards := range []int{1, 2} {
		src := &patternSource{ports: 8, per: 12}
		rt, err := New(src, Config{
			Switch:      switchnet.UnitSwitch(8),
			Policy:      ByName("RoundRobin"),
			Shards:      shards,
			MaxPending:  256,
			VerifyEvery: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum *Summary
		var runErr error
		finished := make(chan struct{})
		go func() {
			sum, runErr = rt.Run()
			close(finished)
		}()
		awaitProgress(t, rt, func(s Summary) bool { return s.Completed > 0 })
		rt.Stop()
		select {
		case <-finished:
		case <-time.After(10 * time.Second):
			t.Fatalf("K=%d: Run did not return after Stop", shards)
		}
		if runErr != nil {
			t.Fatalf("K=%d: stopped run failed: %v", shards, runErr)
		}
		if rt.owedApply() {
			t.Fatalf("K=%d: owed picks left unsettled after Stop", shards)
		}
		if rt.vpending {
			t.Fatalf("K=%d: verify goroutine not joined after Stop", shards)
		}
		if sum.Completed == 0 || sum.Pending == 0 {
			t.Fatalf("K=%d: stop mid-overload should leave both completions (%d) and pending flows (%d)",
				shards, sum.Completed, sum.Pending)
		}
		if rt.count != sum.Pending {
			t.Fatalf("K=%d: summary pending %d != runtime pending %d", shards, sum.Pending, rt.count)
		}
		if sum.Admitted != sum.Completed+int64(sum.Pending)+sum.Dropped+sum.Expired {
			t.Fatalf("K=%d: accounting unbalanced: admitted %d != completed %d + pending %d + dropped %d + expired %d",
				shards, sum.Admitted, sum.Completed, sum.Pending, sum.Dropped, sum.Expired)
		}
	}
}

// TestStopBeforeRun: a stop requested before Run must return immediately
// with an all-zero summary, never touching the source.
func TestStopBeforeRun(t *testing.T) {
	src := &patternSource{ports: 4, per: 4} // unbounded: any pull would hang the drain
	rt, err := New(src, Config{Switch: switchnet.UnitSwitch(4), Policy: ByName("RoundRobin")})
	if err != nil {
		t.Fatal(err)
	}
	rt.Stop()
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Admitted != 0 || sum.Completed != 0 || sum.Rounds != 0 {
		t.Fatalf("pre-stopped run did work: %+v", sum)
	}
}

// TestRunContextCancel wires Stop through context cancellation: a
// cancelled context ends the run cleanly with the final summary, not an
// error.
func TestRunContextCancel(t *testing.T) {
	src := &patternSource{ports: 8, per: 12}
	rt, err := New(src, Config{
		Switch:     switchnet.UnitSwitch(8),
		Policy:     ByName("OldestFirst"),
		MaxPending: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		awaitProgress(t, rt, func(s Summary) bool { return s.Completed > 0 })
		cancel()
	}()
	sum, err := rt.RunContext(ctx)
	if err != nil {
		t.Fatalf("cancelled run failed: %v", err)
	}
	if sum.Completed == 0 {
		t.Fatal("cancelled run completed nothing")
	}
	if sum.Admitted != sum.Completed+int64(sum.Pending) {
		t.Fatalf("accounting unbalanced after cancel: %+v", sum)
	}

	// Already-cancelled context: no work at all.
	rt2, err := New(&patternSource{ports: 4, per: 4}, Config{
		Switch: switchnet.UnitSwitch(4),
		Policy: ByName("RoundRobin"),
	})
	if err != nil {
		t.Fatal(err)
	}
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	sum, err = rt2.RunContext(done)
	if err != nil || sum.Rounds != 0 {
		t.Fatalf("pre-cancelled run: sum %+v, err %v", sum, err)
	}
}

// TestLiveSourceDrainAndClose runs the runtime over a concurrently-fed
// ChanSource: it must schedule pushed flows, park while the feed is idle
// instead of terminating, and end cleanly — fully drained — once the feed
// closes.
func TestLiveSourceDrainAndClose(t *testing.T) {
	const ports, total = 4, 400
	src := workload.NewChanSource(32)
	rt, err := New(src, Config{
		Switch:      switchnet.UnitSwitch(ports),
		Policy:      ByName("OldestFirst"),
		VerifyEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rt.live {
		t.Fatal("ChanSource not detected as a live feed")
	}
	var sum *Summary
	var runErr error
	finished := make(chan struct{})
	go func() {
		sum, runErr = rt.Run()
		close(finished)
	}()
	for i := 0; i < total/2; i++ {
		src.Push(switchnet.Flow{In: i % ports, Out: (i + 1) % ports, Demand: 1})
	}
	// The runtime must drain the first burst and then park — not return.
	awaitProgress(t, rt, func(s Summary) bool { return s.Completed == total/2 })
	select {
	case <-finished:
		t.Fatal("runtime terminated on an idle live feed instead of parking")
	case <-time.After(10 * time.Millisecond):
	}
	for i := total / 2; i < total; i++ {
		src.Push(switchnet.Flow{In: i % ports, Out: (i + 1) % ports, Demand: 1})
	}
	src.Close()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after the feed closed")
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if sum.Admitted != total || sum.Completed != total || sum.Pending != 0 {
		t.Fatalf("closed feed not fully drained: %+v", sum)
	}
}

// liveNoBatch is a live source without batch draining — an invalid
// combination (admission from a live feed must be non-blocking).
type liveNoBatch struct{ emptySource }

func (liveNoBatch) LiveFeed() bool { return true }

// TestLiveSourceRequiresBatch pins the construction-time check.
func TestLiveSourceRequiresBatch(t *testing.T) {
	if _, err := New(liveNoBatch{}, Config{
		Switch: switchnet.UnitSwitch(2),
		Policy: ByName("RoundRobin"),
	}); err == nil {
		t.Fatal("live source without PullBatch accepted")
	}
}

// TestAdmitConfigValidation pins the admission-mode construction errors
// and the flag spellings.
func TestAdmitConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Switch: switchnet.UnitSwitch(2), Policy: ByName("RoundRobin")}
	}
	cfg := base()
	cfg.Deadline = 5 // without AdmitDeadline
	if _, err := New(emptySource{}, cfg); err == nil {
		t.Fatal("Deadline without AdmitDeadline accepted")
	}
	cfg = base()
	cfg.Admit = AdmitDeadline // without a Deadline
	if _, err := New(emptySource{}, cfg); err == nil {
		t.Fatal("AdmitDeadline without a Deadline accepted")
	}
	cfg = base()
	cfg.Admit = AdmitMode(99)
	if _, err := New(emptySource{}, cfg); err == nil {
		t.Fatal("unknown admission mode accepted")
	}
	for _, mode := range []AdmitMode{AdmitLossless, AdmitDrop, AdmitDeadline} {
		got, err := ParseAdmitMode(mode.String())
		if err != nil || got != mode {
			t.Fatalf("ParseAdmitMode(%q) = %v, %v", mode.String(), got, err)
		}
	}
	if got, err := ParseAdmitMode(""); err != nil || got != AdmitLossless {
		t.Fatalf("empty spelling = %v, %v; want the lossless default", got, err)
	}
	if _, err := ParseAdmitMode("sometimes"); err == nil {
		t.Fatal("bogus spelling accepted")
	}
}
