package stream_test

import (
	"math/rand"
	"testing"

	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
	"flowsched/internal/verify"
	"flowsched/internal/workload"
)

// FuzzPolicyPicks throws random arrival patterns at a random native
// policy at a random shard count and checks the policy-independent
// scheduling invariants the runtime must uphold: no flow is served
// before its release or twice, per-round per-port scheduled demand never
// exceeds InCaps/OutCaps, every served flow is one the source actually
// emitted (picks cannot exceed the VOQ contents), the internal/verify
// oracle accepts every spot-check window, and the drain completes with
// every flow scheduled exactly once — with or without admission
// backpressure.
func FuzzPolicyPicks(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint16(300), uint8(2), uint8(0))
	f.Add(int64(7), uint8(1), uint8(1), uint16(500), uint8(4), uint8(1))
	f.Add(int64(3), uint8(2), uint8(2), uint16(200), uint8(1), uint8(2))
	f.Add(int64(11), uint8(3), uint8(1), uint16(900), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, polSel, kSel uint8, nSel uint16, portSel, demSel uint8) {
		names := stream.Names()
		name := names[int(polSel)%len(names)]
		K := []int{1, 2, 4}[int(kSel)%3]
		ports := int(portSel)%7 + 2 // 2..8
		dmax := int(demSel)%3 + 1   // 1..3
		n := int(nSel)%1200 + 1
		rng := rand.New(rand.NewSource(seed))

		// Random arrival pattern: bursts with random gaps, random
		// endpoints, demands in [1, dmax] on a capacity-dmax switch.
		sw := switchnet.NewSwitch(ports, ports, dmax)
		flows := make([]switchnet.Flow, n)
		rel := 0
		for i := range flows {
			if rng.Intn(3) == 0 {
				rel += rng.Intn(4)
			}
			flows[i] = switchnet.Flow{
				In:      rng.Intn(ports),
				Out:     rng.Intn(ports),
				Demand:  1 + rng.Intn(dmax),
				Release: rel,
			}
		}
		inst := &switchnet.Instance{Switch: sw, Flows: flows}
		src := workload.NewInstanceSource(inst)

		cfg := stream.Config{
			Switch:      sw,
			Policy:      stream.ByName(name),
			Shards:      K,
			VerifyEvery: 3,
		}
		if rng.Intn(2) == 0 {
			cfg.MaxPending = 8 + rng.Intn(64) // exercise backpressure
		}

		served := make([]bool, n)
		sched := switchnet.NewSchedule(n)
		loadIn := make([]int, ports)
		loadOut := make([]int, ports)
		curRound := -1
		cfg.OnSchedule = func(seq int64, fl switchnet.Flow, round int) {
			if seq < 0 || seq >= int64(n) {
				t.Fatalf("%s K=%d: served unknown seq %d", name, K, seq)
			}
			fi := src.Order()[seq]
			if served[fi] {
				t.Fatalf("%s K=%d: flow %d served twice", name, K, fi)
			}
			served[fi] = true
			if fl != flows[fi] {
				t.Fatalf("%s K=%d: served flow %+v != source flow %+v (pick outside VOQ contents)",
					name, K, fl, flows[fi])
			}
			if round < fl.Release {
				t.Fatalf("%s K=%d: flow %d served in round %d before release %d", name, K, fi, round, fl.Release)
			}
			if round < curRound {
				t.Fatalf("%s K=%d: serve rounds went backwards (%d after %d)", name, K, round, curRound)
			}
			if round > curRound {
				for p := range loadIn {
					loadIn[p], loadOut[p] = 0, 0
				}
				curRound = round
			}
			loadIn[fl.In] += fl.Demand
			loadOut[fl.Out] += fl.Demand
			if loadIn[fl.In] > sw.InCaps[fl.In] || loadOut[fl.Out] > sw.OutCaps[fl.Out] {
				t.Fatalf("%s K=%d: round %d overloads a port of flow %+v (in %d/%d, out %d/%d)",
					name, K, round, fl, loadIn[fl.In], sw.InCaps[fl.In], loadOut[fl.Out], sw.OutCaps[fl.Out])
			}
			sched.Round[fi] = round
		}

		rt, err := stream.New(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := rt.Run()
		if err != nil {
			t.Fatalf("%s K=%d: %v", name, K, err)
		}
		if sum.Completed != int64(n) {
			t.Fatalf("%s K=%d: completed %d of %d", name, K, sum.Completed, n)
		}
		for fi, ok := range served {
			if !ok {
				t.Fatalf("%s K=%d: flow %d never served", name, K, fi)
			}
		}
		if sum.WindowsVerified == 0 {
			t.Fatalf("%s K=%d: no verification windows ran", name, K)
		}
		if _, err := verify.CheckSchedule(inst, sched, sw.Caps()); err != nil {
			t.Fatalf("%s K=%d: schedule rejected by oracle: %v", name, K, err)
		}
	})
}
