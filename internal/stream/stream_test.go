package stream_test

import (
	"math/rand"
	"sync"
	"testing"

	"flowsched/internal/heuristics"
	"flowsched/internal/sim"
	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
	"flowsched/internal/verify"
	"flowsched/internal/workload"
)

// The workload sources must satisfy the runtime's Source contract.
var (
	_ stream.Source = (*workload.ArrivalSource)(nil)
	_ stream.Source = (*workload.TraceSource)(nil)
	_ stream.Source = (*workload.InstanceSource)(nil)
)

// sliceSource yields a fixed flow sequence, for adversarial inputs.
type sliceSource struct {
	flows []switchnet.Flow
	pos   int
}

func (s *sliceSource) Next() (switchnet.Flow, bool) {
	if s.pos >= len(s.flows) {
		return switchnet.Flow{}, false
	}
	f := s.flows[s.pos]
	s.pos++
	return f, true
}

func (s *sliceSource) Err() error { return nil }

// runStreamed replays inst through the runtime under pol and returns the
// reconstructed per-flow schedule and the final summary.
func runStreamed(t *testing.T, inst *switchnet.Instance, pol stream.Policy, cfg stream.Config) (*switchnet.Schedule, *stream.Summary) {
	t.Helper()
	src := workload.NewInstanceSource(inst)
	sched := switchnet.NewSchedule(inst.N())
	cfg.Switch = inst.Switch
	cfg.Policy = pol
	cfg.OnSchedule = func(seq int64, f switchnet.Flow, round int) {
		sched.Round[src.Order()[seq]] = round
	}
	rt, err := stream.New(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sched, sum
}

// TestStreamMatchesSim is the subsystem's core property: replaying a
// finite instance through the streaming runtime with a bridged simulator
// policy must reproduce internal/sim.Run flow for flow — same rounds, same
// metrics — whenever admission control never binds.
func TestStreamMatchesSim(t *testing.T) {
	configs := []workload.PoissonConfig{
		{M: 6, T: 8, Ports: 5},
		{M: 3, T: 5, Ports: 3},
		{M: 4, T: 6, Ports: 4, Cap: 3, MaxDemand: 3}, // general demands: first-fit paths
	}
	for _, cfg := range configs {
		for seed := int64(1); seed <= 4; seed++ {
			inst := cfg.Generate(rand.New(rand.NewSource(seed)))
			if inst.N() == 0 {
				continue
			}
			for _, pol := range heuristics.WithAblations() {
				simRes, err := sim.Run(inst, pol)
				if err != nil {
					t.Fatalf("sim.Run(%s, seed %d): %v", pol.Name(), seed, err)
				}
				sched, sum := runStreamed(t, inst, &stream.Bridge{P: pol},
					stream.Config{MaxPending: inst.N() + 1, VerifyEvery: 4})
				for f := range sched.Round {
					if sched.Round[f] != simRes.Schedule.Round[f] {
						t.Fatalf("%s seed %d: flow %d streamed to round %d, sim to %d",
							pol.Name(), seed, f, sched.Round[f], simRes.Schedule.Round[f])
					}
				}
				if int(sum.TotalResponse) != simRes.TotalResponse || sum.MaxResponse != simRes.MaxResponse {
					t.Fatalf("%s seed %d: streamed metrics (%d,%d) != sim (%d,%d)",
						pol.Name(), seed, sum.TotalResponse, sum.MaxResponse,
						simRes.TotalResponse, simRes.MaxResponse)
				}
				if sum.Round != simRes.Rounds {
					t.Fatalf("%s seed %d: streamed final round %d != sim rounds %d",
						pol.Name(), seed, sum.Round, simRes.Rounds)
				}
				if _, err := verify.CheckSchedule(inst, sched, inst.Switch.Caps()); err != nil {
					t.Fatalf("%s seed %d: streamed schedule rejected by oracle: %v", pol.Name(), seed, err)
				}
			}
		}
	}
}

// TestNativePoliciesFeasible drains random streams under the native
// policies with spot-check verification on every window.
func TestNativePoliciesFeasible(t *testing.T) {
	for _, pol := range []stream.Policy{&stream.RoundRobin{}, stream.FIFO{}} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := workload.PoissonConfig{M: 7, T: 12, Ports: 5, Cap: 2, MaxDemand: 2}
			inst := cfg.Generate(rand.New(rand.NewSource(seed)))
			if inst.N() == 0 {
				continue
			}
			sched, sum := runStreamed(t, inst, pol, stream.Config{VerifyEvery: 3})
			if !sched.Complete() {
				t.Fatalf("%s seed %d: incomplete schedule", pol.Name(), seed)
			}
			if _, err := verify.CheckSchedule(inst, sched, inst.Switch.Caps()); err != nil {
				t.Fatalf("%s seed %d: %v", pol.Name(), seed, err)
			}
			if sum.Completed != int64(inst.N()) {
				t.Fatalf("%s seed %d: completed %d of %d", pol.Name(), seed, sum.Completed, inst.N())
			}
			if sum.WindowsVerified == 0 {
				t.Fatalf("%s seed %d: no verification windows ran", pol.Name(), seed)
			}
		}
	}
}

// TestStreamBackpressure drives an overloaded switch through a tiny
// admission limit: the pending set must never exceed it, nothing may be
// dropped, and the stall is charged to response time, not hidden.
func TestStreamBackpressure(t *testing.T) {
	const maxPending = 16
	const flows = 500
	src := workload.NewArrivalSource(workload.ArrivalConfig{
		Ports: 2, M: 8, MaxFlows: flows,
	}, rand.New(rand.NewSource(7)))
	rt, err := stream.New(src, stream.Config{
		Switch:      src.Switch(),
		Policy:      &stream.RoundRobin{},
		MaxPending:  maxPending,
		VerifyEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != flows {
		t.Fatalf("completed %d of %d", sum.Completed, flows)
	}
	if sum.PeakPending > maxPending {
		t.Fatalf("peak pending %d exceeds admission limit %d", sum.PeakPending, maxPending)
	}
	if sum.Backpressured == 0 {
		t.Fatal("overloaded stream saw no backpressure")
	}
	if sum.MaxResponse <= 1 {
		t.Fatalf("overload must inflate response times, got max %d", sum.MaxResponse)
	}
}

// TestStreamSnapshotRace exercises concurrent Snapshot calls against a
// running drain (meaningful under -race).
func TestStreamSnapshotRace(t *testing.T) {
	src := workload.NewArrivalSource(workload.ArrivalConfig{
		Ports: 8, M: 8, MaxFlows: 20000,
	}, rand.New(rand.NewSource(3)))
	rt, err := stream.New(src, stream.Config{
		Switch: src.Switch(),
		Policy: &stream.RoundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					s := rt.Snapshot()
					if s.Completed > s.Admitted {
						t.Error("completed exceeds admitted")
						return
					}
				}
			}
		}()
	}
	sum, err := rt.Run()
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 20000 {
		t.Fatalf("completed %d of 20000", sum.Completed)
	}
}

// noopPolicy never schedules anything.
type noopPolicy struct{}

func (noopPolicy) Name() string      { return "noop" }
func (noopPolicy) Pick(*stream.View) {}

// TestStreamStallGuard aborts a policy that makes no progress.
func TestStreamStallGuard(t *testing.T) {
	src := &sliceSource{flows: []switchnet.Flow{{In: 0, Out: 0, Demand: 1, Release: 0}}}
	rt, err := stream.New(src, stream.Config{
		Switch:      switchnet.UnitSwitch(2),
		Policy:      noopPolicy{},
		StallRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil {
		t.Fatal("stalled run did not fail")
	}
}

// badIDPolicy takes a pending id that does not exist.
type badIDPolicy struct{}

func (badIDPolicy) Name() string { return "badID" }
func (badIDPolicy) Pick(v *stream.View) {
	v.Take(1 << 20)
}

// TestStreamRejectsBadPolicies covers the policy-contract failure paths.
func TestStreamRejectsBadPolicies(t *testing.T) {
	src := &sliceSource{flows: []switchnet.Flow{{In: 0, Out: 0, Demand: 1, Release: 0}}}
	rt, err := stream.New(src, stream.Config{Switch: switchnet.UnitSwitch(2), Policy: badIDPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil {
		t.Fatal("taking an invalid id did not fail the run")
	}
}

// TestStreamRejectsBadSources covers the admission validation paths.
func TestStreamRejectsBadSources(t *testing.T) {
	cases := []struct {
		name  string
		flows []switchnet.Flow
	}{
		{"decreasing release", []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 5},
			{In: 0, Out: 1, Demand: 1, Release: 2},
		}},
		{"zero demand", []switchnet.Flow{{In: 0, Out: 0, Demand: 0, Release: 0}}},
		{"demand above kappa", []switchnet.Flow{{In: 0, Out: 0, Demand: 2, Release: 0}}},
		{"port out of range", []switchnet.Flow{{In: 9, Out: 0, Demand: 1, Release: 0}}},
	}
	for _, tc := range cases {
		rt, err := stream.New(&sliceSource{flows: tc.flows}, stream.Config{
			Switch: switchnet.UnitSwitch(2),
			Policy: &stream.RoundRobin{},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(); err == nil {
			t.Errorf("%s: run did not fail", tc.name)
		}
	}
}

// TestStreamIdleGapJump: a sparse stream must jump over idle rounds, not
// iterate them — and with verification enabled, the jump must skip the
// empty windows in between in O(1), not flush them one by one (a release
// this large would otherwise hang the run).
func TestStreamIdleGapJump(t *testing.T) {
	src := &sliceSource{flows: []switchnet.Flow{
		{In: 0, Out: 0, Demand: 1, Release: 0},
		{In: 0, Out: 0, Demand: 1, Release: 1 << 40},
	}}
	_, sum := func() (*switchnet.Schedule, *stream.Summary) {
		rt, err := stream.New(src, stream.Config{Switch: switchnet.UnitSwitch(1), Policy: stream.FIFO{}, VerifyEvery: 64})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return nil, sum
	}()
	if sum.Rounds != 2 {
		t.Fatalf("processed %d rounds, want 2 (idle gap must be skipped)", sum.Rounds)
	}
	if sum.Round != 1<<40+1 {
		t.Fatalf("final round %d, want %d", sum.Round, 1<<40+1)
	}
	if sum.MaxResponse != 1 {
		t.Fatalf("max response %d, want 1", sum.MaxResponse)
	}
}

// TestStreamByName pins the native policy registry.
func TestStreamByName(t *testing.T) {
	if p := stream.ByName("RoundRobin"); p == nil || p.Name() != "RoundRobin" {
		t.Fatal("RoundRobin not resolvable")
	}
	if p := stream.ByName("StreamFIFO"); p == nil || p.Name() != "StreamFIFO" {
		t.Fatal("StreamFIFO not resolvable")
	}
	if p := stream.ByName("nope"); p != nil {
		t.Fatal("unknown name resolved")
	}
}
