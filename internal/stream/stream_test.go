package stream_test

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"flowsched/internal/heuristics"
	"flowsched/internal/sim"
	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
	"flowsched/internal/verify"
	"flowsched/internal/workload"
)

// The workload sources must satisfy the runtime's Source contract, and
// its batch-draining extension so admission amortizes interface calls.
var (
	_ stream.Source      = (*workload.ArrivalSource)(nil)
	_ stream.Source      = (*workload.TraceSource)(nil)
	_ stream.Source      = (*workload.InstanceSource)(nil)
	_ stream.BatchSource = (*workload.ArrivalSource)(nil)
	_ stream.BatchSource = (*workload.TraceSource)(nil)
	_ stream.BatchSource = (*workload.InstanceSource)(nil)
)

// sliceSource yields a fixed flow sequence, for adversarial inputs.
type sliceSource struct {
	flows []switchnet.Flow
	pos   int
}

func (s *sliceSource) Next() (switchnet.Flow, bool) {
	if s.pos >= len(s.flows) {
		return switchnet.Flow{}, false
	}
	f := s.flows[s.pos]
	s.pos++
	return f, true
}

func (s *sliceSource) Err() error { return nil }

// runStreamed replays inst through the runtime under pol and returns the
// reconstructed per-flow schedule and the final summary.
func runStreamed(t *testing.T, inst *switchnet.Instance, pol stream.Policy, cfg stream.Config) (*switchnet.Schedule, *stream.Summary) {
	t.Helper()
	src := workload.NewInstanceSource(inst)
	sched := switchnet.NewSchedule(inst.N())
	cfg.Switch = inst.Switch
	cfg.Policy = pol
	cfg.OnSchedule = func(seq int64, f switchnet.Flow, round int) {
		sched.Round[src.Order()[seq]] = round
	}
	rt, err := stream.New(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sched, sum
}

// TestStreamMatchesSim is the subsystem's core property: replaying a
// finite instance through the streaming runtime with a bridged simulator
// policy must reproduce internal/sim.Run flow for flow — same rounds, same
// metrics — whenever admission control never binds.
func TestStreamMatchesSim(t *testing.T) {
	configs := []workload.PoissonConfig{
		{M: 6, T: 8, Ports: 5},
		{M: 3, T: 5, Ports: 3},
		{M: 4, T: 6, Ports: 4, Cap: 3, MaxDemand: 3}, // general demands: first-fit paths
	}
	for _, cfg := range configs {
		for seed := int64(1); seed <= 4; seed++ {
			inst := cfg.Generate(rand.New(rand.NewSource(seed)))
			if inst.N() == 0 {
				continue
			}
			for _, pol := range heuristics.WithAblations() {
				simRes, err := sim.Run(inst, pol)
				if err != nil {
					t.Fatalf("sim.Run(%s, seed %d): %v", pol.Name(), seed, err)
				}
				sched, sum := runStreamed(t, inst, &stream.Bridge{P: pol},
					stream.Config{MaxPending: inst.N() + 1, VerifyEvery: 4})
				for f := range sched.Round {
					if sched.Round[f] != simRes.Schedule.Round[f] {
						t.Fatalf("%s seed %d: flow %d streamed to round %d, sim to %d",
							pol.Name(), seed, f, sched.Round[f], simRes.Schedule.Round[f])
					}
				}
				if int(sum.TotalResponse) != simRes.TotalResponse || sum.MaxResponse != simRes.MaxResponse {
					t.Fatalf("%s seed %d: streamed metrics (%d,%d) != sim (%d,%d)",
						pol.Name(), seed, sum.TotalResponse, sum.MaxResponse,
						simRes.TotalResponse, simRes.MaxResponse)
				}
				if sum.Round != simRes.Rounds {
					t.Fatalf("%s seed %d: streamed final round %d != sim rounds %d",
						pol.Name(), seed, sum.Round, simRes.Rounds)
				}
				if _, err := verify.CheckSchedule(inst, sched, inst.Switch.Caps()); err != nil {
					t.Fatalf("%s seed %d: streamed schedule rejected by oracle: %v", pol.Name(), seed, err)
				}
			}
		}
	}
}

// agePortOrder is the MinRTime-style reference policy for the
// OldestFirst differential test: greedy first-fit over the whole pending
// set ordered by (release, input, output, flow index) — MinRTime's
// age-first priorities (the GreedyAge ablation's selection rule) with
// the deterministic port-order tie-break OldestFirst uses, expressed the
// expensive way: a full rescan and sort of the pending set every round.
type agePortOrder struct{}

func (agePortOrder) Name() string { return "AgePortOrder" }

func (agePortOrder) Pick(s *sim.State) []int {
	order := make([]int, len(s.Pending))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := s.Pending[order[x]], s.Pending[order[y]]
		if a.Release != b.Release {
			return a.Release < b.Release
		}
		if a.In != b.In {
			return a.In < b.In
		}
		if a.Out != b.Out {
			return a.Out < b.Out
		}
		return a.Flow < b.Flow
	})
	loadIn := make([]int, s.Switch.NumIn())
	loadOut := make([]int, s.Switch.NumOut())
	var picks []int
	for _, i := range order {
		p := s.Pending[i]
		if loadIn[p.In]+p.Demand <= s.Switch.InCaps[p.In] && loadOut[p.Out]+p.Demand <= s.Switch.OutCaps[p.Out] {
			loadIn[p.In] += p.Demand
			loadOut[p.Out] += p.Demand
			picks = append(picks, i)
		}
	}
	return picks
}

// TestOldestFirstMatchesBridgedMinRTimeStyle is the tentpole's
// differential property: on replayed unit-demand finite instances the
// native OldestFirst policy must reproduce, round for round, the bridged
// MinRTime-style simulator policy — agePortOrder, which keeps MinRTime's
// age-ordered priorities (the GreedyAge ablation's greedy maximal
// selection, with OldestFirst's port-order tie-break) but pays a full
// pending rescan per round — and sim.Run of that policy too
// (TestStreamMatchesSim pins Bridge == sim.Run for any sim policy). Unit
// demands make the comparison exact: every flow behind a blocked VOQ
// head shares its ports and demand, so the bridged first-fit over the
// whole pending set rejects exactly the flows OldestFirst never visits.
// The equivalence is what "the fast path runs a paper-grade policy"
// means — same schedule, O(active VOQs + span) per round instead of an
// O(pending log pending) rescan.
func TestOldestFirstMatchesBridgedMinRTimeStyle(t *testing.T) {
	configs := []workload.PoissonConfig{
		{M: 6, T: 8, Ports: 5},
		{M: 3, T: 5, Ports: 3},
		{M: 12, T: 10, Ports: 4}, // overloaded: deep VOQs, long drain tail
	}
	for _, cfg := range configs {
		for seed := int64(1); seed <= 6; seed++ {
			inst := cfg.Generate(rand.New(rand.NewSource(seed)))
			if inst.N() == 0 {
				continue
			}
			simRes, err := sim.Run(inst, agePortOrder{})
			if err != nil {
				t.Fatal(err)
			}
			bridged, _ := runStreamed(t, inst, &stream.Bridge{P: agePortOrder{}},
				stream.Config{VerifyEvery: 4})
			native, sum := runStreamed(t, inst, &stream.OldestFirst{},
				stream.Config{VerifyEvery: 4})
			for f := range native.Round {
				if native.Round[f] != bridged.Round[f] || native.Round[f] != simRes.Schedule.Round[f] {
					t.Fatalf("M=%g seed %d: flow %d — OldestFirst round %d, bridged AgePortOrder %d, sim %d",
						cfg.M, seed, f, native.Round[f], bridged.Round[f], simRes.Schedule.Round[f])
				}
			}
			if int(sum.TotalResponse) != simRes.TotalResponse || sum.MaxResponse != simRes.MaxResponse {
				t.Fatalf("M=%g seed %d: OldestFirst metrics (%d,%d) != sim (%d,%d)",
					cfg.M, seed, sum.TotalResponse, sum.MaxResponse,
					simRes.TotalResponse, simRes.MaxResponse)
			}
			if _, err := verify.CheckSchedule(inst, native, inst.Switch.Caps()); err != nil {
				t.Fatalf("M=%g seed %d: OldestFirst schedule rejected by oracle: %v", cfg.M, seed, err)
			}
		}
	}
}

// nativePolicies returns one fresh instance of every native streaming
// policy, via the registry the runtime and flowsim resolve from.
func nativePolicies(t *testing.T) []stream.Policy {
	t.Helper()
	var pols []stream.Policy
	for _, name := range stream.Names() {
		p := stream.ByName(name)
		if p == nil {
			t.Fatalf("registry name %q does not resolve", name)
		}
		pols = append(pols, p)
	}
	return pols
}

// TestNativePoliciesFeasible drains random streams under the native
// policies with spot-check verification on every window.
func TestNativePoliciesFeasible(t *testing.T) {
	for _, pol := range nativePolicies(t) {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := workload.PoissonConfig{M: 7, T: 12, Ports: 5, Cap: 2, MaxDemand: 2}
			inst := cfg.Generate(rand.New(rand.NewSource(seed)))
			if inst.N() == 0 {
				continue
			}
			sched, sum := runStreamed(t, inst, pol, stream.Config{VerifyEvery: 3})
			if !sched.Complete() {
				t.Fatalf("%s seed %d: incomplete schedule", pol.Name(), seed)
			}
			if _, err := verify.CheckSchedule(inst, sched, inst.Switch.Caps()); err != nil {
				t.Fatalf("%s seed %d: %v", pol.Name(), seed, err)
			}
			if sum.Completed != int64(inst.N()) {
				t.Fatalf("%s seed %d: completed %d of %d", pol.Name(), seed, sum.Completed, inst.N())
			}
			if sum.WindowsVerified == 0 {
				t.Fatalf("%s seed %d: no verification windows ran", pol.Name(), seed)
			}
		}
	}
}

// TestStreamBackpressure drives an overloaded switch through a tiny
// admission limit: the pending set must never exceed it, nothing may be
// dropped, and the stall is charged to response time, not hidden.
func TestStreamBackpressure(t *testing.T) {
	const maxPending = 16
	const flows = 500
	src := workload.NewArrivalSource(workload.ArrivalConfig{
		Ports: 2, M: 8, MaxFlows: flows,
	}, rand.New(rand.NewSource(7)))
	rt, err := stream.New(src, stream.Config{
		Switch:      src.Switch(),
		Policy:      &stream.RoundRobin{},
		MaxPending:  maxPending,
		VerifyEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != flows {
		t.Fatalf("completed %d of %d", sum.Completed, flows)
	}
	if sum.PeakPending > maxPending {
		t.Fatalf("peak pending %d exceeds admission limit %d", sum.PeakPending, maxPending)
	}
	if sum.Backpressured == 0 {
		t.Fatal("overloaded stream saw no backpressure")
	}
	if sum.MaxResponse <= 1 {
		t.Fatalf("overload must inflate response times, got max %d", sum.MaxResponse)
	}
}

// TestStreamSnapshotRace exercises concurrent Snapshot calls against a
// running drain (meaningful under -race).
func TestStreamSnapshotRace(t *testing.T) {
	src := workload.NewArrivalSource(workload.ArrivalConfig{
		Ports: 8, M: 8, MaxFlows: 20000,
	}, rand.New(rand.NewSource(3)))
	rt, err := stream.New(src, stream.Config{
		Switch: src.Switch(),
		Policy: &stream.RoundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					s := rt.Snapshot()
					if s.Completed > s.Admitted {
						t.Error("completed exceeds admitted")
						return
					}
				}
			}
		}()
	}
	sum, err := rt.Run()
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 20000 {
		t.Fatalf("completed %d of 20000", sum.Completed)
	}
}

// noopPolicy never schedules anything.
type noopPolicy struct{}

func (noopPolicy) Name() string      { return "noop" }
func (noopPolicy) Pick(*stream.View) {}

// TestStreamStallGuard aborts a policy that makes no progress.
func TestStreamStallGuard(t *testing.T) {
	src := &sliceSource{flows: []switchnet.Flow{{In: 0, Out: 0, Demand: 1, Release: 0}}}
	rt, err := stream.New(src, stream.Config{
		Switch:      switchnet.UnitSwitch(2),
		Policy:      noopPolicy{},
		StallRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil {
		t.Fatal("stalled run did not fail")
	}
}

// badIDPolicy takes a pending id that does not exist.
type badIDPolicy struct{}

func (badIDPolicy) Name() string { return "badID" }
func (badIDPolicy) Pick(v *stream.View) {
	v.Take(1 << 20)
}

// TestStreamRejectsBadPolicies covers the policy-contract failure paths.
func TestStreamRejectsBadPolicies(t *testing.T) {
	src := &sliceSource{flows: []switchnet.Flow{{In: 0, Out: 0, Demand: 1, Release: 0}}}
	rt, err := stream.New(src, stream.Config{Switch: switchnet.UnitSwitch(2), Policy: badIDPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil {
		t.Fatal("taking an invalid id did not fail the run")
	}
}

// TestStreamRejectsBadSources covers the admission validation paths.
func TestStreamRejectsBadSources(t *testing.T) {
	cases := []struct {
		name  string
		flows []switchnet.Flow
	}{
		{"decreasing release", []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 5},
			{In: 0, Out: 1, Demand: 1, Release: 2},
		}},
		{"zero demand", []switchnet.Flow{{In: 0, Out: 0, Demand: 0, Release: 0}}},
		{"demand above kappa", []switchnet.Flow{{In: 0, Out: 0, Demand: 2, Release: 0}}},
		{"port out of range", []switchnet.Flow{{In: 9, Out: 0, Demand: 1, Release: 0}}},
	}
	for _, tc := range cases {
		rt, err := stream.New(&sliceSource{flows: tc.flows}, stream.Config{
			Switch: switchnet.UnitSwitch(2),
			Policy: &stream.RoundRobin{},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(); err == nil {
			t.Errorf("%s: run did not fail", tc.name)
		}
	}
}

// TestStreamIdleGapJump: a sparse stream must jump over idle rounds, not
// iterate them — and with verification enabled, the jump must skip the
// empty windows in between in O(1), not flush them one by one (a release
// this large would otherwise hang the run).
func TestStreamIdleGapJump(t *testing.T) {
	src := &sliceSource{flows: []switchnet.Flow{
		{In: 0, Out: 0, Demand: 1, Release: 0},
		{In: 0, Out: 0, Demand: 1, Release: 1 << 40},
	}}
	_, sum := func() (*switchnet.Schedule, *stream.Summary) {
		rt, err := stream.New(src, stream.Config{Switch: switchnet.UnitSwitch(1), Policy: stream.FIFO{}, VerifyEvery: 64})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return nil, sum
	}()
	if sum.Rounds != 2 {
		t.Fatalf("processed %d rounds, want 2 (idle gap must be skipped)", sum.Rounds)
	}
	if sum.Round != 1<<40+1 {
		t.Fatalf("final round %d, want %d", sum.Round, 1<<40+1)
	}
	if sum.MaxResponse != 1 {
		t.Fatalf("max response %d, want 1", sum.MaxResponse)
	}
}

// TestStreamByName pins the native policy registry: Names lists exactly
// the resolvable policies, every resolved policy reports its registry
// name, consecutive resolutions are distinct instances (no shared
// rotation state between runtimes), and unknown names stay nil.
func TestStreamByName(t *testing.T) {
	want := []string{"RoundRobin", "OldestFirst", "WeightedISLIP", "StreamFIFO"}
	got := stream.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
		p := stream.ByName(name)
		if p == nil || p.Name() != name {
			t.Fatalf("%s not resolvable to itself", name)
		}
		if q := stream.ByName(name); q == p && name != "StreamFIFO" {
			// FIFO is a stateless value type, so equality is fine there;
			// the stateful policies must come out as fresh instances.
			t.Fatalf("%s: ByName returned a shared instance", name)
		}
	}
	if p := stream.ByName("nope"); p != nil {
		t.Fatal("unknown name resolved")
	}
	if p := stream.ByName("MinRTime"); p != nil {
		t.Fatal("simulator policy resolved natively (must go through Bridge)")
	}
}

// TestRoundRobinExactRotation pins the fixed pointer semantics: the
// pointer stores the last-served output *port* and resumes at its
// successor in port order, so with three persistently-active VOQs at one
// input the service sequence is a perfect port-order rotation. (The old
// pointer stored a *position* in the swap-delete-reordered active list,
// which drifts off port order as soon as the list churns.)
func TestRoundRobinExactRotation(t *testing.T) {
	var flows []switchnet.Flow
	for i := 0; i < 3; i++ {
		for _, out := range []int{1, 4, 7} {
			flows = append(flows, switchnet.Flow{In: 0, Out: out, Demand: 1, Release: 0})
		}
	}
	var got []int
	rt, err := stream.New(&sliceSource{flows: flows}, stream.Config{
		Switch: switchnet.NewSwitch(1, 8, 1),
		Policy: &stream.RoundRobin{},
		OnSchedule: func(_ int64, f switchnet.Flow, round int) {
			if round != len(got) {
				t.Fatalf("round %d served out of order (have %d serves)", round, len(got))
			}
			got = append(got, f.Out)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 7, 1, 4, 7, 1, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("served %d flows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service sequence %v, want perfect rotation %v", got, want)
		}
	}
}

// TestRoundRobinFairUnderChurn is the fairness regression test for the
// rotation-pointer fix: under random VOQ churn (queues emptying and
// refilling, so the active list swap-deletes constantly) no VOQ may be
// overtaken — between two consecutive serves of the same output, every
// other output whose VOQ stayed non-empty throughout must be served at
// least once. Port-order rotation guarantees it; the old position-based
// pointer does not survive the list reordering.
func TestRoundRobinFairUnderChurn(t *testing.T) {
	const (
		outs  = 6
		total = 240
	)
	rng := rand.New(rand.NewSource(11))
	var flows []switchnet.Flow
	for i := 0; i < total; i++ {
		flows = append(flows, switchnet.Flow{In: 0, Out: rng.Intn(outs), Demand: 1, Release: i / 2})
	}

	type serve struct{ round, out int }
	var serves []serve
	rt, err := stream.New(&sliceSource{flows: flows}, stream.Config{
		Switch: switchnet.NewSwitch(1, outs, 1),
		Policy: &stream.RoundRobin{},
		OnSchedule: func(_ int64, f switchnet.Flow, round int) {
			serves = append(serves, serve{round, f.Out})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(serves) != total {
		t.Fatalf("served %d of %d flows", len(serves), total)
	}

	// Replay queue depths: depthAtPick[r][o] is VOQ (0, o)'s depth when
	// the policy ran in round r (after that round's arrivals).
	maxRound := serves[len(serves)-1].round
	depthAtPick := make([][outs]int, maxRound+1)
	var depth [outs]int
	servedAt := make(map[int]int, len(serves)) // round -> out
	for _, s := range serves {
		servedAt[s.round] = s.out
	}
	next := 0
	for r := 0; r <= maxRound; r++ {
		for next < len(flows) && flows[next].Release <= r {
			depth[flows[next].Out]++
			next++
		}
		depthAtPick[r] = depth
		if o, ok := servedAt[r]; ok {
			depth[o]--
		} else {
			t.Fatalf("round %d served nothing with flows pending", r)
		}
	}

	// The no-overtake invariant, per output.
	for o := 0; o < outs; o++ {
		prev := -1
		for _, s := range serves {
			if s.out != o {
				continue
			}
			if prev >= 0 {
				for other := 0; other < outs; other++ {
					if other == o {
						continue
					}
					active := true
					served := false
					for r := prev + 1; r <= s.round; r++ {
						if depthAtPick[r][other] == 0 {
							active = false
							break
						}
						if servedAt[r] == other {
							served = true
						}
					}
					if active && !served {
						t.Fatalf("output %d served twice (rounds %d and %d) while output %d stayed active unserved",
							o, prev, s.round, other)
					}
				}
			}
			prev = s.round
		}
	}
}

// TestWeightedISLIPServesOldestHeadUnderChurn is the starvation/
// no-overtake regression test for the age-weighted policies, mirroring
// the PR 3 RoundRobin churn test: under adversarial VOQ churn (queues
// constantly emptying and refilling, so the active lists swap-delete
// every round, plus a persistently hot VOQ) a single unit-capacity input
// must always serve the globally oldest head — no VOQ is ever served
// while an older head waits at another VOQ, which is the age-weighted
// analogue of rotation fairness and the property that makes starvation
// impossible (a waiting head only gets older until nothing outranks it).
// The same replay also pins FIFO-within-VOQ: every served flow is its
// queue's head.
func TestWeightedISLIPServesOldestHeadUnderChurn(t *testing.T) {
	const outs = 6
	const total = 300
	cfg := workload.ChurnConfig{Outs: outs, PerRound: 2, HotOuts: 1, MaxFlows: total}
	for _, mk := range []func() stream.Policy{
		func() stream.Policy { return &stream.WeightedISLIP{} },
		func() stream.Policy { return &stream.OldestFirst{} }, // same guarantee, same harness
	} {
		pol := mk()
		// Replay copy: the churn source is deterministic per seed, so a
		// second instance yields the exact flow sequence the runtime saw.
		replay := workload.NewChurnSource(cfg, rand.New(rand.NewSource(11)))
		var flows []switchnet.Flow
		for {
			f, ok := replay.Next()
			if !ok {
				break
			}
			flows = append(flows, f)
		}

		type serve struct {
			round int
			seq   int64
		}
		var serves []serve
		src := workload.NewChurnSource(cfg, rand.New(rand.NewSource(11)))
		rt, err := stream.New(src, stream.Config{
			Switch: src.Switch(),
			Policy: pol,
			Shards: 1,
			OnSchedule: func(seq int64, _ switchnet.Flow, round int) {
				serves = append(serves, serve{round, seq})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if len(serves) != total {
			t.Fatalf("%s: served %d of %d flows", pol.Name(), len(serves), total)
		}

		// Replay the VOQ contents round by round: heads[o] is the front of
		// queue (0, o); the served flow must be its queue's head and at
		// least as old as every other queue's head at pick time.
		queues := make([][]int64, outs) // per out: pending seqs in FIFO order
		next := 0
		si := 0
		lastRel := -1
		for r := 0; si < len(serves); r++ {
			for next < len(flows) && flows[next].Release <= r {
				queues[flows[next].Out] = append(queues[flows[next].Out], int64(next))
				next++
			}
			if serves[si].round != r {
				// Unit input capacity and pending flows: the policy must
				// serve every round until drained.
				pending := 0
				for o := 0; o < outs; o++ {
					pending += len(queues[o])
				}
				if pending > 0 {
					t.Fatalf("%s: round %d served nothing with %d flows pending", pol.Name(), r, pending)
				}
				continue
			}
			sv := serves[si]
			si++
			out := flows[sv.seq].Out
			if len(queues[out]) == 0 || queues[out][0] != sv.seq {
				t.Fatalf("%s: round %d served seq %d which is not the head of VOQ %d (overtake within the queue)",
					pol.Name(), r, sv.seq, out)
			}
			rel := flows[sv.seq].Release
			if rel < lastRel {
				t.Fatalf("%s: round %d served release %d after release %d (global age order violated)",
					pol.Name(), r, rel, lastRel)
			}
			lastRel = rel
			for o := 0; o < outs; o++ {
				if o == out || len(queues[o]) == 0 {
					continue
				}
				if head := flows[queues[o][0]].Release; head < rel {
					t.Fatalf("%s: round %d served VOQ %d (head release %d) while VOQ %d's older head (release %d) waited",
						pol.Name(), r, out, rel, o, head)
				}
			}
			queues[out] = queues[out][1:]
		}
	}
}

// TestStreamStallAbortsExactly pins the stall guard to the documented
// count: with StallRounds = N the run aborts after exactly N consecutive
// empty rounds, not N+1.
func TestStreamStallAbortsExactly(t *testing.T) {
	const stallRounds = 7
	src := &sliceSource{flows: []switchnet.Flow{{In: 0, Out: 0, Demand: 1, Release: 0}}}
	rt, err := stream.New(src, stream.Config{
		Switch:      switchnet.UnitSwitch(2),
		Policy:      noopPolicy{},
		StallRounds: stallRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run()
	if err == nil {
		t.Fatal("stalled run did not fail")
	}
	if !strings.Contains(err.Error(), "for 7 consecutive rounds") {
		t.Fatalf("stall error does not report the exact round count: %v", err)
	}
	if got := rt.Snapshot().Rounds; got != stallRounds {
		t.Fatalf("aborted after %d processed rounds, want exactly %d", got, stallRounds)
	}
}

// scribblePolicy wraps a sim.Policy and vandalizes the QueueIn/QueueOut
// slices it was handed after computing its picks. A correct Bridge hands
// the policy private copies, so the vandalism must never reach the
// runtime's live port counters.
type scribblePolicy struct{ p sim.Policy }

func (s scribblePolicy) Name() string { return s.p.Name() }
func (s scribblePolicy) Pick(st *sim.State) []int {
	picks := s.p.Pick(st)
	for i := range st.QueueIn {
		st.QueueIn[i] = -1 << 20
	}
	for j := range st.QueueOut {
		st.QueueOut[j] = 1 << 20
	}
	return picks
}

// TestBridgeOwnsQueueScratch: a bridged policy that mutates its sim.State
// queue slices must not corrupt the runtime — the streamed schedule must
// still match sim.Run of the unwrapped policy flow for flow. MaxWeight
// weighs by queue depth, so any leak of the scribbled values changes its
// matchings immediately.
func TestBridgeOwnsQueueScratch(t *testing.T) {
	cfg := workload.PoissonConfig{M: 6, T: 8, Ports: 5}
	for seed := int64(1); seed <= 3; seed++ {
		inst := cfg.Generate(rand.New(rand.NewSource(seed)))
		if inst.N() == 0 {
			continue
		}
		simRes, err := sim.Run(inst, heuristics.MaxWeight{})
		if err != nil {
			t.Fatal(err)
		}
		sched, sum := runStreamed(t, inst, &stream.Bridge{P: scribblePolicy{heuristics.MaxWeight{}}},
			stream.Config{VerifyEvery: 4})
		for f := range sched.Round {
			if sched.Round[f] != simRes.Schedule.Round[f] {
				t.Fatalf("seed %d: flow %d streamed to round %d, sim to %d (scribbled queues leaked into the runtime)",
					seed, f, sched.Round[f], simRes.Schedule.Round[f])
			}
		}
		if int(sum.TotalResponse) != simRes.TotalResponse {
			t.Fatalf("seed %d: streamed total response %d != sim %d", seed, sum.TotalResponse, simRes.TotalResponse)
		}
	}
}

// youngestFirst takes pending flows newest-first — the adversarial access
// pattern for the runtime's VOQ storage, since every take removes from the
// tail of its queue while older flows stay pending (out-of-FIFO-order
// departures are the tombstone path of the pooled ring-buffer blocks).
type youngestFirst struct{ ids []stream.ID }

func (*youngestFirst) Name() string { return "youngestFirst" }
func (p *youngestFirst) Pick(v *stream.View) {
	p.ids = p.ids[:0]
	v.Each(func(id stream.ID, _ int64, _ switchnet.Flow) bool {
		p.ids = append(p.ids, id)
		return true
	})
	for i := len(p.ids) - 1; i >= 0; i-- {
		v.Take(p.ids[i])
	}
}

// TestStreamYoungestFirstDrain drains a long same-VOQ backlog newest-first
// with verification on: the runtime must keep FIFO iteration coherent
// (VOQHead stays the oldest pending flow) while tombstones accumulate and
// compact, and the resulting schedule must still pass the oracle.
func TestStreamYoungestFirstDrain(t *testing.T) {
	const flows = 160
	var fs []switchnet.Flow
	for i := 0; i < flows; i++ {
		fs = append(fs, switchnet.Flow{In: 0, Out: 0, Demand: 1, Release: 0})
	}
	inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(2), Flows: fs}
	sched, sum := runStreamed(t, inst, &youngestFirst{}, stream.Config{VerifyEvery: 7})
	if sum.Completed != flows {
		t.Fatalf("completed %d of %d", sum.Completed, flows)
	}
	if !sched.Complete() {
		t.Fatal("incomplete schedule")
	}
	if _, err := verify.CheckSchedule(inst, sched, inst.Switch.Caps()); err != nil {
		t.Fatal(err)
	}
	// Newest-first on one unit-capacity VOQ is exactly LIFO: the oldest
	// flow waits for everyone, the last arrival goes first.
	if sum.MaxResponse != flows {
		t.Fatalf("max response %d, want %d (oldest flow drains last)", sum.MaxResponse, flows)
	}
}

// TestStreamShardedCrossK is the sharding equivalence property: replaying
// the same finite instances at K in {1, 2, 4} must stay verifier-clean
// with identical Admitted/Completed totals, and every (policy, K) run
// must be deterministic — two runs produce bit-identical schedules.
func TestStreamShardedCrossK(t *testing.T) {
	cfg := workload.PoissonConfig{M: 8, T: 12, Ports: 6, Cap: 2, MaxDemand: 2}
	var policies []func() stream.Policy
	for _, name := range stream.Names() {
		policies = append(policies, func() stream.Policy { return stream.ByName(name) })
	}
	for seed := int64(1); seed <= 3; seed++ {
		inst := cfg.Generate(rand.New(rand.NewSource(seed)))
		if inst.N() == 0 {
			continue
		}
		for _, mk := range policies {
			name := mk().Name()
			for _, K := range []int{1, 2, 4} {
				first, sum := runStreamed(t, inst, mk(), stream.Config{Shards: K, VerifyEvery: 5})
				if sum.Shards != K {
					t.Fatalf("%s seed %d: ran with %d shards, want %d", name, seed, sum.Shards, K)
				}
				if sum.Admitted != int64(inst.N()) || sum.Completed != int64(inst.N()) {
					t.Fatalf("%s seed %d K=%d: admitted %d / completed %d of %d",
						name, seed, K, sum.Admitted, sum.Completed, inst.N())
				}
				if !first.Complete() {
					t.Fatalf("%s seed %d K=%d: incomplete schedule", name, seed, K)
				}
				if _, err := verify.CheckSchedule(inst, first, inst.Switch.Caps()); err != nil {
					t.Fatalf("%s seed %d K=%d: schedule rejected by oracle: %v", name, seed, K, err)
				}
				if sum.WindowsVerified == 0 {
					t.Fatalf("%s seed %d K=%d: no verification windows ran", name, seed, K)
				}
				again, _ := runStreamed(t, inst, mk(), stream.Config{Shards: K, VerifyEvery: 5})
				for f := range first.Round {
					if first.Round[f] != again.Round[f] {
						t.Fatalf("%s seed %d K=%d: nondeterministic — flow %d at round %d then %d",
							name, seed, K, f, first.Round[f], again.Round[f])
					}
				}
			}
		}
	}
}

// TestStreamShardedBackpressure drives an overloaded switch through a tiny
// admission limit with a sharded runtime: the global pending bound must
// hold across shards and nothing may be dropped.
func TestStreamShardedBackpressure(t *testing.T) {
	const maxPending = 32
	const flows = 2000
	src := workload.NewArrivalSource(workload.ArrivalConfig{
		Ports: 8, M: 12, MaxFlows: flows,
	}, rand.New(rand.NewSource(5)))
	rt, err := stream.New(src, stream.Config{
		Switch:      src.Switch(),
		Policy:      &stream.RoundRobin{},
		Shards:      4,
		MaxPending:  maxPending,
		VerifyEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != flows {
		t.Fatalf("completed %d of %d", sum.Completed, flows)
	}
	if sum.PeakPending > maxPending {
		t.Fatalf("peak pending %d exceeds admission limit %d", sum.PeakPending, maxPending)
	}
	if sum.Backpressured == 0 {
		t.Fatal("overloaded stream saw no backpressure")
	}
	if sum.WindowsVerified == 0 {
		t.Fatal("no verification windows ran")
	}
}

// TestStreamShardedSnapshotRace exercises concurrent Snapshot calls
// against a sharded drain: the worker pool, the per-shard metric merges,
// and the coordinator counters all run under the race detector.
func TestStreamShardedSnapshotRace(t *testing.T) {
	src := workload.NewArrivalSource(workload.ArrivalConfig{
		Ports: 8, M: 8, MaxFlows: 20000,
	}, rand.New(rand.NewSource(3)))
	rt, err := stream.New(src, stream.Config{
		Switch: src.Switch(),
		Policy: &stream.RoundRobin{},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Poll rather than busy-spin: on a single-core box a hot
			// Snapshot loop starves the coordinator's worker handoffs.
			tick := time.NewTicker(200 * time.Microsecond)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					s := rt.Snapshot()
					if s.Completed > s.Admitted {
						t.Error("completed exceeds admitted")
						return
					}
				}
			}
		}()
	}
	sum, err := rt.Run()
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 20000 {
		t.Fatalf("completed %d of 20000", sum.Completed)
	}
}

// TestShardedRejectsUnshardablePolicy: bridged simulator policies need the
// whole pending set, so explicitly requesting shards with one must be a
// construction error, and defaulted shard counts must quietly stay at 1.
func TestShardedRejectsUnshardablePolicy(t *testing.T) {
	src := &sliceSource{}
	if _, err := stream.New(src, stream.Config{
		Switch: switchnet.UnitSwitch(4),
		Policy: &stream.Bridge{P: heuristics.MaxWeight{}},
		Shards: 2,
	}); err == nil {
		t.Fatal("sharded Bridge construction did not fail")
	}
	rt, err := stream.New(src, stream.Config{
		Switch: switchnet.UnitSwitch(4),
		Policy: &stream.Bridge{P: heuristics.MaxWeight{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Snapshot().Shards; got != 1 {
		t.Fatalf("defaulted Bridge runtime has %d shards, want 1", got)
	}
	for _, name := range stream.Names() {
		if _, ok := stream.ByName(name).(stream.Shardable); !ok {
			t.Fatalf("native policy %s is not Shardable", name)
		}
	}
}

// TestShardedReconcileDrainsPastTakenHead: a VOQ head scheduled in the
// propose pass is not a blocked head — the reconcile pass must drain the
// leftover output capacity behind it. Two unit flows on the same port
// pair of a capacity-2 switch must both go in round 0 at any shard count,
// exactly as an unsharded run schedules them.
func TestShardedReconcileDrainsPastTakenHead(t *testing.T) {
	for _, K := range []int{1, 2} {
		flows := []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 0, Out: 0, Demand: 1, Release: 0},
		}
		rounds := make([]int, 0, 2)
		rt, err := stream.New(&sliceSource{flows: flows}, stream.Config{
			Switch: switchnet.NewSwitch(2, 2, 2),
			Policy: &stream.RoundRobin{},
			Shards: K,
			OnSchedule: func(_ int64, _ switchnet.Flow, round int) {
				rounds = append(rounds, round)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		for _, r := range rounds {
			if r != 0 {
				t.Fatalf("K=%d: scheduled rounds %v, want both in round 0 (reconcile idled capacity)", K, rounds)
			}
		}
	}
}
