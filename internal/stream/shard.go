package stream

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"flowsched/internal/stats"
	"flowsched/internal/switchnet"
)

// Coordinator-to-shard phase requests (see Runtime.runPhase).
const (
	// phaseRound is the fused per-round phase: retire the previous round's
	// settled picks, admit routed arrivals, and propose picks against the
	// shard's carved output budgets — one parallel section, one barrier.
	phaseRound = iota + 1
	// phaseApply retires owed picks without starting a new round; the
	// coordinator uses it to settle state before a verification-window
	// flush, an idle jump, or the end of the run.
	phaseApply
	// phaseReconcile runs the shard's pickShared leg of the pipelined
	// reconcile pass: the shard waits on its predecessor's token (per the
	// coordinator-assigned reconPos order), picks against the shared
	// leftover pool, and hands the token to its successor — a shard-to-
	// shard chain instead of a coordinator-serial sweep.
	phaseReconcile
)

// View.OutputFree semantics, per pick pass (see shard.do).
const (
	// pickBudget: OutputFree is the shard's remaining carved budget.
	pickBudget = iota + 1
	// pickShared: OutputFree is the reconciled global leftover pool.
	pickShared
)

// arrival is one admitted flow routed to a shard by the coordinator, with
// its global admission sequence number.
type arrival struct {
	flow switchnet.Flow
	seq  int64
}

// shard owns the pending state of the input ports congruent to idx modulo
// Runtime.nshards: their arena, admission-order sublist, VOQ block
// chains, load tallies, policy instance, metric counters and window
// sketch, and verification buffer. During the fused round phase shards
// touch only their own state (plus read-only Runtime config), so the
// phase runs concurrently without locks; the reconcile pass runs as a
// pipelined shard-to-shard token chain in a coordinator-chosen
// deterministic order (see Runtime.reconcile).
type shard struct {
	rt  *Runtime
	idx int
	pol Policy

	// Pending arena; head/tail delimit the shard's admission-order
	// sublist.
	ar    arena
	head  int32
	tail  int32
	count int

	// inbox holds arrivals routed by the coordinator since the last round
	// phase, in source order.
	inbox []arrival

	// Per-port tallies. queueIn/queueOut count the shard's pending flows;
	// loadIn tracks the round's scheduled demand at owned inputs; loadOut
	// tracks propose-phase usage against the shard's carved budgets.
	queueIn, queueOut []int
	loadIn, loadOut   []int
	touchIn, touchOut []int32

	// Cached partition geometry: shard count, output-port count, and
	// bitmap words per input, plus the port capacities (read-only views
	// of the switch's slices). liTab/voqBase/bitBase are per-global-input
	// lookup tables (local index, VOQ base, bitmap word base) that keep
	// integer division by the shard count out of the hot paths.
	nsh, mOut, nw   int
	inCaps, outCaps []int
	liTab           []int32
	voqBase         []int32
	bitBase         []int32

	// Virtual output queues over owned inputs, indexed by
	// (in/nsh)*mOut + out (see shard.voq): one packed cursor record per
	// VOQ over the pooled ring blocks, plus the mirrored head-age record
	// the age-aware policies sweep (see arena.go).
	pool  blockPool
	vqs   []voqState
	heads []voqHead

	// ai is the incremental cross-round candidate index, present exactly
	// when the shard's policy scans it (implements ageIndexUser); nil
	// otherwise, and the arena journaling hooks no-op. reconPos is the
	// shard's position in the current round's reconcile order, assigned
	// by the coordinator before phaseReconcile is dispatched.
	ai       *ageIndex
	reconPos int

	// activeOut[in/nsh] lists the output ports with a non-empty VOQ at
	// owned input in; activeOutPos is each VOQ's index there (noID if
	// inactive). actBits mirrors the same membership as a per-input
	// bitmap (nw words per input), which gives rotation policies
	// next-active-VOQ-in-port-order probes in O(1) word operations.
	activeOut    [][]int32
	activeOutPos []int32
	actBits      []uint64
	// activeIn lists owned input ports with any pending flow (global port
	// numbers); activeInPos is each input's index there.
	activeIn    []int32
	activeInPos []int32

	// takes holds the round's settled picks until the next phaseRound (or
	// an explicit phaseApply) retires them; takesRound is the round they
	// were picked in. expRound counts the flows the round phase expired
	// (AdmitDeadline); the coordinator reads it after the barrier to keep
	// its global pending count in step.
	takes      []int32
	takesRound int
	expRound   int
	cscratch   []int32
	view       View
	phase      int
	err        error

	// Verification buffer: flows the shard scheduled since the last
	// window flush, with their rounds.
	vflows  []switchnet.Flow
	vrounds []int

	// work carries phase requests from the coordinator when the runtime
	// runs a worker pool (nshards > 1).
	work chan int

	// Snapshot-visible completion metrics: scalar counters are atomics
	// updated once per applied round; the window sketch is an epoch
	// (seqlock) window readers merge without stalling the shard.
	completed atomic.Int64
	expired   atomic.Int64
	totalResp atomic.Int64
	maxResp   atomic.Int64
	slowResp  atomic.Int64
	win       *stats.EpochWindow
}

// newShard builds the shard owning inputs congruent to idx mod rt.nshards.
func newShard(rt *Runtime, idx int, pol Policy) *shard {
	mIn, mOut := rt.sw.NumIn(), rt.sw.NumOut()
	nLocal := (mIn - idx + rt.nshards - 1) / rt.nshards
	nw := (mOut + 63) / 64
	sh := &shard{
		rt:           rt,
		idx:          idx,
		pol:          pol,
		head:         noID,
		tail:         noID,
		nsh:          rt.nshards,
		mOut:         mOut,
		nw:           nw,
		inCaps:       rt.sw.InCaps,
		outCaps:      rt.sw.OutCaps,
		liTab:        make([]int32, mIn),
		voqBase:      make([]int32, mIn),
		bitBase:      make([]int32, mIn),
		queueIn:      make([]int, mIn),
		queueOut:     make([]int, mOut),
		loadIn:       make([]int, mIn),
		loadOut:      make([]int, mOut),
		vqs:          make([]voqState, nLocal*mOut),
		heads:        make([]voqHead, nLocal*mOut),
		activeOut:    make([][]int32, nLocal),
		activeOutPos: make([]int32, nLocal*mOut),
		actBits:      make([]uint64, nLocal*nw),
		activeIn:     make([]int32, 0, nLocal),
		activeInPos:  make([]int32, mIn),
		win:          stats.NewEpochWindow(rt.cfg.WindowRounds, rt.cfg.WindowShards),
	}
	for i := range sh.vqs {
		sh.vqs[i] = voqState{head: noID, tail: noID}
		sh.activeOutPos[i] = noID
	}
	for i := 0; i < mIn; i++ {
		li := i / rt.nshards
		sh.liTab[i] = int32(li)
		sh.voqBase[i] = int32(li * mOut)
		sh.bitBase[i] = int32(li * nw)
	}
	// Preallocate the per-input active lists so first-time VOQ activation
	// never allocates mid-run.
	for i := range sh.activeOut {
		sh.activeOut[i] = make([]int32, 0, mOut)
	}
	for i := range sh.activeInPos {
		sh.activeInPos[i] = noID
	}
	if _, ok := pol.(ageIndexUser); ok && sh.nsh > 1 {
		// The index pays journal maintenance every round to earn its keep
		// in the reconcile pass (sparse picks, oldest-head-first shard
		// ordering); a one-shard runtime has no reconcile pass, so it
		// skips the index — and its cost — entirely.
		sh.ai = newAgeIndex(sh)
	}
	sh.view.sh = sh
	return sh
}

// voq returns the shard-local VOQ index of (in, out); in must be owned.
func (sh *shard) voq(in, out int) int {
	return int(sh.voqBase[in]) + out
}

// nextActive returns the output port of the next non-empty VOQ at owned
// input in, at or after port from in circular port order; -1 if the input
// has none. Cost is O(mOut/64) word probes.
func (sh *shard) nextActive(in, from int) int {
	base := int(sh.bitBase[in])
	words := sh.actBits[base : base+sh.nw]
	w := from >> 6
	if masked := words[w] &^ (1<<uint(from&63) - 1); masked != 0 {
		return w<<6 + bits.TrailingZeros64(masked)
	}
	for i := w + 1; i < len(words); i++ {
		if words[i] != 0 {
			return i<<6 + bits.TrailingZeros64(words[i])
		}
	}
	for i := 0; i <= w; i++ {
		if words[i] != 0 {
			return i<<6 + bits.TrailingZeros64(words[i])
		}
	}
	return -1
}

// budget is the shard's carve of output j's capacity this round: an equal
// split of OutCaps[j] across the shards, with the remainder rotating by
// round so no shard permanently owns the spare units.
func (sh *shard) budget(j int) int {
	c := sh.outCaps[j]
	k := sh.nsh
	if k == 1 {
		return c
	}
	b := c / k
	if r := c % k; r != 0 {
		rot := sh.idx - (j+sh.rt.round)%k
		if rot < 0 {
			rot += k
		}
		if rot < r {
			b++
		}
	}
	return b
}

// fail records the shard's first error (policy contract violations land
// here via View.Fail); the coordinator surfaces it in shard order.
func (sh *shard) fail(format string, args ...any) {
	if sh.err == nil {
		sh.err = fmt.Errorf(format, args...) //flowsched:allow alloc: cold error path: runs at most once, the shard stops scheduling after
	}
}

// serve is the shard's worker loop (nshards > 1): it executes phase
// requests until the coordinator closes the channel.
func (sh *shard) serve() {
	for ph := range sh.work {
		sh.do(ph)
		sh.rt.wg.Done()
	}
}

// do executes one phase on the shard's own state.
//
//flowsched:hotpath
func (sh *shard) do(ph int) {
	switch ph {
	case phaseRound:
		sh.apply()
		sh.admitAll()
		sh.takesRound = sh.rt.round
		if sh.rt.deadline > 0 {
			sh.expire()
		}
		if sh.ai != nil {
			// Every head change of the round (retirement, admission,
			// expiry) is journaled by now; fold them in so Pick scans a
			// fully current index.
			sh.ai.applyJournal()
		}
		if sh.count > 0 {
			sh.phase = pickBudget
			sh.pol.Pick(&sh.view)
		}
	case phaseApply:
		sh.apply()
	case phaseReconcile:
		pos := sh.reconPos
		if pos > 0 {
			<-sh.rt.tok[pos-1]
		}
		sh.pickShared()
		if pos+1 < sh.nsh {
			sh.rt.tok[pos] <- struct{}{}
		}
	}
}

// expire unthreads pending flows that can no longer meet the deadline:
// completing a flow this round gives it response round+1-release, so any
// flow with round+1-release > Deadline is past saving. The admission
// sublist follows source order and releases are non-decreasing along it,
// so walking from the head and stopping at the first survivor sees every
// expirable flow. Runs inside the round phase after apply (no retired
// flow is still threaded) and before Pick (an expired flow is never
// scheduled), which keeps the schedule verifier-clean and deterministic.
func (sh *shard) expire() {
	a := &sh.ar
	horizon := int64(sh.rt.round + 1 - sh.rt.deadline)
	n := 0
	for sh.head != noID && a.rec[sh.head].rel < horizon {
		sh.depart(sh.head)
		n++
	}
	sh.expRound = n
	if n > 0 {
		sh.expired.Add(int64(n))
	}
}

// pickShared runs the reconcile pass: a second Pick against the global
// leftover pool. Runs at most once per round per shard, serialized by
// the reconcile token chain (K>1) or called directly (K=1).
//
//flowsched:hotpath
func (sh *shard) pickShared() {
	if sh.count > len(sh.takes) {
		sh.phase = pickShared
		sh.pol.Pick(&sh.view)
	}
}

// admitAll threads the inbox into the shard's pending structures.
func (sh *shard) admitAll() {
	for _, ar := range sh.inbox {
		sh.admit(ar)
	}
	sh.inbox = sh.inbox[:0]
}

// admit threads one arrival into the pending structures.
func (sh *shard) admit(av arrival) {
	f := av.flow
	a := &sh.ar
	id := a.alloc()
	vi := sh.voq(f.In, f.Out)
	a.rec[id] = flowRec{
		rel: int64(f.Release),
		in:  int16(f.In), out: int16(f.Out), dem: int32(f.Demand),
		state: stLive, blk: noID,
		prev: sh.tail, next: noID,
	}
	a.seq[id] = av.seq
	if sh.tail != noID {
		a.rec[sh.tail].next = id
	} else {
		sh.head = id
	}
	sh.tail = id

	if sh.vqs[vi].live == 0 {
		li := sh.liTab[f.In]
		sh.activeOutPos[vi] = int32(len(sh.activeOut[li]))
		sh.activeOut[li] = append(sh.activeOut[li], int32(f.Out)) //flowsched:allow alloc: active-VOQ list grows to the per-input port-count high-water mark
		sh.actBits[int(sh.bitBase[f.In])+f.Out>>6] |= 1 << uint(f.Out&63)
	}
	sh.voqPush(vi, id)

	if sh.queueIn[f.In] == 0 {
		sh.activeInPos[f.In] = int32(len(sh.activeIn))
		sh.activeIn = append(sh.activeIn, int32(f.In)) //flowsched:allow alloc: active-input list grows to the owned-port count
	}
	sh.queueIn[f.In]++
	sh.queueOut[f.Out]++
	sh.count++
}

// depart unthreads a scheduled flow from every pending structure.
func (sh *shard) depart(id int32) {
	a := &sh.ar
	r := &a.rec[id]
	in, out := int(r.in), int(r.out)

	if r.prev != noID {
		a.rec[r.prev].next = r.next
	} else {
		sh.head = r.next
	}
	if r.next != noID {
		a.rec[r.next].prev = r.prev
	} else {
		sh.tail = r.prev
	}

	vi := sh.voq(in, out)
	if sh.voqRemove(vi, id) {
		// Swap-delete the drained VOQ from the input's active list.
		li := sh.liTab[in]
		pos := sh.activeOutPos[vi]
		list := sh.activeOut[li]
		last := len(list) - 1
		moved := list[last]
		list[pos] = moved
		sh.activeOut[li] = list[:last]
		sh.activeOutPos[sh.voq(in, int(moved))] = pos
		sh.activeOutPos[vi] = noID
		sh.actBits[int(sh.bitBase[in])+out>>6] &^= 1 << uint(out&63)
	}

	sh.queueIn[in]--
	sh.queueOut[out]--
	if sh.queueIn[in] == 0 {
		pos := sh.activeInPos[in]
		last := len(sh.activeIn) - 1
		moved := sh.activeIn[last]
		sh.activeIn[pos] = moved
		sh.activeIn = sh.activeIn[:last]
		sh.activeInPos[moved] = pos
		sh.activeInPos[in] = noID
	}
	sh.count--
	a.free(id)
}

// apply retires the owed round's taken flows: verification buffering,
// metric updates, structure unlinking, and load reset. Under the fused
// protocol it runs at the start of the next round phase (or an explicit
// phaseApply), after the coordinator's OnSchedule callbacks for the owed
// round have fired.
//
//flowsched:hotpath
func (sh *shard) apply() {
	if len(sh.takes) == 0 {
		return
	}
	a := &sh.ar
	t := sh.takesRound
	verifying := sh.rt.cfg.VerifyEvery > 0
	bound := sh.rt.respBound
	var n, sum, slow int64
	maxR := int(sh.maxResp.Load())
	sh.win.Begin()
	for _, id := range sh.takes {
		resp := t + 1 - int(a.rec[id].rel)
		n++
		sum += int64(resp)
		if resp > maxR {
			maxR = resp
		}
		if bound > 0 && resp > bound {
			slow++
		}
		sh.win.Observe(t, resp)
		if verifying {
			sh.vflows = append(sh.vflows, a.flow(id)) //flowsched:allow alloc: verification buffer, nil unless verify mode is on; amortized there
			sh.vrounds = append(sh.vrounds, t)        //flowsched:allow alloc: grows in lockstep with vflows under verify mode only
		}
	}
	sh.win.End()
	sh.completed.Add(n)
	sh.totalResp.Add(sum)
	sh.maxResp.Store(int64(maxR))
	if slow > 0 {
		sh.slowResp.Add(slow)
	}

	for _, id := range sh.takes {
		sh.depart(id)
	}
	sh.takes = sh.takes[:0]
	for _, p := range sh.touchIn {
		sh.loadIn[p] = 0
	}
	for _, p := range sh.touchOut {
		sh.loadOut[p] = 0
	}
	sh.touchIn = sh.touchIn[:0]
	sh.touchOut = sh.touchOut[:0]
}
