package stream

import (
	"fmt"
	"math/bits"
	"sync"

	"flowsched/internal/stats"
	"flowsched/internal/switchnet"
)

// Coordinator-to-shard phase requests (see Runtime.runPhase).
const (
	// phasePick admits routed arrivals and proposes picks against the
	// shard's carved output budgets.
	phasePick = iota + 1
	// phaseApply retires the round's takes: departures, metrics, and
	// verification buffering.
	phaseApply
)

// View.OutputFree semantics, per pick pass (see shard.phase).
const (
	// pickBudget: OutputFree is the shard's remaining carved budget.
	pickBudget = iota + 1
	// pickShared: OutputFree is the reconciled global leftover pool.
	pickShared
)

// slot is one pending flow in a shard's arena.
type slot struct {
	flow switchnet.Flow
	seq  int64
	// prev/next link the shard's admission-order list; vprev/vnext the
	// flow's virtual output queue. noID terminates.
	prev, next   int32
	vprev, vnext int32
	live         bool
	taken        bool
}

// arrival is one admitted flow routed to a shard by the coordinator, with
// its global admission sequence number.
type arrival struct {
	flow switchnet.Flow
	seq  int64
}

// shardMetrics is the shard's slice of the Snapshot-visible completion
// metrics, guarded by shard.mu.
type shardMetrics struct {
	completed int64
	totalResp int64
	maxResp   int
}

// shard owns the pending state of the input ports congruent to idx modulo
// Runtime.nshards: their arena slots, admission-order sublist, virtual
// output queues, load tallies, policy instance, metric sketches, and
// verification buffer. During the propose and apply phases shards touch
// only their own state (plus read-only Runtime config), so the phases run
// concurrently without locks; the reconcile pass runs sequentially in
// shard order on the coordinator goroutine.
type shard struct {
	rt  *Runtime
	idx int
	pol Policy

	// Pending arena with free list; head/tail delimit the shard's
	// admission-order sublist.
	slots []slot
	freed []int32
	head  int32
	tail  int32
	count int

	// inbox holds arrivals routed by the coordinator since the last
	// propose phase, in source order.
	inbox []arrival

	// Per-port tallies. queueIn/queueOut count the shard's pending flows;
	// loadIn tracks the round's scheduled demand at owned inputs; loadOut
	// tracks propose-phase usage against the shard's carved budgets.
	queueIn, queueOut []int
	loadIn, loadOut   []int
	touchIn, touchOut []int32

	// Cached partition geometry: shard count, output-port count, and
	// bitmap words per input (hot in the VOQ index math), plus the port
	// capacities (read-only views of the switch's slices).
	nsh, mOut, nw   int
	inCaps, outCaps []int

	// Virtual output queues over owned inputs, indexed by
	// (in/nsh)*mOut + out (see shard.voq).
	voqHead, voqTail []int32
	// activeOut[in/nsh] lists the output ports with a non-empty VOQ at
	// owned input in; activeOutPos is each VOQ's index there (noID if
	// inactive). actBits mirrors the same membership as a per-input
	// bitmap (nw words per input), which gives rotation policies
	// next-active-VOQ-in-port-order probes in O(1) word operations.
	activeOut    [][]int32
	activeOutPos []int32
	actBits      []uint64
	// activeIn lists owned input ports with any pending flow (global port
	// numbers); activeInPos is each input's index there.
	activeIn    []int32
	activeInPos []int32

	takes []int32
	resps []int
	view  View
	phase int
	err   error

	// Verification buffer: flows the shard scheduled since the last
	// window flush, with their rounds.
	vflows  []switchnet.Flow
	vrounds []int

	// work carries phase requests from the coordinator when the runtime
	// runs a worker pool (nshards > 1).
	work chan int

	mu  sync.Mutex
	sm  shardMetrics
	win *stats.WindowQuantiles
}

// newShard builds the shard owning inputs congruent to idx mod rt.nshards.
func newShard(rt *Runtime, idx int, pol Policy) *shard {
	mIn, mOut := rt.sw.NumIn(), rt.sw.NumOut()
	nLocal := (mIn - idx + rt.nshards - 1) / rt.nshards
	nw := (mOut + 63) / 64
	sh := &shard{
		rt:           rt,
		idx:          idx,
		pol:          pol,
		head:         noID,
		tail:         noID,
		nsh:          rt.nshards,
		mOut:         mOut,
		nw:           nw,
		inCaps:       rt.sw.InCaps,
		outCaps:      rt.sw.OutCaps,
		queueIn:      make([]int, mIn),
		queueOut:     make([]int, mOut),
		loadIn:       make([]int, mIn),
		loadOut:      make([]int, mOut),
		voqHead:      make([]int32, nLocal*mOut),
		voqTail:      make([]int32, nLocal*mOut),
		activeOut:    make([][]int32, nLocal),
		activeOutPos: make([]int32, nLocal*mOut),
		actBits:      make([]uint64, nLocal*nw),
		activeIn:     make([]int32, 0, nLocal),
		activeInPos:  make([]int32, mIn),
		win:          stats.NewWindowQuantiles(rt.cfg.WindowRounds, rt.cfg.WindowShards),
	}
	for i := range sh.voqHead {
		sh.voqHead[i] = noID
		sh.voqTail[i] = noID
		sh.activeOutPos[i] = noID
	}
	for i := range sh.activeInPos {
		sh.activeInPos[i] = noID
	}
	sh.view.sh = sh
	return sh
}

// voq returns the shard-local VOQ index of (in, out); in must be owned.
func (sh *shard) voq(in, out int) int {
	return in/sh.nsh*sh.mOut + out
}

// nextActive returns the output port of the next non-empty VOQ at owned
// input in, at or after port from in circular port order; -1 if the input
// has none. Cost is O(mOut/64) word probes.
func (sh *shard) nextActive(in, from int) int {
	words := sh.actBits[in/sh.nsh*sh.nw : in/sh.nsh*sh.nw+sh.nw]
	w := from >> 6
	if masked := words[w] &^ (1<<uint(from&63) - 1); masked != 0 {
		return w<<6 + bits.TrailingZeros64(masked)
	}
	for i := w + 1; i < len(words); i++ {
		if words[i] != 0 {
			return i<<6 + bits.TrailingZeros64(words[i])
		}
	}
	for i := 0; i <= w; i++ {
		if words[i] != 0 {
			return i<<6 + bits.TrailingZeros64(words[i])
		}
	}
	return -1
}

// budget is the shard's carve of output j's capacity this round: an equal
// split of OutCaps[j] across the shards, with the remainder rotating by
// round so no shard permanently owns the spare units.
func (sh *shard) budget(j int) int {
	c := sh.outCaps[j]
	k := sh.nsh
	if k == 1 {
		return c
	}
	b := c / k
	if r := c % k; r != 0 {
		rot := sh.idx - (j+sh.rt.round)%k
		if rot < 0 {
			rot += k
		}
		if rot < r {
			b++
		}
	}
	return b
}

// fail records the shard's first error (policy contract violations land
// here via View.Fail); the coordinator surfaces it in shard order.
func (sh *shard) fail(format string, args ...any) {
	if sh.err == nil {
		sh.err = fmt.Errorf(format, args...)
	}
}

// serve is the shard's worker loop (nshards > 1): it executes phase
// requests until the coordinator closes the channel.
func (sh *shard) serve() {
	for ph := range sh.work {
		sh.do(ph)
		sh.rt.wg.Done()
	}
}

// do executes one phase on the shard's own state.
func (sh *shard) do(ph int) {
	switch ph {
	case phasePick:
		sh.admitAll()
		if sh.count > 0 {
			sh.phase = pickBudget
			sh.pol.Pick(&sh.view)
		}
	case phaseApply:
		sh.apply()
	}
}

// pickShared runs the reconcile pass: a second Pick against the global
// leftover pool. Called sequentially in shard order by the coordinator.
func (sh *shard) pickShared() {
	if sh.count > len(sh.takes) {
		sh.phase = pickShared
		sh.pol.Pick(&sh.view)
	}
}

// alloc takes a slot from the free list or grows the arena.
func (sh *shard) alloc() int32 {
	if n := len(sh.freed); n > 0 {
		id := sh.freed[n-1]
		sh.freed = sh.freed[:n-1]
		return id
	}
	sh.slots = append(sh.slots, slot{})
	return int32(len(sh.slots) - 1)
}

// admitAll threads the inbox into the shard's pending structures.
func (sh *shard) admitAll() {
	for _, ar := range sh.inbox {
		sh.admit(ar)
	}
	sh.inbox = sh.inbox[:0]
}

// admit threads one arrival into the pending structures.
func (sh *shard) admit(ar arrival) {
	f := ar.flow
	id := sh.alloc()
	s := &sh.slots[id]
	*s = slot{flow: f, seq: ar.seq, prev: sh.tail, next: noID, vprev: noID, vnext: noID, live: true}
	if sh.tail != noID {
		sh.slots[sh.tail].next = id
	} else {
		sh.head = id
	}
	sh.tail = id

	vi := sh.voq(f.In, f.Out)
	if sh.voqTail[vi] != noID {
		sh.slots[sh.voqTail[vi]].vnext = id
		s.vprev = sh.voqTail[vi]
	} else {
		sh.voqHead[vi] = id
		li := f.In / sh.nsh
		sh.activeOutPos[vi] = int32(len(sh.activeOut[li]))
		sh.activeOut[li] = append(sh.activeOut[li], int32(f.Out))
		sh.actBits[li*sh.nw+f.Out>>6] |= 1 << uint(f.Out&63)
	}
	sh.voqTail[vi] = id

	if sh.queueIn[f.In] == 0 {
		sh.activeInPos[f.In] = int32(len(sh.activeIn))
		sh.activeIn = append(sh.activeIn, int32(f.In))
	}
	sh.queueIn[f.In]++
	sh.queueOut[f.Out]++
	sh.count++
}

// depart unthreads a scheduled flow from every pending structure.
func (sh *shard) depart(id int32) {
	s := &sh.slots[id]
	f := s.flow

	if s.prev != noID {
		sh.slots[s.prev].next = s.next
	} else {
		sh.head = s.next
	}
	if s.next != noID {
		sh.slots[s.next].prev = s.prev
	} else {
		sh.tail = s.prev
	}

	vi := sh.voq(f.In, f.Out)
	if s.vprev != noID {
		sh.slots[s.vprev].vnext = s.vnext
	} else {
		sh.voqHead[vi] = s.vnext
	}
	if s.vnext != noID {
		sh.slots[s.vnext].vprev = s.vprev
	} else {
		sh.voqTail[vi] = s.vprev
	}
	if sh.voqHead[vi] == noID {
		// Swap-delete the VOQ from the input's active list.
		li := f.In / sh.nsh
		pos := sh.activeOutPos[vi]
		list := sh.activeOut[li]
		last := len(list) - 1
		moved := list[last]
		list[pos] = moved
		sh.activeOut[li] = list[:last]
		sh.activeOutPos[sh.voq(f.In, int(moved))] = pos
		sh.activeOutPos[vi] = noID
		sh.actBits[li*sh.nw+f.Out>>6] &^= 1 << uint(f.Out&63)
	}

	sh.queueIn[f.In]--
	sh.queueOut[f.Out]--
	if sh.queueIn[f.In] == 0 {
		pos := sh.activeInPos[f.In]
		last := len(sh.activeIn) - 1
		moved := sh.activeIn[last]
		sh.activeIn[pos] = moved
		sh.activeIn = sh.activeIn[:last]
		sh.activeInPos[moved] = pos
		sh.activeInPos[f.In] = noID
	}
	sh.count--

	s.live = false
	s.taken = false
	sh.freed = append(sh.freed, id)
}

// apply retires this round's taken flows: verification buffering, metric
// updates, structure unlinking, and load reset. OnSchedule callbacks run
// on the coordinator before this phase.
func (sh *shard) apply() {
	t := sh.rt.round
	sh.resps = sh.resps[:0]
	for _, id := range sh.takes {
		s := &sh.slots[id]
		sh.resps = append(sh.resps, t+1-s.flow.Release)
		if sh.rt.cfg.VerifyEvery > 0 {
			sh.vflows = append(sh.vflows, s.flow)
			sh.vrounds = append(sh.vrounds, t)
		}
	}

	if len(sh.resps) > 0 {
		sh.mu.Lock()
		for _, resp := range sh.resps {
			sh.sm.completed++
			sh.sm.totalResp += int64(resp)
			if resp > sh.sm.maxResp {
				sh.sm.maxResp = resp
			}
			sh.win.Observe(t, resp)
		}
		sh.mu.Unlock()
	}

	for _, id := range sh.takes {
		sh.depart(id)
	}
	sh.takes = sh.takes[:0]
	for _, p := range sh.touchIn {
		sh.loadIn[p] = 0
	}
	for _, p := range sh.touchOut {
		sh.loadOut[p] = 0
	}
	sh.touchIn = sh.touchIn[:0]
	sh.touchOut = sh.touchOut[:0]
}
