package stream

import (
	"fmt"
	"runtime"
	"sync"

	"flowsched/internal/stats"
	"flowsched/internal/switchnet"
	"flowsched/internal/verify"
)

// Source yields flows in non-decreasing release order. Next returns
// ok=false when the stream is exhausted or failed; Err reports the failure
// (nil for a clean end). The sources in internal/workload (ArrivalSource,
// TraceSource, InstanceSource) satisfy it.
type Source interface {
	Next() (f switchnet.Flow, ok bool)
	Err() error
}

// ID identifies an admitted flow in a shard's pending set. IDs are
// shard-local and reused after departure: they are stable only while the
// flow is pending, and only meaningful against the View that produced
// them.
type ID = int

// NoID marks the absence of a pending flow.
const NoID ID = -1

// noID is NoID as the runtime's internal int32 link type.
const noID int32 = -1

// Policy selects a capacity-feasible set of pending flows each round by
// calling View.Take. The runtime enforces port capacities inside Take, so
// a policy cannot overload a port; it can only fail to make progress.
//
// In a sharded runtime (Config.Shards > 1) each shard runs its own policy
// instance and Pick may be invoked twice per round — once against the
// shard's carved output budgets and once against the reconciled leftover
// pool (see the package docs); the View is shard-scoped either way.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick selects flows for the current round. The pending set and all
	// View indexes are frozen during Pick; departures apply afterwards.
	Pick(v *View)
}

// Resetter is implemented by policies that carry per-run state (e.g.
// RoundRobin's rotation pointers); the runtime calls Reset on every policy
// instance once at construction.
type Resetter interface {
	Reset(sw switchnet.Switch)
}

// Shardable is implemented by policies that can run as independent
// per-shard instances when the runtime partitions input ports across
// shards. NewShard returns a fresh policy instance for one shard; each
// instance only ever sees the shard-scoped View of its own inputs.
// Policies that need the whole pending set each round (e.g. Bridge) must
// not implement it, which pins them to Shards == 1.
type Shardable interface {
	Policy
	NewShard() Policy
}

// Defaults for Config fields left zero.
const (
	DefaultMaxPending   = 1 << 17
	DefaultWindowRounds = 1024
	defaultWindowShards = 8
	DefaultStallRounds  = 4096
)

// Config tunes a Runtime.
type Config struct {
	// Switch describes the port structure; all source flows must fit it.
	Switch switchnet.Switch
	// Policy selects flows each round. With Shards > 1 it must implement
	// Shardable; each shard then runs its own NewShard instance.
	Policy Policy
	// Shards partitions the input ports across that many runtime shards
	// (input i belongs to shard i mod Shards), scheduled by the
	// deterministic two-phase output-capacity protocol described in the
	// package docs. <= 0 selects GOMAXPROCS for Shardable policies and 1
	// otherwise; the value is always capped at NumIn.
	Shards int
	// MaxPending bounds the resident pending set (admission control);
	// <= 0 selects DefaultMaxPending. When the limit is reached the
	// runtime exerts backpressure on the source instead of dropping.
	MaxPending int
	// VerifyEvery > 0 spot-checks each completed window of that many
	// rounds through the verify oracle.
	VerifyEvery int
	// WindowRounds is the sliding metrics window in rounds (<= 0 selects
	// DefaultWindowRounds); WindowShards its ring granularity (<= 0
	// selects 8).
	WindowRounds int
	WindowShards int
	// StallRounds aborts the run after the policy has scheduled nothing
	// for that many consecutive rounds with a non-empty pending set
	// (<= 0 selects DefaultStallRounds).
	StallRounds int
	// OnSchedule, when non-nil, observes every departure: seq is the
	// flow's admission sequence number (its position in source order). It
	// is always invoked from the goroutine driving Run, in shard index
	// order within a round.
	OnSchedule func(seq int64, f switchnet.Flow, round int)
}

// metrics is the coordinator's share of the Snapshot-visible state,
// guarded by Runtime.mu; completion counters live in the shards.
type metrics struct {
	admitted      int64
	peakPending   int
	backpressured int64
	windows       int64
	rounds        int64
	round         int
}

// Summary is a point-in-time view of the runtime's streaming metrics.
type Summary struct {
	// Round is the current round (one past the last scheduled round after
	// a completed Run).
	Round int
	// Rounds counts scheduling rounds actually processed (idle gaps are
	// skipped, not iterated).
	Rounds int64
	// Shards is the number of runtime shards the input ports are
	// partitioned across (1 = unsharded).
	Shards int
	// Admitted and Completed count flows in and out of the pending set;
	// Pending is the current resident count and PeakPending its high
	// water mark (never above MaxPending).
	Admitted    int64
	Completed   int64
	Pending     int
	PeakPending int
	// Backpressured counts flows admitted after their release round
	// because the pending set was full.
	Backpressured int64
	// TotalResponse, AvgResponse, MaxResponse are the paper's metrics
	// over completed flows (C_e = round+1 convention).
	TotalResponse int64
	AvgResponse   float64
	MaxResponse   int
	// WindowsVerified counts spot-check windows the verify oracle
	// accepted.
	WindowsVerified int64
	// P50, P90, P99 are response-time quantiles over the sliding metrics
	// window, merged across shards (sketched; see stats.LogHistogram for
	// the error bound).
	P50, P90, P99 float64
}

// Runtime is the streaming scheduler. Run drives it from one goroutine —
// the coordinator — which pulls the source, routes arrivals to shards,
// and sequences the per-round phases; with Config.Shards > 1 the propose
// and apply phases execute on a pool of shard worker goroutines. Snapshot
// may be called concurrently from other goroutines.
type Runtime struct {
	cfg  Config
	src  Source
	sw   switchnet.Switch
	caps []int

	nshards int
	shards  []*shard

	round int
	count int
	seq   int64

	look     switchnet.Flow
	haveLook bool
	srcDone  bool
	lastRel  int

	// leftover is the reconcile-phase output budget pool, rebuilt each
	// round from OutCaps minus the propose-phase usage (nshards > 1);
	// totalOutCap is sum(OutCaps), the pool's upper bound.
	leftover    []int
	totalOutCap int

	err error

	// Verification window state: vstart is the active window's first
	// round; vflows/vrounds are the flush-time merge scratch.
	vstart  int
	vflows  []switchnet.Flow
	vrounds []int

	wg sync.WaitGroup

	mu      sync.Mutex
	m       metrics
	scratch stats.LogHistogram
}

// New builds a Runtime over src. The configuration is validated eagerly:
// an empty switch, non-positive capacities, a missing policy, or a shard
// count the policy cannot support are construction errors, not run-time
// surprises.
func New(src Source, cfg Config) (*Runtime, error) {
	if src == nil {
		return nil, fmt.Errorf("stream: nil source")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("stream: nil policy")
	}
	mIn, mOut := cfg.Switch.NumIn(), cfg.Switch.NumOut()
	if mIn == 0 || mOut == 0 {
		return nil, fmt.Errorf("stream: switch has no ports (%d x %d)", mIn, mOut)
	}
	for i, c := range cfg.Switch.InCaps {
		if c <= 0 {
			return nil, fmt.Errorf("stream: input port %d capacity %d is not positive", i, c)
		}
	}
	for j, c := range cfg.Switch.OutCaps {
		if c <= 0 {
			return nil, fmt.Errorf("stream: output port %d capacity %d is not positive", j, c)
		}
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.WindowRounds <= 0 {
		cfg.WindowRounds = DefaultWindowRounds
	}
	if cfg.WindowShards <= 0 {
		cfg.WindowShards = defaultWindowShards
	}
	if cfg.StallRounds <= 0 {
		cfg.StallRounds = DefaultStallRounds
	}
	sharder, shardable := cfg.Policy.(Shardable)
	if cfg.Shards <= 0 {
		cfg.Shards = 1
		if shardable {
			cfg.Shards = runtime.GOMAXPROCS(0)
		}
	}
	if cfg.Shards > mIn {
		cfg.Shards = mIn
	}
	if cfg.Shards > 1 && !shardable {
		return nil, fmt.Errorf("stream: policy %q cannot run sharded (it does not implement Shardable); set Config.Shards to 1",
			cfg.Policy.Name())
	}
	rt := &Runtime{
		cfg:     cfg,
		src:     src,
		sw:      cfg.Switch,
		caps:    cfg.Switch.Caps(),
		nshards: cfg.Shards,
		shards:  make([]*shard, cfg.Shards),
	}
	if rt.nshards > 1 {
		rt.leftover = make([]int, mOut)
		for _, c := range cfg.Switch.OutCaps {
			rt.totalOutCap += c
		}
	}
	for s := range rt.shards {
		pol := cfg.Policy
		if rt.nshards > 1 {
			pol = sharder.NewShard()
		}
		if r, ok := pol.(Resetter); ok {
			r.Reset(cfg.Switch)
		}
		rt.shards[s] = newShard(rt, s, pol)
	}
	return rt, nil
}

// pull refreshes the one-flow lookahead from the source.
func (rt *Runtime) pull() {
	if rt.haveLook || rt.srcDone {
		return
	}
	f, ok := rt.src.Next()
	if !ok {
		rt.srcDone = true
		return
	}
	rt.look, rt.haveLook = f, true
}

// route validates f, assigns its admission sequence number, and queues it
// on its input port's shard; the shard threads it during the next propose
// phase. Returns the number backpressured (0 or 1) for metric batching.
func (rt *Runtime) route(f switchnet.Flow) (int, error) {
	if f.Release < rt.lastRel {
		return 0, fmt.Errorf("stream: source yielded release %d after %d (must be non-decreasing)", f.Release, rt.lastRel)
	}
	rt.lastRel = f.Release
	if err := rt.sw.ValidateFlow(f); err != nil {
		return 0, fmt.Errorf("stream: inadmissible flow: %w", err)
	}
	sh := rt.shards[f.In%rt.nshards]
	sh.inbox = append(sh.inbox, arrival{flow: f, seq: rt.seq})
	rt.seq++
	rt.count++
	if f.Release < rt.round {
		return 1, nil
	}
	return 0, nil
}

// runPhase executes ph on every shard: inline for a single shard, on the
// worker pool otherwise.
func (rt *Runtime) runPhase(ph int) {
	if rt.nshards == 1 {
		rt.shards[0].do(ph)
		return
	}
	rt.wg.Add(rt.nshards)
	for _, sh := range rt.shards {
		sh.work <- ph
	}
	rt.wg.Wait()
}

// reconcile redistributes output capacity no shard used in the propose
// phase: leftover[j] = OutCaps[j] - total phase-1 usage, then each shard
// gets a second Pick against the shared pool, sequentially in shard order
// so the outcome is deterministic.
func (rt *Runtime) reconcile() {
	copy(rt.leftover, rt.sw.OutCaps)
	used := 0
	for _, sh := range rt.shards {
		for _, j := range sh.touchOut {
			rt.leftover[j] -= sh.loadOut[j]
			used += sh.loadOut[j]
		}
	}
	if used == rt.totalOutCap {
		// Saturated round: nothing to redistribute, so skip the serial
		// reconcile sweeps entirely.
		return
	}
	for _, sh := range rt.shards {
		sh.pickShared()
	}
}

// firstErr surfaces the first error in deterministic order: the runtime's
// own, then each shard's in shard order.
func (rt *Runtime) firstErr() error {
	if rt.err != nil {
		return rt.err
	}
	for _, sh := range rt.shards {
		if sh.err != nil {
			return sh.err
		}
	}
	return nil
}

// setRound advances time to t, flushing any verification window the jump
// completes.
func (rt *Runtime) setRound(t int) error {
	if w := rt.cfg.VerifyEvery; w > 0 && t >= rt.vstart+w {
		// Rounds only move forward, so the buffers never hold flows beyond
		// the current window: one flush empties them, and the remaining
		// boundaries an idle jump crosses advance in a single step.
		if err := rt.flushWindow(); err != nil {
			return err
		}
		rt.vstart += (t - rt.vstart) / w * w
	}
	rt.round = t
	rt.mu.Lock()
	rt.m.round = t
	rt.mu.Unlock()
	return nil
}

// flushWindow spot-checks every buffered scheduled flow through the verify
// oracle. All loads in the buffered rounds are fully represented — flows
// are buffered at departure across all shards and rounds only move forward
// — so the oracle's per-(port, round) capacity check is exact. Failures
// are labelled with the true min/max buffered rounds, not the window
// boundaries, so an idle jump across several window starts cannot skew the
// report.
func (rt *Runtime) flushWindow() error {
	rt.vflows = rt.vflows[:0]
	rt.vrounds = rt.vrounds[:0]
	lo, hi := 0, 0
	for _, sh := range rt.shards {
		rt.vflows = append(rt.vflows, sh.vflows...)
		for _, r := range sh.vrounds {
			if len(rt.vrounds) == 0 || r < lo {
				lo = r
			}
			if len(rt.vrounds) == 0 || r > hi {
				hi = r
			}
			rt.vrounds = append(rt.vrounds, r)
		}
		sh.vflows = sh.vflows[:0]
		sh.vrounds = sh.vrounds[:0]
	}
	if len(rt.vflows) == 0 {
		return nil
	}
	inst := &switchnet.Instance{Switch: rt.sw, Flows: rt.vflows}
	sched := &switchnet.Schedule{Round: rt.vrounds}
	if _, err := verify.CheckSchedule(inst, sched, rt.caps); err != nil {
		return fmt.Errorf("stream: verification window over rounds [%d, %d] infeasible: %w", lo, hi, err)
	}
	rt.mu.Lock()
	rt.m.windows++
	rt.mu.Unlock()
	return nil
}

// Run drains the source: it advances round by round until the source is
// exhausted and the pending set is empty, then returns the final summary.
// It is not restartable.
func (rt *Runtime) Run() (*Summary, error) {
	if err := rt.firstErr(); err != nil {
		return nil, err
	}
	if rt.nshards > 1 {
		for _, sh := range rt.shards {
			sh.work = make(chan int, 1)
			go sh.serve()
		}
		defer func() {
			for _, sh := range rt.shards {
				close(sh.work)
			}
		}()
	}
	stalled := 0
	for {
		rt.pull()
		arrived, backpressured := 0, 0
		for rt.count < rt.cfg.MaxPending && rt.haveLook && rt.look.Release <= rt.round {
			bp, err := rt.route(rt.look)
			if err != nil {
				return nil, err
			}
			arrived++
			backpressured += bp
			rt.haveLook = false
			rt.pull()
		}
		if arrived > 0 {
			rt.mu.Lock()
			rt.m.admitted += int64(arrived)
			rt.m.backpressured += int64(backpressured)
			if rt.count > rt.m.peakPending {
				rt.m.peakPending = rt.count
			}
			rt.mu.Unlock()
		}
		if rt.count == 0 {
			if !rt.haveLook {
				if err := rt.src.Err(); err != nil {
					return nil, err
				}
				break
			}
			// Idle gap: jump straight to the next arrival.
			if err := rt.setRound(rt.look.Release); err != nil {
				return nil, err
			}
			continue
		}

		// Propose in parallel, then reconcile unused output budget.
		rt.runPhase(phasePick)
		if rt.nshards > 1 {
			rt.reconcile()
		}
		if err := rt.firstErr(); err != nil {
			rt.err = err
			return nil, err
		}

		total := 0
		for _, sh := range rt.shards {
			total += len(sh.takes)
		}
		rt.mu.Lock()
		rt.m.rounds++
		rt.mu.Unlock()
		if total == 0 {
			stalled++
			if stalled >= rt.cfg.StallRounds {
				return nil, fmt.Errorf("stream: policy %q scheduled nothing for %d consecutive rounds with %d flows pending",
					rt.cfg.Policy.Name(), stalled, rt.count)
			}
		} else {
			stalled = 0
		}

		if cb := rt.cfg.OnSchedule; cb != nil {
			// Shard workers are quiescent between phases, so reading their
			// takes here is safe; shard order keeps the callback sequence
			// deterministic.
			for _, sh := range rt.shards {
				for _, id := range sh.takes {
					s := &sh.slots[id]
					cb(s.seq, s.flow, rt.round)
				}
			}
		}
		rt.count -= total
		rt.runPhase(phaseApply)
		if err := rt.setRound(rt.round + 1); err != nil {
			return nil, err
		}
	}
	if rt.cfg.VerifyEvery > 0 {
		if err := rt.flushWindow(); err != nil {
			return nil, err
		}
	}
	s := rt.Snapshot()
	return &s, nil
}

// Snapshot returns the current streaming metrics, merging the per-shard
// completion counters and window sketches. It is safe to call concurrently
// with Run.
func (rt *Runtime) Snapshot() Summary {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.scratch.Reset()
	var completed, totalResp int64
	maxResp := 0
	for _, sh := range rt.shards {
		sh.mu.Lock()
		sh.win.Advance(rt.m.round)
		sh.win.MergeInto(&rt.scratch)
		completed += sh.sm.completed
		totalResp += sh.sm.totalResp
		if sh.sm.maxResp > maxResp {
			maxResp = sh.sm.maxResp
		}
		sh.mu.Unlock()
	}
	s := Summary{
		Round:           rt.m.round,
		Rounds:          rt.m.rounds,
		Shards:          rt.nshards,
		Admitted:        rt.m.admitted,
		Completed:       completed,
		Pending:         int(rt.m.admitted - completed),
		PeakPending:     rt.m.peakPending,
		Backpressured:   rt.m.backpressured,
		TotalResponse:   totalResp,
		MaxResponse:     maxResp,
		WindowsVerified: rt.m.windows,
		P50:             rt.scratch.Quantile(0.50),
		P90:             rt.scratch.Quantile(0.90),
		P99:             rt.scratch.Quantile(0.99),
	}
	if completed > 0 {
		s.AvgResponse = float64(totalResp) / float64(completed)
	}
	return s
}
