// Package stream is the event-driven streaming scheduler runtime: the
// unbounded-arrival counterpart of internal/sim. A Source yields flows in
// non-decreasing release order (generator-driven or trace replay, see
// internal/workload); the Runtime admits them into a bounded pending set,
// asks a Policy for a capacity-feasible selection each round, and retires
// scheduled flows into streaming metrics — running totals plus
// sliding-window response-time quantiles — without ever holding more than
// the admission limit of flows in memory.
//
// Incrementality is the point: the runtime maintains per-port pending
// state — virtual output queues (one FIFO per (input, output) pair) with
// active-port indexes, per-port queue depths, and per-round load tallies
// reset via touched lists — updated in O(1) per arrival and departure. A
// round therefore costs O(arrived + scheduled + policy), never a rescan of
// every flow seen so far; with the native RoundRobin policy the policy
// term is O(active ports), independent of the pending count.
//
// Backpressure: when the pending set reaches Config.MaxPending the runtime
// stops draining the source, so arrivals wait inside the source until a
// departure frees a slot. Admission is lossless and order-preserving, and
// response times are always charged from the flow's original release
// round, so queueing delay under overload is visible in the metrics rather
// than hidden by the admission control.
//
// Verification: with Config.VerifyEvery > 0 the runtime feeds each
// completed window of rounds — every flow scheduled in those rounds, with
// original releases — through the internal/verify oracle, aborting the run
// on the first infeasible window. Spot-checking costs O(flows per window)
// and keeps the unbounded run honest without retaining history.
package stream

import (
	"fmt"
	"sync"

	"flowsched/internal/stats"
	"flowsched/internal/switchnet"
	"flowsched/internal/verify"
)

// Source yields flows in non-decreasing release order. Next returns
// ok=false when the stream is exhausted or failed; Err reports the failure
// (nil for a clean end). The sources in internal/workload (ArrivalSource,
// TraceSource, InstanceSource) satisfy it.
type Source interface {
	Next() (f switchnet.Flow, ok bool)
	Err() error
}

// ID identifies an admitted flow in the runtime's pending set. IDs are
// reused after departure: they are stable only while the flow is pending.
type ID = int

// NoID marks the absence of a pending flow.
const NoID ID = -1

// noID is NoID as the runtime's internal int32 link type.
const noID int32 = -1

// Policy selects a capacity-feasible set of pending flows each round by
// calling View.Take. The runtime enforces port capacities inside Take, so
// a policy cannot overload a port; it can only fail to make progress.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick selects flows for the current round. The pending set and all
	// View indexes are frozen during Pick; departures apply afterwards.
	Pick(v *View)
}

// Resetter is implemented by policies that carry per-run state (e.g.
// RoundRobin's rotation pointers); the runtime calls Reset once at
// construction.
type Resetter interface {
	Reset(sw switchnet.Switch)
}

// Defaults for Config fields left zero.
const (
	DefaultMaxPending   = 1 << 17
	DefaultWindowRounds = 1024
	defaultWindowShards = 8
	DefaultStallRounds  = 4096
)

// Config tunes a Runtime.
type Config struct {
	// Switch describes the port structure; all source flows must fit it.
	Switch switchnet.Switch
	// Policy selects flows each round.
	Policy Policy
	// MaxPending bounds the resident pending set (admission control);
	// <= 0 selects DefaultMaxPending. When the limit is reached the
	// runtime exerts backpressure on the source instead of dropping.
	MaxPending int
	// VerifyEvery > 0 spot-checks each completed window of that many
	// rounds through the verify oracle.
	VerifyEvery int
	// WindowRounds is the sliding metrics window in rounds (<= 0 selects
	// DefaultWindowRounds); WindowShards its ring granularity (<= 0
	// selects 8).
	WindowRounds int
	WindowShards int
	// StallRounds aborts the run if the policy schedules nothing for that
	// many consecutive rounds with a non-empty pending set (<= 0 selects
	// DefaultStallRounds).
	StallRounds int
	// OnSchedule, when non-nil, observes every departure: seq is the
	// flow's admission sequence number (its position in source order).
	OnSchedule func(seq int64, f switchnet.Flow, round int)
}

// slot is one pending flow in the runtime's arena.
type slot struct {
	flow switchnet.Flow
	seq  int64
	// prev/next link the admission-order list; vprev/vnext the flow's
	// virtual output queue. noID terminates.
	prev, next   int32
	vprev, vnext int32
	live         bool
	taken        bool
}

// metrics is the Snapshot-visible state, guarded by Runtime.mu.
type metrics struct {
	admitted      int64
	completed     int64
	totalResp     int64
	maxResp       int
	peakPending   int
	backpressured int64
	windows       int64
	rounds        int64
	round         int
}

// Summary is a point-in-time view of the runtime's streaming metrics.
type Summary struct {
	// Round is the current round (one past the last scheduled round after
	// a completed Run).
	Round int
	// Rounds counts scheduling rounds actually processed (idle gaps are
	// skipped, not iterated).
	Rounds int64
	// Admitted and Completed count flows in and out of the pending set;
	// Pending is the current resident count and PeakPending its high
	// water mark (never above MaxPending).
	Admitted    int64
	Completed   int64
	Pending     int
	PeakPending int
	// Backpressured counts flows admitted after their release round
	// because the pending set was full.
	Backpressured int64
	// TotalResponse, AvgResponse, MaxResponse are the paper's metrics
	// over completed flows (C_e = round+1 convention).
	TotalResponse int64
	AvgResponse   float64
	MaxResponse   int
	// WindowsVerified counts spot-check windows the verify oracle
	// accepted.
	WindowsVerified int64
	// P50, P90, P99 are response-time quantiles over the sliding metrics
	// window (sketched; see stats.LogHistogram for the error bound).
	P50, P90, P99 float64
}

// Runtime is the streaming scheduler. It is driven by one goroutine (Run);
// Snapshot may be called concurrently from others.
type Runtime struct {
	cfg  Config
	src  Source
	sw   switchnet.Switch
	caps []int

	round int

	slots []slot
	freed []int32
	head  int32
	tail  int32
	count int

	look     switchnet.Flow
	haveLook bool
	srcDone  bool
	lastRel  int

	queueIn, queueOut []int
	loadIn, loadOut   []int
	touchIn, touchOut []int32

	// Virtual output queues, indexed in*NumOut+out.
	voqHead, voqTail []int32
	// activeOut[in] lists the output ports with a non-empty VOQ at input
	// in; activeOutPos is each VOQ's index there (noID if inactive).
	activeOut    [][]int32
	activeOutPos []int32
	// activeIn lists input ports with any pending flow; activeInPos is
	// each input's index there.
	activeIn    []int32
	activeInPos []int32

	takes []int32
	resps []int
	view  View
	err   error

	vflows  []switchnet.Flow
	vrounds []int
	vstart  int

	mu  sync.Mutex
	m   metrics
	win *stats.WindowQuantiles
}

// New builds a Runtime over src. The configuration is validated eagerly:
// an empty switch, non-positive capacities, or a missing policy are
// construction errors, not run-time surprises.
func New(src Source, cfg Config) (*Runtime, error) {
	if src == nil {
		return nil, fmt.Errorf("stream: nil source")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("stream: nil policy")
	}
	mIn, mOut := cfg.Switch.NumIn(), cfg.Switch.NumOut()
	if mIn == 0 || mOut == 0 {
		return nil, fmt.Errorf("stream: switch has no ports (%d x %d)", mIn, mOut)
	}
	for i, c := range cfg.Switch.InCaps {
		if c <= 0 {
			return nil, fmt.Errorf("stream: input port %d capacity %d is not positive", i, c)
		}
	}
	for j, c := range cfg.Switch.OutCaps {
		if c <= 0 {
			return nil, fmt.Errorf("stream: output port %d capacity %d is not positive", j, c)
		}
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.WindowRounds <= 0 {
		cfg.WindowRounds = DefaultWindowRounds
	}
	if cfg.WindowShards <= 0 {
		cfg.WindowShards = defaultWindowShards
	}
	if cfg.StallRounds <= 0 {
		cfg.StallRounds = DefaultStallRounds
	}
	if r, ok := cfg.Policy.(Resetter); ok {
		r.Reset(cfg.Switch)
	}
	rt := &Runtime{
		cfg:          cfg,
		src:          src,
		sw:           cfg.Switch,
		caps:         cfg.Switch.Caps(),
		head:         noID,
		tail:         noID,
		queueIn:      make([]int, mIn),
		queueOut:     make([]int, mOut),
		loadIn:       make([]int, mIn),
		loadOut:      make([]int, mOut),
		voqHead:      make([]int32, mIn*mOut),
		voqTail:      make([]int32, mIn*mOut),
		activeOut:    make([][]int32, mIn),
		activeOutPos: make([]int32, mIn*mOut),
		activeIn:     make([]int32, 0, mIn),
		activeInPos:  make([]int32, mIn),
		win:          stats.NewWindowQuantiles(cfg.WindowRounds, cfg.WindowShards),
	}
	for i := range rt.voqHead {
		rt.voqHead[i] = noID
		rt.voqTail[i] = noID
		rt.activeOutPos[i] = noID
	}
	for i := range rt.activeInPos {
		rt.activeInPos[i] = noID
	}
	rt.view.rt = rt
	return rt, nil
}

// voq returns the VOQ index of (in, out).
func (rt *Runtime) voq(in, out int) int { return in*rt.sw.NumOut() + out }

// pull refreshes the one-flow lookahead from the source.
func (rt *Runtime) pull() {
	if rt.haveLook || rt.srcDone {
		return
	}
	f, ok := rt.src.Next()
	if !ok {
		rt.srcDone = true
		return
	}
	rt.look, rt.haveLook = f, true
}

// alloc takes a slot from the free list or grows the arena.
func (rt *Runtime) alloc() int32 {
	if n := len(rt.freed); n > 0 {
		id := rt.freed[n-1]
		rt.freed = rt.freed[:n-1]
		return id
	}
	rt.slots = append(rt.slots, slot{})
	return int32(len(rt.slots) - 1)
}

// admit validates f and threads it into the pending structures.
func (rt *Runtime) admit(f switchnet.Flow) error {
	if f.Release < rt.lastRel {
		return fmt.Errorf("stream: source yielded release %d after %d (must be non-decreasing)", f.Release, rt.lastRel)
	}
	rt.lastRel = f.Release
	if err := rt.sw.ValidateFlow(f); err != nil {
		return fmt.Errorf("stream: inadmissible flow: %w", err)
	}

	id := rt.alloc()
	s := &rt.slots[id]
	seq := rt.m.admitted
	*s = slot{flow: f, seq: seq, prev: rt.tail, next: noID, vprev: noID, vnext: noID, live: true}
	if rt.tail != noID {
		rt.slots[rt.tail].next = id
	} else {
		rt.head = id
	}
	rt.tail = id

	vi := rt.voq(f.In, f.Out)
	if rt.voqTail[vi] != noID {
		rt.slots[rt.voqTail[vi]].vnext = id
		s.vprev = rt.voqTail[vi]
	} else {
		rt.voqHead[vi] = id
		rt.activeOutPos[vi] = int32(len(rt.activeOut[f.In]))
		rt.activeOut[f.In] = append(rt.activeOut[f.In], int32(f.Out))
	}
	rt.voqTail[vi] = id

	if rt.queueIn[f.In] == 0 {
		rt.activeInPos[f.In] = int32(len(rt.activeIn))
		rt.activeIn = append(rt.activeIn, int32(f.In))
	}
	rt.queueIn[f.In]++
	rt.queueOut[f.Out]++
	rt.count++

	rt.mu.Lock()
	rt.m.admitted++
	if rt.count > rt.m.peakPending {
		rt.m.peakPending = rt.count
	}
	if f.Release < rt.round {
		rt.m.backpressured++
	}
	rt.mu.Unlock()
	return nil
}

// depart unthreads a scheduled flow from every pending structure.
func (rt *Runtime) depart(id int32) {
	s := &rt.slots[id]
	f := s.flow

	if s.prev != noID {
		rt.slots[s.prev].next = s.next
	} else {
		rt.head = s.next
	}
	if s.next != noID {
		rt.slots[s.next].prev = s.prev
	} else {
		rt.tail = s.prev
	}

	vi := rt.voq(f.In, f.Out)
	if s.vprev != noID {
		rt.slots[s.vprev].vnext = s.vnext
	} else {
		rt.voqHead[vi] = s.vnext
	}
	if s.vnext != noID {
		rt.slots[s.vnext].vprev = s.vprev
	} else {
		rt.voqTail[vi] = s.vprev
	}
	if rt.voqHead[vi] == noID {
		// Swap-delete the VOQ from the input's active list.
		pos := rt.activeOutPos[vi]
		list := rt.activeOut[f.In]
		last := len(list) - 1
		moved := list[last]
		list[pos] = moved
		rt.activeOut[f.In] = list[:last]
		rt.activeOutPos[rt.voq(f.In, int(moved))] = pos
		rt.activeOutPos[vi] = noID
	}

	rt.queueIn[f.In]--
	rt.queueOut[f.Out]--
	if rt.queueIn[f.In] == 0 {
		pos := rt.activeInPos[f.In]
		last := len(rt.activeIn) - 1
		moved := rt.activeIn[last]
		rt.activeIn[pos] = moved
		rt.activeIn = rt.activeIn[:last]
		rt.activeInPos[moved] = pos
		rt.activeInPos[f.In] = noID
	}
	rt.count--

	s.live = false
	s.taken = false
	rt.freed = append(rt.freed, id)
}

// fail records the first runtime error (policy contract violations land
// here via View.Fail).
func (rt *Runtime) fail(format string, args ...any) {
	if rt.err == nil {
		rt.err = fmt.Errorf(format, args...)
	}
}

// setRound advances time to t, flushing any verification windows the jump
// completes.
func (rt *Runtime) setRound(t int) error {
	if w := rt.cfg.VerifyEvery; w > 0 && t >= rt.vstart+w {
		// Rounds only move forward, so the buffer never holds flows beyond
		// the current window: one flush empties it, and the remaining
		// boundaries an idle jump crosses advance in a single step.
		if err := rt.flushWindow(rt.vstart + w); err != nil {
			return err
		}
		rt.vstart += (t - rt.vstart) / w * w
	}
	rt.round = t
	rt.mu.Lock()
	rt.m.round = t
	rt.mu.Unlock()
	return nil
}

// flushWindow spot-checks every flow scheduled in rounds [vstart, end)
// through the verify oracle. All loads in those rounds are fully
// represented — flows are buffered at departure and rounds only move
// forward — so the oracle's per-(port, round) capacity check is exact.
func (rt *Runtime) flushWindow(end int) error {
	if len(rt.vflows) == 0 {
		return nil
	}
	inst := &switchnet.Instance{Switch: rt.sw, Flows: rt.vflows}
	sched := &switchnet.Schedule{Round: rt.vrounds}
	if _, err := verify.CheckSchedule(inst, sched, rt.caps); err != nil {
		return fmt.Errorf("stream: window [%d,%d) failed verification: %w", rt.vstart, end, err)
	}
	rt.vflows = rt.vflows[:0]
	rt.vrounds = rt.vrounds[:0]
	rt.mu.Lock()
	rt.m.windows++
	rt.mu.Unlock()
	return nil
}

// applyRound retires this round's taken flows: callbacks, verification
// buffering, metric updates, structure unlinking, and load reset.
func (rt *Runtime) applyRound() {
	t := rt.round
	rt.resps = rt.resps[:0]
	for _, id := range rt.takes {
		s := &rt.slots[id]
		rt.resps = append(rt.resps, t+1-s.flow.Release)
		if rt.cfg.OnSchedule != nil {
			rt.cfg.OnSchedule(s.seq, s.flow, t)
		}
		if rt.cfg.VerifyEvery > 0 {
			rt.vflows = append(rt.vflows, s.flow)
			rt.vrounds = append(rt.vrounds, t)
		}
	}

	rt.mu.Lock()
	rt.m.rounds++
	for _, resp := range rt.resps {
		rt.m.completed++
		rt.m.totalResp += int64(resp)
		if resp > rt.m.maxResp {
			rt.m.maxResp = resp
		}
		rt.win.Observe(t, resp)
	}
	rt.mu.Unlock()

	for _, id := range rt.takes {
		rt.depart(id)
	}
	rt.takes = rt.takes[:0]
	for _, p := range rt.touchIn {
		rt.loadIn[p] = 0
	}
	for _, p := range rt.touchOut {
		rt.loadOut[p] = 0
	}
	rt.touchIn = rt.touchIn[:0]
	rt.touchOut = rt.touchOut[:0]
}

// Run drains the source: it advances round by round until the source is
// exhausted and the pending set is empty, then returns the final summary.
// It is not restartable.
func (rt *Runtime) Run() (*Summary, error) {
	if rt.err != nil {
		return nil, rt.err
	}
	stalled := 0
	for {
		rt.pull()
		for rt.count < rt.cfg.MaxPending && rt.haveLook && rt.look.Release <= rt.round {
			if err := rt.admit(rt.look); err != nil {
				return nil, err
			}
			rt.haveLook = false
			rt.pull()
		}
		if rt.count == 0 {
			if !rt.haveLook {
				if err := rt.src.Err(); err != nil {
					return nil, err
				}
				break
			}
			// Idle gap: jump straight to the next arrival.
			if err := rt.setRound(rt.look.Release); err != nil {
				return nil, err
			}
			continue
		}

		rt.cfg.Policy.Pick(&rt.view)
		if rt.err != nil {
			return nil, rt.err
		}
		if len(rt.takes) == 0 {
			stalled++
			if stalled > rt.cfg.StallRounds {
				return nil, fmt.Errorf("stream: policy %q scheduled nothing for %d consecutive rounds with %d flows pending",
					rt.cfg.Policy.Name(), stalled, rt.count)
			}
		} else {
			stalled = 0
		}
		rt.applyRound()
		if err := rt.setRound(rt.round + 1); err != nil {
			return nil, err
		}
	}
	if rt.cfg.VerifyEvery > 0 {
		if err := rt.flushWindow(rt.vstart + rt.cfg.VerifyEvery); err != nil {
			return nil, err
		}
	}
	s := rt.Snapshot()
	return &s, nil
}

// Snapshot returns the current streaming metrics. It is safe to call
// concurrently with Run.
func (rt *Runtime) Snapshot() Summary {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.win.Advance(rt.m.round)
	s := Summary{
		Round:           rt.m.round,
		Rounds:          rt.m.rounds,
		Admitted:        rt.m.admitted,
		Completed:       rt.m.completed,
		Pending:         int(rt.m.admitted - rt.m.completed),
		PeakPending:     rt.m.peakPending,
		Backpressured:   rt.m.backpressured,
		TotalResponse:   rt.m.totalResp,
		MaxResponse:     rt.m.maxResp,
		WindowsVerified: rt.m.windows,
		P50:             rt.win.Quantile(0.50),
		P90:             rt.win.Quantile(0.90),
		P99:             rt.win.Quantile(0.99),
	}
	if rt.m.completed > 0 {
		s.AvgResponse = float64(rt.m.totalResp) / float64(rt.m.completed)
	}
	return s
}
