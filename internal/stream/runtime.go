package stream

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flowsched/internal/obs"
	"flowsched/internal/stats"
	"flowsched/internal/switchnet"
	"flowsched/internal/verify"
)

// Source yields flows in non-decreasing release order. Next returns
// ok=false when the stream is exhausted or failed; Err reports the failure
// (nil for a clean end). The sources in internal/workload (ArrivalSource,
// TraceSource, InstanceSource) satisfy it.
type Source interface {
	Next() (f switchnet.Flow, ok bool)
	Err() error
}

// BatchSource is a Source that can also drain arrivals in batches:
// PullBatch appends to dst up to max flows whose Release is <= round and
// returns the extended slice, never consuming a later flow. The runtime
// detects it at construction and amortizes one call over a round's
// arrivals instead of paying an interface call per flow; the workload
// sources all implement it.
type BatchSource interface {
	Source
	PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow
}

// LiveFeeder marks a Source that is fed concurrently while the runtime
// drains it — a network ingest queue rather than a finite backing store —
// so running out of buffered flows does not mean the stream has ended.
// The runtime treats such a source differently in two ways: admission
// only ever drains what is immediately available (PullBatch must be
// non-blocking; a live source must implement BatchSource, checked at
// construction), and the blocking Next is consulted only when the
// pending set is empty, so an idle runtime parks on the source instead
// of spinning or terminating. Closing the source (Next returning
// ok=false once the feed is shut and drained) ends the run; Stop alone
// cannot interrupt a parked Next, so a shutdown path must close the
// source as well. internal/workload.ChanSource is the canonical
// implementation.
type LiveFeeder interface {
	Source
	// LiveFeed reports whether the source is concurrently fed. It is
	// consulted once, at construction.
	LiveFeed() bool
}

// ID identifies an admitted flow in a shard's pending set. IDs are
// shard-local and reused after departure: they are stable only while the
// flow is pending, and only meaningful against the View that produced
// them.
type ID = int

// NoID marks the absence of a pending flow.
const NoID ID = -1

// noID is NoID as the runtime's internal int32 link type.
const noID int32 = -1

// Policy selects a capacity-feasible set of pending flows each round by
// calling View.Take. The runtime enforces port capacities inside Take, so
// a policy cannot overload a port; it can only fail to make progress.
//
// In a sharded runtime (Config.Shards > 1) each shard runs its own policy
// instance and Pick may be invoked twice per round — once against the
// shard's carved output budgets and once against the reconciled leftover
// pool (see the package docs); the View is shard-scoped either way.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick selects flows for the current round. The pending set and all
	// View indexes are frozen during Pick; departures apply afterwards.
	Pick(v *View)
}

// Resetter is implemented by policies that carry per-run state (e.g.
// RoundRobin's rotation pointers); the runtime calls Reset on every policy
// instance once at construction.
type Resetter interface {
	Reset(sw switchnet.Switch)
}

// Shardable is implemented by policies that can run as independent
// per-shard instances when the runtime partitions input ports across
// shards. NewShard returns a fresh policy instance for one shard; each
// instance only ever sees the shard-scoped View of its own inputs.
// Policies that need the whole pending set each round (e.g. Bridge) must
// not implement it, which pins them to Shards == 1.
type Shardable interface {
	Policy
	NewShard() Policy
}

// Defaults for Config fields left zero.
const (
	DefaultMaxPending   = 1 << 17
	DefaultWindowRounds = 1024
	defaultWindowShards = 8
	DefaultStallRounds  = 4096
)

// AdmitMode selects how the runtime behaves when it cannot serve every
// arrival: lossless backpressure (the default), shedding on a full
// pending set, or deadline expiry of aged pending flows. See the package
// docs ("Admission modes") for the exact semantics and what each mode
// counts.
type AdmitMode int

const (
	// AdmitLossless stalls the source while the pending set is full:
	// nothing is ever dropped, late admissions count as Backpressured,
	// and response times stay charged from the original release round.
	AdmitLossless AdmitMode = iota
	// AdmitDrop sheds arrivals released while the pending set is full:
	// they are consumed from the source, never scheduled, and counted in
	// Summary.Dropped. The source is never stalled.
	AdmitDrop
	// AdmitDeadline expires pending flows that can no longer complete
	// within Config.Deadline rounds of their release: they leave the
	// pending set unscheduled and count in Summary.Expired, so every
	// completed flow satisfies response <= Deadline.
	AdmitDeadline
)

// String returns the mode's flag spelling ("lossless", "drop",
// "deadline").
func (m AdmitMode) String() string {
	switch m {
	case AdmitLossless:
		return "lossless"
	case AdmitDrop:
		return "drop"
	case AdmitDeadline:
		return "deadline"
	}
	return fmt.Sprintf("AdmitMode(%d)", int(m))
}

// ParseAdmitMode resolves a flag spelling to its mode.
func ParseAdmitMode(s string) (AdmitMode, error) {
	switch s {
	case "lossless", "":
		return AdmitLossless, nil
	case "drop":
		return AdmitDrop, nil
	case "deadline":
		return AdmitDeadline, nil
	}
	return 0, fmt.Errorf("stream: unknown admission mode %q (lossless, drop, deadline)", s)
}

// Config tunes a Runtime.
type Config struct {
	// Switch describes the port structure; all source flows must fit it.
	Switch switchnet.Switch
	// Policy selects flows each round. With Shards > 1 it must implement
	// Shardable; each shard then runs its own NewShard instance.
	Policy Policy
	// Shards partitions the input ports across that many runtime shards
	// (input i belongs to shard i mod Shards), scheduled by the
	// deterministic fused-barrier output-capacity protocol described in
	// the package docs. <= 0 selects GOMAXPROCS for Shardable policies
	// and 1 otherwise; the value is always capped at NumIn.
	Shards int
	// MaxPending bounds the resident pending set (admission control);
	// <= 0 selects DefaultMaxPending. What happens at the limit is
	// Admit's choice: backpressure (AdmitLossless, the default) or
	// shedding (AdmitDrop).
	MaxPending int
	// Admit selects the overload behavior: AdmitLossless (default)
	// stalls the source at MaxPending, AdmitDrop sheds arrivals while
	// the pending set is full, AdmitDeadline expires pending flows that
	// can no longer meet Deadline.
	Admit AdmitMode
	// Deadline is the response-time bound in rounds for AdmitDeadline: a
	// pending flow expires once completing in the current round would
	// give it a response greater than Deadline. Required positive with
	// AdmitDeadline, and must be zero with the other modes.
	Deadline int
	// VerifyEvery > 0 spot-checks each completed window of that many
	// rounds through the verify oracle.
	VerifyEvery int
	// WindowRounds is the sliding metrics window in rounds (<= 0 selects
	// DefaultWindowRounds); WindowShards its ring granularity (<= 0
	// selects 8).
	WindowRounds int
	WindowShards int
	// StallRounds aborts the run after the policy has scheduled nothing
	// for that many consecutive rounds with a non-empty pending set
	// (<= 0 selects DefaultStallRounds).
	StallRounds int
	// OnSchedule, when non-nil, observes every departure: seq is the
	// flow's admission sequence number (its position in source order). It
	// is always invoked from the goroutine driving Run, in shard index
	// order within a round.
	OnSchedule func(seq int64, f switchnet.Flow, round int)
	// Recorder, when non-nil, receives one obs.RoundRecord per scheduling
	// round, written by the coordinator inside the round loop: per-round
	// arrival/schedule/drop/expiry/pending counts plus per-phase
	// nanoseconds (propose, reconcile, apply, verify-join). Recording
	// adds no allocations to the steady-state round (asserted by
	// TestSteadyStateZeroAllocRecorded) and only two monotonic-clock
	// reads per timed phase; with Recorder nil the hot path takes no
	// clock reads at all.
	Recorder *obs.FlightRecorder
	// ResponseBound, when > 0, counts every completion whose response
	// time exceeds it in Summary.SlowResponses — an exact cumulative
	// violation counter (not sketch resolution) for response-time SLO
	// evaluation. Unlike AdmitDeadline it never changes the schedule:
	// slow flows still complete, they are just counted.
	ResponseBound int
	// Resume, when non-nil, restarts the runtime from a checkpointed
	// state: the clock opens at Resume.Round, the cumulative counters
	// continue from Resume.Counters, and the first Resume.Pending source
	// flows are treated as re-admissions of the checkpointed pending set
	// (original releases honored, not re-counted as admissions or
	// backpressure). The source must deliver exactly the checkpointed
	// flows first — workload.NewCheckpointSource wires this up; see the
	// package docs ("Durability and reload").
	Resume *Resume
	// CheckpointEveryRounds > 0 invokes OnCheckpoint with a quiescent
	// CheckpointState at most once per that many rounds, from the
	// coordinator between rounds. The trigger is a round-cadence integer
	// comparison — no clock reads, no allocations (the state and its
	// flow buffer are reused across captures, so the callback must not
	// retain them past its return). Requires OnCheckpoint.
	CheckpointEveryRounds int
	// OnCheckpoint receives periodic checkpoint captures (see
	// CheckpointEveryRounds). It runs on the coordinator goroutine with
	// the round loop paused; a slow callback stalls scheduling.
	OnCheckpoint func(*CheckpointState)
}

// Summary is a point-in-time view of the runtime's streaming metrics.
type Summary struct {
	// Round is the current round (one past the last scheduled round after
	// a completed Run).
	Round int
	// Rounds counts scheduling rounds actually processed (idle gaps are
	// skipped, not iterated).
	Rounds int64
	// Shards is the number of runtime shards the input ports are
	// partitioned across (1 = unsharded).
	Shards int
	// Admitted counts every flow the runtime consumed from the source —
	// including flows AdmitDrop shed — and Completed the flows scheduled
	// to completion, so the accounting always balances:
	// Admitted == Completed + Pending + Dropped + Expired. Pending is
	// the current resident count and PeakPending its high water mark
	// (never above MaxPending).
	Admitted    int64
	Completed   int64
	Pending     int
	PeakPending int
	// Backpressured counts flows admitted after their release round
	// because the pending set was full (AdmitLossless).
	Backpressured int64
	// Dropped counts arrivals shed on a full pending set (AdmitDrop);
	// Expired counts pending flows that aged past the deadline and left
	// unscheduled (AdmitDeadline). Both are zero in other modes.
	Dropped int64
	Expired int64
	// TotalResponse, AvgResponse, MaxResponse are the paper's metrics
	// over completed flows (C_e = round+1 convention).
	TotalResponse int64
	AvgResponse   float64
	MaxResponse   int
	// SlowResponses counts completions whose response time exceeded
	// Config.ResponseBound (zero when the bound is unset).
	SlowResponses int64
	// WindowsVerified counts spot-check windows the verify oracle
	// accepted.
	WindowsVerified int64
	// P50, P90, P99 are response-time quantiles over the sliding metrics
	// window, merged across shards (sketched; see stats.LogHistogram for
	// the error bound).
	P50, P90, P99 float64
}

// Runtime is the streaming scheduler. Run drives it from one goroutine —
// the coordinator — which pulls the source, routes arrivals to shards,
// and sequences the fused per-round phase; with Config.Shards > 1 that
// phase executes on a pool of shard worker goroutines behind a single
// barrier per round. Snapshot may be called concurrently from other
// goroutines; it reads atomics and epoch windows only, so it never
// stalls the round loop.
type Runtime struct {
	cfg     Config
	src     Source
	batcher BatchSource
	sw      switchnet.Switch
	caps    []int

	// live marks a concurrently-fed source (see LiveFeeder): admission
	// never blocks and the round loop parks on Next only when idle.
	// deadline caches Config.Deadline for the shards' expiry walk.
	live     bool
	deadline int

	// rec is Config.Recorder; respBound caches Config.ResponseBound for
	// the shards' apply pass. The recArrived/recDropped counts and the
	// per-phase nanosecond accumulators hold what has accrued since the
	// last emitted record; all are touched only when rec != nil.
	rec          *obs.FlightRecorder
	respBound    int
	recArrived   int64
	recDropped   int64
	tProposeNS   int64
	tReconcileNS int64
	tApplyNS     int64
	tVerifyNS    int64

	// ctl carries control requests — pending-set snapshots, checkpoint
	// captures, live reloads — into the round loop (see serveCtl);
	// finished is closed once Run returns, switching late snapshots to a
	// direct read of the quiescent shard state. wake unparks an idle
	// live runtime (Parker sources) so a queued request or a Stop is
	// noticed while the feed is quiet.
	ctl      chan ctlReq
	wake     chan struct{}
	finished chan struct{}
	finOnce  sync.Once

	// stop requests a clean stop of Run between rounds (see Stop).
	stop atomic.Bool

	// parker is the source's Park method when it offers one (see Parker).
	parker Parker

	// Restore and periodic-checkpoint state: restoreLeft counts source
	// flows still owed to checkpoint re-admission (not re-counted);
	// ckptEvery/nextCkpt drive the round-cadence OnCheckpoint trigger,
	// with ckptState/ckptBuf reused across captures so a warmed trigger
	// allocates nothing.
	restoreLeft int
	ckptEvery   int
	nextCkpt    int
	ckptState   CheckpointState
	ckptBuf     []switchnet.Flow
	mergeHeads  []int32

	nshards int
	shards  []*shard

	round int
	count int
	seq   int64
	peak  int

	look     switchnet.Flow
	haveLook bool
	srcDone  bool
	lastRel  int
	batch    []switchnet.Flow

	// leftover is the reconcile-phase output budget pool, rebuilt each
	// round from OutCaps minus the propose-phase usage (nshards > 1);
	// totalOutCap is sum(OutCaps), the pool's upper bound.
	leftover    []int
	totalOutCap int

	// Pipelined-reconcile state (nshards > 1): tok[p] hands the pool from
	// reconcile position p to p+1, reconOrder is the round's shard
	// visiting order (identity, or oldest-head-first for age-indexed
	// policies), and reconRel is its per-shard sort key scratch.
	tok        []chan struct{}
	reconOrder []int
	reconRel   []int64

	// Checkpoint-capture scratch for policy scratch state and window
	// sketches, reused across captures so a warmed checkpoint cadence
	// allocates nothing (see collectScratch, collectWindows).
	scratchBufs [][]int64
	winBufs     []stats.WindowSnapshot

	err     error
	stalled int
	started bool

	// Verification window state: vstart is the active window's first
	// round; vflows/vrounds are the flush-time merge scratch, checked by
	// an overlapped oracle goroutine (vdone joins it).
	vstart   int
	vflows   []switchnet.Flow
	vrounds  []int
	vpending bool
	vdone    chan error

	wg sync.WaitGroup

	// Snapshot-visible coordinator metrics. The round loop only ever
	// stores/adds; Snapshot only loads.
	mRound         atomic.Int64
	mRounds        atomic.Int64
	mAdmitted      atomic.Int64
	mBackpressured atomic.Int64
	mDropped       atomic.Int64
	mPeak          atomic.Int64
	mWindows       atomic.Int64

	// snapMu serializes concurrent Snapshot callers over the merge
	// scratch; the round loop never takes it.
	snapMu       sync.Mutex
	scratch      stats.LogHistogram
	shardScratch stats.LogHistogram
}

// New builds a Runtime over src. The configuration is validated eagerly:
// an empty switch, non-positive capacities, a missing policy, or a shard
// count the policy cannot support are construction errors, not run-time
// surprises.
func New(src Source, cfg Config) (*Runtime, error) {
	if src == nil {
		return nil, fmt.Errorf("stream: nil source")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("stream: nil policy")
	}
	mIn, mOut := cfg.Switch.NumIn(), cfg.Switch.NumOut()
	if mIn == 0 || mOut == 0 {
		return nil, fmt.Errorf("stream: switch has no ports (%d x %d)", mIn, mOut)
	}
	if mIn > 1<<15 || mOut > 1<<15 {
		// Port numbers ride in the arena's 16-bit descriptor fields.
		return nil, fmt.Errorf("stream: switch %d x %d exceeds the runtime's %d ports per side", mIn, mOut, 1<<15)
	}
	for i, c := range cfg.Switch.InCaps {
		if c <= 0 {
			return nil, fmt.Errorf("stream: input port %d capacity %d is not positive", i, c)
		}
		if c > math.MaxInt32 {
			// Demands ride in the arena's 32-bit descriptor field and are
			// bounded by the port capacities (ValidateFlow).
			return nil, fmt.Errorf("stream: input port %d capacity %d exceeds the runtime's %d", i, c, math.MaxInt32)
		}
	}
	for j, c := range cfg.Switch.OutCaps {
		if c <= 0 {
			return nil, fmt.Errorf("stream: output port %d capacity %d is not positive", j, c)
		}
		if c > math.MaxInt32 {
			return nil, fmt.Errorf("stream: output port %d capacity %d exceeds the runtime's %d", j, c, math.MaxInt32)
		}
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	switch cfg.Admit {
	case AdmitLossless, AdmitDrop:
		if cfg.Deadline != 0 {
			return nil, fmt.Errorf("stream: Deadline %d is set but Admit is %s (deadlines need AdmitDeadline)", cfg.Deadline, cfg.Admit)
		}
	case AdmitDeadline:
		if cfg.Deadline <= 0 {
			return nil, fmt.Errorf("stream: AdmitDeadline needs a positive Deadline, got %d", cfg.Deadline)
		}
	default:
		return nil, fmt.Errorf("stream: unknown admission mode %d", int(cfg.Admit))
	}
	if cfg.ResponseBound < 0 {
		return nil, fmt.Errorf("stream: ResponseBound %d is negative", cfg.ResponseBound)
	}
	if cfg.WindowRounds <= 0 {
		cfg.WindowRounds = DefaultWindowRounds
	}
	if cfg.WindowShards <= 0 {
		cfg.WindowShards = defaultWindowShards
	}
	if cfg.StallRounds <= 0 {
		cfg.StallRounds = DefaultStallRounds
	}
	sharder, shardable := cfg.Policy.(Shardable)
	if cfg.Shards <= 0 {
		cfg.Shards = 1
		if shardable {
			cfg.Shards = runtime.GOMAXPROCS(0)
		}
	}
	if cfg.Shards > mIn {
		cfg.Shards = mIn
	}
	if cfg.Shards > 1 && !shardable {
		return nil, fmt.Errorf("stream: policy %q cannot run sharded (it does not implement Shardable); set Config.Shards to 1",
			cfg.Policy.Name())
	}
	if _, indexed := cfg.Policy.(ageIndexUser); indexed && cfg.Shards > 1 {
		// The age index (built only on sharded runtimes) packs a VOQ's
		// index into aiViBits of its entry key; the largest shard owns
		// ceil(mIn/K) inputs.
		if nLoc := (mIn + cfg.Shards - 1) / cfg.Shards; nLoc*mOut > 1<<aiViBits {
			return nil, fmt.Errorf("stream: policy %q needs %d VOQs per shard, over the age index's %d (use more shards or a smaller switch)",
				cfg.Policy.Name(), nLoc*mOut, 1<<aiViBits)
		}
	}
	if cfg.CheckpointEveryRounds < 0 {
		return nil, fmt.Errorf("stream: CheckpointEveryRounds %d is negative", cfg.CheckpointEveryRounds)
	}
	if cfg.CheckpointEveryRounds > 0 && cfg.OnCheckpoint == nil {
		return nil, fmt.Errorf("stream: CheckpointEveryRounds %d needs an OnCheckpoint callback", cfg.CheckpointEveryRounds)
	}
	rt := &Runtime{
		cfg:       cfg,
		src:       src,
		sw:        cfg.Switch,
		caps:      cfg.Switch.Caps(),
		deadline:  cfg.Deadline,
		rec:       cfg.Recorder,
		respBound: cfg.ResponseBound,
		nshards:   cfg.Shards,
		shards:    make([]*shard, cfg.Shards),
		vdone:     make(chan error, 1),
		ctl:       make(chan ctlReq, 1),
		wake:      make(chan struct{}, 1),
		finished:  make(chan struct{}),
		ckptEvery: cfg.CheckpointEveryRounds,
		nextCkpt:  cfg.CheckpointEveryRounds,
	}
	rt.batcher, _ = src.(BatchSource)
	if lf, ok := src.(LiveFeeder); ok && lf.LiveFeed() {
		if rt.batcher == nil {
			return nil, fmt.Errorf("stream: live source %T must implement BatchSource (admission from a live feed cannot block)", src)
		}
		rt.live = true
		rt.parker, _ = src.(Parker)
	}
	if rt.nshards > 1 {
		rt.leftover = make([]int, mOut)
		for _, c := range cfg.Switch.OutCaps {
			rt.totalOutCap += c
		}
		rt.tok = make([]chan struct{}, rt.nshards)
		for i := range rt.tok {
			rt.tok[i] = make(chan struct{}, 1)
		}
		rt.reconOrder = make([]int, rt.nshards)
		rt.reconRel = make([]int64, rt.nshards)
	}
	for s := range rt.shards {
		pol := cfg.Policy
		if rt.nshards > 1 {
			pol = sharder.NewShard()
		}
		if r, ok := pol.(Resetter); ok {
			r.Reset(cfg.Switch)
		}
		rt.shards[s] = newShard(rt, s, pol)
	}
	if cfg.Resume != nil {
		if err := rt.applyResume(cfg.Resume); err != nil {
			return nil, err
		}
		if rt.ckptEvery > 0 {
			rt.nextCkpt = rt.round + rt.ckptEvery
		}
	}
	return rt, nil
}

// pull refreshes the one-flow lookahead from the source.
func (rt *Runtime) pull() {
	if rt.haveLook || rt.srcDone {
		return
	}
	f, ok := rt.src.Next()
	if !ok {
		rt.srcDone = true
		return
	}
	rt.look, rt.haveLook = f, true
}

// checkFlow validates the stream contract for a consumed flow — releases
// non-decreasing, flow admissible on the switch — whether it is routed or
// shed, so a malformed source fails the run even under AdmitDrop.
func (rt *Runtime) checkFlow(f switchnet.Flow) error {
	if f.Release < rt.lastRel {
		return fmt.Errorf("stream: source yielded release %d after %d (must be non-decreasing)", f.Release, rt.lastRel)
	}
	rt.lastRel = f.Release
	if f.Release >= aiMaxRel && rt.shards[0].ai != nil {
		// Releases ride in the age index's packed keys, so an indexed
		// run has a (2^40-round) horizon; plain policies accept any
		// release (sparse streams jump idle gaps far larger than this).
		return fmt.Errorf("stream: release %d is at or beyond the age index's %d-round horizon (use a non-indexed policy)", f.Release, int64(aiMaxRel))
	}
	if err := rt.sw.ValidateFlow(f); err != nil {
		return fmt.Errorf("stream: inadmissible flow: %w", err)
	}
	return nil
}

// route validates f, assigns its admission sequence number, and queues it
// on its input port's shard; the shard threads it during the next round
// phase. Returns the number backpressured (0 or 1) for metric batching.
func (rt *Runtime) route(f switchnet.Flow) (int, error) {
	if err := rt.checkFlow(f); err != nil {
		return 0, err
	}
	sh := rt.shards[f.In%rt.nshards]
	sh.inbox = append(sh.inbox, arrival{flow: f, seq: rt.seq})
	rt.seq++
	rt.count++
	if rt.restoreLeft > 0 {
		// A checkpoint re-admission: its release predates the resume round
		// by construction, but it was already counted (admitted, and
		// backpressured if it ever was) before the checkpoint.
		rt.restoreLeft--
		return 0, nil
	}
	if f.Release < rt.round {
		return 1, nil
	}
	return 0, nil
}

// dropChunk is the batch size for shedding a released backlog under
// AdmitDrop: large enough to amortize the interface call, small enough
// that the reused batch buffer stays cache-resident.
const dropChunk = 512

// admitted batches one admission pass's counter updates into the
// snapshot-visible atomics.
func (rt *Runtime) admitted(arrived, backpressured, dropped int) {
	if arrived == 0 {
		return
	}
	if rt.rec != nil {
		rt.recArrived += int64(arrived)
		rt.recDropped += int64(dropped)
	}
	rt.mAdmitted.Add(int64(arrived))
	if backpressured > 0 {
		rt.mBackpressured.Add(int64(backpressured))
	}
	if dropped > 0 {
		rt.mDropped.Add(int64(dropped))
	}
	if rt.count > rt.peak {
		rt.peak = rt.count
		rt.mPeak.Store(int64(rt.peak))
	}
}

// admit drains every currently-released arrival the admission mode
// allows into the shard inboxes, one batch call when the source supports
// it. Under AdmitDrop a full pending set sheds the released backlog
// instead of stalling the source.
func (rt *Runtime) admit() error {
	if rt.live {
		return rt.admitLive()
	}
	rt.pull()
	arrived, backpressured, dropped := 0, 0, 0
	drop := rt.cfg.Admit == AdmitDrop
	for rt.haveLook && rt.look.Release <= rt.round {
		if rt.count >= rt.cfg.MaxPending {
			if !drop {
				break
			}
			if err := rt.checkFlow(rt.look); err != nil {
				return err
			}
			arrived++
			dropped++
			rt.haveLook = false
			for rt.batcher != nil {
				rt.batch = rt.batcher.PullBatch(rt.batch[:0], rt.round, dropChunk)
				for _, f := range rt.batch {
					if err := rt.checkFlow(f); err != nil {
						return err
					}
				}
				arrived += len(rt.batch)
				dropped += len(rt.batch)
				if len(rt.batch) < dropChunk {
					break
				}
			}
			rt.pull()
			continue
		}
		bp, err := rt.route(rt.look)
		if err != nil {
			return err
		}
		arrived++
		backpressured += bp
		rt.haveLook = false
		if rt.batcher != nil && rt.count < rt.cfg.MaxPending {
			rt.batch = rt.batcher.PullBatch(rt.batch[:0], rt.round, rt.cfg.MaxPending-rt.count)
			for _, f := range rt.batch {
				bp, err := rt.route(f)
				if err != nil {
					return err
				}
				arrived++
				backpressured += bp
			}
		}
		rt.pull()
	}
	rt.admitted(arrived, backpressured, dropped)
	return nil
}

// admitLive is the admission pass for concurrently-fed sources: it
// drains only what the feed has immediately available (PullBatch never
// blocks on a LiveFeeder) and never terminates the stream — end of feed
// is detected by the idle park in step, not here.
func (rt *Runtime) admitLive() error {
	arrived, backpressured, dropped := 0, 0, 0
	drop := rt.cfg.Admit == AdmitDrop
	if rt.haveLook {
		// A flow the idle park pulled: admit it ahead of the batch. The
		// park only returns with an empty pending set, so there is always
		// room.
		bp, err := rt.route(rt.look)
		if err != nil {
			return err
		}
		arrived++
		backpressured += bp
		rt.haveLook = false
	}
	for !rt.srcDone {
		want := rt.cfg.MaxPending - rt.count
		if want <= 0 {
			if !drop {
				break
			}
			want = dropChunk
		}
		rt.batch = rt.batcher.PullBatch(rt.batch[:0], rt.round, want)
		for _, f := range rt.batch {
			if rt.count < rt.cfg.MaxPending {
				bp, err := rt.route(f)
				if err != nil {
					return err
				}
				backpressured += bp
			} else {
				if err := rt.checkFlow(f); err != nil {
					return err
				}
				dropped++
			}
		}
		arrived += len(rt.batch)
		if len(rt.batch) < want {
			break
		}
	}
	rt.admitted(arrived, backpressured, dropped)
	return nil
}

// startWorkers launches the shard worker pool (nshards > 1); stopWorkers
// shuts it down. Run brackets itself with them; white-box tests driving
// step directly do the same.
func (rt *Runtime) startWorkers() {
	if rt.nshards == 1 || rt.started {
		return
	}
	rt.started = true
	for _, sh := range rt.shards {
		sh.work = make(chan int, 1)
		go sh.serve()
	}
}

func (rt *Runtime) stopWorkers() {
	if !rt.started {
		return
	}
	rt.started = false
	for _, sh := range rt.shards {
		close(sh.work)
	}
}

// runPhase executes ph on every shard: inline for a single shard, on the
// worker pool otherwise. It is the protocol's only synchronization point:
// the coordinator blocks here once per round.
func (rt *Runtime) runPhase(ph int) {
	if rt.nshards == 1 {
		rt.shards[0].do(ph)
		return
	}
	rt.wg.Add(rt.nshards)
	for _, sh := range rt.shards {
		sh.work <- ph
	}
	rt.wg.Wait()
}

// owedApply reports whether any shard still holds settled picks awaiting
// retirement under the fused protocol.
func (rt *Runtime) owedApply() bool {
	for _, sh := range rt.shards {
		if len(sh.takes) > 0 {
			return true
		}
	}
	return false
}

// applyPending forces retirement of owed picks outside the fused cadence,
// so verification flushes, idle jumps, and the end of the run observe
// fully settled state.
func (rt *Runtime) applyPending() {
	if !rt.owedApply() {
		return
	}
	if rt.rec != nil {
		t0 := time.Now()
		rt.runPhase(phaseApply)
		rt.tApplyNS += time.Since(t0).Nanoseconds()
		return
	}
	rt.runPhase(phaseApply)
}

// reconcile redistributes output capacity no shard used in the propose
// phase: leftover[j] = OutCaps[j] - total phase-1 usage, then each shard
// gets a second Pick against the shared pool. The second Picks run as a
// pipelined shard-to-shard token chain (phaseReconcile): the coordinator
// assigns each shard its position in a deterministic visiting order,
// dispatches the phase to all workers at once, and each shard picks as
// soon as its predecessor hands over the token — so the pass overlaps
// its own dispatch, serve-loop, and cache traffic across workers instead
// of running coordinator-serial. The order is the shard index order for
// plain policies (bit-identical to the serial sweep this replaced); for
// age-indexed policies it is oldest-head-first over the shards' index
// fronts (ties to the lower shard index), so OldestFirst service against
// the shared pool is globally, not per-shard, oldest-first. Either order
// is a pure function of quiescent shard state, so schedules stay
// deterministic for a fixed K.
func (rt *Runtime) reconcile() {
	copy(rt.leftover, rt.sw.OutCaps)
	used := 0
	for _, sh := range rt.shards {
		for _, j := range sh.touchOut {
			rt.leftover[j] -= sh.loadOut[j]
			used += sh.loadOut[j]
		}
	}
	if used == rt.totalOutCap {
		// Saturated round: nothing to redistribute, so skip the reconcile
		// pass entirely.
		return
	}
	order := rt.reconOrder
	for i := range order {
		order[i] = i
	}
	if rt.shards[0].ai != nil {
		for i, sh := range rt.shards {
			rt.reconRel[i] = sh.ai.oldestRel()
		}
		// Insertion sort by (oldest head release, shard index): K is
		// small, the keys are nearly sorted round over round, and the
		// tie-break keeps the sort stable over the identity order.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0; j-- {
				a, b := order[j], order[j-1]
				if rt.reconRel[a] > rt.reconRel[b] || (rt.reconRel[a] == rt.reconRel[b] && a > b) {
					break
				}
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	}
	for pos, s := range order {
		rt.shards[s].reconPos = pos
	}
	rt.wg.Add(rt.nshards)
	for _, s := range order {
		rt.shards[s].work <- phaseReconcile
	}
	rt.wg.Wait()
}

// firstErr surfaces the first error in deterministic order: the runtime's
// own, then each shard's in shard order.
func (rt *Runtime) firstErr() error {
	if rt.err != nil {
		return rt.err
	}
	for _, sh := range rt.shards {
		if sh.err != nil {
			return sh.err
		}
	}
	return nil
}

// setRound advances time to t, flushing any verification window the jump
// completes.
func (rt *Runtime) setRound(t int) error {
	if w := rt.cfg.VerifyEvery; w > 0 && t >= rt.vstart+w {
		// Rounds only move forward, so the buffers never hold flows beyond
		// the current window: one flush empties them, and the remaining
		// boundaries an idle jump crosses advance in a single step. Owed
		// picks retire first so the closing window's loads are complete.
		rt.applyPending()
		if err := rt.flushWindow(); err != nil {
			return err
		}
		rt.vstart += (t - rt.vstart) / w * w
	}
	rt.round = t
	rt.mRound.Store(int64(t))
	return nil
}

// flushWindow hands every buffered scheduled flow to an overlapped verify
// goroutine. All loads in the buffered rounds are fully represented —
// flows are buffered at retirement across all shards, owed picks are
// settled before a flush, and rounds only move forward — so the oracle's
// per-(port, round) capacity check is exact. The check for window w runs
// concurrently with the rounds of window w+1 and is joined at the next
// flush (or the end of the run), hiding the oracle's cost on spare cores
// without changing the schedule; failures are labelled with the true
// min/max buffered rounds, not the window boundaries, so an idle jump
// across several window starts cannot skew the report.
func (rt *Runtime) flushWindow() error {
	if err := rt.joinVerify(); err != nil {
		return err
	}
	rt.vflows = rt.vflows[:0]
	rt.vrounds = rt.vrounds[:0]
	lo, hi := 0, 0
	for _, sh := range rt.shards {
		rt.vflows = append(rt.vflows, sh.vflows...)
		for _, r := range sh.vrounds {
			if len(rt.vrounds) == 0 || r < lo {
				lo = r
			}
			if len(rt.vrounds) == 0 || r > hi {
				hi = r
			}
			rt.vrounds = append(rt.vrounds, r)
		}
		sh.vflows = sh.vflows[:0]
		sh.vrounds = sh.vrounds[:0]
	}
	if len(rt.vflows) == 0 {
		return nil
	}
	rt.vpending = true
	go func(lo, hi int) {
		inst := &switchnet.Instance{Switch: rt.sw, Flows: rt.vflows}
		sched := &switchnet.Schedule{Round: rt.vrounds}
		if _, err := verify.CheckSchedule(inst, sched, rt.caps); err != nil {
			rt.vdone <- fmt.Errorf("stream: verification window over rounds [%d, %d] infeasible: %w", lo, hi, err)
			return
		}
		rt.mWindows.Add(1)
		rt.vdone <- nil
	}(lo, hi)
	return nil
}

// joinVerify waits for the in-flight window check, if any. The channel is
// buffered, so an abandoned check (error path elsewhere) cannot leak its
// goroutine.
func (rt *Runtime) joinVerify() error {
	if !rt.vpending {
		return nil
	}
	rt.vpending = false
	if rt.rec != nil {
		t0 := time.Now()
		err := <-rt.vdone
		rt.tVerifyNS += time.Since(t0).Nanoseconds()
		return err
	}
	return <-rt.vdone
}

// step advances the runtime by one iteration — an idle jump or one fused
// scheduling round — and reports whether the stream is fully drained.
func (rt *Runtime) step() (done bool, err error) {
	rt.serveCtl()
	if rt.ckptEvery > 0 && rt.round >= rt.nextCkpt {
		// Round-cadence periodic checkpoint: the trigger is one integer
		// compare per step (no clock reads) and the capture reuses the
		// runtime-owned state and flow buffer, so a warmed checkpoint
		// cadence adds nothing to the steady-state allocation budget.
		rt.fireCheckpoint()
	}
	if err := rt.admit(); err != nil {
		return false, err
	}
	if rt.count == 0 {
		rt.applyPending()
		if !rt.haveLook {
			if rt.live && !rt.srcDone {
				return rt.park()
			}
			if err := rt.src.Err(); err != nil {
				return false, err
			}
			return true, nil
		}
		// Idle gap: jump straight to the next arrival.
		return false, rt.setRound(rt.look.Release)
	}

	// The fused phase: every shard retires the previous round's picks,
	// admits its routed arrivals, and proposes against its carved output
	// budgets — then the coordinator reconciles unused capacity.
	var t0 time.Time
	if rt.rec != nil {
		t0 = time.Now()
	}
	rt.runPhase(phaseRound)
	if rt.rec != nil {
		rt.tProposeNS += time.Since(t0).Nanoseconds()
	}
	if rt.nshards > 1 {
		if rt.rec != nil {
			t0 = time.Now()
		}
		rt.reconcile()
		if rt.rec != nil {
			rt.tReconcileNS += time.Since(t0).Nanoseconds()
		}
	}
	if err := rt.firstErr(); err != nil {
		rt.err = err
		return false, err
	}

	total, expired := 0, 0
	for _, sh := range rt.shards {
		total += len(sh.takes)
		if rt.deadline > 0 {
			expired += sh.expRound
		}
	}
	rt.mRounds.Add(1)
	if total == 0 && expired == 0 {
		rt.stalled++
		if rt.stalled >= rt.cfg.StallRounds {
			return false, fmt.Errorf("stream: policy %q scheduled nothing for %d consecutive rounds with %d flows pending",
				rt.cfg.Policy.Name(), rt.stalled, rt.count)
		}
	} else {
		rt.stalled = 0
	}

	if cb := rt.cfg.OnSchedule; cb != nil {
		// Shard workers are quiescent between phases and retirement of
		// this round's picks is deferred to the next fused phase, so the
		// taken slots are still live here; shard order keeps the callback
		// sequence deterministic.
		for _, sh := range rt.shards {
			for _, id := range sh.takes {
				cb(sh.ar.seq[id], sh.ar.flow(id), rt.round)
			}
		}
	}
	rt.count -= total + expired
	if rt.rec != nil {
		// One record per scheduling round (idle jumps emit nothing, so
		// the trace's rounds are strictly increasing). Phase time accrued
		// outside this round — an apply forced by an idle jump, a verify
		// join at a window flush — has landed in the accumulators and is
		// charged here, then everything resets for the next record.
		rt.rec.Record(obs.RoundRecord{
			Round:       int64(rt.round),
			Arrived:     rt.recArrived,
			Scheduled:   int64(total),
			Dropped:     rt.recDropped,
			Expired:     int64(expired),
			Pending:     int64(rt.count),
			ProposeNS:   rt.tProposeNS,
			ReconcileNS: rt.tReconcileNS,
			ApplyNS:     rt.tApplyNS,
			VerifyNS:    rt.tVerifyNS,
		})
		rt.recArrived, rt.recDropped = 0, 0
		rt.tProposeNS, rt.tReconcileNS, rt.tApplyNS, rt.tVerifyNS = 0, 0, 0, 0
	}
	return false, rt.setRound(rt.round + 1)
}

// park blocks an idle live runtime on the source until the feed produces
// a flow or closes. A stop requested before the park is honored without
// blocking. With a Parker source the block is also interrupted by the
// wake channel — a queued control request (or a Stop, which nudges) gets
// serviced on the next step instead of waiting for an arrival; with a
// plain LiveFeeder, Stop cannot interrupt the block itself and a
// shutdown path must close the source too (see LiveFeeder).
func (rt *Runtime) park() (done bool, err error) {
	if rt.stop.Load() {
		return true, nil
	}
	var f switchnet.Flow
	var ok bool
	if rt.parker != nil {
		var woke bool
		f, ok, woke = rt.parker.Park(rt.wake)
		if woke {
			// No flow consumed; loop back through step, which services the
			// control mailbox (or notices the stop) and parks again.
			return false, nil
		}
	} else {
		f, ok = rt.src.Next()
	}
	if !ok {
		rt.srcDone = true
		if err := rt.src.Err(); err != nil {
			return false, err
		}
		return true, nil
	}
	rt.look, rt.haveLook = f, true
	if f.Release > rt.round {
		return false, rt.setRound(f.Release)
	}
	return false, nil
}

// Run drains the source: it advances round by round until the source is
// exhausted and the pending set is empty — or until Stop is called — then
// returns the final summary. On either exit every owed pick is settled,
// the verify goroutine is joined, and the shard worker pool is shut down.
// It is not restartable.
func (rt *Runtime) Run() (*Summary, error) {
	defer rt.finOnce.Do(func() { close(rt.finished) })
	if err := rt.firstErr(); err != nil {
		return nil, err
	}
	rt.startWorkers()
	defer rt.stopWorkers()
	for !rt.stop.Load() {
		done, err := rt.step()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	// A stop can land between a fused phase and its deferred retirement;
	// settle so the final summary reflects every pick taken. (No-op on the
	// drained path — step settles before reporting done.)
	rt.applyPending()
	if rt.cfg.VerifyEvery > 0 {
		if err := rt.flushWindow(); err != nil {
			return nil, err
		}
		if err := rt.joinVerify(); err != nil {
			return nil, err
		}
	}
	s := rt.Snapshot()
	return &s, nil
}

// Stop requests a clean stop: Run finishes the iteration in flight,
// settles owed picks, joins the verify goroutine, and returns the final
// Summary with a nil error. Safe to call from any goroutine, before or
// during Run, and idempotent. A live runtime parked idle on a Parker
// source is woken and stops promptly; parked on a plain LiveFeeder's
// Next it is not interruptible — that shutdown path must close the
// source too.
func (rt *Runtime) Stop() {
	rt.stop.Store(true)
	rt.nudge()
}

// RunContext is Run with context cancellation wired to Stop: cancelling
// ctx stops the run cleanly, returning the final Summary (not ctx.Err()).
func (rt *Runtime) RunContext(ctx context.Context) (*Summary, error) {
	if ctx.Err() != nil {
		// AfterFunc runs its callback asynchronously even for an
		// already-cancelled context; stop synchronously so no work starts.
		rt.Stop()
	}
	defer context.AfterFunc(ctx, rt.Stop)()
	return rt.Run()
}

// collectPending appends every resident pending flow to dst, walking each
// shard's admission-order sublist in shard order. The caller must hold
// the state quiescent: the coordinator between phases (with owed picks
// settled), or any goroutine after Run has returned.
func (rt *Runtime) collectPending(dst []switchnet.Flow) []switchnet.Flow {
	for _, sh := range rt.shards {
		a := &sh.ar
		for id := sh.head; id != noID; id = a.rec[id].next {
			dst = append(dst, a.flow(id))
		}
	}
	return dst
}

// Snapshot returns the current streaming metrics, merging the per-shard
// completion counters and window sketches. It is safe to call concurrently
// with Run and never blocks the round loop: scalar counters are atomics
// and the window sketches are epoch (seqlock) windows the reader retries,
// so the coordinator and shard workers proceed at full speed while any
// number of snapshots are taken.
func (rt *Runtime) Snapshot() Summary {
	rt.snapMu.Lock()
	defer rt.snapMu.Unlock()
	round := int(rt.mRound.Load())
	rt.scratch.Reset()
	var completed, totalResp, expired, slow int64
	maxResp := 0
	for _, sh := range rt.shards {
		completed += sh.completed.Load()
		expired += sh.expired.Load()
		slow += sh.slowResp.Load()
		totalResp += sh.totalResp.Load()
		if m := int(sh.maxResp.Load()); m > maxResp {
			maxResp = m
		}
		sh.win.ReadInto(&rt.shardScratch, round)
		rt.scratch.Merge(&rt.shardScratch)
	}
	// Admitted loads after the outcome counters: it only grows and is
	// always at least their sum on the writer side, so
	// Completed + Dropped + Expired <= Admitted (and Pending >= 0) holds
	// in every snapshot.
	dropped := rt.mDropped.Load()
	admitted := rt.mAdmitted.Load()
	s := Summary{
		Round:           round,
		Rounds:          rt.mRounds.Load(),
		Shards:          rt.nshards,
		Admitted:        admitted,
		Completed:       completed,
		Pending:         int(admitted - completed - dropped - expired),
		PeakPending:     int(rt.mPeak.Load()),
		Backpressured:   rt.mBackpressured.Load(),
		Dropped:         dropped,
		Expired:         expired,
		TotalResponse:   totalResp,
		MaxResponse:     maxResp,
		SlowResponses:   slow,
		WindowsVerified: rt.mWindows.Load(),
		P50:             rt.scratch.Quantile(0.50),
		P90:             rt.scratch.Quantile(0.90),
		P99:             rt.scratch.Quantile(0.99),
	}
	if completed > 0 {
		s.AvgResponse = float64(totalResp) / float64(completed)
	}
	return s
}
