package stream

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"flowsched/internal/stats"
	"flowsched/internal/switchnet"
	"flowsched/internal/verify"
)

// Source yields flows in non-decreasing release order. Next returns
// ok=false when the stream is exhausted or failed; Err reports the failure
// (nil for a clean end). The sources in internal/workload (ArrivalSource,
// TraceSource, InstanceSource) satisfy it.
type Source interface {
	Next() (f switchnet.Flow, ok bool)
	Err() error
}

// BatchSource is a Source that can also drain arrivals in batches:
// PullBatch appends to dst up to max flows whose Release is <= round and
// returns the extended slice, never consuming a later flow. The runtime
// detects it at construction and amortizes one call over a round's
// arrivals instead of paying an interface call per flow; the workload
// sources all implement it.
type BatchSource interface {
	Source
	PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow
}

// ID identifies an admitted flow in a shard's pending set. IDs are
// shard-local and reused after departure: they are stable only while the
// flow is pending, and only meaningful against the View that produced
// them.
type ID = int

// NoID marks the absence of a pending flow.
const NoID ID = -1

// noID is NoID as the runtime's internal int32 link type.
const noID int32 = -1

// Policy selects a capacity-feasible set of pending flows each round by
// calling View.Take. The runtime enforces port capacities inside Take, so
// a policy cannot overload a port; it can only fail to make progress.
//
// In a sharded runtime (Config.Shards > 1) each shard runs its own policy
// instance and Pick may be invoked twice per round — once against the
// shard's carved output budgets and once against the reconciled leftover
// pool (see the package docs); the View is shard-scoped either way.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick selects flows for the current round. The pending set and all
	// View indexes are frozen during Pick; departures apply afterwards.
	Pick(v *View)
}

// Resetter is implemented by policies that carry per-run state (e.g.
// RoundRobin's rotation pointers); the runtime calls Reset on every policy
// instance once at construction.
type Resetter interface {
	Reset(sw switchnet.Switch)
}

// Shardable is implemented by policies that can run as independent
// per-shard instances when the runtime partitions input ports across
// shards. NewShard returns a fresh policy instance for one shard; each
// instance only ever sees the shard-scoped View of its own inputs.
// Policies that need the whole pending set each round (e.g. Bridge) must
// not implement it, which pins them to Shards == 1.
type Shardable interface {
	Policy
	NewShard() Policy
}

// Defaults for Config fields left zero.
const (
	DefaultMaxPending   = 1 << 17
	DefaultWindowRounds = 1024
	defaultWindowShards = 8
	DefaultStallRounds  = 4096
)

// Config tunes a Runtime.
type Config struct {
	// Switch describes the port structure; all source flows must fit it.
	Switch switchnet.Switch
	// Policy selects flows each round. With Shards > 1 it must implement
	// Shardable; each shard then runs its own NewShard instance.
	Policy Policy
	// Shards partitions the input ports across that many runtime shards
	// (input i belongs to shard i mod Shards), scheduled by the
	// deterministic fused-barrier output-capacity protocol described in
	// the package docs. <= 0 selects GOMAXPROCS for Shardable policies
	// and 1 otherwise; the value is always capped at NumIn.
	Shards int
	// MaxPending bounds the resident pending set (admission control);
	// <= 0 selects DefaultMaxPending. When the limit is reached the
	// runtime exerts backpressure on the source instead of dropping.
	MaxPending int
	// VerifyEvery > 0 spot-checks each completed window of that many
	// rounds through the verify oracle.
	VerifyEvery int
	// WindowRounds is the sliding metrics window in rounds (<= 0 selects
	// DefaultWindowRounds); WindowShards its ring granularity (<= 0
	// selects 8).
	WindowRounds int
	WindowShards int
	// StallRounds aborts the run after the policy has scheduled nothing
	// for that many consecutive rounds with a non-empty pending set
	// (<= 0 selects DefaultStallRounds).
	StallRounds int
	// OnSchedule, when non-nil, observes every departure: seq is the
	// flow's admission sequence number (its position in source order). It
	// is always invoked from the goroutine driving Run, in shard index
	// order within a round.
	OnSchedule func(seq int64, f switchnet.Flow, round int)
}

// Summary is a point-in-time view of the runtime's streaming metrics.
type Summary struct {
	// Round is the current round (one past the last scheduled round after
	// a completed Run).
	Round int
	// Rounds counts scheduling rounds actually processed (idle gaps are
	// skipped, not iterated).
	Rounds int64
	// Shards is the number of runtime shards the input ports are
	// partitioned across (1 = unsharded).
	Shards int
	// Admitted and Completed count flows in and out of the pending set;
	// Pending is the current resident count and PeakPending its high
	// water mark (never above MaxPending).
	Admitted    int64
	Completed   int64
	Pending     int
	PeakPending int
	// Backpressured counts flows admitted after their release round
	// because the pending set was full.
	Backpressured int64
	// TotalResponse, AvgResponse, MaxResponse are the paper's metrics
	// over completed flows (C_e = round+1 convention).
	TotalResponse int64
	AvgResponse   float64
	MaxResponse   int
	// WindowsVerified counts spot-check windows the verify oracle
	// accepted.
	WindowsVerified int64
	// P50, P90, P99 are response-time quantiles over the sliding metrics
	// window, merged across shards (sketched; see stats.LogHistogram for
	// the error bound).
	P50, P90, P99 float64
}

// Runtime is the streaming scheduler. Run drives it from one goroutine —
// the coordinator — which pulls the source, routes arrivals to shards,
// and sequences the fused per-round phase; with Config.Shards > 1 that
// phase executes on a pool of shard worker goroutines behind a single
// barrier per round. Snapshot may be called concurrently from other
// goroutines; it reads atomics and epoch windows only, so it never
// stalls the round loop.
type Runtime struct {
	cfg     Config
	src     Source
	batcher BatchSource
	sw      switchnet.Switch
	caps    []int

	nshards int
	shards  []*shard

	round int
	count int
	seq   int64
	peak  int

	look     switchnet.Flow
	haveLook bool
	srcDone  bool
	lastRel  int
	batch    []switchnet.Flow

	// leftover is the reconcile-phase output budget pool, rebuilt each
	// round from OutCaps minus the propose-phase usage (nshards > 1);
	// totalOutCap is sum(OutCaps), the pool's upper bound.
	leftover    []int
	totalOutCap int

	err     error
	stalled int
	started bool

	// Verification window state: vstart is the active window's first
	// round; vflows/vrounds are the flush-time merge scratch, checked by
	// an overlapped oracle goroutine (vdone joins it).
	vstart   int
	vflows   []switchnet.Flow
	vrounds  []int
	vpending bool
	vdone    chan error

	wg sync.WaitGroup

	// Snapshot-visible coordinator metrics. The round loop only ever
	// stores/adds; Snapshot only loads.
	mRound         atomic.Int64
	mRounds        atomic.Int64
	mAdmitted      atomic.Int64
	mBackpressured atomic.Int64
	mPeak          atomic.Int64
	mWindows       atomic.Int64

	// snapMu serializes concurrent Snapshot callers over the merge
	// scratch; the round loop never takes it.
	snapMu       sync.Mutex
	scratch      stats.LogHistogram
	shardScratch stats.LogHistogram
}

// New builds a Runtime over src. The configuration is validated eagerly:
// an empty switch, non-positive capacities, a missing policy, or a shard
// count the policy cannot support are construction errors, not run-time
// surprises.
func New(src Source, cfg Config) (*Runtime, error) {
	if src == nil {
		return nil, fmt.Errorf("stream: nil source")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("stream: nil policy")
	}
	mIn, mOut := cfg.Switch.NumIn(), cfg.Switch.NumOut()
	if mIn == 0 || mOut == 0 {
		return nil, fmt.Errorf("stream: switch has no ports (%d x %d)", mIn, mOut)
	}
	if mIn > 1<<15 || mOut > 1<<15 {
		// Port numbers ride in the arena's 16-bit descriptor fields.
		return nil, fmt.Errorf("stream: switch %d x %d exceeds the runtime's %d ports per side", mIn, mOut, 1<<15)
	}
	for i, c := range cfg.Switch.InCaps {
		if c <= 0 {
			return nil, fmt.Errorf("stream: input port %d capacity %d is not positive", i, c)
		}
		if c > math.MaxInt32 {
			// Demands ride in the arena's 32-bit descriptor field and are
			// bounded by the port capacities (ValidateFlow).
			return nil, fmt.Errorf("stream: input port %d capacity %d exceeds the runtime's %d", i, c, math.MaxInt32)
		}
	}
	for j, c := range cfg.Switch.OutCaps {
		if c <= 0 {
			return nil, fmt.Errorf("stream: output port %d capacity %d is not positive", j, c)
		}
		if c > math.MaxInt32 {
			return nil, fmt.Errorf("stream: output port %d capacity %d exceeds the runtime's %d", j, c, math.MaxInt32)
		}
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.WindowRounds <= 0 {
		cfg.WindowRounds = DefaultWindowRounds
	}
	if cfg.WindowShards <= 0 {
		cfg.WindowShards = defaultWindowShards
	}
	if cfg.StallRounds <= 0 {
		cfg.StallRounds = DefaultStallRounds
	}
	sharder, shardable := cfg.Policy.(Shardable)
	if cfg.Shards <= 0 {
		cfg.Shards = 1
		if shardable {
			cfg.Shards = runtime.GOMAXPROCS(0)
		}
	}
	if cfg.Shards > mIn {
		cfg.Shards = mIn
	}
	if cfg.Shards > 1 && !shardable {
		return nil, fmt.Errorf("stream: policy %q cannot run sharded (it does not implement Shardable); set Config.Shards to 1",
			cfg.Policy.Name())
	}
	rt := &Runtime{
		cfg:     cfg,
		src:     src,
		sw:      cfg.Switch,
		caps:    cfg.Switch.Caps(),
		nshards: cfg.Shards,
		shards:  make([]*shard, cfg.Shards),
		vdone:   make(chan error, 1),
	}
	rt.batcher, _ = src.(BatchSource)
	if rt.nshards > 1 {
		rt.leftover = make([]int, mOut)
		for _, c := range cfg.Switch.OutCaps {
			rt.totalOutCap += c
		}
	}
	for s := range rt.shards {
		pol := cfg.Policy
		if rt.nshards > 1 {
			pol = sharder.NewShard()
		}
		if r, ok := pol.(Resetter); ok {
			r.Reset(cfg.Switch)
		}
		rt.shards[s] = newShard(rt, s, pol)
	}
	return rt, nil
}

// pull refreshes the one-flow lookahead from the source.
func (rt *Runtime) pull() {
	if rt.haveLook || rt.srcDone {
		return
	}
	f, ok := rt.src.Next()
	if !ok {
		rt.srcDone = true
		return
	}
	rt.look, rt.haveLook = f, true
}

// route validates f, assigns its admission sequence number, and queues it
// on its input port's shard; the shard threads it during the next round
// phase. Returns the number backpressured (0 or 1) for metric batching.
func (rt *Runtime) route(f switchnet.Flow) (int, error) {
	if f.Release < rt.lastRel {
		return 0, fmt.Errorf("stream: source yielded release %d after %d (must be non-decreasing)", f.Release, rt.lastRel)
	}
	rt.lastRel = f.Release
	if err := rt.sw.ValidateFlow(f); err != nil {
		return 0, fmt.Errorf("stream: inadmissible flow: %w", err)
	}
	sh := rt.shards[f.In%rt.nshards]
	sh.inbox = append(sh.inbox, arrival{flow: f, seq: rt.seq})
	rt.seq++
	rt.count++
	if f.Release < rt.round {
		return 1, nil
	}
	return 0, nil
}

// admit drains every currently-released arrival the admission limit
// allows into the shard inboxes, one batch call when the source supports
// it.
func (rt *Runtime) admit() error {
	rt.pull()
	arrived, backpressured := 0, 0
	for rt.count < rt.cfg.MaxPending && rt.haveLook && rt.look.Release <= rt.round {
		bp, err := rt.route(rt.look)
		if err != nil {
			return err
		}
		arrived++
		backpressured += bp
		rt.haveLook = false
		if rt.batcher != nil && rt.count < rt.cfg.MaxPending {
			rt.batch = rt.batcher.PullBatch(rt.batch[:0], rt.round, rt.cfg.MaxPending-rt.count)
			for _, f := range rt.batch {
				bp, err := rt.route(f)
				if err != nil {
					return err
				}
				arrived++
				backpressured += bp
			}
		}
		rt.pull()
	}
	if arrived > 0 {
		rt.mAdmitted.Add(int64(arrived))
		rt.mBackpressured.Add(int64(backpressured))
		if rt.count > rt.peak {
			rt.peak = rt.count
			rt.mPeak.Store(int64(rt.peak))
		}
	}
	return nil
}

// startWorkers launches the shard worker pool (nshards > 1); stopWorkers
// shuts it down. Run brackets itself with them; white-box tests driving
// step directly do the same.
func (rt *Runtime) startWorkers() {
	if rt.nshards == 1 || rt.started {
		return
	}
	rt.started = true
	for _, sh := range rt.shards {
		sh.work = make(chan int, 1)
		go sh.serve()
	}
}

func (rt *Runtime) stopWorkers() {
	if !rt.started {
		return
	}
	rt.started = false
	for _, sh := range rt.shards {
		close(sh.work)
	}
}

// runPhase executes ph on every shard: inline for a single shard, on the
// worker pool otherwise. It is the protocol's only synchronization point:
// the coordinator blocks here once per round.
func (rt *Runtime) runPhase(ph int) {
	if rt.nshards == 1 {
		rt.shards[0].do(ph)
		return
	}
	rt.wg.Add(rt.nshards)
	for _, sh := range rt.shards {
		sh.work <- ph
	}
	rt.wg.Wait()
}

// owedApply reports whether any shard still holds settled picks awaiting
// retirement under the fused protocol.
func (rt *Runtime) owedApply() bool {
	for _, sh := range rt.shards {
		if len(sh.takes) > 0 {
			return true
		}
	}
	return false
}

// applyPending forces retirement of owed picks outside the fused cadence,
// so verification flushes, idle jumps, and the end of the run observe
// fully settled state.
func (rt *Runtime) applyPending() {
	if rt.owedApply() {
		rt.runPhase(phaseApply)
	}
}

// reconcile redistributes output capacity no shard used in the propose
// phase: leftover[j] = OutCaps[j] - total phase-1 usage, then each shard
// gets a second Pick against the shared pool, sequentially in shard order
// so the outcome is deterministic.
func (rt *Runtime) reconcile() {
	copy(rt.leftover, rt.sw.OutCaps)
	used := 0
	for _, sh := range rt.shards {
		for _, j := range sh.touchOut {
			rt.leftover[j] -= sh.loadOut[j]
			used += sh.loadOut[j]
		}
	}
	if used == rt.totalOutCap {
		// Saturated round: nothing to redistribute, so skip the serial
		// reconcile sweeps entirely.
		return
	}
	for _, sh := range rt.shards {
		sh.pickShared()
	}
}

// firstErr surfaces the first error in deterministic order: the runtime's
// own, then each shard's in shard order.
func (rt *Runtime) firstErr() error {
	if rt.err != nil {
		return rt.err
	}
	for _, sh := range rt.shards {
		if sh.err != nil {
			return sh.err
		}
	}
	return nil
}

// setRound advances time to t, flushing any verification window the jump
// completes.
func (rt *Runtime) setRound(t int) error {
	if w := rt.cfg.VerifyEvery; w > 0 && t >= rt.vstart+w {
		// Rounds only move forward, so the buffers never hold flows beyond
		// the current window: one flush empties them, and the remaining
		// boundaries an idle jump crosses advance in a single step. Owed
		// picks retire first so the closing window's loads are complete.
		rt.applyPending()
		if err := rt.flushWindow(); err != nil {
			return err
		}
		rt.vstart += (t - rt.vstart) / w * w
	}
	rt.round = t
	rt.mRound.Store(int64(t))
	return nil
}

// flushWindow hands every buffered scheduled flow to an overlapped verify
// goroutine. All loads in the buffered rounds are fully represented —
// flows are buffered at retirement across all shards, owed picks are
// settled before a flush, and rounds only move forward — so the oracle's
// per-(port, round) capacity check is exact. The check for window w runs
// concurrently with the rounds of window w+1 and is joined at the next
// flush (or the end of the run), hiding the oracle's cost on spare cores
// without changing the schedule; failures are labelled with the true
// min/max buffered rounds, not the window boundaries, so an idle jump
// across several window starts cannot skew the report.
func (rt *Runtime) flushWindow() error {
	if err := rt.joinVerify(); err != nil {
		return err
	}
	rt.vflows = rt.vflows[:0]
	rt.vrounds = rt.vrounds[:0]
	lo, hi := 0, 0
	for _, sh := range rt.shards {
		rt.vflows = append(rt.vflows, sh.vflows...)
		for _, r := range sh.vrounds {
			if len(rt.vrounds) == 0 || r < lo {
				lo = r
			}
			if len(rt.vrounds) == 0 || r > hi {
				hi = r
			}
			rt.vrounds = append(rt.vrounds, r)
		}
		sh.vflows = sh.vflows[:0]
		sh.vrounds = sh.vrounds[:0]
	}
	if len(rt.vflows) == 0 {
		return nil
	}
	rt.vpending = true
	go func(lo, hi int) {
		inst := &switchnet.Instance{Switch: rt.sw, Flows: rt.vflows}
		sched := &switchnet.Schedule{Round: rt.vrounds}
		if _, err := verify.CheckSchedule(inst, sched, rt.caps); err != nil {
			rt.vdone <- fmt.Errorf("stream: verification window over rounds [%d, %d] infeasible: %w", lo, hi, err)
			return
		}
		rt.mWindows.Add(1)
		rt.vdone <- nil
	}(lo, hi)
	return nil
}

// joinVerify waits for the in-flight window check, if any. The channel is
// buffered, so an abandoned check (error path elsewhere) cannot leak its
// goroutine.
func (rt *Runtime) joinVerify() error {
	if !rt.vpending {
		return nil
	}
	rt.vpending = false
	return <-rt.vdone
}

// step advances the runtime by one iteration — an idle jump or one fused
// scheduling round — and reports whether the stream is fully drained.
func (rt *Runtime) step() (done bool, err error) {
	if err := rt.admit(); err != nil {
		return false, err
	}
	if rt.count == 0 {
		rt.applyPending()
		if !rt.haveLook {
			if err := rt.src.Err(); err != nil {
				return false, err
			}
			return true, nil
		}
		// Idle gap: jump straight to the next arrival.
		return false, rt.setRound(rt.look.Release)
	}

	// The fused phase: every shard retires the previous round's picks,
	// admits its routed arrivals, and proposes against its carved output
	// budgets — then the coordinator reconciles unused capacity.
	rt.runPhase(phaseRound)
	if rt.nshards > 1 {
		rt.reconcile()
	}
	if err := rt.firstErr(); err != nil {
		rt.err = err
		return false, err
	}

	total := 0
	for _, sh := range rt.shards {
		total += len(sh.takes)
	}
	rt.mRounds.Add(1)
	if total == 0 {
		rt.stalled++
		if rt.stalled >= rt.cfg.StallRounds {
			return false, fmt.Errorf("stream: policy %q scheduled nothing for %d consecutive rounds with %d flows pending",
				rt.cfg.Policy.Name(), rt.stalled, rt.count)
		}
	} else {
		rt.stalled = 0
	}

	if cb := rt.cfg.OnSchedule; cb != nil {
		// Shard workers are quiescent between phases and retirement of
		// this round's picks is deferred to the next fused phase, so the
		// taken slots are still live here; shard order keeps the callback
		// sequence deterministic.
		for _, sh := range rt.shards {
			for _, id := range sh.takes {
				cb(sh.ar.seq[id], sh.ar.flow(id), rt.round)
			}
		}
	}
	rt.count -= total
	return false, rt.setRound(rt.round + 1)
}

// Run drains the source: it advances round by round until the source is
// exhausted and the pending set is empty, then returns the final summary.
// It is not restartable.
func (rt *Runtime) Run() (*Summary, error) {
	if err := rt.firstErr(); err != nil {
		return nil, err
	}
	rt.startWorkers()
	defer rt.stopWorkers()
	for {
		done, err := rt.step()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	if rt.cfg.VerifyEvery > 0 {
		if err := rt.flushWindow(); err != nil {
			return nil, err
		}
		if err := rt.joinVerify(); err != nil {
			return nil, err
		}
	}
	s := rt.Snapshot()
	return &s, nil
}

// Snapshot returns the current streaming metrics, merging the per-shard
// completion counters and window sketches. It is safe to call concurrently
// with Run and never blocks the round loop: scalar counters are atomics
// and the window sketches are epoch (seqlock) windows the reader retries,
// so the coordinator and shard workers proceed at full speed while any
// number of snapshots are taken.
func (rt *Runtime) Snapshot() Summary {
	rt.snapMu.Lock()
	defer rt.snapMu.Unlock()
	round := int(rt.mRound.Load())
	rt.scratch.Reset()
	var completed, totalResp int64
	maxResp := 0
	for _, sh := range rt.shards {
		completed += sh.completed.Load()
		totalResp += sh.totalResp.Load()
		if m := int(sh.maxResp.Load()); m > maxResp {
			maxResp = m
		}
		sh.win.ReadInto(&rt.shardScratch, round)
		rt.scratch.Merge(&rt.shardScratch)
	}
	// Admitted loads after completed: it only grows, so the invariant
	// Completed <= Admitted holds in every snapshot.
	admitted := rt.mAdmitted.Load()
	s := Summary{
		Round:           round,
		Rounds:          rt.mRounds.Load(),
		Shards:          rt.nshards,
		Admitted:        admitted,
		Completed:       completed,
		Pending:         int(admitted - completed),
		PeakPending:     int(rt.mPeak.Load()),
		Backpressured:   rt.mBackpressured.Load(),
		TotalResponse:   totalResp,
		MaxResponse:     maxResp,
		WindowsVerified: rt.mWindows.Load(),
		P50:             rt.scratch.Quantile(0.50),
		P90:             rt.scratch.Quantile(0.90),
		P99:             rt.scratch.Quantile(0.99),
	}
	if completed > 0 {
		s.AvgResponse = float64(totalResp) / float64(completed)
	}
	return s
}
