package stream

import (
	"context"
	"fmt"

	"flowsched/internal/stats"
	"flowsched/internal/switchnet"
)

// This file is the runtime's durability and live-reconfiguration surface:
// quiescent-point checkpoint capture, restore baselines, and policy /
// admission reload. Everything here rides the coordinator's control
// mailbox — one non-blocking select at the top of each step — so the
// steady-state round loop pays nothing for any of it (see the package
// docs, "Durability and reload").

// CheckpointState is a quiescent snapshot of everything a restart needs
// to continue the run as if it had never stopped: the pending set with
// original releases, the round, and the exact cumulative counters. The
// coordinator captures it between rounds with every owed pick settled,
// so the summary always balances
// (Admitted == Completed + Pending + Dropped + Expired) and no flow is
// both "completed" and "pending".
type CheckpointState struct {
	// Round is the round the snapshot is consistent at: every flow in
	// Flows[:Pending] was released at or before it, and a restored
	// runtime resumes at exactly this round.
	Round int
	// Pending is the number of leading Flows entries that are resident
	// pending flows; it always equals Summary.Pending.
	Pending int
	// Flows holds the pending set in admission order (original releases
	// preserved — admission order follows source order, so releases are
	// non-decreasing along it), plus at most one trailing flow the
	// coordinator had pulled from the source but not yet admitted (the
	// lookahead). The lookahead is part of the unconsumed stream, not the
	// pending set: a restore replays it as the first post-pending source
	// flow, and it is the only consumed-but-unadmitted flow that can
	// exist at a quiescent point.
	Flows []switchnet.Flow
	// Summary is the exact metrics summary at the snapshot point.
	Summary Summary
	// Policy names the scheduling policy the snapshot was captured under;
	// Scratch holds its per-shard scratch state (rotation pointers, one
	// slice per shard in shard order — see scratchPolicy), nil for
	// memoryless policies. A restore replays the scratch only when it
	// resumes the same policy at the same shard count, which is what
	// makes RoundRobin and WeightedISLIP restore-exact.
	Policy  string
	Scratch [][]int64
	// Windows holds the shards' sliding-window quantile sketches (one
	// snapshot per shard in shard order), so response quantiles are
	// continuous across a restore instead of restarting empty.
	Windows []stats.WindowSnapshot
}

// SourceFlows reports how many flows the runtime had consumed from its
// source at the snapshot point — Summary.Admitted plus the lookahead, if
// one is present. A deterministic or replayable source resumed after a
// restore must skip exactly this many flows (workload.Skip), because the
// checkpoint itself carries the pending ones and the lookahead.
func (st *CheckpointState) SourceFlows() int64 {
	return st.Summary.Admitted + int64(len(st.Flows)-st.Pending)
}

// Resume converts the snapshot into the Config.Resume a restored runtime
// needs. The flow prefix travels separately, through the restore source
// (workload.NewCheckpointSource over Flows).
func (st *CheckpointState) Resume() *Resume {
	return &Resume{
		Round:         st.Round,
		Pending:       st.Pending,
		ScratchPolicy: st.Policy,
		Scratch:       st.Scratch,
		Windows:       st.Windows,
		Counters: ResumeCounters{
			Admitted:      st.Summary.Admitted,
			Completed:     st.Summary.Completed,
			Dropped:       st.Summary.Dropped,
			Expired:       st.Summary.Expired,
			Backpressured: st.Summary.Backpressured,
			TotalResponse: st.Summary.TotalResponse,
			SlowResponses: st.Summary.SlowResponses,
			Rounds:        st.Summary.Rounds,
			MaxResponse:   st.Summary.MaxResponse,
			PeakPending:   st.Summary.PeakPending,
		},
	}
}

// Resume restarts a runtime from a checkpointed state: the clock opens at
// Round instead of zero, the first Pending source flows are re-admissions
// of the checkpointed pending set (they re-enter with their original
// releases and are not re-counted as admissions or backpressure), and the
// cumulative counters continue from the checkpointed baselines — so
// response times stay charged from each flow's original release and
// Admitted == Completed + Pending + Dropped + Expired holds across the
// restart as if it never happened.
type Resume struct {
	// Round is the round to resume at; it must be at least every restored
	// flow's release.
	Round int
	// Pending is the number of leading source flows that are checkpoint
	// re-admissions. It must not exceed MaxPending: a checkpoint taken
	// under a larger admission limit cannot be restored into a smaller
	// one without shedding, which a restore must never do silently.
	Pending int
	// Counters are the cumulative baselines at the checkpoint.
	Counters ResumeCounters
	// ScratchPolicy/Scratch restore policy rotation state: Scratch is
	// imported into the per-shard policy instances only when ScratchPolicy
	// matches the resumed runtime's policy name, the shard counts agree,
	// and the policy carries scratch at all — any mismatch (an explicit
	// policy or shard-count override at restore) silently resumes with
	// fresh pointers, which is a correct, merely less schedule-exact,
	// restore. A shape-matched import that still fails (corrupt values)
	// is a hard construction error.
	ScratchPolicy string
	Scratch       [][]int64
	// Windows restores the sliding-window quantile sketches; snapshots
	// are merged into shard 0's window (Snapshot merges across shards, so
	// carrying history on one shard is indistinguishable), tolerant of a
	// shard-count change. Incompatible window geometry drops them.
	Windows []stats.WindowSnapshot
}

// ResumeCounters are the checkpointed cumulative counters a restored
// runtime continues from; see the matching Summary fields for semantics.
// They must balance: Admitted == Completed + Pending + Dropped + Expired.
type ResumeCounters struct {
	Admitted      int64
	Completed     int64
	Dropped       int64
	Expired       int64
	Backpressured int64
	TotalResponse int64
	SlowResponses int64
	Rounds        int64
	MaxResponse   int
	PeakPending   int
}

// applyResume validates r and seeds the runtime's clock, counters, and
// re-admission budget from it. Called once, at the end of New.
func (rt *Runtime) applyResume(r *Resume) error {
	c := r.Counters
	if r.Round < 0 {
		return fmt.Errorf("stream: resume round %d is negative", r.Round)
	}
	if r.Pending < 0 {
		return fmt.Errorf("stream: resume pending count %d is negative", r.Pending)
	}
	if r.Pending > rt.cfg.MaxPending {
		return fmt.Errorf("stream: resume pending count %d exceeds MaxPending %d (restore must not shed checkpointed flows)",
			r.Pending, rt.cfg.MaxPending)
	}
	for _, v := range []int64{c.Admitted, c.Completed, c.Dropped, c.Expired, c.Backpressured,
		c.TotalResponse, c.SlowResponses, c.Rounds, int64(c.MaxResponse), int64(c.PeakPending)} {
		if v < 0 {
			return fmt.Errorf("stream: resume counters contain a negative value: %+v", c)
		}
	}
	if c.Admitted != c.Completed+int64(r.Pending)+c.Dropped+c.Expired {
		return fmt.Errorf("stream: resume counters do not balance: admitted %d != completed %d + pending %d + dropped %d + expired %d",
			c.Admitted, c.Completed, r.Pending, c.Dropped, c.Expired)
	}
	rt.round = r.Round
	rt.vstart = r.Round
	rt.restoreLeft = r.Pending
	rt.peak = c.PeakPending
	rt.mRound.Store(int64(r.Round))
	rt.mRounds.Store(c.Rounds)
	// The re-admissions will be counted again as they arrive; start the
	// admission counter short by exactly that many so the total lands back
	// on the checkpointed value.
	rt.mAdmitted.Store(c.Admitted - int64(r.Pending))
	rt.mBackpressured.Store(c.Backpressured)
	rt.mDropped.Store(c.Dropped)
	rt.mPeak.Store(int64(c.PeakPending))
	// Completion baselines live on shard 0: Snapshot sums the scalar
	// counters and maxes the response high-water mark across shards, so
	// one shard carrying the history is indistinguishable from all of
	// them.
	sh := rt.shards[0]
	sh.completed.Store(c.Completed)
	sh.expired.Store(c.Expired)
	sh.totalResp.Store(c.TotalResponse)
	sh.maxResp.Store(int64(c.MaxResponse))
	sh.slowResp.Store(c.SlowResponses)
	// Policy scratch: replay only on an exact (policy, shard count) match
	// onto shard instances that carry scratch — anything else means the
	// operator overrode the configuration at restore, and fresh rotation
	// pointers are the correct fallback.
	if len(r.Scratch) == rt.nshards && r.ScratchPolicy == rt.cfg.Policy.Name() {
		if _, ok := rt.shards[0].pol.(scratchPolicy); ok {
			for s, shd := range rt.shards {
				if err := shd.pol.(scratchPolicy).importScratch(r.Scratch[s]); err != nil {
					return fmt.Errorf("stream: resume policy scratch (shard %d): %w", s, err)
				}
			}
		}
	}
	// Window sketches: merge every checkpointed shard window into shard
	// 0's (readers merge across shards anyway), tolerating a shard-count
	// change between the checkpoint and the resume.
	for i := range r.Windows {
		sh.win.Import(&r.Windows[i])
	}
	return nil
}

// ReloadConfig is a live policy/admission swap applied between rounds
// without dropping the pending set (see Runtime.Reload). All fields are
// required — a caller keeping a setting passes its current value.
type ReloadConfig struct {
	// Policy replaces the scheduling policy; with Shards > 1 it must
	// implement Shardable (each shard gets a fresh NewShard instance).
	Policy Policy
	// MaxPending replaces the admission limit. Shrinking it below the
	// resident count is allowed: nothing is shed, admission just stays
	// closed (or sheds arrivals, under AdmitDrop) until the backlog
	// drains below the new limit.
	MaxPending int
	// Admit and Deadline replace the admission mode, under the same
	// validity rules as Config.
	Admit    AdmitMode
	Deadline int
}

// applyReload validates rc and swaps the policy and admission settings at
// the quiescent point: owed picks are settled, so no retired flow is
// mid-flight through the old policy's scratch state.
func (rt *Runtime) applyReload(rc ReloadConfig) error {
	if rc.Policy == nil {
		return fmt.Errorf("stream: reload: nil policy")
	}
	sharder, shardable := rc.Policy.(Shardable)
	if rt.nshards > 1 && !shardable {
		return fmt.Errorf("stream: reload: policy %q cannot run sharded (it does not implement Shardable) and the runtime has %d shards",
			rc.Policy.Name(), rt.nshards)
	}
	if rc.MaxPending <= 0 {
		return fmt.Errorf("stream: reload: MaxPending %d is not positive", rc.MaxPending)
	}
	if _, indexed := rc.Policy.(ageIndexUser); indexed && rt.nshards > 1 {
		// Same bound New enforces (the index exists only on sharded
		// runtimes): the age index packs a VOQ's index into aiViBits of
		// its entry key, and the swap may introduce the index to a
		// runtime built without one.
		mIn, mOut := rt.sw.NumIn(), rt.sw.NumOut()
		if nLoc := (mIn + rt.nshards - 1) / rt.nshards; nLoc*mOut > 1<<aiViBits {
			return fmt.Errorf("stream: reload: policy %q needs %d VOQs per shard, over the age index's %d",
				rc.Policy.Name(), nLoc*mOut, 1<<aiViBits)
		}
		if rt.lastRel >= aiMaxRel {
			// The stream has already run past the index's packed-key
			// horizon; rebuilding an index over (or after) such releases
			// could overflow keys, so the swap is refused.
			return fmt.Errorf("stream: reload: policy %q indexes releases up to %d, and the stream already reached %d",
				rc.Policy.Name(), int64(aiMaxRel), rt.lastRel)
		}
	}
	switch rc.Admit {
	case AdmitLossless, AdmitDrop:
		if rc.Deadline != 0 {
			return fmt.Errorf("stream: reload: Deadline %d is set but Admit is %s (deadlines need AdmitDeadline)", rc.Deadline, rc.Admit)
		}
	case AdmitDeadline:
		if rc.Deadline <= 0 {
			return fmt.Errorf("stream: reload: AdmitDeadline needs a positive Deadline, got %d", rc.Deadline)
		}
	default:
		return fmt.Errorf("stream: reload: unknown admission mode %d", int(rc.Admit))
	}
	for _, sh := range rt.shards {
		pol := rc.Policy
		if rt.nshards > 1 {
			pol = sharder.NewShard()
		}
		if r, ok := pol.(Resetter); ok {
			r.Reset(rt.sw)
		}
		sh.pol = pol
		// Reconcile the age index with the incoming policy: build and
		// backfill one from the resident pending set when the new policy
		// uses it and the runtime is sharded (deterministic — the
		// candidate order is a pure function of the pending set), drop it
		// when it does not (the arena hooks no-op on nil).
		if _, ok := pol.(ageIndexUser); ok && rt.nshards > 1 {
			if sh.ai == nil {
				sh.ai = newAgeIndex(sh)
				sh.ai.rebuild()
			}
		} else {
			sh.ai = nil
		}
	}
	rt.cfg.Policy = rc.Policy
	rt.cfg.MaxPending = rc.MaxPending
	rt.cfg.Admit = rc.Admit
	rt.cfg.Deadline = rc.Deadline
	rt.deadline = rc.Deadline
	rt.stalled = 0
	return nil
}

// Parker is a LiveFeeder whose idle wait can be multiplexed with the
// runtime's control mailbox: Park blocks until a flow arrives (ok true),
// the feed is closed and drained (ok false), or wake receives (woke
// true, no flow consumed). A runtime parked on a plain LiveFeeder's
// blocking Next cannot answer PendingFlows / CheckpointState / Reload
// requests — or honor Stop — until the next arrival; a Parker source
// keeps the control surface live while the feed is quiet.
// workload.ChanSource is the canonical implementation.
type Parker interface {
	LiveFeeder
	Park(wake <-chan struct{}) (f switchnet.Flow, ok, woke bool)
}

// Control requests serviced by the coordinator between rounds (see
// serveCtl); ctlResp is the reply.
const (
	ctlPending = iota + 1
	ctlCheckpoint
	ctlReload
)

type ctlReq struct {
	kind int
	dst  []switchnet.Flow
	rc   ReloadConfig
	resp chan ctlResp
}

type ctlResp struct {
	st  CheckpointState
	err error
}

// serveCtl answers at most one queued control request per step. It runs
// at the top of step, when shard state is quiescent and the inboxes are
// empty (the previous round phase threaded them); owed picks retire
// first, so flows the previous round already scheduled are not reported
// as pending and a captured summary is exact. The idle check is one
// non-blocking channel poll — no clock, no allocation.
func (rt *Runtime) serveCtl() {
	select {
	case req := <-rt.ctl:
		rt.applyPending()
		req.resp <- rt.handleCtl(req)
	default:
	}
}

// handleCtl executes one control request at the quiescent point.
func (rt *Runtime) handleCtl(req ctlReq) ctlResp {
	switch req.kind {
	case ctlReload:
		return ctlResp{err: rt.applyReload(req.rc)}
	case ctlCheckpoint:
		buf := rt.collectPendingBySeq(req.dst)
		p := len(buf)
		if rt.haveLook {
			buf = append(buf, rt.look)
		}
		return ctlResp{st: CheckpointState{
			Round: rt.round, Pending: p, Flows: buf, Summary: rt.Snapshot(),
			Policy:  rt.cfg.Policy.Name(),
			Scratch: rt.collectScratch(nil),
			Windows: rt.collectWindows(nil),
		}}
	default: // ctlPending
		return ctlResp{st: CheckpointState{Round: rt.round, Flows: rt.collectPending(req.dst)}}
	}
}

// collectScratch captures each shard policy's scratch state (see
// scratchPolicy) into dst, reusing its per-shard slices when the shape
// matches; nil when the policy carries no scratch. Explicit-request
// captures pass nil (freshly allocated, so the reply cannot alias the
// periodic trigger's reused buffers); fireCheckpoint passes its own.
func (rt *Runtime) collectScratch(dst [][]int64) [][]int64 {
	if _, ok := rt.shards[0].pol.(scratchPolicy); !ok {
		return nil
	}
	if len(dst) != rt.nshards {
		dst = make([][]int64, rt.nshards)
	}
	for s, sh := range rt.shards {
		dst[s] = sh.pol.(scratchPolicy).exportScratch(dst[s][:0])
	}
	return dst
}

// collectWindows captures each shard's sliding-window sketch into dst,
// reusing its snapshots' backing slices when the shape matches. Same
// aliasing discipline as collectScratch.
func (rt *Runtime) collectWindows(dst []stats.WindowSnapshot) []stats.WindowSnapshot {
	if len(dst) != rt.nshards {
		dst = make([]stats.WindowSnapshot, rt.nshards)
	}
	for s, sh := range rt.shards {
		sh.win.ExportInto(&dst[s])
	}
	return dst
}

// collectPendingBySeq appends every resident pending flow to dst in
// global admission order — a K-way merge of the shards' admission-order
// sublists by sequence number. Checkpoints use it instead of the plain
// shard-order walk because a restore replays the flows as a source, and
// the stream contract requires globally non-decreasing releases;
// admission order guarantees that (and re-routing by input port lands
// every flow back on its original shard, in its original per-shard
// order). The merge scratch is runtime-owned and reused, so a warmed
// periodic capture allocates nothing.
func (rt *Runtime) collectPendingBySeq(dst []switchnet.Flow) []switchnet.Flow {
	if rt.nshards == 1 {
		return rt.collectPending(dst)
	}
	heads := rt.mergeHeads[:0]
	for _, sh := range rt.shards {
		heads = append(heads, sh.head)
	}
	rt.mergeHeads = heads
	for {
		best := -1
		var bestSeq int64
		for s, id := range heads {
			if id == noID {
				continue
			}
			if seq := rt.shards[s].ar.seq[id]; best < 0 || seq < bestSeq {
				best, bestSeq = s, seq
			}
		}
		if best < 0 {
			return dst
		}
		sh := rt.shards[best]
		dst = append(dst, sh.ar.flow(heads[best]))
		heads[best] = sh.ar.rec[heads[best]].next
	}
}

// fireCheckpoint services the round-cadence periodic trigger (see
// Config.CheckpointEveryRounds): it settles owed picks, captures a
// CheckpointState into the runtime-owned reused buffers, and hands it to
// OnCheckpoint. The callback must not retain the state or its flow slice
// past its return — the next capture overwrites both.
func (rt *Runtime) fireCheckpoint() {
	rt.applyPending()
	buf := rt.collectPendingBySeq(rt.ckptBuf[:0])
	p := len(buf)
	if rt.haveLook {
		buf = append(buf, rt.look)
	}
	rt.ckptBuf = buf
	rt.scratchBufs = rt.collectScratch(rt.scratchBufs)
	rt.winBufs = rt.collectWindows(rt.winBufs)
	rt.ckptState = CheckpointState{
		Round: rt.round, Pending: p, Flows: buf, Summary: rt.Snapshot(),
		Policy:  rt.cfg.Policy.Name(),
		Scratch: rt.scratchBufs,
		Windows: rt.winBufs,
	}
	rt.cfg.OnCheckpoint(&rt.ckptState)
	rt.nextCkpt = rt.round + rt.ckptEvery
}

// finishedCtl is the post-run fallback: once Run has returned the state
// is quiescent, so snapshot requests read it directly (best-effort if the
// run failed mid-round: picks the error abandoned may still be linked).
// A reload after the run is meaningless and reports an error.
func (rt *Runtime) finishedCtl(req ctlReq) ctlResp {
	switch req.kind {
	case ctlReload:
		return ctlResp{err: fmt.Errorf("stream: reload: runtime already finished")}
	case ctlCheckpoint:
		buf := rt.collectPendingBySeq(req.dst)
		p := len(buf)
		if rt.haveLook {
			buf = append(buf, rt.look)
		}
		return ctlResp{st: CheckpointState{
			Round: int(rt.mRound.Load()), Pending: p, Flows: buf, Summary: rt.Snapshot(),
			Policy:  rt.cfg.Policy.Name(),
			Scratch: rt.collectScratch(nil),
			Windows: rt.collectWindows(nil),
		}}
	default:
		return ctlResp{st: CheckpointState{Round: int(rt.mRound.Load()), Flows: rt.collectPending(req.dst)}}
	}
}

// request hands req to the coordinator and waits for the reply, falling
// back to a direct read once Run has returned. The wake nudge unparks an
// idle live runtime (Parker sources) so the request is serviced even
// while the feed is quiet.
func (rt *Runtime) request(ctx context.Context, req ctlReq) (ctlResp, error) {
	select {
	case rt.ctl <- req:
		rt.nudge()
	case <-rt.finished:
		return rt.finishedCtl(req), nil
	case <-ctx.Done():
		return ctlResp{}, ctx.Err()
	}
	select {
	case resp := <-req.resp:
		return resp, nil
	case <-rt.finished:
		// The coordinator may have taken the request just before
		// finishing; prefer its reply, else the state is quiescent now and
		// a direct read is safe.
		select {
		case resp := <-req.resp:
			return resp, nil
		default:
		}
		return rt.finishedCtl(req), nil
	case <-ctx.Done():
		return ctlResp{}, ctx.Err()
	}
}

// nudge unparks an idle live runtime so a queued control request (or a
// Stop) is noticed while the feed is quiet. Buffered and lossy: one
// pending wake is enough, extras coalesce.
func (rt *Runtime) nudge() {
	select {
	case rt.wake <- struct{}{}:
	default:
	}
}

// PendingFlows snapshots the resident pending set without stalling the
// round loop: the request is handed to the coordinator, which services
// it between rounds (retiring owed picks first, so the snapshot never
// contains an already-scheduled flow), and the flows are appended to
// dst[:0] along with the round the snapshot is consistent at. After Run
// has returned the quiescent state is read directly.
//
// A runtime parked idle on a Parker source is woken to answer; on a
// plain LiveFeeder the request waits for the next arrival — but a parked
// runtime's pending set is empty, so callers should use a ctx timeout
// and treat expiry as "empty or idle". dst is reused across calls by
// design; the returned slice aliases it.
func (rt *Runtime) PendingFlows(ctx context.Context, dst []switchnet.Flow) ([]switchnet.Flow, int, error) {
	resp, err := rt.request(ctx, ctlReq{kind: ctlPending, dst: dst[:0], resp: make(chan ctlResp, 1)})
	if err != nil {
		return dst[:0], 0, err
	}
	return resp.st.Flows, resp.st.Round, nil
}

// CheckpointState snapshots everything a restart needs — the pending set
// with original releases (plus the un-admitted lookahead, if the
// coordinator holds one), the round, and an exact balanced Summary — at
// a quiescent point between rounds, without stalling the round loop. The
// flows are appended to dst[:0]; the returned state aliases it. See
// PendingFlows for the service and idle-park semantics; internal/chkpt
// serializes the result.
func (rt *Runtime) CheckpointState(ctx context.Context, dst []switchnet.Flow) (CheckpointState, error) {
	resp, err := rt.request(ctx, ctlReq{kind: ctlCheckpoint, dst: dst[:0], resp: make(chan ctlResp, 1)})
	if err != nil {
		return CheckpointState{}, err
	}
	return resp.st, nil
}

// Reload swaps the scheduling policy and admission settings between
// rounds without dropping the pending set: the coordinator applies rc at
// the next quiescent point (owed picks settled, shard state consistent),
// per-shard policy instances are rebuilt and Reset, and the very next
// round schedules under the new configuration. Pending flows keep their
// original releases, so response accounting is unaffected. Returns the
// validation error, if any, without changing anything; it cannot be
// called after Run has returned.
func (rt *Runtime) Reload(ctx context.Context, rc ReloadConfig) error {
	resp, err := rt.request(ctx, ctlReq{kind: ctlReload, rc: rc, resp: make(chan ctlResp, 1)})
	if err != nil {
		return err
	}
	return resp.err
}
