package switchnet

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSwitchShape(t *testing.T) {
	s := NewSwitch(3, 5, 2)
	if s.NumIn() != 3 || s.NumOut() != 5 || s.NumPorts() != 8 {
		t.Fatalf("got (%d,%d,%d), want (3,5,8)", s.NumIn(), s.NumOut(), s.NumPorts())
	}
	for p := 0; p < s.NumPorts(); p++ {
		if s.Cap(p) != 2 {
			t.Fatalf("port %d capacity = %d, want 2", p, s.Cap(p))
		}
	}
}

func TestUnitSwitch(t *testing.T) {
	s := UnitSwitch(4)
	if s.NumIn() != 4 || s.NumOut() != 4 {
		t.Fatalf("unit switch shape wrong: %d x %d", s.NumIn(), s.NumOut())
	}
	if s.Cap(0) != 1 || s.Cap(7) != 1 {
		t.Fatal("unit switch must have unit capacities")
	}
}

func TestPortIndexRoundTrip(t *testing.T) {
	s := NewSwitch(3, 4, 1)
	if s.PortIndex(In, 2) != 2 {
		t.Errorf("input port 2 index = %d", s.PortIndex(In, 2))
	}
	if s.PortIndex(Out, 0) != 3 {
		t.Errorf("output port 0 index = %d", s.PortIndex(Out, 0))
	}
	if s.PortIndex(Out, 3) != 6 {
		t.Errorf("output port 3 index = %d", s.PortIndex(Out, 3))
	}
}

func TestSideString(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" {
		t.Fatal("Side.String mismatch")
	}
}

func TestCapsAndClone(t *testing.T) {
	s := Switch{InCaps: []int{1, 2}, OutCaps: []int{3}}
	caps := s.Caps()
	if len(caps) != 3 || caps[0] != 1 || caps[1] != 2 || caps[2] != 3 {
		t.Fatalf("caps = %v", caps)
	}
	c := s.Clone()
	c.InCaps[0] = 99
	if s.InCaps[0] != 1 {
		t.Fatal("Clone must deep-copy capacities")
	}
}

func validInstance() *Instance {
	return &Instance{
		Switch: NewSwitch(2, 2, 2),
		Flows: []Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 0, Out: 1, Demand: 2, Release: 1},
			{In: 1, Out: 1, Demand: 1, Release: 0},
		},
	}
}

func TestInstanceValidateOK(t *testing.T) {
	if err := validInstance().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestInstanceValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instance)
		want   string
	}{
		{"bad in port", func(in *Instance) { in.Flows[0].In = 5 }, "input port"},
		{"bad out port", func(in *Instance) { in.Flows[0].Out = -1 }, "output port"},
		{"zero demand", func(in *Instance) { in.Flows[0].Demand = 0 }, "demand"},
		{"negative release", func(in *Instance) { in.Flows[0].Release = -2 }, "release"},
		{"demand exceeds kappa", func(in *Instance) { in.Flows[0].Demand = 3 }, "kappa"},
		{"zero in capacity", func(in *Instance) { in.Switch.InCaps[0] = 0 }, "capacity"},
		{"zero out capacity", func(in *Instance) { in.Switch.OutCaps[1] = -1 }, "capacity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := validInstance()
			tc.mutate(in)
			err := in.Validate()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestInstanceAggregates(t *testing.T) {
	in := validInstance()
	if in.N() != 3 {
		t.Errorf("N = %d", in.N())
	}
	if in.MaxDemand() != 2 {
		t.Errorf("MaxDemand = %d", in.MaxDemand())
	}
	if in.MaxRelease() != 1 {
		t.Errorf("MaxRelease = %d", in.MaxRelease())
	}
	if in.TotalDemand() != 4 {
		t.Errorf("TotalDemand = %d", in.TotalDemand())
	}
	if in.UnitDemands() {
		t.Error("UnitDemands should be false")
	}
	loads := in.PortLoads()
	// input port 0 carries flows 0,1: 1+2=3; input 1 carries flow 2: 1.
	if loads[0] != 3 || loads[1] != 1 {
		t.Errorf("input loads = %v", loads[:2])
	}
	// output port 0 carries flow 0: 1; output 1 carries flows 1,2: 3.
	if loads[2] != 1 || loads[3] != 3 {
		t.Errorf("output loads = %v", loads[2:])
	}
}

func TestKappa(t *testing.T) {
	in := &Instance{
		Switch: Switch{InCaps: []int{5, 1}, OutCaps: []int{3}},
		Flows:  []Flow{{In: 0, Out: 0, Demand: 1}, {In: 1, Out: 0, Demand: 1}},
	}
	if in.Kappa(0) != 3 {
		t.Errorf("kappa(0) = %d, want 3", in.Kappa(0))
	}
	if in.Kappa(1) != 1 {
		t.Errorf("kappa(1) = %d, want 1", in.Kappa(1))
	}
}

func TestCongestionHorizonCoversLoad(t *testing.T) {
	in := validInstance()
	h := in.CongestionHorizon()
	// Port 0 (input) has load 3, capacity 2 => at least 2 rounds, plus
	// release 1 plus d_max 2 slack.
	if h < 2 {
		t.Fatalf("horizon %d too small", h)
	}
}

func TestUnitDemandsTrue(t *testing.T) {
	in := &Instance{Switch: UnitSwitch(2), Flows: []Flow{{In: 0, Out: 1, Demand: 1}}}
	if !in.UnitDemands() {
		t.Fatal("want unit demands")
	}
}

func TestScheduleMetrics(t *testing.T) {
	in := validInstance()
	s := NewSchedule(in.N())
	if s.Complete() {
		t.Fatal("fresh schedule must be incomplete")
	}
	s.Round[0] = 0 // rho = 1
	s.Round[1] = 2 // rho = 2 (released 1)
	s.Round[2] = 3 // rho = 4
	if !s.Complete() {
		t.Fatal("schedule should be complete")
	}
	if got := s.ResponseTime(in, 2); got != 4 {
		t.Errorf("rho_2 = %d, want 4", got)
	}
	if got := s.TotalResponse(in); got != 7 {
		t.Errorf("total = %d, want 7", got)
	}
	if got := s.MaxResponse(in); got != 4 {
		t.Errorf("max = %d, want 4", got)
	}
	if got := s.AvgResponse(in); got < 2.33 || got > 2.34 {
		t.Errorf("avg = %v", got)
	}
	if got := s.Makespan(); got != 4 {
		t.Errorf("makespan = %d, want 4", got)
	}
	hist := s.ResponseHistogram(in)
	if len(hist) != 3 || hist[0] != 1 || hist[2] != 4 {
		t.Errorf("hist = %v", hist)
	}
}

func TestResponseTimePanicsOnUnscheduled(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	in := validInstance()
	NewSchedule(in.N()).ResponseTime(in, 0)
}

func TestScheduleValidate(t *testing.T) {
	in := validInstance()
	s := NewSchedule(in.N())
	caps := in.Switch.Caps()

	if err := s.Validate(in, caps); err == nil {
		t.Fatal("incomplete schedule must fail validation")
	}

	s.Round = []int{0, 1, 0}
	if err := s.Validate(in, caps); err != nil {
		t.Fatalf("feasible schedule rejected: %v", err)
	}

	// Violate release time.
	s.Round = []int{0, 0, 0}
	if err := s.Validate(in, caps); err == nil || !strings.Contains(err.Error(), "before release") {
		t.Fatalf("want release violation, got %v", err)
	}

	// Violate capacity: flows 1 (demand 2) and 0 (demand 1) share input 0.
	s.Round = []int{1, 1, 0}
	if err := s.Validate(in, caps); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("want capacity violation, got %v", err)
	}

	// Augmentation fixes it.
	if err := s.Validate(in, AddCaps(caps, 1)); err != nil {
		t.Fatalf("augmented validation failed: %v", err)
	}
}

func TestScheduleValidateShapeErrors(t *testing.T) {
	in := validInstance()
	s := &Schedule{Round: []int{0}}
	if err := s.Validate(in, in.Switch.Caps()); err == nil {
		t.Fatal("want length mismatch error")
	}
	s = NewSchedule(in.N())
	if err := s.Validate(in, []int{1}); err == nil {
		t.Fatal("want capacity length mismatch error")
	}
}

func TestMaxOverload(t *testing.T) {
	in := validInstance()
	s := &Schedule{Round: []int{1, 1, 0}}
	caps := in.Switch.Caps()
	if got := s.MaxOverload(in, caps); got != 1 {
		t.Fatalf("overload = %d, want 1", got)
	}
	if got := s.MaxOverload(in, AddCaps(caps, 1)); got != 0 {
		t.Fatalf("augmented overload = %d, want 0", got)
	}
}

func TestScaleAndAddCaps(t *testing.T) {
	caps := []int{1, 2, 3}
	sc := ScaleCaps(caps, 3)
	if sc[0] != 3 || sc[2] != 9 {
		t.Errorf("ScaleCaps = %v", sc)
	}
	ac := AddCaps(caps, 5)
	if ac[0] != 6 || ac[2] != 8 {
		t.Errorf("AddCaps = %v", ac)
	}
	if caps[0] != 1 {
		t.Error("inputs must not be mutated")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := validInstance()
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != in.N() || got.Switch.NumIn() != 2 || got.Flows[1] != in.Flows[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadInstanceRejectsInvalid(t *testing.T) {
	bad := `{"in_caps":[1],"out_caps":[1],"flows":[{"in":5,"out":0,"demand":1,"release":0}]}`
	if _, err := ReadInstance(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid instance accepted")
	}
	if _, err := ReadInstance(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad json accepted")
	}
}

// randomInstance builds a random valid instance for property tests.
func randomInstance(rng *rand.Rand, maxPorts, maxFlows int) *Instance {
	m := 1 + rng.Intn(maxPorts)
	mp := 1 + rng.Intn(maxPorts)
	sw := NewSwitch(m, mp, 1+rng.Intn(3))
	n := rng.Intn(maxFlows + 1)
	flows := make([]Flow, n)
	for i := range flows {
		in := rng.Intn(m)
		out := rng.Intn(mp)
		k := sw.InCaps[in]
		if sw.OutCaps[out] < k {
			k = sw.OutCaps[out]
		}
		flows[i] = Flow{In: in, Out: out, Demand: 1 + rng.Intn(k), Release: rng.Intn(10)}
	}
	return &Instance{Switch: sw, Flows: flows}
}

func TestQuickRandomInstancesValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 6, 20)
		return in.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a schedule where each flow runs alone in its own round past all
// releases is always valid, and metrics are consistent with each other.
func TestQuickSerialScheduleAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 5, 15)
		s := NewSchedule(in.N())
		t0 := in.MaxRelease() + 1
		for i := range s.Round {
			s.Round[i] = t0 + i
		}
		if in.N() > 0 && s.Validate(in, in.Switch.Caps()) != nil {
			return false
		}
		// total >= max >= 1 (when nonempty), total >= n.
		if in.N() > 0 {
			total := s.TotalResponse(in)
			max := s.MaxResponse(in)
			if max < 1 || total < max || total < in.N() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: JSON round trip preserves the instance exactly.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 4, 12)
		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			return false
		}
		got, err := ReadInstance(&buf)
		if err != nil {
			return false
		}
		if got.N() != in.N() {
			return false
		}
		for i := range in.Flows {
			if got.Flows[i] != in.Flows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
