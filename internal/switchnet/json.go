package switchnet

import (
	"encoding/json"
	"fmt"
	"io"
)

// instanceJSON is the on-disk representation of an Instance.
type instanceJSON struct {
	InCaps  []int  `json:"in_caps"`
	OutCaps []int  `json:"out_caps"`
	Flows   []Flow `json:"flows"`
}

// MarshalJSON implements json.Marshaler for Instance.
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(instanceJSON{
		InCaps:  in.Switch.InCaps,
		OutCaps: in.Switch.OutCaps,
		Flows:   in.Flows,
	})
}

// UnmarshalJSON implements json.Unmarshaler for Instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var raw instanceJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	in.Switch = Switch{InCaps: raw.InCaps, OutCaps: raw.OutCaps}
	in.Flows = raw.Flows
	return nil
}

// WriteInstance writes inst as indented JSON to w.
func WriteInstance(w io.Writer, inst *Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(inst)
}

// ReadInstance parses an instance from r and validates it.
func ReadInstance(r io.Reader) (*Instance, error) {
	var inst Instance
	if err := json.NewDecoder(r).Decode(&inst); err != nil {
		return nil, fmt.Errorf("decoding instance: %w", err)
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("invalid instance: %w", err)
	}
	return &inst, nil
}
