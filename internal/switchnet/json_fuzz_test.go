package switchnet

import (
	"bytes"
	"testing"
)

// FuzzReadInstance fuzzes the JSON instance decoder — one of the two
// surfaces that accept external input. ReadInstance must never panic, and
// any instance it accepts must survive a WriteInstance/ReadInstance round
// trip unchanged.
func FuzzReadInstance(f *testing.F) {
	f.Add(`{"in_caps":[1,1],"out_caps":[1,1],"flows":[{"in":0,"out":1,"demand":1,"release":0}]}`)
	f.Add(`{"in_caps":[2],"out_caps":[2],"flows":[]}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(`{"in_caps":[0],"out_caps":[1],"flows":[{"in":0,"out":0,"demand":1,"release":0}]}`)
	f.Add(`{"in_caps":[1],"out_caps":[1],"flows":[{"in":5,"out":0,"demand":1,"release":0}]}`)
	f.Add(`{"in_caps":[1],"out_caps":[1],"flows":[{"in":0,"out":0,"demand":-1,"release":-7}]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			return
		}
		inst, err := ReadInstance(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("ReadInstance accepted an invalid instance: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteInstance(&buf, inst); err != nil {
			t.Fatalf("WriteInstance failed on accepted instance: %v", err)
		}
		back, err := ReadInstance(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\njson:\n%s", err, buf.String())
		}
		if back.Switch.NumIn() != inst.Switch.NumIn() || back.Switch.NumOut() != inst.Switch.NumOut() {
			t.Fatal("round trip changed port counts")
		}
		for p := 0; p < inst.Switch.NumPorts(); p++ {
			if inst.Switch.Cap(p) != back.Switch.Cap(p) {
				t.Fatalf("round trip changed capacity of port %d", p)
			}
		}
		if len(back.Flows) != len(inst.Flows) {
			t.Fatalf("round trip changed flow count: %d -> %d", len(inst.Flows), len(back.Flows))
		}
		for i := range inst.Flows {
			if inst.Flows[i] != back.Flows[i] {
				t.Fatalf("round trip changed flow %d: %+v -> %+v", i, inst.Flows[i], back.Flows[i])
			}
		}
	})
}
