package switchnet

import (
	"fmt"
	"sort"
)

// Unscheduled marks a flow that has not been assigned a round.
const Unscheduled = -1

// Schedule assigns each flow of an instance to a single round.
// Round[f] is the round in which flow f runs, or Unscheduled.
//
// Following the paper's convention (Section 2), a flow scheduled in round t
// completes at C_e = t + 1, so its response time is t + 1 - r_e.
type Schedule struct {
	Round []int
}

// NewSchedule returns a schedule with all n flows unscheduled.
func NewSchedule(n int) *Schedule {
	r := make([]int, n)
	for i := range r {
		r[i] = Unscheduled
	}
	return &Schedule{Round: r}
}

// Complete reports whether every flow has been assigned a round.
func (s *Schedule) Complete() bool {
	for _, t := range s.Round {
		if t == Unscheduled {
			return false
		}
	}
	return true
}

// Makespan returns one past the last used round, or 0 for an empty schedule.
func (s *Schedule) Makespan() int {
	m := 0
	for _, t := range s.Round {
		if t != Unscheduled && t+1 > m {
			m = t + 1
		}
	}
	return m
}

// ResponseTime returns rho_f = Round[f] + 1 - r_f for flow f of inst.
// It panics if the flow is unscheduled.
func (s *Schedule) ResponseTime(inst *Instance, f int) int {
	t := s.Round[f]
	if t == Unscheduled {
		panic(fmt.Sprintf("switchnet: flow %d is unscheduled", f))
	}
	return t + 1 - inst.Flows[f].Release
}

// TotalResponse returns the sum of response times over all flows.
func (s *Schedule) TotalResponse(inst *Instance) int {
	total := 0
	for f := range s.Round {
		total += s.ResponseTime(inst, f)
	}
	return total
}

// AvgResponse returns the average response time, or 0 for an empty instance.
func (s *Schedule) AvgResponse(inst *Instance) float64 {
	if len(s.Round) == 0 {
		return 0
	}
	return float64(s.TotalResponse(inst)) / float64(len(s.Round))
}

// MaxResponse returns the maximum response time over all flows, or 0 for an
// empty instance.
func (s *Schedule) MaxResponse(inst *Instance) int {
	m := 0
	for f := range s.Round {
		if r := s.ResponseTime(inst, f); r > m {
			m = r
		}
	}
	return m
}

// PortRoundLoads returns the demand placed on each (global port, round)
// pair as a map from round to per-port load slice. Only rounds with nonzero
// load appear.
func (s *Schedule) PortRoundLoads(inst *Instance) map[int][]int {
	loads := make(map[int][]int)
	for f, t := range s.Round {
		if t == Unscheduled {
			continue
		}
		row, ok := loads[t]
		if !ok {
			row = make([]int, inst.Switch.NumPorts())
			loads[t] = row
		}
		e := inst.Flows[f]
		row[inst.Switch.PortIndex(In, e.In)] += e.Demand
		row[inst.Switch.PortIndex(Out, e.Out)] += e.Demand
	}
	return loads
}

// MaxOverload returns the largest amount by which the schedule exceeds the
// given per-port capacities in any round (0 if it never does). caps must
// have length inst.Switch.NumPorts().
func (s *Schedule) MaxOverload(inst *Instance, caps []int) int {
	worst := 0
	for _, row := range s.PortRoundLoads(inst) {
		for p, load := range row {
			if over := load - caps[p]; over > worst {
				worst = over
			}
		}
	}
	return worst
}

// Validate checks that the schedule is feasible for inst under the given
// per-port capacities caps (global index order): every flow is scheduled,
// no flow runs before its release, and no port is overloaded in any round.
// Pass inst.Switch.Caps() for the unaugmented capacities.
func (s *Schedule) Validate(inst *Instance, caps []int) error {
	if len(s.Round) != len(inst.Flows) {
		return fmt.Errorf("schedule covers %d flows, instance has %d", len(s.Round), len(inst.Flows))
	}
	if len(caps) != inst.Switch.NumPorts() {
		return fmt.Errorf("got %d capacities, instance has %d ports", len(caps), inst.Switch.NumPorts())
	}
	for f, t := range s.Round {
		if t == Unscheduled {
			return fmt.Errorf("flow %d: %w", f, ErrUnscheduled)
		}
		if t < inst.Flows[f].Release {
			return fmt.Errorf("flow %d scheduled at round %d before release %d", f, t, inst.Flows[f].Release)
		}
	}
	for t, row := range s.PortRoundLoads(inst) {
		for p, load := range row {
			if load > caps[p] {
				return fmt.Errorf("round %d: port %d loaded %d > capacity %d", t, p, load, caps[p])
			}
		}
	}
	return nil
}

// ScaleCaps returns capacities multiplied by factor (for "(1+c) times the
// capacity" style augmentation).
func ScaleCaps(caps []int, factor int) []int {
	out := make([]int, len(caps))
	for i, c := range caps {
		out[i] = c * factor
	}
	return out
}

// AddCaps returns capacities increased by delta (for "+2*d_max-1" style
// augmentation).
func AddCaps(caps []int, delta int) []int {
	out := make([]int, len(caps))
	for i, c := range caps {
		out[i] = c + delta
	}
	return out
}

// ResponseHistogram returns the sorted multiset of response times; useful
// for percentile reporting in experiments.
func (s *Schedule) ResponseHistogram(inst *Instance) []int {
	rs := make([]int, len(s.Round))
	for f := range s.Round {
		rs[f] = s.ResponseTime(inst, f)
	}
	sort.Ints(rs)
	return rs
}
