// Package switchnet models a non-blocking switch as a capacitated bipartite
// graph, together with flow requests and round-based schedules, following
// Section 2 of Jahanjou, Rajaraman and Stalfa, "Scheduling Flows on a Switch
// to Optimize Response Times" (SPAA 2020).
//
// A switch S(m,m') has m input ports and m' output ports, each with an
// integer capacity. A flow is a directed edge from an input port to an
// output port with an integer demand and a release round. A schedule assigns
// each flow to a single round no earlier than its release, such that the
// total demand incident on any port in any round does not exceed the port's
// capacity (possibly augmented, for the resource-augmentation results).
package switchnet

import (
	"errors"
	"fmt"
)

// Side distinguishes the two sides of the bipartite switch.
type Side int

const (
	// In denotes the input (ingress) side of the switch.
	In Side = iota
	// Out denotes the output (egress) side of the switch.
	Out
)

// String returns "in" or "out".
func (s Side) String() string {
	if s == In {
		return "in"
	}
	return "out"
}

// Switch describes the port structure of a non-blocking switch: the
// capacities of its input and output ports. The zero value is an empty
// switch with no ports.
type Switch struct {
	// InCaps[i] is the capacity of input port i.
	InCaps []int
	// OutCaps[j] is the capacity of output port j.
	OutCaps []int
}

// NewSwitch returns an m x m' switch with every port capacity set to cap.
func NewSwitch(m, mPrime, cap int) Switch {
	in := make([]int, m)
	out := make([]int, mPrime)
	for i := range in {
		in[i] = cap
	}
	for j := range out {
		out[j] = cap
	}
	return Switch{InCaps: in, OutCaps: out}
}

// UnitSwitch returns an m x m switch with unit port capacities, the
// configuration used throughout the paper's experiments (Section 5.2).
func UnitSwitch(m int) Switch { return NewSwitch(m, m, 1) }

// NumIn returns the number of input ports.
func (s Switch) NumIn() int { return len(s.InCaps) }

// NumOut returns the number of output ports.
func (s Switch) NumOut() int { return len(s.OutCaps) }

// NumPorts returns the total number of ports, inputs first.
// Ports are globally indexed 0..NumPorts()-1 with input port i at index i
// and output port j at index NumIn()+j.
func (s Switch) NumPorts() int { return len(s.InCaps) + len(s.OutCaps) }

// PortIndex returns the global index of port i on the given side.
func (s Switch) PortIndex(side Side, i int) int {
	if side == In {
		return i
	}
	return len(s.InCaps) + i
}

// Cap returns the capacity of the port with the given global index.
func (s Switch) Cap(port int) int {
	if port < len(s.InCaps) {
		return s.InCaps[port]
	}
	return s.OutCaps[port-len(s.InCaps)]
}

// Caps returns a fresh slice of all port capacities in global index order.
func (s Switch) Caps() []int {
	caps := make([]int, 0, s.NumPorts())
	caps = append(caps, s.InCaps...)
	caps = append(caps, s.OutCaps...)
	return caps
}

// Clone returns a deep copy of the switch.
func (s Switch) Clone() Switch {
	return Switch{InCaps: append([]int(nil), s.InCaps...), OutCaps: append([]int(nil), s.OutCaps...)}
}

// ValidateFlow checks one flow against the switch: ports in range,
// positive demand, non-negative release, and the standing assumption
// d_e <= kappa_e = min(cap(In), cap(Out)) from Section 2. It is the single
// per-flow admissibility rule shared by Instance.Validate, the streaming
// runtime's admission control, and the streaming trace reader.
func (s Switch) ValidateFlow(e Flow) error {
	if e.In < 0 || e.In >= s.NumIn() {
		return fmt.Errorf("input port %d out of range [0,%d)", e.In, s.NumIn())
	}
	if e.Out < 0 || e.Out >= s.NumOut() {
		return fmt.Errorf("output port %d out of range [0,%d)", e.Out, s.NumOut())
	}
	if e.Demand <= 0 {
		return fmt.Errorf("demand %d is not positive", e.Demand)
	}
	if e.Release < 0 {
		return fmt.Errorf("release %d is negative", e.Release)
	}
	kappa := s.InCaps[e.In]
	if c := s.OutCaps[e.Out]; c < kappa {
		kappa = c
	}
	if e.Demand > kappa {
		return fmt.Errorf("demand %d exceeds kappa=%d (min port capacity)", e.Demand, kappa)
	}
	return nil
}

// Flow is a single flow request: an edge from input port In to output port
// Out with integer demand Demand, released at round Release (it may be
// scheduled in any round t >= Release).
type Flow struct {
	// In is the input-port index in [0, m).
	In int `json:"in"`
	// Out is the output-port index in [0, m').
	Out int `json:"out"`
	// Demand is the flow size d_e >= 1. It must satisfy
	// Demand <= min(cap(In), cap(Out)) so the flow fits in one round.
	Demand int `json:"demand"`
	// Release is the earliest round r_e >= 0 in which the flow may run.
	Release int `json:"release"`
}

// Instance couples a switch with a set of flow requests. Flows are
// identified by their index in Flows.
type Instance struct {
	Switch Switch `json:"switch"`
	Flows  []Flow `json:"flows"`
}

// N returns the number of flows.
func (in *Instance) N() int { return len(in.Flows) }

// Kappa returns kappa_e = min(cap(e.In), cap(e.Out)) for flow index f.
func (in *Instance) Kappa(f int) int {
	e := in.Flows[f]
	ci := in.Switch.InCaps[e.In]
	co := in.Switch.OutCaps[e.Out]
	if ci < co {
		return ci
	}
	return co
}

// MaxDemand returns d_max = max_e d_e, or 0 for an empty instance.
func (in *Instance) MaxDemand() int {
	d := 0
	for _, e := range in.Flows {
		if e.Demand > d {
			d = e.Demand
		}
	}
	return d
}

// MaxRelease returns the latest release round, or 0 for an empty instance.
func (in *Instance) MaxRelease() int {
	r := 0
	for _, e := range in.Flows {
		if e.Release > r {
			r = e.Release
		}
	}
	return r
}

// TotalDemand returns the sum of all flow demands.
func (in *Instance) TotalDemand() int {
	t := 0
	for _, e := range in.Flows {
		t += e.Demand
	}
	return t
}

// PortLoads returns, for every global port index, the total demand of flows
// incident on the port.
func (in *Instance) PortLoads() []int {
	loads := make([]int, in.Switch.NumPorts())
	for _, e := range in.Flows {
		loads[in.Switch.PortIndex(In, e.In)] += e.Demand
		loads[in.Switch.PortIndex(Out, e.Out)] += e.Demand
	}
	return loads
}

// CongestionHorizon returns a round index by which any reasonable schedule
// can finish all flows: max release plus the largest ceil(load/capacity)
// over ports plus d_max slack. It is used to size LP horizons.
func (in *Instance) CongestionHorizon() int {
	h := 0
	loads := in.PortLoads()
	for p, load := range loads {
		c := in.Switch.Cap(p)
		if c <= 0 {
			continue
		}
		rounds := (load + c - 1) / c
		if rounds > h {
			h = rounds
		}
	}
	return in.MaxRelease() + h + in.MaxDemand() + 1
}

// Validate checks structural well-formedness: port indices in range,
// positive capacities and demands, non-negative releases, and the standing
// assumption d_e <= kappa_e from Section 2.
func (in *Instance) Validate() error {
	for i, c := range in.Switch.InCaps {
		if c <= 0 {
			return fmt.Errorf("input port %d: capacity %d is not positive", i, c)
		}
	}
	for j, c := range in.Switch.OutCaps {
		if c <= 0 {
			return fmt.Errorf("output port %d: capacity %d is not positive", j, c)
		}
	}
	for f, e := range in.Flows {
		if err := in.Switch.ValidateFlow(e); err != nil {
			return fmt.Errorf("flow %d: %w", f, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	return &Instance{Switch: in.Switch.Clone(), Flows: append([]Flow(nil), in.Flows...)}
}

// UnitDemands reports whether every flow has demand exactly 1, the setting
// of Theorem 1 and of the paper's experiments.
func (in *Instance) UnitDemands() bool {
	for _, e := range in.Flows {
		if e.Demand != 1 {
			return false
		}
	}
	return true
}

// ErrUnscheduled is returned by schedule validation when a flow has not been
// assigned a round.
var ErrUnscheduled = errors.New("flow is unscheduled")
