package plot

import (
	"bytes"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	c := &Chart{Title: "demo", XLabel: "T", YLabel: "avg"}
	c.AddPoint("MaxCard", 10, 2.5)
	c.AddPoint("MaxCard", 20, 3.5)
	c.AddPoint("LP", 10, 2.0)
	c.AddPoint("LP", 20, 2.5)
	return c
}

func TestAddPointGroupsSeries(t *testing.T) {
	c := sampleChart()
	if len(c.Series) != 2 {
		t.Fatalf("series = %d", len(c.Series))
	}
	if len(c.Series[0].Points) != 2 {
		t.Fatalf("points = %d", len(c.Series[0].Points))
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "T,MaxCard,LP" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "10,2.5,2" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteCSVHandlesMissingPoints(t *testing.T) {
	c := &Chart{XLabel: "x"}
	c.AddPoint("a", 1, 1)
	c.AddPoint("b", 2, 2)
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1,1,\n") {
		t.Fatalf("missing cell not blank: %q", buf.String())
	}
}

func TestRenderASCII(t *testing.T) {
	out := sampleChart().RenderASCII(40, 10)
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "MaxCard") || !strings.Contains(out, "LP") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
}

func TestRenderASCIIEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if out := c.RenderASCII(30, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestRenderASCIISinglePoint(t *testing.T) {
	c := &Chart{}
	c.AddPoint("s", 5, 5)
	out := c.RenderASCII(20, 6)
	if !strings.Contains(out, "*") {
		t.Fatal("point missing")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(3) != "3" {
		t.Errorf("trimFloat(3) = %q", trimFloat(3))
	}
	if trimFloat(2.5) != "2.5" {
		t.Errorf("trimFloat(2.5) = %q", trimFloat(2.5))
	}
}
