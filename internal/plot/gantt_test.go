package plot

import (
	"strings"
	"testing"

	"flowsched/internal/switchnet"
)

func ganttInstance() (*switchnet.Instance, *switchnet.Schedule) {
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 1, Demand: 1, Release: 0},
			{In: 1, Out: 1, Demand: 1, Release: 0},
		},
	}
	s := &switchnet.Schedule{Round: []int{0, 2}}
	return inst, s
}

func TestGanttBasic(t *testing.T) {
	inst, s := ganttInstance()
	out := Gantt(inst, s, inst.Switch.Caps())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 4 ports.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "in0") || !strings.Contains(lines[1], "1..") {
		t.Fatalf("in0 row wrong: %q", lines[1])
	}
	// out1 carries both flows: rounds 0 and 2.
	if !strings.Contains(lines[4], "1.1") {
		t.Fatalf("out1 row wrong: %q", lines[4])
	}
	if strings.Contains(out, "!") {
		t.Fatal("no overload expected")
	}
}

func TestGanttMarksOverload(t *testing.T) {
	inst, s := ganttInstance()
	s.Round = []int{0, 0} // both flows at round 0: out1 load 2 > cap 1
	out := Gantt(inst, s, inst.Switch.Caps())
	if !strings.Contains(out, "!") {
		t.Fatalf("overload not marked:\n%s", out)
	}
	if !strings.Contains(out, "2") {
		t.Fatalf("load digit missing:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(1)}
	if out := Gantt(inst, switchnet.NewSchedule(0), nil); !strings.Contains(out, "empty") {
		t.Fatalf("empty schedule output: %q", out)
	}
}

func TestGanttHeavyLoadGlyph(t *testing.T) {
	inst := &switchnet.Instance{Switch: switchnet.NewSwitch(1, 1, 20)}
	for i := 0; i < 12; i++ {
		inst.Flows = append(inst.Flows, switchnet.Flow{In: 0, Out: 0, Demand: 1, Release: 0})
	}
	s := switchnet.NewSchedule(12)
	for i := range s.Round {
		s.Round[i] = 0
	}
	out := Gantt(inst, s, inst.Switch.Caps())
	if !strings.Contains(out, "#") {
		t.Fatalf("load >9 glyph missing:\n%s", out)
	}
}

func TestRuler(t *testing.T) {
	if r := ruler(7); r != "|----|-" {
		t.Fatalf("ruler = %q", r)
	}
}
