package plot

import (
	"fmt"
	"strings"

	"flowsched/internal/switchnet"
)

// Gantt renders a schedule as a per-port timeline: one row per port, one
// column per round, each cell showing the port's load that round ("." for
// idle, digits for load, "#" for load above 9). A trailing "!" column
// marker is appended to any row that exceeds the given capacities at some
// round, making augmentation visible at a glance.
func Gantt(inst *switchnet.Instance, s *switchnet.Schedule, caps []int) string {
	horizon := s.Makespan()
	if horizon == 0 {
		return "(empty schedule)\n"
	}
	numPorts := inst.Switch.NumPorts()
	loads := make([][]int, horizon)
	for t := range loads {
		loads[t] = make([]int, numPorts)
	}
	for f, t := range s.Round {
		if t == switchnet.Unscheduled {
			continue
		}
		e := inst.Flows[f]
		loads[t][inst.Switch.PortIndex(switchnet.In, e.In)] += e.Demand
		loads[t][inst.Switch.PortIndex(switchnet.Out, e.Out)] += e.Demand
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s|%s\n", "port", ruler(horizon))
	for p := 0; p < numPorts; p++ {
		name := portName(inst.Switch, p)
		over := false
		var row strings.Builder
		for t := 0; t < horizon; t++ {
			load := loads[t][p]
			switch {
			case load == 0:
				row.WriteByte('.')
			case load > 9:
				row.WriteByte('#')
			default:
				row.WriteByte(byte('0' + load))
			}
			if caps != nil && load > caps[p] {
				over = true
			}
		}
		suffix := ""
		if over {
			suffix = " !"
		}
		fmt.Fprintf(&b, "%-8s|%s|%s\n", name, row.String(), suffix)
	}
	return b.String()
}

// ruler emits a round-index ruler with a tick every 5 rounds.
func ruler(horizon int) string {
	var b strings.Builder
	for t := 0; t < horizon; t++ {
		if t%5 == 0 {
			b.WriteByte('|')
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}

// portName labels a global port index as in<i> or out<j>.
func portName(sw switchnet.Switch, p int) string {
	if p < sw.NumIn() {
		return fmt.Sprintf("in%d", p)
	}
	return fmt.Sprintf("out%d", p-sw.NumIn())
}
