// Package plot renders the experiment harness's outputs: CSV files for
// machine consumption and compact ASCII line charts for EXPERIMENTS.md,
// standing in for the paper's figure pipeline (Figures 6 and 7).
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name   string
	Points [][2]float64
}

// Chart is a titled collection of series over a shared x axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddPoint appends (x, y) to the named series, creating it if needed.
func (c *Chart) AddPoint(series string, x, y float64) {
	for i := range c.Series {
		if c.Series[i].Name == series {
			c.Series[i].Points = append(c.Series[i].Points, [2]float64{x, y})
			return
		}
	}
	c.Series = append(c.Series, Series{Name: series, Points: [][2]float64{{x, y}}})
}

// WriteCSV emits "x,series1,series2,..." rows, merging series on x.
func (c *Chart) WriteCSV(w io.Writer) error {
	xs := map[float64]bool{}
	for _, s := range c.Series {
		for _, p := range s.Points {
			xs[p[0]] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	header := []string{c.XLabel}
	for _, s := range c.Series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, x := range sorted {
		row := []string{trimFloat(x)}
		for _, s := range c.Series {
			val := ""
			for _, p := range s.Points {
				if p[0] == x {
					val = trimFloat(p[1])
					break
				}
			}
			row = append(row, val)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// RenderASCII draws the chart into a width x height character grid with
// axis annotations, one marker per series, and a legend.
func (c *Chart) RenderASCII(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
			minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if math.IsInf(minX, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mk := markers[si%len(markers)]
		for _, p := range s.Points {
			col := int(math.Round((p[0] - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((p[1]-minY)/(maxY-minY)*float64(height-1)))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mk
			}
		}
	}
	yHi := fmt.Sprintf("%9.4g", maxY)
	yLo := fmt.Sprintf("%9.4g", minY)
	pad := strings.Repeat(" ", 9)
	for r, rowBytes := range grid {
		label := pad
		if r == 0 {
			label = yHi
		} else if r == height-1 {
			label = yLo
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(rowBytes))
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", pad, trimFloat(minX),
		strings.Repeat(" ", maxInt(1, width-len(trimFloat(minX))-len(trimFloat(maxX)))), trimFloat(maxX))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", pad, c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", pad, markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
