package daemon_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"flowsched/internal/daemon"
	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
)

// startServer builds a daemon over an 8-port unit switch, starts its
// round loop, and serves it through httptest.
func startServer(t *testing.T, cfg daemon.Config) (*daemon.Server, *httptest.Server) {
	t.Helper()
	if cfg.Switch.NumIn() == 0 {
		cfg.Switch = switchnet.UnitSwitch(8)
	}
	if cfg.Policy == nil {
		cfg.Policy = stream.ByName("RoundRobin")
	}
	srv, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postFlows POSTs one batch and returns the response, body drained.
func postFlows(t *testing.T, url string, flows []switchnet.Flow) (int, string) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"flows": flows})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/flows", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestDaemonEndToEnd is the acceptance flow under -race: concurrent HTTP
// ingest while scrapers hit /metrics and /snapshot, then a graceful
// drain whose final accounting balances with nothing left pending.
func TestDaemonEndToEnd(t *testing.T) {
	srv, ts := startServer(t, daemon.Config{Shards: 2, VerifyEvery: 32})

	const ingesters, batches, per = 4, 10, 25
	var wg sync.WaitGroup
	stopScrape := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "flowsched_rounds_total") {
					t.Errorf("metrics scrape: status %d, body %q", resp.StatusCode, b)
					return
				}
				resp, err = http.Get(ts.URL + "/snapshot")
				if err != nil {
					t.Error(err)
					return
				}
				var snap stream.Summary
				err = json.NewDecoder(resp.Body).Decode(&snap)
				resp.Body.Close()
				if err != nil {
					t.Errorf("snapshot decode: %v", err)
					return
				}
				if snap.Admitted < snap.Completed+int64(snap.Pending)+snap.Dropped+snap.Expired {
					t.Errorf("mid-run accounting broken: %+v", snap)
					return
				}
			}
		}()
	}
	var ingWG sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		ingWG.Add(1)
		go func(g int) {
			defer ingWG.Done()
			for b := 0; b < batches; b++ {
				flows := make([]switchnet.Flow, per)
				for i := range flows {
					k := g*batches*per + b*per + i
					flows[i] = switchnet.Flow{In: k % 8, Out: (k + 3) % 8, Demand: 1}
				}
				if code, body := postFlows(t, ts.URL, flows); code != http.StatusAccepted {
					t.Errorf("ingest batch: status %d, body %q", code, body)
					return
				}
			}
		}(g)
	}
	ingWG.Wait()

	resp, err := http.Post(ts.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum stream.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", resp.StatusCode)
	}
	close(stopScrape)
	wg.Wait()

	const total = ingesters * batches * per
	if sum.Admitted != total {
		t.Fatalf("admitted %d, want every ingested flow (%d)", sum.Admitted, total)
	}
	if sum.Pending != 0 {
		t.Fatalf("graceful drain left %d flows pending", sum.Pending)
	}
	if sum.Admitted != sum.Completed+sum.Dropped+sum.Expired {
		t.Fatalf("final accounting unbalanced: admitted %d != completed %d + dropped %d + expired %d",
			sum.Admitted, sum.Completed, sum.Dropped, sum.Expired)
	}

	// Post-drain: ingest refused, health reports draining with 503 so a
	// load balancer stops routing here, Wait agrees.
	if code, _ := postFlows(t, ts.URL, []switchnet.Flow{{In: 0, Out: 1, Demand: 1}}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain ingest status %d, want 503", code)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(hb), "draining") {
		t.Fatalf("post-drain healthz: status %d, body %q (want 503 draining)", resp.StatusCode, hb)
	}
	final, err := srv.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if final.Completed != sum.Completed || final.Admitted != sum.Admitted {
		t.Fatalf("Wait disagrees with the drain response: %+v vs %+v", final, sum)
	}
	if sum.WindowsVerified == 0 {
		t.Fatal("no verification windows ran during the drain")
	}
}

// TestDaemonRejectsBadBatches: an inadmissible flow rejects the whole
// batch before anything reaches the runtime — the run must survive and
// admit nothing from the poisoned batch.
func TestDaemonRejectsBadBatches(t *testing.T) {
	srv, ts := startServer(t, daemon.Config{})
	cases := []struct {
		name string
		body string
	}{
		{"not json", `{"flows": [`},
		{"empty batch", `{"flows": []}`},
		{"port out of range", `{"flows": [{"in": 99, "out": 0, "demand": 1}]}`},
		{"zero demand", `{"flows": [{"in": 0, "out": 0, "demand": 0}]}`},
		{"demand above capacity", `{"flows": [{"in": 0, "out": 0, "demand": 7}]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/flows", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// A good flow after the garbage: the service must still be healthy.
	if code, body := postFlows(t, ts.URL, []switchnet.Flow{{In: 1, Out: 2, Demand: 1}}); code != http.StatusAccepted {
		t.Fatalf("clean batch after rejects: status %d, body %q", code, body)
	}
	sum, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Admitted != 1 || sum.Completed != 1 {
		t.Fatalf("rejected batches leaked into the runtime: %+v", sum)
	}
}

// TestDaemonDropModeUnderOverload: a tiny pending set with shedding
// admission keeps accepting ingest (never stalls the feed) and counts
// the shed flows; the final accounting still balances.
func TestDaemonDropModeUnderOverload(t *testing.T) {
	srv, ts := startServer(t, daemon.Config{
		MaxPending: 4,
		Admit:      stream.AdmitDrop,
		Buffer:     8,
	})
	const total = 400
	for b := 0; b < total/50; b++ {
		flows := make([]switchnet.Flow, 50)
		for i := range flows {
			flows[i] = switchnet.Flow{In: 0, Out: 0, Demand: 1} // one VOQ: 1 served per round
		}
		if code, body := postFlows(t, ts.URL, flows); code != http.StatusAccepted {
			t.Fatalf("overload ingest: status %d, body %q", code, body)
		}
	}
	sum, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Admitted != total {
		t.Fatalf("admitted %d, want %d (drop mode must consume the whole feed)", sum.Admitted, total)
	}
	if sum.Dropped == 0 {
		t.Fatal("a 4-slot pending set absorbing 400 same-VOQ flows shed nothing")
	}
	if sum.Pending != 0 || sum.Admitted != sum.Completed+sum.Dropped+sum.Expired {
		t.Fatalf("final accounting unbalanced: %+v", sum)
	}
	if sum.PeakPending > 4 {
		t.Fatalf("peak pending %d exceeds the 4-slot limit", sum.PeakPending)
	}
}

// TestDaemonHardStop: Stop abandons the backlog but the summary still
// balances, counting what was left pending.
func TestDaemonHardStop(t *testing.T) {
	srv, ts := startServer(t, daemon.Config{MaxPending: 64, Buffer: 1024})
	flows := make([]switchnet.Flow, 500)
	for i := range flows {
		flows[i] = switchnet.Flow{In: 0, Out: 0, Demand: 1}
	}
	if code, body := postFlows(t, ts.URL, flows); code != http.StatusAccepted {
		t.Fatalf("ingest: status %d, body %q", code, body)
	}
	sum, err := srv.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Admitted != sum.Completed+int64(sum.Pending)+sum.Dropped+sum.Expired {
		t.Fatalf("hard-stop accounting unbalanced: %+v", sum)
	}
	if again, _ := srv.Stop(); again.Admitted != sum.Admitted {
		t.Fatal("second Stop disagrees with the first")
	}
}

// TestMetricsFormat pins the exposition format on a fixed summary.
func TestMetricsFormat(t *testing.T) {
	_, ts := startServer(t, daemon.Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# TYPE flowsched_rounds_total counter",
		"# TYPE flowsched_pending_flows gauge",
		"# TYPE flowsched_response_rounds summary",
		"flowsched_flows_admitted_total 0",
		"flowsched_flows_dropped_total 0",
		"flowsched_flows_expired_total 0",
		`flowsched_response_rounds{quantile="0.99"}`,
		"flowsched_response_rounds_count 0",
		"flowsched_response_slow_total 0",
		"# TYPE flowsched_phase_seconds histogram",
		`flowsched_phase_seconds_bucket{phase="propose",le="+Inf"} 0`,
		`flowsched_phase_seconds_count{phase="verify"} 0`,
		"# TYPE flowsched_slo_burn_rate gauge",
		`flowsched_slo_breach{target="delivery"} 0`,
		`flowsched_slo_objective{target="delivery"} 0.999`,
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if n := strings.Count(string(b), fmt.Sprintf("# TYPE")); n < 10 {
		t.Errorf("only %d typed metrics exposed", n)
	}
}
