package daemon

import (
	"context"

	"flowsched/internal/stream"
)

// Drain is the graceful shutdown sequence: refuse new ingest, wait out
// the in-flight ingest handlers, close the feed — which unparks an idle
// round loop — and wait for the runtime to finish every flow already
// accepted. The returned summary is final: Pending is zero and
// Admitted == Completed + Dropped + Expired. When a checkpoint path is
// configured, the drained state is persisted as a final checkpoint
// (pending set empty, counters exact), so a later restart continues the
// cumulative accounting; a failed final write is reported as the drain
// error when the run itself succeeded. Idempotent; concurrent callers
// all get the same summary.
func (s *Server) Drain() (*stream.Summary, error) {
	s.drainOnce.Do(func() {
		s.setDraining()
		s.ingest.Wait()
		s.src.Close()
		if s.ckptPath != "" {
			// The final checkpoint must capture the drained state, not a
			// mid-drain one: wait for the round loop first (the capture then
			// reads the quiescent state directly).
			<-s.runDone
			ctx, cancel := context.WithTimeout(context.Background(), checkpointTimeout)
			defer cancel()
			if _, err := s.CheckpointNow(ctx); err != nil {
				s.finalCkptErr = err
			}
		}
	})
	sum, err := s.Wait()
	if err == nil {
		err = s.finalCkptErr
	}
	return sum, err
}

// Stop is the hard stop: pending flows are abandoned where Drain would
// finish them. The runtime still settles owed picks and joins its verify
// goroutine, so the summary's accounting balances — Pending just need
// not be zero.
func (s *Server) Stop() (*stream.Summary, error) {
	s.setDraining()
	s.rt.Stop()
	// Stop alone cannot interrupt a round loop parked on the idle feed;
	// closing the source can.
	s.src.Close()
	return s.Wait()
}

// setDraining flips the ingest gate; handlers refuse new batches after
// it returns.
func (s *Server) setDraining() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// beginIngest joins the ingest WaitGroup unless the server is draining;
// the caller must call s.ingest.Done() when it reports true.
func (s *Server) beginIngest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.ingest.Add(1)
	return true
}
