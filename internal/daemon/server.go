// Package daemon stands the streaming scheduler runtime up as a
// long-running HTTP/JSON service: flows arrive over the network
// (POST /flows, batched), feed the runtime through a concurrently-fed
// ChanSource, and drain under a native streaming policy while the
// service exposes live observability — GET /metrics (Prometheus text
// fed from the lock-free Snapshot path), GET /snapshot (the JSON
// Summary), GET /healthz — and a graceful shutdown path (POST /drain:
// refuse new ingest, finish every pending flow, report the final
// accounting).
//
// The split of responsibilities: cmd/flowschedd owns flags, listening
// sockets, and signals; this package owns everything between an
// http.Handler and the runtime — ingest validation and gating, the
// drain protocol, and metrics encoding — so tests drive the full
// service through httptest without a process or a port.
package daemon

import (
	"fmt"
	"net/http"
	"sync"

	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

// DefaultBuffer is the ingest queue depth when Config.Buffer is zero.
const DefaultBuffer = 4096

// Config assembles a Server. Switch, Policy, Shards, MaxPending, Admit,
// Deadline, and VerifyEvery pass through to the runtime's stream.Config
// (and are validated there); Buffer sets the ingest queue depth between
// the HTTP handlers and the round loop.
type Config struct {
	Switch      switchnet.Switch
	Policy      stream.Policy
	Shards      int
	MaxPending  int
	Admit       stream.AdmitMode
	Deadline    int
	VerifyEvery int
	Buffer      int
}

// Server couples one runtime, its live ingest source, and the HTTP
// surface over both. Lifecycle: New, Start, serve Handler, then Drain
// (graceful) or Stop (hard) — each returns the final Summary.
type Server struct {
	sw  switchnet.Switch
	src *workload.ChanSource
	rt  *stream.Runtime
	mux *http.ServeMux

	// mu guards the draining flag and its handshake with the ingest
	// WaitGroup: a handler only joins the group while not draining, so
	// after Drain flips the flag, ingest.Wait covers every Push that will
	// ever happen.
	mu       sync.Mutex
	draining bool
	ingest   sync.WaitGroup

	startOnce sync.Once
	drainOnce sync.Once
	runDone   chan struct{}
	sum       *stream.Summary
	runErr    error
}

// New builds a Server; the runtime configuration is validated eagerly.
func New(cfg Config) (*Server, error) {
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	src := workload.NewChanSource(cfg.Buffer)
	rt, err := stream.New(src, stream.Config{
		Switch:      cfg.Switch,
		Policy:      cfg.Policy,
		Shards:      cfg.Shards,
		MaxPending:  cfg.MaxPending,
		Admit:       cfg.Admit,
		Deadline:    cfg.Deadline,
		VerifyEvery: cfg.VerifyEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	s := &Server{
		sw:      cfg.Switch,
		src:     src,
		rt:      rt,
		mux:     http.NewServeMux(),
		runDone: make(chan struct{}),
	}
	s.mux.HandleFunc("POST /flows", s.handleFlows)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /drain", s.handleDrain)
	return s, nil
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the runtime's round loop on its own goroutine.
// Idempotent.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		go func() {
			s.sum, s.runErr = s.rt.Run()
			close(s.runDone)
		}()
	})
}

// Snapshot returns the runtime's current metrics (lock-free with respect
// to the round loop).
func (s *Server) Snapshot() stream.Summary { return s.rt.Snapshot() }

// Done is closed once the round loop has returned (after Drain or Stop).
func (s *Server) Done() <-chan struct{} { return s.runDone }

// Wait blocks until the round loop has returned and reports its final
// summary.
func (s *Server) Wait() (*stream.Summary, error) {
	<-s.runDone
	return s.sum, s.runErr
}
