// Package daemon stands the streaming scheduler runtime up as a
// long-running HTTP/JSON service: flows arrive over the network
// (POST /flows, batched), feed the runtime through a concurrently-fed
// ChanSource, and drain under a native streaming policy while the
// service exposes live observability — GET /metrics (Prometheus text
// fed from the lock-free Snapshot path, including SLO burn rates,
// per-phase timing histograms, and the optimality pilot's gauges),
// GET /snapshot (the JSON Summary), GET /trace (the flight recorder's
// per-round JSONL), GET /slo (burn-rate state), GET /pilot (live
// competitive-ratio estimates), GET /healthz (drain/degraded aware) —
// and a graceful shutdown path (POST /drain: refuse new ingest, finish
// every pending flow, report the final accounting).
//
// The service is crash-safe when configured with a checkpoint path: the
// runtime's quiescent-point snapshots are written as atomic, CRC-sealed
// files (internal/chkpt) on a wall-clock cadence, on POST /checkpoint,
// and once more after a graceful drain, and Config.Restore resumes a new
// server from one — the pending set re-enters with original releases and
// the cumulative counters continue from the checkpointed baselines, so
// accounting and response quantiles are continuous across a kill -9.
// POST /reload swaps the scheduling policy and admission settings
// between rounds without dropping the pending set.
//
// The split of responsibilities: cmd/flowschedd owns flags, listening
// sockets, and signals; this package owns everything between an
// http.Handler and the runtime — ingest validation and gating, the
// drain protocol, and metrics encoding — so tests drive the full
// service through httptest without a process or a port.
package daemon

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"flowsched/internal/chkpt"
	"flowsched/internal/obs"
	"flowsched/internal/pilot"
	"flowsched/internal/slo"
	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

// DefaultBuffer is the ingest queue depth when Config.Buffer is zero;
// DefaultSLOObjective the good fraction both SLO targets default to.
const (
	DefaultBuffer       = 4096
	DefaultSLOObjective = 0.999
)

// Config assembles a Server. Switch, Policy, Shards, MaxPending, Admit,
// Deadline, VerifyEvery, and ResponseBound pass through to the runtime's
// stream.Config (and are validated there); Buffer sets the ingest queue
// depth between the HTTP handlers and the round loop; the rest tunes the
// observability layer.
type Config struct {
	Switch      switchnet.Switch
	Policy      stream.Policy
	Shards      int
	MaxPending  int
	Admit       stream.AdmitMode
	Deadline    int
	VerifyEvery int
	Buffer      int

	// TraceRounds sizes the flight recorder ring behind GET /trace and
	// the phase histograms (<= 0 selects obs.DefaultRounds).
	TraceRounds int
	// ResponseBound, when > 0, defines the response-time objective in
	// rounds: completions slower than it count against the
	// "response_within_bound" SLO target. Zero disables that target
	// (the delivery target always runs).
	ResponseBound int
	// SLOObjective is the good-event fraction both targets aim for,
	// in (0, 1); <= 0 selects DefaultSLOObjective.
	SLOObjective float64
	// SLOSampleEvery, SLOFastWindow, SLOSlowWindow tune the burn-rate
	// engine's sampler and windows (zero selects the slo package
	// defaults).
	SLOSampleEvery time.Duration
	SLOFastWindow  time.Duration
	SLOSlowWindow  time.Duration
	// PilotEvery > 0 enables the optimality pilot at that evaluation
	// cadence; PilotWindow sets its completion window (<= 0 selects the
	// pilot package default).
	PilotEvery  time.Duration
	PilotWindow int

	// CheckpointPath, when non-empty, enables durable checkpoints: the
	// server writes a chkpt file there atomically on POST /checkpoint,
	// every CheckpointEvery (when > 0), and once more after a graceful
	// drain.
	CheckpointPath string
	// CheckpointEvery is the periodic checkpoint cadence; it requires
	// CheckpointPath. Zero disables the periodic writer (explicit and
	// drain checkpoints still work).
	CheckpointEvery time.Duration
	// Restore, when non-nil, resumes the runtime from a loaded (and
	// already CRC-verified) checkpoint instead of starting empty: its
	// switch shape must match Switch, its pending flows re-enter with
	// their original releases ahead of new ingest, and the counters
	// continue from the checkpointed baselines. The scheduling fields
	// (Policy, MaxPending, Admit, Deadline) are NOT adopted from the
	// checkpoint — the caller decides whether to keep or override them.
	Restore *chkpt.Checkpoint
}

// Server couples one runtime, its live ingest source, and the HTTP
// surface over both. Lifecycle: New, Start, serve Handler, then Drain
// (graceful) or Stop (hard) — each returns the final Summary.
type Server struct {
	sw  switchnet.Switch
	src *workload.ChanSource
	rt  *stream.Runtime
	mux *http.ServeMux

	// Observability layer: the flight recorder behind /trace and the
	// phase histograms, the burn-rate engine behind /slo and healthz
	// degradation, and (optionally) the optimality pilot behind /pilot.
	rec         *obs.FlightRecorder
	slo         *slo.Engine
	pilot       *pilot.Pilot
	sampleEvery time.Duration

	// mu guards the draining flag and its handshake with the ingest
	// WaitGroup: a handler only joins the group while not draining, so
	// after Drain flips the flag, ingest.Wait covers every Push that will
	// ever happen.
	mu       sync.Mutex
	draining bool
	ingest   sync.WaitGroup

	startOnce sync.Once
	drainOnce sync.Once
	runDone   chan struct{}
	// sampleDone and pilotDone close when the sampler and pilot
	// goroutines have taken their final observation after the round loop
	// ended; Wait joins them so post-drain scrapes are settled.
	sampleDone chan struct{}
	pilotDone  chan struct{}
	sum        *stream.Summary
	runErr     error

	// ckptMu serializes checkpoint writes and reloads: a checkpoint
	// records the live scheduling configuration (schedCfg) alongside the
	// runtime state, and a reload swaps that configuration, so the two
	// must not interleave. ckptBuf is the reused flow-capture scratch.
	ckptMu    sync.Mutex
	ckptBuf   []switchnet.Flow
	schedCfg  stream.Config
	ckptPath  string
	ckptEvery time.Duration
	ckptDone  chan struct{}
	// Checkpoint health counters behind /metrics (guarded by ckptMu).
	ckptWrites    int64
	ckptErrors    int64
	ckptLastRound int64
	// finalCkptErr records a failed post-drain checkpoint write; set
	// inside drainOnce, read only after it (Drain surfaces it when the
	// run itself succeeded).
	finalCkptErr error
	// resumeTarget is the checkpointed Admitted counter when this server
	// was built from Config.Restore: the restored runtime's admission
	// counter starts Pending short of it and climbs back as the prefix
	// re-admits, so Admitted < resumeTarget means "restoring".
	resumeTarget int64
}

// New builds a Server; the runtime configuration is validated eagerly.
func New(cfg Config) (*Server, error) {
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.SLOObjective <= 0 {
		cfg.SLOObjective = DefaultSLOObjective
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("daemon: CheckpointEvery %v set without a CheckpointPath", cfg.CheckpointEvery)
	}
	if cfg.Restore != nil {
		if err := cfg.Restore.Validate(); err != nil {
			return nil, fmt.Errorf("daemon: restore: %w", err)
		}
		if err := cfg.Restore.Compatible(cfg.Switch); err != nil {
			return nil, fmt.Errorf("daemon: restore: %w", err)
		}
	}
	rec := obs.NewFlightRecorder(cfg.TraceRounds)
	var pi *pilot.Pilot
	var onSchedule func(seq int64, f switchnet.Flow, round int)
	if cfg.PilotEvery > 0 {
		var err error
		pi, err = pilot.New(cfg.Switch, pilot.Config{
			Window: cfg.PilotWindow,
			Every:  cfg.PilotEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("daemon: %w", err)
		}
		onSchedule = pi.OnSchedule
	}
	src := workload.NewChanSource(cfg.Buffer)
	scfg := stream.Config{
		Switch:        cfg.Switch,
		Policy:        cfg.Policy,
		Shards:        cfg.Shards,
		MaxPending:    cfg.MaxPending,
		Admit:         cfg.Admit,
		Deadline:      cfg.Deadline,
		VerifyEvery:   cfg.VerifyEvery,
		Recorder:      rec,
		ResponseBound: cfg.ResponseBound,
		OnSchedule:    onSchedule,
	}
	// The runtime's source: on a restore, the checkpointed pending set
	// (plus its lookahead flow, if any) replays ahead of the live feed so
	// every checkpointed flow re-enters — with its original release —
	// before anything newly ingested.
	var rtSrc stream.Source = src
	if cfg.Restore != nil {
		rtSrc = workload.NewCheckpointSource(cfg.Restore.Flows, src)
		scfg.Resume = cfg.Restore.Resume()
	}
	rt, err := stream.New(rtSrc, scfg)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	if pi != nil {
		pi.Bind(rt)
	}
	// The delivery target judges shedding (drops and expiries against
	// admissions); the response target judges completions against the
	// configured bound and only exists when a bound is set.
	targets := []slo.Target{{
		Name:      "delivery",
		Objective: cfg.SLOObjective,
		SLI: func(sum stream.Summary) (int64, int64) {
			return sum.Admitted - sum.Dropped - sum.Expired, sum.Admitted
		},
	}}
	if cfg.ResponseBound > 0 {
		targets = append(targets, slo.Target{
			Name:      "response_within_bound",
			Objective: cfg.SLOObjective,
			SLI: func(sum stream.Summary) (int64, int64) {
				return sum.Completed - sum.SlowResponses, sum.Completed
			},
		})
	}
	sloEngine, err := slo.New(slo.Config{
		Targets:     targets,
		SampleEvery: cfg.SLOSampleEvery,
		FastWindow:  cfg.SLOFastWindow,
		SlowWindow:  cfg.SLOSlowWindow,
	})
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	sampleEvery := cfg.SLOSampleEvery
	if sampleEvery <= 0 {
		sampleEvery = slo.DefaultSampleEvery
	}
	s := &Server{
		sw:          cfg.Switch,
		src:         src,
		rt:          rt,
		mux:         http.NewServeMux(),
		rec:         rec,
		slo:         sloEngine,
		pilot:       pi,
		sampleEvery: sampleEvery,
		runDone:     make(chan struct{}),
		sampleDone:  make(chan struct{}),
		pilotDone:   make(chan struct{}),
		schedCfg:    scfg,
		ckptPath:    cfg.CheckpointPath,
		ckptEvery:   cfg.CheckpointEvery,
		ckptDone:    make(chan struct{}),
	}
	if cfg.Restore != nil {
		s.resumeTarget = cfg.Restore.Counters.Admitted
	}
	s.mux.HandleFunc("POST /flows", s.handleFlows)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /trace", s.handleTrace)
	s.mux.HandleFunc("GET /slo", s.handleSLO)
	s.mux.HandleFunc("GET /pilot", s.handlePilot)
	s.mux.HandleFunc("POST /drain", s.handleDrain)
	s.mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /reload", s.handleReload)
	return s, nil
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the runtime's round loop, the SLO sampler, and (when
// enabled) the optimality pilot, each on its own goroutine. Idempotent.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		go func() {
			s.sum, s.runErr = s.rt.Run()
			close(s.runDone)
		}()
		go s.sampleLoop()
		if s.ckptPath != "" && s.ckptEvery > 0 {
			go s.checkpointLoop()
		} else {
			close(s.ckptDone)
		}
		if s.pilot != nil {
			go func() {
				ctx, cancel := context.WithCancel(context.Background())
				go func() { <-s.runDone; cancel() }()
				s.pilot.Run(ctx)
				close(s.pilotDone)
			}()
		} else {
			close(s.pilotDone)
		}
	})
}

// sampleLoop feeds the burn-rate engine one cumulative sample per tick,
// plus a final sample once the round loop ends so post-drain state is
// settled.
func (s *Server) sampleLoop() {
	defer close(s.sampleDone)
	t := time.NewTicker(s.sampleEvery)
	defer t.Stop()
	for {
		select {
		case <-s.runDone:
			s.slo.Observe(time.Now(), s.rt.Snapshot())
			return
		case <-t.C:
			s.slo.Observe(time.Now(), s.rt.Snapshot())
		}
	}
}

// Snapshot returns the runtime's current metrics (lock-free with respect
// to the round loop).
func (s *Server) Snapshot() stream.Summary { return s.rt.Snapshot() }

// Done is closed once the round loop has returned (after Drain or Stop).
func (s *Server) Done() <-chan struct{} { return s.runDone }

// Wait blocks until the round loop has returned — and the sampler and
// pilot have taken their final observations — then reports the final
// summary. (Before Start, it blocks until the server is started and
// stopped.)
func (s *Server) Wait() (*stream.Summary, error) {
	<-s.runDone
	<-s.sampleDone
	<-s.pilotDone
	<-s.ckptDone
	return s.sum, s.runErr
}
