package daemon_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flowsched/internal/chkpt"
	"flowsched/internal/daemon"
	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
)

// postJSON POSTs a body to path and returns status + response body.
func postJSON(t *testing.T, url, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// getHealthz returns the healthz status code and status string.
func getHealthz(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body.Status
}

// TestDaemonCheckpointOnDemandAndDrain: POST /checkpoint persists a
// loadable, compatible checkpoint; the graceful drain persists a final
// one with nothing pending and counters matching the drain summary.
func TestDaemonCheckpointOnDemandAndDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "daemon.ckpt")
	srv, ts := startServer(t, daemon.Config{CheckpointPath: path})

	flows := make([]switchnet.Flow, 40)
	for i := range flows {
		flows[i] = switchnet.Flow{In: i % 8, Out: (i + 5) % 8, Demand: 1}
	}
	if code, body := postFlows(t, ts.URL, flows); code != http.StatusAccepted {
		t.Fatalf("ingest: status %d, body %q", code, body)
	}

	code, body := postJSON(t, ts.URL, "/checkpoint", "")
	if code != http.StatusOK {
		t.Fatalf("POST /checkpoint: status %d, body %q", code, body)
	}
	var ckResp struct {
		Path    string `json:"path"`
		Round   int    `json:"round"`
		Pending int    `json:"pending"`
	}
	if err := json.Unmarshal([]byte(body), &ckResp); err != nil {
		t.Fatalf("checkpoint response %q: %v", body, err)
	}
	if ckResp.Path != path {
		t.Fatalf("checkpoint went to %q, want %q", ckResp.Path, path)
	}
	ck, err := chkpt.Load(path)
	if err != nil {
		t.Fatalf("on-demand checkpoint does not load: %v", err)
	}
	if err := ck.Compatible(switchnet.UnitSwitch(8)); err != nil {
		t.Fatal(err)
	}
	if ck.Round != ckResp.Round || ck.Pending != ckResp.Pending {
		t.Fatalf("file (round %d, pending %d) disagrees with response %+v", ck.Round, ck.Pending, ckResp)
	}

	// The checkpoint health counters ride /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), "flowsched_checkpoint_writes_total 1") {
		t.Fatalf("metrics missing checkpoint write counter:\n%s", mb)
	}

	sum, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	final, err := chkpt.Load(path)
	if err != nil {
		t.Fatalf("final drain checkpoint does not load: %v", err)
	}
	if final.Pending != 0 || len(final.Flows) != 0 {
		t.Fatalf("drained checkpoint still carries flows: pending %d, %d flows", final.Pending, len(final.Flows))
	}
	if final.Counters.Admitted != sum.Admitted || final.Counters.Completed != sum.Completed {
		t.Fatalf("final checkpoint counters %+v disagree with drain summary %+v", final.Counters, sum)
	}
	if final.Counters.Admitted != 40 {
		t.Fatalf("final checkpoint admitted %d, want 40", final.Counters.Admitted)
	}
}

// TestDaemonCheckpointDisabled: a server without a checkpoint path
// answers 409, not 500, and writes nothing.
func TestDaemonCheckpointDisabled(t *testing.T) {
	_, ts := startServer(t, daemon.Config{})
	if code, body := postJSON(t, ts.URL, "/checkpoint", ""); code != http.StatusConflict {
		t.Fatalf("status %d, body %q (want 409)", code, body)
	}
}

// restoreCheckpoint is a hand-built balanced checkpoint: 10 admitted, 7
// completed, 3 pending on distinct VOQs with original releases 0..2,
// consistent at round 100.
func restoreCheckpoint() *chkpt.Checkpoint {
	sw := switchnet.UnitSwitch(8)
	return &chkpt.Checkpoint{
		Round:          100,
		Pending:        3,
		SourceConsumed: 10,
		Policy:         "RoundRobin",
		Shards:         1,
		MaxPending:     stream.DefaultMaxPending,
		Admit:          "lossless",
		InCaps:         append([]int(nil), sw.InCaps...),
		OutCaps:        append([]int(nil), sw.OutCaps...),
		Counters: chkpt.Counters{
			Admitted:      10,
			Completed:     7,
			TotalResponse: 30,
			MaxResponse:   9,
			Rounds:        100,
			PeakPending:   5,
		},
		Flows: []switchnet.Flow{
			{In: 0, Out: 1, Demand: 1, Release: 0},
			{In: 1, Out: 2, Demand: 1, Release: 1},
			{In: 2, Out: 3, Demand: 1, Release: 2},
		},
	}
}

// TestDaemonRestoreContinuity: a server built from a checkpoint reports
// "restoring" (503) until the pending prefix is resident, refuses
// checkpoints and reloads meanwhile, then finishes the restored backlog
// with response times charged from the original releases and counters
// continuous with the checkpoint.
func TestDaemonRestoreContinuity(t *testing.T) {
	ck := restoreCheckpoint()
	path := filepath.Join(t.TempDir(), "restored.ckpt")
	srv, err := daemon.New(daemon.Config{
		Switch:         switchnet.UnitSwitch(8),
		Policy:         stream.ByName("RoundRobin"),
		Restore:        ck,
		CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Not started yet: the prefix cannot have replayed, so the restoring
	// state is observable deterministically.
	if code, status := getHealthz(t, ts.URL); code != http.StatusServiceUnavailable || status != "restoring" {
		t.Fatalf("pre-start healthz: %d %q, want 503 restoring", code, status)
	}
	if code, _ := postJSON(t, ts.URL, "/checkpoint", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("checkpoint during restore: status %d, want 503", code)
	}
	if code, _ := postJSON(t, ts.URL, "/reload", `{"policy":"OldestFirst"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("reload during restore: status %d, want 503", code)
	}

	srv.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, status := getHealthz(t, ts.URL); code == http.StatusOK && status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restore never finished")
		}
		time.Sleep(time.Millisecond)
	}

	flows := make([]switchnet.Flow, 5)
	for i := range flows {
		flows[i] = switchnet.Flow{In: (3 + i) % 8, Out: (4 + i) % 8, Demand: 1}
	}
	if code, body := postFlows(t, ts.URL, flows); code != http.StatusAccepted {
		t.Fatalf("post-restore ingest: status %d, body %q", code, body)
	}
	sum, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Admitted != 15 || sum.Completed != 15 || sum.Pending != 0 {
		t.Fatalf("restored accounting: %+v (want 15 admitted = 10 checkpointed + 5 new, all completed)", sum)
	}
	// The three restored flows were released at rounds 0..2 but complete
	// at or after the resume round, so their responses each exceed ~100
	// rounds: original releases survived the restore.
	if sum.MaxResponse < 99 {
		t.Fatalf("MaxResponse %d: restored flows lost their original releases", sum.MaxResponse)
	}
	if sum.TotalResponse < 30+297 {
		t.Fatalf("TotalResponse %d is not continuous with the checkpoint baseline", sum.TotalResponse)
	}
	if sum.Rounds < ck.Counters.Rounds {
		t.Fatalf("round counter went backwards: %d < %d", sum.Rounds, ck.Counters.Rounds)
	}

	// The post-drain checkpoint continues the lineage.
	final, err := chkpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Counters.Admitted != 15 || final.Pending != 0 {
		t.Fatalf("final checkpoint after restored drain: %+v", final)
	}
	if final.Round < ck.Round {
		t.Fatalf("final checkpoint round %d precedes the restore round %d", final.Round, ck.Round)
	}
}

// TestDaemonRestoreRejectsMismatchedSwitch: restoring onto a different
// switch shape fails at construction, before anything runs.
func TestDaemonRestoreRejectsMismatchedSwitch(t *testing.T) {
	ck := restoreCheckpoint()
	_, err := daemon.New(daemon.Config{
		Switch:  switchnet.UnitSwitch(4), // checkpoint is 8x8
		Policy:  stream.ByName("RoundRobin"),
		Restore: ck,
	})
	if err == nil || !strings.Contains(err.Error(), "restore") {
		t.Fatalf("mismatched restore accepted: %v", err)
	}
}

// TestDaemonReloadEndpoint: a live policy/admission swap succeeds and is
// recorded in later checkpoints; invalid swaps change nothing; a
// draining daemon freezes its configuration.
func TestDaemonReloadEndpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reload.ckpt")
	srv, ts := startServer(t, daemon.Config{Shards: 2, CheckpointPath: path})

	for _, bad := range []struct{ name, body string }{
		{"unknown policy", `{"policy":"NoSuchPolicy"}`},
		{"unknown admit", `{"admit":"yolo"}`},
		{"negative maxpending", `{"max_pending":-5}`},
		{"deadline without mode", `{"deadline":16}`},
	} {
		if code, body := postJSON(t, ts.URL, "/reload", bad.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %q (want 400)", bad.name, code, body)
		}
	}

	code, body := postJSON(t, ts.URL, "/reload", `{"policy":"OldestFirst","admit":"deadline","deadline":64,"max_pending":128}`)
	if code != http.StatusOK {
		t.Fatalf("reload: status %d, body %q", code, body)
	}
	var re struct {
		Policy     string `json:"policy"`
		MaxPending int    `json:"max_pending"`
		Admit      string `json:"admit"`
		Deadline   int    `json:"deadline"`
	}
	if err := json.Unmarshal([]byte(body), &re); err != nil {
		t.Fatal(err)
	}
	if re.Policy != "OldestFirst" || re.MaxPending != 128 || re.Admit != "deadline" || re.Deadline != 64 {
		t.Fatalf("reload echo: %+v", re)
	}

	// Switching back to lossless clears the stale deadline implicitly.
	if code, body := postJSON(t, ts.URL, "/reload", `{"admit":"lossless"}`); code != http.StatusOK {
		t.Fatalf("admit-only reload: status %d, body %q", code, body)
	}

	// The daemon still schedules under the new policy, and a checkpoint
	// taken now records it.
	flows := make([]switchnet.Flow, 20)
	for i := range flows {
		flows[i] = switchnet.Flow{In: i % 8, Out: (i + 1) % 8, Demand: 1}
	}
	if code, body := postFlows(t, ts.URL, flows); code != http.StatusAccepted {
		t.Fatalf("post-reload ingest: status %d, body %q", code, body)
	}
	if code, body := postJSON(t, ts.URL, "/checkpoint", ""); code != http.StatusOK {
		t.Fatalf("post-reload checkpoint: status %d, body %q", code, body)
	}
	ck, err := chkpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Policy != "OldestFirst" || ck.MaxPending != 128 || ck.Admit != "lossless" || ck.Deadline != 0 {
		t.Fatalf("checkpoint records stale config: policy %q maxpending %d admit %q deadline %d",
			ck.Policy, ck.MaxPending, ck.Admit, ck.Deadline)
	}

	sum, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Admitted != 20 || sum.Admitted != sum.Completed+sum.Dropped+sum.Expired {
		t.Fatalf("post-reload accounting: %+v", sum)
	}
	if code, body := postJSON(t, ts.URL, "/reload", `{"policy":"RoundRobin"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("reload while draining: status %d, body %q (want 503)", code, body)
	}
}

// TestDaemonPeriodicCheckpoint: the wall-clock writer persists without
// any explicit request.
func TestDaemonPeriodicCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "periodic.ckpt")
	srv, ts := startServer(t, daemon.Config{
		CheckpointPath:  path,
		CheckpointEvery: 5 * time.Millisecond,
	})
	flows := make([]switchnet.Flow, 16)
	for i := range flows {
		flows[i] = switchnet.Flow{In: i % 8, Out: (i + 2) % 8, Demand: 1}
	}
	if code, body := postFlows(t, ts.URL, flows); code != http.StatusAccepted {
		t.Fatalf("ingest: status %d, body %q", code, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ck, err := chkpt.Load(path); err == nil && ck.Counters.Admitted == 16 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never covered the ingested flows")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonCheckpointEveryRequiresPath pins the config validation.
func TestDaemonCheckpointEveryRequiresPath(t *testing.T) {
	_, err := daemon.New(daemon.Config{
		Switch:          switchnet.UnitSwitch(4),
		Policy:          stream.ByName("RoundRobin"),
		CheckpointEvery: time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "CheckpointPath") {
		t.Fatalf("cadence without a path accepted: %v", err)
	}
}
