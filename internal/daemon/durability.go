package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"flowsched/internal/chkpt"
	"flowsched/internal/stream"
)

// This file is the daemon's durability surface: checkpoint capture and
// persistence (periodic, on demand, and post-drain) and the live-reload
// endpoint. Both ride the runtime's quiescent-point control mailbox, so
// neither stalls the round loop.

// ErrRestoring reports an operation refused because a restore's
// re-admission prefix is still in flight; callers should retry shortly.
var ErrRestoring = errors.New("daemon: restore in progress")

// ErrNoCheckpointPath reports a checkpoint request against a server
// started without a checkpoint path.
var ErrNoCheckpointPath = errors.New("daemon: no checkpoint path configured")

// checkpointTimeout bounds how long a periodic or drain-time checkpoint
// waits for the runtime's quiescent point; the capture is serviced
// between rounds, so anything close to this means the runtime is wedged.
const checkpointTimeout = 10 * time.Second

// restoring reports whether a restore's re-admission prefix is still in
// flight. The restored runtime's admission counter starts Pending short
// of the checkpointed value and counts back up as the prefix re-enters,
// so Admitted < resumeTarget is exactly "not every checkpointed flow is
// resident again". Lock-free: resumeTarget is immutable after New and
// Snapshot reads atomics.
func (s *Server) restoring() bool {
	return s.resumeTarget > 0 && s.rt.Snapshot().Admitted < s.resumeTarget
}

// CheckpointNow captures a quiescent checkpoint and writes it atomically
// to the configured path, returning the image that was persisted. It
// refuses with ErrRestoring while a restore prefix is mid-replay — a
// checkpoint taken then would not cover the flows still waiting in the
// old checkpoint's unreplayed prefix, so persisting it could lose them.
// Serialized with reloads: the file records the scheduling configuration
// that was live when the state was captured.
func (s *Server) CheckpointNow(ctx context.Context) (*chkpt.Checkpoint, error) {
	if s.ckptPath == "" {
		return nil, ErrNoCheckpointPath
	}
	if s.restoring() {
		return nil, ErrRestoring
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	st, err := s.rt.CheckpointState(ctx, s.ckptBuf)
	if err != nil {
		return nil, fmt.Errorf("daemon: checkpoint capture: %w", err)
	}
	s.ckptBuf = st.Flows
	ck := chkpt.FromState(&st, s.schedCfg)
	if err := chkpt.Save(s.ckptPath, ck); err != nil {
		s.ckptErrors++
		return nil, fmt.Errorf("daemon: %w", err)
	}
	s.ckptWrites++
	s.ckptLastRound = int64(ck.Round)
	return ck, nil
}

// checkpointLoop writes a checkpoint every ckptEvery until the round
// loop ends. Ticks that land mid-restore are skipped (the previous
// checkpoint stays authoritative); write failures are counted and
// exposed on /metrics rather than killing the daemon — the next tick
// retries.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	t := time.NewTicker(s.ckptEvery)
	defer t.Stop()
	for {
		select {
		case <-s.runDone:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), checkpointTimeout)
			_, err := s.CheckpointNow(ctx)
			cancel()
			if err != nil && !errors.Is(err, ErrRestoring) {
				// Counted under ckptMu by CheckpointNow for save failures;
				// capture failures (context expiry) are counted here.
				s.ckptMu.Lock()
				s.ckptErrors++
				s.ckptMu.Unlock()
			}
		}
	}
}

// checkpointResponse is the POST /checkpoint body: where the image went
// and what it covers.
type checkpointResponse struct {
	Path    string `json:"path"`
	Round   int    `json:"round"`
	Pending int    `json:"pending"`
}

// handleCheckpoint writes a checkpoint on demand. 503 with Retry-After
// while a restore is replaying (the previous checkpoint must stay
// authoritative until every flow it covers is resident again).
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	ck, err := s.CheckpointNow(r.Context())
	switch {
	case errors.Is(err, ErrNoCheckpointPath):
		http.Error(w, "checkpointing disabled: start the daemon with a checkpoint path", http.StatusConflict)
		return
	case errors.Is(err, ErrRestoring):
		w.Header().Set("Retry-After", "1")
		http.Error(w, "restoring: retry once the restored pending set is resident", http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, fmt.Sprintf("checkpoint failed: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(checkpointResponse{Path: s.ckptPath, Round: ck.Round, Pending: ck.Pending})
}

// reloadRequest is the POST /reload body. Every field is optional:
// omitted fields keep their current value. Switching Admit away from
// "deadline" resets the deadline to zero unless one is given explicitly.
type reloadRequest struct {
	Policy     string `json:"policy,omitempty"`
	MaxPending int    `json:"max_pending,omitempty"`
	Admit      string `json:"admit,omitempty"`
	Deadline   *int   `json:"deadline,omitempty"`
}

// reloadResponse echoes the configuration now live.
type reloadResponse struct {
	Policy     string `json:"policy"`
	MaxPending int    `json:"max_pending"`
	Admit      string `json:"admit"`
	Deadline   int    `json:"deadline"`
}

// handleReload swaps the scheduling policy and admission settings at the
// runtime's next quiescent point without dropping the pending set.
// Invalid requests change nothing and report 400; a reload during a
// restore replay or a drain answers 503 with Retry-After (the former
// clears in milliseconds, the latter never — but a draining daemon
// already advertises itself via /healthz).
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining: configuration is frozen", http.StatusServiceUnavailable)
		return
	}
	if s.restoring() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "restoring: retry once the restored pending set is resident", http.StatusServiceUnavailable)
		return
	}

	// Serialized with checkpoints so every persisted checkpoint records
	// the configuration that was actually live at its capture point.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	rc := stream.ReloadConfig{
		Policy:     s.schedCfg.Policy,
		MaxPending: s.schedCfg.MaxPending,
		Admit:      s.schedCfg.Admit,
		Deadline:   s.schedCfg.Deadline,
	}
	if req.Policy != "" {
		pol := stream.ByName(req.Policy)
		if pol == nil {
			http.Error(w, fmt.Sprintf("unknown policy %q (native streaming policies: %v)", req.Policy, stream.Names()), http.StatusBadRequest)
			return
		}
		rc.Policy = pol
	}
	if req.MaxPending != 0 {
		rc.MaxPending = req.MaxPending
	}
	if req.Admit != "" {
		mode, err := stream.ParseAdmitMode(req.Admit)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rc.Admit = mode
		if mode != stream.AdmitDeadline {
			rc.Deadline = 0
		}
	}
	if req.Deadline != nil {
		rc.Deadline = *req.Deadline
	}
	if err := s.reloadLocked(r.Context(), rc); err != nil {
		http.Error(w, fmt.Sprintf("reload rejected: %v", err), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reloadResponse{
		Policy:     rc.Policy.Name(),
		MaxPending: rc.MaxPending,
		Admit:      rc.Admit.String(),
		Deadline:   rc.Deadline,
	})
}

// Reload swaps the scheduling policy and admission settings at the
// runtime's next quiescent point without dropping the pending set; the
// new configuration is what later checkpoints record. It refuses with
// ErrRestoring while a restore prefix is mid-replay. This is the same
// path POST /reload takes; cmd/flowschedd drives it on SIGHUP.
func (s *Server) Reload(ctx context.Context, rc stream.ReloadConfig) error {
	if s.restoring() {
		return ErrRestoring
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.reloadLocked(ctx, rc)
}

// reloadLocked applies rc and records it in schedCfg; ckptMu held.
func (s *Server) reloadLocked(ctx context.Context, rc stream.ReloadConfig) error {
	if err := s.rt.Reload(ctx, rc); err != nil {
		return err
	}
	s.schedCfg.Policy = rc.Policy
	s.schedCfg.MaxPending = rc.MaxPending
	s.schedCfg.Admit = rc.Admit
	s.schedCfg.Deadline = rc.Deadline
	return nil
}

// writeCkptMetrics appends the checkpoint gauges to the Prometheus
// exposition; only emitted when checkpointing is configured.
func (s *Server) writeCkptMetrics(w io.Writer) {
	s.ckptMu.Lock()
	writes, errs, last := s.ckptWrites, s.ckptErrors, s.ckptLastRound
	s.ckptMu.Unlock()
	fmt.Fprintf(w, "# HELP flowsched_checkpoint_writes_total Checkpoint files written successfully.\n")
	fmt.Fprintf(w, "# TYPE flowsched_checkpoint_writes_total counter\n")
	fmt.Fprintf(w, "flowsched_checkpoint_writes_total %d\n", writes)
	fmt.Fprintf(w, "# HELP flowsched_checkpoint_errors_total Checkpoint captures or writes that failed.\n")
	fmt.Fprintf(w, "# TYPE flowsched_checkpoint_errors_total counter\n")
	fmt.Fprintf(w, "flowsched_checkpoint_errors_total %d\n", errs)
	fmt.Fprintf(w, "# HELP flowsched_checkpoint_last_round Round the most recent checkpoint was consistent at.\n")
	fmt.Fprintf(w, "# TYPE flowsched_checkpoint_last_round gauge\n")
	fmt.Fprintf(w, "flowsched_checkpoint_last_round %d\n", last)
}
