package daemon

import (
	"fmt"
	"io"

	"flowsched/internal/obs"
	"flowsched/internal/pilot"
	"flowsched/internal/slo"
	"flowsched/internal/stream"
)

// writeMetrics encodes a Summary in the Prometheus text exposition
// format (version 0.0.4). Every value comes from the runtime's lock-free
// Snapshot path — atomics plus epoch-window sketches — so a scrape never
// stalls the round loop. Response time is modelled as a summary metric:
// cumulative _sum/_count over every completed flow, quantiles over the
// sliding metrics window.
func writeMetrics(w io.Writer, s stream.Summary) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("flowsched_rounds_total", "Scheduling rounds processed (idle gaps are jumped, not counted).", s.Rounds)
	gauge("flowsched_round", "Current scheduler round (virtual time).", float64(s.Round))
	gauge("flowsched_shards", "Runtime shards the input ports are partitioned across.", float64(s.Shards))
	counter("flowsched_flows_admitted_total", "Flows consumed from the ingest feed, including shed ones.", s.Admitted)
	counter("flowsched_flows_completed_total", "Flows scheduled to completion.", s.Completed)
	counter("flowsched_flows_dropped_total", "Arrivals shed on a full pending set (admit mode drop).", s.Dropped)
	counter("flowsched_flows_expired_total", "Pending flows expired past the deadline (admit mode deadline).", s.Expired)
	counter("flowsched_flows_backpressured_total", "Flows admitted after their release round because the pending set was full.", s.Backpressured)
	gauge("flowsched_pending_flows", "Flows currently resident in the pending set.", float64(s.Pending))
	gauge("flowsched_pending_peak", "High-water mark of the pending set.", float64(s.PeakPending))
	counter("flowsched_verify_windows_total", "Spot-check windows the verify oracle accepted.", s.WindowsVerified)
	fmt.Fprintf(w, "# HELP flowsched_response_rounds Response time of completed flows in rounds (quantiles over the sliding window, sum/count cumulative).\n")
	fmt.Fprintf(w, "# TYPE flowsched_response_rounds summary\n")
	fmt.Fprintf(w, "flowsched_response_rounds{quantile=\"0.5\"} %g\n", s.P50)
	fmt.Fprintf(w, "flowsched_response_rounds{quantile=\"0.9\"} %g\n", s.P90)
	fmt.Fprintf(w, "flowsched_response_rounds{quantile=\"0.99\"} %g\n", s.P99)
	fmt.Fprintf(w, "flowsched_response_rounds_sum %d\n", s.TotalResponse)
	fmt.Fprintf(w, "flowsched_response_rounds_count %d\n", s.Completed)
	gauge("flowsched_response_rounds_max", "Maximum response time over all completed flows.", float64(s.MaxResponse))
	counter("flowsched_response_slow_total", "Completions whose response time exceeded the configured response bound.", s.SlowResponses)
}

// phaseBuckets are the upper bounds (seconds) of the per-phase timing
// histogram: powers of 4 from 1µs to ~1s, wide enough to separate a
// healthy microsecond round from a millisecond stall in few buckets.
var phaseBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6,
	1024e-6, 4096e-6, 16384e-6, 65536e-6, 262144e-6, 1.048576,
}

// writePhaseMetrics renders flowsched_phase_seconds, a histogram family
// over the per-round phase timings, recomputed from the flight
// recorder's ring at scrape time. The window is therefore the ring's
// capacity, not the process lifetime: the series is a sliding-window
// histogram (counts can go down as rounds age out), which trades
// counter semantics for zero new hot-path instrumentation — the
// recorder's records are the only source.
func writePhaseMetrics(w io.Writer, rec *obs.FlightRecorder) {
	recs := rec.Last(nil, rec.Cap())
	fmt.Fprintf(w, "# HELP flowsched_phase_seconds Per-round phase time over the flight recorder window (sliding, not cumulative).\n")
	fmt.Fprintf(w, "# TYPE flowsched_phase_seconds histogram\n")
	phases := []struct {
		name string
		get  func(r obs.RoundRecord) int64
	}{
		{"propose", func(r obs.RoundRecord) int64 { return r.ProposeNS }},
		{"reconcile", func(r obs.RoundRecord) int64 { return r.ReconcileNS }},
		{"apply", func(r obs.RoundRecord) int64 { return r.ApplyNS }},
		{"verify", func(r obs.RoundRecord) int64 { return r.VerifyNS }},
	}
	for _, ph := range phases {
		counts := make([]int64, len(phaseBuckets)+1)
		var sum float64
		for _, r := range recs {
			sec := float64(ph.get(r)) / 1e9
			sum += sec
			i := 0
			for i < len(phaseBuckets) && sec > phaseBuckets[i] {
				i++
			}
			counts[i]++
		}
		cum := int64(0)
		for i, le := range phaseBuckets {
			cum += counts[i]
			fmt.Fprintf(w, "flowsched_phase_seconds_bucket{phase=%q,le=%q} %d\n", ph.name, fmt.Sprintf("%g", le), cum)
		}
		cum += counts[len(phaseBuckets)]
		fmt.Fprintf(w, "flowsched_phase_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", ph.name, cum)
		fmt.Fprintf(w, "flowsched_phase_seconds_sum{phase=%q} %g\n", ph.name, sum)
		fmt.Fprintf(w, "flowsched_phase_seconds_count{phase=%q} %d\n", ph.name, cum)
	}
}

// writeSLOMetrics renders the burn-rate engine's state: per-target
// objective, windowed error ratios and burn rates, and the binary
// breach/warning conditions healthz keys off.
func writeSLOMetrics(w io.Writer, st slo.Status) {
	header := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	header("flowsched_slo_objective", "Configured good-event fraction per SLO target.", "gauge")
	for _, t := range st.Targets {
		fmt.Fprintf(w, "flowsched_slo_objective{target=%q} %g\n", t.Name, t.Objective)
	}
	header("flowsched_slo_events_total", "Cumulative events judged per SLO target.", "counter")
	for _, t := range st.Targets {
		fmt.Fprintf(w, "flowsched_slo_events_total{target=%q} %d\n", t.Name, t.Total)
	}
	header("flowsched_slo_errors_total", "Cumulative bad events per SLO target.", "counter")
	for _, t := range st.Targets {
		fmt.Fprintf(w, "flowsched_slo_errors_total{target=%q} %d\n", t.Name, t.Total-t.Good)
	}
	header("flowsched_slo_error_ratio", "Windowed bad-event ratio per SLO target.", "gauge")
	for _, t := range st.Targets {
		fmt.Fprintf(w, "flowsched_slo_error_ratio{target=%q,window=\"fast\"} %g\n", t.Name, t.FastErrorRate)
		fmt.Fprintf(w, "flowsched_slo_error_ratio{target=%q,window=\"slow\"} %g\n", t.Name, t.SlowErrorRate)
	}
	header("flowsched_slo_burn_rate", "Windowed error-budget burn rate per SLO target (1 = budget-neutral).", "gauge")
	for _, t := range st.Targets {
		fmt.Fprintf(w, "flowsched_slo_burn_rate{target=%q,window=\"fast\"} %g\n", t.Name, t.FastBurnRate)
		fmt.Fprintf(w, "flowsched_slo_burn_rate{target=%q,window=\"slow\"} %g\n", t.Name, t.SlowBurnRate)
	}
	header("flowsched_slo_breach", "1 while the fast-window burn rate breaches the paging threshold.", "gauge")
	for _, t := range st.Targets {
		fmt.Fprintf(w, "flowsched_slo_breach{target=%q} %d\n", t.Name, b2i(t.Breaching))
	}
	header("flowsched_slo_warning", "1 while the slow-window burn rate exceeds the warning threshold.", "gauge")
	for _, t := range st.Targets {
		fmt.Fprintf(w, "flowsched_slo_warning{target=%q} %d\n", t.Name, b2i(t.Warning))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// writePilotMetrics renders the optimality pilot's live estimates: the
// competitive ratios (achieved response over the recomputed paper lower
// bound, >= 1 whenever a window exists), the bounds themselves, and the
// pending-set backlog bound.
func writePilotMetrics(w io.Writer, st pilot.Status) {
	header := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	header("flowsched_pilot_competitive_ratio", "Achieved response over the recomputed lower bound for the completion window (>= 1; 0 = no data).", "gauge")
	fmt.Fprintf(w, "flowsched_pilot_competitive_ratio{objective=\"total\"} %g\n", st.TotalRatio)
	fmt.Fprintf(w, "flowsched_pilot_competitive_ratio{objective=\"max\"} %g\n", st.MaxRatio)
	header("flowsched_pilot_lower_bound_rounds", "Recomputed lower bounds for the completion window.", "gauge")
	fmt.Fprintf(w, "flowsched_pilot_lower_bound_rounds{objective=\"total\"} %d\n", st.TotalLowerBound)
	fmt.Fprintf(w, "flowsched_pilot_lower_bound_rounds{objective=\"max\"} %d\n", st.MaxLowerBound)
	header("flowsched_pilot_backlog_bound_rounds", "Lower bound on rounds any scheduler needs to clear the snapshotted pending set.", "gauge")
	fmt.Fprintf(w, "flowsched_pilot_backlog_bound_rounds %d\n", st.BacklogBoundRounds)
	header("flowsched_pilot_window_flows", "Completions in the pilot's evaluation window.", "gauge")
	fmt.Fprintf(w, "flowsched_pilot_window_flows %d\n", st.WindowFlows)
	header("flowsched_pilot_evaluations_total", "Pilot evaluations performed.", "counter")
	fmt.Fprintf(w, "flowsched_pilot_evaluations_total %d\n", st.Evaluations)
	header("flowsched_pilot_snapshot_errors_total", "Pending-set snapshots that timed out or were cancelled.", "counter")
	fmt.Fprintf(w, "flowsched_pilot_snapshot_errors_total %d\n", st.SnapshotErrors)
}
