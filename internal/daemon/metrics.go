package daemon

import (
	"fmt"
	"io"

	"flowsched/internal/stream"
)

// writeMetrics encodes a Summary in the Prometheus text exposition
// format (version 0.0.4). Every value comes from the runtime's lock-free
// Snapshot path — atomics plus epoch-window sketches — so a scrape never
// stalls the round loop. Response time is modelled as a summary metric:
// cumulative _sum/_count over every completed flow, quantiles over the
// sliding metrics window.
func writeMetrics(w io.Writer, s stream.Summary) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("flowsched_rounds_total", "Scheduling rounds processed (idle gaps are jumped, not counted).", s.Rounds)
	gauge("flowsched_round", "Current scheduler round (virtual time).", float64(s.Round))
	gauge("flowsched_shards", "Runtime shards the input ports are partitioned across.", float64(s.Shards))
	counter("flowsched_flows_admitted_total", "Flows consumed from the ingest feed, including shed ones.", s.Admitted)
	counter("flowsched_flows_completed_total", "Flows scheduled to completion.", s.Completed)
	counter("flowsched_flows_dropped_total", "Arrivals shed on a full pending set (admit mode drop).", s.Dropped)
	counter("flowsched_flows_expired_total", "Pending flows expired past the deadline (admit mode deadline).", s.Expired)
	counter("flowsched_flows_backpressured_total", "Flows admitted after their release round because the pending set was full.", s.Backpressured)
	gauge("flowsched_pending_flows", "Flows currently resident in the pending set.", float64(s.Pending))
	gauge("flowsched_pending_peak", "High-water mark of the pending set.", float64(s.PeakPending))
	counter("flowsched_verify_windows_total", "Spot-check windows the verify oracle accepted.", s.WindowsVerified)
	fmt.Fprintf(w, "# HELP flowsched_response_rounds Response time of completed flows in rounds (quantiles over the sliding window, sum/count cumulative).\n")
	fmt.Fprintf(w, "# TYPE flowsched_response_rounds summary\n")
	fmt.Fprintf(w, "flowsched_response_rounds{quantile=\"0.5\"} %g\n", s.P50)
	fmt.Fprintf(w, "flowsched_response_rounds{quantile=\"0.9\"} %g\n", s.P90)
	fmt.Fprintf(w, "flowsched_response_rounds{quantile=\"0.99\"} %g\n", s.P99)
	fmt.Fprintf(w, "flowsched_response_rounds_sum %d\n", s.TotalResponse)
	fmt.Fprintf(w, "flowsched_response_rounds_count %d\n", s.Completed)
	gauge("flowsched_response_rounds_max", "Maximum response time over all completed flows.", float64(s.MaxResponse))
}
