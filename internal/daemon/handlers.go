package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"flowsched/internal/switchnet"
)

// maxIngestBody bounds one POST /flows body (1 MiB ≈ 20k flows).
const maxIngestBody = 1 << 20

// flowsRequest is the POST /flows body. Release rounds are assigned by
// the scheduler (its clock is virtual rounds, which a client cannot
// observe), so any release a client sets is ignored.
type flowsRequest struct {
	Flows []switchnet.Flow `json:"flows"`
}

// flowsResponse acknowledges an accepted batch.
type flowsResponse struct {
	Accepted int `json:"accepted"`
}

// handleFlows ingests one batch. The whole batch is validated against
// the switch before anything is pushed: the runtime treats an
// inadmissible flow as a fatal stream error (it would abort the run), so
// garbage must be rejected at the door, atomically per batch.
func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	if !s.beginIngest() {
		http.Error(w, "draining: no new flows accepted", http.StatusServiceUnavailable)
		return
	}
	defer s.ingest.Done()

	var req flowsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Flows) == 0 {
		http.Error(w, `no flows in batch (want {"flows":[{"in":0,"out":1,"demand":1},...]})`, http.StatusBadRequest)
		return
	}
	for i, f := range req.Flows {
		f.Release = 0 // assigned at admission; validate what will run
		if err := s.sw.ValidateFlow(f); err != nil {
			http.Error(w, fmt.Sprintf("flow %d rejected: %v", i, err), http.StatusBadRequest)
			return
		}
	}
	for i, f := range req.Flows {
		if !s.src.Push(f) {
			// A concurrent Stop closed the feed mid-batch.
			http.Error(w, fmt.Sprintf("stopping: %d of %d flows accepted", i, len(req.Flows)),
				http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(flowsResponse{Accepted: len(req.Flows)})
}

// healthzResponse is the GET /healthz body.
type healthzResponse struct {
	Status string `json:"status"`
	// Breaching lists the SLO targets in fast-burn breach when the
	// status is degraded.
	Breaching []string `json:"breaching,omitempty"`
}

// handleHealthz reports liveness and routing advice. A draining daemon
// answers 503 so load balancers stop routing to it — it is deliberately
// leaving the pool, and every rejected POST /flows would otherwise count
// against the caller. A restoring daemon (a restore's re-admission
// prefix still replaying) also answers 503: it is about to be healthy,
// but routing to it before the checkpointed backlog is resident would
// interleave new work ahead of flows that are already owed responses.
// A daemon whose fast SLO burn rate breaches reports "degraded" with the
// breaching target names but stays 200: an overloaded scheduler still
// serves, and pulling degraded replicas from a pool under load would
// cascade the overload onto the survivors.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	resp := healthzResponse{Status: "ok"}
	code := http.StatusOK
	switch {
	case draining:
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	case s.restoring():
		resp.Status = "restoring"
		code = http.StatusServiceUnavailable
	default:
		if names := s.slo.Breaching(); len(names) > 0 {
			resp.Status = "degraded"
			resp.Breaching = names
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

// maxTraceDefault is GET /trace's record count when ?last is absent.
const maxTraceDefault = 256

// handleTrace serves the flight recorder's most recent rounds as JSON
// Lines (one RoundRecord object per line, oldest first). ?last=N bounds
// the count; it is clamped to the ring capacity.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := maxTraceDefault
	if q := r.URL.Query().Get("last"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, fmt.Sprintf("bad last=%q: want a non-negative integer", q), http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.rec.WriteJSONL(w, n)
}

// handleSLO serves the burn-rate engine's latest evaluation as JSON.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.slo.Status())
}

// handlePilot serves the optimality pilot's latest evaluation, or 404
// when the pilot is not enabled (Config.PilotEvery == 0).
func (s *Server) handlePilot(w http.ResponseWriter, _ *http.Request) {
	if s.pilot == nil {
		http.Error(w, "optimality pilot disabled (start the daemon with a pilot cadence)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.pilot.Status())
}

// handleSnapshot serves the runtime's Summary as JSON.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.rt.Snapshot())
}

// handleMetrics serves the Prometheus text exposition: the runtime
// Summary, the per-phase timing histograms recomputed from the flight
// recorder at scrape time, the SLO burn-rate gauges, and (when enabled)
// the pilot's optimality gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, s.rt.Snapshot())
	writePhaseMetrics(w, s.rec)
	writeSLOMetrics(w, s.slo.Status())
	if s.pilot != nil {
		writePilotMetrics(w, s.pilot.Status())
	}
	if s.ckptPath != "" {
		s.writeCkptMetrics(w)
	}
}

// handleDrain triggers the graceful drain and responds with the final
// summary once every accepted flow is accounted for. The response can
// take as long as the backlog does; clients wanting progress can watch
// GET /snapshot meanwhile.
func (s *Server) handleDrain(w http.ResponseWriter, _ *http.Request) {
	sum, err := s.Drain()
	if err != nil {
		http.Error(w, fmt.Sprintf("drain failed: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sum)
}
