package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"

	"flowsched/internal/switchnet"
)

// maxIngestBody bounds one POST /flows body (1 MiB ≈ 20k flows).
const maxIngestBody = 1 << 20

// flowsRequest is the POST /flows body. Release rounds are assigned by
// the scheduler (its clock is virtual rounds, which a client cannot
// observe), so any release a client sets is ignored.
type flowsRequest struct {
	Flows []switchnet.Flow `json:"flows"`
}

// flowsResponse acknowledges an accepted batch.
type flowsResponse struct {
	Accepted int `json:"accepted"`
}

// handleFlows ingests one batch. The whole batch is validated against
// the switch before anything is pushed: the runtime treats an
// inadmissible flow as a fatal stream error (it would abort the run), so
// garbage must be rejected at the door, atomically per batch.
func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	if !s.beginIngest() {
		http.Error(w, "draining: no new flows accepted", http.StatusServiceUnavailable)
		return
	}
	defer s.ingest.Done()

	var req flowsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Flows) == 0 {
		http.Error(w, `no flows in batch (want {"flows":[{"in":0,"out":1,"demand":1},...]})`, http.StatusBadRequest)
		return
	}
	for i, f := range req.Flows {
		f.Release = 0 // assigned at admission; validate what will run
		if err := s.sw.ValidateFlow(f); err != nil {
			http.Error(w, fmt.Sprintf("flow %d rejected: %v", i, err), http.StatusBadRequest)
			return
		}
	}
	for i, f := range req.Flows {
		if !s.src.Push(f) {
			// A concurrent Stop closed the feed mid-batch.
			http.Error(w, fmt.Sprintf("stopping: %d of %d flows accepted", i, len(req.Flows)),
				http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(flowsResponse{Accepted: len(req.Flows)})
}

// handleHealthz reports liveness, and the drain state for orchestrators
// that want to stop routing early.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{%q:%q}\n", "status", status)
}

// handleSnapshot serves the runtime's Summary as JSON.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.rt.Snapshot())
}

// handleMetrics serves the Prometheus text exposition of the Summary.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, s.rt.Snapshot())
}

// handleDrain triggers the graceful drain and responds with the final
// summary once every accepted flow is accounted for. The response can
// take as long as the backlog does; clients wanting progress can watch
// GET /snapshot meanwhile.
func (s *Server) handleDrain(w http.ResponseWriter, _ *http.Request) {
	sum, err := s.Drain()
	if err != nil {
		http.Error(w, fmt.Sprintf("drain failed: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sum)
}
