package daemon_test

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"flowsched/internal/daemon"
	"flowsched/internal/obs"
	"flowsched/internal/pilot"
	"flowsched/internal/slo"
	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
)

// getJSON decodes one GET endpoint into out and returns the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestDaemonSLOBreachFlips is the acceptance pin for the burn-rate
// engine: a deliberately overloaded drop-mode run must flip GET /slo
// from healthy to breaching, surface the breach as a degraded (but
// still 200) healthz, and expose the burn-rate gauges in /metrics.
func TestDaemonSLOBreachFlips(t *testing.T) {
	_, ts := startServer(t, daemon.Config{
		MaxPending:     4,
		Admit:          stream.AdmitDrop,
		Buffer:         8,
		SLOSampleEvery: 5 * time.Millisecond,
		SLOFastWindow:  50 * time.Millisecond,
		SLOSlowWindow:  500 * time.Millisecond,
	})

	// Healthy at birth: no events, no burn.
	var st slo.Status
	if code := getJSON(t, ts.URL+"/slo", &st); code != http.StatusOK {
		t.Fatalf("/slo status %d", code)
	}
	if len(st.Targets) == 0 || st.Targets[0].Name != "delivery" {
		t.Fatalf("unexpected targets: %+v", st.Targets)
	}
	if st.Targets[0].Breaching {
		t.Fatalf("fresh daemon already breaching: %+v", st.Targets[0])
	}
	var hz struct {
		Status    string   `json:"status"`
		Breaching []string `json:"breaching"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("fresh healthz: %d %+v", code, hz)
	}

	// Sustained overload: a 4-slot pending set fed same-VOQ batches
	// sheds nearly everything, burning the delivery budget instantly.
	stop := make(chan struct{})
	fed := make(chan struct{})
	go func() {
		defer close(fed)
		flows := make([]switchnet.Flow, 50)
		for i := range flows {
			flows[i] = switchnet.Flow{In: 0, Out: 0, Demand: 1}
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if code, _ := postFlows(t, ts.URL, flows); code != http.StatusAccepted {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	deadline := time.After(10 * time.Second)
	breached := false
	for !breached {
		select {
		case <-deadline:
			close(stop)
			<-fed
			t.Fatalf("overload never breached the delivery SLO: %+v", st)
		case <-time.After(5 * time.Millisecond):
		}
		getJSON(t, ts.URL+"/slo", &st)
		for _, tg := range st.Targets {
			if tg.Name == "delivery" && tg.Breaching {
				if tg.FastBurnRate < slo.DefaultFastBurn {
					t.Fatalf("breaching below the fast threshold: %+v", tg)
				}
				breached = true
			}
		}
	}

	// The breach degrades healthz but keeps it 200: an overloaded
	// scheduler still serves, and pulling it would cascade.
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("degraded healthz returned %d, want 200", code)
	}
	if hz.Status != "degraded" || len(hz.Breaching) == 0 || hz.Breaching[0] != "delivery" {
		t.Fatalf("degraded healthz body: %+v", hz)
	}

	// The burn-rate gauges ride the same scrape as the runtime metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`flowsched_slo_breach{target="delivery"} 1`,
		`flowsched_slo_burn_rate{target="delivery",window="fast"}`,
		`flowsched_slo_objective{target="delivery"} 0.999`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	close(stop)
	<-fed
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		// Allow 503 only if a concurrent test artifact drained; nothing
		// drains here, so any non-200 is a bug.
		t.Fatalf("healthz after overload stopped: %d", code)
	}
}

// TestDaemonTraceEndpoint: GET /trace serves the flight recorder as
// JSONL with strictly increasing rounds whose counts reconcile with the
// final summary.
func TestDaemonTraceEndpoint(t *testing.T) {
	srv, ts := startServer(t, daemon.Config{TraceRounds: 512})
	flows := make([]switchnet.Flow, 200)
	for i := range flows {
		flows[i] = switchnet.Flow{In: i % 8, Out: (i + 5) % 8, Demand: 1}
	}
	if code, body := postFlows(t, ts.URL, flows); code != http.StatusAccepted {
		t.Fatalf("ingest: %d %q", code, body)
	}
	sum, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/trace?last=512")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type %q", ct)
	}
	var (
		prev      int64 = -1
		lines     int
		scheduled int64
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec obs.RoundRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace line %d: %v", lines, err)
		}
		if rec.Round <= prev {
			t.Fatalf("trace rounds not strictly increasing: %d after %d", rec.Round, prev)
		}
		prev = rec.Round
		scheduled += rec.Scheduled
		lines++
	}
	if lines == 0 {
		t.Fatal("empty trace after a completed run")
	}
	if scheduled != sum.Completed {
		t.Fatalf("trace schedules %d != completed %d (ring did not wrap: %d rounds)", scheduled, sum.Completed, lines)
	}
	// Parameter validation.
	r2, err := http.Get(ts.URL + "/trace?last=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad last= returned %d, want 400", r2.StatusCode)
	}
}

// TestDaemonPilotEndpoint: with the pilot enabled, a bounded replay
// yields finite competitive-ratio estimates >= 1 on /pilot and the
// pilot gauges in /metrics; with it disabled, /pilot is 404.
func TestDaemonPilotEndpoint(t *testing.T) {
	srv, ts := startServer(t, daemon.Config{
		PilotEvery:    5 * time.Millisecond,
		PilotWindow:   4096,
		ResponseBound: 64,
	})
	flows := make([]switchnet.Flow, 300)
	for i := range flows {
		flows[i] = switchnet.Flow{In: i % 8, Out: (i + 1) % 8, Demand: 1}
	}
	if code, body := postFlows(t, ts.URL, flows); code != http.StatusAccepted {
		t.Fatalf("ingest: %d %q", code, body)
	}
	sum, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed == 0 {
		t.Fatal("nothing completed")
	}
	// Drain waits out the pilot's final evaluation, so the status is
	// settled and covers the completions.
	var st pilot.Status
	if code := getJSON(t, ts.URL+"/pilot", &st); code != http.StatusOK {
		t.Fatalf("/pilot status %d", code)
	}
	if st.Evaluations == 0 || st.WindowFlows == 0 {
		t.Fatalf("pilot never evaluated: %+v", st)
	}
	if !st.Sane() {
		t.Fatalf("pilot ratios unsound: %+v", st)
	}
	if st.TotalRatio < 1 || math.IsInf(st.TotalRatio, 0) {
		t.Fatalf("total competitive ratio %v, want finite >= 1", st.TotalRatio)
	}
	if st.MaxRatio < 1 || math.IsInf(st.MaxRatio, 0) {
		t.Fatalf("max competitive ratio %v, want finite >= 1", st.MaxRatio)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`flowsched_pilot_competitive_ratio{objective="total"}`,
		`flowsched_pilot_evaluations_total`,
		`flowsched_response_slow_total`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// No pilot configured: the endpoint says so.
	_, ts2 := startServer(t, daemon.Config{})
	if code := getJSON(t, ts2.URL+"/pilot", nil); code != http.StatusNotFound {
		t.Fatalf("disabled pilot endpoint returned %d, want 404", code)
	}
}
