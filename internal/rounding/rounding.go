// Package rounding implements a constructive version of the rounding
// theorem of Karp, Leighton, Rivest, Thompson, Vazirani and Vazirani
// ("Global wire routing in two-dimensional arrays"), quoted as Lemma 4.3 in
// the paper. Given a fractional vector x in [0,1]^n and linear rows whose
// per-column adverse mass is bounded, it produces an integral 0/1 vector
// whose row activities move adversely by strictly less than each row's
// budget.
//
// The construction alternates two steps: (1) drop every row whose maximum
// remaining adverse movement is already below its budget; (2) otherwise the
// active system has fewer rows than fractional variables (the counting
// argument of the theorem), so a null-space direction exists along which x
// can be pushed until some variable hits 0 or 1, leaving all active row
// activities unchanged. LP-degenerate corner cases where the active system
// is square are resolved by force-dropping the row with the smallest
// adverse potential; the ForcedDrops counter reports how often this
// happened (zero in all tested workloads) so callers can assert on it.
package rounding

import "math"

const fixTol = 1e-9

// RowKind distinguishes the direction in which a row may be violated.
type RowKind int

const (
	// Upper rows guard sum(coef*x) from increasing: the rounded activity
	// stays below the initial activity plus the row's budget.
	Upper RowKind = iota
	// Lower rows guard sum(coef*x) from decreasing: the rounded activity
	// stays above the initial activity minus the budget.
	Lower
)

// System collects rounding rows over NumVars variables.
type System struct {
	numVars int
	rows    []sysRow
}

type sysRow struct {
	idx    []int
	coef   []float64
	kind   RowKind
	budget float64
}

// NewSystem returns an empty system over numVars variables.
func NewSystem(numVars int) *System {
	return &System{numVars: numVars}
}

// AddRow adds a row with the given sparse coefficients (which must be
// non-negative), kind, and budget. The guarantee delivered by Round is:
//
//	Upper:  sum(coef * xhat) <  sum(coef * x) + budget
//	Lower:  sum(coef * xhat) >  sum(coef * x) - budget
func (s *System) AddRow(idx []int, coef []float64, kind RowKind, budget float64) {
	if len(idx) != len(coef) {
		panic("rounding: AddRow index/coefficient length mismatch")
	}
	s.rows = append(s.rows, sysRow{
		idx:    append([]int(nil), idx...),
		coef:   append([]float64(nil), coef...),
		kind:   kind,
		budget: budget,
	})
}

// Result is the output of Round.
type Result struct {
	// X is the rounded vector; every entry is exactly 0 or 1.
	X []float64
	// ForcedDrops counts degenerate square-system resolutions (see the
	// package comment); it is zero on all instances arising from basic LP
	// solutions in this repository and tests assert that.
	ForcedDrops int
}

// Round rounds x (entries in [0,1]) to a 0/1 vector honouring every row's
// budget guarantee. The input slice is not modified.
func (s *System) Round(x []float64) *Result {
	n := s.numVars
	cur := make([]float64, n)
	copy(cur, x)

	frac := make([]bool, n)
	var fracList []int
	for j := 0; j < n; j++ {
		if cur[j] > fixTol && cur[j] < 1-fixTol {
			frac[j] = true
			fracList = append(fracList, j)
		} else if cur[j] >= 1-fixTol {
			cur[j] = 1
		} else {
			cur[j] = 0
		}
	}

	active := make([]bool, len(s.rows))
	for i := range active {
		active[i] = true
	}
	res := &Result{}

	for len(fracList) > 0 {
		// Step 1: drop rows whose adverse potential is under budget.
		anyActive := false
		minPotRow := -1
		minPotSlack := math.Inf(1)
		for i, r := range s.rows {
			if !active[i] {
				continue
			}
			pot := s.adverse(r, cur, frac)
			if pot < r.budget-fixTol {
				active[i] = false
				continue
			}
			anyActive = true
			if pot-r.budget < minPotSlack {
				minPotSlack = pot - r.budget
				minPotRow = i
			}
		}

		if !anyActive {
			// No constraints left: round remaining variables to nearest.
			for _, j := range fracList {
				if cur[j] >= 0.5 {
					cur[j] = 1
				} else {
					cur[j] = 0
				}
				frac[j] = false
			}
			fracList = fracList[:0]
			break
		}

		// Step 2: find a null direction of the active rows restricted to
		// fractional variables.
		dir := s.nullDirection(cur, frac, fracList, active)
		if dir == nil {
			// Degenerate square/over-determined system: force-drop the
			// least-at-risk row and retry.
			active[minPotRow] = false
			res.ForcedDrops++
			continue
		}

		// Walk until the first variable hits a bound.
		step := math.Inf(1)
		for k, j := range fracList {
			v := dir[k]
			if v > fixTol {
				if st := (1 - cur[j]) / v; st < step {
					step = st
				}
			} else if v < -fixTol {
				if st := cur[j] / -v; st < step {
					step = st
				}
			}
		}
		if math.IsInf(step, 1) {
			// Zero direction (numerically); force progress by dropping.
			active[minPotRow] = false
			res.ForcedDrops++
			continue
		}
		for k, j := range fracList {
			cur[j] += step * dir[k]
		}
		// Re-collect fractional variables.
		newList := fracList[:0]
		for _, j := range fracList {
			if cur[j] > fixTol && cur[j] < 1-fixTol {
				newList = append(newList, j)
			} else {
				frac[j] = false
				if cur[j] >= 1-fixTol {
					cur[j] = 1
				} else {
					cur[j] = 0
				}
			}
		}
		fracList = newList
	}

	res.X = cur
	return res
}

// adverse computes the maximum remaining adverse movement of row r given
// the current point and fractional set.
func (s *System) adverse(r sysRow, cur []float64, frac []bool) float64 {
	pot := 0.0
	for k, j := range r.idx {
		if !frac[j] {
			continue
		}
		c := r.coef[k]
		if r.kind == Upper {
			pot += c * (1 - cur[j]) // worst case: rounds up
		} else {
			pot += c * cur[j] // worst case: rounds down
		}
	}
	return pot
}

// nullDirection returns a nonzero vector d (indexed parallel to fracList)
// with A_active * d = 0, or nil if the active system has no null space
// (square or overdetermined after elimination).
func (s *System) nullDirection(cur []float64, frac []bool, fracList []int, active []bool) []float64 {
	// Column position of each fractional variable.
	pos := make(map[int]int, len(fracList))
	for k, j := range fracList {
		pos[j] = k
	}
	// Gather active rows that touch fractional variables.
	type denseRow []float64
	var mat []denseRow
	for i, r := range s.rows {
		if !active[i] {
			continue
		}
		var dr denseRow
		for k, j := range r.idx {
			if !frac[j] {
				continue
			}
			if dr == nil {
				dr = make(denseRow, len(fracList))
			}
			dr[pos[j]] += r.coef[k]
		}
		if dr != nil {
			mat = append(mat, dr)
		}
	}
	nCols := len(fracList)
	if len(mat) >= nCols {
		// Might still be rank-deficient, but elimination below will tell.
		if len(mat) > 4*nCols {
			return nil
		}
	}

	// Gaussian elimination to row echelon form, tracking pivot columns.
	pivotCol := make([]int, 0, len(mat))
	rowUsed := 0
	for col := 0; col < nCols && rowUsed < len(mat); col++ {
		// Find pivot.
		sel := -1
		maxAbs := 1e-9
		for r := rowUsed; r < len(mat); r++ {
			if v := math.Abs(mat[r][col]); v > maxAbs {
				maxAbs = v
				sel = r
			}
		}
		if sel < 0 {
			continue
		}
		mat[rowUsed], mat[sel] = mat[sel], mat[rowUsed]
		piv := mat[rowUsed][col]
		for r := 0; r < len(mat); r++ {
			if r == rowUsed || mat[r][col] == 0 {
				continue
			}
			f := mat[r][col] / piv
			for c2 := col; c2 < nCols; c2++ {
				mat[r][c2] -= f * mat[rowUsed][c2]
			}
			mat[r][col] = 0
		}
		pivotCol = append(pivotCol, col)
		rowUsed++
	}
	if rowUsed >= nCols {
		return nil // full column rank: no null space
	}
	// Pick a free column and back-substitute.
	isPivot := make([]bool, nCols)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	freeCol := -1
	for c := 0; c < nCols; c++ {
		if !isPivot[c] {
			freeCol = c
			break
		}
	}
	if freeCol < 0 {
		return nil
	}
	d := make([]float64, nCols)
	d[freeCol] = 1
	// Each pivot row determines its pivot column's value.
	for r := rowUsed - 1; r >= 0; r-- {
		c := pivotCol[r]
		sum := 0.0
		for c2 := c + 1; c2 < nCols; c2++ {
			if mat[r][c2] != 0 {
				sum += mat[r][c2] * d[c2]
			}
		}
		d[c] = -sum / mat[r][c]
	}
	return d
}
