package rounding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func activity(idx []int, coef []float64, x []float64) float64 {
	s := 0.0
	for k, j := range idx {
		s += coef[k] * x[j]
	}
	return s
}

func TestRoundAlreadyIntegral(t *testing.T) {
	s := NewSystem(3)
	s.AddRow([]int{0, 1, 2}, []float64{1, 1, 1}, Upper, 2)
	res := s.Round([]float64{1, 0, 1})
	if res.ForcedDrops != 0 {
		t.Fatalf("forced drops = %d", res.ForcedDrops)
	}
	want := []float64{1, 0, 1}
	for j := range want {
		if res.X[j] != want[j] {
			t.Fatalf("X = %v", res.X)
		}
	}
}

func TestRoundSingleSplitVariablePair(t *testing.T) {
	// One flow split 0.5/0.5 across two rounds; lower row budget 1 forces
	// at least one of the two to round to 1.
	s := NewSystem(2)
	s.AddRow([]int{0, 1}, []float64{1, 1}, Lower, 1)
	res := s.Round([]float64{0.5, 0.5})
	if res.X[0]+res.X[1] < 1 {
		t.Fatalf("assignment lost: %v", res.X)
	}
	for _, v := range res.X {
		if v != 0 && v != 1 {
			t.Fatalf("non-integral output %v", res.X)
		}
	}
}

func TestUpperBudgetRespected(t *testing.T) {
	// Three half-variables with capacity activity 1.5 and budget 2:
	// rounded activity must stay < 1.5+2 = 3.5, i.e. <= 3.
	s := NewSystem(3)
	idx := []int{0, 1, 2}
	coef := []float64{1, 1, 1}
	s.AddRow(idx, coef, Upper, 2)
	res := s.Round([]float64{0.5, 0.5, 0.5})
	if a := activity(idx, coef, res.X); a >= 3.5 {
		t.Fatalf("activity %v >= 3.5", a)
	}
}

// buildScheduleLikeSystem mimics the Theorem 3 structure: nFlows flows each
// fractionally spread over nRounds rounds; each (flow, round) variable
// loads two port-rounds. Returns the system, variable demands, per-flow
// variable lists and per-port-round rows.
type schedSys struct {
	sys      *System
	x        []float64
	flowVars [][]int
	capIdx   [][]int
	capCoef  [][]float64
	capBase  []float64
	dmax     float64
}

func buildScheduleLike(rng *rand.Rand, nFlows, nRounds, nPorts int, maxDemand int) *schedSys {
	type pr struct{ port, round int }
	capVars := make(map[pr][]int)
	capCoefs := make(map[pr][]float64)
	var x []float64
	var demands []float64
	flowVars := make([][]int, nFlows)
	dmax := 0.0
	for f := 0; f < nFlows; f++ {
		d := float64(1 + rng.Intn(maxDemand))
		if d > dmax {
			dmax = d
		}
		p := rng.Intn(nPorts)
		q := nPorts + rng.Intn(nPorts)
		// Random fractional split over rounds summing to 1.
		weights := make([]float64, nRounds)
		tot := 0.0
		for t := range weights {
			weights[t] = rng.Float64()
			tot += weights[t]
		}
		for t := 0; t < nRounds; t++ {
			j := len(x)
			x = append(x, weights[t]/tot)
			demands = append(demands, d)
			flowVars[f] = append(flowVars[f], j)
			for _, port := range []int{p, q} {
				key := pr{port, t}
				capVars[key] = append(capVars[key], j)
				capCoefs[key] = append(capCoefs[key], d)
			}
		}
	}
	sys := NewSystem(len(x))
	for f := 0; f < nFlows; f++ {
		coef := make([]float64, len(flowVars[f]))
		for i := range coef {
			coef[i] = 1
		}
		sys.AddRow(flowVars[f], coef, Lower, 1)
	}
	ss := &schedSys{sys: sys, x: x, flowVars: flowVars, dmax: dmax}
	for key, vars := range capVars {
		coefs := capCoefs[key]
		sys.AddRow(vars, coefs, Upper, 2*dmax)
		ss.capIdx = append(ss.capIdx, vars)
		ss.capCoef = append(ss.capCoef, coefs)
		ss.capBase = append(ss.capBase, activity(vars, coefs, x))
	}
	return ss
}

// Property: on schedule-shaped systems, every flow keeps at least one
// chosen round and every port-round activity grows by < 2*dmax. This is
// exactly the guarantee Theorem 3 needs from Lemma 4.3.
func TestQuickScheduleLikeGuarantees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nFlows := 1 + rng.Intn(12)
		nRounds := 1 + rng.Intn(4)
		nPorts := 1 + rng.Intn(4)
		ss := buildScheduleLike(rng, nFlows, nRounds, nPorts, 3)
		res := ss.sys.Round(ss.x)
		// Integrality.
		for _, v := range res.X {
			if v != 0 && v != 1 {
				return false
			}
		}
		// Every flow scheduled at least once.
		for _, vars := range ss.flowVars {
			sum := 0.0
			for _, j := range vars {
				sum += res.X[j]
			}
			if sum < 1 {
				return false
			}
		}
		// Capacity rows within budget.
		for i := range ss.capIdx {
			a := activity(ss.capIdx[i], ss.capCoef[i], res.X)
			if a >= ss.capBase[i]+2*ss.dmax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Forced drops should never occur on schedule-shaped systems derived from
// genuinely fractional points (the counting argument of Lemma 4.3).
func TestNoForcedDropsOnScheduleSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	total := 0
	for trial := 0; trial < 60; trial++ {
		ss := buildScheduleLike(rng, 2+rng.Intn(15), 1+rng.Intn(5), 1+rng.Intn(5), 4)
		res := ss.sys.Round(ss.x)
		total += res.ForcedDrops
	}
	if total != 0 {
		t.Fatalf("forced drops = %d, want 0", total)
	}
}

func TestLowerRowNearIntegralInput(t *testing.T) {
	// x already nearly integral: nothing should change.
	s := NewSystem(2)
	s.AddRow([]int{0, 1}, []float64{1, 1}, Lower, 1)
	res := s.Round([]float64{1 - 1e-12, 1e-12})
	if res.X[0] != 1 || res.X[1] != 0 {
		t.Fatalf("X = %v", res.X)
	}
}

func TestEmptySystem(t *testing.T) {
	s := NewSystem(3)
	res := s.Round([]float64{0.3, 0.7, 0.5})
	for _, v := range res.X {
		if v != 0 && v != 1 {
			t.Fatalf("non-integral %v", res.X)
		}
	}
	// Nearest rounding applies when no rows constrain.
	if res.X[0] != 0 || res.X[1] != 1 {
		t.Fatalf("nearest rounding broken: %v", res.X)
	}
}

func TestAddRowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSystem(2).AddRow([]int{0}, []float64{1, 2}, Upper, 1)
}

// Property: null-space walking preserves active equality structure — the
// total assignment mass of each flow never drifts past its budget even with
// many overlapping capacity rows.
func TestQuickMassConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		s := NewSystem(n)
		x := make([]float64, n)
		for j := range x {
			x[j] = rng.Float64()
		}
		// A handful of random upper rows with generous budgets; record
		// each row so its guarantee can be verified after rounding.
		type rowCheck struct {
			idx    []int
			coef   []float64
			base   float64
			budget float64
		}
		var checks []rowCheck
		for r := 0; r < 1+rng.Intn(5); r++ {
			var idx []int
			var coef []float64
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					idx = append(idx, j)
					coef = append(coef, float64(1+rng.Intn(3)))
				}
			}
			if len(idx) == 0 {
				continue
			}
			budget := 3.0 + rng.Float64()*3
			s.AddRow(idx, coef, Upper, budget)
			checks = append(checks, rowCheck{idx, coef, activity(idx, coef, x), budget})
		}
		res := s.Round(x)
		for _, v := range res.X {
			if v != 0 && v != 1 {
				return false
			}
		}
		for _, c := range checks {
			if activity(c.idx, c.coef, res.X) >= c.base+c.budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAdverseComputation(t *testing.T) {
	s := NewSystem(2)
	r := sysRow{idx: []int{0, 1}, coef: []float64{2, 3}, kind: Upper, budget: 10}
	cur := []float64{0.25, 0.5}
	frac := []bool{true, true}
	// Upper adverse: 2*(0.75) + 3*(0.5) = 3.
	if got := s.adverse(r, cur, frac); math.Abs(got-3) > 1e-12 {
		t.Fatalf("adverse = %v, want 3", got)
	}
	r.kind = Lower
	// Lower adverse: 2*0.25 + 3*0.5 = 2.
	if got := s.adverse(r, cur, frac); math.Abs(got-2) > 1e-12 {
		t.Fatalf("adverse = %v, want 2", got)
	}
}
