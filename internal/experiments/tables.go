package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"flowsched/internal/core"
	"flowsched/internal/heuristics"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/workload"
)

// Table is a simple labelled grid for the validation experiments.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render prints the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintln(w, t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
}

// WriteCSV writes the table as CSV into dir, named from its title.
func (t *Table) WriteCSV(dir string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return os.WriteFile(filepath.Join(dir, sanitize(t.Title)+".csv"), []byte(b.String()), 0o644)
}

// Theorem1Table validates the FS-ART pipeline: for each augmentation c,
// the realized total-response ratio against the LP bound (Theorem 1
// promises 1 + O(log n)/c) and the conversion window h.
func Theorem1Table(cfg Config, w io.Writer) (*Table, error) {
	tab := &Table{
		Title:   "theorem1 FS-ART approximation (unit demands)",
		Columns: []string{"c", "capacity", "ratio_vs_LP", "window_h", "pseudo_ratio", "n"},
	}
	for _, c := range []int{1, 2, 4} {
		var ratios, pseudo []float64
		var h, n int
		for tr := 0; tr < cfg.Trials; tr++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(tr)*31 + int64(c)))
			inst := workload.PoissonConfig{M: float64(cfg.Ports), T: 6, Ports: cfg.Ports}.Generate(rng)
			if inst.N() == 0 {
				continue
			}
			res, err := core.SolveART(inst, c)
			if err != nil {
				return nil, err
			}
			if res.LPBound > 0 {
				ratios = append(ratios, float64(res.Schedule.TotalResponse(inst))/res.LPBound)
				pseudo = append(pseudo, float64(res.PseudoTotal)/res.LPBound)
			}
			h = res.WindowH
			n = inst.N()
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", c),
			fmt.Sprintf("(1+%d)x", c),
			fmt.Sprintf("%.3f", stats.Mean(ratios)),
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%.3f", stats.Mean(pseudo)),
			fmt.Sprintf("%d", n),
		})
	}
	if w != nil {
		tab.Render(w)
	}
	return tab, tab.WriteCSV(cfg.OutDir)
}

// Theorem3Table validates the FS-MRT pipeline: the achieved rho equals the
// LP optimum and the measured port overload stays within 2*d_max-1.
func Theorem3Table(cfg Config, w io.Writer) (*Table, error) {
	tab := &Table{
		Title:   "theorem3 FS-MRT optimal with +2dmax-1 capacity",
		Columns: []string{"dmax", "rho_LP", "rho_sched", "overload_max", "budget", "n"},
	}
	for _, dmax := range []int{1, 2, 3} {
		var rhoLP, rhoS, over []float64
		var n int
		for tr := 0; tr < cfg.Trials; tr++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(tr)*67 + int64(dmax)))
			inst := workload.PoissonConfig{
				M: float64(cfg.Ports), T: 5, Ports: cfg.Ports, Cap: dmax, MaxDemand: dmax,
			}.Generate(rng)
			if inst.N() == 0 {
				continue
			}
			res, err := core.SolveMRT(inst)
			if err != nil {
				return nil, err
			}
			rhoLP = append(rhoLP, float64(res.Rho))
			rhoS = append(rhoS, float64(res.Schedule.MaxResponse(inst)))
			over = append(over, float64(res.Schedule.MaxOverload(inst, inst.Switch.Caps())))
			n = inst.N()
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", dmax),
			fmt.Sprintf("%.2f", stats.Mean(rhoLP)),
			fmt.Sprintf("%.2f", stats.Mean(rhoS)),
			fmt.Sprintf("%.0f", stats.Max(over)),
			fmt.Sprintf("%d", 2*dmax-1),
			fmt.Sprintf("%d", n),
		})
	}
	if w != nil {
		tab.Render(w)
	}
	return tab, tab.WriteCSV(cfg.OutDir)
}

// AMRTTable validates the online Lemma 5.3 algorithm against the offline
// optimum per load ratio.
func AMRTTable(cfg Config, w io.Writer) (*Table, error) {
	tab := &Table{
		Title:   "amrt online max response (Lemma 5.3)",
		Columns: []string{"load", "final_rho", "maxRT", "2*final_rho", "offline_rho", "online/offline"},
	}
	for ri, ratio := range cfg.Ratios {
		var finals, maxs, offs []float64
		for tr := 0; tr < cfg.Trials; tr++ {
			rng := rand.New(rand.NewSource(seedFor(cfg.Seed, ri, 5, tr)))
			inst := workload.PoissonConfig{M: ratio * float64(cfg.Ports), T: 5, Ports: cfg.Ports}.Generate(rng)
			if inst.N() == 0 {
				continue
			}
			on, err := core.OnlineAMRT(inst)
			if err != nil {
				return nil, err
			}
			off, err := core.MRTLowerBound(inst)
			if err != nil {
				return nil, err
			}
			finals = append(finals, float64(on.FinalRho))
			maxs = append(maxs, float64(on.Schedule.MaxResponse(inst)))
			offs = append(offs, float64(off))
		}
		ratioVal := 0.0
		if stats.Mean(offs) > 0 {
			ratioVal = stats.Mean(maxs) / stats.Mean(offs)
		}
		tab.Rows = append(tab.Rows, []string{
			ratioName(ratio),
			fmt.Sprintf("%.2f", stats.Mean(finals)),
			fmt.Sprintf("%.2f", stats.Mean(maxs)),
			fmt.Sprintf("%.2f", 2*stats.Mean(finals)),
			fmt.Sprintf("%.2f", stats.Mean(offs)),
			fmt.Sprintf("%.2f", ratioVal),
		})
	}
	if w != nil {
		tab.Render(w)
	}
	return tab, tab.WriteCSV(cfg.OutDir)
}

// Fig4aTable shows the Lemma 5.1 divergence: the worst heuristic-to-OPT
// ratio on the gadget grows with the gadget length.
func Fig4aTable(cfg Config, w io.Writer) (*Table, error) {
	tab := &Table{
		Title:   "fig4a online ART lower bound gadget (Lemma 5.1)",
		Columns: append([]string{"gadget_M", "T", "opt_upper"}, policyNames()...),
	}
	for _, gm := range []int{24, 48, 96, 192} {
		T := gm / 4
		inst := workload.Fig4a(T, gm)
		// The paper's offline schedule costs at most 2T per solid pair
		// plus 1 per dashed flow: total <= 4T + (gm - T).
		opt := float64(3*T + gm)
		row := []string{fmt.Sprintf("%d", gm), fmt.Sprintf("%d", T), fmt.Sprintf("%.0f", opt)}
		for _, pol := range heuristics.All() {
			res, err := sim.Run(inst, pol)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", float64(res.TotalResponse)/opt))
		}
		tab.Rows = append(tab.Rows, row)
	}
	if w != nil {
		tab.Render(w)
	}
	return tab, tab.WriteCSV(cfg.OutDir)
}

func policyNames() []string {
	var names []string
	for _, p := range heuristics.All() {
		names = append(names, p.Name()+"/opt")
	}
	return names
}

// AblationTable compares the exact-matching heuristics against greedy and
// FIFO baselines under heavy load (experiment E10).
func AblationTable(cfg Config, w io.Writer) (*Table, error) {
	tab := &Table{
		Title:   "ablation matching engines under load 4m",
		Columns: []string{"policy", "avgRT", "maxRT"},
	}
	pols := heuristics.WithAblations()
	for _, pol := range pols {
		var avgs, maxs []float64
		for tr := 0; tr < cfg.Trials; tr++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(tr)*13))
			inst := workload.PoissonConfig{M: 4 * float64(cfg.Ports), T: 10, Ports: cfg.Ports}.Generate(rng)
			if inst.N() == 0 {
				continue
			}
			res, err := sim.Run(inst, pol)
			if err != nil {
				return nil, err
			}
			avgs = append(avgs, res.AvgResponse)
			maxs = append(maxs, float64(res.MaxResponse))
		}
		tab.Rows = append(tab.Rows, []string{
			pol.Name(),
			fmt.Sprintf("%.2f", stats.Mean(avgs)),
			fmt.Sprintf("%.2f", stats.Mean(maxs)),
		})
	}
	if w != nil {
		tab.Render(w)
	}
	return tab, tab.WriteCSV(cfg.OutDir)
}

// SRPTComparisonTable contrasts the cheap SRPT bound with the LP (1)-(4)
// bound, quantifying how much is lost when the LP is too large to solve.
func SRPTComparisonTable(cfg Config, w io.Writer) (*Table, error) {
	tab := &Table{
		Title:   "bounds LP(1)-(4) vs per-port SRPT relaxation",
		Columns: []string{"load", "LP_total", "SRPT_total", "SRPT/LP"},
	}
	for ri, ratio := range cfg.Ratios {
		var lps, srpts []float64
		for tr := 0; tr < cfg.LPTrials; tr++ {
			rng := rand.New(rand.NewSource(seedFor(cfg.Seed, ri, 6, tr)))
			inst := workload.PoissonConfig{M: ratio * float64(cfg.Ports), T: 6, Ports: cfg.Ports}.Generate(rng)
			if inst.N() == 0 {
				continue
			}
			lb, err := core.ARTLowerBound(inst)
			if err != nil {
				return nil, err
			}
			lps = append(lps, lb.TotalResponse)
			srpts = append(srpts, float64(core.SRPTLowerBound(inst)))
		}
		frac := 0.0
		if stats.Mean(lps) > 0 {
			frac = stats.Mean(srpts) / stats.Mean(lps)
		}
		tab.Rows = append(tab.Rows, []string{
			ratioName(ratio),
			fmt.Sprintf("%.1f", stats.Mean(lps)),
			fmt.Sprintf("%.1f", stats.Mean(srpts)),
			fmt.Sprintf("%.2f", frac),
		})
	}
	if w != nil {
		tab.Render(w)
	}
	return tab, tab.WriteCSV(cfg.OutDir)
}
