// Package experiments regenerates the paper's evaluation artifacts
// (Figures 6 and 7, plus validation tables for Theorems 1 and 3 and the
// online results of Section 5.1). It drives the simulator, the LP lower
// bounds, and the offline algorithms over the paper's load grid, writes
// CSV and ASCII charts, and is shared by cmd/experiments and the test
// suite.
//
// Scale note (see DESIGN.md): the paper uses a 150x150 switch with
// M in {50,100,150,300,600}. The default configuration here keeps the same
// load ratios M/m on a smaller switch so the homegrown simplex can solve
// the LP baselines in minutes rather than hours; every knob is a flag in
// cmd/experiments.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"flowsched/internal/core"
	"flowsched/internal/engine"
	"flowsched/internal/heuristics"
	"flowsched/internal/plot"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/switchnet"
	"flowsched/internal/verify"
	"flowsched/internal/workload"
)

// Config selects the experiment scale.
type Config struct {
	// Ports is the switch size m (the paper uses 150).
	Ports int
	// Ratios are the load ratios M/m (the paper's {1/3,2/3,1,2,4}).
	Ratios []float64
	// HeurT are the T values swept for heuristics.
	HeurT []int
	// LPT are the T values at which LP lower bounds are computed.
	LPT []int
	// Trials and LPTrials are the per-point repetition counts.
	Trials   int
	LPTrials int
	// Seed makes runs reproducible.
	Seed int64
	// EnableLP computes the LP baselines (dominates runtime).
	EnableLP bool
	// OutDir receives CSV and ASCII outputs ("" = no files).
	OutDir string
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig is a laptop-scale configuration preserving the paper's
// load ratios.
func DefaultConfig() Config {
	return Config{
		Ports:    6,
		Ratios:   []float64{1.0 / 3, 2.0 / 3, 1, 2, 4},
		HeurT:    []int{6, 8, 10, 12, 16, 20},
		LPT:      []int{6, 8, 10},
		Trials:   5,
		LPTrials: 2,
		Seed:     1,
		EnableLP: true,
	}
}

// ratioName labels a load ratio like the paper ("M=2m" etc.).
func ratioName(r float64) string {
	switch {
	case r < 0.4:
		return "M=m3" // M = m/3
	case r < 0.8:
		return "M=2m3"
	case r < 1.5:
		return "M=m"
	case r < 3:
		return "M=2m"
	default:
		return "M=4m"
	}
}

// seedFor derives a deterministic seed per (base, ratio, T, trial).
func seedFor(base int64, ri, T, trial int) int64 {
	return base + int64(ri)*1_000_003 + int64(T)*7919 + int64(trial)*104729 + 17
}

// Fig6 regenerates the average-response-time panels of Figure 6: one chart
// per load ratio, series per heuristic plus the LP (1)-(4) lower bound.
func Fig6(cfg Config, w io.Writer) ([]*plot.Chart, error) {
	return figure(cfg, w, "fig6", "avg response time", func(rep *verify.Report) float64 {
		return rep.AvgResponse
	}, func(inst *switchnet.Instance) (float64, error) {
		lb, err := core.ARTLowerBound(inst)
		if err != nil {
			return 0, err
		}
		return lb.TotalResponse / float64(inst.N()), nil
	})
}

// Fig7 regenerates the maximum-response-time panels of Figure 7 with the
// binary-search LP (19)-(21) lower bound.
func Fig7(cfg Config, w io.Writer) ([]*plot.Chart, error) {
	return figure(cfg, w, "fig7", "max response time", func(rep *verify.Report) float64 {
		return float64(rep.MaxResponse)
	}, func(inst *switchnet.Instance) (float64, error) {
		rho, err := core.MRTLowerBound(inst)
		return float64(rho), err
	})
}

// figure is the shared Figure 6/7 driver. Heuristic cells run as engine
// scenarios, so every plotted point comes from a schedule the verify oracle
// accepted; the metric is read from the oracle's recomputation, never from
// the simulator's own claim.
func figure(cfg Config, w io.Writer, name, ylabel string,
	metric func(*verify.Report) float64,
	lowerBound func(*switchnet.Instance) (float64, error)) ([]*plot.Chart, error) {

	pols := heuristics.All()
	var charts []*plot.Chart
	for ri, ratio := range cfg.Ratios {
		M := ratio * float64(cfg.Ports)
		chart := &plot.Chart{
			Title:  fmt.Sprintf("%s %s (m=%d, M=%.3g)", name, ratioName(ratio), cfg.Ports, M),
			XLabel: "T",
			YLabel: ylabel,
		}

		// Heuristic curves: one scenario per T x policy x trial.
		type cell struct {
			T     int
			pol   sim.Policy
			trial int
		}
		var cells []cell
		var scenarios []engine.Scenario
		for _, T := range cfg.HeurT {
			for _, pol := range pols {
				for tr := 0; tr < cfg.Trials; tr++ {
					cells = append(cells, cell{T, pol, tr})
					scenarios = append(scenarios, engine.Scenario{
						Seed:     seedFor(cfg.Seed, ri, T, tr),
						Workload: engine.PoissonGen{Cfg: workload.PoissonConfig{M: M, T: T, Ports: cfg.Ports}},
						Solver:   engine.PolicySolver{Policy: pol},
					})
				}
			}
		}
		verdicts := engine.Run(scenarios, engine.Options{Workers: cfg.Workers})
		for i, v := range verdicts {
			if v.Err != nil {
				return nil, fmt.Errorf("%s cell %d: %w", name, i, v.Err)
			}
		}
		for _, T := range cfg.HeurT {
			for _, pol := range pols {
				var xs []float64
				for i, c := range cells {
					if c.T == T && c.pol.Name() == pol.Name() {
						xs = append(xs, metric(verdicts[i].Report))
					}
				}
				chart.AddPoint(pol.Name(), float64(T), stats.Mean(xs))
			}
		}

		// LP baseline curve (bounds, not schedules: plain fan-out on the
		// engine's pool).
		if cfg.EnableLP {
			type lpCell struct{ T, trial int }
			var lpCells []lpCell
			for _, T := range cfg.LPT {
				for tr := 0; tr < cfg.LPTrials; tr++ {
					lpCells = append(lpCells, lpCell{T, tr})
				}
			}
			lpVals := make([]float64, len(lpCells))
			lpErrs := make([]error, len(lpCells))
			engine.ForEach(len(lpCells), cfg.Workers, func(i int) {
				c := lpCells[i]
				// Same seeds as the heuristics' first trials: the LP
				// bound applies to the same instance draws.
				rng := rand.New(rand.NewSource(seedFor(cfg.Seed, ri, c.T, c.trial)))
				inst := workload.PoissonConfig{M: M, T: c.T, Ports: cfg.Ports}.Generate(rng)
				if inst.N() == 0 {
					return
				}
				v, err := lowerBound(inst)
				if err != nil {
					lpErrs[i] = err
					return
				}
				lpVals[i] = v
			})
			for i, err := range lpErrs {
				if err != nil {
					return nil, fmt.Errorf("%s LP cell %d: %w", name, i, err)
				}
			}
			for _, T := range cfg.LPT {
				var xs []float64
				for i, c := range lpCells {
					if c.T == T {
						xs = append(xs, lpVals[i])
					}
				}
				chart.AddPoint("LP", float64(T), stats.Mean(xs))
			}
		}
		charts = append(charts, chart)
		if w != nil {
			fmt.Fprintln(w, chart.RenderASCII(56, 12))
		}
	}
	if cfg.OutDir != "" {
		for _, c := range charts {
			if err := writeChart(cfg.OutDir, c); err != nil {
				return nil, err
			}
		}
	}
	return charts, nil
}

// SweepTable runs the full default engine sweep (every registered solver
// crossed with the default workload patterns) at the configuration's scale
// and renders its verified result table.
func SweepTable(cfg Config, w io.Writer) (*engine.ResultTable, error) {
	T := 4
	if len(cfg.HeurT) > 0 {
		T = cfg.HeurT[0]
	}
	table := engine.RunSweep(engine.DefaultSweep(cfg.Ports, T, cfg.Trials, cfg.Seed, cfg.Workers))
	if err := table.FirstError(); err != nil {
		return nil, err
	}
	if w != nil {
		table.Render(w)
	}
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return nil, err
		}
		f, err := os.Create(filepath.Join(cfg.OutDir, "engine_sweep.csv"))
		if err != nil {
			return nil, err
		}
		if err := table.WriteCSV(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	return table, nil
}

// writeChart dumps CSV and ASCII renderings of a chart into dir.
func writeChart(dir string, c *plot.Chart) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(dir, sanitize(c.Title))
	f, err := os.Create(base + ".csv")
	if err != nil {
		return err
	}
	if err := c.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.WriteFile(base+".txt", []byte(c.RenderASCII(64, 14)), 0o644)
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '=', r == '.':
			out = append(out, r)
		case r == ' ', r == '(', r == ')', r == ',', r == '/':
			out = append(out, '_')
		}
	}
	return string(out)
}
