package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyConfig keeps experiment tests fast.
func tinyConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Ports:    4,
		Ratios:   []float64{1, 4},
		HeurT:    []int{4, 6},
		LPT:      []int{4},
		Trials:   2,
		LPTrials: 1,
		Seed:     3,
		EnableLP: true,
		OutDir:   t.TempDir(),
	}
}

func TestFig6ProducesPanels(t *testing.T) {
	cfg := tinyConfig(t)
	var buf bytes.Buffer
	charts, err := Fig6(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) != len(cfg.Ratios) {
		t.Fatalf("panels = %d, want %d", len(charts), len(cfg.Ratios))
	}
	for _, c := range charts {
		names := map[string]bool{}
		for _, s := range c.Series {
			names[s.Name] = true
		}
		for _, want := range []string{"MaxCard", "MinRTime", "MaxWeight", "LP"} {
			if !names[want] {
				t.Fatalf("panel %q missing series %q", c.Title, want)
			}
		}
	}
	if !strings.Contains(buf.String(), "fig6") {
		t.Fatal("ASCII output missing")
	}
	files, err := filepath.Glob(filepath.Join(cfg.OutDir, "*.csv"))
	if err != nil || len(files) != len(cfg.Ratios) {
		t.Fatalf("csv files = %v (%v)", files, err)
	}
}

func TestFig7LowerBoundIsBelowHeuristics(t *testing.T) {
	cfg := tinyConfig(t)
	charts, err := Fig7(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range charts {
		var lp map[float64]float64
		for _, s := range c.Series {
			if s.Name == "LP" {
				lp = map[float64]float64{}
				for _, p := range s.Points {
					lp[p[0]] = p[1]
				}
			}
		}
		if lp == nil {
			t.Fatalf("panel %q has no LP series", c.Title)
		}
		for _, s := range c.Series {
			if s.Name == "LP" {
				continue
			}
			for _, p := range s.Points {
				if bound, ok := lp[p[0]]; ok && p[1] < bound-1e-9 {
					t.Fatalf("panel %q: %s at T=%v is %v < LP bound %v",
						c.Title, s.Name, p[0], p[1], bound)
				}
			}
		}
	}
}

func TestTheorem1TableShape(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Trials = 1
	var buf bytes.Buffer
	tab, err := Theorem1Table(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(buf.String(), "theorem1") {
		t.Fatal("render missing")
	}
}

func TestTheorem3TableWithinBudget(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Trials = 2
	tab, err := Theorem3Table(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		// overload_max column (index 3) must be <= budget (index 4).
		var over, budget int
		if _, err := fmtSscan(row[3], &over); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(row[4], &budget); err != nil {
			t.Fatal(err)
		}
		if over > budget {
			t.Fatalf("overload %d exceeds budget %d", over, budget)
		}
	}
}

func TestAMRTTableGuarantee(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Trials = 1
	tab, err := AMRTTable(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(cfg.Ratios) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig4aTableDiverges(t *testing.T) {
	cfg := tinyConfig(t)
	tab, err := Fig4aTable(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationTableCoversAllPolicies(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Trials = 1
	tab, err := AblationTable(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 policies", len(tab.Rows))
	}
}

func TestSRPTComparisonTable(t *testing.T) {
	cfg := tinyConfig(t)
	tab, err := SRPTComparisonTable(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		// SRPT/LP ratio should be positive and typically >= ~0.5 (the LP
		// has the -1/2 offset) — sanity-check positivity only.
		if !strings.Contains(row[3], ".") {
			t.Fatalf("ratio cell malformed: %q", row[3])
		}
	}
}

func TestTableWriteCSVAndRender(t *testing.T) {
	dir := t.TempDir()
	tab := &Table{Title: "demo table", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if err := tab.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo_table.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", data)
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), "demo table") {
		t.Fatal("render broken")
	}
}

func TestRatioName(t *testing.T) {
	cases := map[float64]string{
		1.0 / 3: "M=m3", 2.0 / 3: "M=2m3", 1: "M=m", 2: "M=2m", 4: "M=4m",
	}
	for r, want := range cases {
		if got := ratioName(r); got != want {
			t.Errorf("ratioName(%v) = %q, want %q", r, got, want)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("fig6 M=m (m=6, M=2)"); strings.ContainsAny(got, " ()") {
		t.Fatalf("sanitize left specials: %q", got)
	}
}

// fmtSscan parses an integer table cell.
func fmtSscan(s string, v *int) (int, error) {
	return fmt.Sscanf(s, "%d", v)
}
