package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteMaxCardinality enumerates all matchings of a small bipartite graph.
func bruteMaxCardinality(nL, nR int, adj [][]int) int {
	usedR := make([]bool, nR)
	var rec func(l int) int
	rec = func(l int) int {
		if l == nL {
			return 0
		}
		best := rec(l + 1) // leave l unmatched
		for _, r := range adj[l] {
			if !usedR[r] {
				usedR[r] = true
				if v := 1 + rec(l+1); v > best {
					best = v
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}

// bruteMaxWeight enumerates all matchings maximizing total weight.
func bruteMaxWeight(nL, nR int, adj [][]int, w func(l, r int) float64) float64 {
	usedR := make([]bool, nR)
	var rec func(l int) float64
	rec = func(l int) float64 {
		if l == nL {
			return 0
		}
		best := rec(l + 1)
		for _, r := range adj[l] {
			if !usedR[r] {
				usedR[r] = true
				if v := w(l, r) + rec(l+1); v > best {
					best = v
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}

func randomBipartite(rng *rand.Rand, maxN int) (nL, nR int, adj [][]int) {
	nL = 1 + rng.Intn(maxN)
	nR = 1 + rng.Intn(maxN)
	adj = make([][]int, nL)
	for l := 0; l < nL; l++ {
		for r := 0; r < nR; r++ {
			if rng.Intn(3) == 0 {
				adj[l] = append(adj[l], r)
			}
		}
	}
	return
}

func checkValidMatching(t *testing.T, nR int, matchL []int, adj [][]int) {
	t.Helper()
	seen := make([]bool, nR)
	for l, r := range matchL {
		if r == NoMatch {
			continue
		}
		if r < 0 || r >= nR {
			t.Fatalf("left %d matched out of range: %d", l, r)
		}
		if seen[r] {
			t.Fatalf("right %d matched twice", r)
		}
		seen[r] = true
		found := false
		for _, x := range adj[l] {
			if x == r {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) is not an edge", l, r)
		}
	}
}

func TestMaxCardinalitySimple(t *testing.T) {
	// Perfect matching exists on 3x3.
	adj := [][]int{{0, 1}, {0}, {1, 2}}
	m := MaxCardinality(3, 3, adj)
	checkValidMatching(t, 3, m, adj)
	if Cardinality(m) != 3 {
		t.Fatalf("cardinality = %d, want 3", Cardinality(m))
	}
}

func TestMaxCardinalityEmpty(t *testing.T) {
	if m := MaxCardinality(0, 0, nil); len(m) != 0 {
		t.Fatal("empty graph should give empty matching")
	}
	m := MaxCardinality(2, 2, [][]int{{}, {}})
	if Cardinality(m) != 0 {
		t.Fatal("edgeless graph must have empty matching")
	}
}

func TestQuickMaxCardinalityMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL, nR, adj := randomBipartite(rng, 7)
		m := MaxCardinality(nL, nR, adj)
		// Validity.
		seen := make([]bool, nR)
		for l, r := range m {
			if r == NoMatch {
				continue
			}
			if seen[r] {
				return false
			}
			seen[r] = true
			ok := false
			for _, x := range adj[l] {
				if x == r {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return Cardinality(m) == bruteMaxCardinality(nL, nR, adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestMinCostAssignmentKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total := MinCostAssignment(cost)
	if total != 5 {
		t.Fatalf("total = %v, want 5", total)
	}
	// Optimal: row0->col1 (1), row1->col0 (2), row2->col2 (2).
	want := []int{1, 0, 2}
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
}

func TestMinCostAssignmentEmpty(t *testing.T) {
	if a, c := MinCostAssignment(nil); a != nil || c != 0 {
		t.Fatal("empty assignment should be nil, 0")
	}
}

func TestMaxWeightSimple(t *testing.T) {
	adj := [][]int{{0, 1}, {0}}
	w := func(l, r int) float64 {
		if l == 0 && r == 0 {
			return 10
		}
		if l == 0 && r == 1 {
			return 3
		}
		return 4 // (1,0)
	}
	m := MaxWeight(2, 2, adj, w)
	checkValidMatching(t, 2, m, adj)
	// Optimal is the single heavy edge (0,0): 10 beats 3+4=7.
	if got := MatchWeight(m, w); got != 10 {
		t.Fatalf("weight = %v, want 10", got)
	}
}

func TestQuickMaxWeightMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL, nR, adj := randomBipartite(rng, 6)
		weights := make(map[[2]int]float64)
		for l := range adj {
			for _, r := range adj[l] {
				weights[[2]int{l, r}] = float64(1 + rng.Intn(20))
			}
		}
		w := func(l, r int) float64 { return weights[[2]int{l, r}] }
		m := MaxWeight(nL, nR, adj, w)
		got := MatchWeight(m, w)
		want := bruteMaxWeight(nL, nR, adj, w)
		return got > want-1e-9 && got < want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMaxWeightIsHalfApprox(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL, nR, adj := randomBipartite(rng, 6)
		weights := make(map[[2]int]float64)
		for l := range adj {
			for _, r := range adj[l] {
				weights[[2]int{l, r}] = float64(1 + rng.Intn(20))
			}
		}
		w := func(l, r int) float64 { return weights[[2]int{l, r}] }
		g := GreedyMaxWeight(nL, nR, adj, w)
		opt := bruteMaxWeight(nL, nR, adj, w)
		return MatchWeight(g, w) >= opt/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacitatedMaxCardinalityRespectsCaps(t *testing.T) {
	capL := []int{2, 1}
	capR := []int{1, 2}
	edges := []Edge{{0, 0, 0}, {0, 1, 0}, {0, 1, 0}, {1, 0, 0}, {1, 1, 0}}
	sel := CapacitatedMaxCardinality(capL, capR, edges)
	loadL := make([]int, 2)
	loadR := make([]int, 2)
	for _, i := range sel {
		loadL[edges[i].L]++
		loadR[edges[i].R]++
	}
	for l, c := range capL {
		if loadL[l] > c {
			t.Fatalf("left %d over capacity", l)
		}
	}
	for r, c := range capR {
		if loadR[r] > c {
			t.Fatalf("right %d over capacity", r)
		}
	}
	if len(sel) != 3 {
		t.Fatalf("selected %d edges, want 3", len(sel))
	}
}

func TestCapacitatedMaxWeightPicksHeavy(t *testing.T) {
	capL := []int{1}
	capR := []int{1, 1}
	edges := []Edge{{0, 0, 5}, {0, 1, 9}}
	sel := CapacitatedMaxWeight(capL, capR, edges)
	if len(sel) != 1 || edges[sel[0]].Weight != 9 {
		t.Fatalf("selected %v, want the weight-9 edge", sel)
	}
}

// Property: capacitated max cardinality with unit caps equals Hopcroft-Karp.
func TestQuickCapacitatedUnitEqualsHK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL, nR, adj := randomBipartite(rng, 6)
		capL := make([]int, nL)
		capR := make([]int, nR)
		for i := range capL {
			capL[i] = 1
		}
		for i := range capR {
			capR[i] = 1
		}
		var edges []Edge
		for l := range adj {
			for _, r := range adj[l] {
				edges = append(edges, Edge{l, r, 0})
			}
		}
		sel := CapacitatedMaxCardinality(capL, capR, edges)
		hk := MaxCardinality(nL, nR, adj)
		return len(sel) == Cardinality(hk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: capacitated max weight with unit caps equals Hungarian answer.
func TestQuickCapacitatedWeightEqualsHungarian(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL, nR, adj := randomBipartite(rng, 5)
		weights := make(map[[2]int]int)
		var edges []Edge
		for l := range adj {
			for _, r := range adj[l] {
				wt := 1 + rng.Intn(15)
				weights[[2]int{l, r}] = wt
				edges = append(edges, Edge{l, r, wt})
			}
		}
		capL := make([]int, nL)
		capR := make([]int, nR)
		for i := range capL {
			capL[i] = 1
		}
		for i := range capR {
			capR[i] = 1
		}
		sel := CapacitatedMaxWeight(capL, capR, edges)
		total := 0
		for _, i := range sel {
			total += edges[i].Weight
		}
		w := func(l, r int) float64 { return float64(weights[[2]int{l, r}]) }
		m := MaxWeight(nL, nR, adj, w)
		return float64(total) == MatchWeight(m, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
