package matching

import "flowsched/internal/flownet"

// Edge is a candidate edge for capacitated matching: it joins left vertex L
// to right vertex R with an integer weight (only used by the weighted
// variants; the unit of "use" is one edge regardless of weight).
type Edge struct {
	L, R   int
	Weight int
}

// CapacitatedMaxCardinality selects a maximum number of edges such that
// each left vertex l appears in at most capL[l] selected edges and each
// right vertex r in at most capR[r]. It returns the indices of selected
// edges. This is the b-matching generalization needed for switches with
// non-unit port capacities; solved by max flow.
func CapacitatedMaxCardinality(capL, capR []int, edges []Edge) []int {
	nL, nR := len(capL), len(capR)
	g := flownet.New(nL + nR + 2)
	s, t := nL+nR, nL+nR+1
	for l, c := range capL {
		g.AddEdge(s, l, c, 0)
	}
	for r, c := range capR {
		g.AddEdge(nL+r, t, c, 0)
	}
	ids := make([]int, len(edges))
	for i, e := range edges {
		ids[i] = g.AddEdge(e.L, nL+e.R, 1, 0)
	}
	g.MaxFlow(s, t)
	var selected []int
	for i := range edges {
		if g.Flow(ids[i]) > 0 {
			selected = append(selected, i)
		}
	}
	return selected
}

// CapacitatedMaxWeight selects a set of edges of maximum total weight
// subject to the same degree capacities as CapacitatedMaxCardinality.
// Weights must be non-negative. It returns the indices of selected edges.
// Solved by min-cost flow that augments only profitable paths.
func CapacitatedMaxWeight(capL, capR []int, edges []Edge) []int {
	nL, nR := len(capL), len(capR)
	g := flownet.New(nL + nR + 2)
	s, t := nL+nR, nL+nR+1
	for l, c := range capL {
		g.AddEdge(s, l, c, 0)
	}
	for r, c := range capR {
		g.AddEdge(nL+r, t, c, 0)
	}
	ids := make([]int, len(edges))
	for i, e := range edges {
		w := e.Weight
		if w < 0 {
			w = 0
		}
		ids[i] = g.AddEdge(e.L, nL+e.R, 1, -w)
	}
	g.MaxProfitFlow(s, t)
	var selected []int
	for i := range edges {
		if g.Flow(ids[i]) > 0 {
			selected = append(selected, i)
		}
	}
	return selected
}
