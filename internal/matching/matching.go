// Package matching implements bipartite matching algorithms used by the
// scheduling heuristics and the Birkhoff-von Neumann decomposition:
// Hopcroft-Karp maximum-cardinality matching, Hungarian maximum-weight
// matching, greedy matching, and capacitated variants built on min-cost
// flow. It replaces the Lemon graph library used by the paper's original
// simulator (Section 5.2.2).
//
//flowsched:deterministic
package matching

import "sort"

// NoMatch marks an unmatched vertex in matching results.
const NoMatch = -1

// MaxCardinality computes a maximum-cardinality matching of the bipartite
// graph with nL left and nR right vertices and adjacency lists adj (for
// each left vertex, the right vertices it neighbours). It returns, for each
// left vertex, the matched right vertex or NoMatch. Hopcroft-Karp,
// O(E*sqrt(V)).
func MaxCardinality(nL, nR int, adj [][]int) []int {
	matchL := make([]int, nL)
	matchR := make([]int, nR)
	for i := range matchL {
		matchL[i] = NoMatch
	}
	for j := range matchR {
		matchR[j] = NoMatch
	}
	dist := make([]int, nL)
	queue := make([]int, 0, nL)
	const inf = int(^uint(0) >> 1)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nL; u++ {
			if matchL[u] == NoMatch {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == NoMatch {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == NoMatch || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < nL; u++ {
			if matchL[u] == NoMatch {
				dfs(u)
			}
		}
	}
	return matchL
}

// Cardinality returns the number of matched left vertices in a matching
// produced by MaxCardinality or MaxWeight.
func Cardinality(matchL []int) int {
	c := 0
	for _, v := range matchL {
		if v != NoMatch {
			c++
		}
	}
	return c
}

// MinCostAssignment solves the n x n assignment problem for the given cost
// matrix, returning for each row the assigned column and the total cost.
// Hungarian algorithm with potentials, O(n^3). The matrix must be square.
func MinCostAssignment(cost [][]float64) ([]int, float64) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	const inf = 1e300
	// 1-indexed potentials over rows (u) and columns (v); way[j] is the
	// previous column on the augmenting path; p[j] is the row assigned to
	// column j.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	total := 0.0
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return assign, total
}

// MaxWeight computes a maximum-weight matching of the bipartite graph given
// by adjacency lists adj and edge weights weight(l, r) >= 0 for neighbouring
// pairs. Missing edges are treated as weight 0 and never matched. It
// returns, for each left vertex, the matched right vertex or NoMatch.
// Implemented by padding to a square assignment problem, O(max(nL,nR)^3).
func MaxWeight(nL, nR int, adj [][]int, weight func(l, r int) float64) []int {
	n := nL
	if nR > n {
		n = nR
	}
	if n == 0 {
		return nil
	}
	// Build a dense cost matrix for minimization: cost = -weight, with 0
	// for non-edges and padding.
	cost := make([][]float64, n)
	isEdge := make([]map[int]bool, nL)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	for l := 0; l < nL; l++ {
		isEdge[l] = make(map[int]bool, len(adj[l]))
		for _, r := range adj[l] {
			w := weight(l, r)
			if w < 0 {
				w = 0
			}
			if -w < cost[l][r] {
				cost[l][r] = -w
			}
			isEdge[l][r] = true
		}
	}
	assign, _ := MinCostAssignment(cost)
	matchL := make([]int, nL)
	for l := 0; l < nL; l++ {
		r := assign[l]
		if r < nR && isEdge[l][r] && weight(l, r) > 0 {
			matchL[l] = r
		} else {
			matchL[l] = NoMatch
		}
	}
	return matchL
}

// MatchWeight sums weight(l, matchL[l]) over matched left vertices.
func MatchWeight(matchL []int, weight func(l, r int) float64) float64 {
	total := 0.0
	for l, r := range matchL {
		if r != NoMatch {
			total += weight(l, r)
		}
	}
	return total
}

// GreedyMaxWeight computes a maximal matching by repeatedly taking the
// heaviest available edge. It is a 1/2-approximation of maximum weight and
// is used as a fast ablation baseline for the heuristics.
func GreedyMaxWeight(nL, nR int, adj [][]int, weight func(l, r int) float64) []int {
	type cand struct {
		l, r int
		w    float64
	}
	var edges []cand
	for l := 0; l < nL; l++ {
		for _, r := range adj[l] {
			edges = append(edges, cand{l, r, weight(l, r)})
		}
	}
	// Descending weight, ties broken by (l, r) for determinism.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].l != edges[j].l {
			return edges[i].l < edges[j].l
		}
		return edges[i].r < edges[j].r
	})
	matchL := make([]int, nL)
	for i := range matchL {
		matchL[i] = NoMatch
	}
	usedR := make([]bool, nR)
	for _, e := range edges {
		if matchL[e.l] == NoMatch && !usedR[e.r] {
			matchL[e.l] = e.r
			usedR[e.r] = true
		}
	}
	return matchL
}
