package lp

import (
	"errors"
	"math"
)

// ErrSingular is returned when a basis matrix cannot be factorized.
var ErrSingular = errors.New("lp: singular basis matrix")

// luFactor is a dense LU factorization with partial pivoting of an n x n
// matrix, supporting solves with the matrix and its transpose. It is the
// kernel behind the revised simplex basis handling.
type luFactor struct {
	n    int
	lu   []float64 // row-major combined L (unit diagonal) and U
	perm []int     // row permutation: solving uses b[perm[i]]
}

// factorize computes the LU factorization of the dense row-major matrix a
// (which is overwritten conceptually; a copy is taken).
func factorize(n int, a []float64) (*luFactor, error) {
	f := &luFactor{n: n, lu: append([]float64(nil), a...), perm: make([]int, n)}
	for i := range f.perm {
		f.perm[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Partial pivot: find max |lu[i][k]| for i >= k.
		p := k
		maxAbs := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		if p != k {
			f.perm[k], f.perm[p] = f.perm[p], f.perm[k]
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			row := lu[i*n : i*n+n]
			prow := lu[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				row[j] -= m * prow[j]
			}
		}
	}
	return f, nil
}

// solve solves A x = b in place: on return, b holds x.
func (f *luFactor) solve(b []float64) {
	n := f.n
	// Apply permutation.
	tmp := make([]float64, n)
	for i := 0; i < n; i++ {
		tmp[i] = b[f.perm[i]]
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		s := tmp[i]
		row := f.lu[i*n : i*n+n]
		for j := 0; j < i; j++ {
			s -= row[j] * tmp[j]
		}
		tmp[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := tmp[i]
		row := f.lu[i*n : i*n+n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * tmp[j]
		}
		tmp[i] = s / row[i]
	}
	copy(b, tmp)
}

// solveT solves A^T x = b in place: on return, b holds x.
func (f *luFactor) solveT(b []float64) {
	n := f.n
	// A = P^T L U, so A^T = U^T L^T P. Solve U^T z = b, then L^T w = z,
	// then x = P^T w (i.e., x[perm[i]] = w[i]).
	// Forward substitution with U^T (U is upper, so U^T is lower).
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= f.lu[j*n+i] * b[j]
		}
		b[i] = s / f.lu[i*n+i]
	}
	// Back substitution with L^T (unit diagonal).
	for i := n - 2; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[j*n+i] * b[j]
		}
		b[i] = s
	}
	// Undo permutation.
	tmp := make([]float64, n)
	for i := 0; i < n; i++ {
		tmp[f.perm[i]] = b[i]
	}
	copy(b, tmp)
}
