package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestIterationLimitSurfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetCost(j, rng.Float64()-0.5)
		p.SetBounds(j, 0, 1)
	}
	for r := 0; r < 20; r++ {
		idx := make([]int, n)
		val := make([]float64, n)
		for j := 0; j < n; j++ {
			idx[j] = j
			val[j] = rng.Float64()
		}
		p.AddRow(idx, val, LE, float64(n)/4)
	}
	sol, err := p.SolveWith(SolveOptions{MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("status = %v, want iteration-limit", sol.Status)
	}
}

func TestNegativeRHSEquality(t *testing.T) {
	// x - y = -3 with x,y in [0,5]; minimize x+y => x=0, y=3.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	p.SetBounds(0, 0, 5)
	p.SetBounds(1, 0, 5)
	p.AddRow([]int{0, 1}, []float64{1, -1}, EQ, -3)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-3) > 1e-8 {
		t.Fatalf("obj = %v, want 3", sol.Obj)
	}
}

func TestRedundantRows(t *testing.T) {
	// Duplicate constraints should not break the factorization.
	p := NewProblem(2)
	p.SetCost(0, -1)
	p.SetBounds(0, 0, 10)
	p.SetBounds(1, 0, 10)
	for i := 0; i < 4; i++ {
		p.AddRow([]int{0, 1}, []float64{1, 1}, LE, 6)
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Obj+6) > 1e-8 {
		t.Fatalf("obj = %v, want -6", sol.Obj)
	}
}

func TestEmptyRowsAndVariables(t *testing.T) {
	// A constraint touching no variables and variables in no constraint.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetBounds(1, 0, 2)
	p.AddRow(nil, nil, LE, 5) // vacuously true
	p.AddRow([]int{0}, []float64{1}, GE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-1) > 1e-8 {
		t.Fatalf("obj = %v, want 1", sol.Obj)
	}
}

func TestVacuouslyInfeasibleEmptyRow(t *testing.T) {
	p := NewProblem(1)
	p.AddRow(nil, nil, GE, 1) // 0 >= 1
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestRowOutOfRangeVariable(t *testing.T) {
	p := NewProblem(1)
	p.AddRow([]int{5}, []float64{1}, LE, 1)
	if _, err := p.Solve(); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
}

func TestAddRowLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProblem(1).AddRow([]int{0}, []float64{1, 2}, LE, 1)
}

func TestFixedVariableViaBounds(t *testing.T) {
	// x fixed to 2 by bounds, minimize -x subject to x <= 10.
	p := NewProblem(1)
	p.SetCost(0, -1)
	p.SetBounds(0, 2, 2)
	p.AddRow([]int{0}, []float64{1}, LE, 10)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj+2) > 1e-9 {
		t.Fatalf("obj = %v, want -2", sol.Obj)
	}
}

func TestLargeSparseSchedulingShapedLP(t *testing.T) {
	// A mid-size LP with the exact structure of the paper's relaxations:
	// 60 flows x 20 rounds, 8 ports; checks solver scalability in tests.
	rng := rand.New(rand.NewSource(5))
	nFlows, nRounds, nPorts := 60, 20, 4
	nv := nFlows * nRounds
	p := NewProblem(nv)
	vid := func(f, t int) int { return f*nRounds + t }
	type ptKey struct{ p, t int }
	capRows := map[ptKey][]int{}
	for f := 0; f < nFlows; f++ {
		in := rng.Intn(nPorts)
		out := nPorts + rng.Intn(nPorts)
		idx := make([]int, nRounds)
		val := make([]float64, nRounds)
		for t0 := 0; t0 < nRounds; t0++ {
			j := vid(f, t0)
			p.SetCost(j, float64(t0)+0.5)
			p.SetBounds(j, 0, 1)
			idx[t0] = j
			val[t0] = 1
			capRows[ptKey{in, t0}] = append(capRows[ptKey{in, t0}], j)
			capRows[ptKey{out, t0}] = append(capRows[ptKey{out, t0}], j)
		}
		p.AddRow(idx, val, GE, 1)
	}
	for _, vars := range capRows {
		val := make([]float64, len(vars))
		for i := range val {
			val[i] = 1
		}
		p.AddRow(vars, val, LE, 2)
	}
	sol := solveOK(t, p)
	// Every flow contributes at least 0.5.
	if sol.Obj < float64(nFlows)/2-1e-6 {
		t.Fatalf("objective %v below trivial bound", sol.Obj)
	}
}

func TestDualFeasibilityCertificate(t *testing.T) {
	// After solving, reconstruct reduced costs via the returned solution:
	// for a vertex optimum of min c x with x in [l,u], every variable at
	// lower bound must not improve by increasing, and vice versa. We
	// verify with a finite-difference probe against random feasible
	// directions.
	rng := rand.New(rand.NewSource(11))
	p := NewProblem(6)
	for j := 0; j < 6; j++ {
		p.SetCost(j, rng.Float64()*4-2)
		p.SetBounds(j, 0, 3)
	}
	p.AddRow([]int{0, 1, 2}, []float64{1, 1, 1}, LE, 4)
	p.AddRow([]int{3, 4, 5}, []float64{1, 2, 1}, GE, 2)
	p.AddRow([]int{0, 3}, []float64{1, 1}, EQ, 2)
	sol := solveOK(t, p)
	// Probe: random small feasible perturbations never decrease cost.
	for probe := 0; probe < 500; probe++ {
		x := append([]float64(nil), sol.X...)
		for k := 0; k < 2; k++ {
			j := rng.Intn(6)
			x[j] += (rng.Float64() - 0.5) * 0.05
		}
		if p.CheckFeasible(x, 1e-9) != nil {
			continue
		}
		if p.Objective(x) < sol.Obj-1e-7 {
			t.Fatalf("found feasible improvement: %v < %v", p.Objective(x), sol.Obj)
		}
	}
}
