package lp

import (
	"fmt"
	"math"
)

const (
	feasTol       = 1e-7 // bound/row feasibility tolerance
	optTol        = 1e-7 // reduced-cost optimality tolerance
	pivotTol      = 1e-9 // minimum pivot magnitude
	refactorEvery = 64   // eta vectors kept before refactorization
	degenLimit    = 400  // degenerate pivots before switching to Bland
	phase1Tol     = 1e-6 // residual infeasibility accepted after phase 1
)

// spCol is a sparse column of the constraint matrix.
type spCol struct {
	ri []int
	rv []float64
}

// simplex holds the working state of a solve.
type simplex struct {
	m, n    int // rows; total columns (structural + slack + artificial)
	nStruct int
	cols    []spCol
	cost    []float64 // current-phase cost
	lower   []float64
	upper   []float64
	rhs     []float64

	basis   []int  // basis[i] = column basic in row i
	pos     []int  // pos[j] = row position if basic, else -1
	atUpper []bool // nonbasic status
	x       []float64

	lu    *luFactor
	etas  []eta
	iters int
	bland bool
	degen int

	maxIters int
}

type eta struct {
	r int
	w []float64
}

// SolveOptions tunes the solver.
type SolveOptions struct {
	// MaxIters bounds total pivots (0 means automatic).
	MaxIters int
}

// Solve runs the two-phase revised simplex method and returns an optimal
// basic solution, or a solution whose Status explains why none exists.
func (p *Problem) Solve() (*Solution, error) { return p.SolveWith(SolveOptions{}) }

// SolveWith is Solve with explicit options.
func (p *Problem) SolveWith(opt SolveOptions) (*Solution, error) {
	m := len(p.rows)
	s := &simplex{
		m:       m,
		nStruct: p.n,
	}
	// Columns: structural, then one slack per row, artificials appended
	// during initialization as needed.
	total := p.n + m
	s.cols = make([]spCol, total)
	s.lower = make([]float64, total)
	s.upper = make([]float64, total)
	s.rhs = make([]float64, m)
	for i, r := range p.rows {
		s.rhs[i] = r.rhs
		for k, j := range r.idx {
			if j < 0 || j >= p.n {
				return nil, fmt.Errorf("lp: row %d references variable %d out of range", i, j)
			}
			s.cols[j].ri = append(s.cols[j].ri, i)
			s.cols[j].rv = append(s.cols[j].rv, r.val[k])
		}
	}
	for j := 0; j < p.n; j++ {
		s.lower[j] = p.lower[j]
		s.upper[j] = p.upper[j]
		if math.IsInf(s.lower[j], -1) && math.IsInf(s.upper[j], 1) {
			return nil, fmt.Errorf("lp: variable %d is free; free variables are not supported", j)
		}
		if s.lower[j] > s.upper[j] {
			return &Solution{Status: Infeasible}, nil
		}
	}
	for i, r := range p.rows {
		j := p.n + i
		s.cols[j] = spCol{ri: []int{i}, rv: []float64{1}}
		switch r.sense {
		case LE:
			s.lower[j], s.upper[j] = 0, Inf
		case GE:
			s.lower[j], s.upper[j] = math.Inf(-1), 0
		case EQ:
			s.lower[j], s.upper[j] = 0, 0
		}
	}
	s.n = total
	s.maxIters = opt.MaxIters
	if s.maxIters == 0 {
		s.maxIters = 200*(m+1) + 20*p.n + 20000
	}

	if m == 0 {
		return p.solveUnconstrained()
	}

	// Nonbasic start for structural and slack columns: the finite bound
	// (preferring lower).
	s.x = make([]float64, total)
	s.atUpper = make([]bool, total)
	s.pos = make([]int, total)
	for j := range s.pos {
		s.pos[j] = -1
	}
	for j := 0; j < total; j++ {
		if !math.IsInf(s.lower[j], -1) {
			s.x[j] = s.lower[j]
		} else {
			s.x[j] = s.upper[j]
			s.atUpper[j] = true
		}
	}

	// Residuals decide the initial basis: slack if its value fits its
	// bounds, otherwise an artificial column.
	res := make([]float64, m)
	copy(res, s.rhs)
	for j := 0; j < p.n; j++ {
		if v := s.x[j]; v != 0 {
			for k, i := range s.cols[j].ri {
				res[i] -= s.cols[j].rv[k] * v
			}
		}
	}
	s.basis = make([]int, m)
	needPhase1 := false
	var phase1Cost []float64
	for i := 0; i < m; i++ {
		sj := p.n + i
		if res[i] >= s.lower[sj]-feasTol && res[i] <= s.upper[sj]+feasTol {
			s.basis[i] = sj
			s.pos[sj] = i
			s.x[sj] = res[i]
			continue
		}
		// Clamp slack to its nearest bound and absorb the residual in a
		// fresh artificial with coefficient chosen so it starts >= 0.
		var slackVal, resid float64
		if res[i] > s.upper[sj] {
			slackVal = s.upper[sj]
			resid = res[i] - slackVal
			s.atUpper[sj] = true
		} else {
			slackVal = s.lower[sj]
			resid = res[i] - slackVal
			s.atUpper[sj] = false
		}
		s.x[sj] = slackVal
		sigma := 1.0
		if resid < 0 {
			sigma = -1
		}
		aj := len(s.cols)
		s.cols = append(s.cols, spCol{ri: []int{i}, rv: []float64{sigma}})
		s.lower = append(s.lower, 0)
		s.upper = append(s.upper, Inf)
		s.x = append(s.x, resid/sigma)
		s.atUpper = append(s.atUpper, false)
		s.pos = append(s.pos, i)
		s.basis[i] = aj
		needPhase1 = true
	}
	s.n = len(s.cols)

	if err := s.refactor(); err != nil {
		return nil, err
	}

	if needPhase1 {
		phase1Cost = make([]float64, s.n)
		for j := total; j < s.n; j++ {
			phase1Cost[j] = 1
		}
		s.cost = phase1Cost
		st := s.iterate()
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iterations: s.iters}, nil
		}
		infeas := 0.0
		for j := total; j < s.n; j++ {
			infeas += s.x[j]
		}
		if infeas > phase1Tol {
			return &Solution{Status: Infeasible, Iterations: s.iters}, nil
		}
		// Freeze artificials at zero.
		for j := total; j < s.n; j++ {
			s.lower[j], s.upper[j] = 0, 0
			s.x[j] = 0
		}
	}

	// Phase 2.
	s.cost = make([]float64, s.n)
	copy(s.cost, p.cost)
	s.bland = false
	s.degen = 0
	st := s.iterate()
	if st == Unbounded {
		return &Solution{Status: Unbounded, Iterations: s.iters}, nil
	}
	if st == IterLimit {
		return &Solution{Status: IterLimit, Iterations: s.iters}, nil
	}
	// Final accuracy pass.
	if err := s.refactor(); err != nil {
		return nil, err
	}
	x := make([]float64, p.n)
	copy(x, s.x[:p.n])
	// Dual values: y = B^{-T} c_B at the final basis.
	y := make([]float64, m)
	for i, j := range s.basis {
		y[i] = s.cost[j]
	}
	s.btran(y)
	sol := &Solution{Status: Optimal, X: x, Obj: p.Objective(x), Dual: y, Iterations: s.iters}
	return sol, nil
}

// solveUnconstrained handles problems without rows: each variable sits at
// the bound favoured by its cost.
func (p *Problem) solveUnconstrained() (*Solution, error) {
	x := make([]float64, p.n)
	for j := 0; j < p.n; j++ {
		switch {
		case p.cost[j] > 0:
			if math.IsInf(p.lower[j], -1) {
				return &Solution{Status: Unbounded}, nil
			}
			x[j] = p.lower[j]
		case p.cost[j] < 0:
			if math.IsInf(p.upper[j], 1) {
				return &Solution{Status: Unbounded}, nil
			}
			x[j] = p.upper[j]
		default:
			if !math.IsInf(p.lower[j], -1) {
				x[j] = p.lower[j]
			} else {
				x[j] = p.upper[j]
			}
		}
	}
	return &Solution{Status: Optimal, X: x, Obj: p.Objective(x)}, nil
}

// refactor rebuilds the dense LU of the basis and recomputes basic values
// from scratch for numerical hygiene.
func (s *simplex) refactor() error {
	m := s.m
	dense := make([]float64, m*m)
	for i, j := range s.basis {
		col := s.cols[j]
		for k, r := range col.ri {
			dense[r*m+i] = col.rv[k]
		}
	}
	f, err := factorize(m, dense)
	if err != nil {
		return err
	}
	s.lu = f
	s.etas = s.etas[:0]
	// x_B = B^{-1} (b - N x_N).
	res := make([]float64, m)
	copy(res, s.rhs)
	for j := 0; j < s.n; j++ {
		if s.pos[j] >= 0 {
			continue
		}
		if v := s.x[j]; v != 0 {
			col := s.cols[j]
			for k, r := range col.ri {
				res[r] -= col.rv[k] * v
			}
		}
	}
	s.lu.solve(res)
	for i, j := range s.basis {
		s.x[j] = res[i]
	}
	return nil
}

// ftran computes w = B^{-1} v in place.
func (s *simplex) ftran(v []float64) {
	s.lu.solve(v)
	for _, e := range s.etas {
		alpha := v[e.r] / e.w[e.r]
		if alpha != 0 {
			for i, wi := range e.w {
				if wi != 0 {
					v[i] -= wi * alpha
				}
			}
		}
		v[e.r] = alpha
	}
}

// btran computes y = B^{-T} v in place.
func (s *simplex) btran(v []float64) {
	for k := len(s.etas) - 1; k >= 0; k-- {
		e := s.etas[k]
		sum := 0.0
		for i, wi := range e.w {
			if i != e.r && wi != 0 {
				sum += wi * v[i]
			}
		}
		v[e.r] = (v[e.r] - sum) / e.w[e.r]
	}
	s.lu.solveT(v)
}

// reducedCost returns c_j - y . A_j.
func (s *simplex) reducedCost(j int, y []float64) float64 {
	d := s.cost[j]
	col := s.cols[j]
	for k, r := range col.ri {
		d -= col.rv[k] * y[r]
	}
	return d
}

// iterate runs primal simplex pivots with the current cost vector until
// optimality, unboundedness, or the iteration limit.
func (s *simplex) iterate() Status {
	m := s.m
	y := make([]float64, m)
	w := make([]float64, m)
	for {
		if s.iters >= s.maxIters {
			return IterLimit
		}
		// BTRAN for duals.
		for i := range y {
			y[i] = 0
		}
		for i, j := range s.basis {
			y[i] = s.cost[j]
		}
		s.btran(y)

		// Pricing.
		enter := -1
		enterDir := 1.0
		best := optTol
		for j := 0; j < s.n; j++ {
			if s.pos[j] >= 0 || s.lower[j] == s.upper[j] {
				continue
			}
			d := s.reducedCost(j, y)
			if !s.atUpper[j] && d < -optTol {
				score := -d
				if s.bland {
					enter = j
					enterDir = 1
					break
				}
				if score > best {
					best = score
					enter = j
					enterDir = 1
				}
			} else if s.atUpper[j] && d > optTol {
				score := d
				if s.bland {
					enter = j
					enterDir = -1
					break
				}
				if score > best {
					best = score
					enter = j
					enterDir = -1
				}
			}
		}
		if enter < 0 {
			return Optimal
		}

		// FTRAN of the entering column.
		for i := range w {
			w[i] = 0
		}
		col := s.cols[enter]
		for k, r := range col.ri {
			w[r] = col.rv[k]
		}
		s.ftran(w)

		// Ratio test with bounded variables. Entering moves by
		// enterDir * delta >= 0; basic i changes by -enterDir*delta*w[i].
		delta := math.Inf(1)
		leave := -1
		leaveToUpper := false
		if !math.IsInf(s.upper[enter], 1) && !math.IsInf(s.lower[enter], -1) {
			delta = s.upper[enter] - s.lower[enter]
		}
		for i := 0; i < m; i++ {
			wi := w[i] * enterDir
			if math.Abs(wi) < pivotTol {
				continue
			}
			jb := s.basis[i]
			var ratio float64
			var toUpper bool
			if wi > 0 {
				// Basic decreases toward its lower bound.
				if math.IsInf(s.lower[jb], -1) {
					continue
				}
				ratio = (s.x[jb] - s.lower[jb]) / wi
				toUpper = false
			} else {
				if math.IsInf(s.upper[jb], 1) {
					continue
				}
				ratio = (s.x[jb] - s.upper[jb]) / wi
				toUpper = true
			}
			if ratio < 0 {
				ratio = 0
			}
			if ratio < delta-pivotTol ||
				(ratio < delta+pivotTol && leave >= 0 && betterLeave(s, i, leave, w)) {
				delta = ratio
				leave = i
				leaveToUpper = toUpper
			}
		}
		if math.IsInf(delta, 1) {
			return Unbounded
		}

		if delta <= feasTol {
			s.degen++
			if s.degen > degenLimit {
				s.bland = true
			}
		} else {
			s.degen = 0
			s.bland = false
		}

		if leave < 0 {
			// Bound flip: entering jumps to its other bound.
			s.applyStep(enterDir, delta, w)
			s.atUpper[enter] = !s.atUpper[enter]
			if s.atUpper[enter] {
				s.x[enter] = s.upper[enter]
			} else {
				s.x[enter] = s.lower[enter]
			}
			s.iters++
			continue
		}

		// Pivot: update values, basis, and eta file.
		s.applyStep(enterDir, delta, w)
		s.x[enter] += enterDir * delta
		jOut := s.basis[leave]
		if leaveToUpper {
			s.x[jOut] = s.upper[jOut]
			s.atUpper[jOut] = true
		} else {
			s.x[jOut] = s.lower[jOut]
			s.atUpper[jOut] = false
		}
		s.pos[jOut] = -1
		s.basis[leave] = enter
		s.pos[enter] = leave
		s.etas = append(s.etas, eta{r: leave, w: append([]float64(nil), w...)})
		s.iters++
		if len(s.etas) >= refactorEvery {
			if err := s.refactor(); err != nil {
				// Singular update: fall back to a fresh factorization on
				// the next loop; treat as iteration-limit failure.
				return IterLimit
			}
		}
	}
}

// applyStep moves the basic variables for a step of size delta in direction
// dir of the entering column (w = B^{-1} A_enter).
func (s *simplex) applyStep(dir, delta float64, w []float64) {
	if delta == 0 {
		return
	}
	for i, j := range s.basis {
		if w[i] != 0 {
			s.x[j] -= dir * delta * w[i]
		}
	}
}

// betterLeave prefers the leaving row with the larger pivot magnitude among
// near-tied ratios (numerical stability); in Bland mode it prefers the
// lowest basis column index (anti-cycling).
func betterLeave(s *simplex, i, cur int, w []float64) bool {
	if s.bland {
		return s.basis[i] < s.basis[cur]
	}
	return math.Abs(w[i]) > math.Abs(w[cur])
}
