package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// dualIdentityHolds verifies the strong-duality identity at the returned
// basis: obj = y.b - sum_i y_i * slack_i + sum_j d_j * x_j, together with
// dual feasibility sign conditions (reduced costs d_j >= 0 at lower
// bounds, <= 0 at upper bounds; y_i <= 0 on slack LE rows, >= 0 on GE).
func dualIdentityHolds(p *Problem, sol *Solution) bool {
	if sol.Status != Optimal || sol.Dual == nil {
		return false
	}
	y := sol.Dual
	// Reduced costs of structural variables.
	d := make([]float64, p.n)
	for j := 0; j < p.n; j++ {
		d[j] = p.cost[j]
	}
	for i, r := range p.rows {
		for k, j := range r.idx {
			d[j] -= y[i] * r.val[k]
		}
	}
	const tol = 1e-6
	rhs := 0.0
	for i, r := range p.rows {
		slack := r.rhs - p.RowActivity(sol.X, i)
		rhs += y[i]*r.rhs - y[i]*slack
		// Complementary slackness / dual sign by row sense.
		switch r.sense {
		case LE:
			if y[i] > tol {
				return false
			}
			if slack > tol && math.Abs(y[i]) > tol {
				return false
			}
		case GE:
			if y[i] < -tol {
				return false
			}
			if slack < -tol && math.Abs(y[i]) > tol {
				return false
			}
		}
	}
	lhsRest := 0.0
	for j := 0; j < p.n; j++ {
		lhsRest += d[j] * sol.X[j]
		// Dual feasibility at the variable's position.
		atLower := math.Abs(sol.X[j]-p.lower[j]) < 1e-6
		atUpper := !math.IsInf(p.upper[j], 1) && math.Abs(sol.X[j]-p.upper[j]) < 1e-6
		if !atLower && !atUpper { // basic / interior
			if math.Abs(d[j]) > 1e-5 {
				return false
			}
		} else if atLower && !atUpper && d[j] < -1e-5 {
			return false
		} else if atUpper && !atLower && d[j] > 1e-5 {
			return false
		}
	}
	return math.Abs(sol.Obj-(rhs+lhsRest)) < 1e-5*(1+math.Abs(sol.Obj))
}

func TestDualsOnKnownLP(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, y <= 2: optimum (2,2), duals known:
	// row1 tight with y1 = -1, row2 tight with y2 = -1.
	p := NewProblem(2)
	p.SetCost(0, -1)
	p.SetCost(1, -2)
	p.AddRow([]int{0, 1}, []float64{1, 1}, LE, 4)
	p.AddRow([]int{1}, []float64{1}, LE, 2)
	sol := solveOK(t, p)
	if !dualIdentityHolds(p, sol) {
		t.Fatalf("duality identity failed: duals %v", sol.Dual)
	}
	if math.Abs(sol.Dual[0]+1) > 1e-7 || math.Abs(sol.Dual[1]+1) > 1e-7 {
		t.Fatalf("duals = %v, want [-1 -1]", sol.Dual)
	}
}

func TestDualsOnEqualityLP(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, 3)
	p.SetCost(1, 5)
	p.AddRow([]int{0, 1}, []float64{1, 1}, EQ, 4)
	sol := solveOK(t, p)
	// All mass on the cheap variable; dual of the equality = 3.
	if math.Abs(sol.Dual[0]-3) > 1e-7 {
		t.Fatalf("dual = %v, want 3", sol.Dual[0])
	}
}

// Property: the strong-duality identity and sign conditions hold on random
// feasible LPs (certifying optimality independently of the primal path).
func TestQuickDualCertificates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		p := NewProblem(n)
		anchor := make([]float64, n)
		for j := 0; j < n; j++ {
			p.SetCost(j, float64(rng.Intn(9)-4))
			p.SetBounds(j, 0, float64(1+rng.Intn(4)))
			anchor[j] = rng.Float64() * p.upper[j]
		}
		for r := 0; r < rng.Intn(4); r++ {
			var idx []int
			var val []float64
			act := 0.0
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					c := float64(rng.Intn(5) - 2)
					idx = append(idx, j)
					val = append(val, c)
					act += c * anchor[j]
				}
			}
			if len(idx) == 0 {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				p.AddRow(idx, val, LE, act+rng.Float64())
			case 1:
				p.AddRow(idx, val, GE, act-rng.Float64())
			default:
				p.AddRow(idx, val, EQ, act)
			}
		}
		if p.NumRows() == 0 {
			return true // unconstrained path has no duals
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return sol != nil && sol.Status != Optimal // infeasible draws are fine
		}
		return dualIdentityHolds(p, sol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
