package lp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"flowsched/internal/flownet"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("solve error: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if err := p.CheckFeasible(sol.X, 1e-6); err != nil {
		t.Fatalf("solution infeasible: %v", err)
	}
	return sol
}

func TestSimpleLE(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2  => x=2... check:
	// optimum at (2,2) or (3,1): obj(2,2) = -6, obj(3,1) = -5 => (2,2).
	p := NewProblem(2)
	p.SetCost(0, -1)
	p.SetCost(1, -2)
	p.AddRow([]int{0, 1}, []float64{1, 1}, LE, 4)
	p.AddRow([]int{0}, []float64{1}, LE, 3)
	p.AddRow([]int{1}, []float64{1}, LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj+6) > 1e-8 {
		t.Fatalf("obj = %v, want -6", sol.Obj)
	}
}

func TestEqualityRow(t *testing.T) {
	// min x + y s.t. x + y = 5, x <= 2 => obj 5 with x<=2.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	p.AddRow([]int{0, 1}, []float64{1, 1}, EQ, 5)
	p.AddRow([]int{0}, []float64{1}, LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-5) > 1e-8 {
		t.Fatalf("obj = %v, want 5", sol.Obj)
	}
}

func TestGERow(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x - y >= -1 => optimum x=1.5,y=2.5
	// obj=10.5; check: minimize, push y down... vertices: (4,0) obj 8;
	// intersection x+y=4,y-x=1 -> (1.5,2.5) obj 10.5. So best is (4,0): 8.
	p := NewProblem(2)
	p.SetCost(0, 2)
	p.SetCost(1, 3)
	p.AddRow([]int{0, 1}, []float64{1, 1}, GE, 4)
	p.AddRow([]int{0, 1}, []float64{1, -1}, GE, -1)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-8) > 1e-8 {
		t.Fatalf("obj = %v, want 8", sol.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddRow([]int{0}, []float64{1}, GE, 2)
	p.AddRow([]int{0}, []float64{1}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 3, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, -1)
	p.AddRow([]int{0, 1}, []float64{1, -1}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestUnconstrainedCases(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, 5)
	p.SetCost(1, -2)
	p.SetBounds(1, 0, 7)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj+14) > 1e-9 {
		t.Fatalf("obj = %v, want -14", sol.Obj)
	}

	q := NewProblem(1)
	q.SetCost(0, -1) // unbounded above
	s2, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s2.Status)
	}
}

func TestFreeVariableRejected(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, math.Inf(-1), Inf)
	p.AddRow([]int{0}, []float64{1}, LE, 1)
	if _, err := p.Solve(); err == nil {
		t.Fatal("free variable accepted")
	}
}

func TestUpperBoundedVariables(t *testing.T) {
	// Fractional knapsack: max 4a + 3b + 2c with a+b+c <= 2, each in [0,1].
	p := NewProblem(3)
	p.SetCost(0, -4)
	p.SetCost(1, -3)
	p.SetCost(2, -2)
	for j := 0; j < 3; j++ {
		p.SetBounds(j, 0, 1)
	}
	p.AddRow([]int{0, 1, 2}, []float64{1, 1, 1}, LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj+7) > 1e-8 {
		t.Fatalf("obj = %v, want -7", sol.Obj)
	}
}

func TestNegativeLowerBound(t *testing.T) {
	// min x with x >= -5 via bounds and x + y >= -2, y in [0,1].
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetBounds(0, -5, Inf)
	p.SetBounds(1, 0, 1)
	p.AddRow([]int{0, 1}, []float64{1, 1}, GE, -2)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj+3) > 1e-8 {
		t.Fatalf("obj = %v, want -3 (x=-3,y=1)", sol.Obj)
	}
}

func TestDegenerateAssignmentLP(t *testing.T) {
	// 3x3 assignment polytope: min cost matches Hungarian-style optimum 5
	// (same matrix as the matching package test).
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	n := 3
	p := NewProblem(n * n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p.SetCost(i*n+j, cost[i][j])
		}
	}
	for i := 0; i < n; i++ {
		idx := make([]int, n)
		val := make([]float64, n)
		for j := 0; j < n; j++ {
			idx[j] = i*n + j
			val[j] = 1
		}
		p.AddRow(idx, val, EQ, 1)
	}
	for j := 0; j < n; j++ {
		idx := make([]int, n)
		val := make([]float64, n)
		for i := 0; i < n; i++ {
			idx[i] = i*n + j
			val[i] = 1
		}
		p.AddRow(idx, val, EQ, 1)
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-5) > 1e-7 {
		t.Fatalf("obj = %v, want 5", sol.Obj)
	}
}

// Property: LP optimum of random transportation problems equals the exact
// min-cost-flow optimum (integrality of the transportation polytope). This
// cross-validates the simplex against the independent flownet solver.
func TestQuickTransportationMatchesMinCostFlow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nS := 1 + rng.Intn(4)
		nD := 1 + rng.Intn(4)
		supply := make([]int, nS)
		demand := make([]int, nD)
		total := 0
		for i := range supply {
			supply[i] = 1 + rng.Intn(6)
			total += supply[i]
		}
		// Spread total over demands.
		rem := total
		for j := 0; j < nD-1; j++ {
			d := rem / (nD - j)
			demand[j] = d
			rem -= d
		}
		demand[nD-1] = rem
		cost := make([][]int, nS)
		for i := range cost {
			cost[i] = make([]int, nD)
			for j := range cost[i] {
				cost[i][j] = rng.Intn(10)
			}
		}

		// LP formulation.
		p := NewProblem(nS * nD)
		for i := 0; i < nS; i++ {
			for j := 0; j < nD; j++ {
				p.SetCost(i*nD+j, float64(cost[i][j]))
			}
		}
		for i := 0; i < nS; i++ {
			idx := make([]int, nD)
			val := make([]float64, nD)
			for j := 0; j < nD; j++ {
				idx[j] = i*nD + j
				val[j] = 1
			}
			p.AddRow(idx, val, EQ, float64(supply[i]))
		}
		for j := 0; j < nD; j++ {
			idx := make([]int, nS)
			val := make([]float64, nS)
			for i := 0; i < nS; i++ {
				idx[i] = i*nD + j
				val[i] = 1
			}
			p.AddRow(idx, val, EQ, float64(demand[j]))
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		if p.CheckFeasible(sol.X, 1e-6) != nil {
			return false
		}

		// Min-cost flow reference.
		g := flownet.New(nS + nD + 2)
		s, tk := nS+nD, nS+nD+1
		for i := 0; i < nS; i++ {
			g.AddEdge(s, i, supply[i], 0)
		}
		for j := 0; j < nD; j++ {
			g.AddEdge(nS+j, tk, demand[j], 0)
		}
		for i := 0; i < nS; i++ {
			for j := 0; j < nD; j++ {
				g.AddEdge(i, nS+j, total, cost[i][j])
			}
		}
		flow, mcost := g.MinCostFlow(s, tk, total)
		if flow != total {
			return false
		}
		return math.Abs(sol.Obj-float64(mcost)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: on random box-constrained LPs with feasible interior points the
// solver returns optimal solutions that are at least as good as a cloud of
// random feasible points.
func TestQuickOptimumBeatsRandomFeasiblePoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		mRows := rng.Intn(5)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetCost(j, float64(rng.Intn(11)-5))
			p.SetBounds(j, 0, float64(1+rng.Intn(5)))
		}
		// Random feasible anchor point in the box.
		anchor := make([]float64, n)
		for j := range anchor {
			anchor[j] = rng.Float64() * p.upper[j]
		}
		for r := 0; r < mRows; r++ {
			idx := []int{}
			val := []float64{}
			act := 0.0
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					c := float64(rng.Intn(7) - 3)
					idx = append(idx, j)
					val = append(val, c)
					act += c * anchor[j]
				}
			}
			if len(idx) == 0 {
				continue
			}
			// Make the anchor feasible for the row.
			switch rng.Intn(3) {
			case 0:
				p.AddRow(idx, val, LE, act+rng.Float64())
			case 1:
				p.AddRow(idx, val, GE, act-rng.Float64())
			default:
				p.AddRow(idx, val, EQ, act)
			}
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		if sol.Status != Optimal {
			return false // feasible by construction; bounded by box
		}
		if p.CheckFeasible(sol.X, 1e-6) != nil {
			return false
		}
		if sol.Obj > p.Objective(anchor)+1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The solution must be basic: the number of variables strictly inside
// their bounds is at most the number of rows.
func TestSolutionIsBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 30
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetCost(j, rng.Float64())
		p.SetBounds(j, 0, 1)
	}
	for r := 0; r < 5; r++ {
		idx := make([]int, n)
		val := make([]float64, n)
		for j := 0; j < n; j++ {
			idx[j] = j
			val[j] = float64(1 + rng.Intn(3))
		}
		p.AddRow(idx, val, GE, float64(n/2))
	}
	sol := solveOK(t, p)
	interior := 0
	for j := 0; j < n; j++ {
		if sol.X[j] > 1e-7 && sol.X[j] < 1-1e-7 {
			interior++
		}
	}
	if interior > p.NumRows() {
		t.Fatalf("%d interior variables > %d rows: not a basic solution", interior, p.NumRows())
	}
}

func TestSenseAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("sense strings wrong")
	}
	names := []string{Optimal.String(), Infeasible.String(), Unbounded.String(), IterLimit.String()}
	sort.Strings(names)
	if len(names) != 4 {
		t.Fatal("status strings wrong")
	}
}

func TestObjectiveAndRowActivity(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, 2)
	p.SetCost(1, -1)
	i := p.AddRow([]int{0, 1}, []float64{3, 4}, LE, 100)
	x := []float64{1, 2}
	if got := p.Objective(x); got != 0 {
		t.Fatalf("objective = %v", got)
	}
	if got := p.RowActivity(x, i); got != 11 {
		t.Fatalf("activity = %v", got)
	}
}
