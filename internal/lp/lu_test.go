package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	// A = [[2,1],[1,3]], b = [5,10] => x = [1,3].
	f, err := factorize(2, []float64{2, 1, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{5, 10}
	f.solve(b)
	if math.Abs(b[0]-1) > 1e-12 || math.Abs(b[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", b)
	}
}

func TestLUSolveTransposed(t *testing.T) {
	// A^T x = b with A = [[2,1],[0,3]]: A^T = [[2,0],[1,3]].
	f, err := factorize(2, []float64{2, 1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{4, 7}
	f.solveT(b)
	// 2x0 = 4 => x0 = 2; x0 + 3x1 = 7 => x1 = 5/3.
	if math.Abs(b[0]-2) > 1e-12 || math.Abs(b[1]-5.0/3) > 1e-12 {
		t.Fatalf("x = %v, want [2 1.667]", b)
	}
}

func TestLUSingular(t *testing.T) {
	if _, err := factorize(2, []float64{1, 2, 2, 4}); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	f, err := factorize(2, []float64{0, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{3, 7}
	f.solve(b)
	if math.Abs(b[0]-7) > 1e-12 || math.Abs(b[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [7 3]", b)
	}
}

// Property: for random well-conditioned matrices, solve and solveT invert
// matrix-vector products.
func TestQuickLURoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		// Diagonal dominance for conditioning.
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n) + 1
		}
		fac, err := factorize(n, a)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// b = A x.
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a[i*n+j] * x[j]
			}
		}
		fac.solve(b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-8 {
				return false
			}
		}
		// bT = A^T x.
		bt := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				bt[i] += a[j*n+i] * x[j]
			}
		}
		fac.solveT(bt)
		for i := range x {
			if math.Abs(bt[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
