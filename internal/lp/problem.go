// Package lp implements a linear-programming solver: a revised simplex
// method with bounded variables, two-phase initialization, product-form
// basis updates with periodic dense-LU refactorization, and Bland's rule as
// an anti-cycling fallback. It stands in for the commercial solver (Gurobi)
// used in the paper's experiments and solves the relaxations (1)-(4),
// (5)-(8)/(9)-(12) and (19)-(21).
//
// Solutions returned by Solve are basic (vertex) solutions, which the
// iterative-rounding algorithms in internal/core rely on.
//
//flowsched:deterministic
package lp

import (
	"fmt"
	"math"
)

// Inf is the bound value representing an infinite (absent) bound.
var Inf = math.Inf(1)

// Sense is the relational sense of a linear constraint row.
type Sense int

const (
	// LE is a "<=" constraint.
	LE Sense = iota
	// GE is a ">=" constraint.
	GE
	// EQ is an "=" constraint.
	EQ
)

// String returns "<=", ">=" or "=".
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective is unbounded below.
	Unbounded
	// IterLimit means the iteration limit was exhausted.
	IterLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "iteration-limit"
	}
}

// row is one linear constraint in sparse form.
type row struct {
	idx   []int
	val   []float64
	sense Sense
	rhs   float64
}

// Problem is a linear program over variables x_0..x_{n-1}:
//
//	minimize    sum_j Cost[j] * x_j
//	subject to  each added row, and Lower[j] <= x_j <= Upper[j].
//
// Variables default to cost 0 and bounds [0, +Inf). Build with NewProblem,
// SetCost, SetBounds and AddRow, then call Solve.
type Problem struct {
	n     int
	cost  []float64
	lower []float64
	upper []float64
	rows  []row
}

// NewProblem returns a problem with numVars variables, all with zero cost
// and bounds [0, +Inf).
func NewProblem(numVars int) *Problem {
	p := &Problem{
		n:     numVars,
		cost:  make([]float64, numVars),
		lower: make([]float64, numVars),
		upper: make([]float64, numVars),
	}
	for j := range p.upper {
		p.upper[j] = Inf
	}
	return p
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// NumRows returns the number of constraint rows.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetCost sets the objective coefficient of variable j.
func (p *Problem) SetCost(j int, c float64) { p.cost[j] = c }

// SetBounds sets the bounds of variable j. Use -Inf / Inf for free sides.
func (p *Problem) SetBounds(j int, lo, hi float64) {
	p.lower[j] = lo
	p.upper[j] = hi
}

// AddRow appends the constraint sum_k val[k]*x_{idx[k]} (sense) rhs and
// returns its row index. The idx slice must not contain duplicates.
func (p *Problem) AddRow(idx []int, val []float64, sense Sense, rhs float64) int {
	if len(idx) != len(val) {
		panic("lp: AddRow index/value length mismatch")
	}
	p.rows = append(p.rows, row{
		idx:   append([]int(nil), idx...),
		val:   append([]float64(nil), val...),
		sense: sense,
		rhs:   rhs,
	})
	return len(p.rows) - 1
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// X holds the optimal variable values (valid when Status == Optimal).
	X []float64
	// Obj is the optimal objective value.
	Obj float64
	// Dual holds the dual value (shadow price) of each constraint row at
	// the final basis (valid when Status == Optimal). For a minimization
	// problem, LE rows have non-positive duals and GE rows non-negative
	// duals at optimality (up to tolerance).
	Dual []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// RowActivity returns sum_k val[k]*X[idx[k]] for row i of the problem.
func (p *Problem) RowActivity(x []float64, i int) float64 {
	r := p.rows[i]
	s := 0.0
	for k, j := range r.idx {
		s += r.val[k] * x[j]
	}
	return s
}

// CheckFeasible verifies that x satisfies all rows and bounds of p within
// tolerance tol, returning a descriptive error for the first violation.
func (p *Problem) CheckFeasible(x []float64, tol float64) error {
	for j := 0; j < p.n; j++ {
		if x[j] < p.lower[j]-tol || x[j] > p.upper[j]+tol {
			return fmt.Errorf("lp: x[%d]=%g violates bounds [%g,%g]", j, x[j], p.lower[j], p.upper[j])
		}
	}
	for i, r := range p.rows {
		a := p.RowActivity(x, i)
		switch r.sense {
		case LE:
			if a > r.rhs+tol {
				return fmt.Errorf("lp: row %d activity %g > rhs %g", i, a, r.rhs)
			}
		case GE:
			if a < r.rhs-tol {
				return fmt.Errorf("lp: row %d activity %g < rhs %g", i, a, r.rhs)
			}
		case EQ:
			if math.Abs(a-r.rhs) > tol {
				return fmt.Errorf("lp: row %d activity %g != rhs %g", i, a, r.rhs)
			}
		}
	}
	return nil
}

// Objective returns the objective value of x under p's costs.
func (p *Problem) Objective(x []float64) float64 {
	s := 0.0
	for j := 0; j < p.n; j++ {
		s += p.cost[j] * x[j]
	}
	return s
}
