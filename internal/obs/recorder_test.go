package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// rec builds a distinctive record for round r so a torn copy would be
// visible as a field mismatch.
func rec(r int64) RoundRecord {
	return RoundRecord{
		Round:     r,
		Arrived:   r * 2,
		Scheduled: r * 3,
		Dropped:   r * 5,
		Expired:   r * 7,
		Pending:   r * 11,
		ProposeNS: r * 13, ReconcileNS: r * 17, ApplyNS: r * 19, VerifyNS: r * 23,
	}
}

func checkRec(t *testing.T, got RoundRecord) {
	t.Helper()
	if want := rec(got.Round); got != want {
		t.Fatalf("torn or corrupt record: got %+v, want %+v", got, want)
	}
}

// TestRecorderWrapAround: a ring of 8 fed 20 records keeps exactly the
// most recent ones, oldest first, with every field intact.
func TestRecorderWrapAround(t *testing.T) {
	r := NewFlightRecorder(8)
	if r.Cap() != 8 {
		t.Fatalf("cap %d, want 8", r.Cap())
	}
	for i := int64(0); i < 20; i++ {
		r.Record(rec(i))
	}
	if r.Written() != 20 {
		t.Fatalf("written %d, want 20", r.Written())
	}
	got := r.Last(nil, 100)
	if len(got) != 8 {
		t.Fatalf("got %d records, want 8 (the ring capacity)", len(got))
	}
	for i, g := range got {
		if g.Round != int64(12+i) {
			t.Fatalf("record %d has round %d, want %d (oldest first)", i, g.Round, 12+i)
		}
		checkRec(t, g)
	}
	// A bounded request returns the most recent suffix.
	tail := r.Last(nil, 3)
	if len(tail) != 3 || tail[0].Round != 17 || tail[2].Round != 19 {
		t.Fatalf("Last(3) = %+v, want rounds 17..19", tail)
	}
	if out := r.Last(nil, 0); len(out) != 0 {
		t.Fatalf("Last(0) returned %d records", len(out))
	}
}

// TestRecorderPartialRing: fewer records than capacity returns them all.
func TestRecorderPartialRing(t *testing.T) {
	r := NewFlightRecorder(16)
	for i := int64(0); i < 5; i++ {
		r.Record(rec(i))
	}
	got := r.Last(nil, 16)
	if len(got) != 5 {
		t.Fatalf("got %d records, want 5", len(got))
	}
	for i, g := range got {
		if g.Round != int64(i) {
			t.Fatalf("record %d has round %d", i, g.Round)
		}
	}
}

// TestRecorderConcurrentReaders drives one writer against several
// readers under the race detector: every record a reader sees must be
// complete (field pattern intact) and in strictly increasing round
// order.
func TestRecorderConcurrentReaders(t *testing.T) {
	r := NewFlightRecorder(64)
	const total = 200_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []RoundRecord
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = r.Last(buf[:0], 64)
				for i, g := range buf {
					checkRec(t, g)
					if i > 0 && g.Round <= buf[i-1].Round {
						t.Errorf("rounds not strictly increasing: %d after %d", g.Round, buf[i-1].Round)
						return
					}
				}
			}
		}()
	}
	for i := int64(0); i < total; i++ {
		r.Record(rec(i))
	}
	close(stop)
	wg.Wait()
	if r.Written() != total {
		t.Fatalf("written %d, want %d", r.Written(), total)
	}
}

// TestRecorderRecordZeroAlloc pins the writer-side contract the stream
// runtime's zero-alloc round loop depends on.
func TestRecorderRecordZeroAlloc(t *testing.T) {
	r := NewFlightRecorder(32)
	i := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(rec(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("Record performed %v allocs, want 0", allocs)
	}
}

// TestRecorderJSONL round-trips the JSONL export.
func TestRecorderJSONL(t *testing.T) {
	r := NewFlightRecorder(8)
	for i := int64(0); i < 4; i++ {
		r.Record(rec(i))
	}
	var buf bytes.Buffer
	n, err := r.WriteJSONL(&buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("wrote %d records, want 4", n)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var g RoundRecord
		if err := json.Unmarshal(sc.Bytes(), &g); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if g.Round != int64(lines) {
			t.Fatalf("line %d has round %d", lines, g.Round)
		}
		checkRec(t, g)
		lines++
	}
	if lines != 4 {
		t.Fatalf("scanned %d lines, want 4", lines)
	}
}
