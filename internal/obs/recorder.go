// Package obs holds the runtime's flight recorder: a fixed-size,
// single-writer ring of per-round records the scheduler's coordinator
// writes from inside the round loop — zero steady-state allocations, no
// locks — and any number of readers drain concurrently for traces,
// scrape-time histograms, and post-mortems.
//
// The concurrency discipline is the same word-atomic single-writer
// protocol as stats.EpochWindow: the writer publishes each record with
// plain-ordered atomic word stores and then advances an atomic head
// counter; a reader snapshots the head, copies candidate slots with
// atomic loads, re-reads the head, and discards any slot the writer may
// have re-entered during the copy. A torn slot is therefore never
// returned — it is detected by the head having lapped it — and neither
// side ever blocks the other.
//
// The package depends only on the standard library, so the stream
// runtime (and anything below it) can accept a *FlightRecorder without
// an import cycle.
package obs

import (
	"encoding/json"
	"io"
	"sync/atomic"
)

// DefaultRounds is the ring capacity used when a caller passes a
// non-positive size: enough history for a useful trace (at microsecond
// rounds, several milliseconds; at millisecond rounds, several seconds)
// at 320 KiB of memory.
const DefaultRounds = 4096

// RoundRecord is one scheduling round as the coordinator saw it: what
// moved (arrivals, scheduled departures, drops, expiries, the resident
// pending count after the round) and where the time went, split by the
// round protocol's phases. ProposeNS covers the fused barrier phase
// (retire the previous round's picks + admit + propose), ReconcileNS the
// serial leftover-capacity pass, ApplyNS any explicit out-of-cadence
// retirement (verification flushes, idle jumps), and VerifyNS the time
// spent blocked joining the overlapped verify goroutine. Phase time
// accrued between scheduling rounds (e.g. an apply forced by an idle
// jump) is charged to the next emitted record.
type RoundRecord struct {
	Round       int64 `json:"round"`
	Arrived     int64 `json:"arrived"`
	Scheduled   int64 `json:"scheduled"`
	Dropped     int64 `json:"dropped"`
	Expired     int64 `json:"expired"`
	Pending     int64 `json:"pending"`
	ProposeNS   int64 `json:"propose_ns"`
	ReconcileNS int64 `json:"reconcile_ns"`
	ApplyNS     int64 `json:"apply_ns"`
	VerifyNS    int64 `json:"verify_ns"`
}

// recordWords is the flat ring's per-record word count; the store/load
// helpers below are the single source of truth for the layout.
const recordWords = 10

// FlightRecorder is the fixed-size round ring. One goroutine calls
// Record; any number call Last/WriteJSONL/Written concurrently.
//
// The zero value is not usable; construct with NewFlightRecorder.
type FlightRecorder struct {
	// head is the number of complete records ever written. Record k
	// (zero-based) lives in slot k % slots until lapped.
	head atomic.Int64
	// slots is rounds+1: the spare slot absorbs the record the writer
	// may be mid-storing, so the last `rounds` records are always
	// readable untorn (see the discard rule in Last).
	slots  int64
	rounds int64
	buf    []int64 // slots * recordWords words, accessed atomically
}

// NewFlightRecorder returns a ring holding the last `rounds` records
// (<= 0 selects DefaultRounds).
func NewFlightRecorder(rounds int) *FlightRecorder {
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	return &FlightRecorder{
		slots:  int64(rounds) + 1,
		rounds: int64(rounds),
		buf:    make([]int64, (rounds+1)*recordWords),
	}
}

// Cap returns the ring capacity in rounds: how much history Last can
// guarantee.
func (r *FlightRecorder) Cap() int { return int(r.rounds) }

// Written returns the total number of records ever recorded (not capped
// at the ring size).
func (r *FlightRecorder) Written() int64 { return r.head.Load() }

// Record appends one round record. Single writer only; it performs no
// locking and no heap allocation, so it is safe on an allocation-free
// hot path. The head advances after the slot's words are stored, so a
// concurrent reader either sees the whole record or discards the slot.
//
//flowsched:hotpath
func (r *FlightRecorder) Record(rec RoundRecord) {
	h := r.head.Load()
	b := (h % r.slots) * recordWords
	w := r.buf[b : b+recordWords : b+recordWords]
	atomic.StoreInt64(&w[0], rec.Round)
	atomic.StoreInt64(&w[1], rec.Arrived)
	atomic.StoreInt64(&w[2], rec.Scheduled)
	atomic.StoreInt64(&w[3], rec.Dropped)
	atomic.StoreInt64(&w[4], rec.Expired)
	atomic.StoreInt64(&w[5], rec.Pending)
	atomic.StoreInt64(&w[6], rec.ProposeNS)
	atomic.StoreInt64(&w[7], rec.ReconcileNS)
	atomic.StoreInt64(&w[8], rec.ApplyNS)
	atomic.StoreInt64(&w[9], rec.VerifyNS)
	r.head.Store(h + 1)
}

// Last appends up to n of the most recent records to dst, oldest first,
// and returns the extended slice. Records the writer may have lapped
// during the copy are discarded, so every returned record is complete
// and the returned Round sequence is strictly increasing. Safe to call
// concurrently with Record and with other readers (dst must not be
// shared between concurrent readers).
func (r *FlightRecorder) Last(dst []RoundRecord, n int) []RoundRecord {
	if n <= 0 {
		return dst
	}
	if int64(n) > r.rounds {
		n = int(r.rounds)
	}
	h1 := r.head.Load()
	lo := h1 - int64(n)
	if lo < 0 {
		lo = 0
	}
	start := len(dst)
	for k := lo; k < h1; k++ {
		b := (k % r.slots) * recordWords
		w := r.buf[b : b+recordWords : b+recordWords]
		dst = append(dst, RoundRecord{
			Round:       atomic.LoadInt64(&w[0]),
			Arrived:     atomic.LoadInt64(&w[1]),
			Scheduled:   atomic.LoadInt64(&w[2]),
			Dropped:     atomic.LoadInt64(&w[3]),
			Expired:     atomic.LoadInt64(&w[4]),
			Pending:     atomic.LoadInt64(&w[5]),
			ProposeNS:   atomic.LoadInt64(&w[6]),
			ReconcileNS: atomic.LoadInt64(&w[7]),
			ApplyNS:     atomic.LoadInt64(&w[8]),
			VerifyNS:    atomic.LoadInt64(&w[9]),
		})
	}
	// The writer may have advanced during the copy: record k is only
	// intact if its slot has not been re-entered, i.e. k is within the
	// last slots-1 records of the post-copy head (the slot of record h2
	// itself may be mid-write; the spare slot makes slots-1 == rounds).
	h2 := r.head.Load()
	if safeLo := h2 - r.slots + 1; safeLo > lo {
		drop := int(safeLo - lo)
		if drop > len(dst)-start {
			drop = len(dst) - start
		}
		dst = append(dst[:start], dst[start+drop:]...)
	}
	return dst
}

// WriteJSONL encodes the last n records (oldest first) as JSON Lines —
// one RoundRecord object per line — and reports how many were written.
func (r *FlightRecorder) WriteJSONL(w io.Writer, n int) (int, error) {
	recs := r.Last(nil, n)
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return i, err
		}
	}
	return len(recs), nil
}
