package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Row is one verdict flattened for reporting.
type Row struct {
	Label    string
	Workload string
	Solver   string
	Seed     int64
	N        int
	Verified bool
	// Recomputed metrics from the verify oracle (zero when the solver
	// errored before producing a schedule).
	TotalResponse int
	AvgResponse   float64
	MaxResponse   int
	Makespan      int
	// Err is the failure description, "" on success.
	Err string
}

// ResultTable collects a sweep's verdicts in scenario order.
type ResultTable struct {
	Rows []Row
	// Verdicts are the underlying engine verdicts, index-aligned with
	// Rows, for callers that need solver stats or retained instances.
	Verdicts []Verdict
}

// NewResultTable flattens verdicts into a table.
func NewResultTable(verdicts []Verdict) *ResultTable {
	t := &ResultTable{Rows: make([]Row, len(verdicts)), Verdicts: verdicts}
	for i, v := range verdicts {
		r := Row{
			Label:    v.Scenario.Label,
			Seed:     v.Scenario.Seed,
			N:        v.N,
			Verified: v.Verified,
		}
		if v.Scenario.Workload != nil {
			r.Workload = v.Scenario.Workload.Name()
		}
		if v.Scenario.Solver != nil {
			r.Solver = v.Scenario.Solver.Name()
		}
		if r.Label == "" {
			r.Label = r.Workload + "/" + r.Solver
		}
		if v.Report != nil {
			r.TotalResponse = v.Report.TotalResponse
			r.AvgResponse = v.Report.AvgResponse
			r.MaxResponse = v.Report.MaxResponse
			r.Makespan = v.Report.Makespan
		}
		if v.Err != nil {
			r.Err = v.Err.Error()
		}
		t.Rows[i] = r
	}
	return t
}

// AllVerified reports whether every scenario passed the oracle.
func (t *ResultTable) AllVerified() bool {
	for _, r := range t.Rows {
		if !r.Verified {
			return false
		}
	}
	return true
}

// FirstError returns the first scenario failure, if any.
func (t *ResultTable) FirstError() error {
	for i, v := range t.Verdicts {
		if v.Err != nil {
			return fmt.Errorf("engine: scenario %d (%s): %w", i, t.Rows[i].Label, v.Err)
		}
	}
	return nil
}

// header is the column set shared by Render and WriteCSV.
var header = []string{"workload", "solver", "seed", "n", "verified", "total_resp", "avg_resp", "max_resp", "makespan", "err"}

// cells formats one row in header order.
func (r Row) cells() []string {
	return []string{
		r.Workload,
		r.Solver,
		strconv.FormatInt(r.Seed, 10),
		strconv.Itoa(r.N),
		strconv.FormatBool(r.Verified),
		strconv.Itoa(r.TotalResponse),
		strconv.FormatFloat(r.AvgResponse, 'f', 3, 64),
		strconv.Itoa(r.MaxResponse),
		strconv.Itoa(r.Makespan),
		r.Err,
	}
}

// Render prints the table with aligned columns.
func (t *ResultTable) Render(w io.Writer) {
	rows := make([][]string, 0, len(t.Rows)+1)
	rows = append(rows, header)
	for _, r := range t.Rows {
		rows = append(rows, r.cells())
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
}

// WriteCSV emits the table as CSV with a header row.
func (t *ResultTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r.cells()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
