package engine

import (
	"math/rand"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/switchnet"
	"flowsched/internal/verify"
)

// TestMetamorphicBoundsBelowPolicySchedules: the heuristics respect the
// original capacities, so both lower bounds must sit below every verified
// policy schedule — SRPTLowerBound below its total response and
// MRTLowerBound below its maximum response. This cross-checks three
// independent code paths (simulator, combinatorial bound, LP bound)
// against each other.
func TestMetamorphicBoundsBelowPolicySchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 6; trial++ {
		inst := randomUnitInstance(rng)
		srpt := core.SRPTLowerBound(inst)
		rhoLB, err := core.MRTLowerBound(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, name := range []string{"MaxCard", "MinRTime", "MaxWeight", "FIFO", "GreedyAge"} {
			sol, err := SolverByName(name).Solve(inst)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, name, err)
			}
			rep, err := verify.CheckSchedule(inst, sol.Schedule, sol.Caps)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, name, err)
			}
			if rep.TotalResponse < srpt {
				t.Fatalf("trial %d: %s total %d below SRPT bound %d", trial, name, rep.TotalResponse, srpt)
			}
			if rep.MaxResponse < rhoLB {
				t.Fatalf("trial %d: %s max %d below MRT LP bound %d", trial, name, rep.MaxResponse, rhoLB)
			}
		}
	}
}

// TestMetamorphicSRPTBelowVerifiedART: on the paper's workload the FS-ART
// pipeline's conversion overhead keeps its verified total response above
// the combinatorial SRPT relaxation, and above its own LP bound. (Neither
// is a theorem under augmented capacities, but both orderings are stable
// properties of these fixed seeds — a regression here means the pipeline's
// cost model moved.)
func TestMetamorphicSRPTBelowVerifiedART(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		inst := randomUnitInstance(rng)
		sol, err := (ARTSolver{C: 1}).Solve(inst)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := verify.CheckSchedule(inst, sol.Schedule, sol.Caps)
		if err != nil {
			t.Fatalf("seed %d: ART failed the oracle: %v", seed, err)
		}
		if srpt := core.SRPTLowerBound(inst); rep.TotalResponse < srpt {
			t.Fatalf("seed %d: verified ART total %d below SRPT bound %d", seed, rep.TotalResponse, srpt)
		}
		if lb := sol.Stats["lp_bound"]; float64(rep.TotalResponse) < lb {
			t.Fatalf("seed %d: verified ART total %d below its LP bound %.3f", seed, rep.TotalResponse, lb)
		}
	}
}

// TestMetamorphicMRTMatchesBruteForce: on tiny instances the LP-driven
// SolveMRT must agree with exhaustive backtracking — its Rho can never
// exceed the exact optimum (the LP relaxes feasibility), and on these
// instances the relaxation is tight.
func TestMetamorphicMRTMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 8; trial++ {
		m := 2 + rng.Intn(2)
		n := 1 + rng.Intn(5)
		inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(m)}
		for i := 0; i < n; i++ {
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In: rng.Intn(m), Out: rng.Intn(m), Demand: 1, Release: rng.Intn(3),
			})
		}
		res, err := core.SolveMRT(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		exact := 1
		for !core.ExactMRTFeasible(inst, exact) {
			exact++
			if exact > inst.CongestionHorizon()+4 {
				t.Fatalf("trial %d: brute force found no feasible rho", trial)
			}
		}
		if res.Rho > exact {
			t.Fatalf("trial %d: LP rho %d exceeds exact optimum %d", trial, res.Rho, exact)
		}
		if res.Rho != exact {
			t.Fatalf("trial %d: LP rho %d != brute-force optimum %d (relaxation not tight here)",
				trial, res.Rho, exact)
		}
		// And the returned schedule achieves the optimum (with its
		// declared +2*d_max-1 augmentation).
		if rep, err := verify.CheckSchedule(inst, res.Schedule, switchnet.AddCaps(inst.Switch.Caps(), res.CapIncrease)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		} else if rep.MaxResponse > exact {
			t.Fatalf("trial %d: schedule max response %d above optimum %d", trial, rep.MaxResponse, exact)
		}
	}
}
