package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on a bounded worker pool and
// blocks until all calls return. workers <= 0 selects GOMAXPROCS. Work is
// dealt to workers in contiguous shards claimed off an atomic cursor, so
// there is exactly one goroutine per worker (not per item) and neighboring
// items — which in a sweep usually share a generator and size — tend to
// stay on one worker's cache.
//
// This is the repository's single fan-out primitive: experiment drivers and
// the scenario engine both build on it instead of hand-rolling
// sync.WaitGroup pools.
func ForEach(n, workers int, fn func(i int)) {
	ForEachSharded(n, workers, 0, fn)
}

// ForEachSharded is ForEach with an explicit shard size (items claimed per
// cursor bump). shardSize <= 0 picks a size that gives each worker several
// shards for load balance while keeping cursor contention negligible.
func ForEachSharded(n, workers, shardSize int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if shardSize <= 0 {
		shardSize = n / (workers * 8)
		if shardSize < 1 {
			shardSize = 1
		}
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(shardSize))) - shardSize
				if lo >= n {
					return
				}
				hi := lo + shardSize
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
