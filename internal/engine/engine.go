// Package engine is the sharded, deterministic scenario engine: it runs any
// registered solver (the paper's offline algorithms, the online heuristics,
// the coflow policies) against any workload generator over a bounded worker
// pool, verifies every produced schedule with the internal/verify oracle
// under the solver's own declared capacity augmentation, and collects the
// per-scenario verdicts into a single result table.
//
// Determinism: each scenario carries its own seed, the generator draws from
// a rand.Rand private to the scenario, and results land at the scenario's
// input index — so a sweep's result table is a pure function of
// (scenarios, seeds) regardless of worker count or scheduling order.
package engine

import (
	"fmt"
	"math/rand"

	"flowsched/internal/switchnet"
	"flowsched/internal/verify"
)

// Generator produces problem instances from a scenario-private RNG.
type Generator interface {
	// Name identifies the workload in result tables.
	Name() string
	// Generate draws one instance. Implementations must derive all
	// randomness from rng so scenarios replay bit-identically.
	Generate(rng *rand.Rand) *switchnet.Instance
}

// Solution is a solver's output: the schedule plus the per-port capacities
// (global index order) under which the solver claims it is feasible — the
// paper's resource-augmentation contract made explicit so the verify oracle
// can hold every solver to its own theorem.
type Solution struct {
	Schedule *switchnet.Schedule
	// Caps are the capacities the schedule is claimed feasible under
	// (e.g. ScaleCaps(caps, 1+c) for Theorem 1, AddCaps(caps, 2*d_max-1)
	// for Theorem 3, the raw capacities for simulator policies).
	Caps []int
	// Stats carries solver-specific diagnostics (LP pivots, rho guesses,
	// simulated rounds, ...).
	Stats map[string]float64
}

// Solver schedules an instance.
type Solver interface {
	// Name identifies the solver in result tables.
	Name() string
	// Solve schedules inst. It must not mutate inst.
	Solve(inst *switchnet.Instance) (*Solution, error)
}

// Scenario is one cell of a sweep: a seeded workload draw handed to one
// solver.
type Scenario struct {
	// Label tags the scenario in tables (defaults to "workload/solver").
	Label string
	// Seed drives the generator's private RNG.
	Seed int64
	// Workload generates the instance; Solver schedules it.
	Workload Generator
	Solver   Solver
}

// Verdict is the engine's judgment of one scenario: what the solver
// produced and whether the verify oracle accepted it.
type Verdict struct {
	Scenario Scenario
	// N is the generated instance's flow count.
	N int
	// Instance is retained only when Options.KeepInstances is set.
	Instance *switchnet.Instance
	// Solution is the solver output (nil if the solver errored).
	Solution *Solution
	// Report is the oracle's recomputation (nil if the solver errored).
	Report *verify.Report
	// Verified is true iff the solver succeeded and the oracle found the
	// schedule feasible under the solver's declared capacities.
	Verified bool
	// Err is the solver error or the oracle's verdict error.
	Err error
}

// Options tunes a Run.
type Options struct {
	// Workers bounds parallelism (<= 0 selects GOMAXPROCS).
	Workers int
	// ShardSize is the number of scenarios a worker claims at once
	// (<= 0 auto-sizes).
	ShardSize int
	// KeepInstances retains each generated instance on its verdict, for
	// callers that compute additional per-instance baselines.
	KeepInstances bool
}

// Run executes all scenarios on the worker pool and returns verdicts in
// scenario order. It never returns early: every scenario gets a verdict,
// and failures are recorded, not thrown.
func Run(scenarios []Scenario, opt Options) []Verdict {
	verdicts := make([]Verdict, len(scenarios))
	ForEachSharded(len(scenarios), opt.Workers, opt.ShardSize, func(i int) {
		verdicts[i] = runOne(scenarios[i], opt.KeepInstances)
	})
	return verdicts
}

// runOne generates, solves, and verifies a single scenario.
func runOne(sc Scenario, keep bool) Verdict {
	v := Verdict{Scenario: sc}
	if sc.Workload == nil || sc.Solver == nil {
		v.Err = fmt.Errorf("engine: scenario %q missing workload or solver", sc.Label)
		return v
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	inst := sc.Workload.Generate(rng)
	v.N = inst.N()
	if keep {
		v.Instance = inst
	}
	sol, err := sc.Solver.Solve(inst)
	if err != nil {
		v.Err = fmt.Errorf("engine: %s on %s (seed %d): %w", sc.Solver.Name(), sc.Workload.Name(), sc.Seed, err)
		return v
	}
	v.Solution = sol
	rep, err := verify.CheckSchedule(inst, sol.Schedule, sol.Caps)
	v.Report = rep
	if err != nil {
		v.Err = fmt.Errorf("engine: %s on %s (seed %d) failed verification: %w",
			sc.Solver.Name(), sc.Workload.Name(), sc.Seed, err)
		return v
	}
	v.Verified = true
	return v
}

// DeriveSeed mixes a base seed with shard coordinates into a scenario seed
// using a splitmix64-style finalizer, so nearby cells get statistically
// independent streams and the mapping is stable across releases.
func DeriveSeed(base int64, coords ...int) int64 {
	z := uint64(base) ^ 0x9e3779b97f4a7c15
	for _, c := range coords {
		z += uint64(c)*0xbf58476d1ce4e5b9 + 0x9e3779b97f4a7c15
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}
