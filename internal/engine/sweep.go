package engine

// SweepConfig describes a full solver x workload sweep.
type SweepConfig struct {
	// Solvers and Generators are crossed; every pair runs Trials times.
	Solvers    []Solver
	Generators []Generator
	// Trials is the number of seeded repetitions per (solver, generator)
	// pair (0 means 1).
	Trials int
	// Seed is the base seed; per-scenario seeds are derived from it and
	// the cell coordinates, so the whole table is reproducible.
	Seed int64
	// Workers and ShardSize tune the pool (see Options).
	Workers   int
	ShardSize int
	// KeepInstances retains generated instances on the verdicts.
	KeepInstances bool
}

// Scenarios expands the sweep into its scenario list: generators outermost,
// then trials, then solvers — so all solvers of one trial share a derived
// seed and therefore judge the exact same instance draw.
func (c SweepConfig) Scenarios() []Scenario {
	trials := c.Trials
	if trials <= 0 {
		trials = 1
	}
	var out []Scenario
	for gi, gen := range c.Generators {
		for tr := 0; tr < trials; tr++ {
			seed := DeriveSeed(c.Seed, gi, tr)
			for _, sol := range c.Solvers {
				out = append(out, Scenario{
					Seed:     seed,
					Workload: gen,
					Solver:   sol,
				})
			}
		}
	}
	return out
}

// RunSweep executes the sweep and returns its result table. Scenario
// failures are recorded in the table, not returned as an error; callers
// that require a fully verified sweep check table.AllVerified or
// table.FirstError.
func RunSweep(cfg SweepConfig) *ResultTable {
	verdicts := Run(cfg.Scenarios(), Options{
		Workers:       cfg.Workers,
		ShardSize:     cfg.ShardSize,
		KeepInstances: cfg.KeepInstances,
	})
	return NewResultTable(verdicts)
}

// DefaultSweep is a laptop-scale sweep crossing the full default solver
// registry with the three default workload patterns.
func DefaultSweep(ports, T, trials int, seed int64, workers int) SweepConfig {
	return SweepConfig{
		Solvers:    Solvers(),
		Generators: Generators(ports, T),
		Trials:     trials,
		Seed:       seed,
		Workers:    workers,
	}
}
