package engine

import (
	"fmt"
	"math/rand"

	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

// PoissonGen wraps the paper's Section 5.2.1 workload model.
type PoissonGen struct {
	Cfg workload.PoissonConfig
}

// Name implements Generator.
func (g PoissonGen) Name() string {
	return fmt.Sprintf("poisson(m=%d,M=%.3g,T=%d)", g.Cfg.Ports, g.Cfg.M, g.Cfg.T)
}

// Generate implements Generator.
func (g PoissonGen) Generate(rng *rand.Rand) *switchnet.Instance { return g.Cfg.Generate(rng) }

// ParetoGen wraps the heavy-tailed workload of workload.ParetoConfig:
// Poisson(M) arrivals per round with bounded-Pareto demands, the same size
// distribution the streaming arrival sources draw from — so offline sweeps
// and unbounded stream runs are comparable on one traffic model.
type ParetoGen struct {
	Cfg workload.ParetoConfig
}

// Name implements Generator.
func (g ParetoGen) Name() string {
	return fmt.Sprintf("pareto(m=%d,M=%.3g,T=%d,a=%.2g,d<=%d)",
		g.Cfg.Ports, g.Cfg.M, g.Cfg.T, g.Cfg.Alpha, g.Cfg.MaxDemand)
}

// Generate implements Generator.
func (g ParetoGen) Generate(rng *rand.Rand) *switchnet.Instance { return g.Cfg.Generate(rng) }

// PermutationGen wraps the permutation-traffic pattern: one random perfect
// matching of the ports per round.
type PermutationGen struct {
	// Ports is the switch size m; T the number of rounds.
	Ports, T int
}

// Name implements Generator.
func (g PermutationGen) Name() string { return fmt.Sprintf("permutation(m=%d,T=%d)", g.Ports, g.T) }

// Generate implements Generator.
func (g PermutationGen) Generate(rng *rand.Rand) *switchnet.Instance {
	return workload.Permutation(rng, g.Ports, g.T)
}

// HotspotGen wraps the skewed incast pattern: a fraction Hot of flows
// target output port 0.
type HotspotGen struct {
	Ports  int
	Lambda float64
	T      int
	Hot    float64
}

// Name implements Generator.
func (g HotspotGen) Name() string {
	return fmt.Sprintf("hotspot(m=%d,l=%.3g,T=%d,hot=%.2f)", g.Ports, g.Lambda, g.T, g.Hot)
}

// Generate implements Generator.
func (g HotspotGen) Generate(rng *rand.Rand) *switchnet.Instance {
	return workload.Hotspot(rng, g.Ports, g.Lambda, g.T, g.Hot)
}

// Fig4aGen wraps the deterministic Lemma 5.1 online lower-bound gadget.
type Fig4aGen struct {
	T, M int
}

// Name implements Generator.
func (g Fig4aGen) Name() string { return fmt.Sprintf("fig4a(T=%d,M=%d)", g.T, g.M) }

// Generate implements Generator.
func (g Fig4aGen) Generate(*rand.Rand) *switchnet.Instance { return workload.Fig4a(g.T, g.M) }

// FixedGen serves one pre-built instance regardless of seed — for replaying
// traces and JSON instances through the engine.
type FixedGen struct {
	Label string
	Inst  *switchnet.Instance
}

// Name implements Generator.
func (g FixedGen) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "fixed"
}

// Generate implements Generator. The instance is cloned so solvers can
// never alias each other's input.
func (g FixedGen) Generate(*rand.Rand) *switchnet.Instance { return g.Inst.Clone() }

// Generators returns the default workload registry at the given scale:
// uniform Poisson traffic at load M=m, permutation traffic, and an incast
// hotspot — three qualitatively different patterns.
func Generators(ports, T int) []Generator {
	return []Generator{
		PoissonGen{Cfg: workload.PoissonConfig{M: float64(ports), T: T, Ports: ports}},
		PermutationGen{Ports: ports, T: T},
		HotspotGen{Ports: ports, Lambda: float64(ports), T: T, Hot: 0.5},
	}
}
