package engine

import (
	"bytes"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		for _, n := range []int{0, 1, 7, 100} {
			var hits = make([]int32, n)
			ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEachShardedExplicitShards(t *testing.T) {
	var sum atomic.Int64
	ForEachSharded(50, 4, 7, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 49*50/2 {
		t.Fatalf("sum = %d, want %d", got, 49*50/2)
	}
}

func TestDeriveSeedStableAndSpread(t *testing.T) {
	a := DeriveSeed(1, 0, 0)
	if a != DeriveSeed(1, 0, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[int64]bool{}
	for i := 0; i < 50; i++ {
		for j := 0; j < 4; j++ {
			s := DeriveSeed(1, i, j)
			if seen[s] {
				t.Fatalf("seed collision at (%d,%d)", i, j)
			}
			seen[s] = true
		}
	}
}

// renderSweep runs the default sweep at tiny scale and returns its rendered
// table.
func renderSweep(t *testing.T, workers int) string {
	t.Helper()
	cfg := DefaultSweep(4, 4, 2, 11, workers)
	table := RunSweep(cfg)
	if err := table.FirstError(); err != nil {
		t.Fatal(err)
	}
	if !table.AllVerified() {
		t.Fatal("not all scenarios verified")
	}
	var buf bytes.Buffer
	table.Render(&buf)
	return buf.String()
}

// TestSweepDeterministicAcrossWorkerCounts is the acceptance criterion: the
// default sweep crosses >=4 solvers with >=3 generators on a worker pool
// with deterministic per-scenario seeds, every scenario passes the verify
// oracle, and the same seed yields an identical result table regardless of
// parallelism.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := DefaultSweep(4, 4, 2, 11, 1)
	if len(cfg.Solvers) < 4 {
		t.Fatalf("default registry has %d solvers, want >= 4", len(cfg.Solvers))
	}
	if len(cfg.Generators) < 3 {
		t.Fatalf("default registry has %d generators, want >= 3", len(cfg.Generators))
	}
	serial := renderSweep(t, 1)
	parallel := renderSweep(t, 8)
	if serial != parallel {
		t.Fatalf("sweep not deterministic across worker counts:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "true") || strings.Contains(serial, "false") {
		t.Fatalf("expected every row verified:\n%s", serial)
	}
}

// TestSweepSharesDrawsAcrossSolvers: all solvers inside one trial get the
// same seed, hence judge the same instance draw.
func TestSweepSharesDrawsAcrossSolvers(t *testing.T) {
	cfg := DefaultSweep(3, 3, 1, 5, 1)
	scenarios := cfg.Scenarios()
	if len(scenarios) != len(cfg.Solvers)*len(cfg.Generators) {
		t.Fatalf("got %d scenarios, want %d", len(scenarios), len(cfg.Solvers)*len(cfg.Generators))
	}
	perTrial := map[string]int64{}
	for _, sc := range scenarios {
		key := sc.Workload.Name()
		if prev, ok := perTrial[key]; ok && prev != sc.Seed {
			t.Fatalf("solvers of one trial got different seeds: %d vs %d", prev, sc.Seed)
		}
		perTrial[key] = sc.Seed
	}
}

func TestRunRecordsSolverFailuresWithoutAborting(t *testing.T) {
	// ART requires unit demands; a general-demand instance must fail its
	// scenario while the neighboring one still succeeds.
	inst := &switchnet.Instance{
		Switch: switchnet.NewSwitch(2, 2, 3),
		Flows:  []switchnet.Flow{{In: 0, Out: 0, Demand: 2, Release: 0}},
	}
	scenarios := []Scenario{
		{Seed: 1, Workload: FixedGen{Label: "general", Inst: inst}, Solver: ARTSolver{C: 1}},
		{Seed: 1, Workload: FixedGen{Label: "general", Inst: inst}, Solver: MRTSolver{}},
	}
	verdicts := Run(scenarios, Options{Workers: 2})
	if verdicts[0].Err == nil || verdicts[0].Verified {
		t.Fatal("ART on general demands should fail")
	}
	if verdicts[1].Err != nil || !verdicts[1].Verified {
		t.Fatalf("MRT should succeed, got %v", verdicts[1].Err)
	}
	table := NewResultTable(verdicts)
	if table.AllVerified() {
		t.Fatal("table should not be all-verified")
	}
	if table.FirstError() == nil {
		t.Fatal("FirstError should surface the ART failure")
	}
}

// TestCoflowSolverRemapsToOriginalIndices: the coflow adapter must return a
// schedule indexed by the original instance's flow order even though the
// flattening reorders flows by release.
func TestCoflowSolverRemapsToOriginalIndices(t *testing.T) {
	// Deliberately interleave releases so flattening reorders.
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(3),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 2},
			{In: 1, Out: 1, Demand: 1, Release: 0},
			{In: 0, Out: 1, Demand: 1, Release: 2},
			{In: 2, Out: 2, Demand: 1, Release: 0},
		},
	}
	for _, pol := range []string{"SEBF", "SCF", "FIFO"} {
		sol, err := (CoflowSolver{Policy: pol}).Solve(inst)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		for f, e := range inst.Flows {
			if sol.Schedule.Round[f] < e.Release {
				t.Fatalf("%s: flow %d at round %d before release %d (bad remap)",
					pol, f, sol.Schedule.Round[f], e.Release)
			}
		}
		if sol.Stats["coflows"] != 2 {
			t.Fatalf("%s: grouped %v coflows, want 2", pol, sol.Stats["coflows"])
		}
	}
}

func TestFixedGenClones(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows:  []switchnet.Flow{{In: 0, Out: 0, Demand: 1, Release: 0}},
	}
	g := FixedGen{Inst: inst}
	a := g.Generate(rand.New(rand.NewSource(1)))
	a.Flows[0].Release = 99
	if inst.Flows[0].Release != 0 {
		t.Fatal("FixedGen leaked its backing instance")
	}
}

func TestSolverByName(t *testing.T) {
	for _, name := range []string{"ART(c=1)", "MRT", "AMRT", "MaxCard", "MinRTime", "MaxWeight", "FIFO", "GreedyAge", "Coflow/SEBF", "Coflow/SCF", "Coflow/FIFO"} {
		if SolverByName(name) == nil {
			t.Fatalf("SolverByName(%q) = nil", name)
		}
	}
	if SolverByName("nope") != nil {
		t.Fatal("unknown name should resolve to nil")
	}
}

func TestResultTableCSV(t *testing.T) {
	cfg := SweepConfig{
		Solvers:    []Solver{PolicySolver{Policy: SolverByName("MaxCard").(PolicySolver).Policy}},
		Generators: []Generator{PoissonGen{Cfg: workload.PoissonConfig{M: 2, T: 3, Ports: 3}}},
		Trials:     2,
		Seed:       3,
	}
	table := RunSweep(cfg)
	var buf bytes.Buffer
	if err := table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "workload,solver,seed") {
		t.Fatalf("bad header %q", lines[0])
	}
}

// TestEmptyInstanceScenarios: zero-flow draws must verify trivially for
// every registered solver.
func TestEmptyInstanceScenarios(t *testing.T) {
	empty := &switchnet.Instance{Switch: switchnet.UnitSwitch(2)}
	var scenarios []Scenario
	for _, s := range Solvers() {
		scenarios = append(scenarios, Scenario{Seed: 1, Workload: FixedGen{Label: "empty", Inst: empty}, Solver: s})
	}
	for _, v := range Run(scenarios, Options{Workers: 2}) {
		if v.Err != nil || !v.Verified {
			t.Fatalf("%s on empty instance: %v", v.Scenario.Solver.Name(), v.Err)
		}
	}
}

// TestParetoGenScenarios runs the heavy-tailed generator through the
// engine: demand-capable solvers must produce verified schedules, and the
// instances must actually exercise non-unit demands.
func TestParetoGenScenarios(t *testing.T) {
	gen := ParetoGen{Cfg: workload.ParetoConfig{M: 4, T: 6, Ports: 5, Alpha: 1.1, MinDemand: 1, MaxDemand: 6}}
	var scenarios []Scenario
	for _, name := range []string{"MRT", "AMRT", "MaxWeight", "FIFO"} {
		for seed := int64(1); seed <= 3; seed++ {
			scenarios = append(scenarios, Scenario{Seed: seed, Workload: gen, Solver: SolverByName(name)})
		}
	}
	verdicts := Run(scenarios, Options{Workers: 2, KeepInstances: true})
	sawGeneral := false
	for _, v := range verdicts {
		if v.N == 0 {
			continue
		}
		if !v.Verified {
			t.Fatalf("%s on %s (seed %d): %v", v.Scenario.Solver.Name(), gen.Name(), v.Scenario.Seed, v.Err)
		}
		if !v.Instance.UnitDemands() {
			sawGeneral = true
		}
	}
	if !sawGeneral {
		t.Fatal("pareto generator produced only unit demands")
	}
}
