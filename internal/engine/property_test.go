package engine

import (
	"math/rand"
	"testing"

	"flowsched/internal/switchnet"
	"flowsched/internal/verify"
)

// randomUnitInstance draws a random unit-demand instance small enough for
// the LP-based solvers.
func randomUnitInstance(rng *rand.Rand) *switchnet.Instance {
	m := 2 + rng.Intn(3)
	n := 1 + rng.Intn(10)
	inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(m)}
	for i := 0; i < n; i++ {
		inst.Flows = append(inst.Flows, switchnet.Flow{
			In: rng.Intn(m), Out: rng.Intn(m), Demand: 1, Release: rng.Intn(4),
		})
	}
	return inst
}

// randomGeneralInstance draws a random instance with demands in
// [1, dmax] and matching capacities.
func randomGeneralInstance(rng *rand.Rand) *switchnet.Instance {
	m := 2 + rng.Intn(3)
	dmax := 1 + rng.Intn(3)
	n := 1 + rng.Intn(8)
	inst := &switchnet.Instance{Switch: switchnet.NewSwitch(m, m, dmax)}
	for i := 0; i < n; i++ {
		inst.Flows = append(inst.Flows, switchnet.Flow{
			In: rng.Intn(m), Out: rng.Intn(m), Demand: 1 + rng.Intn(dmax), Release: rng.Intn(4),
		})
	}
	return inst
}

// TestPropertyAllSolversProduceVerifiableSchedules is the central property
// of the repository: whatever any registered solver outputs on a random
// instance must pass the independent verify oracle under the solver's own
// declared capacity augmentation — capacity respected, every unit of
// demand delivered, nothing scheduled before release.
func TestPropertyAllSolversProduceVerifiableSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		inst := randomUnitInstance(rng)
		for _, s := range Solvers() {
			sol, err := s.Solve(inst)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, s.Name(), err)
			}
			rep, err := verify.CheckSchedule(inst, sol.Schedule, sol.Caps)
			if err != nil {
				t.Fatalf("trial %d: %s failed the oracle: %v", trial, s.Name(), err)
			}
			if rep.Scheduled != inst.N() || rep.DeliveredDemand != rep.TotalDemand {
				t.Fatalf("trial %d: %s did not deliver all demand: %+v", trial, s.Name(), rep)
			}
		}
	}
}

// TestPropertyGeneralDemandSolvers covers the non-unit-demand code paths
// (ART is excluded: Theorem 1 is stated for unit flows, and its adapter
// correctly refuses).
func TestPropertyGeneralDemandSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	solvers := []Solver{MRTSolver{}, AMRTSolver{}}
	for _, name := range []string{"MaxCard", "MinRTime", "MaxWeight", "FIFO", "GreedyAge", "Coflow/SEBF", "Coflow/SCF"} {
		solvers = append(solvers, SolverByName(name))
	}
	for trial := 0; trial < 8; trial++ {
		inst := randomGeneralInstance(rng)
		for _, s := range solvers {
			sol, err := s.Solve(inst)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, s.Name(), err)
			}
			rep, err := verify.CheckSchedule(inst, sol.Schedule, sol.Caps)
			if err != nil {
				t.Fatalf("trial %d: %s failed the oracle: %v", trial, s.Name(), err)
			}
			if rep.DeliveredDemand != rep.TotalDemand {
				t.Fatalf("trial %d: %s dropped demand: %+v", trial, s.Name(), rep)
			}
		}
	}
}

// TestPropertyTimeConstrainedSolver: with a generous response window the
// time-constrained solver must succeed and keep every flow inside it.
func TestPropertyTimeConstrainedSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 6; trial++ {
		inst := randomUnitInstance(rng)
		rho := inst.CongestionHorizon() + 1
		sol, err := (TimeConstrainedSolver{Rho: rho}).Solve(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := verify.CheckSchedule(inst, sol.Schedule, sol.Caps)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		if rep.MaxResponse > rho {
			t.Fatalf("trial %d: response %d escaped window rho=%d", trial, rep.MaxResponse, rho)
		}
	}
}

// TestPropertyOracleRejectsCorruptedSchedules guards the oracle itself: a
// verified schedule corrupted in any of the three violation classes must be
// rejected, so the property tests above cannot pass vacuously.
func TestPropertyOracleRejectsCorruptedSchedules(t *testing.T) {
	// Five flows contending for the same port pair: piling them into one
	// round must overload any constant-augmentation capacity.
	inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(2)}
	for i := 0; i < 5; i++ {
		inst.Flows = append(inst.Flows, switchnet.Flow{In: 0, Out: 0, Demand: 1, Release: i % 2})
	}
	sol, err := (MRTSolver{}).Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(s *switchnet.Schedule)) error {
		c := &switchnet.Schedule{Round: append([]int(nil), sol.Schedule.Round...)}
		mut(c)
		_, err := verify.CheckSchedule(inst, c, sol.Caps)
		return err
	}
	if err := corrupt(func(s *switchnet.Schedule) { s.Round[0] = switchnet.Unscheduled }); err == nil {
		t.Fatal("oracle accepted a dropped flow")
	}
	if err := corrupt(func(s *switchnet.Schedule) { s.Round[1] = inst.Flows[1].Release - 1 }); err == nil {
		t.Fatal("oracle accepted a flow before its release")
	}
	if err := corrupt(func(s *switchnet.Schedule) {
		// Pile every flow into one round on zero-augmentation caps.
		for f := range s.Round {
			s.Round[f] = inst.MaxRelease()
		}
	}); err == nil {
		t.Fatal("oracle accepted an overloaded round")
	}
}
