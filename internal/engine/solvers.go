package engine

import (
	"fmt"
	"sort"

	"flowsched/internal/coflow"
	"flowsched/internal/core"
	"flowsched/internal/heuristics"
	"flowsched/internal/sim"
	"flowsched/internal/switchnet"
)

// ARTSolver adapts SolveART (Theorem 1): unit-demand instances, capacities
// scaled by 1+C.
type ARTSolver struct {
	// C >= 1 is the capacity augmentation parameter.
	C int
}

// Name implements Solver.
func (s ARTSolver) Name() string { return fmt.Sprintf("ART(c=%d)", s.C) }

// Solve implements Solver.
func (s ARTSolver) Solve(inst *switchnet.Instance) (*Solution, error) {
	res, err := core.SolveART(inst, s.C)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Schedule: res.Schedule,
		Caps:     switchnet.ScaleCaps(inst.Switch.Caps(), res.CapFactor),
		Stats: map[string]float64{
			"lp_bound":   res.LPBound,
			"window_h":   float64(res.WindowH),
			"lp_pivots":  float64(res.LPIterations),
			"cap_factor": float64(res.CapFactor),
		},
	}, nil
}

// MRTSolver adapts SolveMRT (Theorem 3): optimal maximum response time with
// additive augmentation 2*d_max-1.
type MRTSolver struct{}

// Name implements Solver.
func (MRTSolver) Name() string { return "MRT" }

// Solve implements Solver.
func (MRTSolver) Solve(inst *switchnet.Instance) (*Solution, error) {
	res, err := core.SolveMRT(inst)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Schedule: res.Schedule,
		Caps:     switchnet.AddCaps(inst.Switch.Caps(), res.CapIncrease),
		Stats: map[string]float64{
			"rho":          float64(res.Rho),
			"cap_increase": float64(res.CapIncrease),
			"lp_pivots":    float64(res.LPIterations),
		},
	}, nil
}

// TimeConstrainedSolver adapts SolveTimeConstrained with the FS-MRT window
// family [r_e, r_e+Rho): it either schedules every flow within Rho rounds
// of release (augmentation 2*d_max-1) or fails with core.ErrInfeasible.
type TimeConstrainedSolver struct {
	// Rho is the per-flow response window length.
	Rho int
}

// Name implements Solver.
func (s TimeConstrainedSolver) Name() string { return fmt.Sprintf("TC(rho=%d)", s.Rho) }

// Solve implements Solver.
func (s TimeConstrainedSolver) Solve(inst *switchnet.Instance) (*Solution, error) {
	res, err := core.SolveTimeConstrained(inst, core.ResponseWindows(inst, s.Rho))
	if err != nil {
		return nil, err
	}
	return &Solution{
		Schedule: res.Schedule,
		Caps:     switchnet.AddCaps(inst.Switch.Caps(), res.CapIncrease),
		Stats: map[string]float64{
			"cap_increase": float64(res.CapIncrease),
			"lp_pivots":    float64(res.LPIterations),
		},
	}, nil
}

// AMRTSolver adapts OnlineAMRT (Lemma 5.3): online batching, capacities
// 2*(c_p + 2*d_max - 1).
type AMRTSolver struct{}

// Name implements Solver.
func (AMRTSolver) Name() string { return "AMRT" }

// Solve implements Solver.
func (AMRTSolver) Solve(inst *switchnet.Instance) (*Solution, error) {
	res, err := core.OnlineAMRT(inst)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Schedule: res.Schedule,
		Caps:     core.AMRTCaps(inst),
		Stats: map[string]float64{
			"final_rho":   float64(res.FinalRho),
			"rho_bumps":   float64(res.RhoBumps),
			"checkpoints": float64(res.Checkpoints),
		},
	}, nil
}

// PolicySolver adapts a sim.Policy (the Section 5.2 heuristics and the
// greedy/FIFO ablations): the simulator enforces raw capacities, so the
// declared augmentation is none.
type PolicySolver struct {
	Policy sim.Policy
}

// Name implements Solver.
func (s PolicySolver) Name() string { return s.Policy.Name() }

// Solve implements Solver.
func (s PolicySolver) Solve(inst *switchnet.Instance) (*Solution, error) {
	res, err := sim.Run(inst, s.Policy)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Schedule: res.Schedule,
		Caps:     inst.Switch.Caps(),
		Stats:    map[string]float64{"rounds": float64(res.Rounds)},
	}, nil
}

// CoflowSolver adapts the coflow policies (Varys-style SEBF, SCF, FIFO) to
// plain flow instances by treating each release round's flows as one
// coflow — the natural batch semantics of a shuffle stage — then mapping
// the flattened schedule back onto the original flow indices.
type CoflowSolver struct {
	// Policy is "SEBF", "SCF" or "FIFO".
	Policy string
}

// Name implements Solver.
func (s CoflowSolver) Name() string { return "Coflow/" + s.Policy }

// Solve implements Solver.
func (s CoflowSolver) Solve(inst *switchnet.Instance) (*Solution, error) {
	// Group flow indices by release round, ascending.
	byRelease := map[int][]int{}
	for f, e := range inst.Flows {
		byRelease[e.Release] = append(byRelease[e.Release], f)
	}
	releases := make([]int, 0, len(byRelease))
	for r := range byRelease {
		releases = append(releases, r)
	}
	sort.Ints(releases)

	cin := &coflow.Instance{Switch: inst.Switch}
	var orig []int // flattened index -> original flow index
	for _, r := range releases {
		cf := coflow.Coflow{Release: r}
		for _, f := range byRelease[r] {
			cf.Members = append(cf.Members, inst.Flows[f])
			orig = append(orig, f)
		}
		cin.Coflows = append(cin.Coflows, cf)
	}

	var mk func(owner []int) sim.Policy
	switch s.Policy {
	case "SEBF":
		mk = coflow.SEBF
	case "SCF":
		mk = coflow.SCF
	case "FIFO":
		mk = func(owner []int) sim.Policy { return coflow.FIFO(cin, owner) }
	default:
		return nil, fmt.Errorf("engine: unknown coflow policy %q", s.Policy)
	}
	cfRes, simRes, err := coflow.Run(cin, mk)
	if err != nil {
		return nil, err
	}
	sched := switchnet.NewSchedule(inst.N())
	for i, f := range orig {
		sched.Round[f] = simRes.Schedule.Round[i]
	}
	return &Solution{
		Schedule: sched,
		Caps:     inst.Switch.Caps(),
		Stats: map[string]float64{
			"coflows":           float64(len(cin.Coflows)),
			"coflow_total_resp": float64(cfRes.TotalResponse),
			"coflow_max_resp":   float64(cfRes.MaxResponse),
			"rounds":            float64(simRes.Rounds),
		},
	}, nil
}

// Solvers returns the default solver registry: the paper's two offline
// algorithms, the online batching algorithm, the three simulation
// heuristics, and the coflow extension.
func Solvers() []Solver {
	out := []Solver{ARTSolver{C: 1}, MRTSolver{}, AMRTSolver{}}
	for _, p := range heuristics.All() {
		out = append(out, PolicySolver{Policy: p})
	}
	return append(out, CoflowSolver{Policy: "SEBF"})
}

// SolverByName resolves a registered solver by Name; nil if unknown. Sim
// policies outside the default registry (FIFO, GreedyAge) resolve too.
func SolverByName(name string) Solver {
	for _, s := range Solvers() {
		if s.Name() == name {
			return s
		}
	}
	if p := heuristics.ByName(name); p != nil {
		return PolicySolver{Policy: p}
	}
	switch name {
	case "Coflow/SCF":
		return CoflowSolver{Policy: "SCF"}
	case "Coflow/FIFO":
		return CoflowSolver{Policy: "FIFO"}
	}
	return nil
}
