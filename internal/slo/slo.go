// Package slo evaluates service-level objectives over the streaming
// scheduler's cumulative counters using the multi-window, multi-burn-rate
// method: each declarative target (a name, an objective like 0.999, and
// an SLI extracting good/total event counts from a runtime summary) is
// judged over a fast and a slow sliding window simultaneously. The burn
// rate of a window is its error rate divided by the error budget
// (1 − objective), so burn rate 1 spends the budget exactly at the
// sustainable pace; a high burn over the fast window (default 14.4×)
// flags an urgent breach, a moderate burn over the slow window
// (default 3×) a warning. Two windows make the alert both fast — the
// short window reacts within seconds — and durable — the long window
// keeps it asserted until the budget is genuinely recovering, instead of
// flapping when a burst ages out of the short window.
//
// The engine is sample-driven and allocation-light: a fixed ring of
// cumulative-counter samples, appended by a single periodic Observe call
// (the daemon's sampler goroutine) and reduced to per-target rates in
// place. Status returns the last evaluation; it never touches the
// scheduler's hot path.
package slo

import (
	"fmt"
	"sync"
	"time"

	"flowsched/internal/stream"
)

// SLI extracts one objective's event counts from a runtime summary:
// good events and total events, both cumulative since the run started.
// Rates over a window are computed from sample deltas, so the function
// must be monotone in both results.
type SLI func(s stream.Summary) (good, total int64)

// Target is one declarative objective: Name labels it in metrics and
// status, Objective is the target good fraction in (0, 1) — e.g. 0.999
// for "99.9% of completions within the response bound" — and SLI
// supplies the counts.
type Target struct {
	Name      string
	Objective float64
	SLI       SLI
}

// Defaults for Config fields left zero, following the fast-burn /
// slow-burn alerting convention (1h/14.4× paging, 6h/3× warning scaled
// down to scheduler time: windows here default to seconds, not hours,
// because a round is microseconds, but the thresholds keep their
// standard meaning relative to the windows).
const (
	DefaultSampleEvery = 250 * time.Millisecond
	DefaultFastWindow  = 5 * time.Second
	DefaultSlowWindow  = time.Minute
	DefaultFastBurn    = 14.4
	DefaultSlowBurn    = 3.0
)

// Config tunes an Engine.
type Config struct {
	// Targets are the objectives to evaluate; at least one is required.
	Targets []Target
	// SampleEvery is the expected spacing of Observe calls; it sizes the
	// sample ring so the slow window is always covered (<= 0 selects
	// DefaultSampleEvery).
	SampleEvery time.Duration
	// FastWindow and SlowWindow are the two sliding windows (<= 0
	// selects the defaults). FastWindow must not exceed SlowWindow.
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurn and SlowBurn are the burn-rate thresholds: fast-window
	// burn >= FastBurn is a breach, slow-window burn >= SlowBurn a
	// warning (<= 0 selects the defaults).
	FastBurn float64
	SlowBurn float64
}

// TargetStatus is one target's latest evaluation.
type TargetStatus struct {
	Name      string  `json:"name"`
	Objective float64 `json:"objective"`
	// Good and Total are the cumulative counts at the last sample.
	Good  int64 `json:"good"`
	Total int64 `json:"total"`
	// Error rates and burn rates over the two windows. A window with no
	// events reports rate 0 (no evidence is not a breach).
	FastErrorRate float64 `json:"fast_error_rate"`
	SlowErrorRate float64 `json:"slow_error_rate"`
	FastBurnRate  float64 `json:"fast_burn_rate"`
	SlowBurnRate  float64 `json:"slow_burn_rate"`
	// Breaching is the paging condition (fast burn at or above the fast
	// threshold); Warning the slow-window condition.
	Breaching bool `json:"breaching"`
	Warning   bool `json:"warning"`
}

// Status is the engine's latest evaluation across all targets.
type Status struct {
	// Time is the last sample's timestamp (zero before the first
	// Observe).
	Time time.Time `json:"time"`
	// FastWindow and SlowWindow echo the configured windows in seconds,
	// so a scraper can interpret the rates without the daemon's flags.
	FastWindowSeconds float64        `json:"fast_window_seconds"`
	SlowWindowSeconds float64        `json:"slow_window_seconds"`
	Targets           []TargetStatus `json:"targets"`
}

// sample is one Observe call's cumulative counts: a timestamp plus
// (good, total) per target, flattened into a fixed ring.
type sample struct {
	t    time.Time
	good []int64
	tot  []int64
}

// Engine evaluates the configured targets; construct with New. One
// goroutine calls Observe (the daemon's sampler); Status and Breaching
// may be called concurrently from any goroutine (the daemon's handlers).
// None of this is on the scheduler's hot path, so a plain mutex is the
// right tool here — the seqlock discipline stays in obs and stats.
type Engine struct {
	mu   sync.Mutex
	cfg  Config
	ring []sample
	n    int // samples ever observed
	last Status
}

// New validates cfg, applies defaults, and returns an engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("slo: no targets")
	}
	seen := map[string]bool{}
	for _, t := range cfg.Targets {
		if t.Name == "" {
			return nil, fmt.Errorf("slo: target with empty name")
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("slo: duplicate target %q", t.Name)
		}
		seen[t.Name] = true
		if !(t.Objective > 0 && t.Objective < 1) {
			return nil, fmt.Errorf("slo: target %q objective %v outside (0, 1)", t.Name, t.Objective)
		}
		if t.SLI == nil {
			return nil, fmt.Errorf("slo: target %q has no SLI", t.Name)
		}
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = DefaultFastWindow
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = DefaultSlowWindow
	}
	if cfg.FastWindow > cfg.SlowWindow {
		return nil, fmt.Errorf("slo: fast window %v exceeds slow window %v", cfg.FastWindow, cfg.SlowWindow)
	}
	if cfg.FastBurn <= 0 {
		cfg.FastBurn = DefaultFastBurn
	}
	if cfg.SlowBurn <= 0 {
		cfg.SlowBurn = DefaultSlowBurn
	}
	slots := int(cfg.SlowWindow/cfg.SampleEvery) + 2
	e := &Engine{
		cfg:  cfg,
		ring: make([]sample, slots),
	}
	k := len(cfg.Targets)
	for i := range e.ring {
		e.ring[i] = sample{good: make([]int64, k), tot: make([]int64, k)}
	}
	e.last = Status{
		FastWindowSeconds: cfg.FastWindow.Seconds(),
		SlowWindowSeconds: cfg.SlowWindow.Seconds(),
		Targets:           make([]TargetStatus, k),
	}
	for i, t := range cfg.Targets {
		e.last.Targets[i] = TargetStatus{Name: t.Name, Objective: t.Objective}
	}
	return e, nil
}

// Observe records one cumulative sample at time now and re-evaluates
// every target. The caller supplies now so tests can drive virtual time;
// the daemon passes time.Now(). Calls must be time-ordered.
func (e *Engine) Observe(now time.Time, s stream.Summary) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := &e.ring[e.n%len(e.ring)]
	cur.t = now
	for i, t := range e.cfg.Targets {
		cur.good[i], cur.tot[i] = t.SLI(s)
	}
	e.n++
	e.last.Time = now
	for i, t := range e.cfg.Targets {
		ts := &e.last.Targets[i]
		ts.Good, ts.Total = cur.good[i], cur.tot[i]
		ts.FastErrorRate = e.windowErrorRate(i, now, e.cfg.FastWindow)
		ts.SlowErrorRate = e.windowErrorRate(i, now, e.cfg.SlowWindow)
		budget := 1 - t.Objective
		ts.FastBurnRate = ts.FastErrorRate / budget
		ts.SlowBurnRate = ts.SlowErrorRate / budget
		ts.Breaching = ts.FastBurnRate >= e.cfg.FastBurn
		ts.Warning = ts.SlowBurnRate >= e.cfg.SlowBurn
	}
}

// windowErrorRate computes target i's error rate over the trailing
// window ending at now: the delta of (good, total) against the newest
// retained sample at least window old — or the oldest retained sample
// while the ring is still warming up, so a young engine reports over
// whatever history it has rather than nothing.
func (e *Engine) windowErrorRate(i int, now time.Time, window time.Duration) float64 {
	cutoff := now.Add(-window)
	size := len(e.ring)
	oldest := e.n - size
	if oldest < 0 {
		oldest = 0
	}
	// Newest sample (excluding the one just written) at or before the
	// cutoff; the scan is oldest-first and stops at the first newer one.
	base := -1
	for k := oldest; k < e.n-1; k++ {
		if e.ring[k%size].t.After(cutoff) {
			break
		}
		base = k
	}
	if base < 0 {
		base = oldest
	}
	if base == e.n-1 {
		// Only one sample ever: no interval to evaluate.
		return 0
	}
	b, c := &e.ring[base%size], &e.ring[(e.n-1)%size]
	dTot := c.tot[i] - b.tot[i]
	if dTot <= 0 {
		return 0
	}
	dGood := c.good[i] - b.good[i]
	bad := dTot - dGood
	if bad <= 0 {
		return 0
	}
	return float64(bad) / float64(dTot)
}

// Status returns a copy of the latest evaluation. Safe to call from any
// goroutine.
func (e *Engine) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.last
	out.Targets = append([]TargetStatus(nil), e.last.Targets...)
	return out
}

// Breaching returns the names of targets currently in fast-burn breach,
// in configuration order (nil when healthy). Safe to call from any
// goroutine.
func (e *Engine) Breaching() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var names []string
	for _, t := range e.last.Targets {
		if t.Breaching {
			names = append(names, t.Name)
		}
	}
	return names
}
