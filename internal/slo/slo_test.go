package slo

import (
	"testing"
	"time"

	"flowsched/internal/stream"
)

// delivery is the daemon's shedding SLI shape: good = admitted − dropped,
// total = admitted.
func delivery(s stream.Summary) (int64, int64) {
	return s.Admitted - s.Dropped, s.Admitted
}

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{
		Targets:     []Target{{Name: "delivery", Objective: 0.99, SLI: delivery}},
		SampleEvery: time.Second,
		FastWindow:  5 * time.Second,
		SlowWindow:  30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineValidation(t *testing.T) {
	cases := []Config{
		{},
		{Targets: []Target{{Name: "", Objective: 0.9, SLI: delivery}}},
		{Targets: []Target{{Name: "x", Objective: 0, SLI: delivery}}},
		{Targets: []Target{{Name: "x", Objective: 1, SLI: delivery}}},
		{Targets: []Target{{Name: "x", Objective: 0.9}}},
		{Targets: []Target{
			{Name: "x", Objective: 0.9, SLI: delivery},
			{Name: "x", Objective: 0.5, SLI: delivery},
		}},
		{
			Targets:    []Target{{Name: "x", Objective: 0.9, SLI: delivery}},
			FastWindow: time.Minute, SlowWindow: time.Second,
		},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestEngineBurnRateFlips drives the full alert lifecycle on virtual
// time: healthy traffic arms nothing, a 50% error burst breaches the
// fast window within one sample (burn 50x against a 1% budget), recovery
// clears the breach once the burst ages out of the fast window while the
// slow window keeps the warning asserted longer.
func TestEngineBurnRateFlips(t *testing.T) {
	e := newTestEngine(t)
	t0 := time.Unix(1000, 0)
	var admitted, dropped int64
	obs := func(sec int) Status {
		e.Observe(t0.Add(time.Duration(sec)*time.Second), stream.Summary{Admitted: admitted, Dropped: dropped})
		return e.Status()
	}
	// 10s healthy: 1000 events/s, no drops.
	var st Status
	for s := 0; s < 10; s++ {
		admitted += 1000
		st = obs(s)
	}
	tg := st.Targets[0]
	if tg.Breaching || tg.Warning || tg.FastBurnRate != 0 {
		t.Fatalf("healthy traffic alerted: %+v", tg)
	}
	// 3s burst at 50% drops: fast error rate 0.5, burn 50 >= 14.4.
	for s := 10; s < 13; s++ {
		admitted += 1000
		dropped += 500
		st = obs(s)
	}
	tg = st.Targets[0]
	if !tg.Breaching {
		t.Fatalf("50%% drop burst did not breach: %+v", tg)
	}
	if !tg.Warning {
		t.Fatalf("burst breached fast but not slow: %+v", tg)
	}
	if tg.FastBurnRate < 14.4 {
		t.Fatalf("fast burn %v below threshold yet breaching", tg.FastBurnRate)
	}
	// Recovery: clean traffic. The burst leaves the 5s fast window after
	// 5 more seconds, clearing the breach; the 30s slow window holds the
	// warning (1500 bad of ~30000 = 5% >> 3% budget-rate threshold x1%).
	for s := 13; s < 20; s++ {
		admitted += 1000
		st = obs(s)
	}
	tg = st.Targets[0]
	if tg.Breaching {
		t.Fatalf("breach did not clear after burst aged out of fast window: %+v", tg)
	}
	if !tg.Warning {
		t.Fatalf("slow window forgot the burst too quickly: %+v", tg)
	}
	// Long recovery: the slow window eventually clears too.
	for s := 20; s < 50; s++ {
		admitted += 1000
		st = obs(s)
	}
	tg = st.Targets[0]
	if tg.Breaching || tg.Warning {
		t.Fatalf("alerts still asserted after full recovery: %+v", tg)
	}
	if tg.Good != admitted-dropped || tg.Total != admitted {
		t.Fatalf("cumulative counts drifted: %+v", tg)
	}
}

// TestEngineColdStart: errors in the very first intervals must alert —
// the window falls back to the oldest retained sample instead of
// reporting nothing.
func TestEngineColdStart(t *testing.T) {
	e := newTestEngine(t)
	t0 := time.Unix(0, 0)
	e.Observe(t0, stream.Summary{})
	if st := e.Status(); st.Targets[0].Breaching {
		t.Fatalf("single sample breached with no interval: %+v", st.Targets[0])
	}
	e.Observe(t0.Add(time.Second), stream.Summary{Admitted: 1000, Dropped: 900})
	tg := e.Status().Targets[0]
	if !tg.Breaching {
		t.Fatalf("90%% drops on cold start did not breach: %+v", tg)
	}
}

// TestEngineIdle: samples with no new events keep rates at zero rather
// than dividing by nothing.
func TestEngineIdle(t *testing.T) {
	e := newTestEngine(t)
	t0 := time.Unix(0, 0)
	for s := 0; s < 10; s++ {
		e.Observe(t0.Add(time.Duration(s)*time.Second), stream.Summary{Admitted: 500, Dropped: 100})
	}
	tg := e.Status().Targets[0]
	if tg.FastErrorRate != 0 || tg.SlowErrorRate != 0 || tg.Breaching || tg.Warning {
		t.Fatalf("idle stream alerted: %+v", tg)
	}
}

// TestEngineBreachingNames checks the healthz helper's view.
func TestEngineBreachingNames(t *testing.T) {
	e := newTestEngine(t)
	if names := e.Breaching(); names != nil {
		t.Fatalf("fresh engine breaching %v", names)
	}
	t0 := time.Unix(0, 0)
	e.Observe(t0, stream.Summary{})
	e.Observe(t0.Add(time.Second), stream.Summary{Admitted: 100, Dropped: 100})
	if names := e.Breaching(); len(names) != 1 || names[0] != "delivery" {
		t.Fatalf("breaching = %v, want [delivery]", names)
	}
}

// TestEngineStatusCopy: mutating a returned Status must not leak into
// the engine.
func TestEngineStatusCopy(t *testing.T) {
	e := newTestEngine(t)
	e.Observe(time.Unix(0, 0), stream.Summary{Admitted: 10})
	st := e.Status()
	st.Targets[0].Name = "mangled"
	if got := e.Status().Targets[0].Name; got != "delivery" {
		t.Fatalf("Status aliases engine state: %q", got)
	}
}
