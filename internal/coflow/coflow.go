// Package coflow extends the switch scheduling model to co-flows — the
// generalization the paper names as future work in Section 6 and compares
// against in related work ([15] Varys, [16] Sincronia-style scheduling).
//
// A coflow is a set of flows belonging to one application stage (e.g. a
// shuffle); it completes when its last member flow completes, and its
// response time is that completion minus the coflow's release round. The
// package flattens coflow instances onto the base switch model, computes
// coflow-level response metrics, and provides online policies:
// coflow-FIFO, SCF (smallest total size first) and SEBF (smallest
// effective bottleneck first, the Varys heuristic) — all implemented as
// sim.Policy so the existing engine and validation apply unchanged.
package coflow

import (
	"fmt"
	"sort"

	"flowsched/internal/sim"
	"flowsched/internal/switchnet"
)

// Coflow is a group of flows released together.
type Coflow struct {
	// Release is the round at which every member becomes available.
	Release int
	// Members are the flows; their Release fields are ignored (the
	// coflow's Release applies).
	Members []switchnet.Flow
}

// Instance is a coflow scheduling instance.
type Instance struct {
	Switch  switchnet.Switch
	Coflows []Coflow
}

// Flatten converts the coflow instance into a plain flow instance plus an
// owner map from flattened flow index to coflow index.
func (in *Instance) Flatten() (*switchnet.Instance, []int) {
	flat := &switchnet.Instance{Switch: in.Switch}
	var owner []int
	for ci, cf := range in.Coflows {
		for _, f := range cf.Members {
			f.Release = cf.Release
			flat.Flows = append(flat.Flows, f)
			owner = append(owner, ci)
		}
	}
	return flat, owner
}

// Validate checks the flattened instance.
func (in *Instance) Validate() error {
	for ci, cf := range in.Coflows {
		if len(cf.Members) == 0 {
			return fmt.Errorf("coflow: coflow %d has no members", ci)
		}
		if cf.Release < 0 {
			return fmt.Errorf("coflow: coflow %d has negative release", ci)
		}
	}
	flat, _ := in.Flatten()
	return flat.Validate()
}

// Result summarizes a coflow-level evaluation of a flattened schedule.
type Result struct {
	// Completion[c] is the coflow's completion round + 1 (the paper's
	// C_e convention lifted to coflows).
	Completion []int
	// Response[c] = Completion[c] - Release[c].
	Response []int
	// TotalResponse and MaxResponse aggregate Response.
	TotalResponse int
	MaxResponse   int
}

// Evaluate computes coflow metrics for a complete schedule of the
// flattened instance.
func Evaluate(in *Instance, owner []int, s *switchnet.Schedule) (*Result, error) {
	nC := len(in.Coflows)
	res := &Result{Completion: make([]int, nC), Response: make([]int, nC)}
	for f, t := range s.Round {
		if t == switchnet.Unscheduled {
			return nil, fmt.Errorf("coflow: flow %d unscheduled", f)
		}
		c := owner[f]
		if t+1 > res.Completion[c] {
			res.Completion[c] = t + 1
		}
	}
	for c := range res.Response {
		r := res.Completion[c] - in.Coflows[c].Release
		res.Response[c] = r
		res.TotalResponse += r
		if r > res.MaxResponse {
			res.MaxResponse = r
		}
	}
	return res, nil
}

// AvgResponse returns the mean coflow response time.
func (r *Result) AvgResponse() float64 {
	if len(r.Response) == 0 {
		return 0
	}
	return float64(r.TotalResponse) / float64(len(r.Response))
}

// policy orders coflows by a key each round and first-fits their pending
// flows in that order (work-conserving: later coflows fill leftover
// capacity).
type policy struct {
	name  string
	owner []int
	// key returns the priority key of a coflow given its pending members;
	// smaller runs first.
	key func(st *sim.State, members []int) int
}

// Name implements sim.Policy.
func (p *policy) Name() string { return p.name }

// Pick implements sim.Policy.
func (p *policy) Pick(st *sim.State) []int {
	// Group pending flows by coflow.
	groups := map[int][]int{}
	for i, pd := range st.Pending {
		c := p.owner[pd.Flow]
		groups[c] = append(groups[c], i)
	}
	order := make([]int, 0, len(groups))
	for c := range groups {
		order = append(order, c)
	}
	keys := map[int]int{}
	for c, members := range groups {
		keys[c] = p.key(st, members)
	}
	sort.Slice(order, func(a, b int) bool {
		if keys[order[a]] != keys[order[b]] {
			return keys[order[a]] < keys[order[b]]
		}
		return order[a] < order[b]
	})
	// First-fit respecting port capacities, coflow priority outermost.
	loadIn := make([]int, st.Switch.NumIn())
	loadOut := make([]int, st.Switch.NumOut())
	var picks []int
	for _, c := range order {
		members := groups[c]
		// Within a coflow, heaviest flows first (they bound completion).
		sort.Slice(members, func(a, b int) bool {
			da, db := st.Pending[members[a]].Demand, st.Pending[members[b]].Demand
			if da != db {
				return da > db
			}
			return members[a] < members[b]
		})
		for _, i := range members {
			pd := st.Pending[i]
			if loadIn[pd.In]+pd.Demand <= st.Switch.InCaps[pd.In] &&
				loadOut[pd.Out]+pd.Demand <= st.Switch.OutCaps[pd.Out] {
				loadIn[pd.In] += pd.Demand
				loadOut[pd.Out] += pd.Demand
				picks = append(picks, i)
			}
		}
	}
	return picks
}

// FIFO schedules coflows in release order (ties by index).
func FIFO(in *Instance, owner []int) sim.Policy {
	return &policy{
		name:  "CoflowFIFO",
		owner: owner,
		key: func(st *sim.State, members []int) int {
			return in.Coflows[ownerOf(owner, st, members)].Release
		},
	}
}

// SCF runs the smallest remaining total demand first.
func SCF(owner []int) sim.Policy {
	return &policy{
		name:  "SCF",
		owner: owner,
		key: func(st *sim.State, members []int) int {
			total := 0
			for _, i := range members {
				total += st.Pending[i].Demand
			}
			return total
		},
	}
}

// SEBF runs the smallest effective bottleneck first (Varys): a coflow's
// key is the largest per-port remaining demand among its members, i.e.
// the minimum rounds the coflow still needs on its most congested port.
func SEBF(owner []int) sim.Policy {
	return &policy{
		name:  "SEBF",
		owner: owner,
		key: func(st *sim.State, members []int) int {
			loadIn := map[int]int{}
			loadOut := map[int]int{}
			bottleneck := 0
			for _, i := range members {
				pd := st.Pending[i]
				loadIn[pd.In] += pd.Demand
				loadOut[pd.Out] += pd.Demand
				if loadIn[pd.In] > bottleneck {
					bottleneck = loadIn[pd.In]
				}
				if loadOut[pd.Out] > bottleneck {
					bottleneck = loadOut[pd.Out]
				}
			}
			return bottleneck
		},
	}
}

// ownerOf returns the coflow index of a group's first member.
func ownerOf(owner []int, st *sim.State, members []int) int {
	return owner[st.Pending[members[0]].Flow]
}

// Run flattens the instance, simulates the policy, and returns coflow
// metrics together with the flow-level result.
func Run(in *Instance, mk func(owner []int) sim.Policy) (*Result, *sim.Result, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	flat, owner := in.Flatten()
	pol := mk(owner)
	simRes, err := sim.Run(flat, pol)
	if err != nil {
		return nil, nil, err
	}
	cfRes, err := Evaluate(in, owner, simRes.Schedule)
	if err != nil {
		return nil, nil, err
	}
	return cfRes, simRes, nil
}
