package coflow

import (
	"math/rand"
	"testing"

	"flowsched/internal/sim"
	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

// randomCoflows builds an instance with nC coflows of 1-4 members each.
func randomCoflows(rng *rand.Rand, m, nC int) *Instance {
	in := &Instance{Switch: switchnet.UnitSwitch(m)}
	for c := 0; c < nC; c++ {
		cf := Coflow{Release: rng.Intn(5)}
		k := 1 + rng.Intn(4)
		for i := 0; i < k; i++ {
			cf.Members = append(cf.Members, switchnet.Flow{
				In: rng.Intn(m), Out: rng.Intn(m), Demand: 1,
			})
		}
		in.Coflows = append(in.Coflows, cf)
	}
	return in
}

func TestFlattenOwners(t *testing.T) {
	in := &Instance{
		Switch: switchnet.UnitSwitch(2),
		Coflows: []Coflow{
			{Release: 1, Members: []switchnet.Flow{{In: 0, Out: 0, Demand: 1}, {In: 1, Out: 1, Demand: 1}}},
			{Release: 3, Members: []switchnet.Flow{{In: 0, Out: 1, Demand: 1}}},
		},
	}
	flat, owner := in.Flatten()
	if flat.N() != 3 {
		t.Fatalf("n = %d", flat.N())
	}
	if owner[0] != 0 || owner[1] != 0 || owner[2] != 1 {
		t.Fatalf("owner = %v", owner)
	}
	if flat.Flows[0].Release != 1 || flat.Flows[2].Release != 3 {
		t.Fatal("coflow release not applied to members")
	}
}

func TestValidate(t *testing.T) {
	bad := &Instance{Switch: switchnet.UnitSwitch(1), Coflows: []Coflow{{Release: 0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty coflow accepted")
	}
	bad2 := &Instance{Switch: switchnet.UnitSwitch(1), Coflows: []Coflow{
		{Release: -1, Members: []switchnet.Flow{{In: 0, Out: 0, Demand: 1}}},
	}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("negative release accepted")
	}
}

func TestEvaluateCompletionSemantics(t *testing.T) {
	in := &Instance{
		Switch: switchnet.UnitSwitch(2),
		Coflows: []Coflow{
			{Release: 0, Members: []switchnet.Flow{
				{In: 0, Out: 0, Demand: 1},
				{In: 1, Out: 1, Demand: 1},
			}},
		},
	}
	_, owner := in.Flatten()
	s := &switchnet.Schedule{Round: []int{0, 4}}
	res, err := Evaluate(in, owner, s)
	if err != nil {
		t.Fatal(err)
	}
	// Coflow completes with its LAST member: round 4 -> completion 5.
	if res.Completion[0] != 5 || res.Response[0] != 5 {
		t.Fatalf("completion=%d response=%d, want 5, 5", res.Completion[0], res.Response[0])
	}
	if res.MaxResponse != 5 || res.AvgResponse() != 5 {
		t.Fatal("aggregates wrong")
	}
}

func TestEvaluateRejectsIncomplete(t *testing.T) {
	in := randomCoflows(rand.New(rand.NewSource(1)), 2, 2)
	flat, owner := in.Flatten()
	s := switchnet.NewSchedule(flat.N())
	if _, err := Evaluate(in, owner, s); err == nil {
		t.Fatal("incomplete schedule accepted")
	}
}

func TestPoliciesProduceValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		in := randomCoflows(rng, 3, 4)
		for _, mk := range []func([]int) sim.Policy{SCF, SEBF, func(o []int) sim.Policy { return FIFO(in, o) }} {
			cfRes, simRes, err := Run(in, mk)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			flat, _ := in.Flatten()
			if err := simRes.Schedule.Validate(flat, flat.Switch.Caps()); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if cfRes.TotalResponse < len(in.Coflows) {
				t.Fatalf("trial %d: total %d below one round per coflow", trial, cfRes.TotalResponse)
			}
		}
	}
}

func TestSEBFBeatsFIFOOnSkew(t *testing.T) {
	// One huge coflow released first, many tiny coflows after: SEBF should
	// not trap the tiny coflows behind the elephant the way FIFO does.
	in := &Instance{Switch: switchnet.UnitSwitch(4)}
	big := Coflow{Release: 0}
	for i := 0; i < 12; i++ {
		big.Members = append(big.Members, switchnet.Flow{In: 0, Out: 1, Demand: 1})
	}
	in.Coflows = append(in.Coflows, big)
	for i := 0; i < 6; i++ {
		in.Coflows = append(in.Coflows, Coflow{
			Release: 1,
			Members: []switchnet.Flow{{In: 0, Out: 1, Demand: 1}},
		})
	}
	sebf, _, err := Run(in, SEBF)
	if err != nil {
		t.Fatal(err)
	}
	fifo, _, err := Run(in, func(o []int) sim.Policy { return FIFO(in, o) })
	if err != nil {
		t.Fatal(err)
	}
	if sebf.TotalResponse >= fifo.TotalResponse {
		t.Fatalf("SEBF total %d not better than FIFO %d on skewed workload",
			sebf.TotalResponse, fifo.TotalResponse)
	}
}

func TestSCFOrdersBySize(t *testing.T) {
	// Two coflows on the same port pair, sizes 1 and 3, released together:
	// SCF finishes the small one first.
	in := &Instance{
		Switch: switchnet.UnitSwitch(1),
		Coflows: []Coflow{
			{Release: 0, Members: []switchnet.Flow{
				{In: 0, Out: 0, Demand: 1}, {In: 0, Out: 0, Demand: 1}, {In: 0, Out: 0, Demand: 1},
			}},
			{Release: 0, Members: []switchnet.Flow{{In: 0, Out: 0, Demand: 1}}},
		},
	}
	res, _, err := Run(in, SCF)
	if err != nil {
		t.Fatal(err)
	}
	if res.Response[1] != 1 {
		t.Fatalf("small coflow response = %d, want 1", res.Response[1])
	}
	if res.Response[0] != 4 {
		t.Fatalf("large coflow response = %d, want 4", res.Response[0])
	}
}

func TestRunOnPoissonDerivedCoflows(t *testing.T) {
	// Group a Poisson flow instance into coflows of 3 to stress the
	// policies on realistic traffic.
	rng := rand.New(rand.NewSource(5))
	base := workload.PoissonConfig{M: 6, T: 5, Ports: 4}.Generate(rng)
	in := &Instance{Switch: base.Switch}
	var cur Coflow
	for i, f := range base.Flows {
		if len(cur.Members) == 0 {
			cur.Release = f.Release
		}
		f.Release = 0
		cur.Members = append(cur.Members, f)
		if len(cur.Members) == 3 || i == len(base.Flows)-1 {
			in.Coflows = append(in.Coflows, cur)
			cur = Coflow{}
		}
	}
	if len(in.Coflows) == 0 {
		t.Skip("empty draw")
	}
	for _, mk := range []func([]int) sim.Policy{SCF, SEBF} {
		if _, _, err := Run(in, mk); err != nil {
			t.Fatal(err)
		}
	}
}
