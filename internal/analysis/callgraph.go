package analysis

import (
	"go/ast"
	"go/types"
)

// Static call resolution: the hotpath analyzer propagates "may allocate"
// along calls it can resolve at compile time — direct function calls and
// method calls on concrete receivers. Dynamic dispatch (interface
// methods, function values) is not followed; the suite's coverage there
// comes from annotating the implementations themselves (every native
// policy's Pick is a //flowsched:hotpath root of its own).

// staticCallee resolves the called *types.Func of call, or nil when the
// call is dynamic, a builtin, or a type conversion.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // method expression or field func value
			}
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier: pkg.F.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcIndex maps a package's declared functions both ways.
type funcIndex struct {
	decls map[*types.Func]*ast.FuncDecl
	objs  map[*ast.FuncDecl]*types.Func
}

// indexFuncs collects every function and method declared in the package.
func indexFuncs(pass *Pass) *funcIndex {
	idx := &funcIndex{
		decls: map[*types.Func]*ast.FuncDecl{},
		objs:  map[*ast.FuncDecl]*types.Func{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			idx.decls[obj] = fn
			idx.objs[fn] = obj
		}
	}
	return idx
}

// funcDisplayName renders fn for diagnostics: "F" or "(*T).M".
func funcDisplayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return recvString(sig.Recv().Type()) + "." + fn.Name()
	}
	return fn.Name()
}
