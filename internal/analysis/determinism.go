package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism pins the cross-K bit-reproducibility contract in packages
// whose doc carries //flowsched:deterministic: identical inputs must
// yield identical schedules, so nothing observable may depend on map
// iteration order, a process-global random source, or the wall clock.
//
// Three checks:
//
//   - maprange: a `for … range m` over a map is flagged unless the
//     enclosing function also calls into sort/slices after the loop
//     starts (the collect-keys-then-sort idiom PR 1 installed), or the
//     loop carries //flowsched:allow maprange.
//   - rand: any call to a math/rand or math/rand/v2 package-level
//     function other than the New* constructors is a draw from the
//     process-global source — unseeded and shared. Seeded sources built
//     with rand.New(rand.NewSource(seed)) pass. Escape: allow rand.
//   - wallclock: time.Now/Since/Until feed nondeterministic values into
//     scheduling state. In packages that are also //flowsched:clockgated
//     the gatedclock analyzer owns clock discipline and this check
//     stands down. Escape: allow wallclock.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "reject unordered map iteration, global math/rand, and wall-clock input in //flowsched:deterministic packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !pass.Dirs.HasMark("deterministic") {
		return nil
	}
	checkClock := !pass.Dirs.HasMark("clockgated")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || pass.InTestFile(fn.Pos()) {
				continue
			}
			checkDeterminism(pass, fn, checkClock)
		}
	}
	return nil
}

func checkDeterminism(pass *Pass, fn *ast.FuncDecl, checkClock bool) {
	info := pass.TypesInfo

	// Collect the function's sort/slices call positions first, so a map
	// range can look ahead for its adjacent sort.
	var sortCalls []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if pkg := calleePkgPath(info, call); pkg == "sort" || pkg == "slices" {
				sortCalls = append(sortCalls, call.Pos())
			}
		}
		return true
	})
	sortedAfter := func(pos token.Pos) bool {
		for _, p := range sortCalls {
			if p > pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.RangeStmt:
			t, ok := info.Types[node.X]
			if !ok {
				return true
			}
			if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sortedAfter(node.Pos()) {
				return true // collect-then-sort idiom
			}
			pass.Reportf(node.Pos(), "maprange", "map iteration order is nondeterministic; collect keys and sort (no sort/slices call follows in %s)", funcLabel(fn))
		case *ast.CallExpr:
			pkg := calleePkgPath(info, node)
			switch {
			case pkg == "math/rand" || pkg == "math/rand/v2":
				sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fnObj, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok {
					return true
				}
				if sig, ok := fnObj.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // method on an explicit *Rand: seeded by construction
				}
				if strings.HasPrefix(fnObj.Name(), "New") {
					return true // building a seeded source/generator
				}
				pass.Reportf(node.Pos(), "rand", "%s.%s draws from the process-global source; use a seeded *rand.Rand", pkg, fnObj.Name())
			case checkClock && pkg == "time" && isClockCall(info, node):
				sel := node.Fun.(*ast.SelectorExpr)
				pass.Reportf(node.Pos(), "wallclock", "time.%s feeds wall-clock values into a deterministic package", sel.Sel.Name)
			}
		}
		return true
	})
}

// calleePkgPath returns the defining package path of a call's callee,
// "" when unresolvable (builtins, func values, conversions).
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

func funcLabel(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		return "method " + fn.Name.Name
	}
	return "function " + fn.Name.Name
}
