package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField catches the mixed-access bug class: once any access to a
// struct field goes through sync/atomic (atomic.LoadInt64(&s.f),
// atomic.StoreUint64(&s.f[i], …)), every other access to that field in
// the package must be atomic too — a plain read or write would race with
// the atomic side. Fields declared with the typed atomic.* wrappers
// (atomic.Int64 …) are checked for by-value copies, which silently
// detach the copy from the shared word.
//
// The analysis is per-package: every field it can reason about in this
// repository is unexported, so all accesses are in-package by
// construction. Single-writer disciplines that deliberately mix plain
// reads with atomic stores (the seqlock'd stats ring) annotate the field
// declaration with //flowsched:allow atomic, which suppresses every
// finding for that field at once.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "require fields accessed via sync/atomic anywhere to be accessed atomically everywhere",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: find fields whose address reaches a sync/atomic call, and
	// remember the sanctioned selector nodes (those inside such calls).
	atomicFields := map[*types.Var][]token.Pos{}
	sanctioned := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) || len(call.Args) == 0 {
				return true
			}
			if fld, sel := addressedField(info, call.Args[0]); fld != nil {
				atomicFields[fld] = append(atomicFields[fld], call.Pos())
				sanctioned[sel] = true
			}
			return true
		})
	}

	// Pass 2: every other access to those fields must itself be atomic;
	// typed atomic.* fields must not be copied by value.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || pass.InTestFile(sel.Pos()) {
				return true
			}
			fld := selectedField(info, sel)
			if fld == nil {
				return true
			}
			if _, hot := atomicFields[fld]; hot {
				if sanctioned[sel] || ancestorSanctioned(stack, sanctioned) {
					return true
				}
				if _, ok := pass.Dirs.Allowed("atomic", fld.Pos()); ok {
					return true
				}
				pass.Reportf(sel.Pos(), "atomic", "field %s is accessed with sync/atomic elsewhere in this package; this plain access races with it", fld.Name())
				return true
			}
			if isTypedAtomic(fld.Type()) && copiesAtomicValue(stack) {
				pass.Reportf(sel.Pos(), "atomic", "field %s has type %s and must not be copied by value", fld.Name(), fld.Type().String())
			}
			return true
		})
	}
	return nil
}

// isAtomicCall matches calls to sync/atomic package-level functions.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // atomic.Int64 methods manage their own word
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// addressedField unwraps &s.f or &s.f[i] to the field variable and the
// selector node that names it.
func addressedField(info *types.Info, arg ast.Expr) (*types.Var, *ast.SelectorExpr) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	x := ast.Unparen(un.X)
	if ix, ok := x.(*ast.IndexExpr); ok {
		x = ast.Unparen(ix.X)
	}
	sel, ok := x.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return selectedField(info, sel), sel
}

// selectedField resolves a selector to the struct field it names, nil
// for methods, qualified identifiers, and non-field selections.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	fld, _ := s.Obj().(*types.Var)
	return fld
}

// ancestorSanctioned reports whether the selector sits inside a
// sanctioned one (s.f in the sanctioned &s.f[i]'s path, for example).
func ancestorSanctioned(stack []ast.Node, sanctioned map[ast.Node]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if sanctioned[stack[i]] {
			return true
		}
	}
	return false
}

// isTypedAtomic matches the sync/atomic wrapper types (atomic.Int64 …).
func isTypedAtomic(t types.Type) bool {
	nt, ok := t.(*types.Named)
	if !ok || nt.Obj().Pkg() == nil {
		return false
	}
	return nt.Obj().Pkg().Path() == "sync/atomic" && !strings.HasSuffix(nt.Obj().Name(), "Pointer")
}

// copiesAtomicValue inspects the selector's immediate context: method
// calls on the field and taking its address are fine, anything else
// moves the struct by value.
func copiesAtomicValue(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		return false // receiver of a method call: s.f.Add(1)
	case *ast.UnaryExpr:
		return parent.Op != token.AND
	}
	return true
}
