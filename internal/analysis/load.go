package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Standalone driver: flowschedvet invoked with package patterns loads
// the package graph with `go list -export -deps`, type-checks each
// module package from source against its dependencies' gc export data,
// and runs the suite in dependency order so that object facts published
// by an upstream pass are available downstream — the same propagation
// go vet gets from vetx files, without leaving the process.

// listedPkg is the subset of `go list -json` output the driver needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// RunStandalone analyzes the packages matching patterns (resolved by the
// go tool from dir), printing findings to out in file:line:col form.
// It returns the number of findings.
func RunStandalone(dir string, patterns []string, out io.Writer) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return 0, err
	}

	exportFile := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	store := newFactStore()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f := exportFile[path]
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	total := 0
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || p.Error != nil {
			if p.Error != nil && p.Module != nil {
				return total, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
			}
			continue
		}
		n, err := analyzePackage(fset, imp, store, p, out)
		if err != nil {
			return total, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		total += n
	}
	return total, nil
}

// goList shells out to `go list -export -deps -json` and decodes the
// package stream (dependency order: imports precede importers).
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		p := new(listedPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// analyzePackage type-checks one module package from source and runs the
// full suite over it, printing findings to out.
func analyzePackage(fset *token.FileSet, imp types.Importer, store *factStore, p *listedPkg, out io.Writer) (int, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return 0, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return 0, err
	}
	diags := runSuite(fset, files, pkg, info, p.Module.Path, store)
	printDiags(out, fset, diags)
	return len(diags), nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// runSuite executes every analyzer over one type-checked package,
// returning position-sorted diagnostics (malformed directives included).
func runSuite(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, module string, store *factStore) []Diagnostic {
	dirs := NewDirectives(fset, files)
	var diags []Diagnostic
	diags = append(diags, dirs.Malformed()...)
	for _, a := range Suite() {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Module:    module,
			Dirs:      dirs,
			facts:     store,
			report: func(d Diagnostic) {
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Pos: token.NoPos, Check: a.Name,
				Message: fmt.Sprintf("internal error: %v", err),
			})
		}
	}
	sortDiagnostics(fset, diags)
	return diags
}

// printDiags writes findings as file:line:col: analyzer-tagged lines.
func printDiags(out io.Writer, fset *token.FileSet, diags []Diagnostic) {
	for _, d := range diags {
		pos := "-"
		if d.Pos.IsValid() {
			pos = fset.Position(d.Pos).String()
		}
		fmt.Fprintf(out, "%s: %s: %s\n", pos, d.Check, d.Message)
	}
}
