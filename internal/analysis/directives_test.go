package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const directivesSrc = `// Package p is a fixture.
//
//flowsched:deterministic
package p

//flowsched:hotpath
func Hot() {
	//flowsched:allow alloc: line-scoped scratch growth
	x := 1
	_ = x
}

//flowsched:allow rand: whole-function exemption
func Draw() int { return 4 }

func Cold() {}

//flowsched:allow bogus: not a real check
//flowsched:allow maprange
//flowsched:frobnicate
var x int
`

func parseDirectives(t *testing.T) (*token.FileSet, *ast.File, *Directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directivesSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, NewDirectives(fset, []*ast.File{f})
}

func TestDirectiveMarks(t *testing.T) {
	_, _, d := parseDirectives(t)
	if !d.HasMark("deterministic") {
		t.Error("deterministic mark not parsed")
	}
	if d.HasMark("clockgated") {
		t.Error("clockgated mark reported without a directive")
	}
}

func TestDirectiveHotPathRoots(t *testing.T) {
	_, f, d := parseDirectives(t)
	roots := d.HotPathRoots()
	if len(roots) != 1 || roots[0].Name.Name != "Hot" {
		t.Fatalf("roots = %v, want exactly Hot", roots)
	}
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == "Cold" && d.IsHotPath(fn) {
			t.Error("Cold wrongly marked hotpath")
		}
	}
}

func TestDirectiveAllowExtents(t *testing.T) {
	fset, f, d := parseDirectives(t)
	posOf := func(line int) token.Pos {
		tf := fset.File(f.Pos())
		return tf.LineStart(line)
	}
	allowLine := lineContaining(t, directivesSrc, "allow alloc: line-scoped")
	if _, ok := d.Allowed("alloc", posOf(allowLine)); !ok {
		t.Error("line allow does not cover its own line")
	}
	if _, ok := d.Allowed("alloc", posOf(allowLine+1)); !ok {
		t.Error("line allow does not cover the following line")
	}
	if _, ok := d.Allowed("alloc", posOf(allowLine+2)); ok {
		t.Error("line allow leaks past the following line")
	}
	if _, ok := d.Allowed("rand", posOf(allowLine)); ok {
		t.Error("allow for one check suppresses another")
	}
	// The function-doc allow covers the whole of Draw.
	drawLine := lineContaining(t, directivesSrc, "func Draw")
	if why, ok := d.Allowed("rand", posOf(drawLine)); !ok || !strings.Contains(why, "whole-function") {
		t.Errorf("function-doc allow missing: %q, %v", why, ok)
	}
}

func TestDirectiveMalformed(t *testing.T) {
	_, _, d := parseDirectives(t)
	var msgs []string
	for _, m := range d.Malformed() {
		msgs = append(msgs, m.Message)
	}
	if len(msgs) != 3 {
		t.Fatalf("malformed = %d (%v), want 3", len(msgs), msgs)
	}
	for i, wantSub := range []string{"known check", "justification", "unknown"} {
		if !strings.Contains(msgs[i], wantSub) {
			t.Errorf("malformed[%d] = %q, want substring %q", i, msgs[i], wantSub)
		}
	}
}

func lineContaining(t *testing.T, src, sub string) int {
	t.Helper()
	idx := strings.Index(src, sub)
	if idx < 0 {
		t.Fatalf("fixture lacks %q", sub)
	}
	return 1 + strings.Count(src[:idx], "\n")
}
