package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The source annotation grammar. Directives are ordinary //-comments
// beginning exactly with "//flowsched:" (no space — the doc-comment
// directive convention, so godoc hides them and gofmt leaves them
// alone):
//
//	//flowsched:hotpath
//	    On a function's doc comment: the function is a hot-path root.
//	    The hotpath analyzer requires it, and everything it reaches
//	    through static calls, to be allocation-free.
//
//	//flowsched:clockgated
//	//flowsched:deterministic
//	    Anywhere in a package (conventionally its package doc): opt the
//	    package into the gatedclock / determinism analyzers.
//
//	//flowsched:allow <check>: <justification>
//	    Suppress findings of <check> (alloc, clock, atomic, maprange,
//	    rand, wallclock) in the directive's extent: the whole function
//	    when it rides a function's doc comment, otherwise its own line
//	    and the next (covering both end-of-line and lead positions —
//	    including struct field declarations, whose findings anchor at
//	    the field). The justification is mandatory; an allow without one
//	    is itself reported.

// Checks valid in an allow directive, mapped to their analyzer.
var allowChecks = map[string]string{
	"alloc":     "hotpath",
	"clock":     "gatedclock",
	"atomic":    "atomicfield",
	"maprange":  "determinism",
	"rand":      "determinism",
	"wallclock": "determinism",
}

// Package-level marker verbs.
var pkgMarks = map[string]bool{
	"clockgated":    true,
	"deterministic": true,
}

// allowance is one parsed allow directive with its coverage extent.
type allowance struct {
	check, why string
	// Function-doc allows cover [lo, hi]; line allows cover their own
	// and the following source line of their file.
	lo, hi     token.Pos
	file       string
	line       int
	wholeRange bool
}

// Directives holds one package's parsed //flowsched: annotations.
type Directives struct {
	fset    *token.FileSet
	marks   map[string]bool
	hotpath map[*ast.FuncDecl]bool
	allows  []allowance
	// Malformed directives, reported by the driver.
	malformed []Diagnostic
}

// NewDirectives parses every //flowsched: comment in files.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fset:    fset,
		marks:   map[string]bool{},
		hotpath: map[*ast.FuncDecl]bool{},
	}
	for _, f := range files {
		// Map doc-comment groups to their function declarations, so a
		// directive in one resolves to the function's extent.
		fnDoc := map[*ast.CommentGroup]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
				fnDoc[fn.Doc] = fn
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parse(c, fnDoc[cg])
			}
		}
	}
	return d
}

// parse handles one comment; fn is non-nil when the comment rides a
// function's doc group.
func (d *Directives) parse(c *ast.Comment, fn *ast.FuncDecl) {
	const prefix = "//flowsched:"
	if !strings.HasPrefix(c.Text, prefix) {
		return
	}
	body := strings.TrimPrefix(c.Text, prefix)
	// Fixture sources append analysistest expectations to directive
	// lines; they are not part of the directive.
	if i := strings.Index(body, "// want"); i >= 0 {
		body = body[:i]
	}
	body = strings.TrimSpace(body)
	verb, rest, _ := strings.Cut(body, " ")
	switch {
	case verb == "hotpath":
		if fn == nil {
			d.fail(c, "//flowsched:hotpath must ride a function's doc comment")
			return
		}
		d.hotpath[fn] = true
	case pkgMarks[verb]:
		d.marks[verb] = true
	case verb == "allow":
		check, why, ok := strings.Cut(strings.TrimSpace(rest), ":")
		check = strings.TrimSpace(check)
		if allowChecks[check] == "" {
			d.fail(c, "//flowsched:allow needs a known check (alloc, clock, atomic, maprange, rand, wallclock), got %q", check)
			return
		}
		if why = strings.TrimSpace(why); !ok || why == "" {
			d.fail(c, "//flowsched:allow %s needs a justification: //flowsched:allow %s: <why>", check, check)
			return
		}
		a := allowance{check: check, why: why}
		if fn != nil {
			a.wholeRange, a.lo, a.hi = true, fn.Pos(), fn.End()
		} else {
			pos := d.fset.Position(c.Slash)
			a.file, a.line = pos.Filename, pos.Line
		}
		d.allows = append(d.allows, a)
	default:
		d.fail(c, "unknown //flowsched: directive %q", verb)
	}
}

func (d *Directives) fail(c *ast.Comment, format string, args ...any) {
	d.malformed = append(d.malformed, Diagnostic{
		Pos: c.Slash, Check: "directive", Message: fmt.Sprintf(format, args...),
	})
}

// HasMark reports a package-level marker (clockgated, deterministic).
func (d *Directives) HasMark(mark string) bool { return d.marks[mark] }

// IsHotPath reports whether fn carries the hotpath annotation.
func (d *Directives) IsHotPath(fn *ast.FuncDecl) bool { return d.hotpath[fn] }

// HotPathRoots returns the annotated functions.
func (d *Directives) HotPathRoots() []*ast.FuncDecl {
	roots := make([]*ast.FuncDecl, 0, len(d.hotpath))
	for fn := range d.hotpath {
		roots = append(roots, fn)
	}
	return roots
}

// Allowed reports whether an allow directive for check covers pos, and
// with what justification.
func (d *Directives) Allowed(check string, pos token.Pos) (string, bool) {
	if !pos.IsValid() {
		return "", false
	}
	var p token.Position
	for i := range d.allows {
		a := &d.allows[i]
		if a.check != check {
			continue
		}
		if a.wholeRange {
			if a.lo <= pos && pos < a.hi {
				return a.why, true
			}
			continue
		}
		if !p.IsValid() {
			p = d.fset.Position(pos)
		}
		if p.Filename == a.file && (p.Line == a.line || p.Line == a.line+1) {
			return a.why, true
		}
	}
	return "", false
}

// Malformed returns the package's malformed-directive findings.
func (d *Directives) Malformed() []Diagnostic { return d.malformed }
