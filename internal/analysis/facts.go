package analysis

import (
	"encoding/json"
	"fmt"
)

// factStore is the cross-package fact channel: per analyzer, per object
// key (see objectKey), one JSON-encoded fact. In standalone mode one
// store lives for the whole run and packages are analyzed in dependency
// order; in vettool mode the store is seeded from the dependency vetx
// files go vet hands the tool and the merged contents are written to the
// package's own vetx output, so downstream compilations see the
// transitive closure.
type factStore struct {
	data map[string]map[string]json.RawMessage
}

func newFactStore() *factStore {
	return &factStore{data: map[string]map[string]json.RawMessage{}}
}

func (s *factStore) export(analyzer, key string, val any) {
	raw, err := json.Marshal(val)
	if err != nil {
		panic(fmt.Sprintf("analysis: unencodable fact %T: %v", val, err))
	}
	m := s.data[analyzer]
	if m == nil {
		m = map[string]json.RawMessage{}
		s.data[analyzer] = m
	}
	m[key] = raw
}

func (s *factStore) importFact(analyzer, key string, into any) bool {
	raw, ok := s.data[analyzer][key]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, into) == nil
}

// encode serializes the whole store (the vetx payload).
func (s *factStore) encode() ([]byte, error) {
	return json.Marshal(s.data)
}

// merge decodes a serialized store and overlays it; unreadable payloads
// are ignored (a missing fact degrades to "unknown", never to a crash).
func (s *factStore) merge(payload []byte) {
	var in map[string]map[string]json.RawMessage
	if json.Unmarshal(payload, &in) != nil {
		return
	}
	for analyzer, m := range in {
		dst := s.data[analyzer]
		if dst == nil {
			dst = map[string]json.RawMessage{}
			s.data[analyzer] = dst
		}
		for k, v := range m {
			dst[k] = v
		}
	}
}
