package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Session is the exported entry point for driving the suite over
// already-type-checked packages — the analysistest harness uses it to
// analyze fixture packages in dependency order while sharing one fact
// store, exactly as the standalone and vettool drivers do.
type Session struct {
	store *factStore
}

// NewSession creates a session with an empty fact store.
func NewSession() *Session { return &Session{store: newFactStore()} }

// Analyze runs every analyzer in the suite over one package and returns
// its position-sorted diagnostics, malformed directives included. Facts
// exported by the pass stay in the session for later Analyze calls.
func (s *Session) Analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, module string) []Diagnostic {
	return runSuite(fset, files, pkg, info, module, s.store)
}

// NewInfo allocates the types.Info with every map the suite consumes.
func NewInfo() *types.Info { return newTypesInfo() }
