package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// Unit-checker driver: when go vet runs flowschedvet as a -vettool it
// hands the tool one JSON config per compilation unit (dependencies
// first, with VetxOnly set for packages only needed for facts). This
// file speaks that protocol with the standard library alone: source
// files come from the config, dependency types come from the gc export
// files in PackageFile, and cross-package facts ride the vetx files go
// vet already threads between units — each unit writes its dependencies'
// facts merged with its own, so downstream units see the transitive
// closure.

// vetConfig mirrors the fields of go vet's JSON config the driver uses.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string
	ModulePath  string

	SucceedOnTypecheckFailure bool
}

// RunUnit processes one vet.cfg, printing findings to out and returning
// their count. The VetxOutput file is always written — go vet treats a
// missing facts file as a tool failure.
func RunUnit(cfgPath string, out io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("%s: %v", cfgPath, err)
	}

	store := newFactStore()
	for _, vetx := range cfg.PackageVetx {
		if payload, err := os.ReadFile(vetx); err == nil {
			store.merge(payload)
		}
	}

	// Packages outside the module (stdlib and friends) contribute no
	// facts of their own: pass the merged store through untouched.
	// Test variants keep the module prefix ("mod/pkg [mod/pkg.test]"),
	// so a plain prefix test covers them too.
	inModule := cfg.ModulePath != "" &&
		(cfg.ImportPath == cfg.ModulePath || strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/"))
	if !inModule {
		return 0, writeVetx(cfg, store)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx(cfg, store)
			}
			return 0, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		f := cfg.PackageFile[path]
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(cfg, store)
		}
		return 0, err
	}

	diags := runSuite(fset, files, pkg, info, cfg.ModulePath, store)
	if err := writeVetx(cfg, store); err != nil {
		return 0, err
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	printDiags(out, fset, diags)
	return len(diags), nil
}

func writeVetx(cfg *vetConfig, store *factStore) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	payload, err := store.encode()
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, payload, 0o666)
}
