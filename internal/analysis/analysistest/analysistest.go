// Package analysistest runs the flowschedvet suite over fixture
// packages under a testdata/src tree and checks reported diagnostics
// against // want comments — the same convention as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the standard
// library because this repository carries no module dependencies.
//
// A want comment expects one or more diagnostics on its own line, each
// matching a quoted regexp against "check: message":
//
//	s := make([]int, 4) // want `alloc: .*make allocates`
//
// Fixture packages live at <testdata>/src/<importpath>/. They may import
// each other (loaded from source, analyzed in the order given to Run so
// facts flow dependency-first) and the standard library (loaded from the
// build cache's export data via go list -export).
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"flowsched/internal/analysis"
)

// Run analyzes each fixture package (paths relative to testdata/src, in
// order — list dependencies before dependents) and checks its // want
// expectations.
func Run(t *testing.T, testdata, module string, pkgs ...string) {
	t.Helper()
	ld := &loader{
		testdata:   testdata,
		fset:       token.NewFileSet(),
		session:    analysis.NewSession(),
		module:     module,
		loaded:     map[string]*fixturePkg{},
		exportFile: map[string]string{},
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		f := ld.exportFile[path]
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	for _, pkg := range pkgs {
		fp, err := ld.load(pkg)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
		diags := ld.session.Analyze(ld.fset, fp.files, fp.pkg, fp.info, module)
		checkWants(t, ld.fset, pkg, fp.files, diags)
	}
}

type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	testdata   string
	fset       *token.FileSet
	session    *analysis.Session
	module     string
	loaded     map[string]*fixturePkg
	exportFile map[string]string
	gc         types.Importer
}

// Import makes the loader a types.Importer: fixture-tree packages load
// from source, everything else from gc export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.testdata, "src", path); isDir(dir) {
		fp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	if err := ld.ensureExport(path); err != nil {
		return nil, err
	}
	return ld.gc.Import(path)
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := ld.loaded[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(ld.testdata, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{files: files, pkg: pkg, info: info}
	ld.loaded[path] = fp
	return fp, nil
}

// ensureExport resolves a standard-library import to its export-data
// file via go list -export, pulling transitive deps in the same call.
func (ld *loader) ensureExport(path string) error {
	if ld.exportFile[path] != "" {
		return nil
	}
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", path)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			return err
		}
		if p.Export != "" {
			ld.exportFile[p.ImportPath] = p.Export
		}
	}
	return nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// want is one expectation: a diagnostic on file:line matching re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")

// checkWants matches diagnostics against the fixture's want comments:
// every want must be hit, every diagnostic must be wanted.
func checkWants(t *testing.T, fset *token.FileSet, pkg string, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				for _, pat := range splitPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		text := d.Check + ": " + d.Message
		hit := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(text) {
				w.matched, hit = true, true
				break
			}
		}
		if !hit {
			t.Errorf("%s: unexpected diagnostic in %s: %s", pos, pkg, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitPatterns parses the quoted regexps of a want comment: "…" or
// `…`, space-separated.
func splitPatterns(s string) []string {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return append(pats, s) // unterminated: surface as a bad pattern
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				pats = append(pats, unq)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(pats, s)
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return append(pats, s)
		}
	}
	return pats
}
