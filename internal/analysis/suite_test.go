package analysis_test

import (
	"io"
	"path/filepath"
	"testing"

	"flowsched/internal/analysis"
	"flowsched/internal/analysis/analysistest"
)

func testdata(t *testing.T) string {
	t.Helper()
	td, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return td
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, testdata(t), "hotpathmod", "hotpathmod/hot")
}

// TestHotPathCrossPackage pins fact propagation: the allocation is two
// calls below the root and in a different package; dep is analyzed
// first, exactly as both drivers order real packages.
func TestHotPathCrossPackage(t *testing.T) {
	analysistest.Run(t, testdata(t), "hotpathmod", "hotpathmod/dep", "hotpathmod/hot2")
}

func TestGatedClock(t *testing.T) {
	analysistest.Run(t, testdata(t), "clocked", "clocked", "clockoff")
}

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, testdata(t), "atomics", "atomics")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, testdata(t), "determ", "determ")
}

// TestRepoClean is the dogfood gate as a tier-1 test: the whole module
// must analyze clean, so a hot-path regression fails go test ./... even
// before CI's dedicated flowschedvet step runs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	findings, err := analysis.RunStandalone(".", []string{"flowsched/..."}, io.Discard)
	if err != nil {
		t.Fatalf("standalone driver: %v", err)
	}
	if findings != 0 {
		n, _ := analysis.RunStandalone(".", []string{"flowsched/..."}, testWriter{t})
		t.Fatalf("flowschedvet reports %d findings on the repository (see log)", n)
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
