package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GatedClock pins the "zero clock reads uninstrumented" contract: in a
// package whose doc carries //flowsched:clockgated, every wall-clock
// read (time.Now, time.Since, time.Until) must be dominated by a nil
// check of a flight recorder — either an enclosing `if rec != nil { … }`
// (the read in the taken branch, possibly through && conjuncts) or an
// earlier `if rec == nil { return … }` early exit in an enclosing block.
// A guard expression qualifies when its type is a pointer to a named
// type called FlightRecorder, or when the checked variable or field is
// literally named rec. Deliberate exceptions use //flowsched:allow
// clock.
var GatedClock = &Analyzer{
	Name: "gatedclock",
	Doc:  "require time.Now/Since/Until in //flowsched:clockgated packages to be guarded by a recorder nil check",
	Run:  runGatedClock,
}

var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runGatedClock(pass *Pass) error {
	if !pass.Dirs.HasMark("clockgated") {
		return nil
	}
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || !isClockCall(pass.TypesInfo, call) || pass.InTestFile(call.Pos()) {
				return true
			}
			if !clockGuarded(pass.TypesInfo, stack) {
				name := "time.Now"
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					name = "time." + sel.Sel.Name
				}
				pass.Reportf(call.Pos(), "clock", "%s is not dominated by a recorder nil check (wall-clock reads must be gated on rec != nil)", name)
			}
			return true
		})
	}
	return nil
}

// isClockCall matches time.Now / time.Since / time.Until.
func isClockCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "time" && clockFuncs[fn.Name()]
}

// clockGuarded walks the enclosing-node stack of a clock call looking
// for a dominating recorder guard.
func clockGuarded(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch node := stack[i].(type) {
		case *ast.IfStmt:
			// Guarded if the call sits in the body of `if rec != nil`.
			if i+1 < len(stack) && stack[i+1] == node.Body && condChecksRecorder(info, node.Cond, token.NEQ) {
				return true
			}
		case *ast.BlockStmt:
			// Or an earlier sibling `if rec == nil { return }` early exit.
			if i+1 < len(stack) && earlyExitGuard(info, node, stack[i+1]) {
				return true
			}
		}
	}
	return false
}

// earlyExitGuard reports whether a statement before `until` in block is
// an `if rec == nil` that cannot fall through.
func earlyExitGuard(info *types.Info, block *ast.BlockStmt, until ast.Node) bool {
	for _, stmt := range block.List {
		if stmt == until {
			return false
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
			continue
		}
		if !condChecksRecorder(info, ifs.Cond, token.EQL) {
			continue
		}
		switch ifs.Body.List[len(ifs.Body.List)-1].(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		}
	}
	return false
}

// condChecksRecorder reports whether cond contains, possibly through &&,
// a comparison of a recorder expression against nil with operator op.
func condChecksRecorder(info *types.Info, cond ast.Expr, op token.Token) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return condChecksRecorder(info, e.X, op) || condChecksRecorder(info, e.Y, op)
		}
		if e.Op != op {
			return false
		}
		x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
		if isNilIdent(info, y) {
			return isRecorderExpr(info, x)
		}
		if isNilIdent(info, x) {
			return isRecorderExpr(info, y)
		}
	}
	return false
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// isRecorderExpr accepts *FlightRecorder-typed expressions and anything
// whose terminal name is rec.
func isRecorderExpr(info *types.Info, e ast.Expr) bool {
	if t, ok := info.Types[e]; ok && t.Type != nil {
		if pt, ok := t.Type.(*types.Pointer); ok {
			switch nt := pt.Elem().(type) {
			case *types.Named:
				if nt.Obj().Name() == "FlightRecorder" {
					return true
				}
			}
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "rec"
	case *ast.SelectorExpr:
		return x.Sel.Name == "rec"
	}
	return false
}
