// Package analysis is flowschedvet's invariant suite: four custom static
// analyzers that make the streaming runtime's hot-path contracts —
// contracts stated in internal/stream's docs and until now enforced only
// dynamically by alloc_test.go, the cross-K determinism suite, and hand
// review — checkable at build time, on every package, in CI.
//
// The four analyzers (Suite returns them in order):
//
//   - hotpath: functions annotated //flowsched:hotpath, and everything
//     they transitively call through static calls, must be free of
//     heap-allocating constructs. See hotpath.go for the construct list
//     and the cross-package fact propagation.
//   - gatedclock: in packages annotated //flowsched:clockgated, every
//     wall-clock read (time.Now / time.Since / time.Until) must be
//     dominated by a nil check of a *FlightRecorder — the "zero clock
//     reads uninstrumented" contract.
//   - atomicfield: a struct field passed to sync/atomic anywhere must be
//     accessed atomically everywhere in the package — the mixed-access
//     bug class the obs ring and the runtime's counter ordering are
//     hand-verified against.
//   - determinism: in packages annotated //flowsched:deterministic, no
//     raw map iteration (outside the collect-then-sort idiom), no
//     global math/rand, no wall-clock input — the cross-K
//     bit-reproducibility contract PR 1 had to retrofit dynamically.
//
// Deliberate exceptions carry a justified escape hatch in the source:
//
//	//flowsched:allow <check>: <one-line justification>
//
// (checks: alloc, clock, atomic, maprange, rand, wallclock). A bare
// allow without a justification is itself a finding.
//
// The framework below mirrors the golang.org/x/tools/go/analysis API
// shape — Analyzer, Pass, Diagnostic, per-object facts — but is built on
// the standard library alone (go/ast, go/types, go/importer), because
// this repository carries no module dependencies. cmd/flowschedvet
// drives the suite standalone over `go list` packages (load.go) and as a
// `go vet -vettool` unit checker speaking the vet.cfg protocol
// (unit.go), with facts serialized through the vetx files go vet already
// plumbs between packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a single package
// through its Pass and reports findings; cross-package state flows
// through the Pass's fact API, never through analyzer globals.
type Analyzer struct {
	// Name is the check's identifier in diagnostics and CLI output.
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// Run analyzes one package. It returns an error only for internal
	// failures; findings go through Pass.Report.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos token.Pos
	// Check names the allow-hatch check the finding belongs to (e.g.
	// "alloc"); //flowsched:allow <Check> on the offending line
	// suppresses it.
	Check   string
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module is the path of the module under analysis ("flowsched");
	// packages outside it are dependencies, analyzed for facts only.
	Module string
	// Dirs holds the package's parsed //flowsched: directives.
	Dirs *Directives

	// report receives findings; the driver wires it.
	report func(Diagnostic)
	// facts is the cross-package fact store; the driver wires it.
	facts *factStore
}

// Report files one finding unless an allow directive for its check
// covers its position.
func (p *Pass) Report(d Diagnostic) {
	if p.Dirs != nil {
		if _, ok := p.Dirs.Allowed(d.Check, d.Pos); ok {
			return
		}
	}
	p.report(d)
}

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, check, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Check: check, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The suite's
// contracts bind the shipped runtime; test code is exempt (it is free to
// allocate, range maps, and read clocks), though it still type-checks as
// part of the package.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= 8 && name[len(name)-8:] == "_test.go"
}

// ExportObjectFact publishes a fact about obj (a package-level function
// or method of the analyzed package) for downstream packages' passes.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	p.facts.export(p.Analyzer.Name, objectKey(obj), fact)
}

// ImportObjectFact loads the fact published for obj by an upstream
// package's pass into fact (a pointer), reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact any) bool {
	return p.facts.importFact(p.Analyzer.Name, objectKey(obj), fact)
}

// objectKey is the stable cross-load identity of a package-level object:
// the same function yields the same key whether its package was
// type-checked from source (standalone mode) or loaded from gc export
// data (vettool mode).
func objectKey(obj types.Object) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return pkg + "." + recvString(sig.Recv().Type()) + "." + obj.Name()
		}
	}
	return pkg + "." + obj.Name()
}

// recvString renders a receiver type as "(T)" or "(*T)" without package
// qualification (the key already carries the package path).
func recvString(t types.Type) string {
	ptr := ""
	if pt, ok := t.(*types.Pointer); ok {
		ptr = "*"
		t = pt.Elem()
	}
	name := "?"
	switch nt := t.(type) {
	case *types.Named:
		name = nt.Obj().Name()
	case *types.Alias:
		name = nt.Obj().Name()
	}
	return "(" + ptr + name + ")"
}

// Suite returns the flowschedvet analyzers in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{HotPath, GatedClock, AtomicField, Determinism}
}

// AnalyzerByName resolves one of the suite's analyzers; nil if unknown.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// sortDiagnostics orders findings by position for stable output.
func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
