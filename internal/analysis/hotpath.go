package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath enforces the zero-alloc contract: a function whose doc comment
// carries //flowsched:hotpath, and every function it transitively
// reaches through static calls, must be free of heap-allocating
// constructs. The construct list is deliberately conservative — it
// over-approximates what the compiler's escape analysis would reject, so
// every deliberate exception (amortized append to a length-reset scratch
// slice, a non-escaping EachVOQ closure, the cold error path) must carry
// a justified //flowsched:allow alloc, turning the package's informal
// performance notes into checked annotations.
//
// Flagged constructs: make, new, append, map writes, map/slice composite
// literals, &composite literals, closures capturing variables, string
// concatenation and string<->[]byte/[]rune conversions, conversions or
// assignments of concrete values into interfaces, variadic argument
// packing, go statements, and any call into a package not on the
// known-clean list (math, math/bits, sync/atomic) that has no published
// "does not allocate" fact. Dynamic calls (interface methods, func
// values) are not followed; implementations of hot interfaces carry
// their own //flowsched:hotpath root (every native policy's Pick does).
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "reject heap-allocating constructs in //flowsched:hotpath functions and everything they statically call",
	Run:  runHotPath,
}

// allocFact is the cross-package verdict on one function, published for
// every function of an analyzed package under its objectKey.
type allocFact struct {
	Allocates bool   `json:"allocates"`
	Reason    string `json:"reason,omitempty"`
}

// cleanPkgs are stdlib packages whose functions never heap-allocate.
var cleanPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// allocSite is one flagged construct inside a function body.
type allocSite struct {
	pos     token.Pos
	desc    string
	allowed bool // covered by //flowsched:allow alloc — excluded from poisoning
}

// callEdge is one statically resolved call out of a function body.
type callEdge struct {
	pos    token.Pos
	callee *types.Func
	// desc/allocates are pre-resolved for external callees; internal
	// edges resolve through the fixpoint instead.
	internal  bool
	allocates bool
	desc      string
	allowed   bool
}

// fnSummary is one function's scan result plus its fixpoint verdict.
type fnSummary struct {
	decl      *ast.FuncDecl
	sites     []allocSite
	calls     []callEdge
	allocates bool
	reason    string
}

func runHotPath(pass *Pass) error {
	idx := indexFuncs(pass)
	sums := map[*types.Func]*fnSummary{}
	var order []*types.Func // declaration order, for stable fixpoint + facts
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || pass.InTestFile(fn.Pos()) {
				continue
			}
			obj := idx.objs[fn]
			if obj == nil {
				continue
			}
			sums[obj] = scanFunc(pass, fn)
			order = append(order, obj)
		}
	}

	// Fixpoint: a function allocates if any unallowed local site, any
	// allocating external call, or any internal call to an allocating
	// function. Iterate until stable (the graph is small).
	for changed := true; changed; {
		changed = false
		for _, obj := range order {
			s := sums[obj]
			if s.allocates {
				continue
			}
			if why, bad := verdict(pass, sums, s); bad {
				s.allocates, s.reason = true, why
				changed = true
			}
		}
	}

	// Publish facts for downstream packages.
	for _, obj := range order {
		s := sums[obj]
		pass.ExportObjectFact(obj, allocFact{Allocates: s.allocates, Reason: s.reason})
	}

	// Report every unallowed site reachable from a //flowsched:hotpath
	// root, with the static call chain that reaches it.
	reported := map[token.Pos]bool{}
	for _, root := range pass.Dirs.HotPathRoots() {
		rootObj := idx.objs[root]
		if rootObj == nil || sums[rootObj] == nil {
			continue
		}
		reportReachable(pass, sums, rootObj, reported)
	}
	return nil
}

// verdict decides whether s allocates given the current fixpoint state,
// returning the first cause.
func verdict(pass *Pass, sums map[*types.Func]*fnSummary, s *fnSummary) (string, bool) {
	for i := range s.sites {
		if !s.sites[i].allowed {
			return s.sites[i].desc, true
		}
	}
	for i := range s.calls {
		c := &s.calls[i]
		if c.allowed {
			continue
		}
		if c.internal {
			if cs := sums[c.callee]; cs != nil && cs.allocates {
				return "calls " + funcDisplayName(c.callee) + ", which " + shortReason(cs.reason), true
			}
			continue
		}
		if c.allocates {
			return c.desc, true
		}
	}
	return "", false
}

// shortReason compresses a nested reason chain for call-site messages.
func shortReason(r string) string {
	if r == "" {
		return "may allocate"
	}
	if i := strings.Index(r, ", which"); i >= 0 {
		r = r[:i] + " (…)"
	}
	return r
}

// reportReachable walks the static call graph from root, reporting every
// unallowed allocation site it reaches, annotated with the chain.
func reportReachable(pass *Pass, sums map[*types.Func]*fnSummary, root *types.Func, reported map[token.Pos]bool) {
	type qent struct {
		fn    *types.Func
		chain string
	}
	seen := map[*types.Func]bool{root: true}
	queue := []qent{{root, funcDisplayName(root)}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		s := sums[cur.fn]
		if s == nil {
			continue
		}
		for i := range s.sites {
			site := &s.sites[i]
			if site.allowed || reported[site.pos] {
				continue
			}
			reported[site.pos] = true
			pass.Reportf(site.pos, "alloc", "hot path (%s): %s", cur.chain, site.desc)
		}
		for i := range s.calls {
			c := &s.calls[i]
			if c.allowed {
				continue
			}
			if !c.internal {
				if c.allocates && !reported[c.pos] {
					reported[c.pos] = true
					pass.Reportf(c.pos, "alloc", "hot path (%s): %s", cur.chain, c.desc)
				}
				continue
			}
			if !seen[c.callee] {
				seen[c.callee] = true
				queue = append(queue, qent{c.callee, cur.chain + " → " + funcDisplayName(c.callee)})
			}
		}
	}
}

// scanFunc collects fn's allocation sites and outgoing static calls.
func scanFunc(pass *Pass, fn *ast.FuncDecl) *fnSummary {
	s := &fnSummary{decl: fn}
	info := pass.TypesInfo
	addSite := func(pos token.Pos, format string, args ...any) {
		_, allowed := pass.Dirs.Allowed("alloc", pos)
		s.sites = append(s.sites, allocSite{pos: pos, desc: fmt.Sprintf(format, args...), allowed: allowed})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			addSite(node.Pos(), "go statement spawns a goroutine")

		case *ast.FuncLit:
			if caps := capturedVars(info, node); len(caps) > 0 {
				addSite(node.Pos(), "closure captures %s", strings.Join(caps, ", "))
			}
			// Keep walking: calls inside the literal run on the hot path.

		case *ast.CompositeLit:
			if t, ok := info.Types[node]; ok {
				switch t.Type.Underlying().(type) {
				case *types.Map:
					addSite(node.Pos(), "map literal allocates")
				case *types.Slice:
					addSite(node.Pos(), "slice literal allocates")
				}
			}

		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					addSite(node.Pos(), "&composite literal escapes to the heap")
				}
			}

		case *ast.BinaryExpr:
			if node.Op == token.ADD {
				if t, ok := info.Types[node]; ok && isString(t.Type) {
					addSite(node.Pos(), "string concatenation allocates")
				}
			}

		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t, ok := info.Types[ix.X]; ok {
						if _, isMap := t.Type.Underlying().(*types.Map); isMap {
							addSite(lhs.Pos(), "map assignment may grow the map")
						}
					}
				}
				if i < len(node.Rhs) {
					checkIfaceAssign(info, addSite, lhs, node.Rhs[i])
				}
			}

		case *ast.ReturnStmt:
			checkIfaceReturn(info, addSite, fn, node)

		case *ast.CallExpr:
			scanCall(pass, s, addSite, node)
		}
		return true
	})
	return s
}

// scanCall classifies one call expression: builtin, conversion, static
// call edge, or ignored dynamic call; it also checks interface boxing
// and variadic packing at the arguments.
func scanCall(pass *Pass, s *fnSummary, addSite func(token.Pos, string, ...any), call *ast.CallExpr) {
	info := pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion. string <-> []byte/[]rune and to-string allocate.
		dst := tv.Type
		if len(call.Args) == 1 {
			if src, ok := info.Types[call.Args[0]]; ok {
				if convAllocates(dst, src.Type) {
					addSite(call.Pos(), "conversion %s allocates", types.TypeString(dst, types.RelativeTo(pass.Pkg)))
				}
				checkIfaceConv(addSite, call.Pos(), dst, src.Type)
			}
		}
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				addSite(call.Pos(), "make allocates")
			case "new":
				addSite(call.Pos(), "new allocates")
			case "append":
				addSite(call.Pos(), "append may grow the backing array")
			}
			return
		}
	}

	fn := staticCallee(info, call)
	if fn == nil {
		return // dynamic dispatch / func value: not followed (see doc)
	}
	fn = fn.Origin()

	// Interface boxing and variadic packing at the call's arguments.
	if sig, ok := fn.Type().(*types.Signature); ok {
		checkCallArgs(info, addSite, call, sig)
	}

	_, allowed := pass.Dirs.Allowed("alloc", call.Pos())
	edge := callEdge{pos: call.Pos(), callee: fn, allowed: allowed}
	switch pkg := fn.Pkg(); {
	case pkg == nil:
		// error.Error, unsafe, etc.: no allocation.
		return
	case pkg == pass.Pkg:
		edge.internal = true
	case cleanPkgs[pkg.Path()]:
		return
	case pkg.Path() == pass.Module || strings.HasPrefix(pkg.Path(), pass.Module+"/"):
		var fact allocFact
		if !pass.ImportObjectFact(fn, &fact) {
			edge.allocates = true
			edge.desc = "calls " + pkg.Name() + "." + funcDisplayName(fn) + ", which has no hotpath fact"
		} else if fact.Allocates {
			edge.allocates = true
			edge.desc = "calls " + pkg.Name() + "." + funcDisplayName(fn) + ", which " + shortReason(fact.Reason)
		}
	case pkg.Path() == "fmt" || pkg.Path() == "log":
		edge.allocates = true
		edge.desc = "calls " + pkg.Name() + "." + fn.Name() + " (fmt/log always allocate)"
	default:
		edge.allocates = true
		edge.desc = "calls " + pkg.Name() + "." + funcDisplayName(fn) + ", which is not on the known-clean list"
	}
	s.calls = append(s.calls, edge)
}

// checkCallArgs flags concrete-to-interface boxing at parameters and the
// argument-slice allocation of a non-spread variadic call.
func checkCallArgs(info *types.Info, addSite func(token.Pos, string, ...any), call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				continue // spread: no new backing array at this call
			}
			pt = params.At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		if at, ok := info.Types[arg]; ok {
			checkIfaceConv(addSite, arg.Pos(), pt, at.Type)
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= n {
		addSite(call.Pos(), "variadic call packs its arguments into a new slice")
	}
}

// checkIfaceAssign flags assignments that box a concrete value into an
// interface-typed destination.
func checkIfaceAssign(info *types.Info, addSite func(token.Pos, string, ...any), lhs, rhs ast.Expr) {
	lt, ok := info.Types[lhs]
	if !ok {
		if id, isID := ast.Unparen(lhs).(*ast.Ident); isID {
			if obj := info.Defs[id]; obj != nil {
				lt.Type = obj.Type()
				ok = true
			}
		}
	}
	if !ok || lt.Type == nil {
		return
	}
	if rt, okr := info.Types[rhs]; okr {
		checkIfaceConv(addSite, rhs.Pos(), lt.Type, rt.Type)
	}
}

// checkIfaceReturn flags concrete values returned through interface
// result types.
func checkIfaceReturn(info *types.Info, addSite func(token.Pos, string, ...any), fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fn.Type.Results == nil {
		return
	}
	sig, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	results := sig.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return // naked return or multi-value call: nothing concrete to box here
	}
	for i, e := range ret.Results {
		if et, ok := info.Types[e]; ok {
			checkIfaceConv(addSite, e.Pos(), results.At(i).Type(), et.Type)
		}
	}
}

// checkIfaceConv flags a concrete, non-pointer-shaped value converting
// into a non-nil interface type — the boxing allocation.
func checkIfaceConv(addSite func(token.Pos, string, ...any), pos token.Pos, dst, src types.Type) {
	if dst == nil || src == nil {
		return
	}
	if !types.IsInterface(dst) || types.IsInterface(src) {
		return
	}
	b, isBasic := src.Underlying().(*types.Basic)
	if isBasic && b.Info()&types.IsUntyped != 0 && b.Kind() != types.UntypedString {
		// Untyped constants (incl. nil) either stay constant or convert
		// to a basic type first; small constants use the runtime's
		// static box cache. Treat as clean.
		return
	}
	if _, isPtr := src.Underlying().(*types.Pointer); isPtr {
		return // pointers box without allocating
	}
	addSite(pos, "conversion of %s to interface allocates", src.String())
}

// convAllocates reports whether the explicit conversion dst(src) copies
// memory: string <-> []byte/[]rune, and rune/byte-slice to string.
func convAllocates(dst, src types.Type) bool {
	d, s := dst.Underlying(), src.Underlying()
	if isString(d) && !isString(s) {
		_, srcSlice := s.(*types.Slice)
		db, isBasic := s.(*types.Basic)
		return srcSlice || (isBasic && db.Info()&types.IsInteger != 0)
	}
	if ds, ok := d.(*types.Slice); ok && isString(s) {
		e, ok := ds.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune)
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedVars lists the names of variables a function literal captures
// from its enclosing function (package-level objects excluded).
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	var caps []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Declared outside the literal, but not at package scope.
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			if v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
				seen[v] = true
				caps = append(caps, v.Name())
			}
		}
		return true
	})
	return caps
}
