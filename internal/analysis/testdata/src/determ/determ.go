// Package determ exercises the determinism analyzer: no unordered map
// iteration, no process-global randomness, no wall-clock input.
//
//flowsched:deterministic
package determ

import (
	"math/rand"
	"sort"
	"time"
)

// RawRange iterates a map with no adjacent sort.
func RawRange(m map[int]int) int {
	s := 0
	for k := range m { // want `maprange: map iteration order is nondeterministic`
		s += k
	}
	return s
}

// SortedRange is the collect-keys-then-sort idiom.
func SortedRange(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// GlobalRand draws from the shared, unseeded source.
func GlobalRand() int {
	return rand.Intn(10) // want `rand: math/rand\.Intn draws from the process-global source`
}

// SeededRand builds an explicit source: reproducible, so it passes.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// WallClock feeds the clock into package state.
func WallClock() int64 {
	return time.Now().UnixNano() // want `wallclock: time\.Now feeds wall-clock values`
}

// AllowedRange documents an order-independent fold.
func AllowedRange(m map[int]int) int {
	s := 0
	//flowsched:allow maprange: pure sum, order-independent
	for _, v := range m {
		s += v
	}
	return s
}
