// Package atomics exercises the atomicfield analyzer: once a field is
// touched through sync/atomic anywhere, every access must be atomic.
package atomics

import "sync/atomic"

type counters struct {
	hits int64
	cold int64
	//flowsched:allow atomic: single-writer seqlock discipline; readers take the atomic side
	mixed int64
	live  atomic.Int64
}

// Bump makes hits an atomic field for the whole package.
func (c *counters) Bump() {
	atomic.AddInt64(&c.hits, 1)
}

// AtomicRead is the sanctioned way back out.
func (c *counters) AtomicRead() int64 {
	return atomic.LoadInt64(&c.hits)
}

// RacyRead mixes a plain load into an atomic field.
func (c *counters) RacyRead() int64 {
	return c.hits // want `atomic: field hits is accessed with sync/atomic elsewhere`
}

// ColdOnly never goes through sync/atomic, so plain access is fine.
func (c *counters) ColdOnly() int64 {
	c.cold++
	return c.cold
}

// MixedOK relies on the field-declaration allow: the plain read in the
// store's argument is the documented single-writer idiom.
func (c *counters) MixedOK() int64 {
	atomic.StoreInt64(&c.mixed, c.mixed+1)
	return atomic.LoadInt64(&c.mixed)
}

// LiveOK drives a typed atomic through its methods.
func (c *counters) LiveOK() int64 {
	c.live.Add(1)
	return c.live.Load()
}

// LiveCopy moves the typed atomic by value, detaching it.
func (c *counters) LiveCopy() atomic.Int64 {
	return c.live // want `atomic: field live has type sync/atomic\.Int64 and must not be copied by value`
}
