// Package hot2 exercises cross-package fact propagation: the allocation
// sits two calls below the root, in another package entirely.
package hot2

import "hotpathmod/dep"

//flowsched:hotpath
func Root() int { return level1() }

func level1() int { return level2() }

func level2() int {
	s := dep.Alloc() // want `alloc: hot path \(Root → level1 → level2\): calls dep\.Alloc`
	return len(s) + dep.Pure(1)
}
