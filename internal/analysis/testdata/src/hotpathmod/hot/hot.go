// Package hot exercises the hotpath analyzer's construct detection,
// call-graph propagation, and the //flowsched:allow alloc escape hatch.
package hot

import "fmt"

var scratch []int
var sink interface{}
var table = map[int]int{}

// Root is clean: arithmetic through a clean helper only.
//
//flowsched:hotpath
func Root(a, b int) int {
	return addmul(a, b)
}

func addmul(a, b int) int { return a*b + a }

//flowsched:hotpath
func BadMake() {
	s := make([]int, 8) // want `alloc: hot path \(BadMake\): make allocates`
	_ = s
}

// Chain reaches an allocation two calls below the root.
//
//flowsched:hotpath
func Chain() { mid() }

func mid() { leaf() }

func leaf() {
	p := new(int) // want `alloc: hot path \(Chain → mid → leaf\): new allocates`
	_ = p
}

//flowsched:hotpath
func BadFmt() {
	_ = fmt.Sprint() // want `alloc: .*fmt/log always allocate`
}

//flowsched:hotpath
func BadClosure(n int) func() int {
	f := func() int { return n } // want `alloc: .*closure captures n`
	return f
}

//flowsched:hotpath
func BadMapWrite(k int) {
	table[k] = 1 // want `alloc: .*map assignment may grow the map`
}

//flowsched:hotpath
func BadBox(v int64) {
	sink = v // want `alloc: .*conversion of int64 to interface allocates`
}

// Amortized uses the line-scoped escape hatch: the append is deliberate
// and justified, so it neither reports nor poisons the function.
//
//flowsched:hotpath
func Amortized() {
	//flowsched:allow alloc: scratch grows to its high-water mark, then length-resets
	scratch = append(scratch, 1)
}

// Exempt is covered whole by a function-doc allow.
//
//flowsched:allow alloc: construction-time helper, measured cold
//flowsched:hotpath
func Exempt() {
	_ = make([]int, 1)
}

//flowsched:hotpath
func BadAllowDirective() {
	//flowsched:allow alloc // want `directive: .*needs a justification`
	_ = make([]int, 2) // want `alloc: .*make allocates`
}

// Impl.Do allocates but is only ever reached through an interface, which
// the analyzer does not follow: implementations carry their own roots.
type Impl struct{}

func (Impl) Do() { _ = make([]int, 3) }

//flowsched:hotpath
func ViaInterface(d interface{ Do() }) {
	d.Do()
}

// Cold is not on any hot path: its allocations pass.
func Cold() { _ = make(map[string]int, 1) }
