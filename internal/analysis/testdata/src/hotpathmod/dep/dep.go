// Package dep provides helpers whose allocation behavior crosses the
// package boundary only through exported hotpath facts — there are no
// roots here, so nothing is reported locally.
package dep

// Alloc allocates; callers on a hot path learn this from the fact.
func Alloc() []int {
	return make([]int, 4)
}

// Pure is allocation-free.
func Pure(x int) int { return x + 1 }
