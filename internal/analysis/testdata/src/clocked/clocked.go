// Package clocked exercises the gatedclock analyzer: wall-clock reads
// must be dominated by a recorder nil check.
//
//flowsched:clockgated
package clocked

import "time"

type FlightRecorder struct{ n int }

type R struct {
	rec *FlightRecorder
}

// Guarded reads the clock inside the canonical rec != nil branch.
func (r *R) Guarded() {
	if r.rec != nil {
		t := time.Now()
		_ = t
	}
}

// EarlyReturn is dominated by an rec == nil early exit.
func (r *R) EarlyReturn() int64 {
	if r.rec == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// Conjunct guards through an && chain.
func (r *R) Conjunct(ok bool) {
	if ok && r.rec != nil {
		_ = time.Since(time.Time{})
	}
}

// Unguarded reads the clock with no dominating check.
func (r *R) Unguarded() int64 {
	return time.Now().UnixNano() // want `clock: time\.Now is not dominated by a recorder nil check`
}

// WrongBranch checks the recorder but reads the clock outside the
// guarded branch.
func (r *R) WrongBranch() int64 {
	if r.rec != nil {
		_ = r.rec.n
	}
	return time.Now().UnixNano() // want `clock: time\.Now is not dominated`
}

// Allowed documents a deliberate ungated read.
func (r *R) Allowed() time.Time {
	//flowsched:allow clock: startup-only, runs before the hot loop starts
	return time.Now()
}
