// Package clockoff carries no //flowsched:clockgated mark, so the
// gatedclock analyzer stands down entirely.
package clockoff

import "time"

func Free() int64 { return time.Now().UnixNano() }
