// Package pilot turns the paper's offline lower bounds into live
// telemetry: a background evaluator that periodically rebuilds a bounded
// sub-instance from the runtime's recent completions, recomputes the
// combinatorial lower bounds on total and maximum response time
// (internal/core's SRPT fluid relaxation and per-port backlog bound),
// and publishes achieved/lower-bound competitive-ratio estimates.
//
// The ratios are sound, not just indicative: the runtime's actual
// schedule restricted to any subset of flows is feasible for the
// sub-instance over that subset (same switch, same releases, a subset of
// each round's port loads), so the achieved response totals over a
// completion window are at least the sub-instance's optimum, which is at
// least the recomputed lower bound — the published ratio is therefore
// always >= 1, with equality witnessing an optimal stretch.
//
// Cost model: the evaluator is fully off the hot path. Completions reach
// it through an OnSchedule hook that stores four words into a fixed
// atomic ring (no locks, no allocations, coordinator-side cost of a few
// nanoseconds per flow); the pending set is snapshotted between rounds
// through Runtime.PendingFlows, which costs the coordinator one walk of
// the pending list per evaluation — not per round; and the bound
// recomputation (O(window^2 / ports) worst case for the backlog bound,
// an SRPT sweep for the fluid bound) runs entirely on the pilot
// goroutine at the configured cadence.
package pilot

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"flowsched/internal/core"
	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
)

// Defaults for Config fields left zero.
const (
	DefaultWindow          = 2048
	DefaultEvery           = time.Second
	DefaultSnapshotTimeout = 100 * time.Millisecond
	DefaultMaxSnapshot     = 4096
)

// compWords is the completion ring's per-record word count: packed
// ports, demand, release, completion round.
const compWords = 4

// Config tunes a Pilot.
type Config struct {
	// Window is the number of most-recent completions each evaluation
	// rebuilds its sub-instance from (<= 0 selects DefaultWindow).
	Window int
	// Every is Run's evaluation cadence (<= 0 selects DefaultEvery).
	Every time.Duration
	// SnapshotTimeout bounds each pending-set snapshot; an idle-parked
	// live runtime answers nothing until its next arrival, so the pilot
	// treats a timeout as "idle" rather than an error worth waiting on
	// (<= 0 selects DefaultSnapshotTimeout).
	SnapshotTimeout time.Duration
	// MaxSnapshot caps the pending flows fed to the backlog bound; the
	// bound over a prefix of the pending set is still a valid lower
	// bound for the whole backlog, and the cap keeps the O(n^2) sweep
	// bounded when the resident set is huge (<= 0 selects
	// DefaultMaxSnapshot).
	MaxSnapshot int
}

// Status is the pilot's latest evaluation.
type Status struct {
	// Evaluations counts completed evaluations; SnapshotErrors the
	// pending-set snapshots that timed out or were cancelled.
	Evaluations    int64 `json:"evaluations"`
	SnapshotErrors int64 `json:"snapshot_errors"`
	// WindowFlows is the completion window the ratios were computed
	// over (0 = no completions yet; the ratios are then meaningless and
	// zero). LastRound is the newest completion round in the window.
	WindowFlows int   `json:"window_flows"`
	LastRound   int64 `json:"last_round"`
	// Achieved response metrics of the window, and the recomputed lower
	// bounds for the same sub-instance.
	AchievedTotalResponse int64 `json:"achieved_total_response"`
	AchievedMaxResponse   int   `json:"achieved_max_response"`
	TotalLowerBound       int   `json:"total_lower_bound"`
	MaxLowerBound         int   `json:"max_lower_bound"`
	// TotalRatio and MaxRatio are the live competitive-ratio estimates:
	// achieved / lower bound, always >= 1 when WindowFlows > 0.
	TotalRatio float64 `json:"total_response_ratio"`
	MaxRatio   float64 `json:"max_response_ratio"`
	// Pending-set view from the latest successful snapshot:
	// BacklogBoundRounds is the backlog lower bound on the rounds any
	// scheduler needs to clear it (0 = empty).
	PendingFlows       int  `json:"pending_flows"`
	PendingTruncated   bool `json:"pending_truncated"`
	BacklogBoundRounds int  `json:"backlog_bound_rounds"`
}

// Pilot computes live optimality telemetry; construct with New, hand
// OnSchedule to stream.Config, Bind the runtime, then drive Run (or
// Evaluate directly). Status may be called from any goroutine.
type Pilot struct {
	sw  switchnet.Switch
	cfg Config
	rt  *stream.Runtime

	// Completion ring, same single-writer word-atomic protocol as
	// internal/obs: the coordinator's OnSchedule stores compWords words
	// then advances head; the evaluator copies and discards anything
	// the writer may have lapped. slots = window+1 (spare slot).
	head   atomic.Int64
	slots  int64
	window int64
	buf    []int64

	mu sync.Mutex
	st Status

	// Evaluator scratch, reused across evaluations.
	flows  []switchnet.Flow
	rounds []int64
	pend   []switchnet.Flow
}

// New validates cfg and returns a pilot for runtimes over sw.
func New(sw switchnet.Switch, cfg Config) (*Pilot, error) {
	if sw.NumIn() == 0 || sw.NumOut() == 0 {
		return nil, fmt.Errorf("pilot: switch has no ports (%d x %d)", sw.NumIn(), sw.NumOut())
	}
	if sw.NumIn() > 1<<15 || sw.NumOut() > 1<<15 {
		return nil, fmt.Errorf("pilot: switch %d x %d exceeds %d ports per side (packed ring fields)", sw.NumIn(), sw.NumOut(), 1<<15)
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Every <= 0 {
		cfg.Every = DefaultEvery
	}
	if cfg.SnapshotTimeout <= 0 {
		cfg.SnapshotTimeout = DefaultSnapshotTimeout
	}
	if cfg.MaxSnapshot <= 0 {
		cfg.MaxSnapshot = DefaultMaxSnapshot
	}
	return &Pilot{
		sw:     sw,
		cfg:    cfg,
		slots:  int64(cfg.Window) + 1,
		window: int64(cfg.Window),
		buf:    make([]int64, (cfg.Window+1)*compWords),
	}, nil
}

// OnSchedule is the completion hook for stream.Config.OnSchedule: it
// records one completion into the ring with four atomic word stores and
// no allocations. Single writer (the runtime's coordinator) only.
func (p *Pilot) OnSchedule(seq int64, f switchnet.Flow, round int) {
	h := p.head.Load()
	b := (h % p.slots) * compWords
	w := p.buf[b : b+compWords : b+compWords]
	atomic.StoreInt64(&w[0], int64(f.In)<<16|int64(f.Out))
	atomic.StoreInt64(&w[1], int64(f.Demand))
	atomic.StoreInt64(&w[2], int64(f.Release))
	atomic.StoreInt64(&w[3], int64(round))
	p.head.Store(h + 1)
}

// Bind attaches the runtime whose pending set Evaluate snapshots. It
// exists because construction is circular: stream.New needs the
// OnSchedule hook, and the pilot needs the built runtime.
func (p *Pilot) Bind(rt *stream.Runtime) { p.rt = rt }

// lastCompletions copies up to window completions from the ring into
// the scratch slices, oldest first, discarding anything the writer may
// have lapped mid-copy.
func (p *Pilot) lastCompletions() {
	p.flows = p.flows[:0]
	p.rounds = p.rounds[:0]
	h1 := p.head.Load()
	lo := h1 - p.window
	if lo < 0 {
		lo = 0
	}
	for k := lo; k < h1; k++ {
		b := (k % p.slots) * compWords
		w := p.buf[b : b+compWords : b+compWords]
		ports := atomic.LoadInt64(&w[0])
		p.flows = append(p.flows, switchnet.Flow{
			In:      int(ports >> 16),
			Out:     int(ports & 0xffff),
			Demand:  int(atomic.LoadInt64(&w[1])),
			Release: int(atomic.LoadInt64(&w[2])),
		})
		p.rounds = append(p.rounds, atomic.LoadInt64(&w[3]))
	}
	h2 := p.head.Load()
	if safeLo := h2 - p.slots + 1; safeLo > lo {
		drop := int(safeLo - lo)
		if drop > len(p.flows) {
			drop = len(p.flows)
		}
		p.flows = append(p.flows[:0], p.flows[drop:]...)
		p.rounds = append(p.rounds[:0], p.rounds[drop:]...)
	}
}

// Evaluate performs one evaluation — completion-window ratios plus a
// pending-set backlog bound — and returns the updated status. ctx
// bounds the pending-set snapshot (further capped by SnapshotTimeout);
// the ratio computation itself never blocks on the runtime.
func (p *Pilot) Evaluate(ctx context.Context) Status {
	p.lastCompletions()
	var (
		achievedTotal int64
		achievedMax   int
		lastRound     int64
	)
	for i, f := range p.flows {
		resp := p.rounds[i] + 1 - int64(f.Release)
		achievedTotal += resp
		if int(resp) > achievedMax {
			achievedMax = int(resp)
		}
		if p.rounds[i] > lastRound {
			lastRound = p.rounds[i]
		}
	}
	totalLB, maxLB := 0, 0
	totalRatio, maxRatio := 0.0, 0.0
	if len(p.flows) > 0 {
		inst := &switchnet.Instance{Switch: p.sw, Flows: p.flows}
		totalLB = core.SRPTLowerBound(inst)
		maxLB = core.TrivialMRTLowerBound(inst)
		// Both bounds are >= 1 for a non-empty instance, so the ratios
		// are finite; feasibility of the restricted schedule makes them
		// >= 1 (see the package docs).
		totalRatio = float64(achievedTotal) / float64(totalLB)
		maxRatio = float64(achievedMax) / float64(maxLB)
	}

	p.mu.Lock()
	st := &p.st
	st.Evaluations++
	st.WindowFlows = len(p.flows)
	st.LastRound = lastRound
	st.AchievedTotalResponse = achievedTotal
	st.AchievedMaxResponse = achievedMax
	st.TotalLowerBound = totalLB
	st.MaxLowerBound = maxLB
	st.TotalRatio = totalRatio
	st.MaxRatio = maxRatio
	p.mu.Unlock()

	if p.rt != nil {
		sctx, cancel := context.WithTimeout(ctx, p.cfg.SnapshotTimeout)
		pend, _, err := p.rt.PendingFlows(sctx, p.pend)
		cancel()
		p.mu.Lock()
		if err != nil {
			p.st.SnapshotErrors++
		} else {
			p.pend = pend
			p.st.PendingFlows = len(pend)
			p.st.PendingTruncated = len(pend) > p.cfg.MaxSnapshot
			if p.st.PendingTruncated {
				pend = pend[:p.cfg.MaxSnapshot]
			}
			if len(pend) > 0 {
				p.st.BacklogBoundRounds = core.TrivialMRTLowerBound(&switchnet.Instance{Switch: p.sw, Flows: pend})
			} else {
				p.st.BacklogBoundRounds = 0
			}
		}
		p.mu.Unlock()
	}
	return p.Status()
}

// Run evaluates at the configured cadence until ctx is cancelled, then
// performs one final evaluation (detached from ctx, so a post-run
// pending read still lands) and returns.
func (p *Pilot) Run(ctx context.Context) {
	tick := time.NewTicker(p.cfg.Every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			p.Evaluate(context.Background())
			return
		case <-tick.C:
			p.Evaluate(ctx)
		}
	}
}

// Status returns a copy of the latest evaluation. Safe to call from any
// goroutine.
func (p *Pilot) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// Sane reports whether the published ratios satisfy the soundness
// invariant — finite and at least 1 whenever a window exists. Exposed
// for tests and the daemon's smoke assertions.
func (s Status) Sane() bool {
	if s.WindowFlows == 0 {
		return s.TotalRatio == 0 && s.MaxRatio == 0
	}
	return s.TotalRatio >= 1 && s.MaxRatio >= 1 &&
		!math.IsInf(s.TotalRatio, 0) && !math.IsInf(s.MaxRatio, 0) &&
		!math.IsNaN(s.TotalRatio) && !math.IsNaN(s.MaxRatio)
}
