package pilot_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"flowsched/internal/core"
	"flowsched/internal/pilot"
	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

// TestPilotBoundedReplay is the acceptance pin for the competitive-ratio
// gauge: replay a finite instance with a pilot window covering every
// completion, then check the published ratios are finite and >= 1
// against lower bounds recomputed independently from the original
// instance — the pilot's window then holds exactly the instance's flow
// multiset, so its bounds must agree with the offline recomputation to
// the unit.
func TestPilotBoundedReplay(t *testing.T) {
	inst := workload.PoissonConfig{M: 6, T: 30, Ports: 5}.Generate(rand.New(rand.NewSource(19)))
	n := inst.N()
	if n == 0 {
		t.Fatal("empty generated instance")
	}
	p, err := pilot.New(inst.Switch, pilot.Config{Window: 4 * n})
	if err != nil {
		t.Fatal(err)
	}
	src := workload.NewInstanceSource(inst)
	rt, err := stream.New(src, stream.Config{
		Switch:     inst.Switch,
		Policy:     stream.ByName("RoundRobin"),
		Shards:     1,
		OnSchedule: p.OnSchedule,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Bind(rt)
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := p.Evaluate(context.Background())
	if st.WindowFlows != n {
		t.Fatalf("window holds %d flows, instance has %d", st.WindowFlows, n)
	}
	if st.AchievedTotalResponse != sum.TotalResponse {
		t.Fatalf("achieved total %d != summary total %d", st.AchievedTotalResponse, sum.TotalResponse)
	}
	if st.AchievedMaxResponse != sum.MaxResponse {
		t.Fatalf("achieved max %d != summary max %d", st.AchievedMaxResponse, sum.MaxResponse)
	}
	// Independent recomputation from the untouched offline instance.
	if want := core.SRPTLowerBound(inst); st.TotalLowerBound != want {
		t.Fatalf("total lower bound %d, offline recomputation %d", st.TotalLowerBound, want)
	}
	if want := core.TrivialMRTLowerBound(inst); st.MaxLowerBound != want {
		t.Fatalf("max lower bound %d, offline recomputation %d", st.MaxLowerBound, want)
	}
	if !st.Sane() {
		t.Fatalf("ratio invariant violated: %+v", st)
	}
	if st.TotalRatio < 1 || st.MaxRatio < 1 {
		t.Fatalf("competitive ratios below 1: total %v, max %v", st.TotalRatio, st.MaxRatio)
	}
	// The run has drained, so the post-run pending snapshot (served by
	// the direct quiescent read) must be empty with no backlog bound.
	if st.SnapshotErrors != 0 || st.PendingFlows != 0 || st.BacklogBoundRounds != 0 {
		t.Fatalf("drained run reports pending state: %+v", st)
	}
}

// TestPilotWindowWrap: with a window smaller than the run, the ratios
// stay sound — the sub-instance soundness argument holds for any
// completion subset.
func TestPilotWindowWrap(t *testing.T) {
	inst := workload.PoissonConfig{M: 8, T: 60, Ports: 4}.Generate(rand.New(rand.NewSource(23)))
	const window = 16
	if inst.N() <= window {
		t.Fatalf("instance too small (%d flows) to wrap a %d window", inst.N(), window)
	}
	p, err := pilot.New(inst.Switch, pilot.Config{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	src := workload.NewInstanceSource(inst)
	rt, err := stream.New(src, stream.Config{
		Switch:     inst.Switch,
		Policy:     stream.ByName("OldestFirst"),
		Shards:     1,
		OnSchedule: p.OnSchedule,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Bind(rt)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := p.Evaluate(context.Background())
	if st.WindowFlows != window {
		t.Fatalf("window holds %d flows, want %d", st.WindowFlows, window)
	}
	if !st.Sane() || st.TotalRatio < 1 || st.MaxRatio < 1 {
		t.Fatalf("wrapped-window ratios unsound: %+v", st)
	}
}

// TestPilotConcurrentEvaluate runs the evaluator against a live writer
// under the race detector: the ring's discard protocol must keep every
// evaluation self-consistent with no synchronization from the writer.
func TestPilotConcurrentEvaluate(t *testing.T) {
	sw := switchnet.UnitSwitch(8)
	p, err := pilot.New(sw, pilot.Config{Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := p.Evaluate(context.Background())
			if st.WindowFlows > 64 {
				t.Errorf("window overflow: %d", st.WindowFlows)
				return
			}
		}
	}()
	for k := 0; k < 100_000; k++ {
		f := switchnet.Flow{In: k % 8, Out: (k / 8) % 8, Demand: 1, Release: k / 8}
		p.OnSchedule(int64(k), f, k/8+1)
	}
	close(stop)
	wg.Wait()
}

// TestPilotHookZeroAlloc pins the coordinator-side cost contract: the
// completion hook must never allocate.
func TestPilotHookZeroAlloc(t *testing.T) {
	p, err := pilot.New(switchnet.UnitSwitch(4), pilot.Config{Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	k := 0
	allocs := testing.AllocsPerRun(1000, func() {
		p.OnSchedule(int64(k), switchnet.Flow{In: k % 4, Out: k % 4, Demand: 1, Release: k}, k+1)
		k++
	})
	if allocs != 0 {
		t.Fatalf("OnSchedule performed %v allocs, want 0", allocs)
	}
}

// TestPilotRunLoop smoke-tests the ticker loop: it evaluates at its
// cadence and once more on cancellation.
func TestPilotRunLoop(t *testing.T) {
	p, err := pilot.New(switchnet.UnitSwitch(4), pilot.Config{Window: 32, Every: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		p.Run(ctx)
		close(done)
	}()
	deadline := time.After(5 * time.Second)
	for p.Status().Evaluations < 3 {
		select {
		case <-deadline:
			t.Fatal("pilot never evaluated")
		case <-time.After(time.Millisecond):
		}
	}
	before := p.Status().Evaluations
	cancel()
	<-done
	if after := p.Status().Evaluations; after <= before {
		t.Fatalf("no final evaluation on cancel: %d -> %d", before, after)
	}
}
