// Package faultinject is the chaos harness for the streaming scheduler:
// deterministic, seed-driven wrappers that inject the failures a
// production deployment actually sees — source hiccups (the ingest path
// goes quiet, then bursts), source errors (the feed dies mid-stream),
// clock jumps (huge idle gaps in virtual time), shard stalls (a policy
// instance schedules nothing for a stretch), and checkpoint-file
// corruption (truncation, bit flips) — so tests can assert the
// runtime's invariants hold under failure, not just on the happy path.
//
// Everything is deterministic: wrappers derive their fault schedules
// from an explicit seed, never from wall clock or global randomness, so
// a failing chaos run replays exactly. None of the wrappers break the
// stream contract (releases stay non-decreasing, batch pulls stay
// release-gated); they reshape timing and availability, which is what
// real faults do.
package faultinject

import (
	"fmt"
	"math/rand"
	"os"

	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
)

// Source is the workload-facing contract the wrappers consume and
// re-expose (FlowSource + PullBatch, matching workload.BatchFlowSource
// and stream.BatchSource).
type Source interface {
	Next() (f switchnet.Flow, ok bool)
	Err() error
	PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow
}

// HiccupSource simulates an ingest path that stalls and recovers: with
// probability Prob per flow (seeded), the flow — and, releases being
// non-decreasing, everything after it — is pushed MinGap..MaxGap rounds
// later than the underlying source released it. The shift accumulates,
// exactly like a real feed that falls behind and never un-sends what it
// already delayed.
type HiccupSource struct {
	src   Source
	rng   *rand.Rand
	prob  float64
	min   int
	max   int
	shift int

	scratch []switchnet.Flow
	// Hiccups counts injected stalls, for test assertions that the fault
	// actually fired.
	Hiccups int
}

// NewHiccupSource wraps src; prob is the per-flow hiccup probability and
// [minGap, maxGap] the rounds each hiccup adds to every later release.
func NewHiccupSource(src Source, seed int64, prob float64, minGap, maxGap int) *HiccupSource {
	if minGap < 1 {
		minGap = 1
	}
	if maxGap < minGap {
		maxGap = minGap
	}
	return &HiccupSource{src: src, rng: rand.New(rand.NewSource(seed)), prob: prob, min: minGap, max: maxGap}
}

// jitter rolls the hiccup die for one flow and shifts its release.
func (s *HiccupSource) jitter(f switchnet.Flow) switchnet.Flow {
	if s.rng.Float64() < s.prob {
		s.shift += s.min + s.rng.Intn(s.max-s.min+1)
		s.Hiccups++
	}
	f.Release += s.shift
	return f
}

// Next implements stream.Source, draining the carry buffer first so
// delivery order (and release monotonicity) survives interleaved Next
// and PullBatch reads.
func (s *HiccupSource) Next() (switchnet.Flow, bool) {
	if len(s.scratch) > 0 {
		f := s.scratch[0]
		s.scratch = s.scratch[1:]
		return f, true
	}
	f, ok := s.src.Next()
	if !ok {
		return f, false
	}
	return s.jitter(f), true
}

// PullBatch implements stream.BatchSource. The shift moves flows into
// the future, so a shifted flow may no longer be released at the round
// the underlying source would have released it; pulled-too-early flows
// wait in an internal carry buffer.
func (s *HiccupSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	n := 0
	for n < max && len(s.scratch) > 0 && s.scratch[0].Release <= round {
		dst = append(dst, s.scratch[0])
		s.scratch = s.scratch[1:]
		n++
	}
	for n < max {
		f, ok := s.src.Next()
		if !ok {
			break
		}
		if f.Release > round {
			// The underlying source would not have released this yet; keep
			// its jittered form for a later pull.
			s.scratch = append(s.scratch, s.jitter(f))
			break
		}
		g := s.jitter(f)
		if g.Release > round {
			s.scratch = append(s.scratch, g)
			break
		}
		dst = append(dst, g)
		n++
	}
	return dst
}

// Err implements stream.Source.
func (s *HiccupSource) Err() error { return s.src.Err() }

// ErrorSource fails the stream after yielding n flows: Next/PullBatch
// report end-of-stream and Err reports the injected error, exactly the
// contract a dying feed presents.
type ErrorSource struct {
	src  Source
	left int
	err  error
	hit  bool
}

// NewErrorSource wraps src to die with err after n flows.
func NewErrorSource(src Source, n int, err error) *ErrorSource {
	return &ErrorSource{src: src, left: n, err: err}
}

// Next implements stream.Source.
func (s *ErrorSource) Next() (switchnet.Flow, bool) {
	if s.left <= 0 {
		s.hit = true
		return switchnet.Flow{}, false
	}
	f, ok := s.src.Next()
	if ok {
		s.left--
	}
	return f, ok
}

// PullBatch implements stream.BatchSource.
func (s *ErrorSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	if s.left <= 0 {
		s.hit = true
		return dst
	}
	if max > s.left {
		max = s.left
	}
	before := len(dst)
	dst = s.src.PullBatch(dst, round, max)
	s.left -= len(dst) - before
	return dst
}

// Err implements stream.Source: the injected error once the budget is
// spent, the underlying source's otherwise.
func (s *ErrorSource) Err() error {
	if s.hit || s.left <= 0 {
		return s.err
	}
	return s.src.Err()
}

// JumpSource injects a virtual-clock jump: after n flows, every later
// release is shifted forward by jump rounds, opening a huge idle gap the
// runtime must cross with its idle-jump path (and, with verification
// windows on, flush across) without disturbing accounting.
type JumpSource struct {
	src     Source
	left    int
	jump    int
	scratch []switchnet.Flow
}

// NewJumpSource wraps src to jump the clock by jump rounds after n
// flows.
func NewJumpSource(src Source, n, jump int) *JumpSource {
	return &JumpSource{src: src, left: n, jump: jump}
}

func (s *JumpSource) shift(f switchnet.Flow) switchnet.Flow {
	if s.left > 0 {
		s.left--
	} else {
		f.Release += s.jump
	}
	return f
}

// Next implements stream.Source, draining the carry buffer first so
// delivery order survives interleaved Next and PullBatch reads.
func (s *JumpSource) Next() (switchnet.Flow, bool) {
	if len(s.scratch) > 0 {
		f := s.scratch[0]
		s.scratch = s.scratch[1:]
		return f, true
	}
	f, ok := s.src.Next()
	if !ok {
		return f, false
	}
	return s.shift(f), true
}

// PullBatch implements stream.BatchSource, carrying post-jump flows
// pulled early until their shifted release.
func (s *JumpSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	n := 0
	for n < max && len(s.scratch) > 0 && s.scratch[0].Release <= round {
		dst = append(dst, s.scratch[0])
		s.scratch = s.scratch[1:]
		n++
	}
	for n < max {
		f, ok := s.src.Next()
		if !ok {
			break
		}
		g := s.shift(f)
		if g.Release > round {
			s.scratch = append(s.scratch, g)
			break
		}
		dst = append(dst, g)
		n++
	}
	return dst
}

// Err implements stream.Source.
func (s *JumpSource) Err() error { return s.src.Err() }

// StallPolicy simulates a wedged shard: on a deterministic cadence it
// suppresses the wrapped policy's Pick entirely — the shard schedules
// nothing for StallLen consecutive rounds every Period rounds — which is
// what a stuck policy instance, a paused goroutine, or a briefly
// livelocked shard looks like to the rest of the runtime. It passes
// Shardable and Resetter through, so it wraps sharded runs transparently
// (each shard stalls on the same round cadence, driven by the round
// number, not per-instance state).
type StallPolicy struct {
	// P is the wrapped policy.
	P stream.Policy
	// Period and StallLen define the stall cadence: rounds r with
	// Period <= r%(Period+StallLen) are stalled... more precisely, each
	// window of Period+StallLen rounds schedules normally for Period
	// rounds, then stalls for StallLen.
	Period   int
	StallLen int
}

// Name implements stream.Policy.
func (p *StallPolicy) Name() string { return "Stall(" + p.P.Name() + ")" }

// Pick implements stream.Policy: a stalled round takes nothing.
func (p *StallPolicy) Pick(v *stream.View) {
	cycle := p.Period + p.StallLen
	if cycle > 0 && v.Round()%cycle >= p.Period {
		return
	}
	p.P.Pick(v)
}

// NewShard implements stream.Shardable when the wrapped policy does.
func (p *StallPolicy) NewShard() stream.Policy {
	return &StallPolicy{P: p.P.(stream.Shardable).NewShard(), Period: p.Period, StallLen: p.StallLen}
}

// Reset implements stream.Resetter, forwarding when the wrapped policy
// resets.
func (p *StallPolicy) Reset(sw switchnet.Switch) {
	if r, ok := p.P.(stream.Resetter); ok {
		r.Reset(sw)
	}
}

// TruncateFile cuts the file at path down to n bytes — the torn tail a
// crash mid-write (without an atomic rename) would leave.
func TruncateFile(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n < 0 || n > info.Size() {
		return fmt.Errorf("faultinject: truncate %s to %d bytes (file is %d)", path, n, info.Size())
	}
	return os.Truncate(path, n)
}

// FlipByte XOR-flips one byte of the file at path — silent media
// corruption. off counts from the start; negative counts from the end
// (-1 is the last byte).
func FlipByte(path string, off int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if off < 0 {
		off += int64(len(data))
	}
	if off < 0 || off >= int64(len(data)) {
		return fmt.Errorf("faultinject: flip offset %d outside %d-byte file %s", off, len(data), path)
	}
	data[off] ^= 0xFF
	return os.WriteFile(path, data, 0o644)
}
