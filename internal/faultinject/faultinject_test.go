package faultinject

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"flowsched/internal/chkpt"
	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

// fixedSource replays a slice through both source read paths.
type fixedSource struct {
	flows []switchnet.Flow
	at    int
}

func (s *fixedSource) Next() (switchnet.Flow, bool) {
	if s.at >= len(s.flows) {
		return switchnet.Flow{}, false
	}
	f := s.flows[s.at]
	s.at++
	return f, true
}

func (s *fixedSource) PullBatch(dst []switchnet.Flow, round, max int) []switchnet.Flow {
	for n := 0; n < max && s.at < len(s.flows) && s.flows[s.at].Release <= round; n++ {
		dst = append(dst, s.flows[s.at])
		s.at++
	}
	return dst
}

func (s *fixedSource) Err() error { return nil }

// genFlows builds the deterministic chaos workload: per flows per round
// over rounds rounds, endpoints cycling over a ports-port unit switch.
func genFlows(ports, rounds, per int) []switchnet.Flow {
	var out []switchnet.Flow
	for r := 0; r < rounds; r++ {
		for i := 0; i < per; i++ {
			k := r*per + i
			out = append(out, switchnet.Flow{
				In:      k % ports,
				Out:     (k*5 + 2) % ports,
				Demand:  1,
				Release: r,
			})
		}
	}
	return out
}

// assertBalanced pins the accounting invariant every fault must leave
// intact.
func assertBalanced(t *testing.T, s *stream.Summary) {
	t.Helper()
	if s.Admitted != s.Completed+int64(s.Pending)+s.Dropped+s.Expired {
		t.Fatalf("accounting unbalanced: admitted %d != completed %d + pending %d + dropped %d + expired %d",
			s.Admitted, s.Completed, s.Pending, s.Dropped, s.Expired)
	}
}

type flowResp struct {
	f     switchnet.Flow
	round int
}

// TestCrashEquivalenceDifferential is the acceptance-criteria
// differential: checkpoint an arbitrary round, "kill" the run
// (abandon it mid-flight, nothing graceful), restore a fresh runtime
// through a full serialize/load round trip of the checkpoint file, and
// drain. The split run must complete exactly the same flow multiset
// with identical per-flow response rounds (charged from original
// releases) and an identical final summary as the uninterrupted run —
// for every registry policy at every supported shard count. The
// stateful policies (RoundRobin's rotation pointers, WeightedISLIP's
// grant/accept pointers) only pass because the checkpoint carries
// their scratch; the age-indexed policies only pass because restore
// re-admission rebuilds the candidate index deterministically.
func TestCrashEquivalenceDifferential(t *testing.T) {
	const ports, rounds, per = 6, 60, 9
	flows := genFlows(ports, rounds, per)
	sw := switchnet.UnitSwitch(ports)
	for _, pol := range stream.Names() {
		for _, shards := range []int{1, 2, 4} {
			if shards > 1 {
				if _, ok := stream.ByName(pol).(stream.Shardable); !ok {
					continue
				}
			}
			for _, cadence := range []int{7, 29} {
				t.Run(fmt.Sprintf("%s/K%d/ckpt@%d", pol, shards, cadence), func(t *testing.T) {
					cfgFor := func(onSched func(int64, switchnet.Flow, int)) stream.Config {
						return stream.Config{
							Switch: sw, Policy: stream.ByName(pol), Shards: shards,
							MaxPending: 32, VerifyEvery: 16,
							OnSchedule: onSched,
						}
					}

					// Uninterrupted reference.
					var ref []flowResp
					rtB, err := stream.New(&fixedSource{flows: flows}, cfgFor(func(seq int64, f switchnet.Flow, round int) {
						ref = append(ref, flowResp{f, round})
					}))
					if err != nil {
						t.Fatal(err)
					}
					want, err := rtB.Run()
					if err != nil {
						t.Fatal(err)
					}
					assertBalanced(t, want)

					// Checkpointed run, killed at the capture: the checkpoint
					// goes through the real file envelope.
					path := filepath.Join(t.TempDir(), "ck")
					var pre []flowResp
					captured := false
					var rtA *stream.Runtime
					cfgA := cfgFor(func(seq int64, f switchnet.Flow, round int) {
						pre = append(pre, flowResp{f, round})
					})
					cfgA.CheckpointEveryRounds = cadence
					cfgA.OnCheckpoint = func(st *stream.CheckpointState) {
						if !captured {
							captured = true
							if err := chkpt.Save(path, chkpt.FromState(st, cfgA)); err != nil {
								t.Errorf("save: %v", err)
							}
						}
						rtA.Stop()
					}
					rtA, err = stream.New(&fixedSource{flows: flows}, cfgA)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := rtA.Run(); err != nil {
						t.Fatal(err)
					}
					if !captured {
						t.Fatal("cadence never fired")
					}

					// Restore from the file and drain.
					ck, err := chkpt.Load(path)
					if err != nil {
						t.Fatal(err)
					}
					if err := ck.Compatible(sw); err != nil {
						t.Fatal(err)
					}
					kept := pre[:0]
					for _, c := range pre {
						if c.round < ck.Round {
							kept = append(kept, c)
						}
					}
					pre = kept
					var post []flowResp
					tail := workload.Skip(&fixedSource{flows: flows}, int(ck.SourceConsumed))
					cfgC := cfgFor(func(seq int64, f switchnet.Flow, round int) {
						post = append(post, flowResp{f, round})
					})
					cfgC.Resume = ck.Resume()
					rtC, err := stream.New(workload.NewCheckpointSource(ck.Flows, tail), cfgC)
					if err != nil {
						t.Fatal(err)
					}
					got, err := rtC.Run()
					if err != nil {
						t.Fatal(err)
					}
					assertBalanced(t, got)

					if got.Admitted != want.Admitted || got.Completed != want.Completed ||
						got.TotalResponse != want.TotalResponse || got.MaxResponse != want.MaxResponse ||
						got.Backpressured != want.Backpressured || got.Round != want.Round ||
						got.Rounds != want.Rounds || got.Pending != 0 {
						t.Fatalf("restored summary diverged:\n got %+v\nwant %+v\n(checkpoint at round %d, %d pending)",
							got, want, ck.Round, ck.Pending)
					}
					count := func(rs []flowResp) map[flowResp]int {
						m := make(map[flowResp]int, len(rs))
						for _, r := range rs {
							m[r]++
						}
						return m
					}
					cm := count(append(append([]flowResp(nil), pre...), post...))
					rm := count(ref)
					if len(cm) != len(rm) {
						t.Fatalf("completion multisets differ in support: split %d keys, uninterrupted %d", len(cm), len(rm))
					}
					for k, n := range rm {
						if cm[k] != n {
							t.Fatalf("completion multiset differs at %+v: split %d, uninterrupted %d", k, cm[k], n)
						}
					}
				})
			}
		}
	}
}

// TestShardStallKeepsInvariants wedges the policy on a deterministic
// cadence — every shard schedules nothing for stretches of rounds — and
// requires a clean drain: verifier-clean windows, balanced accounting,
// every flow completed.
func TestShardStallKeepsInvariants(t *testing.T) {
	const ports, rounds, per = 6, 50, 6
	flows := genFlows(ports, rounds, per)
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("K%d", shards), func(t *testing.T) {
			pol := &StallPolicy{P: stream.ByName("RoundRobin"), Period: 5, StallLen: 3}
			rt, err := stream.New(&fixedSource{flows: flows}, stream.Config{
				Switch: switchnet.UnitSwitch(ports), Policy: pol, Shards: shards,
				MaxPending: 64, VerifyEvery: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum, err := rt.Run()
			if err != nil {
				t.Fatal(err)
			}
			assertBalanced(t, sum)
			if sum.Completed != int64(len(flows)) || sum.Pending != 0 {
				t.Fatalf("stalled drain incomplete: %+v", sum)
			}
			if sum.WindowsVerified == 0 {
				t.Fatal("verifier never ran")
			}
		})
	}
}

// TestSourceHiccupKeepsInvariants runs a seeded hiccuping feed — bursts
// and quiet stretches — and requires a clean, verified, balanced drain.
func TestSourceHiccupKeepsInvariants(t *testing.T) {
	const ports, rounds, per = 6, 80, 5
	src := NewHiccupSource(&fixedSource{flows: genFlows(ports, rounds, per)}, 0xC0FFEE, 0.08, 2, 17)
	rt, err := stream.New(src, stream.Config{
		Switch: switchnet.UnitSwitch(ports), Policy: stream.ByName("OldestFirst"),
		Shards: 2, MaxPending: 64, VerifyEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertBalanced(t, sum)
	if sum.Completed != int64(rounds*per) || sum.Pending != 0 {
		t.Fatalf("hiccuped drain incomplete: %+v", sum)
	}
	if sum.WindowsVerified == 0 {
		t.Fatal("verifier never ran")
	}
	if src.Hiccups == 0 {
		t.Fatal("seeded hiccup schedule injected nothing — the test exercised the happy path")
	}
}

// TestClockJumpKeepsInvariants opens a ~million-round idle gap
// mid-stream; the runtime must cross it with its idle jump, keep the
// verification windows clean, and keep accounting balanced on both
// sides.
func TestClockJumpKeepsInvariants(t *testing.T) {
	const ports, rounds, per, jump = 6, 40, 5, 1 << 20
	src := NewJumpSource(&fixedSource{flows: genFlows(ports, rounds, per)}, rounds*per/2, jump)
	rt, err := stream.New(src, stream.Config{
		Switch: switchnet.UnitSwitch(ports), Policy: stream.ByName("RoundRobin"),
		Shards: 2, MaxPending: 64, VerifyEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertBalanced(t, sum)
	if sum.Completed != int64(rounds*per) || sum.Pending != 0 {
		t.Fatalf("jumped drain incomplete: %+v", sum)
	}
	if sum.Round <= jump {
		t.Fatalf("clock jump never happened: final round %d", sum.Round)
	}
	if sum.WindowsVerified == 0 {
		t.Fatal("verifier never ran")
	}
}

// TestSourceErrorPropagates pins that a feed dying mid-stream fails the
// run with the injected error instead of reporting a clean drain.
func TestSourceErrorPropagates(t *testing.T) {
	injected := errors.New("feed died")
	src := NewErrorSource(&fixedSource{flows: genFlows(4, 20, 4)}, 17, injected)
	rt, err := stream.New(src, stream.Config{
		Switch: switchnet.UnitSwitch(4), Policy: stream.ByName("StreamFIFO"), Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); !errors.Is(err, injected) {
		t.Fatalf("run returned %v, want the injected source error", err)
	}
}

// TestCorruptCheckpointRefusedEndToEnd writes a real checkpoint from a
// live capture, damages it with the harness corrupters, and requires
// the restore path to refuse each damaged file with the right typed
// error — before any runtime is constructed or any flow admitted.
func TestCorruptCheckpointRefusedEndToEnd(t *testing.T) {
	const ports, rounds, per = 4, 30, 5
	dir := t.TempDir()
	path := filepath.Join(dir, "ck")
	captured := false
	var rt *stream.Runtime
	cfg := stream.Config{
		Switch: switchnet.UnitSwitch(ports), Policy: stream.ByName("StreamFIFO"), Shards: 1,
		MaxPending:            16,
		CheckpointEveryRounds: 9,
	}
	cfg.OnCheckpoint = func(st *stream.CheckpointState) {
		if !captured {
			captured = true
			if err := chkpt.Save(path, chkpt.FromState(st, cfg)); err != nil {
				t.Errorf("save: %v", err)
			}
		}
		rt.Stop()
	}
	var err error
	rt, err = stream.New(&fixedSource{flows: genFlows(ports, rounds, per)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !captured {
		t.Fatal("no checkpoint captured")
	}
	if ck, err := chkpt.Load(path); err != nil || ck.Pending == 0 {
		t.Fatalf("pristine checkpoint should load with pending flows: %v, %+v", err, ck)
	}

	corrupt := func(name string, mut func(string) error, want error) {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "ck")
			ck, err := chkpt.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := chkpt.Save(p, ck); err != nil {
				t.Fatal(err)
			}
			if err := mut(p); err != nil {
				t.Fatal(err)
			}
			if _, err := chkpt.Load(p); !errors.Is(err, want) {
				t.Fatalf("corrupt load returned %v, want %v", err, want)
			}
		})
	}
	corrupt("truncated", func(p string) error { return TruncateFile(p, 25) }, chkpt.ErrTruncated)
	corrupt("flipped CRC byte", func(p string) error { return FlipByte(p, -1) }, chkpt.ErrCorrupt)
	corrupt("flipped payload byte", func(p string) error { return FlipByte(p, 30) }, chkpt.ErrCorrupt)
	corrupt("emptied", func(p string) error { return TruncateFile(p, 0) }, chkpt.ErrEmpty)
}
