package heuristics

import (
	"math/rand"
	"testing"

	"flowsched/internal/sim"
	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

func runPolicy(t *testing.T, inst *switchnet.Instance, pol sim.Policy) *sim.Result {
	t.Helper()
	res, err := sim.Run(inst, pol)
	if err != nil {
		t.Fatalf("%s: %v", pol.Name(), err)
	}
	if !res.Schedule.Complete() {
		t.Fatalf("%s: incomplete", pol.Name())
	}
	if err := res.Schedule.Validate(inst, inst.Switch.Caps()); err != nil {
		t.Fatalf("%s: %v", pol.Name(), err)
	}
	return res
}

func TestAllPoliciesProduceValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := workload.PoissonConfig{M: 6, T: 6, Ports: 4}
	inst := cfg.Generate(rng)
	for _, pol := range WithAblations() {
		runPolicy(t, inst, pol)
	}
}

func TestMaxCardTakesMaximumMatching(t *testing.T) {
	// Three flows, perfect matching exists: MaxCard must take all three in
	// round 0.
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(3),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 1, Out: 1, Demand: 1, Release: 0},
			{In: 2, Out: 2, Demand: 1, Release: 0},
		},
	}
	res := runPolicy(t, inst, MaxCard{})
	if res.MaxResponse != 1 {
		t.Fatalf("max response = %d, want 1", res.MaxResponse)
	}
}

func TestMinRTimePrefersOldFlows(t *testing.T) {
	// Input 0 has a backlog; a fresh competing flow shares output 0.
	// MinRTime must clear the older flow first.
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 0, Out: 1, Demand: 1, Release: 0},
			{In: 1, Out: 0, Demand: 1, Release: 1},
		},
	}
	res := runPolicy(t, inst, MinRTime{})
	// Round 0 schedules one of the two port-0 flows; round 1 the aged
	// leftover wins output 0 over the fresh arrival if they conflict.
	if res.MaxResponse > 2 {
		t.Fatalf("max response = %d, want <= 2", res.MaxResponse)
	}
	if got := res.Schedule.ResponseTime(inst, 1); got > 2 {
		t.Fatalf("aged flow waited %d rounds", got)
	}
}

func TestHeuristicOrderingOnHeavyLoad(t *testing.T) {
	// Under heavy congestion MinRTime should have the best max response
	// and MaxCard should be at least as good as the others on average —
	// the qualitative finding of Figures 6 and 7. We assert the weaker,
	// stable directional claims with generous slack to avoid flakiness.
	rng := rand.New(rand.NewSource(7))
	cfg := workload.PoissonConfig{M: 16, T: 10, Ports: 4} // load factor 4
	inst := cfg.Generate(rng)
	card := runPolicy(t, inst, MaxCard{})
	rtime := runPolicy(t, inst, MinRTime{})
	weight := runPolicy(t, inst, MaxWeight{})
	if rtime.MaxResponse > card.MaxResponse+5 {
		t.Fatalf("MinRTime max %d much worse than MaxCard %d", rtime.MaxResponse, card.MaxResponse)
	}
	if card.AvgResponse > 2*weight.AvgResponse+5 {
		t.Fatalf("MaxCard avg %v much worse than MaxWeight %v", card.AvgResponse, weight.AvgResponse)
	}
}

func TestGeneralDemandFallback(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.NewSwitch(2, 2, 3),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 2, Release: 0},
			{In: 0, Out: 1, Demand: 1, Release: 0},
			{In: 1, Out: 0, Demand: 3, Release: 0},
			{In: 1, Out: 1, Demand: 2, Release: 1},
		},
	}
	for _, pol := range WithAblations() {
		runPolicy(t, inst, pol)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"MaxCard", "MinRTime", "MaxWeight", "FIFO", "GreedyAge"} {
		if p := ByName(name); p == nil || p.Name() != name {
			t.Fatalf("ByName(%q) broken", name)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("unknown name resolved")
	}
}

func TestAllReturnsPaperHeuristics(t *testing.T) {
	names := []string{}
	for _, p := range All() {
		names = append(names, p.Name())
	}
	if len(names) != 3 || names[0] != "MaxCard" || names[1] != "MinRTime" || names[2] != "MaxWeight" {
		t.Fatalf("All() = %v", names)
	}
}

func TestFIFOOrdering(t *testing.T) {
	// FIFO must schedule the earliest-released conflicting flow first.
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 1},
			{In: 1, Out: 0, Demand: 1, Release: 0},
		},
	}
	res := runPolicy(t, inst, FIFO{})
	if res.Schedule.Round[1] != 0 {
		t.Fatalf("FIFO scheduled later flow first: %v", res.Schedule.Round)
	}
}
