// Package heuristics implements the online scheduling policies evaluated
// in Section 5.2 of the paper — MaxCard (maximum-cardinality matching),
// MinRTime (maximum-weight matching by flow age) and MaxWeight
// (maximum-weight matching by endpoint queue sizes) — plus FIFO and
// shortest-first ablation baselines. On unit-demand instances selections
// are exact matchings (via max-flow / min-cost-flow); with general demands
// the policies fall back to weight-ordered first-fit, since per-round
// demand matching is NP-hard.
package heuristics

import (
	"sort"

	"flowsched/internal/matching"
	"flowsched/internal/sim"
)

// MaxCard schedules a maximum-cardinality feasible set each round,
// maximizing port utilization. The paper expects it to do well on average
// response time and poorly on maximum response time.
type MaxCard struct{}

// Name implements sim.Policy.
func (MaxCard) Name() string { return "MaxCard" }

// Pick implements sim.Policy.
func (MaxCard) Pick(s *sim.State) []int {
	if allUnit(s) {
		edges := pendingEdges(s, func(p sim.Pending) int { return 0 })
		return matching.CapacitatedMaxCardinality(s.Switch.InCaps, s.Switch.OutCaps, edges)
	}
	// General demands: first-fit by arrival order maximizes count greedily.
	return firstFit(s, func(a, b sim.Pending) bool {
		if a.Demand != b.Demand {
			return a.Demand < b.Demand
		}
		return a.Release < b.Release
	})
}

// MinRTime schedules a maximum-weight feasible set where a flow's weight is
// its age t - r_e (+1 so fresh flows still count): the longer a flow has
// waited, the higher its priority. Best for maximum response time.
type MinRTime struct{}

// Name implements sim.Policy.
func (MinRTime) Name() string { return "MinRTime" }

// Pick implements sim.Policy.
func (MinRTime) Pick(s *sim.State) []int {
	age := func(p sim.Pending) int { return s.Round - p.Release + 1 }
	if allUnit(s) {
		edges := pendingEdges(s, age)
		return matching.CapacitatedMaxWeight(s.Switch.InCaps, s.Switch.OutCaps, edges)
	}
	return firstFit(s, func(a, b sim.Pending) bool { return age(a) > age(b) })
}

// MaxWeight schedules a maximum-weight feasible set where a flow's weight
// is the sum of the queue sizes at its two endpoints — the classic
// max-weight crossbar policy. The paper's compromise choice.
type MaxWeight struct{}

// Name implements sim.Policy.
func (MaxWeight) Name() string { return "MaxWeight" }

// Pick implements sim.Policy.
func (MaxWeight) Pick(s *sim.State) []int {
	weight := func(p sim.Pending) int { return s.QueueIn[p.In] + s.QueueOut[p.Out] }
	if allUnit(s) {
		edges := pendingEdges(s, weight)
		return matching.CapacitatedMaxWeight(s.Switch.InCaps, s.Switch.OutCaps, edges)
	}
	return firstFit(s, func(a, b sim.Pending) bool { return weight(a) > weight(b) })
}

// FIFO is an ablation baseline: first-fit in release order, no matching
// optimization at all.
type FIFO struct{}

// Name implements sim.Policy.
func (FIFO) Name() string { return "FIFO" }

// Pick implements sim.Policy.
func (FIFO) Pick(s *sim.State) []int {
	return firstFit(s, func(a, b sim.Pending) bool {
		if a.Release != b.Release {
			return a.Release < b.Release
		}
		return a.Flow < b.Flow
	})
}

// GreedyAge is an ablation of MinRTime that replaces the exact
// maximum-weight matching with 1/2-approximate greedy selection,
// quantifying what the exact matcher buys.
type GreedyAge struct{}

// Name implements sim.Policy.
func (GreedyAge) Name() string { return "GreedyAge" }

// Pick implements sim.Policy.
func (GreedyAge) Pick(s *sim.State) []int {
	return firstFit(s, func(a, b sim.Pending) bool {
		ageA, ageB := s.Round-a.Release, s.Round-b.Release
		if ageA != ageB {
			return ageA > ageB
		}
		return a.Flow < b.Flow
	})
}

// allUnit reports whether every pending flow has unit demand.
func allUnit(s *sim.State) bool {
	for _, p := range s.Pending {
		if p.Demand != 1 {
			return false
		}
	}
	return true
}

// pendingEdges converts the pending list into matching edges with the given
// weight function.
func pendingEdges(s *sim.State, weight func(sim.Pending) int) []matching.Edge {
	edges := make([]matching.Edge, len(s.Pending))
	for i, p := range s.Pending {
		edges[i] = matching.Edge{L: p.In, R: p.Out, Weight: weight(p)}
	}
	return edges
}

// firstFit picks flows in the order given by less, taking each flow whose
// ports still have room. It handles arbitrary demands.
func firstFit(s *sim.State, less func(a, b sim.Pending) bool) []int {
	order := make([]int, len(s.Pending))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return less(s.Pending[order[x]], s.Pending[order[y]]) })
	loadIn := make([]int, s.Switch.NumIn())
	loadOut := make([]int, s.Switch.NumOut())
	var picks []int
	for _, i := range order {
		p := s.Pending[i]
		if loadIn[p.In]+p.Demand <= s.Switch.InCaps[p.In] && loadOut[p.Out]+p.Demand <= s.Switch.OutCaps[p.Out] {
			loadIn[p.In] += p.Demand
			loadOut[p.Out] += p.Demand
			picks = append(picks, i)
		}
	}
	return picks
}

// All returns the three paper heuristics in presentation order.
func All() []sim.Policy {
	return []sim.Policy{MaxCard{}, MinRTime{}, MaxWeight{}}
}

// WithAblations returns the paper heuristics plus the ablation baselines.
func WithAblations() []sim.Policy {
	return append(All(), FIFO{}, GreedyAge{})
}

// ByName looks a policy up by its Name (case-sensitive); nil if unknown.
func ByName(name string) sim.Policy {
	for _, p := range WithAblations() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}
