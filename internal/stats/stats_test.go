package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Max(xs) != 5 || Min(xs) != 1 {
		t.Errorf("max/min = %v/%v", Max(xs), Min(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-slice defaults wrong")
	}
}

func TestStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample stddev of this classic set is ~2.138.
	if got := StdDev(xs); math.Abs(got-2.1381) > 1e-3 {
		t.Errorf("stddev = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("single sample stddev must be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Error("extremes wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Errorf("median = %v", Quantile(xs, 0.5))
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 {
		t.Error("input mutated")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	if CI95(xs) != 0 {
		t.Error("constant data must have zero CI")
	}
	if CI95([]float64{1}) != 0 {
		t.Error("single sample CI must be 0")
	}
	wide := []float64{0, 10}
	if CI95(wide) <= 0 {
		t.Error("CI should be positive for varied data")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			w.Add(xs[i])
		}
		if w.N() != n {
			return false
		}
		if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
			return false
		}
		if math.Abs(w.StdDev()-StdDev(xs)) > 1e-9 {
			return false
		}
		return w.Max() == Max(xs) && w.Min() == Min(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 {
		t.Error("zero value not usable")
	}
}
