package stats

import "math/bits"

// Quantile sketching for the streaming runtime: response times arrive as an
// unbounded sequence of non-negative integers, and the runtime needs
// sliding-window quantiles in bounded memory. LogHistogram is an HDR-style
// log-linear histogram (exact below sketchLinear, then sketchLinear
// sub-buckets per power of two, so quantiles carry at most 1/sketchLinear
// relative error). Sketches merge in O(buckets), which WindowQuantiles uses
// to rotate fixed-size sub-window shards.

// sketchLinear is the number of exact low buckets and of sub-buckets per
// octave. It must be a power of two.
const sketchLinear = 16

// sketchLog2 is log2(sketchLinear).
const sketchLog2 = 4

// LogHistogram is a bounded-memory, mergeable quantile sketch over
// non-negative integers. The zero value is an empty sketch ready to use.
type LogHistogram struct {
	//flowsched:allow atomic: seqlock single-writer — plain writer-side access; concurrent readers use atomic loads and tolerate torn merges by design
	n uint64
	//flowsched:allow atomic: seqlock single-writer — plain writer-side access; concurrent readers use atomic loads and tolerate torn merges by design
	counts []uint64
}

// sketchBucket maps a value to its bucket index.
func sketchBucket(v uint64) int {
	if v < sketchLinear {
		return int(v)
	}
	k := bits.Len64(v) - 1 // v in [2^k, 2^(k+1)), k >= sketchLog2
	sub := (v - 1<<k) >> (k - sketchLog2)
	return sketchLinear + (k-sketchLog2)*sketchLinear + int(sub)
}

// sketchValue returns the midpoint of bucket i, the value reported for any
// observation that landed in it.
func sketchValue(i int) float64 {
	if i < sketchLinear {
		return float64(i)
	}
	k := (i-sketchLinear)/sketchLinear + sketchLog2
	sub := uint64((i - sketchLinear) % sketchLinear)
	width := uint64(1) << (k - sketchLog2)
	lo := uint64(1)<<k + sub*width
	return float64(lo) + float64(width-1)/2
}

// Add incorporates one observation; negative values count as zero.
func (h *LogHistogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	b := sketchBucket(uint64(v))
	if b >= len(h.counts) {
		grown := make([]uint64, b+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
	h.n++
}

// N returns the number of observations.
func (h *LogHistogram) N() uint64 { return h.n }

// Reset empties the sketch, retaining its bucket storage.
func (h *LogHistogram) Reset() {
	h.n = 0
	for i := range h.counts {
		h.counts[i] = 0
	}
}

// Grow preallocates bucket storage to cover observations up to max, so
// subsequent Add calls for values of that magnitude never reallocate. The
// streaming runtime uses it to keep its per-round record path allocation
// free; growing to cover all of int costs under 8KB.
func (h *LogHistogram) Grow(max int) {
	if max < 0 {
		max = 0
	}
	if b := sketchBucket(uint64(max)); b >= len(h.counts) {
		grown := make([]uint64, b+1)
		copy(grown, h.counts)
		h.counts = grown
	}
}

// Merge adds all of o's observations into h.
func (h *LogHistogram) Merge(o *LogHistogram) {
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
}

// Quantile returns the q-quantile (0 <= q <= 1) of the observed values, up
// to the sketch's bucket resolution; 0 for an empty sketch.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank in [1, n]: the smallest bucket whose cumulative count reaches it.
	rank := uint64(q*float64(h.n-1)) + 1
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return sketchValue(i)
		}
	}
	return sketchValue(len(h.counts) - 1)
}

// WindowQuantiles tracks quantiles over a sliding window of the most recent
// rounds by rotating a fixed ring of LogHistogram shards: each shard covers
// window/shards consecutive rounds, and a query merges the live shards.
// Memory is O(shards * buckets) regardless of how many observations ever
// arrived. Rounds must be observed in non-decreasing order.
type WindowQuantiles struct {
	shards     []LogHistogram
	perShard   int
	lastPeriod int64
	started    bool
	scratch    LogHistogram
}

// NewWindowQuantiles returns a sliding window covering (approximately) the
// given number of rounds, split into the given number of shards. Both
// arguments are clamped to at least 1.
func NewWindowQuantiles(windowRounds, shards int) *WindowQuantiles {
	if shards < 1 {
		shards = 1
	}
	if windowRounds < shards {
		windowRounds = shards
	}
	return &WindowQuantiles{
		shards:   make([]LogHistogram, shards),
		perShard: (windowRounds + shards - 1) / shards,
	}
}

// Observe records value v at the given round, expiring shards whose rounds
// have slid out of the window.
func (w *WindowQuantiles) Observe(round, v int) {
	w.advance(round)
	w.shards[w.lastPeriod%int64(len(w.shards))].Add(v)
}

// Advance expires shards that have slid out of the window as of round,
// without recording an observation — call it before querying quantiles
// when observations may have stopped arriving (an idle or stalled stream),
// so stale shards do not linger in the reported window.
func (w *WindowQuantiles) Advance(round int) { w.advance(round) }

// advance rotates the ring up to the shard period containing round.
func (w *WindowQuantiles) advance(round int) {
	period := int64(round) / int64(w.perShard)
	if !w.started {
		w.started = true
		w.lastPeriod = period
		return
	}
	if period <= w.lastPeriod {
		return
	}
	steps := period - w.lastPeriod
	if steps > int64(len(w.shards)) {
		steps = int64(len(w.shards))
	}
	for s := int64(1); s <= steps; s++ {
		w.shards[(w.lastPeriod+s)%int64(len(w.shards))].Reset()
	}
	w.lastPeriod = period
}

// N returns the number of observations currently inside the window.
func (w *WindowQuantiles) N() uint64 {
	var n uint64
	for i := range w.shards {
		n += w.shards[i].n
	}
	return n
}

// Quantile returns the q-quantile over the window's live observations; 0
// if the window is empty.
func (w *WindowQuantiles) Quantile(q float64) float64 {
	w.scratch.Reset()
	w.MergeInto(&w.scratch)
	return w.scratch.Quantile(q)
}

// MergeInto merges the window's live observations into dst. It is the
// cross-window merge path for sharded runtimes that keep one
// WindowQuantiles per shard over the same rounds and combine them at
// snapshot time: merging every shard's window into one LogHistogram
// yields the same quantiles as a single window observing all values.
func (w *WindowQuantiles) MergeInto(dst *LogHistogram) {
	for i := range w.shards {
		dst.Merge(&w.shards[i])
	}
}

// Grow preallocates every ring shard and the query scratch to cover
// observations up to max, so Observe, Advance, and Quantile stop
// allocating once the window is constructed: rotation already reuses the
// shard backing arrays (Reset retains storage), and growing up front
// removes the remaining Add/Merge growth path.
func (w *WindowQuantiles) Grow(max int) {
	for i := range w.shards {
		w.shards[i].Grow(max)
	}
	w.scratch.Grow(max)
}
