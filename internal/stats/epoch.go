package stats

import (
	"math"
	"runtime"
	"sync/atomic"
)

// EpochWindow is the concurrent counterpart of WindowQuantiles: the same
// rotating ring of LogHistogram shards over a sliding window of rounds,
// but safe to query from other goroutines while a single writer records —
// without the writer ever taking a lock or allocating.
//
// The protocol is a seqlock. The writer brackets each batch of Observe
// calls in Begin/End, which bump an epoch counter to odd (write open) and
// back to even (stable); every mutation of ring state between them is a
// plain load plus an atomic store. A reader snapshots the epoch, merges
// the live rings with atomic loads, and retries if the epoch was odd or
// changed underneath it — so readers never block the writer, and the
// writer never waits for readers. After maxReadRetries inconsistent
// attempts a reader keeps its last merge, which can be mid-write by at
// most one round's observations: quantile sketches are approximate by
// construction, so a torn read only perturbs the estimate, never memory
// safety (counts are word-atomic).
//
// Ring expiry moved from the writer to the reader: each ring slot is
// labelled with the period it covers, and ReadInto skips slots whose
// period has slid out of the window as of the caller's round — the
// equivalent of WindowQuantiles.Advance without mutating shared state
// from the read side.
//
// Every ring is preallocated to the sketch's full bucket range at
// construction (about 8KB each), so Observe performs zero heap
// allocations for any value.
type EpochWindow struct {
	seq   atomic.Uint64
	rings []LogHistogram
	// period covered by ring i.
	//flowsched:allow atomic: seqlock single-writer — the writer mixes plain reads with atomic stores; readers take the atomic side and retry on seq mismatch
	periods []int64

	perShard int

	// Writer-only rotation state.
	lastPeriod int64
	started    bool
}

// maxReadRetries bounds a reader's seqlock retry loop; past it the reader
// keeps the (approximate) merge it has.
const maxReadRetries = 16

// neverPeriod labels a ring slot that has not covered any rounds yet; it
// compares below every reachable window.
const neverPeriod = math.MinInt64 / 2

// NewEpochWindow returns a concurrent sliding window covering
// (approximately) the given number of rounds, split into the given number
// of ring shards. Both arguments are clamped to at least 1.
func NewEpochWindow(windowRounds, shards int) *EpochWindow {
	if shards < 1 {
		shards = 1
	}
	if windowRounds < shards {
		windowRounds = shards
	}
	w := &EpochWindow{
		rings:    make([]LogHistogram, shards),
		periods:  make([]int64, shards),
		perShard: (windowRounds + shards - 1) / shards,
	}
	for i := range w.rings {
		w.rings[i].Grow(math.MaxInt)
		w.periods[i] = neverPeriod
	}
	return w
}

// Begin opens a write section. Observe calls are only valid between Begin
// and End; the writer is a single goroutine.
//
//flowsched:hotpath
func (w *EpochWindow) Begin() { w.seq.Add(1) }

// End closes the write section opened by Begin.
//
//flowsched:hotpath
func (w *EpochWindow) End() { w.seq.Add(1) }

// Observe records value v at the given round, rotating ring slots whose
// rounds have slid out of the window. Rounds must be non-decreasing. It
// must be called inside a Begin/End section and never allocates.
//
//flowsched:hotpath
func (w *EpochWindow) Observe(round, v int) {
	n := int64(len(w.rings))
	period := int64(round) / int64(w.perShard)
	switch {
	case !w.started:
		w.started = true
		w.lastPeriod = period
		atomic.StoreInt64(&w.periods[period%n], period)
	case period > w.lastPeriod:
		// Rotate: reset and relabel every slot for the periods the window
		// just entered (at most one full ring, however large the jump).
		q := period - n + 1
		if lo := w.lastPeriod + 1; lo > q {
			q = lo
		}
		for ; q <= period; q++ {
			w.rings[q%n].resetAtomic()
			atomic.StoreInt64(&w.periods[q%n], q)
		}
		w.lastPeriod = period
	}
	ring := &w.rings[period%n]
	if v < 0 {
		v = 0
	}
	b := sketchBucket(uint64(v))
	atomic.StoreUint64(&ring.counts[b], ring.counts[b]+1)
	atomic.StoreUint64(&ring.n, ring.n+1)
}

// ReadInto resets dst and merges the window's observations that are still
// live as of round into it. It is safe to call from any goroutine
// concurrently with a writer; dst must not be shared between concurrent
// readers. Slots whose period has slid out of the window by round are
// skipped, so a long-idle window reads as empty without the writer's
// involvement.
func (w *EpochWindow) ReadInto(dst *LogHistogram, round int) {
	minPeriod := int64(round)/int64(w.perShard) - int64(len(w.rings)) + 1
	for attempt := 0; ; attempt++ {
		s1 := w.seq.Load()
		if s1&1 != 0 {
			if attempt >= maxReadRetries {
				s1-- // give up waiting: merge anyway, accept the tear
			} else {
				runtime.Gosched()
				continue
			}
		}
		dst.Reset()
		for i := range w.rings {
			if atomic.LoadInt64(&w.periods[i]) < minPeriod {
				continue
			}
			dst.mergeAtomic(&w.rings[i])
		}
		if w.seq.Load() == s1 || attempt >= maxReadRetries {
			return
		}
		runtime.Gosched()
	}
}

// WindowSnapshot is a serializable image of an EpochWindow's live state:
// the ring slots' period labels and bucket counts, plus the geometry
// needed to judge compatibility at import. It exists for checkpointing —
// a restored runtime imports the snapshot so sliding-window response
// quantiles are continuous across a restore instead of restarting empty.
type WindowSnapshot struct {
	PerShard int        `json:"per_shard"`
	Periods  []int64    `json:"periods"`
	Counts   [][]uint64 `json:"counts"`
	Ns       []uint64   `json:"ns"`
}

// Clone returns a deep copy (checkpoint encoding must not alias the
// runtime's reused capture buffers).
func (s *WindowSnapshot) Clone() WindowSnapshot {
	c := WindowSnapshot{
		PerShard: s.PerShard,
		Periods:  append([]int64(nil), s.Periods...),
		Ns:       append([]uint64(nil), s.Ns...),
		Counts:   make([][]uint64, len(s.Counts)),
	}
	for i := range s.Counts {
		c.Counts[i] = append([]uint64(nil), s.Counts[i]...)
	}
	return c
}

// ExportInto captures the window's state into dst, reusing dst's backing
// slices so a warmed caller allocates nothing. The caller must hold the
// writer quiescent (checkpoint captures run on the coordinator between
// rounds); concurrent readers are harmless — they only load.
func (w *EpochWindow) ExportInto(dst *WindowSnapshot) {
	n := len(w.rings)
	dst.PerShard = w.perShard
	dst.Periods = append(dst.Periods[:0], w.periods...)
	dst.Ns = dst.Ns[:0]
	if cap(dst.Counts) < n {
		dst.Counts = append(dst.Counts, make([][]uint64, n-len(dst.Counts))...)
	}
	dst.Counts = dst.Counts[:n]
	for i := range w.rings {
		dst.Counts[i] = append(dst.Counts[i][:0], w.rings[i].counts...)
		dst.Ns = append(dst.Ns, w.rings[i].n)
	}
}

// Import merges a snapshot into the window. Geometry differences are
// tolerated conservatively: a snapshot with a different per-shard period
// width is dropped entirely (its period labels mean something else), a
// slot whose period predates the importing ring's label is dropped, and
// one that postdates it relabels the slot first — so an import never
// rewinds the window, and a changed ring count merely folds several old
// periods together. Runs single-threaded (construction time, before any
// writer or reader exists), so plain stores suffice.
func (w *EpochWindow) Import(s *WindowSnapshot) {
	if s.PerShard != w.perShard {
		return
	}
	n := int64(len(w.rings))
	for j := range s.Periods {
		if j >= len(s.Counts) || j >= len(s.Ns) {
			break
		}
		p := s.Periods[j]
		if p == neverPeriod {
			continue
		}
		i := p % n
		ring := &w.rings[i]
		switch {
		case w.periods[i] == p:
		case w.periods[i] < p:
			ring.Reset()
			w.periods[i] = p
		default:
			continue
		}
		cnts := s.Counts[j]
		if len(cnts) > len(ring.counts) {
			cnts = cnts[:len(ring.counts)]
		}
		for b, c := range cnts {
			ring.counts[b] += c
		}
		ring.n += s.Ns[j]
		w.started = true
		if p > w.lastPeriod {
			w.lastPeriod = p
		}
	}
}

// resetAtomic is Reset with atomic element stores, for histograms readers
// may be loading concurrently.
func (h *LogHistogram) resetAtomic() {
	atomic.StoreUint64(&h.n, 0)
	for i := range h.counts {
		atomic.StoreUint64(&h.counts[i], 0)
	}
}

// mergeAtomic is Merge with atomic element loads from src; dst is
// reader-private, so its side stays plain.
func (dst *LogHistogram) mergeAtomic(src *LogHistogram) {
	if len(src.counts) > len(dst.counts) {
		grown := make([]uint64, len(src.counts))
		copy(grown, dst.counts)
		dst.counts = grown
	}
	for i := range src.counts {
		dst.counts[i] += atomic.LoadUint64(&src.counts[i])
	}
	dst.n += atomic.LoadUint64(&src.n)
}
