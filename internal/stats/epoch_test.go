package stats

import (
	"math/rand"
	"sync"
	"testing"
)

// TestEpochWindowMatchesWindowQuantiles: with a single writer and no
// concurrency, the epoch window must report exactly the quantiles of a
// WindowQuantiles fed the same observation stream — same ring geometry,
// same rotation, same expiry.
func TestEpochWindowMatchesWindowQuantiles(t *testing.T) {
	ew := NewEpochWindow(64, 8)
	wq := NewWindowQuantiles(64, 8)
	rng := rand.New(rand.NewSource(4))
	var dst LogHistogram
	round := 0
	for step := 0; step < 400; step++ {
		round += rng.Intn(4)
		ew.Begin()
		for k := rng.Intn(5); k >= 0; k-- {
			v := rng.Intn(1 << uint(rng.Intn(16)))
			ew.Observe(round, v)
			wq.Observe(round, v)
		}
		ew.End()
		if step%37 != 0 {
			continue
		}
		ew.ReadInto(&dst, round)
		wq.Advance(round)
		if got, want := dst.N(), wq.N(); got != want {
			t.Fatalf("round %d: epoch window holds %d observations, WindowQuantiles %d", round, got, want)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if got, want := dst.Quantile(q), wq.Quantile(q); got != want {
				t.Fatalf("round %d q=%.2f: epoch %v, WindowQuantiles %v", round, q, got, want)
			}
		}
	}
	// A long quiet gap must expire everything on the read side alone.
	ew.ReadInto(&dst, round+10_000)
	if dst.N() != 0 {
		t.Fatalf("stale epoch window still reports %d observations", dst.N())
	}
}

// TestEpochWindowConcurrentReaders hammers ReadInto from several
// goroutines while the writer records — the seqlock protocol must stay
// race-clean (meaningful under -race) and every consistent read must see a
// plausible window.
func TestEpochWindowConcurrentReaders(t *testing.T) {
	w := NewEpochWindow(128, 8)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst LogHistogram
			for {
				select {
				case <-done:
					return
				default:
					w.ReadInto(&dst, 1<<20) // far future: reads as empty
					if dst.N() != 0 {
						t.Error("future read saw live observations")
						return
					}
					w.ReadInto(&dst, 600)
				}
			}
		}()
	}
	for round := 0; round < 600; round++ {
		w.Begin()
		for k := 0; k < 8; k++ {
			w.Observe(round, round+k)
		}
		w.End()
	}
	close(done)
	wg.Wait()
	var dst LogHistogram
	w.ReadInto(&dst, 599)
	if dst.N() == 0 {
		t.Fatal("final read saw an empty window")
	}
}

// TestEpochWindowRecordNoAlloc pins the writer path to zero allocations:
// rings are preallocated to the sketch's full bucket range, so Begin,
// Observe (any value), rotation, and End never touch the allocator.
func TestEpochWindowRecordNoAlloc(t *testing.T) {
	w := NewEpochWindow(256, 8)
	round := 0
	allocs := testing.AllocsPerRun(200, func() {
		w.Begin()
		w.Observe(round, round*7)
		w.Observe(round, 1<<40)
		w.End()
		round += 3 // crosses shard periods, exercising rotation
	})
	if allocs != 0 {
		t.Fatalf("record path allocated %v per round, want 0", allocs)
	}
	var dst LogHistogram
	w.ReadInto(&dst, round) // grow dst once
	allocs = testing.AllocsPerRun(100, func() {
		w.ReadInto(&dst, round)
	})
	if allocs != 0 {
		t.Fatalf("read path allocated %v per call, want 0", allocs)
	}
}

// TestWindowSnapshotRoundTrip pins the checkpoint path: an export
// imported into a fresh same-geometry window must reproduce the exact
// quantiles, the importer must merge rather than clobber when the
// target already holds newer periods, and geometry or staleness
// mismatches must degrade to drops — never to a rewound window.
func TestWindowSnapshotRoundTrip(t *testing.T) {
	src := NewEpochWindow(64, 8)
	for round := 0; round < 200; round++ {
		src.Begin()
		src.Observe(round, round*3)
		src.Observe(round, round%17)
		src.End()
	}
	var snap WindowSnapshot
	src.ExportInto(&snap)

	var want, got LogHistogram
	src.ReadInto(&want, 199)

	// Exact restore into an empty twin.
	dst := NewEpochWindow(64, 8)
	dst.Import(&snap)
	dst.ReadInto(&got, 199)
	if got.N() != want.N() {
		t.Fatalf("restored window holds %d observations, source %d", got.N(), want.N())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if g, w := got.Quantile(q), want.Quantile(q); g != w {
			t.Fatalf("q=%.2f: restored %v, source %v", q, g, w)
		}
	}

	// Rotation must keep working after an import: advancing far enough
	// expires the imported periods on the read side.
	dst.Begin()
	dst.Observe(10_000, 1)
	dst.End()
	dst.ReadInto(&got, 10_000)
	if got.N() != 1 {
		t.Fatalf("post-import rotation kept %d observations live, want 1", got.N())
	}

	// A newer resident period must not be clobbered by an older snapshot
	// slot: import into a window already past the snapshot.
	ahead := NewEpochWindow(64, 8)
	for round := 5_000; round < 5_100; round++ {
		ahead.Begin()
		ahead.Observe(round, 7)
		ahead.End()
	}
	var before LogHistogram
	ahead.ReadInto(&before, 5_099)
	ahead.Import(&snap) // every snapshot period predates the residents
	ahead.ReadInto(&got, 5_099)
	if got.N() != before.N() {
		t.Fatalf("stale import changed a newer window: %d observations, want %d", got.N(), before.N())
	}

	// Geometry mismatch: per-shard width differs, the import is a no-op.
	other := NewEpochWindow(64, 4)
	other.Import(&snap)
	other.ReadInto(&got, 199)
	if got.N() != 0 {
		t.Fatalf("mismatched-geometry import leaked %d observations", got.N())
	}

	// Clone must be deep: scribbling on the original leaves it intact.
	c := snap.Clone()
	for i := range snap.Counts {
		for b := range snap.Counts[i] {
			snap.Counts[i][b] = 999
		}
	}
	fresh := NewEpochWindow(64, 8)
	fresh.Import(&c)
	fresh.ReadInto(&got, 199)
	if got.N() != want.N() {
		t.Fatalf("clone aliased the source buffers: %d observations, want %d", got.N(), want.N())
	}

	// ExportInto must reuse a warmed snapshot's buffers.
	src.ExportInto(&c) // warm to this source's geometry
	if allocs := testing.AllocsPerRun(50, func() { src.ExportInto(&c) }); allocs != 0 {
		t.Fatalf("warmed export allocated %v per call, want 0", allocs)
	}
}
