// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, streaming accumulation, and
// normal-approximation confidence intervals over repeated trials.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation on
// a copy of xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if q <= 0 {
		return ys[0]
	}
	if q >= 1 {
		return ys[len(ys)-1]
	}
	pos := q * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return ys[lo]
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(n))
}

// Welford accumulates mean and variance in one pass without storing
// samples. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	max  float64
	min  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.max, w.min = x, x
	} else {
		if x > w.max {
			w.max = x
		}
		if x < w.min {
			w.min = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Max returns the running maximum (0 before any Add).
func (w *Welford) Max() float64 { return w.max }

// Min returns the running minimum (0 before any Add).
func (w *Welford) Min() float64 { return w.min }

// Var returns the running sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }
