package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestLogHistogramExactSmall(t *testing.T) {
	var h LogHistogram
	for v := 0; v < 16; v++ {
		h.Add(v)
	}
	if h.N() != 16 {
		t.Fatalf("n = %d", h.N())
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 15 {
		t.Fatalf("q1 = %v", q)
	}
	if q := h.Quantile(0.5); q < 7 || q > 8 {
		t.Fatalf("median = %v", q)
	}
}

// TestLogHistogramRelativeError: every reported quantile must be within
// the sketch's 1/16 relative-error bound of the true sample quantile.
func TestLogHistogramRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h LogHistogram
	xs := make([]int, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := rng.Intn(1 << uint(1+rng.Intn(20)))
		xs = append(xs, v)
		h.Add(v)
	}
	sort.Ints(xs)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		truth := float64(xs[int(q*float64(len(xs)-1))])
		got := h.Quantile(q)
		tol := truth/16 + 1
		if got < truth-tol || got > truth+tol {
			t.Fatalf("q=%.3f: sketch %v, truth %v (tol %v)", q, got, truth, tol)
		}
	}
}

func TestLogHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, all LogHistogram
	for i := 0; i < 2000; i++ {
		v := rng.Intn(100000)
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged n %d != %d", a.N(), all.N())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q=%.1f: merged %v != combined %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestLogHistogramNegativeAndReset(t *testing.T) {
	var h LogHistogram
	h.Add(-5)
	if h.Quantile(0.5) != 0 {
		t.Fatal("negative value not clamped to 0")
	}
	h.Reset()
	if h.N() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset left observations behind")
	}
}

// TestWindowQuantilesExpiry: observations older than the window must stop
// influencing quantiles once the round advances past them.
func TestWindowQuantilesExpiry(t *testing.T) {
	w := NewWindowQuantiles(64, 8)
	for r := 0; r < 10; r++ {
		w.Observe(r, 1000)
	}
	if q := w.Quantile(0.5); q < 900 {
		t.Fatalf("fresh observations missing: median %v", q)
	}
	for r := 500; r < 510; r++ {
		w.Observe(r, 1)
	}
	if q := w.Quantile(0.99); q > 16 {
		t.Fatalf("expired observations still visible: p99 %v", q)
	}
	if w.N() != 10 {
		t.Fatalf("window n = %d, want 10", w.N())
	}
}

// TestWindowQuantilesRotation: shards covering rounds inside the window
// must all contribute.
func TestWindowQuantilesRotation(t *testing.T) {
	w := NewWindowQuantiles(80, 8) // 10 rounds per shard
	for r := 0; r < 40; r++ {
		w.Observe(r, r)
	}
	if n := w.N(); n != 40 {
		t.Fatalf("n = %d, want 40 (all shards live)", n)
	}
	if q := w.Quantile(1); q < 32 {
		t.Fatalf("max quantile %v lost the newest shard", q)
	}
}

func TestWindowQuantilesClamping(t *testing.T) {
	w := NewWindowQuantiles(0, 0)
	w.Observe(0, 5)
	if w.N() != 1 {
		t.Fatal("degenerate window dropped its observation")
	}
}

// TestWindowQuantilesAdvanceExpiresStale: querying after a long quiet gap
// must not report observations that slid out of the window, even though no
// new Observe ran.
func TestWindowQuantilesAdvanceExpiresStale(t *testing.T) {
	w := NewWindowQuantiles(64, 8)
	for r := 0; r < 10; r++ {
		w.Observe(r, 1000)
	}
	w.Advance(10000)
	if n := w.N(); n != 0 {
		t.Fatalf("stale window still holds %d observations", n)
	}
	if q := w.Quantile(0.99); q != 0 {
		t.Fatalf("stale quantile %v visible after advance", q)
	}
}

// TestWindowQuantilesNoAllocSteadyState pins the windowed-metrics
// allocation audit: after Grow preallocates the rings and scratch,
// Observe, Advance (shard expiry reuses the backing arrays via Reset),
// and Quantile run allocation-free — window rotation must never
// reallocate what it can recycle.
func TestWindowQuantilesNoAllocSteadyState(t *testing.T) {
	w := NewWindowQuantiles(256, 8)
	w.Grow(1 << 40)
	round := 0
	allocs := testing.AllocsPerRun(200, func() {
		w.Observe(round, round*13)
		w.Observe(round, 1<<39)
		w.Advance(round + 1)
		if w.Quantile(0.9) < 0 {
			t.Fatal("negative quantile")
		}
		round += 5 // crosses shard periods, exercising rotation + expiry
	})
	if allocs != 0 {
		t.Fatalf("windowed metrics allocated %v per round, want 0", allocs)
	}
}

// TestLogHistogramGrow: growth is monotone, preserves counts, and makes
// subsequent Adds up to the grown bound allocation-free.
func TestLogHistogramGrow(t *testing.T) {
	var h LogHistogram
	h.Add(3)
	h.Grow(1 << 50)
	if got := h.Quantile(1); got != 3 {
		t.Fatalf("Grow lost observations: q1 = %v", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		h.Add(1 << 49)
		h.Add(7)
	})
	if allocs != 0 {
		t.Fatalf("Add within the grown bound allocated %v, want 0", allocs)
	}
	h.Grow(-1) // no-op clamp
	if h.N() != 201*2+1 && h.N() == 0 {
		t.Fatal("Grow(-1) corrupted the sketch")
	}
}

// TestWindowQuantilesMergeInto: merging several per-shard windows over the
// same rounds into one histogram must yield exactly the quantiles of a
// single window that observed every value.
func TestWindowQuantilesMergeInto(t *testing.T) {
	const parts = 4
	shards := make([]*WindowQuantiles, parts)
	for i := range shards {
		shards[i] = NewWindowQuantiles(64, 8)
	}
	whole := NewWindowQuantiles(64, 8)
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 200; round++ {
		for k := 0; k < 6; k++ {
			v := rng.Intn(5000)
			shards[rng.Intn(parts)].Observe(round, v)
			whole.Observe(round, v)
		}
	}
	var merged LogHistogram
	for _, w := range shards {
		w.Advance(199)
		w.MergeInto(&merged)
	}
	if got, want := merged.N(), whole.N(); got != want {
		t.Fatalf("merged N %d, want %d", got, want)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("q=%.2f: merged %v, single-window %v", q, got, want)
		}
	}
}
