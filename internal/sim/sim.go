// Package sim is the online flow-scheduling simulator described in
// Section 5.2.1 of the paper: it maintains the bipartite graph G_t of
// released-but-unscheduled flows, asks a pluggable Policy for a feasible
// set of flows each round, and advances time until every flow has been
// scheduled. It replaces the in-house C++ simulator of the paper.
//
//flowsched:deterministic
package sim

import (
	"fmt"
	"sort"

	"flowsched/internal/switchnet"
)

// Pending describes one released, not-yet-scheduled flow offered to a
// Policy.
type Pending struct {
	// Flow is the flow's index in the instance.
	Flow int
	// In and Out are the flow's ports; Demand its size; Release its
	// release round.
	In, Out, Demand, Release int
}

// State is the per-round view a Policy selects from.
type State struct {
	// Round is the current round t.
	Round int
	// Switch describes port counts and capacities.
	Switch switchnet.Switch
	// Pending lists the flows available for scheduling, in release order
	// (ties by flow index). The "open queue" of the paper: any subset
	// obeying port capacities may be selected.
	Pending []Pending
	// QueueIn[i] and QueueOut[j] are the numbers of pending flows
	// touching input port i / output port j (the queue sizes used by the
	// MaxWeight heuristic).
	QueueIn, QueueOut []int
}

// Policy selects, each round, a capacity-feasible subset of pending flows.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns indices into s.Pending to schedule in round s.Round.
	// The engine validates feasibility and fails loudly on violations.
	Pick(s *State) []int
}

// Result summarizes one simulation run.
type Result struct {
	// Schedule holds the per-flow rounds chosen by the policy.
	Schedule *switchnet.Schedule
	// TotalResponse, AvgResponse and MaxResponse are the paper's metrics.
	TotalResponse int
	AvgResponse   float64
	MaxResponse   int
	// Rounds is the number of rounds simulated until the system drained.
	Rounds int
}

// Run simulates policy pol on inst until all flows are scheduled.
func Run(inst *switchnet.Instance, pol Policy) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N()
	sched := switchnet.NewSchedule(n)
	if n == 0 {
		return &Result{Schedule: sched}, nil
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := inst.Flows[order[a]].Release, inst.Flows[order[b]].Release
		if ra != rb {
			return ra < rb
		}
		return order[a] < order[b]
	})

	st := &State{
		Switch:   inst.Switch,
		QueueIn:  make([]int, inst.Switch.NumIn()),
		QueueOut: make([]int, inst.Switch.NumOut()),
	}
	caps := inst.Switch.Caps()
	// Per-round scratch, allocated once and reset incrementally: loadRow is
	// cleared via the touched-port list and seen via the picked indices, so
	// a round's bookkeeping costs O(picks), not O(ports + pending).
	loadRow := make([]int, inst.Switch.NumPorts())
	touched := make([]int, 0, inst.Switch.NumPorts())
	seen := make([]bool, 0, n)

	next := 0
	scheduled := 0
	guard := 4*inst.CongestionHorizon() + 64
	t := inst.Flows[order[0]].Release
	for scheduled < n {
		if t > guard {
			return nil, fmt.Errorf("sim: policy %q did not drain by round %d", pol.Name(), guard)
		}
		for next < n && inst.Flows[order[next]].Release <= t {
			f := order[next]
			e := inst.Flows[f]
			st.Pending = append(st.Pending, Pending{Flow: f, In: e.In, Out: e.Out, Demand: e.Demand, Release: e.Release})
			st.QueueIn[e.In]++
			st.QueueOut[e.Out]++
			next++
		}
		if len(st.Pending) == 0 {
			// Jump to the next arrival.
			t = inst.Flows[order[next]].Release
			continue
		}
		st.Round = t
		picks := pol.Pick(st)

		// Validate and apply the selection.
		if len(seen) < len(st.Pending) {
			seen = append(seen, make([]bool, len(st.Pending)-len(seen))...)
		}
		for _, pi := range picks {
			if pi < 0 || pi >= len(st.Pending) {
				return nil, fmt.Errorf("sim: policy %q picked out-of-range index %d", pol.Name(), pi)
			}
			if seen[pi] {
				return nil, fmt.Errorf("sim: policy %q picked index %d twice", pol.Name(), pi)
			}
			seen[pi] = true
			p := st.Pending[pi]
			pIn := inst.Switch.PortIndex(switchnet.In, p.In)
			pOut := inst.Switch.PortIndex(switchnet.Out, p.Out)
			if loadRow[pIn] == 0 {
				touched = append(touched, pIn)
			}
			if loadRow[pOut] == 0 {
				touched = append(touched, pOut)
			}
			loadRow[pIn] += p.Demand
			loadRow[pOut] += p.Demand
			if loadRow[pIn] > caps[pIn] || loadRow[pOut] > caps[pOut] {
				return nil, fmt.Errorf("sim: policy %q overloaded a port in round %d", pol.Name(), t)
			}
			sched.Round[p.Flow] = t
			scheduled++
		}
		// Compact the pending list and reset the round's scratch.
		if len(picks) > 0 {
			kept := st.Pending[:0]
			for pi, p := range st.Pending {
				if seen[pi] {
					st.QueueIn[p.In]--
					st.QueueOut[p.Out]--
					seen[pi] = false
					continue
				}
				kept = append(kept, p)
			}
			st.Pending = kept
		}
		for _, p := range touched {
			loadRow[p] = 0
		}
		touched = touched[:0]
		t++
	}
	res := &Result{
		Schedule:      sched,
		TotalResponse: sched.TotalResponse(inst),
		AvgResponse:   sched.AvgResponse(inst),
		MaxResponse:   sched.MaxResponse(inst),
		Rounds:        t,
	}
	return res, nil
}
