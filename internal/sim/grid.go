package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"flowsched/internal/switchnet"
)

// Trial is one cell of an experiment grid: a generated instance must be
// simulated under a policy (and optionally compared against bounds).
type Trial struct {
	// Label tags the cell (e.g. "M=150,T=20").
	Label string
	// Seed makes the trial reproducible.
	Seed int64
	// Generate builds the instance from the trial's RNG.
	Generate func(rng *rand.Rand) *switchnet.Instance
	// Policy schedules it.
	Policy Policy
}

// TrialResult couples a Trial with its simulation outcome.
type TrialResult struct {
	Trial Trial
	Res   *Result
	Err   error
	// Instance is retained so callers can compute lower bounds on the
	// exact same draw.
	Instance *switchnet.Instance
}

// RunGrid executes all trials concurrently on a bounded worker pool and
// returns results in input order. workers <= 0 selects GOMAXPROCS.
func RunGrid(trials []Trial, workers int) []TrialResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]TrialResult, len(trials))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range trials {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tr := trials[i]
			rng := rand.New(rand.NewSource(tr.Seed))
			inst := tr.Generate(rng)
			res, err := Run(inst, tr.Policy)
			results[i] = TrialResult{Trial: tr, Res: res, Err: err, Instance: inst}
		}(i)
	}
	wg.Wait()
	return results
}

// FirstError returns the first trial error, if any.
func FirstError(results []TrialResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("trial %q (seed %d): %w", r.Trial.Label, r.Trial.Seed, r.Err)
		}
	}
	return nil
}
