package sim

import (
	"math/rand"
	"strings"
	"testing"

	"flowsched/internal/switchnet"
)

// takeAll is a test policy that greedily takes pending flows first-fit in
// pending order.
type takeAll struct{}

func (takeAll) Name() string { return "takeAll" }

func (takeAll) Pick(s *State) []int {
	loadIn := make([]int, s.Switch.NumIn())
	loadOut := make([]int, s.Switch.NumOut())
	var picks []int
	for i, p := range s.Pending {
		if loadIn[p.In]+p.Demand <= s.Switch.InCaps[p.In] && loadOut[p.Out]+p.Demand <= s.Switch.OutCaps[p.Out] {
			loadIn[p.In] += p.Demand
			loadOut[p.Out] += p.Demand
			picks = append(picks, i)
		}
	}
	return picks
}

// lazy schedules nothing until the queue exceeds a threshold; used to test
// queue bookkeeping.
type overloader struct{}

func (overloader) Name() string { return "overloader" }

func (overloader) Pick(s *State) []int {
	// Pick everything, ignoring capacity: must be rejected by the engine.
	picks := make([]int, len(s.Pending))
	for i := range picks {
		picks[i] = i
	}
	return picks
}

type badIndex struct{}

func (badIndex) Name() string { return "badIndex" }

func (badIndex) Pick(s *State) []int { return []int{len(s.Pending)} }

type dup struct{}

func (dup) Name() string { return "dup" }

func (dup) Pick(s *State) []int {
	if len(s.Pending) > 0 {
		return []int{0, 0}
	}
	return nil
}

func smallInstance() *switchnet.Instance {
	return &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 1, Out: 0, Demand: 1, Release: 0},
			{In: 0, Out: 1, Demand: 1, Release: 2},
		},
	}
}

func TestRunDrainsAllFlows(t *testing.T) {
	inst := smallInstance()
	res, err := Run(inst, takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Complete() {
		t.Fatal("schedule incomplete")
	}
	if err := res.Schedule.Validate(inst, inst.Switch.Caps()); err != nil {
		t.Fatal(err)
	}
	// Flows 0,1 conflict on output 0: one runs at 0, other at 1.
	if res.TotalResponse != 1+2+1 {
		t.Fatalf("total = %d, want 4", res.TotalResponse)
	}
	if res.MaxResponse != 2 {
		t.Fatalf("max = %d", res.MaxResponse)
	}
}

func TestRunEmptyInstance(t *testing.T) {
	res, err := Run(&switchnet.Instance{Switch: switchnet.UnitSwitch(1)}, takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || !res.Schedule.Complete() {
		t.Fatal("empty instance mishandled")
	}
}

func TestRunRejectsOverload(t *testing.T) {
	inst := smallInstance()
	if _, err := Run(inst, overloader{}); err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("want overload error, got %v", err)
	}
}

func TestRunRejectsBadIndexAndDup(t *testing.T) {
	inst := smallInstance()
	if _, err := Run(inst, badIndex{}); err == nil || !strings.Contains(err.Error(), "out-of-range") {
		t.Fatalf("want index error, got %v", err)
	}
	if _, err := Run(inst, dup{}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("want dup error, got %v", err)
	}
}

// never schedules, so the engine's guard must fire.
type never struct{}

func (never) Name() string { return "never" }

func (never) Pick(*State) []int { return nil }

func TestRunGuardsAgainstStall(t *testing.T) {
	inst := smallInstance()
	if _, err := Run(inst, never{}); err == nil || !strings.Contains(err.Error(), "drain") {
		t.Fatalf("want stall error, got %v", err)
	}
}

func TestQueueBookkeeping(t *testing.T) {
	// Policy that asserts queue counts match pending.
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(3),
		Flows: []switchnet.Flow{
			{In: 0, Out: 1, Demand: 1, Release: 0},
			{In: 0, Out: 2, Demand: 1, Release: 0},
			{In: 1, Out: 1, Demand: 1, Release: 1},
		},
	}
	check := policyFunc(func(s *State) []int {
		wantIn := make([]int, 3)
		wantOut := make([]int, 3)
		for _, p := range s.Pending {
			wantIn[p.In]++
			wantOut[p.Out]++
		}
		for i := range wantIn {
			if s.QueueIn[i] != wantIn[i] {
				t.Fatalf("round %d: QueueIn[%d] = %d, want %d", s.Round, i, s.QueueIn[i], wantIn[i])
			}
			if s.QueueOut[i] != wantOut[i] {
				t.Fatalf("round %d: QueueOut[%d] = %d, want %d", s.Round, i, s.QueueOut[i], wantOut[i])
			}
		}
		if len(s.Pending) > 0 {
			return []int{0}
		}
		return nil
	})
	if _, err := Run(inst, check); err != nil {
		t.Fatal(err)
	}
}

// policyFunc adapts a function to the Policy interface for tests.
type policyFunc func(*State) []int

func (policyFunc) Name() string          { return "func" }
func (f policyFunc) Pick(s *State) []int { return f(s) }

// TestRunDeterministicPerSeed: the simulator itself is a pure function of
// (instance, policy); grid fan-out determinism is covered by the engine
// package, which replaced sim's bespoke RunGrid pool.
func TestRunDeterministicPerSeed(t *testing.T) {
	gen := func(seed int64) *switchnet.Instance {
		rng := rand.New(rand.NewSource(seed))
		inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(3)}
		for i := 0; i < 10; i++ {
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In: rng.Intn(3), Out: rng.Intn(3), Demand: 1, Release: rng.Intn(4),
			})
		}
		return inst
	}
	a, err := Run(gen(5), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(gen(5), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalResponse != b.TotalResponse || a.Rounds != b.Rounds {
		t.Fatal("same seed gave different results")
	}
}
