package chkpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"flowsched/internal/switchnet"
)

func sample() *Checkpoint {
	return &Checkpoint{
		Round:          42,
		Pending:        2,
		SourceConsumed: 13,
		Policy:         "OldestFirst",
		Shards:         2,
		MaxPending:     64,
		Admit:          "lossless",
		InCaps:         []int{1, 1, 1, 1},
		OutCaps:        []int{1, 1, 1, 1},
		Counters: Counters{
			Admitted: 12, Completed: 10, TotalResponse: 55,
			Rounds: 40, MaxResponse: 9, PeakPending: 7, Backpressured: 3,
		},
		Flows: []switchnet.Flow{
			{In: 0, Out: 1, Demand: 1, Release: 40},
			{In: 1, Out: 2, Demand: 1, Release: 41},
			{In: 2, Out: 3, Demand: 1, Release: 42}, // lookahead
		},
	}
}

// TestRoundTrip pins Save/Load fidelity through the file envelope.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck")
	want := sample()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != want.Round || got.Pending != want.Pending || got.SourceConsumed != want.SourceConsumed ||
		got.Policy != want.Policy || got.MaxPending != want.MaxPending || got.Admit != want.Admit ||
		got.Counters != want.Counters || len(got.Flows) != len(want.Flows) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
	for i := range want.Flows {
		if got.Flows[i] != want.Flows[i] {
			t.Fatalf("flow %d diverged: got %+v want %+v", i, got.Flows[i], want.Flows[i])
		}
	}
	// Saving again over an existing file replaces it atomically and leaves
	// no temporary litter.
	want.Round = 43
	want.Pending = 3
	want.Counters.Admitted = 13
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 43 {
		t.Fatalf("second save not visible: %+v", got)
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temporary files left behind: %v", ents)
	}
}

// TestCorruptionMatrix is the satellite corruption suite: truncation,
// a flipped CRC byte, a wrong version, and an empty file each produce
// the matching typed error.
func TestCorruptionMatrix(t *testing.T) {
	good, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(good); err != nil {
		t.Fatal(err)
	}
	load := func(t *testing.T, data []byte) error {
		path := filepath.Join(t.TempDir(), "ck")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(path)
		return err
	}
	t.Run("empty file", func(t *testing.T) {
		if err := load(t, nil); !errors.Is(err, ErrEmpty) {
			t.Fatalf("got %v, want ErrEmpty", err)
		}
	})
	t.Run("truncated below envelope", func(t *testing.T) {
		if err := load(t, good[:headerLen-3]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if err := load(t, good[:len(good)-8]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("flipped CRC byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 0xFF
		if err := load(t, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[headerLen+5] ^= 0x20
		if err := load(t, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(magic)] = 99
		if err := load(t, bad); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if err := load(t, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 0, 1, 2)
		if err := load(t, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("insane payload length", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		for i := 0; i < 8; i++ {
			bad[len(magic)+4+i] = 0xFF
		}
		if err := load(t, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("missing file", func(t *testing.T) {
		if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
			t.Fatal("loaded a missing file")
		}
	})
}

// TestValidateRejectsInconsistentPayloads covers structurally broken but
// envelope-clean checkpoints: these must also refuse to restore.
func TestValidateRejectsInconsistentPayloads(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Checkpoint)
	}{
		{"negative round", func(c *Checkpoint) { c.Round = -1 }},
		{"pending beyond flows", func(c *Checkpoint) { c.Pending = len(c.Flows) + 1 }},
		{"two lookaheads", func(c *Checkpoint) { c.Pending = len(c.Flows) - 2 }},
		{"unknown admit mode", func(c *Checkpoint) { c.Admit = "yolo" }},
		{"unbalanced counters", func(c *Checkpoint) { c.Counters.Completed++ }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := sample()
			tc.mut(c)
			data, err := Encode(c)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Decode(data); err == nil {
				t.Fatalf("decoded an inconsistent checkpoint: %+v", c)
			}
		})
	}
}

// TestCompatible pins the switch-shape gate.
func TestCompatible(t *testing.T) {
	c := sample()
	if err := c.Compatible(switchnet.UnitSwitch(4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Compatible(switchnet.UnitSwitch(5)); err == nil {
		t.Fatal("accepted a different port count")
	}
	sw := switchnet.UnitSwitch(4)
	sw.OutCaps[2] = 3
	if err := c.Compatible(sw); err == nil {
		t.Fatal("accepted a different capacity")
	}
}
