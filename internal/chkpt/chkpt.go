// Package chkpt serializes stream runtime checkpoints to durable files
// and loads them back for restore.
//
// A checkpoint file is a small binary envelope around a JSON payload:
//
//	magic "FLOWCKPT" (8 bytes)
//	version         (uint32, little-endian)
//	payload length  (uint64, little-endian)
//	payload         (JSON-encoded Checkpoint)
//	CRC-32C         (uint32, little-endian, over everything above)
//
// Files are written atomically — payload to a temporary file in the
// destination directory, fsync, rename — so a crash mid-write leaves
// either the previous checkpoint or none, never a torn one. Load
// verifies the envelope end to end and refuses damaged files with typed
// errors (ErrEmpty, ErrTruncated, ErrVersion, ErrCorrupt) instead of
// restoring garbage: a checkpoint that cannot be trusted byte for byte
// must fail loudly, because a silently wrong restore corrupts response
// accounting forever after.
//
// The payload carries everything a restart needs: the pending set with
// original releases (plus the runtime's un-admitted lookahead flow, if
// one existed), the round, the cumulative counters, the policy and
// admission configuration, the switch shape for compatibility checking,
// and — since version 2 — the policy's per-shard scratch state (rotation
// pointers, so RoundRobin and WeightedISLIP restores are schedule-exact,
// not just accounting-exact) and the per-shard sliding-window quantile
// sketches (so /metrics response quantiles are continuous across a
// restore instead of restarting empty). Version-1 files still load: the
// new sections simply read as absent, restoring with fresh pointers and
// empty windows exactly as version 1 always did.
package chkpt

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"flowsched/internal/stats"
	"flowsched/internal/stream"
	"flowsched/internal/switchnet"
)

// Typed load failures: callers distinguish a missing/empty file from a
// damaged one (errors.Is).
var (
	// ErrEmpty reports a zero-length checkpoint file.
	ErrEmpty = errors.New("chkpt: empty checkpoint file")
	// ErrTruncated reports a file shorter than its envelope claims.
	ErrTruncated = errors.New("chkpt: truncated checkpoint file")
	// ErrVersion reports an envelope version this build does not read.
	ErrVersion = errors.New("chkpt: unsupported checkpoint version")
	// ErrCorrupt reports a bad magic or a CRC mismatch.
	ErrCorrupt = errors.New("chkpt: corrupt checkpoint file")
)

const (
	magic = "FLOWCKPT"
	// Version is the envelope version this build writes. Version 2 added
	// the policy-scratch and window-sketch sections; version-1 files are
	// still read (see minVersion).
	Version = 2
	// minVersion is the oldest envelope version this build reads.
	minVersion = 1
	// headerLen is magic + version + payload length.
	headerLen = len(magic) + 4 + 8
	// trailerLen is the CRC.
	trailerLen = 4
	// maxPayload bounds how much Load will allocate for a claimed
	// payload length (a corrupt length field must not OOM the restore
	// path); 1 GiB is orders of magnitude above any real pending set.
	maxPayload = 1 << 30
)

// castagnoli is the CRC-32C table (matches common storage-stack CRCs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Counters are the cumulative runtime counters at the checkpoint; they
// mirror stream.ResumeCounters field for field.
type Counters struct {
	Admitted      int64 `json:"admitted"`
	Completed     int64 `json:"completed"`
	Dropped       int64 `json:"dropped"`
	Expired       int64 `json:"expired"`
	Backpressured int64 `json:"backpressured"`
	TotalResponse int64 `json:"total_response"`
	SlowResponses int64 `json:"slow_responses"`
	Rounds        int64 `json:"rounds"`
	MaxResponse   int   `json:"max_response"`
	PeakPending   int   `json:"peak_pending"`
}

// Checkpoint is the durable image of a quiescent runtime.
type Checkpoint struct {
	// Round is the round the snapshot is consistent at; a restored
	// runtime resumes here.
	Round int `json:"round"`
	// Pending is how many leading Flows entries are resident pending
	// flows; any extra trailing entry is the coordinator's un-admitted
	// lookahead (consumed from the source but not yet counted admitted).
	Pending int `json:"pending"`
	// SourceConsumed is how many flows the runtime had consumed from its
	// source — what a replayed deterministic source must skip on resume.
	SourceConsumed int64 `json:"source_consumed"`
	// Policy, Shards, MaxPending, Admit, Deadline record the scheduling
	// configuration at capture, so a restore can re-create it (or
	// knowingly deviate).
	Policy     string `json:"policy"`
	Shards     int    `json:"shards"`
	MaxPending int    `json:"max_pending"`
	Admit      string `json:"admit"`
	Deadline   int    `json:"deadline,omitempty"`
	// InCaps/OutCaps pin the switch shape; Compatible rejects a restore
	// onto a different switch.
	InCaps  []int `json:"in_caps"`
	OutCaps []int `json:"out_caps"`
	// Counters are the cumulative baselines.
	Counters Counters `json:"counters"`
	// Flows is the pending set in admission order (original releases and
	// remaining demands), plus at most one trailing lookahead flow.
	Flows []switchnet.Flow `json:"flows,omitempty"`
	// Scratch is the policy's per-shard scratch state (one slice per
	// shard in shard order; see stream.CheckpointState.Scratch), absent
	// for memoryless policies and in version-1 files. A restore replays
	// it only when policy and shard count match.
	Scratch [][]int64 `json:"policy_scratch,omitempty"`
	// Windows holds the per-shard sliding-window quantile sketches,
	// absent in version-1 files (those restore with empty windows).
	Windows []stats.WindowSnapshot `json:"windows,omitempty"`
}

// FromState converts a runtime capture into a durable Checkpoint. cfg
// must be the configuration the capturing runtime was built with (its
// Switch, Policy, and admission settings are recorded for restore).
func FromState(st *stream.CheckpointState, cfg stream.Config) *Checkpoint {
	flows := make([]switchnet.Flow, len(st.Flows))
	copy(flows, st.Flows)
	// Deep-copy the scratch and window sections: periodic captures hand
	// out runtime-owned buffers the next capture overwrites.
	var scratch [][]int64
	if st.Scratch != nil {
		scratch = make([][]int64, len(st.Scratch))
		for i, s := range st.Scratch {
			scratch[i] = append([]int64(nil), s...)
		}
	}
	var windows []stats.WindowSnapshot
	if st.Windows != nil {
		windows = make([]stats.WindowSnapshot, len(st.Windows))
		for i := range st.Windows {
			windows[i] = st.Windows[i].Clone()
		}
	}
	return &Checkpoint{
		Round:          st.Round,
		Pending:        st.Pending,
		SourceConsumed: st.SourceFlows(),
		Policy:         cfg.Policy.Name(),
		Shards:         st.Summary.Shards,
		MaxPending:     cfg.MaxPending,
		Admit:          cfg.Admit.String(),
		Deadline:       cfg.Deadline,
		InCaps:         append([]int(nil), cfg.Switch.InCaps...),
		OutCaps:        append([]int(nil), cfg.Switch.OutCaps...),
		Counters: Counters{
			Admitted:      st.Summary.Admitted,
			Completed:     st.Summary.Completed,
			Dropped:       st.Summary.Dropped,
			Expired:       st.Summary.Expired,
			Backpressured: st.Summary.Backpressured,
			TotalResponse: st.Summary.TotalResponse,
			SlowResponses: st.Summary.SlowResponses,
			Rounds:        st.Summary.Rounds,
			MaxResponse:   st.Summary.MaxResponse,
			PeakPending:   st.Summary.PeakPending,
		},
		Flows:   flows,
		Scratch: scratch,
		Windows: windows,
	}
}

// Resume converts the checkpoint into the stream.Config.Resume a
// restored runtime needs. The flows travel separately, through
// workload.NewCheckpointSource(c.Flows, tail).
func (c *Checkpoint) Resume() *stream.Resume {
	return &stream.Resume{
		Round:         c.Round,
		Pending:       c.Pending,
		ScratchPolicy: c.Policy,
		Scratch:       c.Scratch,
		Windows:       c.Windows,
		Counters: stream.ResumeCounters{
			Admitted:      c.Counters.Admitted,
			Completed:     c.Counters.Completed,
			Dropped:       c.Counters.Dropped,
			Expired:       c.Counters.Expired,
			Backpressured: c.Counters.Backpressured,
			TotalResponse: c.Counters.TotalResponse,
			SlowResponses: c.Counters.SlowResponses,
			Rounds:        c.Counters.Rounds,
			MaxResponse:   c.Counters.MaxResponse,
			PeakPending:   c.Counters.PeakPending,
		},
	}
}

// Compatible reports whether the checkpoint can be restored onto sw: the
// port structure must match exactly, or the pending flows and their
// demands may not be admissible.
func (c *Checkpoint) Compatible(sw switchnet.Switch) error {
	if len(c.InCaps) != len(sw.InCaps) || len(c.OutCaps) != len(sw.OutCaps) {
		return fmt.Errorf("chkpt: checkpoint switch is %dx%d, runtime switch is %dx%d",
			len(c.InCaps), len(c.OutCaps), len(sw.InCaps), len(sw.OutCaps))
	}
	for i, cap := range c.InCaps {
		if sw.InCaps[i] != cap {
			return fmt.Errorf("chkpt: input port %d capacity differs: checkpoint %d, runtime %d", i, cap, sw.InCaps[i])
		}
	}
	for j, cap := range c.OutCaps {
		if sw.OutCaps[j] != cap {
			return fmt.Errorf("chkpt: output port %d capacity differs: checkpoint %d, runtime %d", j, cap, sw.OutCaps[j])
		}
	}
	return nil
}

// Validate performs the structural sanity checks a loaded checkpoint
// must pass before anything is restored from it.
func (c *Checkpoint) Validate() error {
	if c.Round < 0 {
		return fmt.Errorf("chkpt: negative round %d", c.Round)
	}
	if c.Pending < 0 || c.Pending > len(c.Flows) {
		return fmt.Errorf("chkpt: pending count %d outside [0, %d]", c.Pending, len(c.Flows))
	}
	if len(c.Flows)-c.Pending > 1 {
		return fmt.Errorf("chkpt: %d trailing non-pending flows (at most one lookahead allowed)", len(c.Flows)-c.Pending)
	}
	if _, err := stream.ParseAdmitMode(c.Admit); err != nil {
		return err
	}
	cc := c.Counters
	if cc.Admitted != cc.Completed+int64(c.Pending)+cc.Dropped+cc.Expired {
		return fmt.Errorf("chkpt: counters do not balance: admitted %d != completed %d + pending %d + dropped %d + expired %d",
			cc.Admitted, cc.Completed, c.Pending, cc.Dropped, cc.Expired)
	}
	if len(c.Scratch) > 0 && len(c.Scratch) != c.Shards {
		return fmt.Errorf("chkpt: policy scratch has %d shard entries, checkpoint has %d shards", len(c.Scratch), c.Shards)
	}
	return nil
}

// Encode serializes the checkpoint into its file image.
func Encode(c *Checkpoint) ([]byte, error) {
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("chkpt: encode: %w", err)
	}
	buf := make([]byte, 0, headerLen+len(payload)+trailerLen)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// Decode parses and verifies a checkpoint file image, failing with one
// of the typed errors (ErrEmpty, ErrTruncated, ErrVersion, ErrCorrupt)
// when the envelope cannot be trusted.
func Decode(data []byte) (*Checkpoint, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte envelope", ErrTruncated, len(data), headerLen+trailerLen)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v < minVersion || v > Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d through %d", ErrVersion, v, minVersion, Version)
	}
	plen := binary.LittleEndian.Uint64(data[len(magic)+4:])
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: claimed payload length %d exceeds the %d limit", ErrCorrupt, plen, maxPayload)
	}
	want := headerLen + int(plen) + trailerLen
	if len(data) < want {
		return nil, fmt.Errorf("%w: %d bytes, envelope claims %d", ErrTruncated, len(data), want)
	}
	if len(data) > want {
		return nil, fmt.Errorf("%w: %d trailing bytes after the envelope", ErrCorrupt, len(data)-want)
	}
	body := data[:headerLen+int(plen)]
	got := binary.LittleEndian.Uint32(data[headerLen+int(plen):])
	if sum := crc32.Checksum(body, castagnoli); sum != got {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorrupt, got, sum)
	}
	var c Checkpoint
	if err := json.Unmarshal(body[headerLen:], &c); err != nil {
		return nil, fmt.Errorf("%w: payload does not parse: %v", ErrCorrupt, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Save writes the checkpoint to path atomically: the image goes to a
// temporary file in the same directory, is fsynced, and replaces path by
// rename, so a crash leaves either the old checkpoint or the new one —
// never a torn file.
func Save(path string, c *Checkpoint) error {
	data, err := Encode(c)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("chkpt: save: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("chkpt: save: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("chkpt: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("chkpt: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("chkpt: save: %w", err)
	}
	// Durability of the rename itself: fsync the directory, best-effort
	// (some filesystems refuse directory fsync; the data file is synced
	// regardless).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and verifies the checkpoint at path.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chkpt: load: %w", err)
	}
	c, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("chkpt: load %s: %w", path, err)
	}
	return c, nil
}
