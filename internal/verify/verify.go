// Package verify is the repository's trusted feasibility oracle for flow
// schedules. It re-derives, from first principles and independently of the
// solver code paths, whether a produced schedule is a real schedule for its
// instance: every flow assigned a round, no flow before its release, full
// demand delivery, and no port loaded beyond the stated (possibly augmented)
// capacity in any round. It also recomputes the paper's response-time
// metrics from the raw assignment so experiment tables never report numbers
// a solver merely claims.
//
// The package deliberately duplicates rather than calls
// switchnet.Schedule.Validate: an oracle shared by property tests, the
// scenario engine, and the experiment drivers must not inherit a bug from
// the code it checks.
package verify

import (
	"fmt"

	"flowsched/internal/switchnet"
)

// Report is the outcome of checking one schedule against one instance. All
// metric fields are recomputed here from the assignment, not copied from
// solver results.
type Report struct {
	// Flows is the instance size n; Scheduled counts flows with an
	// assigned round.
	Flows     int
	Scheduled int
	// DeliveredDemand sums the demands of scheduled flows; TotalDemand is
	// the instance's demand mass. Full delivery means the two are equal
	// and Scheduled == Flows.
	DeliveredDemand int
	TotalDemand     int
	// TotalResponse, AvgResponse and MaxResponse are the paper's metrics
	// (C_e = round+1 convention), over the scheduled flows.
	TotalResponse int
	AvgResponse   float64
	MaxResponse   int
	// Makespan is one past the last used round.
	Makespan int
	// MaxOverload is the largest amount by which any (port, round) load
	// exceeds the checked capacities; 0 for a capacity-feasible schedule.
	MaxOverload int
	// Violations lists every feasibility violation found, in a stable
	// order. Empty iff the schedule is feasible.
	Violations []string
}

// Feasible reports whether the check found no violations.
func (r *Report) Feasible() bool { return len(r.Violations) == 0 }

// Err returns nil for a feasible report, or an error naming the first
// violation (and the total count).
func (r *Report) Err() error {
	if r.Feasible() {
		return nil
	}
	if len(r.Violations) == 1 {
		return fmt.Errorf("verify: %s", r.Violations[0])
	}
	return fmt.Errorf("verify: %s (and %d more violations)", r.Violations[0], len(r.Violations)-1)
}

// maxViolations bounds the recorded violation list so adversarial inputs
// cannot balloon reports; the count of further violations is still implied
// by MaxOverload / Scheduled.
const maxViolations = 32

// CheckSchedule validates sched against inst under the per-port capacities
// caps (global index order: inputs then outputs; pass
// inst.Switch.Caps() for unaugmented checking). It returns a Report with
// recomputed metrics and the violation list, and a non-nil error iff the
// schedule is not a real schedule for the instance under caps.
//
// Structural mismatches (wrong schedule length, wrong capacity count) are
// returned as errors with a nil report, since no meaningful metrics exist.
func CheckSchedule(inst *switchnet.Instance, sched *switchnet.Schedule, caps []int) (*Report, error) {
	if inst == nil || sched == nil {
		return nil, fmt.Errorf("verify: nil %s", map[bool]string{true: "instance", false: "schedule"}[inst == nil])
	}
	if len(sched.Round) != len(inst.Flows) {
		return nil, fmt.Errorf("verify: schedule covers %d flows, instance has %d", len(sched.Round), len(inst.Flows))
	}
	if len(caps) != inst.Switch.NumPorts() {
		return nil, fmt.Errorf("verify: got %d capacities, instance has %d ports", len(caps), inst.Switch.NumPorts())
	}

	rep := &Report{Flows: len(inst.Flows)}
	violate := func(format string, args ...any) {
		if len(rep.Violations) < maxViolations {
			rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
		}
	}

	// Per-flow checks and metric accumulation.
	type pr struct{ port, round int }
	loads := make(map[pr]int)
	for f, e := range inst.Flows {
		rep.TotalDemand += e.Demand
		t := sched.Round[f]
		if t == switchnet.Unscheduled {
			violate("flow %d is unscheduled", f)
			continue
		}
		if t < 0 {
			violate("flow %d assigned negative round %d", f, t)
			continue
		}
		rep.Scheduled++
		rep.DeliveredDemand += e.Demand
		if t < e.Release {
			violate("flow %d scheduled at round %d before release %d", f, t, e.Release)
		}
		resp := t + 1 - e.Release
		rep.TotalResponse += resp
		if resp > rep.MaxResponse {
			rep.MaxResponse = resp
		}
		if t+1 > rep.Makespan {
			rep.Makespan = t + 1
		}
		loads[pr{inst.Switch.PortIndex(switchnet.In, e.In), t}] += e.Demand
		loads[pr{inst.Switch.PortIndex(switchnet.Out, e.Out), t}] += e.Demand
	}
	if rep.Scheduled > 0 {
		rep.AvgResponse = float64(rep.TotalResponse) / float64(rep.Scheduled)
	}

	// Port-capacity checks. Map iteration order is random, so collect the
	// worst overload unconditionally and report violations deterministically
	// by a second pass over flows' (port, round) pairs.
	for key, load := range loads {
		if over := load - caps[key.port]; over > rep.MaxOverload {
			rep.MaxOverload = over
		}
	}
	if rep.MaxOverload > 0 {
		seen := make(map[pr]bool)
		for f, e := range inst.Flows {
			t := sched.Round[f]
			if t == switchnet.Unscheduled || t < 0 {
				continue
			}
			for _, key := range []pr{
				{inst.Switch.PortIndex(switchnet.In, e.In), t},
				{inst.Switch.PortIndex(switchnet.Out, e.Out), t},
			} {
				if seen[key] {
					continue
				}
				seen[key] = true
				if load := loads[key]; load > caps[key.port] {
					violate("round %d: port %d loaded %d > capacity %d", key.round, key.port, load, caps[key.port])
				}
			}
		}
	}
	return rep, rep.Err()
}

// CheckScaled checks sched under port capacities scaled by factor — the
// "(1+c) times the capacity" augmentation of Theorem 1.
func CheckScaled(inst *switchnet.Instance, sched *switchnet.Schedule, factor int) (*Report, error) {
	return CheckSchedule(inst, sched, switchnet.ScaleCaps(inst.Switch.Caps(), factor))
}

// CheckAugmented checks sched under port capacities increased by delta —
// the "+2*d_max-1" augmentation of Theorem 3.
func CheckAugmented(inst *switchnet.Instance, sched *switchnet.Schedule, delta int) (*Report, error) {
	return CheckSchedule(inst, sched, switchnet.AddCaps(inst.Switch.Caps(), delta))
}
