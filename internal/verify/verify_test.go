package verify

import (
	"math/rand"
	"strings"
	"testing"

	"flowsched/internal/switchnet"
)

// twoFlowInstance returns two unit flows contending for output 0 on a 2x2
// unit switch.
func twoFlowInstance() *switchnet.Instance {
	return &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 1, Out: 0, Demand: 1, Release: 1},
		},
	}
}

func TestCheckScheduleFeasible(t *testing.T) {
	inst := twoFlowInstance()
	sched := &switchnet.Schedule{Round: []int{0, 1}}
	rep, err := CheckSchedule(inst, sched, inst.Switch.Caps())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Scheduled != 2 || rep.DeliveredDemand != 2 || rep.TotalDemand != 2 {
		t.Fatalf("delivery accounting wrong: %+v", rep)
	}
	// Responses: flow 0: 0+1-0 = 1; flow 1: 1+1-1 = 1.
	if rep.TotalResponse != 2 || rep.MaxResponse != 1 || rep.AvgResponse != 1 {
		t.Fatalf("metrics wrong: %+v", rep)
	}
	if rep.Makespan != 2 {
		t.Fatalf("makespan = %d, want 2", rep.Makespan)
	}
}

func TestCheckScheduleUnscheduledFlow(t *testing.T) {
	inst := twoFlowInstance()
	sched := &switchnet.Schedule{Round: []int{0, switchnet.Unscheduled}}
	rep, err := CheckSchedule(inst, sched, inst.Switch.Caps())
	if err == nil {
		t.Fatal("want error for unscheduled flow")
	}
	if rep.Scheduled != 1 || rep.DeliveredDemand != 1 || rep.TotalDemand != 2 {
		t.Fatalf("partial delivery accounting wrong: %+v", rep)
	}
	if !strings.Contains(rep.Violations[0], "unscheduled") {
		t.Fatalf("violation = %q", rep.Violations[0])
	}
}

func TestCheckScheduleBeforeRelease(t *testing.T) {
	inst := twoFlowInstance()
	sched := &switchnet.Schedule{Round: []int{0, 0}} // flow 1 released at 1
	rep, err := CheckSchedule(inst, sched, switchnet.ScaleCaps(inst.Switch.Caps(), 2))
	if err == nil {
		t.Fatal("want error for scheduling before release")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "before release") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v", rep.Violations)
	}
}

func TestCheckScheduleOverload(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 1, Out: 0, Demand: 1, Release: 0},
		},
	}
	sched := &switchnet.Schedule{Round: []int{0, 0}} // output 0 doubly loaded
	rep, err := CheckSchedule(inst, sched, inst.Switch.Caps())
	if err == nil {
		t.Fatal("want overload error")
	}
	if rep.MaxOverload != 1 {
		t.Fatalf("MaxOverload = %d, want 1", rep.MaxOverload)
	}
	// The same schedule passes under doubled capacities.
	if _, err := CheckScaled(inst, sched, 2); err != nil {
		t.Fatal(err)
	}
	// And under +1 additive augmentation.
	if _, err := CheckAugmented(inst, sched, 1); err != nil {
		t.Fatal(err)
	}
}

func TestCheckScheduleStructuralErrors(t *testing.T) {
	inst := twoFlowInstance()
	if _, err := CheckSchedule(inst, &switchnet.Schedule{Round: []int{0}}, inst.Switch.Caps()); err == nil {
		t.Fatal("want length-mismatch error")
	}
	if _, err := CheckSchedule(inst, &switchnet.Schedule{Round: []int{0, 1}}, []int{1}); err == nil {
		t.Fatal("want capacity-count error")
	}
	if _, err := CheckSchedule(nil, &switchnet.Schedule{}, nil); err == nil {
		t.Fatal("want nil-instance error")
	}
	if _, err := CheckSchedule(inst, nil, inst.Switch.Caps()); err == nil {
		t.Fatal("want nil-schedule error")
	}
}

// TestReportMatchesScheduleMethods cross-checks the oracle's recomputed
// metrics against the switchnet.Schedule methods on random feasible-by-
// construction schedules (each flow in its own round).
func TestReportMatchesScheduleMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(4)
		n := 1 + rng.Intn(12)
		inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(m)}
		sched := switchnet.NewSchedule(n)
		for f := 0; f < n; f++ {
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In: rng.Intn(m), Out: rng.Intn(m), Demand: 1, Release: rng.Intn(5),
			})
		}
		// One flow per round (past its release): feasible on any switch.
		used := map[int]bool{}
		for f := 0; f < n; f++ {
			t := inst.Flows[f].Release
			for used[t] {
				t++
			}
			used[t] = true
			sched.Round[f] = t
		}
		rep, err := CheckSchedule(inst, sched, inst.Switch.Caps())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rep.TotalResponse != sched.TotalResponse(inst) {
			t.Fatalf("trial %d: total %d vs %d", trial, rep.TotalResponse, sched.TotalResponse(inst))
		}
		if rep.MaxResponse != sched.MaxResponse(inst) {
			t.Fatalf("trial %d: max %d vs %d", trial, rep.MaxResponse, sched.MaxResponse(inst))
		}
		if rep.AvgResponse != sched.AvgResponse(inst) {
			t.Fatalf("trial %d: avg %v vs %v", trial, rep.AvgResponse, sched.AvgResponse(inst))
		}
		if rep.Makespan != sched.Makespan() {
			t.Fatalf("trial %d: makespan %d vs %d", trial, rep.Makespan, sched.Makespan())
		}
	}
}
