package core

import (
	"fmt"
	"math"
	"sort"

	"flowsched/internal/lp"
	"flowsched/internal/switchnet"
)

const (
	zeroTol     = 1e-7 // LP values below this are dropped from the support
	integralTol = 1e-6 // values within this of d_e count as integral
)

// PseudoSchedule is the output of the iterative rounding of Lemma 3.3: an
// assignment of every flow to a single round whose cost is at most the
// optimum of the interval LP (5)-(8), and whose per-port load over any time
// interval exceeds cp*(interval length) by only O(cp log n).
type PseudoSchedule struct {
	// Round[f] is the round assigned to flow f.
	Round []int
	// LPValue is the optimum of LP (5)-(8), a lower bound on the total
	// response time of any schedule.
	LPValue float64
	// RoundingIterations counts LP re-solves (Lemma 3.5 bounds this by
	// O(log n)).
	RoundingIterations int
	// ForcedFixes counts degeneracy-safeguard fixes (0 in practice;
	// tests assert this).
	ForcedFixes int
	// LPIterations totals simplex pivots across all LP solves.
	LPIterations int
}

// TotalResponse returns the total response time of the pseudo-schedule.
func (ps *PseudoSchedule) TotalResponse(inst *switchnet.Instance) int {
	total := 0
	for f, t := range ps.Round {
		total += t + 1 - inst.Flows[f].Release
	}
	return total
}

// entry is one surviving LP variable during iterative rounding.
type entry struct {
	flow  int
	round int
	val   float64
}

// IterativeRound runs the iterative LP rounding of Section 3.1 on a
// unit-demand instance, producing a pseudo-schedule per Lemma 3.3.
func IterativeRound(inst *switchnet.Instance) (*PseudoSchedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if err := requireUnitDemands(inst); err != nil {
		return nil, err
	}
	n := inst.N()
	ps := &PseudoSchedule{Round: make([]int, n)}
	for f := range ps.Round {
		ps.Round[f] = switchnet.Unscheduled
	}
	if n == 0 {
		return ps, nil
	}

	// LP(0): interval constraints of width 4 with capacity 4*c_p (7).
	entries, lpVal, iters, err := solveInitialIntervalLP(inst)
	if err != nil {
		return nil, err
	}
	ps.LPValue = lpVal
	ps.LPIterations += iters

	remaining := n
	lastSupport := math.MaxInt
	for remaining > 0 {
		ps.RoundingIterations++
		// Fix integrally-assigned flows (A(l) in the paper).
		progressed := false
		for _, en := range entries {
			if ps.Round[en.flow] != switchnet.Unscheduled {
				continue
			}
			if en.val >= 1-integralTol {
				ps.Round[en.flow] = en.round
				remaining--
				progressed = true
			}
		}
		if remaining == 0 {
			break
		}
		// Keep only the support of still-fractional flows.
		kept := entries[:0]
		for _, en := range entries {
			if ps.Round[en.flow] == switchnet.Unscheduled && en.val > zeroTol {
				kept = append(kept, en)
			}
		}
		entries = kept
		if !progressed && len(entries) >= lastSupport {
			// Degeneracy safeguard: integrally fix the flow with the
			// largest single variable (never triggered at basic optima;
			// counted so tests can assert on it).
			ps.ForcedFixes++
			best := -1
			for i, en := range entries {
				if best < 0 || en.val > entries[best].val {
					best = i
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("core: iterative rounding lost all variables with %d flows left", remaining)
			}
			f := entries[best].flow
			ps.Round[f] = entries[best].round
			remaining--
			kept := entries[:0]
			for _, en := range entries {
				if en.flow != f {
					kept = append(kept, en)
				}
			}
			entries = kept
			lastSupport = math.MaxInt
			if remaining == 0 {
				break
			}
			continue
		}
		lastSupport = len(entries)

		// Build and solve LP(l) over the surviving variables with
		// regrouped intervals (11).
		var solved []entry
		var its int
		solved, its, err = solveRegroupedLP(inst, entries)
		if err != nil {
			return nil, err
		}
		ps.LPIterations += its
		entries = solved
	}
	return ps, nil
}

// solveInitialIntervalLP builds and solves LP (5)-(8) and returns its
// support as entries.
func solveInitialIntervalLP(inst *switchnet.Instance) ([]entry, float64, int, error) {
	horizon := inst.CongestionHorizon()
	for attempt := 0; attempt < 8; attempt++ {
		vm := newVarMap()
		for f, e := range inst.Flows {
			for t := e.Release; t < horizon; t++ {
				vm.add(f, t)
			}
		}
		p := lp.NewProblem(vm.len())
		for j := 0; j < vm.len(); j++ {
			k := vm.key(j)
			e := inst.Flows[k.flow]
			p.SetCost(j, float64(k.round-e.Release)+0.5)
			p.SetBounds(j, 0, 1)
		}
		for f, e := range inst.Flows {
			var idx []int
			var val []float64
			for t := e.Release; t < horizon; t++ {
				idx = append(idx, vm.byK[varKey{f, t}])
				val = append(val, 1)
			}
			p.AddRow(idx, val, lp.GE, 1)
		}
		// Width-4 aligned windows: sum over t in [4a, 4a+4) at most 4*c_p,
		// rows in deterministic order.
		rows := make(map[portRound][]int)
		for j := 0; j < vm.len(); j++ {
			k := vm.key(j)
			e := inst.Flows[k.flow]
			pIn := inst.Switch.PortIndex(switchnet.In, e.In)
			pOut := inst.Switch.PortIndex(switchnet.Out, e.Out)
			rows[portRound{pIn, k.round / 4}] = append(rows[portRound{pIn, k.round / 4}], j)
			rows[portRound{pOut, k.round / 4}] = append(rows[portRound{pOut, k.round / 4}], j)
		}
		for _, key := range sortedPortRounds(rows) {
			vars := rows[key]
			val := make([]float64, len(vars))
			for i := range val {
				val[i] = 1
			}
			p.AddRow(vars, val, lp.LE, 4*float64(inst.Switch.Cap(key.port)))
		}
		sol, err := p.Solve()
		if err != nil {
			return nil, 0, 0, err
		}
		switch sol.Status {
		case lp.Optimal:
			var entries []entry
			for j, v := range sol.X {
				if v > zeroTol {
					k := vm.key(j)
					entries = append(entries, entry{k.flow, k.round, v})
				}
			}
			return entries, sol.Obj, sol.Iterations, nil
		case lp.Infeasible:
			horizon *= 2
		default:
			return nil, 0, 0, fmt.Errorf("core: interval LP status %v", sol.Status)
		}
	}
	return nil, 0, 0, fmt.Errorf("core: interval LP infeasible up to horizon %d", horizon)
}

// solveRegroupedLP builds LP(l) for iteration l >= 1: variables are exactly
// the surviving entries; per-port interval groups are regrown greedily from
// the previous solution until their size first exceeds 4*c_p (Section 3.1).
func solveRegroupedLP(inst *switchnet.Instance, entries []entry) ([]entry, int, error) {
	p := lp.NewProblem(len(entries))
	for j, en := range entries {
		e := inst.Flows[en.flow]
		p.SetCost(j, float64(en.round-e.Release)+0.5)
		p.SetBounds(j, 0, 1)
	}
	// Flow covering rows, in ascending flow order (map iteration order
	// would perturb the simplex pivot sequence run to run).
	byFlow := make(map[int][]int)
	flows := make([]int, 0, len(entries))
	for j, en := range entries {
		if _, ok := byFlow[en.flow]; !ok {
			flows = append(flows, en.flow)
		}
		byFlow[en.flow] = append(byFlow[en.flow], j)
	}
	sort.Ints(flows)
	for _, f := range flows {
		idx := byFlow[f]
		val := make([]float64, len(idx))
		for i := range val {
			val[i] = 1
		}
		p.AddRow(idx, val, lp.GE, 1)
	}
	// Interval groups per port.
	numPorts := inst.Switch.NumPorts()
	byPort := make([][]int, numPorts)
	for j, en := range entries {
		e := inst.Flows[en.flow]
		pIn := inst.Switch.PortIndex(switchnet.In, e.In)
		pOut := inst.Switch.PortIndex(switchnet.Out, e.Out)
		byPort[pIn] = append(byPort[pIn], j)
		byPort[pOut] = append(byPort[pOut], j)
	}
	for port, vars := range byPort {
		if len(vars) == 0 {
			continue
		}
		capP := float64(inst.Switch.Cap(port))
		sort.Slice(vars, func(a, b int) bool {
			ea, eb := entries[vars[a]], entries[vars[b]]
			if ea.round != eb.round {
				return ea.round < eb.round
			}
			return ea.flow < eb.flow
		})
		group := []int{}
		size := 0.0
		flush := func() {
			if len(group) == 0 {
				return
			}
			val := make([]float64, len(group))
			for i := range val {
				val[i] = 1
			}
			p.AddRow(append([]int(nil), group...), val, lp.LE, size)
			group = group[:0]
			size = 0
		}
		for _, j := range vars {
			group = append(group, j)
			size += entries[j].val
			if size > 4*capP {
				flush()
			}
		}
		flush()
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, fmt.Errorf("core: regrouped LP status %v", sol.Status)
	}
	out := make([]entry, 0, len(entries))
	for j, en := range entries {
		if sol.X[j] > zeroTol {
			out = append(out, entry{en.flow, en.round, sol.X[j]})
		}
	}
	return out, sol.Iterations, nil
}
