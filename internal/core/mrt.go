package core

import (
	"fmt"

	"flowsched/internal/lp"
	"flowsched/internal/rounding"
	"flowsched/internal/switchnet"
)

// Windows gives, for each flow, the set of rounds in which it may be
// scheduled (the active rounds R(e) of Time-Constrained Flow Scheduling,
// Section 4.2). Rounds may be non-contiguous.
type Windows [][]int

// ResponseWindows builds the windows of the FS-MRT reduction: flow e may
// run in rounds [r_e, r_e+rho).
func ResponseWindows(inst *switchnet.Instance, rho int) Windows {
	w := make(Windows, inst.N())
	for f, e := range inst.Flows {
		rounds := make([]int, rho)
		for i := 0; i < rho; i++ {
			rounds[i] = e.Release + i
		}
		w[f] = rounds
	}
	return w
}

// DeadlineWindows builds windows for the deadline model of Remark 4.2:
// flow e may run in rounds [r_e, deadline_e] (inclusive).
func DeadlineWindows(inst *switchnet.Instance, deadline []int) (Windows, error) {
	if len(deadline) != inst.N() {
		return nil, fmt.Errorf("core: %d deadlines for %d flows", len(deadline), inst.N())
	}
	w := make(Windows, inst.N())
	for f, e := range inst.Flows {
		if deadline[f] < e.Release {
			return nil, fmt.Errorf("core: flow %d deadline %d before release %d", f, deadline[f], e.Release)
		}
		for t := e.Release; t <= deadline[f]; t++ {
			w[f] = append(w[f], t)
		}
	}
	return w, nil
}

// timeConstrainedLP builds LP (19)-(21): variables x_{e,t} for t in R(e),
// an equality row per flow and a capacity row per (port, round).
func timeConstrainedLP(inst *switchnet.Instance, win Windows) (*lp.Problem, *varMap) {
	vm := newVarMap()
	for f := range inst.Flows {
		for _, t := range win[f] {
			vm.add(f, t)
		}
	}
	p := lp.NewProblem(vm.len())
	for j := 0; j < vm.len(); j++ {
		p.SetBounds(j, 0, 1)
	}
	// Constraint (20): each flow fully scheduled.
	for f := range inst.Flows {
		idx := make([]int, 0, len(win[f]))
		val := make([]float64, 0, len(win[f]))
		for _, t := range win[f] {
			idx = append(idx, vm.byK[varKey{f, t}])
			val = append(val, 1)
		}
		p.AddRow(idx, val, lp.EQ, 1)
	}
	// Constraint (19): port capacity per round, one row per (port, round)
	// that some window touches, in deterministic order.
	rows := make(map[portRound][]int)
	for j := 0; j < vm.len(); j++ {
		k := vm.key(j)
		e := inst.Flows[k.flow]
		pIn := inst.Switch.PortIndex(switchnet.In, e.In)
		pOut := inst.Switch.PortIndex(switchnet.Out, e.Out)
		rows[portRound{pIn, k.round}] = append(rows[portRound{pIn, k.round}], j)
		rows[portRound{pOut, k.round}] = append(rows[portRound{pOut, k.round}], j)
	}
	for _, key := range sortedPortRounds(rows) {
		vars := rows[key]
		val := make([]float64, len(vars))
		for i, j := range vars {
			val[i] = float64(inst.Flows[vm.key(j).flow].Demand)
		}
		p.AddRow(vars, val, lp.LE, float64(inst.Switch.Cap(key.port)))
	}
	return p, vm
}

// TimeConstrainedResult is the outcome of SolveTimeConstrained.
type TimeConstrainedResult struct {
	// Schedule assigns each flow one round within its window.
	Schedule *switchnet.Schedule
	// CapIncrease is the augmentation guaranteed by Theorem 3: the
	// schedule respects capacities c_p + CapIncrease.
	CapIncrease int
	// LPIterations counts simplex pivots.
	LPIterations int
	// ForcedDrops mirrors rounding.Result.ForcedDrops (0 in practice).
	ForcedDrops int
}

// SolveTimeConstrained implements Theorem 3: it either reports that the
// time-constrained instance has no schedule (ErrInfeasible), or returns a
// schedule that places every flow inside its window while exceeding each
// port capacity by at most 2*d_max-1.
func SolveTimeConstrained(inst *switchnet.Instance, win Windows) (*TimeConstrainedResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if inst.N() == 0 {
		return &TimeConstrainedResult{Schedule: switchnet.NewSchedule(0)}, nil
	}
	if len(win) != inst.N() {
		return nil, fmt.Errorf("core: %d windows for %d flows", len(win), inst.N())
	}
	for f, rounds := range win {
		if len(rounds) == 0 {
			return nil, fmt.Errorf("core: flow %d has an empty window", f)
		}
		for _, t := range rounds {
			if t < inst.Flows[f].Release {
				return nil, fmt.Errorf("core: flow %d window contains round %d before release %d",
					f, t, inst.Flows[f].Release)
			}
		}
	}
	p, vm := timeConstrainedLP(inst, win)
	sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, ErrInfeasible
	default:
		return nil, fmt.Errorf("core: LP solve ended with status %v", sol.Status)
	}

	dmax := inst.MaxDemand()
	// Build the rounding system exactly as in the proof of Theorem 3:
	// assignment rows guarded from dropping below 1 (budget 1, scaled
	// Delta = 2*d_max in the paper's matrix form), capacity rows guarded
	// from rising by 2*d_max or more.
	sys := rounding.NewSystem(vm.len())
	for f := range inst.Flows {
		idx := make([]int, 0, len(win[f]))
		coef := make([]float64, 0, len(win[f]))
		for _, t := range win[f] {
			idx = append(idx, vm.byK[varKey{f, t}])
			coef = append(coef, 1)
		}
		sys.AddRow(idx, coef, rounding.Lower, 1)
	}
	capRows := make(map[portRound][]int)
	for j := 0; j < vm.len(); j++ {
		k := vm.key(j)
		e := inst.Flows[k.flow]
		pIn := inst.Switch.PortIndex(switchnet.In, e.In)
		pOut := inst.Switch.PortIndex(switchnet.Out, e.Out)
		capRows[portRound{pIn, k.round}] = append(capRows[portRound{pIn, k.round}], j)
		capRows[portRound{pOut, k.round}] = append(capRows[portRound{pOut, k.round}], j)
	}
	for _, key := range sortedPortRounds(capRows) {
		vars := capRows[key]
		coef := make([]float64, len(vars))
		for i, j := range vars {
			coef[i] = float64(inst.Flows[vm.key(j).flow].Demand)
		}
		sys.AddRow(vars, coef, rounding.Upper, float64(2*dmax))
	}
	rres := sys.Round(sol.X)

	// Extract the schedule: the earliest chosen round per flow (extra
	// chosen rounds, if any, are discarded, which only lowers loads).
	sched := switchnet.NewSchedule(inst.N())
	for j, v := range rres.X {
		if v < 0.5 {
			continue
		}
		k := vm.key(j)
		if cur := sched.Round[k.flow]; cur == switchnet.Unscheduled || k.round < cur {
			sched.Round[k.flow] = k.round
		}
	}
	for f, t := range sched.Round {
		if t == switchnet.Unscheduled {
			return nil, fmt.Errorf("core: rounding left flow %d unscheduled", f)
		}
	}
	inc := 2*dmax - 1
	if err := sched.Validate(inst, switchnet.AddCaps(inst.Switch.Caps(), inc)); err != nil {
		return nil, fmt.Errorf("core: rounded schedule invalid: %w", err)
	}
	return &TimeConstrainedResult{
		Schedule:     sched,
		CapIncrease:  inc,
		LPIterations: sol.Iterations,
		ForcedDrops:  rres.ForcedDrops,
	}, nil
}

// MRTResult is the outcome of SolveMRT.
type MRTResult struct {
	*TimeConstrainedResult
	// Rho is the optimal maximum response time: the smallest rho whose
	// LP relaxation is feasible. It lower-bounds any capacity-respecting
	// schedule, and the returned schedule achieves it with augmentation.
	Rho int
}

// MRTLowerBound returns the smallest rho for which LP (19)-(21) with
// windows [r_e, r_e+rho) is feasible. This is the lower bound the paper's
// Figure 7 compares heuristics against.
func MRTLowerBound(inst *switchnet.Instance) (int, error) {
	if inst.N() == 0 {
		return 0, nil
	}
	feasible := func(rho int) (bool, error) {
		p, _ := timeConstrainedLP(inst, ResponseWindows(inst, rho))
		sol, err := p.Solve()
		if err != nil {
			return false, err
		}
		switch sol.Status {
		case lp.Optimal:
			return true, nil
		case lp.Infeasible:
			return false, nil
		default:
			return false, fmt.Errorf("core: LP status %v during binary search", sol.Status)
		}
	}
	// The volume bound of TrivialMRTLowerBound is valid for the LP too
	// (it only compares demand mass against capacity mass), so the search
	// can start there; exponential search finds a feasible upper end,
	// then binary search closes the gap.
	lo := TrivialMRTLowerBound(inst)
	if lo < 1 {
		lo = 1
	}
	hi := lo
	for {
		ok, err := feasible(hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		lo = hi + 1
		hi *= 2
		if hi > inst.CongestionHorizon()*4+16 {
			return 0, fmt.Errorf("core: no feasible rho up to %d", hi)
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, nil
}

// SolveMRT implements the FS-MRT pipeline of Section 4.2: binary search on
// the response bound rho, then Theorem 3 rounding at the optimum. The
// returned schedule has maximum response time Rho (the LP optimum, hence
// optimal) using port capacities c_p + 2*d_max - 1.
func SolveMRT(inst *switchnet.Instance) (*MRTResult, error) {
	rho, err := MRTLowerBound(inst)
	if err != nil {
		return nil, err
	}
	if inst.N() == 0 {
		return &MRTResult{TimeConstrainedResult: &TimeConstrainedResult{Schedule: switchnet.NewSchedule(0)}, Rho: 0}, nil
	}
	res, err := SolveTimeConstrained(inst, ResponseWindows(inst, rho))
	if err != nil {
		return nil, err
	}
	if got := res.Schedule.MaxResponse(inst); got > rho {
		return nil, fmt.Errorf("core: rounded schedule has max response %d > rho %d", got, rho)
	}
	return &MRTResult{TimeConstrainedResult: res, Rho: rho}, nil
}
