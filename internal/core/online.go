package core

import (
	"fmt"
	"sort"

	"flowsched/internal/switchnet"
)

// AMRTResult is the outcome of the online batching algorithm of Lemma 5.3.
type AMRTResult struct {
	// Schedule assigns rounds to all flows; it is feasible under port
	// capacities 2*(c_p + 2*d_max - 1).
	Schedule *switchnet.Schedule
	// FinalRho is the final guessed maximum response time; the schedule's
	// maximum response time is at most 2*FinalRho.
	FinalRho int
	// Checkpoints counts batch scheduling attempts (feasible or not).
	Checkpoints int
	// RhoBumps counts how many times the guess was increased.
	RhoBumps int
}

// OnlineAMRT runs the online maximum-response-time algorithm from
// Section 5.1 (Lemma 5.3): the scheduler guesses a response bound rho and,
// at every round that is a multiple of rho, batch-schedules all pending
// flows with the offline Theorem 3 algorithm into the next rho rounds; if
// the batch is infeasible the guess increases by one. The resulting
// schedule has maximum response time at most double the optimum and uses
// at most 2*(c_p + 2*d_max - 1) capacity on every port.
//
// The function only inspects a flow after its release round, so it is a
// legitimate online algorithm despite receiving the whole instance up
// front.
func OnlineAMRT(inst *switchnet.Instance) (*AMRTResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N()
	res := &AMRTResult{Schedule: switchnet.NewSchedule(n), FinalRho: 1}
	if n == 0 {
		return res, nil
	}

	// Arrival order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return inst.Flows[order[a]].Release < inst.Flows[order[b]].Release
	})

	rho := 1
	next := 0 // next arrival index
	var pending []int
	scheduled := 0
	horizonGuard := 4*inst.CongestionHorizon() + 16

	for t := 0; scheduled < n; t++ {
		if t > horizonGuard+rho*4 {
			return nil, fmt.Errorf("core: AMRT exceeded time guard at round %d", t)
		}
		for next < n && inst.Flows[order[next]].Release < t {
			pending = append(pending, order[next])
			next++
		}
		if t%rho != 0 || len(pending) == 0 {
			continue
		}
		// Offline sub-problem: schedule the batch within [t, t+rho),
		// bumping the guess (and immediately retrying) while infeasible so
		// every batch is dispatched at the checkpoint that formed it —
		// this is what keeps the response of any flow below 2*rho.
		for {
			res.Checkpoints++
			sub := &switchnet.Instance{Switch: inst.Switch, Flows: make([]switchnet.Flow, len(pending))}
			win := make(Windows, len(pending))
			for i, f := range pending {
				sub.Flows[i] = inst.Flows[f]
				// Releases are in the past; the window is the batch window.
				sub.Flows[i].Release = 0
				rounds := make([]int, rho)
				for k := 0; k < rho; k++ {
					rounds[k] = t + k
				}
				win[i] = rounds
			}
			tc, err := SolveTimeConstrained(sub, win)
			if err == ErrInfeasible {
				rho++
				res.RhoBumps++
				if rho > horizonGuard {
					return nil, fmt.Errorf("core: AMRT guess exceeded guard %d", horizonGuard)
				}
				continue
			}
			if err != nil {
				return nil, err
			}
			for i, f := range pending {
				res.Schedule.Round[f] = tc.Schedule.Round[i]
				scheduled++
			}
			pending = pending[:0]
			break
		}
	}
	res.FinalRho = rho
	return res, nil
}

// AMRTCaps returns the augmented capacities under which an OnlineAMRT
// schedule is guaranteed feasible: 2*(c_p + 2*d_max - 1).
func AMRTCaps(inst *switchnet.Instance) []int {
	dmax := inst.MaxDemand()
	caps := inst.Switch.Caps()
	out := make([]int, len(caps))
	for i, c := range caps {
		out[i] = 2 * (c + 2*dmax - 1)
	}
	return out
}
