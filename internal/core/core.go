// Package core implements the paper's scheduling algorithms:
//
//   - FS-ART (Section 3): the LP lower bound (1)-(4), the interval LP
//     (5)-(8) with the Bansal-Kulkarni style iterative rounding of
//     Lemma 3.3, and the pseudo-schedule to valid-schedule conversion of
//     Theorem 1 via Birkhoff-von Neumann decomposition.
//   - FS-MRT (Section 4): the time-constrained LP (19)-(21), the
//     Karp-Leighton-Rivest-Thompson-Vazirani-Vazirani rounding of
//     Theorem 3 with per-port capacity increase at most 2*d_max-1, and the
//     binary-search reduction from FS-MRT to time-constrained scheduling.
//   - Online (Section 5.1): the batched AMRT algorithm of Lemma 5.3.
//   - Combinatorial lower bounds used when LPs are too large.
//
//flowsched:deterministic
package core

import (
	"errors"
	"fmt"
	"sort"

	"flowsched/internal/switchnet"
)

// ErrInfeasible is returned when an instance admits no schedule under the
// requested constraints (e.g. no schedule with the given response bound).
var ErrInfeasible = errors.New("core: infeasible")

// varKey identifies an LP variable b_{e,t} / x_{e,t}.
type varKey struct {
	flow  int
	round int
}

// varMap assigns dense indices to (flow, round) variables.
type varMap struct {
	keys []varKey
	byK  map[varKey]int
}

func newVarMap() *varMap {
	return &varMap{byK: make(map[varKey]int)}
}

func (m *varMap) add(flow, round int) int {
	k := varKey{flow, round}
	if j, ok := m.byK[k]; ok {
		return j
	}
	j := len(m.keys)
	m.keys = append(m.keys, k)
	m.byK[k] = j
	return j
}

func (m *varMap) len() int { return len(m.keys) }

func (m *varMap) key(j int) varKey { return m.keys[j] }

// portRound keys a per-(port, round-or-window) constraint row.
type portRound struct{ port, t int }

// sortedPortRounds returns the map's keys ordered by (port, t). Constraint
// rows must be added to LPs and rounding systems in this deterministic
// order: map iteration order would otherwise vary per run, perturbing the
// simplex pivot sequence and producing different (all individually valid)
// schedules for the same instance — breaking reproducible sweeps.
func sortedPortRounds(m map[portRound][]int) []portRound {
	keys := make([]portRound, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].port != keys[b].port {
			return keys[a].port < keys[b].port
		}
		return keys[a].t < keys[b].t
	})
	return keys
}

// requireUnitDemands guards the Theorem 1 pipeline, which the paper states
// for unit flows.
func requireUnitDemands(inst *switchnet.Instance) error {
	if !inst.UnitDemands() {
		return fmt.Errorf("core: algorithm requires unit demands (Theorem 1)")
	}
	return nil
}
