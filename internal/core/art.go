package core

import (
	"fmt"
	"math"

	"flowsched/internal/bvn"
	"flowsched/internal/switchnet"
)

// ARTResult is the outcome of SolveART (Theorem 1).
type ARTResult struct {
	// Schedule is feasible under port capacities scaled by CapFactor.
	Schedule *switchnet.Schedule
	// CapFactor is 1+c: the factor by which every port capacity was
	// augmented.
	CapFactor int
	// LPBound is the optimum of the interval LP (5)-(8), a lower bound on
	// the total response time of any (unaugmented) schedule.
	LPBound float64
	// PseudoTotal is the total response time of the intermediate
	// pseudo-schedule (Lemma 3.3); its cost is at most LPBound's schedule
	// counterpart.
	PseudoTotal int
	// WindowH is the conversion window length h used by the Theorem 1
	// batching; the response-time overhead per flow is at most 2h.
	WindowH int
	// Batches is the number of conversion windows that contained flows.
	Batches int
	// ForcedFixes mirrors PseudoSchedule.ForcedFixes (0 in practice).
	ForcedFixes int
	// LPIterations totals simplex pivots across all iterative-rounding
	// solves.
	LPIterations int
}

// SolveART implements Theorem 1 for unit-demand flows: a schedule whose
// total response time is within an additive O(n log n / c) — hence a
// multiplicative (1 + O(log n)/c) — of the LP lower bound, using port
// capacities scaled by 1+c.
//
// The pipeline is: iterative LP rounding (Lemma 3.3) to a pseudo-schedule;
// split the timeline into windows of length h; transform each window's
// flows through port replication; Birkhoff-von Neumann edge coloring into
// at most Delta matchings; execute 1+c matchings per round in the following
// window. h is grown geometrically from ceil(log2 n / c) until every
// window's matchings fit, which Lemma 3.7 guarantees at h = O(log n / c).
func SolveART(inst *switchnet.Instance, c int) (*ARTResult, error) {
	if c < 1 {
		return nil, fmt.Errorf("core: capacity augmentation c must be >= 1, got %d", c)
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if err := requireUnitDemands(inst); err != nil {
		return nil, err
	}
	n := inst.N()
	if n == 0 {
		return &ARTResult{Schedule: switchnet.NewSchedule(0), CapFactor: 1 + c}, nil
	}

	ps, err := IterativeRound(inst)
	if err != nil {
		return nil, err
	}

	h0 := int(math.Ceil(math.Log2(float64(n+2)))) / c
	if h0 < 1 {
		h0 = 1
	}
	var sched *switchnet.Schedule
	var usedH, batches int
	for h := h0; ; h *= 2 {
		sched, batches = convertPseudoSchedule(inst, ps, c, h)
		if sched != nil {
			usedH = h
			break
		}
		if h > 4*(inst.CongestionHorizon()+n) {
			return nil, fmt.Errorf("core: conversion window exceeded %d without fitting", h)
		}
	}
	res := &ARTResult{
		Schedule:     sched,
		CapFactor:    1 + c,
		LPBound:      ps.LPValue,
		PseudoTotal:  ps.TotalResponse(inst),
		WindowH:      usedH,
		Batches:      batches,
		ForcedFixes:  ps.ForcedFixes,
		LPIterations: ps.LPIterations,
	}
	caps := switchnet.ScaleCaps(inst.Switch.Caps(), 1+c)
	if err := sched.Validate(inst, caps); err != nil {
		return nil, fmt.Errorf("core: converted schedule invalid: %w", err)
	}
	return res, nil
}

// convertPseudoSchedule batches the pseudo-schedule into windows of length
// h and colors each batch into matchings executed in the following window
// with capacity (1+c)*c_p per round. It returns nil if some batch needs
// more than h rounds (caller doubles h).
func convertPseudoSchedule(inst *switchnet.Instance, ps *PseudoSchedule, c, h int) (*switchnet.Schedule, int) {
	batches := make(map[int][]int) // window index -> flow ids
	maxWin := 0
	for f, t := range ps.Round {
		w := t / h
		batches[w] = append(batches[w], f)
		if w > maxWin {
			maxWin = w
		}
	}
	sched := switchnet.NewSchedule(inst.N())
	for w := 0; w <= maxWin; w++ {
		flows := batches[w]
		if len(flows) == 0 {
			continue
		}
		edges := make([][2]int, len(flows))
		for i, f := range flows {
			edges[i] = [2]int{inst.Flows[f].In, inst.Flows[f].Out}
		}
		classes := bvn.Decompose(edges, inst.Switch.InCaps, inst.Switch.OutCaps)
		need := (len(classes) + c) / (1 + c) // ceil(classes/(1+c))
		if need > h {
			return nil, 0
		}
		start := (w + 1) * h
		for k, cls := range classes {
			round := start + k/(1+c)
			for _, i := range cls {
				sched.Round[flows[i]] = round
			}
		}
	}
	return sched, len(batches)
}
