package core

import (
	"sort"

	"flowsched/internal/switchnet"
)

// SRPTLowerBound computes a combinatorial lower bound on the total response
// time of any schedule by relaxing the instance to independent single-port
// preemptive machines: for each port, the flows incident on it are
// scheduled by shortest-remaining-processing-time with the port's capacity
// as a fluid per-round budget (optimal for mean flow time on one machine).
// Any valid switch schedule induces a feasible processing pattern on every
// port, so the maximum of the input-side and output-side totals (and the
// trivial bound n, one round per flow) is a valid lower bound. It is far
// cheaper than the LP bound and is used at scales where LP (1)-(4) is too
// large, mirroring the paper's note that LP runs dominated experiment time.
func SRPTLowerBound(inst *switchnet.Instance) int {
	n := inst.N()
	if n == 0 {
		return 0
	}
	inTotal := 0
	outTotal := 0
	for side := 0; side < 2; side++ {
		var numPorts int
		if side == 0 {
			numPorts = inst.Switch.NumIn()
		} else {
			numPorts = inst.Switch.NumOut()
		}
		byPort := make([][]int, numPorts)
		for f, e := range inst.Flows {
			if side == 0 {
				byPort[e.In] = append(byPort[e.In], f)
			} else {
				byPort[e.Out] = append(byPort[e.Out], f)
			}
		}
		for port, flows := range byPort {
			var cap int
			if side == 0 {
				cap = inst.Switch.InCaps[port]
			} else {
				cap = inst.Switch.OutCaps[port]
			}
			total := srptPort(inst, flows, cap)
			if side == 0 {
				inTotal += total
			} else {
				outTotal += total
			}
		}
	}
	best := n
	if inTotal > best {
		best = inTotal
	}
	if outTotal > best {
		best = outTotal
	}
	return best
}

// srptPort simulates fluid SRPT on a single port with the given per-round
// capacity and returns the total response time of the flows.
func srptPort(inst *switchnet.Instance, flows []int, cap int) int {
	if len(flows) == 0 {
		return 0
	}
	order := append([]int(nil), flows...)
	sort.Slice(order, func(a, b int) bool {
		return inst.Flows[order[a]].Release < inst.Flows[order[b]].Release
	})
	type job struct {
		release int
		remain  int
	}
	jobs := make([]job, len(order))
	for i, f := range order {
		jobs[i] = job{release: inst.Flows[f].Release, remain: inst.Flows[f].Demand}
	}
	total := 0
	done := 0
	next := 0 // next job (by release) not yet arrived
	active := []int{}
	t := jobs[0].release
	for done < len(jobs) {
		for next < len(jobs) && jobs[next].release <= t {
			active = append(active, next)
			next++
		}
		if len(active) == 0 {
			t = jobs[next].release
			continue
		}
		budget := cap
		for budget > 0 && len(active) > 0 {
			// Smallest remaining first.
			best := 0
			for i := 1; i < len(active); i++ {
				if jobs[active[i]].remain < jobs[active[best]].remain {
					best = i
				}
			}
			j := active[best]
			work := budget
			if jobs[j].remain < work {
				work = jobs[j].remain
			}
			jobs[j].remain -= work
			budget -= work
			if jobs[j].remain == 0 {
				total += t + 1 - jobs[j].release
				done++
				active = append(active[:best], active[best+1:]...)
			}
		}
		t++
	}
	return total
}

// TrivialMRTLowerBound returns a cheap lower bound on the maximum response
// time: the per-port backlog bound max_p ceil(peak simultaneous load / cap)
// restricted to release-time prefixes, and at least 1.
func TrivialMRTLowerBound(inst *switchnet.Instance) int {
	if inst.N() == 0 {
		return 0
	}
	best := 1
	// For any port p and any release time r, the flows of port p released
	// at or after r that must finish by r + rho give
	// rho >= load/(cap) - (their spread); use the simplest prefix form:
	// flows released in [r, r'] need (sum demands)/cap rounds, so
	// rho >= ceil(load / cap) - (r' - r).
	type ev struct{ release, demand int }
	numPorts := inst.Switch.NumPorts()
	byPort := make([][]ev, numPorts)
	for _, e := range inst.Flows {
		pIn := inst.Switch.PortIndex(switchnet.In, e.In)
		pOut := inst.Switch.PortIndex(switchnet.Out, e.Out)
		byPort[pIn] = append(byPort[pIn], ev{e.Release, e.Demand})
		byPort[pOut] = append(byPort[pOut], ev{e.Release, e.Demand})
	}
	for p := 0; p < numPorts; p++ {
		evs := byPort[p]
		sort.Slice(evs, func(a, b int) bool { return evs[a].release < evs[b].release })
		cap := inst.Switch.Cap(p)
		for i := 0; i < len(evs); i++ {
			load := 0
			for j := i; j < len(evs); j++ {
				load += evs[j].demand
				spread := evs[j].release - evs[i].release
				if rho := (load+cap-1)/cap - spread; rho > best {
					best = rho
				}
			}
		}
	}
	return best
}
