package core

import (
	"fmt"

	"flowsched/internal/lp"
	"flowsched/internal/switchnet"
)

// ARTLowerBoundResult carries the LP (1)-(4) lower bound on total response
// time together with solve diagnostics.
type ARTLowerBoundResult struct {
	// TotalResponse is the LP optimum, a lower bound on the total
	// response time of any schedule (Lemma 3.1).
	TotalResponse float64
	// Horizon is the time horizon the LP was solved over.
	Horizon int
	// Iterations counts simplex pivots.
	Iterations int
}

// ARTLowerBound solves the fractional relaxation (1)-(4):
//
//	min  sum_e sum_{t>=r_e} ((t-r_e)/d_e + 1/(2*kappa_e)) * b_et
//	s.t. sum_t b_et >= d_e           for every flow
//	     sum_{e in F_p} b_et <= c_p  for every port and round
//	     b_et >= 0
//
// By Lemma 3.1 the optimum lower-bounds the total response time of every
// schedule; the paper's Figure 6 uses it as the baseline. The horizon is
// grown geometrically until the LP is feasible.
func ARTLowerBound(inst *switchnet.Instance) (*ARTLowerBoundResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if inst.N() == 0 {
		return &ARTLowerBoundResult{}, nil
	}
	horizon := inst.CongestionHorizon()
	for attempt := 0; attempt < 8; attempt++ {
		p, _ := artLowerBoundLP(inst, horizon)
		sol, err := p.Solve()
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case lp.Optimal:
			return &ARTLowerBoundResult{
				TotalResponse: sol.Obj,
				Horizon:       horizon,
				Iterations:    sol.Iterations,
			}, nil
		case lp.Infeasible:
			horizon *= 2
		default:
			return nil, fmt.Errorf("core: ART lower-bound LP status %v", sol.Status)
		}
	}
	return nil, fmt.Errorf("core: ART lower-bound LP infeasible up to horizon %d", horizon)
}

// artLowerBoundLP builds LP (1)-(4) over rounds [r_e, horizon).
func artLowerBoundLP(inst *switchnet.Instance, horizon int) (*lp.Problem, *varMap) {
	vm := newVarMap()
	for f, e := range inst.Flows {
		for t := e.Release; t < horizon; t++ {
			vm.add(f, t)
		}
	}
	p := lp.NewProblem(vm.len())
	for j := 0; j < vm.len(); j++ {
		k := vm.key(j)
		e := inst.Flows[k.flow]
		kappa := inst.Kappa(k.flow)
		cost := float64(k.round-e.Release)/float64(e.Demand) + 1/(2*float64(kappa))
		p.SetCost(j, cost)
		// b_et <= d_e is implied at any optimum (costs are positive) and
		// tightens the relaxation the simplex must explore.
		p.SetBounds(j, 0, float64(e.Demand))
	}
	// Constraint (2): full demand scheduled.
	for f, e := range inst.Flows {
		var idx []int
		var val []float64
		for t := e.Release; t < horizon; t++ {
			idx = append(idx, vm.byK[varKey{f, t}])
			val = append(val, 1)
		}
		p.AddRow(idx, val, lp.GE, float64(e.Demand))
	}
	// Constraint (3): per-port per-round capacity, rows in deterministic
	// order.
	rows := make(map[portRound][]int)
	for j := 0; j < vm.len(); j++ {
		k := vm.key(j)
		e := inst.Flows[k.flow]
		pIn := inst.Switch.PortIndex(switchnet.In, e.In)
		pOut := inst.Switch.PortIndex(switchnet.Out, e.Out)
		rows[portRound{pIn, k.round}] = append(rows[portRound{pIn, k.round}], j)
		rows[portRound{pOut, k.round}] = append(rows[portRound{pOut, k.round}], j)
	}
	for _, key := range sortedPortRounds(rows) {
		vars := rows[key]
		val := make([]float64, len(vars))
		for i := range vars {
			val[i] = 1
		}
		p.AddRow(vars, val, lp.LE, float64(inst.Switch.Cap(key.port)))
	}
	return p, vm
}
