package core

import (
	"math/rand"
	"testing"

	"flowsched/internal/switchnet"
)

// TestSolveARTGeneralCapacities exercises the b-matching (port replication)
// path of Theorem 1: unit demands on a switch whose ports have capacity 3.
func TestSolveARTGeneralCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	inst := &switchnet.Instance{Switch: switchnet.NewSwitch(3, 3, 3)}
	for i := 0; i < 40; i++ {
		inst.Flows = append(inst.Flows, switchnet.Flow{
			In: rng.Intn(3), Out: rng.Intn(3), Demand: 1, Release: rng.Intn(4),
		})
	}
	res, err := SolveART(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	caps := switchnet.ScaleCaps(inst.Switch.Caps(), 2)
	if err := res.Schedule.Validate(inst, caps); err != nil {
		t.Fatal(err)
	}
	if float64(res.Schedule.TotalResponse(inst)) < res.LPBound-1e-6 {
		t.Fatal("schedule beats its own lower bound")
	}
}

// TestSolveARTHeterogeneousCapacities uses different capacities per port.
func TestSolveARTHeterogeneousCapacities(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.Switch{InCaps: []int{1, 2, 3}, OutCaps: []int{3, 1, 2}},
	}
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 25; i++ {
		inst.Flows = append(inst.Flows, switchnet.Flow{
			In: rng.Intn(3), Out: rng.Intn(3), Demand: 1, Release: rng.Intn(3),
		})
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := SolveART(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	caps := switchnet.ScaleCaps(inst.Switch.Caps(), 3)
	if err := res.Schedule.Validate(inst, caps); err != nil {
		t.Fatal(err)
	}
}

// TestNonContiguousWindows exercises the general R(e) model of
// Time-Constrained Flow Scheduling: a flow restricted to rounds {0, 4}.
func TestNonContiguousWindows(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 1, Out: 0, Demand: 1, Release: 0},
			{In: 0, Out: 1, Demand: 1, Release: 0},
		},
	}
	win := Windows{
		{0, 4}, // only rounds 0 or 4
		{0},    // only round 0
		{1, 2},
	}
	res, err := SolveTimeConstrained(inst, win)
	if err != nil {
		t.Fatal(err)
	}
	// Flow 1 must take round 0, so flow 0 (sharing output 0) is pushed to
	// round 4 (capacity +1 augmentation cannot help port In=1... it can:
	// budget is 2*dmax-1 = 1 extra unit, so both could share round 0).
	r := res.Schedule.Round
	if r[1] != 0 {
		t.Fatalf("flow 1 at %d, want 0", r[1])
	}
	if r[0] != 0 && r[0] != 4 {
		t.Fatalf("flow 0 at %d, outside its window", r[0])
	}
	if r[2] != 1 && r[2] != 2 {
		t.Fatalf("flow 2 at %d, outside its window", r[2])
	}
}

// TestExactFeasibleWindowsAgainstLP cross-checks the exact window solver
// against the LP relaxation (LP feasible is necessary for exact feasible).
func TestExactFeasibleWindowsAgainstLP(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(2)}
		n := 2 + rng.Intn(4)
		win := make(Windows, n)
		for i := 0; i < n; i++ {
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In: rng.Intn(2), Out: rng.Intn(2), Demand: 1, Release: 0,
			})
			for t0 := 0; t0 < 3; t0++ {
				if rng.Intn(2) == 0 {
					win[i] = append(win[i], t0)
				}
			}
			if len(win[i]) == 0 {
				win[i] = []int{rng.Intn(3)}
			}
		}
		exact := ExactFeasibleWindows(inst, win)
		_, err := SolveTimeConstrained(inst, win)
		lpFeasible := err == nil
		if err != nil && err != ErrInfeasible {
			t.Fatal(err)
		}
		if exact && !lpFeasible {
			t.Fatalf("trial %d: exact feasible but LP infeasible", trial)
		}
	}
}

// TestAMRTGeneralDemands runs the online algorithm with demands up to 3.
func TestAMRTGeneralDemands(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	inst := &switchnet.Instance{Switch: switchnet.NewSwitch(3, 3, 3)}
	for i := 0; i < 12; i++ {
		inst.Flows = append(inst.Flows, switchnet.Flow{
			In: rng.Intn(3), Out: rng.Intn(3), Demand: 1 + rng.Intn(3), Release: rng.Intn(4),
		})
	}
	res, err := OnlineAMRT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, AMRTCaps(inst)); err != nil {
		t.Fatal(err)
	}
	if res.Schedule.MaxResponse(inst) > 2*res.FinalRho {
		t.Fatal("2*rho guarantee violated")
	}
}

// TestMRTReleaseGaps covers instances whose releases leave idle gaps.
func TestMRTReleaseGaps(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 0, Out: 0, Demand: 1, Release: 10},
			{In: 1, Out: 1, Demand: 1, Release: 20},
		},
	}
	res, err := SolveMRT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 1 {
		t.Fatalf("rho = %d, want 1 (no conflicts across gaps)", res.Rho)
	}
}

// TestIterativeRoundWithStaggeredReleases covers release gaps in the
// interval LP (empty windows, sparse columns).
func TestIterativeRoundWithStaggeredReleases(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 1, Demand: 1, Release: 0},
			{In: 0, Out: 1, Demand: 1, Release: 7},
			{In: 1, Out: 0, Demand: 1, Release: 7},
			{In: 0, Out: 0, Demand: 1, Release: 15},
		},
	}
	ps, err := IterativeRound(inst)
	if err != nil {
		t.Fatal(err)
	}
	for f, r := range ps.Round {
		if r < inst.Flows[f].Release {
			t.Fatalf("flow %d before release", f)
		}
	}
	// With no conflicts, every flow should land on its release round and
	// the LP bound should be exactly n/2 + 0*delays = 4*(0.5).
	if total := ps.TotalResponse(inst); total != 4 {
		t.Fatalf("pseudo total = %d, want 4 (all immediate)", total)
	}
}

// TestSRPTLowerBoundCapacities verifies the bound respects port capacity
// (capacity 2 serves two unit flows per round).
func TestSRPTLowerBoundCapacities(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.NewSwitch(2, 1, 2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 1, Out: 0, Demand: 1, Release: 0},
		},
	}
	// Output port capacity 2: both can finish in round 0 => bound = 2.
	if got := SRPTLowerBound(inst); got != 2 {
		t.Fatalf("bound = %d, want 2", got)
	}
	// Capacity 1 forces 1+2 = 3.
	inst.Switch.OutCaps[0] = 1
	if got := SRPTLowerBound(inst); got != 3 {
		t.Fatalf("bound = %d, want 3", got)
	}
}

// TestSRPTLowerBoundLargeDemands checks demand-aware accounting.
func TestSRPTLowerBoundLargeDemands(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.NewSwitch(1, 1, 2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 2, Release: 0},
			{In: 0, Out: 0, Demand: 2, Release: 0},
		},
	}
	// Port speed 2: SRPT finishes one flow per round: responses 1+2 = 3.
	if got := SRPTLowerBound(inst); got != 3 {
		t.Fatalf("bound = %d, want 3", got)
	}
}
