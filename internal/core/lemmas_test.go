package core

import (
	"math/rand"
	"testing"

	"flowsched/internal/switchnet"
	"flowsched/internal/workload"
)

// TestLemma52AdversarialBound validates the Lemma 5.2 construction: the
// Figure 4(b) instance has offline maximum response time 2, but for every
// round-0 decision an online algorithm can make, the adversary picks the
// dashed flows so the best completion has maximum response time >= 3.
func TestLemma52AdversarialBound(t *testing.T) {
	base := workload.Fig4b()
	// Offline optimum (exact): 2 rounds of response suffice, 1 does not.
	if !ExactMRTFeasible(base, 2) {
		t.Fatal("offline rho=2 should be feasible")
	}
	if ExactMRTFeasible(base, 1) {
		t.Fatal("offline rho=1 should be infeasible")
	}

	// Solid flows are indices 0..3 with inputs {0,0,1,1} and outputs
	// {0,1,2,3}. An online algorithm in round 0 schedules a subset that
	// is a matching: at most one flow per input port.
	solidSubsets := [][]int{
		{}, {0}, {1}, {2}, {3},
		{0, 2}, {0, 3}, {1, 2}, {1, 3},
	}
	for _, round0 := range solidSubsets {
		// The adversary aims the dashed flows at the outputs of the two
		// solid flows NOT scheduled in round 0 (one per input port).
		unscheduled := map[int]bool{0: true, 1: true, 2: true, 3: true}
		for _, f := range round0 {
			delete(unscheduled, f)
		}
		// Pick one unscheduled flow per input port (the backlog the
		// adversary targets); if an input port cleared both its flows
		// that is impossible (capacity 1), so each port has >= 1 left.
		var targets []int
		seenIn := map[int]bool{}
		for f := range unscheduled {
			in := base.Flows[f].In
			if !seenIn[in] {
				seenIn[in] = true
				targets = append(targets, f)
			}
		}
		if len(targets) < 2 {
			t.Fatalf("round0 %v left fewer than 2 ports backlogged", round0)
		}
		adv := &switchnet.Instance{Switch: base.Switch, Flows: append([]switchnet.Flow(nil), base.Flows[:4]...)}
		for _, f := range targets[:2] {
			adv.Flows = append(adv.Flows, switchnet.Flow{
				In: 2, Out: base.Flows[f].Out, Demand: 1, Release: 1,
			})
		}
		// Fix the online algorithm's round-0 choices: chosen solid flows
		// run exactly at round 0, unchosen ones may not use round 0 (the
		// algorithm already declined them there), dashed flows are free in
		// their response window. The best completion with max response 2
		// must NOT exist.
		chosen := map[int]bool{}
		for _, f := range round0 {
			chosen[f] = true
		}
		win := make(Windows, adv.N())
		for f := range adv.Flows {
			switch {
			case chosen[f]:
				win[f] = []int{0}
			case f < 4: // unchosen solid: deadline round 1, round 0 spent
				win[f] = []int{1}
			default: // dashed, released 1, rho=2
				win[f] = []int{1, 2}
			}
		}
		if ExactFeasibleWindows(adv, win) {
			t.Fatalf("round0 %v: adversary failed to force response 3", round0)
		}
		// But the adversarial instance is still offline-solvable with 2.
		if !ExactMRTFeasible(adv, 2) {
			t.Fatalf("round0 %v: adversarial instance lost offline feasibility", round0)
		}
	}
}

// TestTheorem2ReductionCorrespondence validates the RTT reduction on random
// small instances: RTT satisfiable <=> the reduced switch instance has a
// schedule with maximum response time 3 (exact search both sides).
func TestTheorem2ReductionCorrespondence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sat, unsat := 0, 0
	for trial := 0; trial < 40; trial++ {
		r := workload.RandomRTT(rng, 1+rng.Intn(3), 2+rng.Intn(2))
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		inst, rho := workload.ReduceRTT(r)
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
		want := r.Satisfiable()
		got := ExactMRTFeasible(inst, rho)
		if want != got {
			t.Fatalf("trial %d: RTT satisfiable=%v but schedule feasible=%v\nT=%v\nG=%v",
				trial, want, got, r.T, r.G)
		}
		if want {
			sat++
		} else {
			unsat++
		}
	}
	if sat == 0 || unsat == 0 {
		t.Fatalf("reduction test unbalanced: %d sat, %d unsat", sat, unsat)
	}
}

// TestTheorem2GapOnUnsatisfiable spot-checks the 4/3 gap phenomenon: when
// the RTT instance is unsatisfiable, the reduced instance needs response
// time at least 4 = (4/3)*3.
func TestTheorem2GapOnUnsatisfiable(t *testing.T) {
	// Overloaded RTT: three teachers each needing the same two classes in
	// the same two hours.
	r := &workload.RTT{
		M: 3, MPrime: 2,
		T: [][]int{{1, 2}, {1, 2}, {1, 2}},
		G: [][]int{{0, 1}, {0, 1}, {0, 1}},
	}
	if r.Satisfiable() {
		t.Fatal("instance should be unsatisfiable")
	}
	inst, rho := workload.ReduceRTT(r)
	if ExactMRTFeasible(inst, rho) {
		t.Fatal("reduced instance should not be schedulable with rho=3")
	}
	if !ExactMRTFeasible(inst, rho+1) {
		t.Fatal("reduced instance should be schedulable with rho=4")
	}
}

// TestMRTLowerBoundAgainstExact cross-validates the LP binary search with
// exhaustive search on small instances: LP rho is a true lower bound, and
// on unit-capacity instances it matches the exact optimum or undershoots
// by the integrality gap only.
func TestMRTLowerBoundAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(3)}
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In: rng.Intn(3), Out: rng.Intn(3), Demand: 1, Release: rng.Intn(3),
			})
		}
		lpRho, err := MRTLowerBound(inst)
		if err != nil {
			t.Fatal(err)
		}
		exact := 1
		for !ExactMRTFeasible(inst, exact) {
			exact++
		}
		if lpRho > exact {
			t.Fatalf("trial %d: LP bound %d exceeds exact optimum %d", trial, lpRho, exact)
		}
		// The augmented schedule achieves lpRho.
		res, err := SolveMRT(inst)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rho != lpRho {
			t.Fatalf("trial %d: SolveMRT rho %d != lower bound %d", trial, res.Rho, lpRho)
		}
	}
}
