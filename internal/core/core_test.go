package core

import (
	"errors"
	"math/rand"
	"testing"

	"flowsched/internal/switchnet"
)

// poissonish returns a random unit-demand instance on an m x m unit switch
// with about lambda arrivals per round for T rounds.
func poissonish(rng *rand.Rand, m, lambda, T int) *switchnet.Instance {
	inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(m)}
	for t := 0; t < T; t++ {
		k := rng.Intn(2*lambda + 1) // mean lambda
		for i := 0; i < k; i++ {
			inst.Flows = append(inst.Flows, switchnet.Flow{
				In:      rng.Intn(m),
				Out:     rng.Intn(m),
				Demand:  1,
				Release: t,
			})
		}
	}
	return inst
}

// greedyEarliest schedules each flow (in release order) at the earliest
// round with free capacity. Used as a feasible-schedule reference.
func greedyEarliest(inst *switchnet.Instance) *switchnet.Schedule {
	s := switchnet.NewSchedule(inst.N())
	caps := inst.Switch.Caps()
	used := make(map[int][]int)
	for f, e := range inst.Flows {
		pIn := inst.Switch.PortIndex(switchnet.In, e.In)
		pOut := inst.Switch.PortIndex(switchnet.Out, e.Out)
		for t := e.Release; ; t++ {
			row, ok := used[t]
			if !ok {
				row = make([]int, inst.Switch.NumPorts())
				used[t] = row
			}
			if row[pIn]+e.Demand <= caps[pIn] && row[pOut]+e.Demand <= caps[pOut] {
				row[pIn] += e.Demand
				row[pOut] += e.Demand
				s.Round[f] = t
				break
			}
		}
	}
	return s
}

func TestSolveMRTSimpleConflict(t *testing.T) {
	// Two flows sharing one output port, released together: optimal max
	// response is 2.
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 1, Out: 0, Demand: 1, Release: 0},
		},
	}
	res, err := SolveMRT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 2 {
		t.Fatalf("rho = %d, want 2", res.Rho)
	}
	if got := res.Schedule.MaxResponse(inst); got > 2 {
		t.Fatalf("max response = %d > 2", got)
	}
	if res.ForcedDrops != 0 {
		t.Fatalf("forced drops = %d", res.ForcedDrops)
	}
}

func TestSolveMRTNoConflict(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(3),
		Flows: []switchnet.Flow{
			{In: 0, Out: 1, Demand: 1, Release: 0},
			{In: 1, Out: 2, Demand: 1, Release: 0},
			{In: 2, Out: 0, Demand: 1, Release: 0},
		},
	}
	res, err := SolveMRT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 1 {
		t.Fatalf("rho = %d, want 1 (perfect matching)", res.Rho)
	}
}

func TestSolveMRTEmpty(t *testing.T) {
	inst := &switchnet.Instance{Switch: switchnet.UnitSwitch(2)}
	res, err := SolveMRT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 0 {
		t.Fatalf("rho = %d, want 0", res.Rho)
	}
}

func TestSolveMRTRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		m := 2 + rng.Intn(3)
		inst := poissonish(rng, m, 1+rng.Intn(2), 3+rng.Intn(3))
		if inst.N() == 0 {
			continue
		}
		res, err := SolveMRT(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dmax := inst.MaxDemand()
		caps := switchnet.AddCaps(inst.Switch.Caps(), 2*dmax-1)
		if err := res.Schedule.Validate(inst, caps); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if got := res.Schedule.MaxResponse(inst); got > res.Rho {
			t.Fatalf("trial %d: max response %d > rho %d", trial, got, res.Rho)
		}
		if lb := TrivialMRTLowerBound(inst); res.Rho < lb {
			t.Fatalf("trial %d: rho %d below trivial bound %d", trial, res.Rho, lb)
		}
		if res.ForcedDrops != 0 {
			t.Fatalf("trial %d: forced drops %d", trial, res.ForcedDrops)
		}
	}
}

func TestSolveMRTGeneralDemands(t *testing.T) {
	// Demands up to 3 on a capacity-3 switch; augmentation budget is
	// 2*dmax-1 = 5.
	rng := rand.New(rand.NewSource(5))
	inst := &switchnet.Instance{Switch: switchnet.NewSwitch(3, 3, 3)}
	for i := 0; i < 15; i++ {
		inst.Flows = append(inst.Flows, switchnet.Flow{
			In:      rng.Intn(3),
			Out:     rng.Intn(3),
			Demand:  1 + rng.Intn(3),
			Release: rng.Intn(4),
		})
	}
	res, err := SolveMRT(inst)
	if err != nil {
		t.Fatal(err)
	}
	caps := switchnet.AddCaps(inst.Switch.Caps(), 2*inst.MaxDemand()-1)
	if err := res.Schedule.Validate(inst, caps); err != nil {
		t.Fatal(err)
	}
	if res.CapIncrease != 2*inst.MaxDemand()-1 {
		t.Fatalf("cap increase = %d", res.CapIncrease)
	}
}

func TestDeadlineWindows(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 1, Out: 0, Demand: 1, Release: 0},
		},
	}
	// Deadlines allow rounds {0,1} for both: feasible.
	win, err := DeadlineWindows(inst, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveTimeConstrained(inst, win)
	if err != nil {
		t.Fatal(err)
	}
	for f, r := range res.Schedule.Round {
		if r < 0 || r > 1 {
			t.Fatalf("flow %d at round %d outside window", f, r)
		}
	}

	// A single round for both conflicting flows: LP infeasible.
	win2, err := DeadlineWindows(inst, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveTimeConstrained(inst, win2); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestDeadlineWindowsValidation(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(1),
		Flows:  []switchnet.Flow{{In: 0, Out: 0, Demand: 1, Release: 5}},
	}
	if _, err := DeadlineWindows(inst, []int{3}); err == nil {
		t.Fatal("deadline before release accepted")
	}
	if _, err := DeadlineWindows(inst, []int{5, 6}); err == nil {
		t.Fatal("wrong deadline count accepted")
	}
}

func TestIterativeRoundProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		inst := poissonish(rng, 3, 2, 4)
		if inst.N() == 0 {
			continue
		}
		ps, err := IterativeRound(inst)
		if err != nil {
			t.Fatal(err)
		}
		if ps.ForcedFixes != 0 {
			t.Fatalf("trial %d: forced fixes %d", trial, ps.ForcedFixes)
		}
		for f, r := range ps.Round {
			if r == switchnet.Unscheduled {
				t.Fatalf("trial %d: flow %d unassigned", trial, f)
			}
			if r < inst.Flows[f].Release {
				t.Fatalf("trial %d: flow %d at %d before release %d", trial, f, r, inst.Flows[f].Release)
			}
		}
		// Pseudo-schedule cost is bounded below by the LP and below by n.
		total := ps.TotalResponse(inst)
		if float64(total) < ps.LPValue-1e-6 {
			t.Fatalf("trial %d: pseudo total %d below LP %v", trial, total, ps.LPValue)
		}
		// LP value lower-bounds any feasible schedule's cost.
		greedy := greedyEarliest(inst)
		if float64(greedy.TotalResponse(inst)) < ps.LPValue-1e-6 {
			t.Fatalf("trial %d: greedy beats LP bound", trial)
		}
	}
}

func TestIterativeRoundOverloadBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := poissonish(rng, 4, 3, 5)
	ps, err := IterativeRound(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 3.3(3): for any interval, port load <= cp*len + O(cp log n).
	// Measure the worst interval overload against a generous constant.
	n := inst.N()
	logN := 1
	for v := 1; v < n; v *= 2 {
		logN++
	}
	horizon := 0
	for _, r := range ps.Round {
		if r+1 > horizon {
			horizon = r + 1
		}
	}
	numPorts := inst.Switch.NumPorts()
	loads := make([][]int, horizon)
	for t := range loads {
		loads[t] = make([]int, numPorts)
	}
	for f, r := range ps.Round {
		e := inst.Flows[f]
		loads[r][inst.Switch.PortIndex(switchnet.In, e.In)]++
		loads[r][inst.Switch.PortIndex(switchnet.Out, e.Out)]++
	}
	for p := 0; p < numPorts; p++ {
		cp := inst.Switch.Cap(p)
		for t1 := 0; t1 < horizon; t1++ {
			sum := 0
			for t2 := t1; t2 < horizon; t2++ {
				sum += loads[t2][p]
				if over := sum - cp*(t2-t1+1); over > 12*cp*logN {
					t.Fatalf("port %d interval [%d,%d] overload %d > %d", p, t1, t2, over, 12*cp*logN)
				}
			}
		}
	}
}

func TestSolveARTSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inst := poissonish(rng, 3, 2, 4)
	for _, c := range []int{1, 2} {
		res, err := SolveART(inst, c)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		caps := switchnet.ScaleCaps(inst.Switch.Caps(), 1+c)
		if err := res.Schedule.Validate(inst, caps); err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		if res.ForcedFixes != 0 {
			t.Fatalf("c=%d: forced fixes %d", c, res.ForcedFixes)
		}
		total := res.Schedule.TotalResponse(inst)
		if float64(total) < res.LPBound-1e-6 {
			t.Fatalf("c=%d: schedule total %d below LP bound %v", c, total, res.LPBound)
		}
		// The conversion adds at most 2h per flow over the pseudo-schedule.
		if total > res.PseudoTotal+2*res.WindowH*inst.N()+inst.N() {
			t.Fatalf("c=%d: conversion overhead too large: %d vs pseudo %d (h=%d)",
				c, total, res.PseudoTotal, res.WindowH)
		}
	}
}

func TestSolveARTRejectsBadInput(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.NewSwitch(2, 2, 2),
		Flows:  []switchnet.Flow{{In: 0, Out: 0, Demand: 2, Release: 0}},
	}
	if _, err := SolveART(inst, 1); err == nil {
		t.Fatal("non-unit demands accepted")
	}
	unit := &switchnet.Instance{Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{{In: 0, Out: 0, Demand: 1, Release: 0}}}
	if _, err := SolveART(unit, 0); err == nil {
		t.Fatal("c=0 accepted")
	}
}

func TestARTLowerBoundSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := poissonish(rng, 3, 2, 3)
	if inst.N() == 0 {
		t.Skip("empty draw")
	}
	lb, err := ARTLowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 3.1: LP <= total response of any schedule.
	greedy := greedyEarliest(inst)
	if float64(greedy.TotalResponse(inst)) < lb.TotalResponse-1e-6 {
		t.Fatalf("greedy %d beats LP bound %v", greedy.TotalResponse(inst), lb.TotalResponse)
	}
	// Each flow contributes at least ~1/2 (t=r term: 0 + 1/(2kappa)).
	if lb.TotalResponse <= 0 {
		t.Fatalf("bound %v not positive", lb.TotalResponse)
	}
}

func TestSRPTLowerBound(t *testing.T) {
	// Three flows into one output port, all released at 0, unit demand:
	// responses at the port are at least 1+2+3 = 6.
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(3),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 1, Out: 0, Demand: 1, Release: 0},
			{In: 2, Out: 0, Demand: 1, Release: 0},
		},
	}
	if got := SRPTLowerBound(inst); got != 6 {
		t.Fatalf("SRPT bound = %d, want 6", got)
	}
	if got := SRPTLowerBound(&switchnet.Instance{Switch: switchnet.UnitSwitch(1)}); got != 0 {
		t.Fatalf("empty bound = %d", got)
	}
}

func TestSRPTLowerBoundIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		inst := poissonish(rng, 3, 2, 4)
		if inst.N() == 0 {
			continue
		}
		lb := SRPTLowerBound(inst)
		greedy := greedyEarliest(inst)
		if greedy.TotalResponse(inst) < lb {
			t.Fatalf("trial %d: greedy %d < SRPT bound %d", trial, greedy.TotalResponse(inst), lb)
		}
	}
}

func TestTrivialMRTLowerBound(t *testing.T) {
	inst := &switchnet.Instance{
		Switch: switchnet.UnitSwitch(2),
		Flows: []switchnet.Flow{
			{In: 0, Out: 0, Demand: 1, Release: 0},
			{In: 1, Out: 0, Demand: 1, Release: 0},
			{In: 0, Out: 1, Demand: 1, Release: 0},
		},
	}
	// Output port 0 receives 2 unit flows at release 0 => rho >= 2.
	if got := TrivialMRTLowerBound(inst); got != 2 {
		t.Fatalf("bound = %d, want 2", got)
	}
}

func TestOnlineAMRT(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 5; trial++ {
		inst := poissonish(rng, 3, 1, 4)
		if inst.N() == 0 {
			continue
		}
		res, err := OnlineAMRT(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Schedule.Complete() {
			t.Fatalf("trial %d: incomplete schedule", trial)
		}
		if err := res.Schedule.Validate(inst, AMRTCaps(inst)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := res.Schedule.MaxResponse(inst); got > 2*res.FinalRho {
			t.Fatalf("trial %d: max response %d > 2*rho = %d", trial, got, 2*res.FinalRho)
		}
	}
}

func TestOnlineAMRTEmpty(t *testing.T) {
	res, err := OnlineAMRT(&switchnet.Instance{Switch: switchnet.UnitSwitch(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Complete() || len(res.Schedule.Round) != 0 {
		t.Fatal("empty instance mishandled")
	}
}
